//===- examples/show_fsm.cpp - Inspect agent state tables -----------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Prints the published best FSMs in the paper's Fig. 3/4 table layout,
// or any genome given in compact form, together with its action-mnemonic
// view (Sm0/R.1/... per input and state).
//
// Usage:
//   show_fsm                 # both published FSMs
//   show_fsm --grid S
//   show_fsm --genome "2113 0000 ..."   # your own 32-group table
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

static void printFsm(const Genome &G, GridKind Kind, const char *Label) {
  std::printf("==== %s ====\n\n%s\n", Label, G.toTableString(Kind).c_str());
  std::printf("action mnemonics (turn letter, move, setcolor):\n");
  std::printf("          ");
  for (int X = 0; X != NumFsmInputs; ++X)
    std::printf("| x=%d              ", X);
  std::printf("\n");
  for (int S = 0; S != NumControlStates; ++S) {
    std::printf("state %d   ", S);
    for (int X = 0; X != NumFsmInputs; ++X) {
      const GenomeEntry &E = G.entry(X, S);
      std::printf("| %s -> s%d         ", actionMnemonic(E.Act).c_str(),
                  E.NextState);
    }
    std::printf("\n");
  }
  std::printf("\ngenome (compact): %s\n\n", G.toCompactString().c_str());
}

int main(int Argc, char **Argv) {
  std::string GridName;
  std::string GenomeText;
  CommandLine CL("show_fsm", "Prints agent FSM state tables (Fig. 3/4)");
  CL.addString("grid", "restrict to S or T (default: both)", &GridName);
  CL.addString("genome", "show this compact genome instead", &GenomeText);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }

  if (!GenomeText.empty()) {
    auto Parsed = Genome::fromCompactString(GenomeText);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s\n", Parsed.error().message().c_str());
      return 1;
    }
    GridKind Kind = GridKind::Triangulate;
    if (!GridName.empty() && !parseGridKind(GridName, Kind)) {
      std::fprintf(stderr, "error: unknown grid '%s'\n", GridName.c_str());
      return 1;
    }
    printFsm(*Parsed, Kind, "user genome");
    return 0;
  }

  bool ShowS = GridName.empty(), ShowT = GridName.empty();
  if (!GridName.empty()) {
    GridKind Kind;
    if (!parseGridKind(GridName, Kind)) {
      std::fprintf(stderr, "error: unknown grid '%s'\n", GridName.c_str());
      return 1;
    }
    (Kind == GridKind::Square ? ShowS : ShowT) = true;
  }
  if (ShowS)
    printFsm(bestSquareAgent(), GridKind::Square,
             "best published S-agent (paper Fig. 3)");
  if (ShowT)
    printFsm(bestTriangulateAgent(), GridKind::Triangulate,
             "best evolved T-agent (paper Fig. 4)");
  return 0;
}
