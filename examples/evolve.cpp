//===- examples/evolve.cpp - Evolve your own agent FSM --------------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Runs the paper's genetic procedure live: watch the fitness fall, get
// the evolved state table, and reliability-test it across densities —
// the full Sect. 4 pipeline on your terminal.
//
// Usage:
//   evolve --grid T --agents 8 --fields 103 --generations 100 --seed 3
//
// Long runs survive crashes: pass --checkpoint <dir> to save the state
// each generation, and add --resume to continue a killed run from the
// last checkpoint (same flags required — mismatches are rejected).
//
//===----------------------------------------------------------------------===//

#include "agent/GenomeFile.h"
#include "ga/Checkpoint.h"
#include "ga/Evolution.h"
#include "ga/Reliability.h"
#include "support/Chaos.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <optional>

using namespace ca2a;

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t NumAgents = 8;
  int64_t NumFields = 53;
  int64_t Generations = 80;
  int64_t Seed = 1;
  bool Reliability = true;
  bool Bordered = false;
  int64_t States = 4;
  int64_t Colors = 2;
  std::string SavePath;
  std::string SaveName = "evolved";
  std::string CheckpointDir;
  bool Resume = false;
  std::string EngineName = "batch";
  std::string BackendName = "auto";
  bool Scheduler = true;
  bool ExactFitness = false;
  std::string ChaosSpec;
  double DeadlineSeconds = 0.0;
  int64_t Workers = 1;
  CommandLine CL("evolve", "Runs the paper's genetic procedure (Sect. 4)");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("agents", "agents per training field (paper: 8)", &NumAgents);
  CL.addInt("fields", "training fields incl. 3 manual (paper: 1003)",
            &NumFields);
  CL.addInt("generations", "generation budget", &Generations);
  CL.addInt("seed", "run seed (the paper used 4 independent runs)", &Seed);
  CL.addBool("reliability", "test the winner across densities", &Reliability);
  CL.addBool("bordered", "train on bordered (non-cyclic) fields", &Bordered);
  CL.addInt("states", "FSM control states (paper: 4)", &States);
  CL.addInt("colors", "colour values per cell (paper: 2)", &Colors);
  CL.addString("save", "append the winner to this genome library file",
               &SavePath);
  CL.addString("save-name", "name for the saved genome", &SaveName);
  CL.addString("checkpoint", "save evolution state to <dir>/evolve.ckpt "
               "every generation", &CheckpointDir);
  CL.addBool("resume", "continue from the checkpoint if one exists", &Resume);
  CL.addString("engine", "simulation engine: batch (default) or reference "
               "(bit-identical results)", &EngineName);
  CL.addString("backend", "batch-engine SIMD backend: auto (default) | "
               "scalar | sliced64 | avx2 | rmaj64 (bit-identical results)",
               &BackendName);
  CL.addBool("scheduler", "generation-wide evaluation scheduler "
             "(memoization, batching, early abort)", &Scheduler);
  CL.addBool("exact-fitness", "disable bound-based early abort (every "
             "genome evaluated on every field; same champions either way)",
             &ExactFitness);
  CL.addString("chaos", "inject infrastructure faults, e.g. "
               "'seed=7,engine.replica.fail=0.02,ckpt.write.corrupt=0.2' "
               "(champions stay bit-identical)", &ChaosSpec);
  CL.addDouble("deadline", "watchdog: report a stall when a generation "
               "makes no progress for this many seconds (0 = off)",
               &DeadlineSeconds);
  CL.addInt("workers", "evaluation worker threads (results are "
            "bit-identical for every count)", &Workers, 1, 4096);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }

  Torus T(Kind, 16);
  auto Fields =
      standardConfigurationSet(T, static_cast<int>(NumAgents),
                               static_cast<int>(NumFields) - 3,
                               static_cast<uint64_t>(Seed) * 104729 + 7);
  EngineKind Engine;
  if (!parseEngineKind(EngineName, Engine)) {
    std::fprintf(stderr, "error: unknown engine '%s' (use reference or "
                 "batch)\n", EngineName.c_str());
    return 1;
  }
  SimdBackend Backend;
  if (!parseSimdBackend(BackendName, Backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (use auto, scalar, "
                 "sliced64, avx2 or rmaj64)\n", BackendName.c_str());
    return 1;
  }

  EvolutionParams Params;
  Params.Seed = static_cast<uint64_t>(Seed);
  Params.Fitness.Sim.MaxSteps = 200;
  Params.Fitness.Sim.Bordered = Bordered;
  Params.Fitness.Engine = Engine;
  Params.Fitness.Backend = Backend;
  Params.Fitness.NumWorkers = static_cast<int>(Workers);
  Params.Scheduler.Enabled = Scheduler;
  Params.Scheduler.ExactFitness = ExactFitness;
  Params.Scheduler.GenerationDeadlineSeconds = DeadlineSeconds;
  Params.Scheduler.OnStall = [](double SilentSeconds) {
    std::fprintf(stderr,
                 "warning: watchdog: no evaluation progress for %.0f s\n",
                 SilentSeconds);
  };
  Params.Dims = GenomeDims{static_cast<int>(States), static_cast<int>(Colors)};
  if (!Params.Dims.valid()) {
    std::fprintf(stderr, "error: states/colors must be in [2, 9]\n");
    return 1;
  }

  std::optional<ScopedChaos> Chaos;
  if (!ChaosSpec.empty()) {
    auto Schedule = parseChaosSpec(ChaosSpec);
    if (!Schedule) {
      std::fprintf(stderr, "error: --chaos: %s\n",
                   Schedule.error().message().c_str());
      return 1;
    }
    Chaos.emplace(*Schedule);
    if (!chaosActive()) {
      std::fprintf(stderr, "error: --chaos requires a CA2A_CHAOS=ON build "
                   "(this binary compiled the sites out)\n");
      return 1;
    }
    std::printf("chaos: %s\n", describeChaosSchedule(*Schedule).c_str());
  }

  std::printf("evolving %s-agents: %lld agents, %zu fields, %lld "
              "generations, seed %lld\n",
              gridKindName(Kind), static_cast<long long>(NumAgents),
              Fields.size(), static_cast<long long>(Generations),
              static_cast<long long>(Seed));
  std::string CkptPath =
      CheckpointDir.empty() ? std::string() : CheckpointDir + "/evolve.ckpt";
  uint64_t CheckpointRecoveries = 0;
  uint64_t CheckpointSaveFailures = 0;
  std::optional<Evolution> E;
  if (Resume && !CkptPath.empty() && checkpointExists(CkptPath)) {
    CheckpointLoadReport Report;
    auto Loaded = loadCheckpointWithRecovery(CkptPath, &Report);
    if (!Loaded) {
      std::fprintf(stderr, "warning: ignoring checkpoint: %s\n",
                   Loaded.error().message().c_str());
    } else if (auto Valid =
                   validateCheckpoint(*Loaded, Kind, T.sideLength(), Params);
               !Valid) {
      std::fprintf(stderr, "warning: ignoring checkpoint %s: %s\n",
                   CkptPath.c_str(), Valid.error().message().c_str());
    } else {
      if (Report.UsedBackup) {
        ++CheckpointRecoveries;
        std::fprintf(stderr, "warning: %s\n", Report.Note.c_str());
      }
      E.emplace(T, Fields, Params, Loaded->Snapshot);
      std::printf("resumed %s at generation %d\n", CkptPath.c_str(),
                  Loaded->Snapshot.Generation);
    }
  }
  if (!E)
    E.emplace(T, Fields, Params);

  while (E->generation() < static_cast<int>(Generations)) {
    GenerationStats S = E->stepGeneration();
    if (S.Generation % 5 == 0)
      std::printf("gen %4d: best %9s  mean %11s  successful %2d/20\n",
                  S.Generation, formatFixed(S.BestFitness, 2).c_str(),
                  formatFixed(S.MeanFitness, 2).c_str(),
                  S.NumCompletelySuccessful);
    if (!CkptPath.empty()) {
      CheckpointData Data;
      Data.Grid = Kind;
      Data.SideLength = T.sideLength();
      Data.Seed = Params.Seed;
      Data.Snapshot = E->snapshot();
      if (auto Saved = saveCheckpoint(CkptPath, Data); !Saved) {
        ++CheckpointSaveFailures;
        std::fprintf(stderr, "warning: checkpoint save failed: %s\n",
                     Saved.error().message().c_str());
      }
    }
  }

  if (Scheduler) {
    const SchedulerStats &SS = E->schedulerStats();
    std::printf("scheduler: %llu evals, %s%% cache hits, %s%% fields pruned, "
                "%llu batches (occupancy %s)\n",
                static_cast<unsigned long long>(SS.Requests),
                formatFixed(100.0 * SS.hitRate(), 1).c_str(),
                formatFixed(100.0 * SS.pruneRate(), 1).c_str(),
                static_cast<unsigned long long>(SS.Batches),
                formatFixed(SS.batchOccupancy(), 1).c_str());
    // The robustness ledger: every infrastructure fault the supervised
    // layer absorbed. All-zero in a healthy run without --chaos.
    ChaosStats CS = chaosStats();
    if (Chaos || SS.TaskRetries || SS.ItemsQuarantined ||
        SS.GenomesDegraded || SS.WatchdogStalls || CheckpointRecoveries ||
        CheckpointSaveFailures)
      std::printf("robustness: %llu injected failures, %llu delays, %llu "
                  "corruptions; %llu retries, %llu items quarantined, %llu "
                  "genomes degraded, %llu stalls, %llu checkpoint "
                  "recoveries, %llu checkpoint save failures\n",
                  static_cast<unsigned long long>(CS.Failures),
                  static_cast<unsigned long long>(CS.Delays),
                  static_cast<unsigned long long>(CS.Corruptions),
                  static_cast<unsigned long long>(SS.TaskRetries),
                  static_cast<unsigned long long>(SS.ItemsQuarantined),
                  static_cast<unsigned long long>(SS.GenomesDegraded),
                  static_cast<unsigned long long>(SS.WatchdogStalls),
                  static_cast<unsigned long long>(CheckpointRecoveries),
                  static_cast<unsigned long long>(CheckpointSaveFailures));
  }

  const Individual &Best = E->bestEver();
  std::printf("\nbest evolved FSM (F = %s, %d/%zu fields solved):\n\n%s\n",
              formatFixed(Best.Fitness, 2).c_str(), Best.SolvedFields,
              Fields.size(), Best.G.toTableString(Kind).c_str());
  std::printf("genome: %s\n\n", Best.G.toCompactString().c_str());

  if (Reliability) {
    std::printf("reliability across densities (20 random + manual fields "
                "each):\n");
    ReliabilityParams RP;
    RP.NumRandomFields = 20;
    RP.Fitness.Sim.MaxSteps = 1000;
    RP.Fitness.Sim.Bordered = Bordered;
    ReliabilityReport Report = testReliability(Best.G, T, RP);
    for (const ReliabilityRow &Row : Report.Rows)
      std::printf("  k=%-3d: %d/%d solved, mean t = %s\n", Row.NumAgents,
                  Row.SolvedFields, Row.NumFields,
                  formatFixed(Row.MeanCommTime, 2).c_str());
    std::printf("completely successful: %s\n",
                Report.completelySuccessful() ? "yes" : "no");
  }

  if (!SavePath.empty()) {
    std::vector<NamedGenome> Library;
    if (auto Existing = loadGenomeLibrary(SavePath))
      Library = Existing.takeValue();
    if (findGenome(Library, SaveName)) {
      std::fprintf(stderr, "error: '%s' already exists in %s\n",
                   SaveName.c_str(), SavePath.c_str());
      return 1;
    }
    Library.push_back({SaveName, Kind, Best.G});
    if (auto Saved = saveGenomeLibrary(SavePath, Library); !Saved) {
      std::fprintf(stderr, "error: %s\n", Saved.error().message().c_str());
      return 1;
    }
    std::printf("winner saved to %s as '%s'\n", SavePath.c_str(),
                SaveName.c_str());
  }
  return 0;
}
