//===- examples/evolve.cpp - Evolve your own agent FSM --------------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Runs the paper's genetic procedure live: watch the fitness fall, get
// the evolved state table, and reliability-test it across densities —
// the full Sect. 4 pipeline on your terminal.
//
// Usage:
//   evolve --grid T --agents 8 --fields 103 --generations 100 --seed 3
//
//===----------------------------------------------------------------------===//

#include "agent/GenomeFile.h"
#include "ga/Evolution.h"
#include "ga/Reliability.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t NumAgents = 8;
  int64_t NumFields = 53;
  int64_t Generations = 80;
  int64_t Seed = 1;
  bool Reliability = true;
  bool Bordered = false;
  int64_t States = 4;
  int64_t Colors = 2;
  std::string SavePath;
  std::string SaveName = "evolved";
  CommandLine CL("evolve", "Runs the paper's genetic procedure (Sect. 4)");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("agents", "agents per training field (paper: 8)", &NumAgents);
  CL.addInt("fields", "training fields incl. 3 manual (paper: 1003)",
            &NumFields);
  CL.addInt("generations", "generation budget", &Generations);
  CL.addInt("seed", "run seed (the paper used 4 independent runs)", &Seed);
  CL.addBool("reliability", "test the winner across densities", &Reliability);
  CL.addBool("bordered", "train on bordered (non-cyclic) fields", &Bordered);
  CL.addInt("states", "FSM control states (paper: 4)", &States);
  CL.addInt("colors", "colour values per cell (paper: 2)", &Colors);
  CL.addString("save", "append the winner to this genome library file",
               &SavePath);
  CL.addString("save-name", "name for the saved genome", &SaveName);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }

  Torus T(Kind, 16);
  auto Fields =
      standardConfigurationSet(T, static_cast<int>(NumAgents),
                               static_cast<int>(NumFields) - 3,
                               static_cast<uint64_t>(Seed) * 104729 + 7);
  EvolutionParams Params;
  Params.Seed = static_cast<uint64_t>(Seed);
  Params.Fitness.Sim.MaxSteps = 200;
  Params.Fitness.Sim.Bordered = Bordered;
  Params.Dims = GenomeDims{static_cast<int>(States), static_cast<int>(Colors)};
  if (!Params.Dims.valid()) {
    std::fprintf(stderr, "error: states/colors must be in [2, 9]\n");
    return 1;
  }

  std::printf("evolving %s-agents: %lld agents, %zu fields, %lld "
              "generations, seed %lld\n",
              gridKindName(Kind), static_cast<long long>(NumAgents),
              Fields.size(), static_cast<long long>(Generations),
              static_cast<long long>(Seed));
  Evolution E(T, Fields, Params);
  E.run(static_cast<int>(Generations), [](const GenerationStats &S) {
    if (S.Generation % 5 == 0)
      std::printf("gen %4d: best %9s  mean %11s  successful %2d/20\n",
                  S.Generation, formatFixed(S.BestFitness, 2).c_str(),
                  formatFixed(S.MeanFitness, 2).c_str(),
                  S.NumCompletelySuccessful);
  });

  const Individual &Best = E.bestEver();
  std::printf("\nbest evolved FSM (F = %s, %d/%zu fields solved):\n\n%s\n",
              formatFixed(Best.Fitness, 2).c_str(), Best.SolvedFields,
              Fields.size(), Best.G.toTableString(Kind).c_str());
  std::printf("genome: %s\n\n", Best.G.toCompactString().c_str());

  if (Reliability) {
    std::printf("reliability across densities (20 random + manual fields "
                "each):\n");
    ReliabilityParams RP;
    RP.NumRandomFields = 20;
    RP.Fitness.Sim.MaxSteps = 1000;
    RP.Fitness.Sim.Bordered = Bordered;
    ReliabilityReport Report = testReliability(Best.G, T, RP);
    for (const ReliabilityRow &Row : Report.Rows)
      std::printf("  k=%-3d: %d/%d solved, mean t = %s\n", Row.NumAgents,
                  Row.SolvedFields, Row.NumFields,
                  formatFixed(Row.MeanCommTime, 2).c_str());
    std::printf("completely successful: %s\n",
                Report.completelySuccessful() ? "yes" : "no");
  }

  if (!SavePath.empty()) {
    std::vector<NamedGenome> Library;
    if (auto Existing = loadGenomeLibrary(SavePath))
      Library = Existing.takeValue();
    if (findGenome(Library, SaveName)) {
      std::fprintf(stderr, "error: '%s' already exists in %s\n",
                   SaveName.c_str(), SavePath.c_str());
      return 1;
    }
    Library.push_back({SaveName, Kind, Best.G});
    if (auto Saved = saveGenomeLibrary(SavePath, Library); !Saved) {
      std::fprintf(stderr, "error: %s\n", Saved.error().message().c_str());
      return 1;
    }
    std::printf("winner saved to %s as '%s'\n", SavePath.c_str(),
                SaveName.c_str());
  }
  return 0;
}
