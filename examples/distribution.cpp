//===- examples/distribution.cpp - Where the S/T gap lives ----------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Goes beyond the paper's mean values: prints the full communication-time
// distribution (order statistics + ASCII histogram) of the best FSMs on
// both grids at a chosen density. Shows that the T-grid advantage holds
// across the body of the distribution, not just the mean.
//
// Usage:
//   distribution --agents 16 --fields 500
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "analysis/Distribution.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace ca2a;

int main(int Argc, char **Argv) {
  int64_t NumAgents = 16;
  int64_t NumFields = 500;
  int64_t MaxSteps = 5000;
  int64_t Buckets = 12;
  int64_t Seed = 20130101;
  CommandLine CL("distribution",
                 "t_comm distributions of the best FSMs, S vs T");
  CL.addInt("agents", "agents per field", &NumAgents);
  CL.addInt("fields", "random fields", &NumFields);
  CL.addInt("max-steps", "cutoff", &MaxSteps);
  CL.addInt("buckets", "histogram buckets", &Buckets);
  CL.addInt("seed", "field seed", &Seed);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }

  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    auto Fields = standardConfigurationSet(
        T, static_cast<int>(NumAgents), static_cast<int>(NumFields),
        static_cast<uint64_t>(Seed) + static_cast<uint64_t>(NumAgents));
    SimOptions O;
    O.MaxSteps = static_cast<int>(MaxSteps);
    CommTimeDistribution D = collectCommTimes(bestAgent(Kind), T, Fields, O);
    std::printf("---- %s-grid, k = %lld, %zu fields ----\n",
                gridKindName(Kind), static_cast<long long>(NumAgents),
                Fields.size());
    std::printf("%s\n%s\n", formatDistributionSummary(D).c_str(),
                renderHistogram(D.Times, static_cast<int>(Buckets)).c_str());
  }
  return 0;
}
