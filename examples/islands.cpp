//===- examples/islands.cpp - Distributed island-model evolution ----------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Shards the Sect. 4 genetic procedure across N deterministic islands
// that exchange their best individuals every G generations through
// checksummed migrant blocks. Three modes:
//
//   (default)      run all islands inside this process (one thread each)
//                  over the file or socket transport and print the
//                  aggregate champion;
//   --island K     run island K alone (file transport, shared --mailbox
//                  directory) — one process per island, killable and
//                  resumable; posts its final best into the mailbox;
//   --aggregate    read every island's posted result from --mailbox and
//                  print the champion.
//
// For a fixed (islands, topology, seed) the champion genome is
// bit-identical across worker counts, transports, thread-vs-process
// layouts and kill/resume (scripts/islands_resume.sh demonstrates the
// last one under chaos injection).
//
// Usage:
//   islands --islands 4 --migration-topology ring --migration-interval 5
//           --migrants 3 --transport file --mailbox /tmp/mb --generations 40
//
//===----------------------------------------------------------------------===//

#include "dist/IslandRunner.h"
#include "support/Chaos.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <optional>

using namespace ca2a;

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t NumAgents = 8;
  int64_t NumFields = 53;
  int64_t Generations = 40;
  int64_t Seed = 1;
  int64_t States = 4;
  int64_t Colors = 2;
  int64_t NumIslands = 4;
  int64_t MigrationInterval = 5;
  int64_t Migrants = 3;
  std::string TopologyName = "ring";
  std::string TransportName = "file";
  std::string MailboxDir;
  std::string CheckpointDir;
  int64_t OneIsland = -1;
  bool Aggregate = false;
  double DeadlineSeconds = 120.0;
  int64_t Workers = 1;
  std::string EngineName = "batch";
  std::string BackendName = "auto";
  bool Scheduler = true;
  std::string ChaosSpec;
  CommandLine CL("islands",
                 "Island-model GA: deterministic sharded evolution with "
                 "checksummed migration");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("agents", "agents per training field (paper: 8)", &NumAgents);
  CL.addInt("fields", "training fields incl. 3 manual (paper: 1003)",
            &NumFields, 3, 1000000);
  CL.addInt("generations", "generation budget per island", &Generations, 0,
            1000000000);
  CL.addInt("seed", "base seed (island i evolves with a seed derived from "
            "it)", &Seed);
  CL.addInt("states", "FSM control states (paper: 4)", &States);
  CL.addInt("colors", "colour values per cell (paper: 2)", &Colors);
  CL.addInt("islands", "number of islands", &NumIslands, 1, 1024);
  CL.addInt("migration-interval", "generations between exchanges (0 = "
            "never migrate)", &MigrationInterval, 0, 1000000000);
  CL.addInt("migrants", "individuals emigrated per edge per exchange",
            &Migrants, 0, 1000000);
  CL.addString("migration-topology", "none | ring | hypercube (hypercube "
               "needs a power-of-two island count)", &TopologyName);
  CL.addString("transport", "migrant transport: file (shared directory, "
               "works across processes) | socket (in-process TCP)",
               &TransportName);
  CL.addString("mailbox", "shared directory for the file transport and "
               "for --island/--aggregate result blocks", &MailboxDir);
  CL.addString("checkpoint", "save per-island state under this directory "
               "every generation (auto-resumes)", &CheckpointDir);
  CL.addInt("island", "run only this island in this process (file "
            "transport; -1 = run all in-process)", &OneIsland, -1, 1023);
  CL.addBool("aggregate", "read posted island results from --mailbox and "
             "print the champion", &Aggregate);
  CL.addDouble("deadline", "seconds an island waits for a neighbour's "
               "migrant block (and --aggregate for results)",
               &DeadlineSeconds);
  CL.addInt("workers", "evaluation worker threads per island (champions "
            "are bit-identical for every count)", &Workers, 1, 4096);
  CL.addString("engine", "simulation engine: batch (default) or reference "
               "(bit-identical results)", &EngineName);
  CL.addString("backend", "batch-engine SIMD backend: auto (default) | "
               "scalar | sliced64 | avx2 | rmaj64 (bit-identical results)",
               &BackendName);
  CL.addBool("scheduler", "generation-wide evaluation scheduler "
             "(memoization, batching, early abort)", &Scheduler);
  CL.addString("chaos", "inject infrastructure faults, e.g. "
               "'seed=7,ckpt.write.corrupt=0.25' (champions stay "
               "bit-identical)", &ChaosSpec);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }
  TopologyKind Topology;
  if (!parseTopologyKind(TopologyName, Topology)) {
    std::fprintf(stderr, "error: unknown topology '%s' (none | ring | "
                 "hypercube)\n", TopologyName.c_str());
    return 1;
  }
  TransportKind Transport;
  if (!parseTransportKind(TransportName, Transport)) {
    std::fprintf(stderr, "error: unknown transport '%s' (file | socket)\n",
                 TransportName.c_str());
    return 1;
  }
  EngineKind Engine;
  if (!parseEngineKind(EngineName, Engine)) {
    std::fprintf(stderr, "error: unknown engine '%s' (use reference or "
                 "batch)\n", EngineName.c_str());
    return 1;
  }
  SimdBackend Backend;
  if (!parseSimdBackend(BackendName, Backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (use auto, scalar, "
                 "sliced64, avx2 or rmaj64)\n", BackendName.c_str());
    return 1;
  }

  std::optional<ScopedChaos> Chaos;
  if (!ChaosSpec.empty()) {
    auto Schedule = parseChaosSpec(ChaosSpec);
    if (!Schedule) {
      std::fprintf(stderr, "error: --chaos: %s\n",
                   Schedule.error().message().c_str());
      return 1;
    }
    Chaos.emplace(*Schedule);
    if (!chaosActive()) {
      std::fprintf(stderr, "error: --chaos requires a CA2A_CHAOS=ON build "
                   "(this binary compiled the sites out)\n");
      return 1;
    }
    std::fprintf(stderr, "chaos: %s\n",
                 describeChaosSchedule(*Schedule).c_str());
  }

  // --aggregate needs no simulation at all: read the posted result
  // blocks, pick the champion (lowest fitness, lowest island on ties).
  if (Aggregate) {
    if (MailboxDir.empty()) {
      std::fprintf(stderr, "error: --aggregate needs --mailbox\n");
      return 1;
    }
    std::vector<IslandOutcome> Outcomes;
    for (int I = 0; I != static_cast<int>(NumIslands); ++I) {
      auto Best = collectIslandResult(MailboxDir, I, 0, DeadlineSeconds);
      if (!Best) {
        std::fprintf(stderr, "error: island %d result: %s\n", I,
                     Best.error().message().c_str());
        return 1;
      }
      IslandOutcome Out;
      Out.Index = I;
      Out.Best = Best.takeValue();
      std::printf("island %d: best F = %s (%d fields solved)\n", I,
                  formatFixed(Out.Best.Fitness, 2).c_str(),
                  Out.Best.SolvedFields);
      Outcomes.push_back(std::move(Out));
    }
    int Winner = selectChampionIndex(Outcomes);
    const Individual &Champion = Outcomes[static_cast<size_t>(Winner)].Best;
    std::printf("champion (island %d): F = %s\n", Winner,
                formatFixed(Champion.Fitness, 2).c_str());
    std::printf("genome: %s\n", Champion.G.toCompactString().c_str());
    return 0;
  }

  Torus T(Kind, 16);
  // All islands train on the SAME field set (derived from the base seed):
  // migrant fitness numbers must be comparable, and the evaluation-
  // context fingerprint embedded in every block enforces exactly this.
  auto Fields =
      standardConfigurationSet(T, static_cast<int>(NumAgents),
                               static_cast<int>(NumFields) - 3,
                               static_cast<uint64_t>(Seed) * 104729 + 7);

  EvolutionParams Evo;
  Evo.Seed = static_cast<uint64_t>(Seed);
  Evo.Fitness.Sim.MaxSteps = 200;
  Evo.Fitness.Engine = Engine;
  Evo.Fitness.Backend = Backend;
  Evo.Fitness.NumWorkers = static_cast<int>(Workers);
  Evo.Scheduler.Enabled = Scheduler;
  Evo.Dims = GenomeDims{static_cast<int>(States), static_cast<int>(Colors)};
  if (!Evo.Dims.valid()) {
    std::fprintf(stderr, "error: states/colors must be in [2, 9]\n");
    return 1;
  }

  // Single-island process mode: one island of the shared run, talking to
  // its siblings through the shared mailbox directory.
  if (OneIsland >= 0) {
    if (Transport != TransportKind::File) {
      std::fprintf(stderr, "error: --island requires --transport file "
                   "(processes share a directory, not a server)\n");
      return 1;
    }
    if (OneIsland >= NumIslands) {
      std::fprintf(stderr, "error: --island %lld outside --islands %lld\n",
                   static_cast<long long>(OneIsland),
                   static_cast<long long>(NumIslands));
      return 1;
    }
    auto Topo =
        MigrationTopology::create(Topology, static_cast<int>(NumIslands));
    if (!Topo) {
      std::fprintf(stderr, "error: %s\n", Topo.error().message().c_str());
      return 1;
    }
    bool HasEdges =
        !Topo->outNeighbors(static_cast<int>(OneIsland)).empty() ||
        !Topo->inNeighbors(static_cast<int>(OneIsland)).empty();
    if (MailboxDir.empty()) {
      std::fprintf(stderr, "error: --island needs --mailbox\n");
      return 1;
    }
    EvolutionParams MyEvo = Evo;
    MyEvo.Seed = deriveIslandSeed(Evo.Seed, static_cast<int>(OneIsland));
    IslandOptions Opts;
    Opts.Index = static_cast<int>(OneIsland);
    Opts.MigrationInterval = static_cast<int>(MigrationInterval);
    Opts.MigrantCount = static_cast<int>(Migrants);
    Opts.MigrationDeadlineSeconds = DeadlineSeconds;
    if (!CheckpointDir.empty())
      Opts.CheckpointPath =
          islandCheckpointPath(CheckpointDir, static_cast<int>(OneIsland));
    Opts.Grid = Kind;
    Opts.SideLength = T.sideLength();
    FileMailbox Box(MailboxDir);
    auto Isl = Island::create(T, Fields, MyEvo, *Topo, Opts,
                              HasEdges ? &Box : nullptr);
    if (!Isl) {
      std::fprintf(stderr, "error: %s\n", Isl.error().message().c_str());
      return 1;
    }
    if ((*Isl)->resumed())
      std::printf("island %lld resumed at generation %d\n",
                  static_cast<long long>(OneIsland),
                  (*Isl)->evolution().generation());
    auto Best = (*Isl)->run(static_cast<int>(Generations));
    if (!Best) {
      std::fprintf(stderr, "error: %s\n", Best.error().message().c_str());
      return 1;
    }
    if (auto Posted = postIslandResult(
            MailboxDir, static_cast<int>(OneIsland), *Best, Evo.Dims,
            (*Isl)->evolution().evalContextFingerprint());
        !Posted) {
      std::fprintf(stderr, "error: posting result: %s\n",
                   Posted.error().message().c_str());
      return 1;
    }
    const IslandStats &MS = (*Isl)->stats();
    std::printf("island %lld: best F = %s, %d generations, %d evaluations, "
                "%llu exchanges, %llu/%llu migrants accepted\n",
                static_cast<long long>(OneIsland),
                formatFixed(Best->Fitness, 2).c_str(),
                (*Isl)->evolution().generation(),
                (*Isl)->evolution().evaluations(),
                static_cast<unsigned long long>(MS.MigrationRounds),
                static_cast<unsigned long long>(MS.MigrantsAccepted),
                static_cast<unsigned long long>(MS.MigrantsReceived));
    std::printf("island-genome: %s\n", Best->G.toCompactString().c_str());
    return 0;
  }

  // In-process mode: all islands as threads, the reference deployment.
  IslandRunParams RP;
  RP.NumIslands = static_cast<int>(NumIslands);
  RP.Topology = Topology;
  RP.MigrationInterval = static_cast<int>(MigrationInterval);
  RP.MigrantCount = static_cast<int>(Migrants);
  RP.MigrationDeadlineSeconds = DeadlineSeconds;
  RP.Transport = Transport;
  RP.MailboxDir = MailboxDir;
  RP.CheckpointDir = CheckpointDir;
  RP.Evo = Evo;
  RP.Grid = Kind;
  RP.SideLength = T.sideLength();

  std::printf("islands: %lld x (%s-grid, %zu fields, %lld generations), "
              "topology %s, interval %lld, %lld migrants/edge, transport "
              "%s, %lld workers/island\n",
              static_cast<long long>(NumIslands), gridKindName(Kind),
              Fields.size(), static_cast<long long>(Generations),
              topologyKindName(Topology),
              static_cast<long long>(MigrationInterval),
              static_cast<long long>(Migrants),
              transportKindName(Transport),
              static_cast<long long>(Workers));

  auto Result = runIslands(T, Fields, RP, static_cast<int>(Generations),
                           [&](int Island, const GenerationStats &S) {
                             if (S.Generation % 10 == 0)
                               std::printf("island %d gen %4d: best %9s\n",
                                           Island, S.Generation,
                                           formatFixed(S.BestFitness, 2)
                                               .c_str());
                           });
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.error().message().c_str());
    return 1;
  }
  for (const IslandOutcome &Out : Result->Islands)
    std::printf("island %d: best F = %s, %d evaluations, %llu exchanges, "
                "%llu/%llu migrants accepted%s\n",
                Out.Index, formatFixed(Out.Best.Fitness, 2).c_str(),
                Out.Evaluations,
                static_cast<unsigned long long>(Out.Migration.MigrationRounds),
                static_cast<unsigned long long>(
                    Out.Migration.MigrantsAccepted),
                static_cast<unsigned long long>(
                    Out.Migration.MigrantsReceived),
                Out.Resumed ? " (resumed)" : "");
  std::printf("champion (island %d): F = %s, %d fields solved\n",
              Result->ChampionIsland,
              formatFixed(Result->Champion.Fitness, 2).c_str(),
              Result->Champion.SolvedFields);
  std::printf("genome: %s\n", Result->Champion.G.toCompactString().c_str());
  return 0;
}
