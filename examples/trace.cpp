//===- examples/trace.cpp - Watch two agents build streets ----------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Interactive version of the Fig. 6/7 experiment: place two agents,
// run the published FSM, and print the agent / colour / visited panels
// at chosen times. On the S-grid the colour trails form orthogonal
// "streets"; on the T-grid honeycomb-like networks.
//
// Usage:
//   trace --grid T --x0 2 --y0 11 --x1 10 --y1 9 --panels 0,20,final
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "sim/Render.h"
#include "sim/Trace.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t X0 = 2, Y0 = 11, X1 = 10, Y1 = 9;
  int64_t MaxSteps = 3000;
  std::string PanelSpec = "0,mid,final";
  CommandLine CL("trace", "Fig. 6/7 style two-agent trace panels");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("x0", "agent 0 x (faces north)", &X0);
  CL.addInt("y0", "agent 0 y", &Y0);
  CL.addInt("x1", "agent 1 x (faces west)", &X1);
  CL.addInt("y1", "agent 1 y", &Y1);
  CL.addInt("max-steps", "cutoff", &MaxSteps);
  CL.addString("panels", "comma list of times; 'mid' and 'final' allowed",
               &PanelSpec);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }

  Torus T(Kind, 16);
  bool Square = Kind == GridKind::Square;
  std::vector<Placement> P = {
      {Coord{static_cast<int>(X0), static_cast<int>(Y0)},
       static_cast<uint8_t>(Square ? 1 : 2)}, // North.
      {Coord{static_cast<int>(X1), static_cast<int>(Y1)},
       static_cast<uint8_t>(Square ? 2 : 3)}, // West.
  };
  SimOptions O;
  O.MaxSteps = static_cast<int>(MaxSteps);
  // The coordinates are user input: reject out-of-range or colliding
  // placements with a message instead of tripping an assert.
  if (auto Valid = World::validatePlacements(T, P, O); !Valid) {
    std::fprintf(stderr, "error: %s\n", Valid.error().message().c_str());
    return 1;
  }

  // Probe run to resolve 'mid'/'final' in the panel spec.
  World Probe(T);
  Probe.reset(bestAgent(Kind), P, O);
  SimResult ProbeResult = Probe.run();
  if (!ProbeResult.Success) {
    std::printf("not solved within %lld steps (%d/%d informed)\n",
                static_cast<long long>(MaxSteps), ProbeResult.InformedAgents,
                ProbeResult.NumAgents);
    return 1;
  }

  std::vector<int> Times;
  for (const std::string &Piece : splitString(PanelSpec, ',')) {
    std::string Token(trim(Piece));
    if (Token == "mid")
      Times.push_back(ProbeResult.TComm / 2);
    else if (Token == "final")
      Times.push_back(ProbeResult.TComm);
    else if (auto Parsed = parseInt(Token))
      Times.push_back(static_cast<int>(*Parsed));
    else {
      std::fprintf(stderr, "error: bad panel time '%s'\n", Token.c_str());
      return 1;
    }
  }

  World W(T);
  W.reset(bestAgent(Kind), P, O);
  int NextPanel = 0;
  std::vector<int> Sorted = Times;
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  SimResult Result = W.run([&](const World &World, int Time) {
    if (NextPanel < static_cast<int>(Sorted.size()) &&
        Sorted[static_cast<size_t>(NextPanel)] == Time) {
      std::printf("%s", renderPanels(World, formatString("%s-grid  t = %d",
                                                         gridKindName(Kind),
                                                         Time))
                            .c_str());
      std::printf("\n");
      ++NextPanel;
    }
  });
  std::printf("solved: t_comm = %d (the same start on the %s-grid is the "
              "interesting comparison)\n",
              Result.TComm, Square ? "T" : "S");
  return 0;
}
