//===- examples/faultsweep.cpp - Degradation under injected faults --------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Sweeps ONE fault process (sim/Fault.h) over a list of per-step rates
// and prints how a published agent degrades: success rate, mean t_comm,
// informed fraction, survivors, and the raw fault-event counts. The
// rate-0 row always reproduces the fault-free engine exactly.
//
// Usage:
//   faultsweep --grid T --fault stall --rates 0,0.01,0.05,0.1
//   faultsweep --grid S --fault death --agents 16 --rates 0,0.005,0.02
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <vector>

using namespace ca2a;

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  std::string FaultName = "stall";
  std::string RateSpec = "0,0.002,0.005,0.01,0.02,0.05";
  int64_t NumAgents = 8;
  int64_t NumFields = 100;
  int64_t MaxSteps = 1000;
  int64_t Seed = 20130101;
  int64_t FaultSeed = 1;
  CommandLine CL("faultsweep",
                 "Sweeps one fault process against a published agent");
  CL.addString("grid", "S or T", &GridName);
  CL.addString("fault", "stall, death, drop, or flip", &FaultName);
  CL.addString("rates", "comma list of per-step fault rates", &RateSpec);
  CL.addInt("agents", "agents per field", &NumAgents);
  CL.addInt("fields", "random fields (plus 3 manual)", &NumFields);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field-generation seed", &Seed);
  CL.addInt("fault-seed", "base seed of the fault RNG stream", &FaultSeed);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }
  double FaultModel::*RateMember = nullptr;
  if (FaultName == "stall")
    RateMember = &FaultModel::StallProbability;
  else if (FaultName == "death")
    RateMember = &FaultModel::DeathProbability;
  else if (FaultName == "drop")
    RateMember = &FaultModel::LinkDropProbability;
  else if (FaultName == "flip")
    RateMember = &FaultModel::ColorFlipProbability;
  else {
    std::fprintf(stderr, "error: unknown fault '%s' (use stall, death, "
                 "drop, or flip)\n", FaultName.c_str());
    return 1;
  }
  std::vector<double> Rates;
  for (const std::string &Piece : splitString(RateSpec, ',')) {
    auto Parsed = parseDouble(trim(Piece));
    if (!Parsed || *Parsed < 0.0 || *Parsed > 1.0) {
      std::fprintf(stderr, "error: bad rate '%s' (want a number in "
                   "[0, 1])\n", std::string(trim(Piece)).c_str());
      return 1;
    }
    Rates.push_back(*Parsed);
  }
  if (Rates.empty()) {
    std::fprintf(stderr, "error: --rates is empty\n");
    return 1;
  }

  Torus T(Kind, 16);
  if (NumAgents < 1 || NumAgents > T.numCells()) {
    std::fprintf(stderr, "error: --agents must be in [1, %d]\n",
                 T.numCells());
    return 1;
  }
  if (NumFields < 0 || MaxSteps < 1) {
    std::fprintf(stderr,
                 "error: --fields must be >= 0 and --max-steps >= 1\n");
    return 1;
  }
  const Genome &G = bestAgent(Kind);
  auto Fields = standardConfigurationSet(T, static_cast<int>(NumAgents),
                                         static_cast<int>(NumFields),
                                         static_cast<uint64_t>(Seed));
  SimOptions Base;
  Base.MaxSteps = static_cast<int>(MaxSteps);

  std::printf("sweeping %s faults against the best %s-agent: k = %lld, "
              "%zu fields, cutoff %lld\n\n",
              FaultName.c_str(), gridKindName(Kind),
              static_cast<long long>(NumAgents), Fields.size(),
              static_cast<long long>(MaxSteps));
  std::printf("%8s | %9s | %8s | %8s | %9s | %s\n", "rate", "solved",
              "mean t", "informed", "survivors", "events");

  for (double Rate : Rates) {
    int Solved = 0;
    double CommTimeSum = 0.0, InformedSum = 0.0, SurvivorSum = 0.0;
    FaultStats Events;
    World W(T);
    for (size_t I = 0; I != Fields.size(); ++I) {
      SimOptions O = Base;
      O.Faults.*RateMember = Rate;
      O.Faults.Seed =
          static_cast<uint64_t>(FaultSeed) + 0x9e3779b97f4a7c15ULL * (I + 1);
      W.reset(G, Fields[I].Placements, O);
      SimResult R = W.run();
      if (R.Success) {
        ++Solved;
        CommTimeSum += R.TComm;
      }
      InformedSum += R.InformedFraction;
      SurvivorSum += R.SurvivingAgents;
      Events.Stalls += R.Faults.Stalls;
      Events.Deaths += R.Faults.Deaths;
      Events.DroppedLinks += R.Faults.DroppedLinks;
      Events.ColorFlips += R.Faults.ColorFlips;
    }
    size_t N = Fields.size();
    std::printf("%8s | %4d/%-4zu | %8s | %8s | %9s | %s\n",
                formatFixed(Rate, 3).c_str(), Solved, N,
                formatFixed(Solved > 0 ? CommTimeSum / Solved : 0.0, 2)
                    .c_str(),
                formatFixed(InformedSum / N, 3).c_str(),
                formatFixed(SurvivorSum / N, 2).c_str(),
                describeFaultStats(Events).c_str());
  }
  return 0;
}
