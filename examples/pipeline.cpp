//===- examples/pipeline.cpp - The paper's full selection pipeline --------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Runs the complete Sect. 4 procedure: several independent optimisation
// runs, extraction of the top completely successful FSMs, the
// cross-density reliability filter, and the final ranking — ending with
// "the best found FSM", optionally saved to a genome library file.
//
// Paper scale (hours on one core):
//   pipeline --runs 4 --generations 500 --train-fields 1000 \
//            --reliability-fields 1000
// Default scale: a couple of minutes.
//
// Paper-scale runs should add --checkpoint <dir>: each run saves its
// state there, and rerunning with --resume continues a killed pipeline
// where it stopped, reaching the same candidates as an uninterrupted run.
//
//===----------------------------------------------------------------------===//

#include "agent/GenomeFile.h"
#include "ga/Pipeline.h"
#include "support/Chaos.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <optional>

using namespace ca2a;

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t NumRuns = 2;
  int64_t Generations = 40;
  int64_t TrainFields = 53;
  int64_t ReliabilityFields = 50;
  int64_t TrainingAgents = 8;
  int64_t Seed = 1;
  std::string SavePath;
  std::string SaveName = "evolved";
  std::string CheckpointDir;
  bool Resume = false;
  int64_t CheckpointEvery = 1;
  std::string EngineName = "reference";
  std::string BackendName = "auto";
  bool Scheduler = true;
  bool ExactFitness = false;
  std::string ChaosSpec;
  double DeadlineSeconds = 0.0;
  int64_t Workers = 1;
  CommandLine CL("pipeline",
                 "Sect. 4 end-to-end: evolve, filter, rank, select");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("runs", "independent optimisation runs (paper: 4)", &NumRuns);
  CL.addInt("generations", "generations per run", &Generations);
  CL.addInt("train-fields", "training fields incl. manual (paper: 1003)",
            &TrainFields);
  CL.addInt("reliability-fields", "random fields per density in the filter "
            "(paper: 1000)", &ReliabilityFields);
  CL.addInt("agents", "training agents (paper: 8)", &TrainingAgents);
  CL.addInt("seed", "base seed", &Seed);
  CL.addString("save", "append the winner to this genome library file",
               &SavePath);
  CL.addString("save-name", "name for the saved genome", &SaveName);
  CL.addString("checkpoint", "save per-run evolution state under this "
               "directory", &CheckpointDir);
  CL.addBool("resume", "continue killed runs from their checkpoints",
             &Resume);
  CL.addInt("checkpoint-every", "generations between checkpoint saves",
            &CheckpointEvery);
  CL.addString("engine", "simulation engine: reference | batch "
               "(bit-identical results)", &EngineName);
  CL.addString("backend", "batch-engine SIMD backend: auto | scalar | "
               "sliced64 | avx2 | rmaj64 (bit-identical results)", &BackendName);
  CL.addBool("scheduler", "generation-wide evaluation scheduler "
             "(memoization, batching, early abort)", &Scheduler);
  CL.addBool("exact-fitness", "disable bound-based early abort (every "
             "genome evaluated on every field; same champions either way)",
             &ExactFitness);
  CL.addString("chaos", "inject infrastructure faults, e.g. "
               "'seed=7,engine.replica.fail=0.02,ckpt.write.corrupt=0.2' "
               "(winners stay bit-identical)", &ChaosSpec);
  CL.addDouble("deadline", "watchdog: report a stall when a generation "
               "makes no progress for this many seconds (0 = off)",
               &DeadlineSeconds);
  CL.addInt("workers", "evaluation worker threads (results are "
            "bit-identical for every count)", &Workers, 1, 4096);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }
  EngineKind Engine = EngineKind::Reference;
  if (!parseEngineKind(EngineName, Engine)) {
    std::fprintf(stderr, "error: unknown engine '%s' (reference | batch)\n",
                 EngineName.c_str());
    return 1;
  }
  SimdBackend Backend = SimdBackend::Auto;
  if (!parseSimdBackend(BackendName, Backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (auto | scalar | "
                 "sliced64 | avx2 | rmaj64)\n", BackendName.c_str());
    return 1;
  }

  Torus T(Kind, 16);
  PipelineParams Params;
  Params.NumRuns = static_cast<int>(NumRuns);
  Params.Generations = static_cast<int>(Generations);
  Params.TrainingAgents = static_cast<int>(TrainingAgents);
  Params.TrainingRandomFields = static_cast<int>(TrainFields) - 3;
  Params.Evolution.Seed = static_cast<uint64_t>(Seed);
  Params.Evolution.Fitness.Sim.MaxSteps = 200;
  Params.Evolution.Fitness.NumWorkers = static_cast<int>(Workers);
  Params.Reliability.NumRandomFields = static_cast<int>(ReliabilityFields);
  Params.Reliability.Fitness.Sim.MaxSteps = 1000;
  Params.CheckpointDir = CheckpointDir;
  Params.Resume = Resume;
  Params.CheckpointEvery = static_cast<int>(CheckpointEvery);
  Params.Engine = Engine;
  Params.Backend = Backend;
  Params.Evolution.Scheduler.Enabled = Scheduler;
  Params.Evolution.Scheduler.ExactFitness = ExactFitness;
  Params.Evolution.Scheduler.GenerationDeadlineSeconds = DeadlineSeconds;
  Params.Evolution.Scheduler.OnStall = [](double SilentSeconds) {
    std::fprintf(stderr,
                 "warning: watchdog: no evaluation progress for %.0f s\n",
                 SilentSeconds);
  };

  std::optional<ScopedChaos> Chaos;
  if (!ChaosSpec.empty()) {
    auto Schedule = parseChaosSpec(ChaosSpec);
    if (!Schedule) {
      std::fprintf(stderr, "error: --chaos: %s\n",
                   Schedule.error().message().c_str());
      return 1;
    }
    Chaos.emplace(*Schedule);
    if (!chaosActive()) {
      std::fprintf(stderr, "error: --chaos requires a CA2A_CHAOS=ON build "
                   "(this binary compiled the sites out)\n");
      return 1;
    }
    std::printf("chaos: %s\n", describeChaosSchedule(*Schedule).c_str());
  }

  std::printf("pipeline on the %s-grid: %lld runs x %lld generations, "
              "%lld training fields, filter over k = {2,4,8,16,32,256}\n\n",
              gridKindName(Kind), static_cast<long long>(NumRuns),
              static_cast<long long>(Generations),
              static_cast<long long>(TrainFields));

  PipelineResult Result =
      runSelectionPipeline(T, Params, [&](const PipelineProgress &P) {
        switch (P.S) {
        case PipelineProgress::Stage::RunStarted:
          std::printf("-- run %d started\n", P.Run);
          break;
        case PipelineProgress::Stage::Generation:
          if (P.Generation.Generation % 10 == 0)
            std::printf("   run %d gen %4d: best F = %s, successful %d/20\n",
                        P.Run, P.Generation.Generation,
                        formatFixed(P.Generation.BestFitness, 2).c_str(),
                        P.Generation.NumCompletelySuccessful);
          break;
        case PipelineProgress::Stage::RunFinished:
          std::printf("-- run %d finished\n", P.Run);
          break;
        case PipelineProgress::Stage::CandidateTested:
          std::printf("   candidate %d: %s\n", P.CandidateIndex,
                      P.CandidateReliable ? "reliable" : "NOT reliable");
          break;
        case PipelineProgress::Stage::CheckpointRestored:
          std::printf("   run %d: %s\n", P.Run, P.Message.c_str());
          break;
        case PipelineProgress::Stage::CheckpointRejected:
          std::printf("   run %d: checkpoint rejected (%s), starting "
                      "fresh\n", P.Run, P.Message.c_str());
          break;
        case PipelineProgress::Stage::CheckpointFailed:
          std::fprintf(stderr, "   run %d: checkpoint save failed: %s\n",
                       P.Run, P.Message.c_str());
          break;
        }
      });

  if (Scheduler) {
    const SchedulerStats &SS = Result.Sched;
    std::printf("\nscheduler: %llu evals, %s%% cache hits, %s%% fields "
                "pruned, %llu batches (occupancy %s)\n",
                static_cast<unsigned long long>(SS.Requests),
                formatFixed(100.0 * SS.hitRate(), 1).c_str(),
                formatFixed(100.0 * SS.pruneRate(), 1).c_str(),
                static_cast<unsigned long long>(SS.Batches),
                formatFixed(SS.batchOccupancy(), 1).c_str());
    ChaosStats CS = chaosStats();
    if (Chaos || SS.TaskRetries || SS.ItemsQuarantined ||
        SS.GenomesDegraded || SS.WatchdogStalls)
      std::printf("robustness: %llu injected failures, %llu delays, %llu "
                  "corruptions; %llu retries, %llu items quarantined, %llu "
                  "genomes degraded, %llu stalls\n",
                  static_cast<unsigned long long>(CS.Failures),
                  static_cast<unsigned long long>(CS.Delays),
                  static_cast<unsigned long long>(CS.Corruptions),
                  static_cast<unsigned long long>(SS.TaskRetries),
                  static_cast<unsigned long long>(SS.ItemsQuarantined),
                  static_cast<unsigned long long>(SS.GenomesDegraded),
                  static_cast<unsigned long long>(SS.WatchdogStalls));
  }

  std::printf("\n%zu candidates, %d reliable\n", Result.Candidates.size(),
              Result.numReliable());
  for (size_t I = 0; I != Result.Candidates.size(); ++I) {
    const RankedCandidate &C = Result.Candidates[I];
    std::printf("#%zu (run %d): training F = %s, %s", I, C.SourceRun,
                formatFixed(C.TrainingFitness, 2).c_str(),
                C.reliable() ? "reliable" : "unreliable");
    if (C.reliable())
      std::printf(", total mean t = %s",
                  formatFixed(C.Report.totalMeanCommTime(), 2).c_str());
    std::printf("\n");
  }

  if (!Result.hasWinner()) {
    std::printf("\nno reliable FSM found at this budget — raise "
                "--generations / --runs\n");
    return 1;
  }

  const RankedCandidate &Winner = Result.winner();
  std::printf("\nwinner state table:\n%s\n",
              Winner.G.toTableString(Kind).c_str());
  for (const ReliabilityRow &Row : Winner.Report.Rows)
    std::printf("  k=%-3d: %d/%d solved, mean t = %s\n", Row.NumAgents,
                Row.SolvedFields, Row.NumFields,
                formatFixed(Row.MeanCommTime, 2).c_str());

  if (!SavePath.empty()) {
    std::vector<NamedGenome> Library;
    if (auto Existing = loadGenomeLibrary(SavePath))
      Library = Existing.takeValue();
    if (findGenome(Library, SaveName)) {
      std::fprintf(stderr, "error: '%s' already exists in %s\n",
                   SaveName.c_str(), SavePath.c_str());
      return 1;
    }
    Library.push_back({SaveName, Kind, Winner.G});
    if (auto Saved = saveGenomeLibrary(SavePath, Library); !Saved) {
      std::fprintf(stderr, "error: %s\n", Saved.error().message().c_str());
      return 1;
    }
    std::printf("\nwinner saved to %s as '%s'\n", SavePath.c_str(),
                SaveName.c_str());
  }
  return 0;
}
