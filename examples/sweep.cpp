//===- examples/sweep.cpp - Density sweep from the CLI --------------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Table 1 on demand: mean communication time per density, S vs T, with a
// configurable field budget — the quick way to explore how the T/S gap
// reacts to density and field size.
//
// Usage:
//   sweep --fields 200 --counts 2,4,8,16,32,256 --side 16
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "agent/GenomeFile.h"
#include "analysis/Table.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

int main(int Argc, char **Argv) {
  int64_t NumFields = 200;
  int64_t SideLength = 16;
  int64_t MaxSteps = 5000;
  int64_t Seed = 20130101;
  std::string Counts = "2,4,8,16,32,256";
  std::string GenomeFile;
  std::string GenomeS, GenomeT;
  bool Bordered = false;
  CommandLine CL("sweep", "Table-1 style density sweep, S vs T");
  CL.addInt("fields", "random fields per density", &NumFields);
  CL.addInt("side", "field side length", &SideLength);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field seed", &Seed);
  CL.addString("counts", "comma-separated agent counts", &Counts);
  CL.addString("genome-file", "genome library to draw agents from",
               &GenomeFile);
  CL.addString("genome-s", "library name of the S-grid agent", &GenomeS);
  CL.addString("genome-t", "library name of the T-grid agent", &GenomeT);
  CL.addBool("bordered", "sweep on bordered (non-cyclic) fields", &Bordered);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }

  SweepParams Params;
  Params.SideLength = static_cast<int>(SideLength);
  Params.AgentCounts.clear();
  for (const std::string &Piece : splitString(Counts, ',')) {
    auto Parsed = parseInt(trim(Piece));
    if (!Parsed || *Parsed < 1 ||
        *Parsed > SideLength * SideLength) {
      std::fprintf(stderr, "error: bad agent count '%s'\n", Piece.c_str());
      return 1;
    }
    Params.AgentCounts.push_back(static_cast<int>(*Parsed));
  }
  Params.NumRandomFields = static_cast<int>(NumFields);
  Params.FieldSeed = static_cast<uint64_t>(Seed);
  Params.Fitness.Sim.MaxSteps = static_cast<int>(MaxSteps);
  Params.Fitness.Sim.Bordered = Bordered;

  // Default to the paper's published FSMs; optionally pull either agent
  // from a genome library (e.g. data/evolved_genomes.txt).
  Genome SquareGenome = bestSquareAgent();
  Genome TriangulateGenome = bestTriangulateAgent();
  if (!GenomeS.empty() || !GenomeT.empty()) {
    if (GenomeFile.empty()) {
      std::fprintf(stderr, "error: --genome-s/--genome-t need "
                           "--genome-file\n");
      return 1;
    }
    auto Library = loadGenomeLibrary(GenomeFile);
    if (!Library) {
      std::fprintf(stderr, "error: %s\n", Library.error().message().c_str());
      return 1;
    }
    auto Pick = [&](const std::string &Name, GridKind Kind,
                    Genome &Target) -> bool {
      if (Name.empty())
        return true;
      const NamedGenome *Entry = findGenome(*Library, Name);
      if (!Entry) {
        std::fprintf(stderr, "error: no genome '%s' in %s\n", Name.c_str(),
                     GenomeFile.c_str());
        return false;
      }
      if (Entry->Kind != Kind)
        std::fprintf(stderr, "warning: genome '%s' was evolved for the "
                             "%s-grid\n",
                     Name.c_str(), gridKindName(Entry->Kind));
      Target = Entry->G;
      return true;
    };
    if (!Pick(GenomeS, GridKind::Square, SquareGenome) ||
        !Pick(GenomeT, GridKind::Triangulate, TriangulateGenome))
      return 1;
  }

  auto Sweep = runDensitySweep(SquareGenome, TriangulateGenome, Params);
  std::printf("%s", formatDensityTable(Sweep).c_str());
  for (const DensityComparison &C : Sweep) {
    if (!C.Triangulate.completelySuccessful() ||
        !C.Square.completelySuccessful())
      std::printf("note: k=%d solved T %d/%d, S %d/%d — means cover solved "
                  "fields\n",
                  C.NumAgents, C.Triangulate.SolvedFields,
                  C.Triangulate.NumFields, C.Square.SolvedFields,
                  C.Square.NumFields);
  }
  return 0;
}
