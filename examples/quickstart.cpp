//===- examples/quickstart.cpp - Smallest end-to-end use ------------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// The five-minute tour: build a torus, place agents, run the published
// best FSM, and read the communication time. Compare the same random
// field on the S- and T-grids.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "sim/World.h"

#include <cstdio>

using namespace ca2a;

int main() {
  // All-to-all communication: k agents, each holding one exclusive bit of
  // information, must all gather the complete k-bit vector by meeting on
  // the grid. The embedded FSM decides each agent's moves.
  constexpr int SideLength = 16;
  constexpr int NumAgents = 16;

  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    // 1. The cyclic grid (4-valent "S" torus or 6-valent "T" torus).
    Torus Grid(Kind, SideLength);

    // 2. An initial configuration: 16 agents on random cells with random
    //    headings, reproducible via the seed.
    Rng FieldRng(/*Seed=*/2013);
    InitialConfiguration Field = randomConfiguration(Grid, NumAgents, FieldRng);

    // 3. A world running the paper's best published FSM for this grid.
    //    Agents start in control state (ID mod 2) — the paper's
    //    reliability device — and may write colour flags as pheromones.
    World W(Grid);
    SimOptions Options;
    Options.MaxSteps = 1000;
    W.reset(bestAgent(Kind), Field.Placements, Options);

    // 4. Run until every agent is informed.
    SimResult Result = W.run();

    if (Result.Success)
      std::printf("%s-grid: all %d agents informed after %d steps\n",
                  gridKindName(Kind), Result.NumAgents, Result.TComm);
    else
      std::printf("%s-grid: only %d/%d agents informed within %d steps\n",
                  gridKindName(Kind), Result.InformedAgents, Result.NumAgents,
                  Options.MaxSteps);
  }
  std::printf("\nThe T-grid run is typically ~1.5x faster — the paper's "
              "headline result.\n");
  return 0;
}
