//===- examples/watch.cpp - Step-by-step simulation viewer ----------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Prints the field every few steps while a simulation runs — the cheapest
// way to *see* agents blocking each other, laying colour trails, and
// settling into the streets/honeycombs of Figs. 6-7.
//
// Usage:
//   watch --grid T --agents 8 --every 5 --max-panels 12
//   watch --grid S --agents 4 --obstacles 12
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "sim/Render.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t NumAgents = 8;
  int64_t Every = 5;
  int64_t MaxPanels = 10;
  int64_t MaxSteps = 2000;
  int64_t Seed = 2013;
  int64_t NumObstacles = 0;
  bool Bordered = false;
  CommandLine CL("watch", "Prints the field every N steps while running");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("agents", "number of agents", &NumAgents);
  CL.addInt("every", "steps between panels", &Every);
  CL.addInt("max-panels", "stop printing after this many panels",
            &MaxPanels);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field seed", &Seed);
  CL.addInt("obstacles", "random obstacle cells", &NumObstacles);
  CL.addBool("bordered", "use a bordered (non-cyclic) field", &Bordered);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }
  if (Every < 1 || NumAgents < 1) {
    std::fprintf(stderr, "error: --every and --agents must be positive\n");
    return 1;
  }

  Torus T(Kind, 16);
  Rng R(static_cast<uint64_t>(Seed));
  SimOptions O;
  O.MaxSteps = static_cast<int>(MaxSteps);
  O.Bordered = Bordered;
  if (NumObstacles > 0)
    O.Obstacles = randomObstacles(T, static_cast<int>(NumObstacles), R);
  InitialConfiguration C = randomConfigurationAvoiding(
      T, static_cast<int>(NumAgents), R, O.Obstacles);
  // --agents / --obstacles are user input: report impossible combinations
  // (e.g. more agents than free cells) instead of tripping an assert.
  if (auto Valid = World::validatePlacements(T, C.Placements, O); !Valid) {
    std::fprintf(stderr, "error: %s\n", Valid.error().message().c_str());
    return 1;
  }

  World W(T);
  W.reset(bestAgent(Kind), C.Placements, O);
  int PanelsPrinted = 0;
  SimResult Result = W.run([&](const World &World, int Time) {
    if (Time % Every != 0 || PanelsPrinted >= MaxPanels)
      return;
    ++PanelsPrinted;
    std::printf("%s", renderPanels(
                          World, formatString("%s-grid  t = %d  informed "
                                              "%d/%d",
                                              gridKindName(Kind), Time,
                                              World.informedCount(),
                                              World.numAgents()))
                          .c_str());
    std::printf("\n");
  });

  if (Result.Success)
    std::printf("solved at t = %d\n", Result.TComm);
  else
    std::printf("not solved within %lld steps (%d/%d informed)\n",
                static_cast<long long>(MaxSteps), Result.InformedAgents,
                Result.NumAgents);
  return 0;
}
