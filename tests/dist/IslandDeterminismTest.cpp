//===- tests/dist/IslandDeterminismTest.cpp - Distributed determinism -----===//
//
// Extends the repo's determinism wall (tests/sim/DeterminismTest.cpp) to
// the island model: for a fixed (island count, topology, base seed) the
// aggregate champion is bit-identical across evaluation worker counts and
// across the file and socket transports. This is the acceptance contract
// the distributed layer rests on — timing, scheduling and transport
// latency may vary freely; results may not.
//
//===----------------------------------------------------------------------===//

#include "dist/IslandRunner.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

using namespace ca2a;

namespace {

struct RunConfig {
  int Islands = 4;
  TopologyKind Topology = TopologyKind::Ring;
  uint64_t Seed = 1;
  TransportKind Transport = TransportKind::Socket;
  int Workers = 1;
};

/// Small but non-trivial: enough generations for two migration rounds.
constexpr int kGenerations = 6;
constexpr int kInterval = 2;

Expected<IslandRunResult> runConfig(const RunConfig &C,
                                    const std::string &MailboxDir) {
  Torus T(GridKind::Triangulate, 16);
  std::vector<InitialConfiguration> Fields =
      standardConfigurationSet(T, /*NumAgents=*/4, /*NumRandomFields=*/5,
                               /*Seed=*/99);
  IslandRunParams Params;
  Params.NumIslands = C.Islands;
  Params.Topology = C.Topology;
  Params.MigrationInterval = kInterval;
  Params.MigrantCount = 2;
  Params.Transport = C.Transport;
  if (C.Transport == TransportKind::File) {
    std::filesystem::remove_all(MailboxDir);
    Params.MailboxDir = MailboxDir;
  }
  Params.Evo.Seed = C.Seed;
  Params.Evo.Fitness.Sim.MaxSteps = 60;
  Params.Evo.Fitness.NumWorkers = C.Workers;
  Params.Grid = T.kind();
  Params.SideLength = T.sideLength();
  return runIslands(T, Fields, Params, kGenerations);
}

void expectSameChampion(const IslandRunResult &A, const IslandRunResult &B,
                        const std::string &What) {
  EXPECT_TRUE(A.Champion.G == B.Champion.G) << What;
  EXPECT_EQ(A.Champion.Fitness, B.Champion.Fitness) << What;
  EXPECT_EQ(A.ChampionIsland, B.ChampionIsland) << What;
  ASSERT_EQ(A.Islands.size(), B.Islands.size());
  for (size_t I = 0; I != A.Islands.size(); ++I) {
    EXPECT_TRUE(A.Islands[I].Best.G == B.Islands[I].Best.G)
        << What << " (island " << I << ")";
    EXPECT_EQ(A.Islands[I].Evaluations, B.Islands[I].Evaluations)
        << What << " (island " << I << ")";
  }
}

// Per-process suffix: ctest runs this suite both as gtest-discovered
// per-case entries and as the aggregate dist_determinism entry, possibly
// concurrently — a shared mailbox directory would let one process's
// cleanup delete blocks the other is mid-exchange on.
std::string tempMailbox(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

} // namespace

// Island-count x topology sweep: every configuration must give the same
// per-island bests and champion regardless of worker count or transport.
TEST(DeterminismTest, IslandSweepIsWorkerAndTransportInvariant) {
  for (int Islands : {1, 2, 4}) {
    for (TopologyKind Topology :
         {TopologyKind::Ring, TopologyKind::Hypercube}) {
      for (uint64_t Seed : {1u, 2u}) {
        RunConfig Base{Islands, Topology, Seed, TransportKind::Socket, 1};
        auto Reference = runConfig(Base, "");
        ASSERT_TRUE(Reference) << Reference.error().message();

        RunConfig MoreWorkers = Base;
        MoreWorkers.Workers = 3;
        auto Workers = runConfig(MoreWorkers, "");
        ASSERT_TRUE(Workers) << Workers.error().message();
        expectSameChampion(*Reference, *Workers,
                           "workers=3 vs workers=1, islands=" +
                               std::to_string(Islands));

        RunConfig FileTransport = Base;
        FileTransport.Transport = TransportKind::File;
        FileTransport.Workers = 2;
        auto File =
            runConfig(FileTransport, tempMailbox("ca2a_det_sweep_mb"));
        ASSERT_TRUE(File) << File.error().message();
        expectSameChampion(*Reference, *File,
                           "file vs socket, islands=" +
                               std::to_string(Islands));
      }
    }
  }
  std::filesystem::remove_all(tempMailbox("ca2a_det_sweep_mb"));
}

// The acceptance pin: a 4-island ring over ten base seeds, bit-identical
// across {1, 2, 4} workers per island and across both transports.
TEST(DeterminismTest, FourIslandRingTenSeedPin) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RunConfig Base{4, TopologyKind::Ring, Seed, TransportKind::Socket, 1};
    auto Reference = runConfig(Base, "");
    ASSERT_TRUE(Reference) << Reference.error().message();

    for (int Workers : {2, 4}) {
      RunConfig C = Base;
      C.Workers = Workers;
      auto R = runConfig(C, "");
      ASSERT_TRUE(R) << R.error().message();
      expectSameChampion(*Reference, *R,
                         "seed " + std::to_string(Seed) + ", workers " +
                             std::to_string(Workers));
    }
    RunConfig FileTransport = Base;
    FileTransport.Transport = TransportKind::File;
    auto File = runConfig(FileTransport, tempMailbox("ca2a_det_pin_mb"));
    ASSERT_TRUE(File) << File.error().message();
    expectSameChampion(*Reference, *File,
                       "seed " + std::to_string(Seed) + ", file transport");
  }
  std::filesystem::remove_all(tempMailbox("ca2a_det_pin_mb"));
}

// Migration must matter (the sweep above would pass vacuously if islands
// never exchanged): with a ring and a tight interval, at least one island
// accepts at least one migrant.
TEST(DeterminismTest, IslandMigrationActuallyHappens) {
  RunConfig C{4, TopologyKind::Ring, 3, TransportKind::Socket, 1};
  auto R = runConfig(C, "");
  ASSERT_TRUE(R) << R.error().message();
  uint64_t Rounds = 0, Received = 0;
  for (const IslandOutcome &Out : R->Islands) {
    Rounds += Out.Migration.MigrationRounds;
    Received += Out.Migration.MigrantsReceived;
  }
  EXPECT_EQ(Rounds, 4u * ((kGenerations - 1) / kInterval));
  EXPECT_GT(Received, 0u);
}
