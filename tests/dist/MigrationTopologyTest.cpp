//===- tests/dist/MigrationTopologyTest.cpp - Exchange graph tests --------===//
//
// The static exchange graphs of dist/MigrationTopology.h: edge sets are a
// pure function of (kind, island count), neighbour lists are sorted, and
// invalid configurations fail with a typed error instead of producing a
// half-formed graph.
//
//===----------------------------------------------------------------------===//

#include "dist/MigrationTopology.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ca2a;

TEST(MigrationTopologyTest, RingEdges) {
  auto Topo = MigrationTopology::create(TopologyKind::Ring, 4);
  ASSERT_TRUE(Topo) << Topo.error().message();
  EXPECT_EQ(Topo->numIslands(), 4);
  EXPECT_EQ(Topo->numEdges(), 4u);
  for (int I = 0; I != 4; ++I) {
    EXPECT_EQ(Topo->outNeighbors(I), std::vector<int>{(I + 1) % 4});
    EXPECT_EQ(Topo->inNeighbors(I), std::vector<int>{(I + 3) % 4});
  }
}

TEST(MigrationTopologyTest, SingleIslandRingHasNoEdges) {
  auto Topo = MigrationTopology::create(TopologyKind::Ring, 1);
  ASSERT_TRUE(Topo) << Topo.error().message();
  EXPECT_EQ(Topo->numEdges(), 0u);
  EXPECT_TRUE(Topo->outNeighbors(0).empty());
  EXPECT_TRUE(Topo->inNeighbors(0).empty());
}

TEST(MigrationTopologyTest, HypercubeEdgesAreXorNeighboursSorted) {
  auto Topo = MigrationTopology::create(TopologyKind::Hypercube, 8);
  ASSERT_TRUE(Topo) << Topo.error().message();
  // N * log2(N) directed edges, bidirectional.
  EXPECT_EQ(Topo->numEdges(), 24u);
  for (int I = 0; I != 8; ++I) {
    std::vector<int> Want = {I ^ 1, I ^ 2, I ^ 4};
    std::sort(Want.begin(), Want.end());
    EXPECT_EQ(Topo->outNeighbors(I), Want);
    EXPECT_EQ(Topo->inNeighbors(I), Want);
  }
}

TEST(MigrationTopologyTest, NoneHasNoEdges) {
  auto Topo = MigrationTopology::create(TopologyKind::None, 6);
  ASSERT_TRUE(Topo) << Topo.error().message();
  EXPECT_EQ(Topo->numEdges(), 0u);
  for (int I = 0; I != 6; ++I)
    EXPECT_TRUE(Topo->outNeighbors(I).empty());
}

TEST(MigrationTopologyTest, HypercubeRejectsNonPowerOfTwo) {
  for (int N : {3, 5, 6, 12}) {
    auto Topo = MigrationTopology::create(TopologyKind::Hypercube, N);
    ASSERT_FALSE(Topo) << "hypercube over " << N << " islands must fail";
    EXPECT_EQ(Topo.error().code(), ErrorCode::InvalidArgument);
  }
}

TEST(MigrationTopologyTest, RejectsNonPositiveIslandCounts) {
  for (int N : {0, -1}) {
    auto Topo = MigrationTopology::create(TopologyKind::Ring, N);
    ASSERT_FALSE(Topo);
    EXPECT_EQ(Topo.error().code(), ErrorCode::InvalidArgument);
  }
}

TEST(MigrationTopologyTest, NamesRoundTrip) {
  for (TopologyKind Kind :
       {TopologyKind::None, TopologyKind::Ring, TopologyKind::Hypercube}) {
    TopologyKind Parsed;
    ASSERT_TRUE(parseTopologyKind(topologyKindName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  TopologyKind Ignored;
  EXPECT_FALSE(parseTopologyKind("torus", Ignored));
  EXPECT_FALSE(parseTopologyKind("", Ignored));
}
