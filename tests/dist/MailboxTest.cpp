//===- tests/dist/MailboxTest.cpp - Migrant transport tests ---------------===//
//
// The Mailbox contract both transports must honour: content-addressed
// delivery, idempotent re-posts (and loud rejection of conflicting ones),
// typed timeouts, and — for the durable file transport — the checkpoint
// recovery discipline applied to migrant blocks: a damaged primary falls
// back to its ".bak" sibling, damage beyond recovery surfaces a typed
// error, and a wrong-route or wrong-sequence delivery is never silently
// injected into a pool.
//
//===----------------------------------------------------------------------===//

#include "dist/Mailbox.h"
#include "dist/SocketMailbox.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace ca2a;

namespace {

/// Real individuals from a short evolution run, so blocks carry genomes
/// with the exact dims the validation cross-checks.
struct BlockFixture {
  GenomeDims Dims;
  std::vector<Individual> Migrants;
};

BlockFixture makeFixture() {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params;
  Params.Seed = 11;
  Params.Fitness.Sim.MaxSteps = 60;
  Evolution E(T, standardConfigurationSet(T, 4, 4, 5), Params);
  E.stepGeneration();
  BlockFixture F;
  F.Dims = E.snapshot().Dims;
  F.Migrants = E.selectMigrants(2);
  return F;
}

MigrantBlock makeBlock(const BlockFixture &F, int From, int To,
                       uint64_t Seq) {
  MigrantBlock B;
  B.FromIsland = From;
  B.ToIsland = To;
  B.Sequence = Seq;
  B.ContextFingerprint = 0xfeedbeef;
  B.Dims = F.Dims;
  B.Migrants = F.Migrants;
  return B;
}

// Per-process suffix: ctest runs this suite both as gtest-discovered
// per-case entries and as the aggregate dist_transport_robustness entry,
// possibly concurrently — a shared directory would let one process's
// cleanup race the other's collect.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "/" + Name + "_" +
                    std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(Dir);
  return Dir;
}

void expectSameMigrants(const MigrantBlock &A, const MigrantBlock &B) {
  ASSERT_EQ(A.Migrants.size(), B.Migrants.size());
  for (size_t I = 0; I != A.Migrants.size(); ++I) {
    EXPECT_TRUE(A.Migrants[I].G == B.Migrants[I].G);
    EXPECT_EQ(A.Migrants[I].Fitness, B.Migrants[I].Fitness);
    EXPECT_EQ(A.Migrants[I].SolvedFields, B.Migrants[I].SolvedFields);
  }
}

void corruptFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  In.close();
  ASSERT_FALSE(Text.empty());
  size_t Mid = Text.size() / 2;
  Text[Mid] = Text[Mid] == 'a' ? 'b' : 'a';
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

} // namespace

TEST(MailboxTest, FileRoundTripsBlock) {
  BlockFixture F = makeFixture();
  std::string Dir = freshDir("ca2a_mailbox_roundtrip");
  FileMailbox Box(Dir);
  MigrantBlock B = makeBlock(F, 0, 1, 1);
  auto Posted = Box.post(B);
  ASSERT_TRUE(Posted) << Posted.error().message();
  auto Collected = Box.collect(0, 1, 1, B.ContextFingerprint, 5.0);
  ASSERT_TRUE(Collected) << Collected.error().message();
  EXPECT_EQ(Collected->FromIsland, 0);
  EXPECT_EQ(Collected->ToIsland, 1);
  EXPECT_EQ(Collected->Sequence, 1u);
  expectSameMigrants(*Collected, B);
  EXPECT_EQ(Box.stats().Posts, 1u);
  EXPECT_EQ(Box.stats().Collects, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(MailboxTest, FileRepostIsIdempotentButConflictIsLoud) {
  BlockFixture F = makeFixture();
  std::string Dir = freshDir("ca2a_mailbox_idempotent");
  FileMailbox Box(Dir);
  MigrantBlock B = makeBlock(F, 0, 1, 1);
  ASSERT_TRUE(Box.post(B));
  // A resumed island replays the round with byte-identical content: fine.
  auto Replayed = Box.post(B);
  EXPECT_TRUE(Replayed) << Replayed.error().message();
  // Different bytes under the same key mean the determinism contract
  // broke somewhere — that must never be papered over.
  MigrantBlock Conflicting = B;
  Conflicting.Migrants[0].Fitness += 1.0;
  auto Conflict = Box.post(Conflicting);
  ASSERT_FALSE(Conflict);
  EXPECT_NE(Conflict.error().message().find("different"),
            std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(MailboxTest, FileCollectTimesOutTyped) {
  std::string Dir = freshDir("ca2a_mailbox_timeout");
  FileMailbox Box(Dir);
  auto Collected = Box.collect(0, 1, 1, 0, 0.05);
  ASSERT_FALSE(Collected);
  EXPECT_EQ(Collected.error().code(), ErrorCode::Timeout);
  std::filesystem::remove_all(Dir);
}

TEST(MailboxTest, FileCorruptPrimaryRecoversFromBackup) {
  BlockFixture F = makeFixture();
  std::string Dir = freshDir("ca2a_mailbox_bak");
  FileMailbox Box(Dir);
  MigrantBlock B = makeBlock(F, 2, 3, 4);
  ASSERT_TRUE(Box.post(B));
  corruptFile(FileMailbox::blockPath(Dir, 2, 3, 4));
  auto Collected = Box.collect(2, 3, 4, B.ContextFingerprint, 5.0);
  ASSERT_TRUE(Collected) << Collected.error().message();
  expectSameMigrants(*Collected, B);
  EXPECT_EQ(Box.stats().BackupRecoveries, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(MailboxTest, FileCorruptPrimaryAndBackupSurfaceTypedError) {
  BlockFixture F = makeFixture();
  std::string Dir = freshDir("ca2a_mailbox_bak_dead");
  FileMailbox Box(Dir);
  MigrantBlock B = makeBlock(F, 0, 1, 2);
  ASSERT_TRUE(Box.post(B));
  std::string Primary = FileMailbox::blockPath(Dir, 0, 1, 2);
  corruptFile(Primary);
  corruptFile(checkpointBackupPath(Primary));
  auto Collected = Box.collect(0, 1, 2, B.ContextFingerprint, 5.0);
  ASSERT_FALSE(Collected) << "a doubly-damaged block must not be injected";
  EXPECT_EQ(Collected.error().code(), ErrorCode::Corrupt);
  EXPECT_NE(Collected.error().message().find("primary"), std::string::npos);
  EXPECT_NE(Collected.error().message().find("backup"), std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(MailboxTest, FileWrongSequenceDeliveryIsRejected) {
  BlockFixture F = makeFixture();
  std::string Dir = freshDir("ca2a_mailbox_wrong_seq");
  FileMailbox Box(Dir);
  MigrantBlock B = makeBlock(F, 0, 1, 1);
  ASSERT_TRUE(Box.post(B));
  // Misfile the round-1 block (and its backup) under the round-2 key —
  // the stale-delivery shape a buggy deployment script could produce.
  std::string Round1 = FileMailbox::blockPath(Dir, 0, 1, 1);
  std::string Round2 = FileMailbox::blockPath(Dir, 0, 1, 2);
  std::filesystem::copy_file(Round1, Round2);
  std::filesystem::copy_file(checkpointBackupPath(Round1),
                             checkpointBackupPath(Round2));
  auto Collected = Box.collect(0, 1, 2, B.ContextFingerprint, 5.0);
  ASSERT_FALSE(Collected) << "a stale round must never be injected";
  EXPECT_EQ(Collected.error().code(), ErrorCode::Corrupt);
  EXPECT_NE(Collected.error().message().find("sequence"),
            std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(MailboxTest, FileFingerprintMismatchIsRejected) {
  BlockFixture F = makeFixture();
  std::string Dir = freshDir("ca2a_mailbox_fingerprint");
  FileMailbox Box(Dir);
  MigrantBlock B = makeBlock(F, 0, 1, 1);
  ASSERT_TRUE(Box.post(B));
  auto Collected = Box.collect(0, 1, 1, B.ContextFingerprint + 1, 5.0);
  ASSERT_FALSE(Collected);
  EXPECT_EQ(Collected.error().code(), ErrorCode::Corrupt);
  std::filesystem::remove_all(Dir);
}

TEST(MailboxTest, SocketRoundTripsBlock) {
  BlockFixture F = makeFixture();
  auto Server = SocketMailboxServer::listen();
  ASSERT_TRUE(Server) << Server.error().message();
  auto Client = SocketMailbox::connect("127.0.0.1", (*Server)->port());
  ASSERT_TRUE(Client) << Client.error().message();
  MigrantBlock B = makeBlock(F, 1, 2, 3);
  auto Posted = (*Client)->post(B);
  ASSERT_TRUE(Posted) << Posted.error().message();
  auto Collected = (*Client)->collect(1, 2, 3, B.ContextFingerprint, 5.0);
  ASSERT_TRUE(Collected) << Collected.error().message();
  expectSameMigrants(*Collected, B);
}

TEST(MailboxTest, SocketRepostIsIdempotentButConflictIsLoud) {
  BlockFixture F = makeFixture();
  auto Server = SocketMailboxServer::listen();
  ASSERT_TRUE(Server) << Server.error().message();
  auto Client = SocketMailbox::connect("127.0.0.1", (*Server)->port());
  ASSERT_TRUE(Client) << Client.error().message();
  MigrantBlock B = makeBlock(F, 0, 1, 1);
  ASSERT_TRUE((*Client)->post(B));
  EXPECT_TRUE((*Client)->post(B));
  MigrantBlock Conflicting = B;
  Conflicting.Migrants[0].Fitness += 1.0;
  auto Conflict = (*Client)->post(Conflicting);
  ASSERT_FALSE(Conflict);
  EXPECT_NE(Conflict.error().message().find("different"),
            std::string::npos);
}

TEST(MailboxTest, SocketCollectTimesOutTyped) {
  auto Server = SocketMailboxServer::listen();
  ASSERT_TRUE(Server) << Server.error().message();
  auto Client = SocketMailbox::connect("127.0.0.1", (*Server)->port());
  ASSERT_TRUE(Client) << Client.error().message();
  auto Collected = (*Client)->collect(0, 1, 9, 0, 0.05);
  ASSERT_FALSE(Collected);
  EXPECT_EQ(Collected.error().code(), ErrorCode::Timeout);
}

TEST(MailboxTest, SocketDeliversAcrossClients) {
  BlockFixture F = makeFixture();
  auto Server = SocketMailboxServer::listen();
  ASSERT_TRUE(Server) << Server.error().message();
  auto Sender = SocketMailbox::connect("127.0.0.1", (*Server)->port());
  auto Receiver = SocketMailbox::connect("127.0.0.1", (*Server)->port());
  ASSERT_TRUE(Sender);
  ASSERT_TRUE(Receiver);
  MigrantBlock B = makeBlock(F, 3, 0, 2);
  ASSERT_TRUE((*Sender)->post(B));
  auto Collected = (*Receiver)->collect(3, 0, 2, B.ContextFingerprint, 5.0);
  ASSERT_TRUE(Collected) << Collected.error().message();
  expectSameMigrants(*Collected, B);
}
