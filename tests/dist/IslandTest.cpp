//===- tests/dist/IslandTest.cpp - Island unit tests ----------------------===//
//
// The island building blocks below the runner: seed derivation, the
// selectMigrants/injectMigrants pool surgery, the 1-island == plain
// evolve equivalence, and the kill/resume contract (an island destroyed
// mid-run and rebuilt from its checkpoint finishes bit-identically to an
// uninterrupted one).
//
//===----------------------------------------------------------------------===//

#include "dist/IslandRunner.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <set>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

EvolutionParams miniEvolution(uint64_t Seed) {
  EvolutionParams P;
  P.Seed = Seed;
  P.Fitness.Sim.MaxSteps = 60;
  return P;
}

std::vector<InitialConfiguration> miniFields(const Torus &T) {
  return standardConfigurationSet(T, /*NumAgents=*/4, /*NumRandomFields=*/5,
                                  /*Seed=*/99);
}

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "/" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace

TEST(IslandTest, DeriveIslandSeedKeepsBaseForIslandZero) {
  EXPECT_EQ(deriveIslandSeed(42, 0), 42u);
  EXPECT_EQ(deriveIslandSeed(1, 0), 1u);
}

TEST(IslandTest, DeriveIslandSeedIsStableAndDistinct) {
  std::set<uint64_t> Seen;
  for (int I = 0; I != 16; ++I) {
    uint64_t S = deriveIslandSeed(7, I);
    EXPECT_EQ(S, deriveIslandSeed(7, I)) << "must be pure";
    EXPECT_TRUE(Seen.insert(S).second)
        << "islands must draw distinct streams (island " << I << ")";
  }
  EXPECT_NE(deriveIslandSeed(7, 1), deriveIslandSeed(8, 1))
      << "different base seeds must not collide";
}

TEST(IslandTest, SelectMigrantsReturnsRankOrderedCopies) {
  Torus T(GridKind::Triangulate, 16);
  Evolution E(T, miniFields(T), miniEvolution(3));
  E.stepGeneration();
  std::vector<Individual> Top = E.selectMigrants(4);
  ASSERT_EQ(Top.size(), 4u);
  for (size_t I = 1; I != Top.size(); ++I)
    EXPECT_LE(Top[I - 1].Fitness, Top[I].Fitness);
  EXPECT_TRUE(Top[0].G == E.bestEver().G);
}

TEST(IslandTest, InjectMigrantsReplacesWorstOnlyWhenFitter) {
  Torus T(GridKind::Triangulate, 16);
  Evolution E(T, miniFields(T), miniEvolution(3));
  E.stepGeneration();
  int EvalsBefore = E.evaluations();

  // A strictly fitter stranger (borrowed from another seed's run) must
  // displace the worst member; re-offering it must then dedup to zero.
  Evolution Other(T, miniFields(T), miniEvolution(1234));
  for (int I = 0; I != 3; ++I)
    Other.stepGeneration();
  std::vector<Individual> Offer = Other.selectMigrants(1);
  Offer[0].Fitness = -1.0; // Fitter than anything in E's pool.
  EXPECT_EQ(E.injectMigrants(Offer), 1);
  EXPECT_EQ(E.injectMigrants(Offer), 0) << "duplicates must not re-enter";

  // An unfit stranger must be ignored.
  std::vector<Individual> Unfit = Other.selectMigrants(2);
  Unfit[1].Fitness = 1e9;
  EXPECT_EQ(E.injectMigrants({Unfit[1]}), 0);

  EXPECT_EQ(E.evaluations(), EvalsBefore)
      << "injection must not consume evaluations";
}

TEST(IslandTest, SingleIslandRunMatchesPlainEvolve) {
  Torus T(GridKind::Triangulate, 16);
  std::vector<InitialConfiguration> Fields = miniFields(T);

  Evolution Plain(T, Fields, miniEvolution(5));
  for (int I = 0; I != 6; ++I)
    Plain.stepGeneration();

  IslandRunParams Params;
  Params.NumIslands = 1;
  Params.Topology = TopologyKind::Ring;
  Params.MigrationInterval = 2;
  Params.Transport = TransportKind::Socket;
  Params.Evo = miniEvolution(5);
  Params.Grid = T.kind();
  Params.SideLength = T.sideLength();
  auto Result = runIslands(T, Fields, Params, 6);
  ASSERT_TRUE(Result) << Result.error().message();
  EXPECT_TRUE(Result->Champion.G == Plain.bestEver().G)
      << "a 1-island distributed run must equal a plain evolve run";
  EXPECT_EQ(Result->Champion.Fitness, Plain.bestEver().Fitness);
}

TEST(IslandTest, KilledIslandResumesBitIdentically) {
  Torus T(GridKind::Triangulate, 16);
  std::vector<InitialConfiguration> Fields = miniFields(T);
  auto Topo = MigrationTopology::create(TopologyKind::Ring, 1);
  ASSERT_TRUE(Topo);

  IslandOptions Opts;
  Opts.Index = 0;
  Opts.MigrationInterval = 2;
  Opts.Grid = T.kind();
  Opts.SideLength = T.sideLength();

  // Reference: uninterrupted 8 generations.
  auto Reference =
      Island::create(T, Fields, miniEvolution(9), *Topo, Opts, nullptr);
  ASSERT_TRUE(Reference) << Reference.error().message();
  auto RefBest = (*Reference)->run(8);
  ASSERT_TRUE(RefBest) << RefBest.error().message();

  // "Killed" island: runs 5 generations, is destroyed, and a new
  // incarnation resumes from the checkpoint to the same horizon.
  std::string Dir = freshDir("ca2a_island_resume");
  Opts.CheckpointPath = islandCheckpointPath(Dir, 0);
  {
    auto FirstLife =
        Island::create(T, Fields, miniEvolution(9), *Topo, Opts, nullptr);
    ASSERT_TRUE(FirstLife) << FirstLife.error().message();
    EXPECT_FALSE((*FirstLife)->resumed());
    ASSERT_TRUE((*FirstLife)->run(5));
  }
  auto SecondLife =
      Island::create(T, Fields, miniEvolution(9), *Topo, Opts, nullptr);
  ASSERT_TRUE(SecondLife) << SecondLife.error().message();
  EXPECT_TRUE((*SecondLife)->resumed());
  EXPECT_EQ((*SecondLife)->evolution().generation(), 5);
  auto ResumedBest = (*SecondLife)->run(8);
  ASSERT_TRUE(ResumedBest) << ResumedBest.error().message();

  EXPECT_TRUE(ResumedBest->G == RefBest->G)
      << "kill/resume must not change the champion";
  EXPECT_EQ(ResumedBest->Fitness, RefBest->Fitness);
  EXPECT_EQ((*SecondLife)->evolution().evaluations(),
            (*Reference)->evolution().evaluations());
  std::filesystem::remove_all(Dir);
}

TEST(IslandTest, ChampionSelectionIsDeterministic) {
  IslandOutcome A;
  A.Index = 0;
  A.Best.Fitness = 50.0;
  IslandOutcome B;
  B.Index = 1;
  B.Best.Fitness = 40.0;
  IslandOutcome C;
  C.Index = 2;
  C.Best.Fitness = 40.0;
  EXPECT_EQ(selectChampionIndex({A, B, C}), 1)
      << "lowest fitness wins, ties break to the lowest index";
  EXPECT_EQ(selectChampionIndex({A}), 0);
}
