//===- tests/config/InitialConfigurationTest.cpp - Field-gen unit tests ---===//

#include "config/InitialConfiguration.h"

#include "gtest/gtest.h"

#include <set>

using namespace ca2a;

class RandomConfigTest : public ::testing::TestWithParam<GridKind> {};

TEST_P(RandomConfigTest, DistinctCellsAndValidDirections) {
  Torus T(GetParam(), 16);
  Rng R(7);
  for (int K : {1, 2, 8, 64, 255}) {
    InitialConfiguration C = randomConfiguration(T, K, R);
    EXPECT_EQ(C.numAgents(), K);
    EXPECT_TRUE(isValidConfiguration(T, C));
    std::set<int> Cells;
    for (const Placement &P : C.Placements) {
      Cells.insert(T.indexOf(P.Pos));
      EXPECT_LT(P.Direction, T.degree());
    }
    EXPECT_EQ(static_cast<int>(Cells.size()), K);
  }
}

TEST_P(RandomConfigTest, CoversAllDirectionsEventually) {
  Torus T(GetParam(), 16);
  Rng R(11);
  std::set<int> Directions;
  for (int I = 0; I != 40; ++I) {
    InitialConfiguration C = randomConfiguration(T, 8, R);
    for (const Placement &P : C.Placements)
      Directions.insert(P.Direction);
  }
  EXPECT_EQ(static_cast<int>(Directions.size()), T.degree());
}

INSTANTIATE_TEST_SUITE_P(Grids, RandomConfigTest,
                         ::testing::Values(GridKind::Square,
                                           GridKind::Triangulate),
                         [](const ::testing::TestParamInfo<GridKind> &I) {
                           return std::string(gridKindName(I.param));
                         });

TEST(RandomConfigTest, DeterministicPerSeed) {
  Torus T(GridKind::Square, 16);
  Rng A(5), B(5), C(6);
  InitialConfiguration CA = randomConfiguration(T, 16, A);
  InitialConfiguration CB = randomConfiguration(T, 16, B);
  InitialConfiguration CC = randomConfiguration(T, 16, C);
  EXPECT_EQ(CA.serialize(), CB.serialize());
  EXPECT_NE(CA.serialize(), CC.serialize());
}

TEST(ManualConfigTest, QueueForward) {
  Torus T(GridKind::Square, 16);
  InitialConfiguration C = queueForwardConfiguration(T, 8);
  ASSERT_EQ(C.numAgents(), 8);
  EXPECT_TRUE(isValidConfiguration(T, C));
  for (int I = 0; I != 8; ++I) {
    EXPECT_EQ(C.Placements[static_cast<size_t>(I)].Pos, (Coord{I, 8}));
    EXPECT_EQ(C.Placements[static_cast<size_t>(I)].Direction, 0) << "east";
  }
}

TEST(ManualConfigTest, QueueBackwardFacesWest) {
  Torus S(GridKind::Square, 16);
  InitialConfiguration CS = queueBackwardConfiguration(S, 8);
  for (const Placement &P : CS.Placements)
    EXPECT_EQ(S.directionOffset(P.Direction), (Coord{-1, 0}));
  Torus T(GridKind::Triangulate, 16);
  InitialConfiguration CT = queueBackwardConfiguration(T, 8);
  for (const Placement &P : CT.Placements)
    EXPECT_EQ(T.directionOffset(P.Direction), (Coord{-1, 0}));
}

TEST(ManualConfigTest, DiagonalHasMaximalSpacing) {
  Torus T(GridKind::Triangulate, 16);
  InitialConfiguration C = diagonalConfiguration(T, 4);
  ASSERT_EQ(C.numAgents(), 4);
  EXPECT_TRUE(isValidConfiguration(T, C));
  for (int I = 0; I != 4; ++I) {
    Coord P = C.Placements[static_cast<size_t>(I)].Pos;
    EXPECT_EQ(P.X, P.Y) << "diagonal placement";
    EXPECT_EQ(P.X, I * 4) << "maximal spacing on a 16-diagonal";
  }
}

TEST(ManualConfigTest, DiagonalFullSide) {
  Torus T(GridKind::Square, 16);
  InitialConfiguration C = diagonalConfiguration(T, 16);
  EXPECT_TRUE(isValidConfiguration(T, C));
  std::set<int> Xs;
  for (const Placement &P : C.Placements)
    Xs.insert(P.Pos.X);
  EXPECT_EQ(Xs.size(), 16u);
}

TEST(StandardSetTest, SizeAndComposition) {
  Torus T(GridKind::Square, 16);
  auto Set = standardConfigurationSet(T, 8, 100, 42);
  // 100 random + 3 manual.
  EXPECT_EQ(Set.size(), 103u);
  for (const InitialConfiguration &C : Set) {
    EXPECT_EQ(C.numAgents(), 8);
    EXPECT_TRUE(isValidConfiguration(T, C));
  }
  // The last three are the manual designs.
  EXPECT_EQ(Set[100].serialize(), queueForwardConfiguration(T, 8).serialize());
  EXPECT_EQ(Set[101].serialize(),
            queueBackwardConfiguration(T, 8).serialize());
  EXPECT_EQ(Set[102].serialize(), diagonalConfiguration(T, 8).serialize());
}

TEST(StandardSetTest, ManualDesignsSkippedWhenTooManyAgents) {
  Torus T(GridKind::Square, 16);
  // 32 agents do not fit a 16-cell queue: random-only set.
  auto Set = standardConfigurationSet(T, 32, 50, 42);
  EXPECT_EQ(Set.size(), 50u);
}

TEST(StandardSetTest, DeterministicPerSeed) {
  Torus T(GridKind::Triangulate, 16);
  auto A = standardConfigurationSet(T, 8, 20, 1);
  auto B = standardConfigurationSet(T, 8, 20, 1);
  auto C = standardConfigurationSet(T, 8, 20, 2);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I].serialize(), B[I].serialize());
  bool AnyDifferent = false;
  for (size_t I = 0; I != A.size() && I != C.size(); ++I)
    AnyDifferent |= (A[I].serialize() != C[I].serialize());
  EXPECT_TRUE(AnyDifferent);
}

TEST(PackedConfigTest, OneAgentPerCell) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 8);
    InitialConfiguration C = packedConfiguration(T);
    EXPECT_EQ(C.numAgents(), 64);
    EXPECT_TRUE(isValidConfiguration(T, C));
  }
}

TEST(ObstacleConfigTest, AvoidingGeneratorStaysOffForbiddenCells) {
  Torus T(GridKind::Triangulate, 16);
  Rng R(17);
  std::vector<Coord> Obstacles = randomObstacles(T, 40, R);
  std::set<int> ForbiddenCells;
  for (Coord C : Obstacles)
    ForbiddenCells.insert(T.indexOf(C));
  EXPECT_EQ(ForbiddenCells.size(), 40u) << "obstacles must be distinct";
  for (int Trial = 0; Trial != 20; ++Trial) {
    InitialConfiguration C = randomConfigurationAvoiding(T, 16, R, Obstacles);
    EXPECT_TRUE(isValidConfiguration(T, C));
    for (const Placement &P : C.Placements)
      EXPECT_FALSE(ForbiddenCells.count(T.indexOf(P.Pos)))
          << "agent placed on an obstacle";
  }
}

TEST(ObstacleConfigTest, AvoidingGeneratorFillsTheFreeCells) {
  Torus T(GridKind::Square, 4);
  Rng R(3);
  std::vector<Coord> Obstacles = {Coord{0, 0}, Coord{1, 0}};
  // 14 free cells, ask for all of them.
  InitialConfiguration C = randomConfigurationAvoiding(T, 14, R, Obstacles);
  EXPECT_EQ(C.numAgents(), 14);
  EXPECT_TRUE(isValidConfiguration(T, C));
}

TEST(SerializationTest, RoundTrip) {
  Torus T(GridKind::Triangulate, 16);
  Rng R(3);
  InitialConfiguration C = randomConfiguration(T, 8, R);
  auto Parsed = InitialConfiguration::deserialize(C.serialize());
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->serialize(), C.serialize());
}

TEST(SerializationTest, RejectsMalformed) {
  EXPECT_FALSE(InitialConfiguration::deserialize(""));
  EXPECT_FALSE(InitialConfiguration::deserialize("1 2"));
  EXPECT_FALSE(InitialConfiguration::deserialize("1 2 3 4"));
  EXPECT_FALSE(InitialConfiguration::deserialize("a b c"));
  EXPECT_FALSE(InitialConfiguration::deserialize("1 2 9"));
  // Blank lines are fine.
  EXPECT_TRUE(InitialConfiguration::deserialize("\n1 2 3\n\n"));
}

TEST(ValidationTest, RejectsBadConfigurations) {
  Torus T(GridKind::Square, 8);
  InitialConfiguration Empty;
  EXPECT_FALSE(isValidConfiguration(T, Empty));

  InitialConfiguration Duplicate;
  Duplicate.Placements = {{Coord{1, 1}, 0}, {Coord{1, 1}, 1}};
  EXPECT_FALSE(isValidConfiguration(T, Duplicate));

  InitialConfiguration BadDirection;
  BadDirection.Placements = {{Coord{1, 1}, 4}}; // S-grid has dirs 0..3.
  EXPECT_FALSE(isValidConfiguration(T, BadDirection));

  InitialConfiguration OutOfRange;
  OutOfRange.Placements = {{Coord{8, 0}, 0}};
  EXPECT_FALSE(isValidConfiguration(T, OutOfRange));

  InitialConfiguration Good;
  Good.Placements = {{Coord{1, 1}, 3}, {Coord{2, 2}, 0}};
  EXPECT_TRUE(isValidConfiguration(T, Good));
}
