// expect: random-device
// Seeded negative: hardware entropy is never replayable.
#include <random>

unsigned int entropySeed() {
  std::random_device Device;
  return Device();
}
