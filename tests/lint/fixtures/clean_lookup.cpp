// expect: clean
// Positive fixture: everything here is deterministic and must NOT be
// flagged — unordered lookups (no iteration), a member function named
// time(), comments mentioning rand() and std::random_device, and a string
// literal containing "srand(".
#include <string>
#include <unordered_map>

struct Clock {
  int Time = 0;
  // Doc comment teasing the linter: rand(), time(NULL), std::mt19937.
  int time() const { return Time; }
};

int lookupOnly(const Clock &C) {
  std::unordered_map<int, int> Memo;
  Memo.emplace(1, 2);
  auto It = Memo.find(1);
  const char *Label = "call srand(7) elsewhere";
  /* block comment: std::random_device should stay unflagged here */
  return (It != Memo.end() ? It->second : 0) + C.time() +
         static_cast<int>(Label[0]);
}
