// expect: wall-clock
// Seeded negative: a chrono clock read flowing into simulation state.
#include <chrono>

long long stepBudgetFromClock() {
  auto Now = std::chrono::steady_clock::now();
  return Now.time_since_epoch().count() % 100;
}
