// expect: pointer-keyed-order
// Seeded negative: an ordered container keyed on a pointer — iteration
// order follows heap addresses, i.e. allocator history and ASLR.
#include <map>
#include <set>

struct Genome;

int countTracked(const std::map<const Genome *, int> &Ranks) {
  std::set<int *> Seen;
  return static_cast<int>(Ranks.size() + Seen.size());
}
