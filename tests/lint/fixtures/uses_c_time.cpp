// expect: c-time
// Seeded negative: wall-clock seeding makes every run unique.
#include <ctime>

unsigned long seedFromClock() {
  unsigned long Seed = static_cast<unsigned long>(time(nullptr));
  Seed ^= static_cast<unsigned long>(clock());
  return Seed;
}
