// expect: clean
// Positive fixture: a justified pragma silences exactly the named rule —
// this is the sanctioned shape for instrumentation-only clock reads.
#include <chrono>

double busySeconds() {
  // det-lint: allow(wall-clock) instrumentation only, never feeds results
  auto Start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(
             // det-lint: allow(wall-clock) instrumentation only
             std::chrono::steady_clock::now() - Start)
      .count();
}
