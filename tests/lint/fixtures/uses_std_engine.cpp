// expect: std-engine
// Seeded negative: std::<random> engines and distributions have
// platform-unspecified streams; ca2a::Rng is the only sanctioned source.
#include <random>

int drawUniform() {
  std::mt19937 Engine(7);
  std::uniform_int_distribution<int> Dist(0, 5);
  return Dist(Engine);
}
