// expect: unordered-iteration
// Seeded negative: accumulating over an unordered container's iteration
// order — the sum is stable, but any order-sensitive fold (first match,
// float accumulation, output order) silently is not.
#include <string>
#include <unordered_map>

int totalScore(const std::unordered_map<std::string, int> &) {
  std::unordered_map<std::string, int> Scores;
  Scores.emplace("a", 1);
  int Total = 0;
  for (const auto &Entry : Scores)
    Total += Entry.second;
  for (auto It = Scores.begin(); It != Scores.end(); ++It)
    Total += It->second;
  return Total;
}
