// expect: clean
// A justified pragma on the switch suppresses the exhaustiveness rule.
namespace fixture {

int partial(ErrorCode Code) {
  // verify-lint: allow(enum-exhaustiveness) scoring only ranks I/O-class failures
  switch (Code) {
  case ErrorCode::Io:
    return 1;
  case ErrorCode::Timeout:
    return 2;
  }
  return 0;
}

} // namespace fixture
