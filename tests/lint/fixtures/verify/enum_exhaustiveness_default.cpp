// expect: enum-exhaustiveness
// Complete case list, but a swallowing default: adding an enumerator
// would silently fall through instead of failing the build and lint.
namespace fixture {

const char *describe(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Generic: return "generic";
  case ErrorCode::Io: return "io";
  case ErrorCode::Corrupt: return "corrupt";
  case ErrorCode::VersionMismatch: return "version";
  case ErrorCode::Timeout: return "timeout";
  case ErrorCode::Cancelled: return "cancelled";
  case ErrorCode::Exhausted: return "exhausted";
  case ErrorCode::Injected: return "injected";
  case ErrorCode::InvalidArgument: return "invalid";
  default: return "unknown";
  }
}

} // namespace fixture
