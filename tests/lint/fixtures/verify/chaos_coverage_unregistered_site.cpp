// expect: chaos-coverage
// A chaos call naming a site that is not in the support/Chaos registry
// is flagged: the registry cross-check keeps spellings honest.
namespace fixture {

void touchSite() {
  chaosPoint(ChaosSite::NotARealSite);
}

} // namespace fixture
