// expect: enum-exhaustiveness
// A switch over the checked ErrorCode enum that misses enumerators.
namespace fixture {

int rank(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Generic:
    return 0;
  case ErrorCode::Io:
    return 1;
  }
  return -1;
}

} // namespace fixture
