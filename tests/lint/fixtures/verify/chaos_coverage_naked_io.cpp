// expect: chaos-coverage
// Raw I/O in a function with no enclosing chaos site and no chaos-site
// pragma: new I/O must not be able to dodge fault injection.
namespace fixture {

bool flushFd(int Fd) {
  return ::fsync(Fd) == 0;
}

} // namespace fixture
