// expect: atomic-ordering
// Defaulted (seq_cst) atomic operations: a member call without an
// explicit memory_order, an operator RMW, and a plain assignment.
namespace fixture {

std::atomic<unsigned long> HitCount{0};

void bump() {
  HitCount.fetch_add(1);
  HitCount++;
  HitCount = 7;
}

} // namespace fixture
