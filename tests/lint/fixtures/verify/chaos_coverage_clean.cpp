// expect: clean
// Raw I/O covered by a registered chaos site in the same function.
namespace fixture {

long writeAll(int Fd, const char *Data, unsigned long Len) {
  chaosPoint(ChaosSite::CheckpointWrite);
  return ::write(Fd, Data, Len);
}

} // namespace fixture
