// expect: error-discipline, atomic-ordering, chaos-coverage
// The pragma contract: a bare allow()/chaos-site() with NO reason text
// suppresses nothing — every finding below must still fire.
namespace fixture {

// verify-lint: allow(error-discipline)
Expected<int> bareThing(const char *Text);

std::atomic<int> BareCounter{0};

void bareBump() {
  // verify-lint: allow(atomic-ordering)
  BareCounter.fetch_add(1);
}

// verify-lint: chaos-site(ckpt.write)
long barePrimitive(int Fd, const char *Data, unsigned long Len) {
  return ::write(Fd, Data, Len);
}

} // namespace fixture
