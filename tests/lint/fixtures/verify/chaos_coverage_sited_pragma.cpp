// expect: clean
// An I/O primitive whose fault draw lives at the caller boundary: the
// chaos-site pragma (registered site + reason) declares the coverage.
namespace fixture {

// verify-lint: chaos-site(ckpt.write) caller draws faults at the durable-write boundary
long writePrimitive(int Fd, const char *Data, unsigned long Len) {
  return ::write(Fd, Data, Len);
}

} // namespace fixture
