// expect: atomic-ordering
// Explicit seq_cst is also a finding: the documented contract is
// relaxed cursors/tallies, so a strengthening needs a justified pragma.
namespace fixture {

std::atomic<int> Flag{0};

int readFlag() {
  return Flag.load(std::memory_order_seq_cst);
}

} // namespace fixture
