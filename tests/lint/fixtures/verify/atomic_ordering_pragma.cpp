// expect: clean
// A justified pragma documents a deliberate seq_cst strengthening.
namespace fixture {

std::atomic<int> Gate{0};

int readGate() {
  // verify-lint: allow(atomic-ordering) intentional full fence at shutdown
  return Gate.load(std::memory_order_seq_cst);
}

} // namespace fixture
