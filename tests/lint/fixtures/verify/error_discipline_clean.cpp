// expect: clean
// Correct discipline: declaration is [[nodiscard]], every result is
// consumed, and out-of-line definitions (qualified names) inherit the
// attribute from the declaration without restating it.
namespace fixture {

class Codec {
public:
  [[nodiscard]] Expected<int> decode(const char *Text);
};

[[nodiscard]] Expected<int> loadTally(const char *Path);

int consume(const char *Path) {
  auto Result = loadTally(Path);
  if (!Result.hasValue())
    return -1;
  return Result.value();
}

Expected<int> Codec::decode(const char *Text) {
  return loadTally(Text);
}

} // namespace fixture
