// expect: error-discipline
// Statement-position calls that discard an error-carrying result — the
// plain form and the (void)-cast form are both findings.
namespace fixture {

[[nodiscard]] Expected<int> loadCount(const char *Path);

void caller(const char *Path) {
  loadCount(Path);
  (void)loadCount(Path);
}

} // namespace fixture
