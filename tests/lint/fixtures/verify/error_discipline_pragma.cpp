// expect: clean
// A justified allow pragma (reason text present) suppresses both the
// declaration-side and the call-site findings.
namespace fixture {

// verify-lint: allow(error-discipline) legacy shim, annotated next PR
Expected<int> legacyThing(const char *Text);

void pragmaCaller(const char *Text) {
  // verify-lint: allow(error-discipline) probe call, result truly unused
  legacyThing(Text);
}

} // namespace fixture
