// expect: clean
// Every operation names its memory_order; a non-atomic local that
// shadows an atomic's name must not be flagged.
namespace fixture {

std::atomic<unsigned long> Tally{0};

void bumpRelaxed() {
  Tally.fetch_add(1, std::memory_order_relaxed);
}

unsigned long readAcquire() {
  return Tally.load(std::memory_order_acquire);
}

unsigned long shadowed() {
  unsigned long Tally = 3;
  Tally = 4;
  return Tally;
}

} // namespace fixture
