// expect: error-discipline
// Error-carrying return types without [[nodiscard]]: both declarations
// must be flagged so no caller can silently drop the error.
namespace fixture {

Expected<int> parseThing(const char *Text);

ErrorCode classifyThing(int Value);

} // namespace fixture
