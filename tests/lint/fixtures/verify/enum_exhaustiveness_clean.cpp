// expect: clean
// Exhaustive switch, no default; a nested switch over a non-checked
// local enum inside one case must not confuse the label accounting.
namespace fixture {

enum class Flavor { Sweet, Sour };

int rankAll(ErrorCode Code, Flavor F) {
  switch (Code) {
  case ErrorCode::Generic:
    return 0;
  case ErrorCode::Io: {
    switch (F) {
    case Flavor::Sweet:
      return 10;
    case Flavor::Sour:
      return 11;
    }
    return 1;
  }
  case ErrorCode::Corrupt:
    return 2;
  case ErrorCode::VersionMismatch:
    return 3;
  case ErrorCode::Timeout:
    return 4;
  case ErrorCode::Cancelled:
    return 5;
  case ErrorCode::Exhausted:
    return 6;
  case ErrorCode::Injected:
    return 7;
  case ErrorCode::InvalidArgument:
    return 8;
  }
  return -1;
}

} // namespace fixture
