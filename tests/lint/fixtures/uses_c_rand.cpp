// expect: c-rand
// Seeded negative: C rand()/srand() must be flagged — the stream is
// process-global, so two replicas on different workers would interleave
// draws and diverge between runs.
#include <cstdlib>

int rollDie() {
  srand(42);
  return rand() % 6;
}
