//===- tests/agent/GenomeFileTest.cpp - Genome library format tests -------===//

#include "agent/GenomeFile.h"

#include "agent/BestAgents.h"
#include "support/File.h"
#include "gtest/gtest.h"

#include <cstdio>

using namespace ca2a;

namespace {

std::vector<NamedGenome> sampleLibrary() {
  return {
      {"paper-s", GridKind::Square, bestSquareAgent()},
      {"paper-t", GridKind::Triangulate, bestTriangulateAgent()},
  };
}

} // namespace

TEST(GenomeLibraryTest, FormatParseRoundTrip) {
  std::vector<NamedGenome> Library = sampleLibrary();
  auto Parsed = parseGenomeLibrary(formatGenomeLibrary(Library));
  ASSERT_TRUE(Parsed) << Parsed.error().message();
  ASSERT_EQ(Parsed->size(), 2u);
  EXPECT_EQ((*Parsed)[0].Name, "paper-s");
  EXPECT_EQ((*Parsed)[0].Kind, GridKind::Square);
  EXPECT_EQ((*Parsed)[0].G, bestSquareAgent());
  EXPECT_EQ((*Parsed)[1].Name, "paper-t");
  EXPECT_EQ((*Parsed)[1].Kind, GridKind::Triangulate);
  EXPECT_EQ((*Parsed)[1].G, bestTriangulateAgent());
}

TEST(GenomeLibraryTest, CommentsAndBlankLinesSkipped) {
  std::string Text = "# header comment\n\n" +
                     formatGenomeLibrary(sampleLibrary()) +
                     "\n# trailing comment\n";
  auto Parsed = parseGenomeLibrary(Text);
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->size(), 2u);
}

TEST(GenomeLibraryTest, RejectsMalformedLines) {
  EXPECT_FALSE(parseGenomeLibrary("name"));
  EXPECT_FALSE(parseGenomeLibrary("name S 0000"));
  EXPECT_FALSE(parseGenomeLibrary("name X " +
                                  bestSquareAgent().toCompactString()));
  // Duplicate names.
  std::vector<NamedGenome> Dup = {
      {"same", GridKind::Square, bestSquareAgent()},
      {"same", GridKind::Triangulate, bestTriangulateAgent()},
  };
  EXPECT_FALSE(parseGenomeLibrary(formatGenomeLibrary(Dup)));
  // Errors carry the line number.
  auto Bad = parseGenomeLibrary("# ok\nbroken line here\n");
  ASSERT_FALSE(Bad);
  EXPECT_NE(Bad.error().message().find("line 2"), std::string::npos);
}

TEST(GenomeLibraryTest, FindGenome) {
  std::vector<NamedGenome> Library = sampleLibrary();
  const NamedGenome *Found = findGenome(Library, "paper-t");
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->G, bestTriangulateAgent());
  EXPECT_EQ(findGenome(Library, "missing"), nullptr);
}

TEST(GenomeLibraryTest, SaveAndLoadThroughTheFilesystem) {
  std::string Path = ::testing::TempDir() + "/ca2a_genomes_test.txt";
  auto Saved = saveGenomeLibrary(Path, sampleLibrary());
  ASSERT_TRUE(Saved) << Saved.error().message();
  auto Loaded = loadGenomeLibrary(Path);
  ASSERT_TRUE(Loaded) << Loaded.error().message();
  EXPECT_EQ(Loaded->size(), 2u);
  EXPECT_EQ((*Loaded)[1].G, bestTriangulateAgent());
  std::remove(Path.c_str());
}

TEST(GenomeLibraryTest, LoadMissingFileFails) {
  auto Loaded = loadGenomeLibrary("/nonexistent/path/genomes.txt");
  EXPECT_FALSE(Loaded);
}

TEST(FileHelpersTest, WriteReadRoundTrip) {
  std::string Path = ::testing::TempDir() + "/ca2a_file_test.txt";
  std::string Payload = "line1\nline2 with spaces\n\x01 binary-ish \xff\n";
  auto Written = writeFile(Path, Payload);
  ASSERT_TRUE(Written) << Written.error().message();
  auto Read = readFile(Path);
  ASSERT_TRUE(Read) << Read.error().message();
  EXPECT_EQ(*Read, Payload);
  std::remove(Path.c_str());
}

TEST(FileHelpersTest, ReadMissingFileFails) {
  EXPECT_FALSE(readFile("/nonexistent/path/file.txt"));
}
