//===- tests/agent/ActionTest.cpp - Action alphabet unit tests ------------===//

#include "agent/Action.h"

#include "gtest/gtest.h"

#include <set>

using namespace ca2a;

TEST(ActionTest, EncodeDecodeRoundTripAll16) {
  std::set<int> Indices;
  for (int I = 0; I != NumActions; ++I) {
    Action A = decodeAction(I);
    EXPECT_EQ(encodeAction(A), I);
    Indices.insert(encodeAction(A));
  }
  EXPECT_EQ(Indices.size(), static_cast<size_t>(NumActions));
}

TEST(ActionTest, EncodingLayout) {
  // index = turn * 4 + move * 2 + setcolor.
  Action A;
  A.TurnCode = Turn::Right;
  A.Move = true;
  A.SetColor = false;
  EXPECT_EQ(encodeAction(A), 1 * 4 + 2);
  A.TurnCode = Turn::Left;
  A.Move = false;
  A.SetColor = true;
  EXPECT_EQ(encodeAction(A), 3 * 4 + 1);
}

TEST(ActionTest, MnemonicsMatchThePaperAlphabet) {
  // Sect. 3 lists the 16 actions {Sm0, Sm1, S.0, S.1, Rm0, ... L.1}.
  std::set<std::string> Mnemonics;
  for (int I = 0; I != NumActions; ++I)
    Mnemonics.insert(actionMnemonic(decodeAction(I)));
  for (const char *Expected :
       {"Sm0", "Sm1", "S.0", "S.1", "Rm0", "Rm1", "R.0", "R.1", "Bm0", "Bm1",
        "B.0", "B.1", "Lm0", "Lm1", "L.0", "L.1"})
    EXPECT_TRUE(Mnemonics.count(Expected)) << Expected;
  EXPECT_EQ(Mnemonics.size(), static_cast<size_t>(NumActions));
}

TEST(ActionTest, ParseMnemonicRoundTrip) {
  for (int I = 0; I != NumActions; ++I) {
    Action A = decodeAction(I);
    auto Parsed = parseActionMnemonic(actionMnemonic(A));
    ASSERT_TRUE(Parsed);
    EXPECT_EQ(*Parsed, A);
  }
}

TEST(ActionTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parseActionMnemonic(""));
  EXPECT_FALSE(parseActionMnemonic("Sm"));
  EXPECT_FALSE(parseActionMnemonic("Sm01"));
  EXPECT_FALSE(parseActionMnemonic("Xm0"));
  EXPECT_FALSE(parseActionMnemonic("Sx0"));
  EXPECT_FALSE(parseActionMnemonic("SmX"));
}

TEST(ActionTest, ParseAcceptsExtendedColourDigits) {
  // Colour digits above 1 belong to the more-colours extension; the
  // genome's dimensions bound their validity, not the mnemonic parser.
  auto A = parseActionMnemonic("Sm3");
  ASSERT_TRUE(A);
  EXPECT_EQ(A->SetColor, 3);
  EXPECT_EQ(actionMnemonic(*A), "Sm3");
}

TEST(ActionTest, Equality) {
  Action A = decodeAction(5), B = decodeAction(5), C = decodeAction(6);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}
