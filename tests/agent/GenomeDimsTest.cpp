//===- tests/agent/GenomeDimsTest.cpp - More-states/colours tests ---------===//
//
// The future-work generalisation: FSM genomes with runtime dimensions
// (states in [2,9], colours in [2,9]). The paper's setting is the default
// and must be bit-compatible with the fixed-size original.
//
//===----------------------------------------------------------------------===//

#include "agent/Genome.h"

#include "ga/Evolution.h"
#include "ga/Mutation.h"
#include "sim/World.h"
#include "support/Rng.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(GenomeDimsTest, DefaultsMatchThePaper) {
  GenomeDims D;
  EXPECT_EQ(D.States, 4);
  EXPECT_EQ(D.Colors, 2);
  EXPECT_EQ(D.numInputs(), NumFsmInputs);
  EXPECT_EQ(D.length(), GenomeLength);
  EXPECT_TRUE(D.valid());
  // The generalised input encoding coincides with the paper's.
  for (int B = 0; B != 2; ++B)
    for (int C = 0; C != 2; ++C)
      for (int F = 0; F != 2; ++F)
        EXPECT_EQ(D.makeInput(B, C, F), makeFsmInput(B, C, F));
}

TEST(GenomeDimsTest, InputEncodingRoundTrip) {
  for (GenomeDims D : {GenomeDims{4, 2}, GenomeDims{6, 2}, GenomeDims{4, 4},
                       GenomeDims{9, 3}}) {
    ASSERT_TRUE(D.valid());
    std::vector<bool> Seen(static_cast<size_t>(D.numInputs()), false);
    for (int B = 0; B != 2; ++B)
      for (int C = 0; C != D.Colors; ++C)
        for (int F = 0; F != D.Colors; ++F) {
          int X = D.makeInput(B, C, F);
          ASSERT_GE(X, 0);
          ASSERT_LT(X, D.numInputs());
          EXPECT_FALSE(Seen[static_cast<size_t>(X)]) << "input collision";
          Seen[static_cast<size_t>(X)] = true;
          EXPECT_EQ(D.blockedOf(X), B != 0);
          EXPECT_EQ(D.colorOf(X), C);
          EXPECT_EQ(D.frontColorOf(X), F);
        }
  }
}

TEST(GenomeDimsTest, InvalidDimensionsRejected) {
  EXPECT_FALSE((GenomeDims{1, 2}).valid());
  EXPECT_FALSE((GenomeDims{10, 2}).valid());
  EXPECT_FALSE((GenomeDims{4, 1}).valid());
  EXPECT_FALSE((GenomeDims{4, 10}).valid());
}

TEST(GenomeDimsTest, RandomGenomeRespectsDimensions) {
  Rng R(5);
  GenomeDims D{6, 3};
  Genome G = Genome::random(R, D);
  EXPECT_EQ(G.dims(), D);
  EXPECT_EQ(G.length(), 2 * 3 * 3 * 6);
  bool SawHighState = false, SawHighColor = false;
  for (int I = 0; I != G.length(); ++I) {
    EXPECT_LT(G.slot(I).NextState, 6);
    EXPECT_LT(G.slot(I).Act.SetColor, 3);
    SawHighState |= G.slot(I).NextState >= 4;
    SawHighColor |= G.slot(I).Act.SetColor == 2;
  }
  EXPECT_TRUE(SawHighState) << "extra states unused by random()";
  EXPECT_TRUE(SawHighColor) << "extra colours unused by random()";
}

TEST(GenomeDimsTest, CompactStringRoundTripWithPrefix) {
  Rng R(6);
  for (GenomeDims D : {GenomeDims{6, 2}, GenomeDims{4, 4}, GenomeDims{8, 3}}) {
    Genome G = Genome::random(R, D);
    std::string Text = G.toCompactString();
    EXPECT_EQ(Text.substr(0, 1), "s") << "non-default dims need a prefix";
    auto Parsed = Genome::fromCompactString(Text);
    ASSERT_TRUE(Parsed) << Parsed.error().message();
    EXPECT_EQ(*Parsed, G);
  }
  // Default dims stay prefix-free (backward compatible).
  Genome Default = Genome::random(R);
  EXPECT_NE(Default.toCompactString().substr(0, 1), "s");
}

TEST(GenomeDimsTest, DifferentDimensionsNeverCompareEqual) {
  Genome A{GenomeDims{4, 2}};
  Genome B{GenomeDims{6, 2}};
  EXPECT_NE(A, B);
  EXPECT_NE(A.hashValue(), B.hashValue());
}

TEST(GenomeDimsTest, TableStringShowsDimensions) {
  Rng R(7);
  Genome G = Genome::random(R, GenomeDims{6, 3});
  std::string Table = G.toTableString(GridKind::Triangulate);
  EXPECT_NE(Table.find("6 states"), std::string::npos);
  EXPECT_NE(Table.find("3 colours"), std::string::npos);
  EXPECT_NE(Table.find("18 inputs"), std::string::npos);
}

TEST(GenomeDimsTest, MutationWrapsAtTheDimensions) {
  Rng R(8);
  GenomeDims D{6, 3};
  Genome G = Genome::random(R, D);
  Genome M = mutate(G, MutationParams::uniform(1.0), R);
  for (int I = 0; I != G.length(); ++I) {
    EXPECT_EQ(M.slot(I).NextState, (G.slot(I).NextState + 1) % 6);
    EXPECT_EQ(M.slot(I).Act.SetColor, (G.slot(I).Act.SetColor + 1) % 3);
  }
  // Six applications restore nextstate; three restore setcolor; lcm with
  // the binary/4-ary fields is 12.
  Genome Cycle = G;
  for (int I = 0; I != 12; ++I)
    Cycle = mutate(Cycle, MutationParams::uniform(1.0), R);
  EXPECT_EQ(Cycle, G);
}

TEST(GenomeDimsTest, WorldRunsAMultiColourGenome) {
  // A 3-colour painter: write colour 2 on own cell, move straight; when
  // the front cell shows colour 2, turn right instead. Exercises colour
  // values beyond the paper's binary flag end-to-end.
  GenomeDims D{4, 3};
  Genome G(D);
  for (int X = 0; X != D.numInputs(); ++X)
    for (int S = 0; S != D.States; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act.SetColor = 2;
      E.Act.Move = true;
      E.Act.TurnCode =
          D.frontColorOf(X) == 2 ? Turn::Right : Turn::Straight;
    }
  Torus T(GridKind::Square, 8);
  World W(T);
  SimOptions O;
  O.MaxSteps = 50;
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, O);
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.colorValueAt(T.indexOf(Coord{0, 0})), 2);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0}));
  EXPECT_EQ(W.agent(0).Direction, 0) << "front colour was 0";
  // March around the row: after 8 steps the agent re-enters (0,0) whose
  // front cell (1,0) now carries colour 2 -> it turns right.
  for (int I = 0; I != 7; ++I)
    ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0}));
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Direction, 1)
      << "colour-2 front cell must trigger the turn";
}

TEST(GenomeDimsTest, EvolutionAtSixStatesRuns) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 2, 3, 99);
  EvolutionParams P;
  P.Seed = 3;
  P.Dims = GenomeDims{6, 2};
  P.Fitness.Sim.MaxSteps = 60;
  Evolution E(T, Fields, P);
  Individual Best = E.run(5);
  EXPECT_EQ(Best.G.dims(), (GenomeDims{6, 2}));
  EXPECT_EQ(E.population().size(), 20u);
}
