//===- tests/agent/BestAgentsTest.cpp - Published FSM transcription tests -===//

#include "agent/BestAgents.h"

#include "gtest/gtest.h"

using namespace ca2a;

// Spot checks against the printed tables: Fig. 3 (S-agent), Fig. 4
// (T-agent). Column x, state s, expecting (nextstate, setcolor, move, turn).
struct TableEntry {
  int Input;
  int State;
  int NextState;
  int SetColor;
  int Move;
  int TurnCode;
};

static void expectEntries(const Genome &G,
                          const std::vector<TableEntry> &Entries) {
  for (const TableEntry &E : Entries) {
    const GenomeEntry &Slot = G.entry(E.Input, E.State);
    EXPECT_EQ(Slot.NextState, E.NextState)
        << "x=" << E.Input << " s=" << E.State;
    EXPECT_EQ(Slot.Act.SetColor, E.SetColor != 0)
        << "x=" << E.Input << " s=" << E.State;
    EXPECT_EQ(Slot.Act.Move, E.Move != 0)
        << "x=" << E.Input << " s=" << E.State;
    EXPECT_EQ(static_cast<int>(Slot.Act.TurnCode), E.TurnCode)
        << "x=" << E.Input << " s=" << E.State;
  }
}

TEST(BestAgentsTest, SquareAgentSpotChecks) {
  // Fig. 3, reading each x-column's four state cells.
  expectEntries(bestSquareAgent(),
                {
                    {0, 0, 2, 1, 1, 3}, // x=0 s=0: next 2, col 1, mv 1, tn 3.
                    {0, 3, 1, 0, 1, 0}, // x=0 s=3.
                    {1, 0, 0, 0, 0, 1}, // x=1 s=0.
                    {2, 2, 0, 0, 1, 0}, // x=2 s=2.
                    {3, 3, 1, 1, 0, 3}, // x=3 s=3.
                    {4, 1, 2, 0, 1, 1}, // x=4 s=1.
                    {5, 0, 2, 0, 0, 3}, // x=5 s=0.
                    {6, 3, 0, 1, 1, 3}, // x=6 s=3.
                    {7, 0, 3, 1, 0, 3}, // x=7 s=0.
                    {7, 3, 2, 0, 0, 3}, // x=7 s=3 (last genome slot).
                });
}

TEST(BestAgentsTest, TriangulateAgentSpotChecks) {
  // Fig. 4.
  expectEntries(bestTriangulateAgent(),
                {
                    {0, 0, 1, 1, 1, 0}, // x=0 s=0.
                    {0, 3, 2, 1, 0, 0}, // x=0 s=3.
                    {1, 0, 1, 0, 1, 3}, // x=1 s=0.
                    {2, 3, 3, 1, 1, 1}, // x=2 s=3.
                    {3, 1, 2, 1, 1, 0}, // x=3 s=1.
                    {4, 2, 0, 0, 1, 1}, // x=4 s=2.
                    {5, 3, 0, 1, 0, 1}, // x=5 s=3.
                    {6, 0, 2, 0, 1, 3}, // x=6 s=0.
                    {7, 2, 1, 1, 1, 2}, // x=7 s=2.
                    {7, 3, 1, 0, 1, 3}, // x=7 s=3.
                });
}

TEST(BestAgentsTest, AgentsAreDistinct) {
  EXPECT_NE(bestSquareAgent(), bestTriangulateAgent());
}

TEST(BestAgentsTest, KindDispatch) {
  EXPECT_EQ(bestAgent(GridKind::Square), bestSquareAgent());
  EXPECT_EQ(bestAgent(GridKind::Triangulate), bestTriangulateAgent());
}

TEST(BestAgentsTest, SerializationRoundTrip) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    const Genome &G = bestAgent(Kind);
    auto Parsed = Genome::fromCompactString(G.toCompactString());
    ASSERT_TRUE(Parsed);
    EXPECT_EQ(*Parsed, G);
  }
}

TEST(BestAgentsTest, GenomeFromRowsLayout) {
  // genomeFromRows reads digits in paper index order i = x*4 + s.
  std::string Next(GenomeLength, '0');
  std::string Zero(GenomeLength, '0');
  Next[Genome::slotIndex(5, 2)] = '3';
  Genome G = genomeFromRows(Next.c_str(), Zero.c_str(), Zero.c_str(),
                            Zero.c_str());
  EXPECT_EQ(G.entry(5, 2).NextState, 3);
  EXPECT_EQ(G.entry(5, 1).NextState, 0);
}
