//===- tests/agent/ParserRobustnessTest.cpp - Pseudo-fuzz parsers ---------===//
//
// Deterministic fuzz-style robustness: the text parsers (compact genomes,
// genome libraries, action mnemonics, configurations) must reject or
// accept arbitrary byte soup without crashing, and every accepted input
// must re-serialise consistently.
//
//===----------------------------------------------------------------------===//

#include "agent/GenomeFile.h"
#include "config/InitialConfiguration.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

/// Random printable-ish text with genome-flavoured characters mixed in so
/// some inputs get deep into the parsers.
std::string randomText(Rng &R, size_t MaxLength) {
  static const char Alphabet[] =
      "0123456789 \n\t#sctST-.mRLBx\xff\x01abcdefgh";
  size_t Length = R.uniformInt(MaxLength + 1);
  std::string Out;
  Out.reserve(Length);
  for (size_t I = 0; I != Length; ++I)
    Out.push_back(Alphabet[R.uniformInt(sizeof(Alphabet) - 1)]);
  return Out;
}

/// Mutates a valid serialisation: flip/insert/delete a few characters.
std::string corrupt(const std::string &Valid, Rng &R) {
  std::string Out = Valid;
  int Edits = 1 + static_cast<int>(R.uniformInt(4));
  for (int I = 0; I != Edits && !Out.empty(); ++I) {
    size_t Pos = R.uniformInt(Out.size());
    switch (R.uniformInt(3)) {
    case 0:
      Out[Pos] = static_cast<char>('!' + R.uniformInt(90));
      break;
    case 1:
      Out.erase(Pos, 1);
      break;
    default:
      Out.insert(Pos, 1, static_cast<char>('0' + R.uniformInt(10)));
      break;
    }
  }
  return Out;
}

} // namespace

TEST(ParserRobustnessTest, GenomeFromRandomTextNeverCrashes) {
  Rng R(2026);
  int Accepted = 0;
  for (int Trial = 0; Trial != 3000; ++Trial) {
    auto Parsed = Genome::fromCompactString(randomText(R, 200));
    if (Parsed) {
      ++Accepted;
      // Anything accepted must round-trip.
      auto Again = Genome::fromCompactString(Parsed->toCompactString());
      ASSERT_TRUE(Again);
      EXPECT_EQ(*Again, *Parsed);
    }
  }
  // Random soup should essentially never be a valid 32-group genome.
  EXPECT_LT(Accepted, 3);
}

TEST(ParserRobustnessTest, CorruptedGenomesEitherFailOrRoundTrip) {
  Rng R(2027);
  for (int Trial = 0; Trial != 2000; ++Trial) {
    Genome G = Genome::random(R);
    std::string Broken = corrupt(G.toCompactString(), R);
    auto Parsed = Genome::fromCompactString(Broken);
    if (Parsed) {
      auto Again = Genome::fromCompactString(Parsed->toCompactString());
      ASSERT_TRUE(Again);
      EXPECT_EQ(*Again, *Parsed);
    }
  }
}

TEST(ParserRobustnessTest, GenomeLibraryFromRandomTextNeverCrashes) {
  Rng R(2028);
  for (int Trial = 0; Trial != 1500; ++Trial) {
    auto Parsed = parseGenomeLibrary(randomText(R, 400));
    if (Parsed && !Parsed->empty()) {
      std::string Formatted = formatGenomeLibrary(*Parsed);
      auto Again = parseGenomeLibrary(Formatted);
      ASSERT_TRUE(Again);
      EXPECT_EQ(Again->size(), Parsed->size());
    }
  }
}

TEST(ParserRobustnessTest, ActionMnemonicsFromRandomTriples) {
  Rng R(2029);
  for (int Trial = 0; Trial != 5000; ++Trial) {
    std::string Text = randomText(R, 5);
    auto Parsed = parseActionMnemonic(Text);
    if (Parsed) {
      // Accepted mnemonics round-trip semantically (the turn letter is
      // case-insensitive on input, canonical uppercase on output).
      auto Again = parseActionMnemonic(actionMnemonic(*Parsed));
      ASSERT_TRUE(Again);
      EXPECT_EQ(*Again, *Parsed);
    }
  }
}

TEST(ParserRobustnessTest, ConfigurationsFromRandomTextNeverCrash) {
  Rng R(2030);
  for (int Trial = 0; Trial != 2000; ++Trial) {
    auto Parsed = InitialConfiguration::deserialize(randomText(R, 120));
    if (Parsed) {
      auto Again = InitialConfiguration::deserialize(Parsed->serialize());
      ASSERT_TRUE(Again);
      EXPECT_EQ(Again->serialize(), Parsed->serialize());
    }
  }
}
