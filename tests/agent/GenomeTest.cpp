//===- tests/agent/GenomeTest.cpp - Genome unit tests ---------------------===//

#include "agent/Genome.h"

#include "support/Rng.h"
#include "support/StringUtils.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(FsmInputTest, BitLayoutMatchesFig3Header) {
  // Fig. 3: x = 0..7 with rows blocked = x&1, color = (x>>1)&1,
  // frontcolor = (x>>2)&1.
  EXPECT_EQ(makeFsmInput(false, false, false), 0);
  EXPECT_EQ(makeFsmInput(true, false, false), 1);
  EXPECT_EQ(makeFsmInput(false, true, false), 2);
  EXPECT_EQ(makeFsmInput(true, true, false), 3);
  EXPECT_EQ(makeFsmInput(false, false, true), 4);
  EXPECT_EQ(makeFsmInput(true, false, true), 5);
  EXPECT_EQ(makeFsmInput(false, true, true), 6);
  EXPECT_EQ(makeFsmInput(true, true, true), 7);
}

TEST(GenomeTest, SlotIndexMatchesPaperIndexRow) {
  // Fig. 3's "index i" row: i = 0..3 for x=0, 4..7 for x=1, etc.
  EXPECT_EQ(Genome::slotIndex(0, 0), 0);
  EXPECT_EQ(Genome::slotIndex(0, 3), 3);
  EXPECT_EQ(Genome::slotIndex(1, 0), 4);
  EXPECT_EQ(Genome::slotIndex(3, 2), 14);
  EXPECT_EQ(Genome::slotIndex(7, 3), 31);
}

TEST(GenomeTest, DefaultIsAllZero) {
  Genome G;
  for (int I = 0; I != GenomeLength; ++I) {
    EXPECT_EQ(G.slot(I).NextState, 0);
    EXPECT_EQ(G.slot(I).Act, decodeAction(0));
  }
}

TEST(GenomeTest, EntryAndSlotAgree) {
  Rng R(3);
  Genome G = Genome::random(R);
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S)
      EXPECT_EQ(G.entry(X, S), G.slot(Genome::slotIndex(X, S)));
}

TEST(GenomeTest, RandomIsDeterministicPerSeed) {
  Rng A(77), B(77);
  EXPECT_EQ(Genome::random(A), Genome::random(B));
  Rng C(78);
  EXPECT_NE(Genome::random(A), Genome::random(C));
}

TEST(GenomeTest, RandomCoversFieldValues) {
  // Over a few random genomes every nextstate and turn value must appear.
  Rng R(5);
  bool NextStateSeen[NumControlStates] = {};
  bool TurnSeen[NumTurnCodes] = {};
  for (int Draw = 0; Draw != 8; ++Draw) {
    Genome G = Genome::random(R);
    for (int I = 0; I != GenomeLength; ++I) {
      NextStateSeen[G.slot(I).NextState] = true;
      TurnSeen[static_cast<int>(G.slot(I).Act.TurnCode)] = true;
    }
  }
  for (bool Seen : NextStateSeen)
    EXPECT_TRUE(Seen);
  for (bool Seen : TurnSeen)
    EXPECT_TRUE(Seen);
}

TEST(GenomeTest, CompactStringRoundTrip) {
  Rng R(9);
  for (int Draw = 0; Draw != 20; ++Draw) {
    Genome G = Genome::random(R);
    auto Parsed = Genome::fromCompactString(G.toCompactString());
    ASSERT_TRUE(Parsed) << Parsed.error().message();
    EXPECT_EQ(*Parsed, G);
  }
}

TEST(GenomeTest, CompactStringFormat) {
  Genome G;
  GenomeEntry &E = G.entry(0, 0);
  E.NextState = 2;
  E.Act.SetColor = true;
  E.Act.Move = true;
  E.Act.TurnCode = Turn::Left;
  std::string Text = G.toCompactString();
  // First group: nextstate=2, setcolor=1, move=1, turn=3.
  EXPECT_EQ(Text.substr(0, 4), "2113");
  EXPECT_EQ(splitWhitespace(Text).size(), static_cast<size_t>(GenomeLength));
}

TEST(GenomeTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Genome::fromCompactString(""));
  EXPECT_FALSE(Genome::fromCompactString("0000"));
  // Correct count but a bad digit.
  Genome G;
  std::string Text = G.toCompactString();
  Text[0] = '7'; // nextstate 7 is out of range.
  EXPECT_FALSE(Genome::fromCompactString(Text));
  Text[0] = '0';
  Text[1] = '2'; // setcolor 2 is out of range.
  EXPECT_FALSE(Genome::fromCompactString(Text));
  // A 5-digit group.
  EXPECT_FALSE(Genome::fromCompactString(Text + "0"));
}

TEST(GenomeTest, TableStringShowsAllRows) {
  Rng R(4);
  Genome G = Genome::random(R);
  std::string Table = G.toTableString(GridKind::Square);
  for (const char *Row : {"blocked", "color", "frontcolor", "state",
                          "nextstate", "setcolor", "move", "turn"})
    EXPECT_NE(Table.find(Row), std::string::npos) << Row;
  EXPECT_NE(Table.find("90deg"), std::string::npos);
  std::string TriTable = G.toTableString(GridKind::Triangulate);
  EXPECT_NE(TriTable.find("60deg"), std::string::npos);
}

TEST(GenomeTest, HashDetectsSingleFieldChange) {
  Rng R(6);
  Genome G = Genome::random(R);
  Genome H = G;
  EXPECT_EQ(G.hashValue(), H.hashValue());
  H.entry(4, 2).Act.Move = !H.entry(4, 2).Act.Move;
  EXPECT_NE(G, H);
  EXPECT_NE(G.hashValue(), H.hashValue());
}
