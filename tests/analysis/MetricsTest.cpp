//===- tests/analysis/MetricsTest.cpp - Run-metrics unit tests ------------===//

#include "analysis/Metrics.h"

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "gtest/gtest.h"

using namespace ca2a;

namespace {

Genome constantGenome(bool Move) {
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act.Move = Move;
    }
  return G;
}

} // namespace

TEST(RunMetricsTest, StationaryAgentsNeverMove) {
  Torus T(GridKind::Square, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 40;
  W.reset(constantGenome(false), {{Coord{0, 0}, 0}, {Coord{8, 8}, 0}}, O);
  RunMetrics M = collectRunMetrics(W);
  EXPECT_FALSE(M.Result.Success);
  EXPECT_EQ(M.MoveSteps, 0);
  EXPECT_GT(M.WaitSteps, 0);
  EXPECT_DOUBLE_EQ(M.moveFraction(), 0.0);
  EXPECT_EQ(M.MeetingEvents, 0) << "distance-16 agents never meet";
  EXPECT_EQ(M.StepsObserved, 40);
}

TEST(RunMetricsTest, RunnersAlwaysMove) {
  Torus T(GridKind::Square, 8);
  World W(T);
  SimOptions O;
  O.MaxSteps = 20;
  // Two agents orbiting disjoint rows: always move, never meet.
  W.reset(constantGenome(true), {{Coord{0, 0}, 0}, {Coord{0, 4}, 0}}, O);
  RunMetrics M = collectRunMetrics(W);
  EXPECT_EQ(M.WaitSteps, 0);
  EXPECT_DOUBLE_EQ(M.moveFraction(), 1.0);
  EXPECT_EQ(M.MeetingEvents, 0);
}

TEST(RunMetricsTest, AdjacentPairCountsOneMeeting) {
  Torus T(GridKind::Square, 8);
  World W(T);
  SimOptions O;
  O.MaxSteps = 20;
  W.reset(constantGenome(false), {{Coord{0, 0}, 0}, {Coord{1, 0}, 0}}, O);
  RunMetrics M = collectRunMetrics(W);
  EXPECT_TRUE(M.Result.Success);
  EXPECT_EQ(M.Result.TComm, 0);
  // One observation (the solving step), one adjacent pair.
  EXPECT_EQ(M.StepsObserved, 1);
  EXPECT_EQ(M.MeetingEvents, 1);
}

TEST(RunMetricsTest, BestAgentsMeetMoreOftenOnTheTriangulateGrid) {
  // The mechanism behind the headline result, quantified: at equal density
  // the 6-valent torus produces more meetings per step.
  double MeetingRate[2] = {0.0, 0.0};
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    World W(T);
    Rng R(77);
    double Total = 0.0;
    int Runs = 30;
    for (int I = 0; I != Runs; ++I) {
      InitialConfiguration C = randomConfiguration(T, 16, R);
      SimOptions O;
      O.MaxSteps = 2000;
      W.reset(bestAgent(Kind), C.Placements, O);
      RunMetrics M = collectRunMetrics(W);
      EXPECT_TRUE(M.Result.Success);
      Total += M.meetingsPerStep();
    }
    MeetingRate[Kind == GridKind::Triangulate] = Total / Runs;
  }
  EXPECT_GT(MeetingRate[1], MeetingRate[0])
      << "T-agents must meet more often per step";
}

TEST(RunMetricsTest, ColoredCellsCounted) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome Painter;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S)
      Painter.entry(X, S).Act.SetColor = true;
  SimOptions O;
  O.MaxSteps = 10;
  W.reset(Painter, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, O);
  RunMetrics M = collectRunMetrics(W);
  EXPECT_EQ(M.FinalColoredCells, 2) << "two stationary painters, two cells";
}

TEST(RunMetricsTest, FormatContainsTheNumbers) {
  RunMetrics M;
  M.Result.Success = true;
  M.Result.TComm = 44;
  M.MoveSteps = 80;
  M.WaitSteps = 20;
  M.MeetingEvents = 10;
  M.StepsObserved = 5;
  M.FinalColoredCells = 7;
  std::string S = formatRunMetrics(M);
  EXPECT_NE(S.find("t=44"), std::string::npos) << S;
  EXPECT_NE(S.find("move%=80.0"), std::string::npos) << S;
  EXPECT_NE(S.find("meetings/step=2.00"), std::string::npos) << S;
  EXPECT_NE(S.find("colored=7"), std::string::npos) << S;
}
