//===- tests/analysis/BoundsTest.cpp - Lower-bound oracle tests -----------===//

#include "config/Bounds.h"

#include "agent/BestAgents.h"
#include "grid/Distance.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(BoundsTest, PairwiseDistanceAndBoundBasics) {
  Torus T(GridKind::Square, 16);
  InitialConfiguration C;
  C.Placements = {{Coord{0, 0}, 0}, {Coord{8, 8}, 0}};
  EXPECT_EQ(maxPairwiseDistance(T, C), 16);
  EXPECT_EQ(communicationLowerBound(T, C), 5); // ceil(15 / 3).
  EXPECT_EQ(stationaryLowerBound(T, C), 15);

  InitialConfiguration Single;
  Single.Placements = {{Coord{3, 3}, 0}};
  EXPECT_EQ(maxPairwiseDistance(T, Single), 0);
  EXPECT_EQ(communicationLowerBound(T, Single), 0);
  EXPECT_EQ(stationaryLowerBound(T, Single), 0);

  InitialConfiguration Adjacent;
  Adjacent.Placements = {{Coord{0, 0}, 0}, {Coord{1, 0}, 0}};
  EXPECT_EQ(communicationLowerBound(T, Adjacent), 0)
      << "adjacent pairs solve at t = 0";
}

TEST(BoundsTest, PackedFieldMeetsTheStationaryBoundExactly) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    InitialConfiguration Packed = packedConfiguration(T);
    EXPECT_EQ(maxPairwiseDistance(T, Packed), diameterByScan(T));
    // The measured packed time (Table 1: 15 / 9) equals this bound.
    EXPECT_EQ(stationaryLowerBound(T, Packed), diameterByScan(T) - 1);
  }
}

struct BoundCase {
  GridKind Kind;
  int NumAgents;
  uint64_t Seed;
};

class LowerBoundPropertyTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(LowerBoundPropertyTest, NoBehaviourBeatsTheBound) {
  // The oracle: measured t_comm can never undercut the behaviour-free
  // bound — for the published FSMs and for random FSMs alike.
  BoundCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed);
  for (int Trial = 0; Trial != 15; ++Trial) {
    InitialConfiguration Field = randomConfiguration(T, C.NumAgents, R);
    int Bound = communicationLowerBound(T, Field);
    SimOptions O;
    O.MaxSteps = 3000;
    // Published agent.
    W.reset(bestAgent(C.Kind), Field.Placements, O);
    SimResult Best = W.run();
    if (Best.Success)
      EXPECT_GE(Best.TComm, Bound) << "published FSM beat the lower bound";
    // Random behaviour.
    Genome Random = Genome::random(R);
    O.MaxSteps = 300;
    W.reset(Random, Field.Placements, O);
    SimResult Rand = W.run();
    if (Rand.Success)
      EXPECT_GE(Rand.TComm, Bound) << "random FSM beat the lower bound";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, LowerBoundPropertyTest,
    ::testing::Values(BoundCase{GridKind::Square, 2, 21},
                      BoundCase{GridKind::Square, 8, 22},
                      BoundCase{GridKind::Square, 32, 23},
                      BoundCase{GridKind::Triangulate, 2, 24},
                      BoundCase{GridKind::Triangulate, 8, 25},
                      BoundCase{GridKind::Triangulate, 32, 26}),
    [](const ::testing::TestParamInfo<BoundCase> &I) {
      return std::string(gridKindName(I.param.Kind)) + "k" +
             std::to_string(I.param.NumAgents);
    });

TEST(BoundsTest, BoundIsUsefulForTwoAgentTraces) {
  // The Fig. 6/7-style configuration: the bound gives a nontrivial floor.
  Torus T(GridKind::Square, 16);
  InitialConfiguration C;
  C.Placements = {{Coord{2, 11}, 1}, {Coord{10, 9}, 2}};
  int Bound = communicationLowerBound(T, C);
  EXPECT_GT(Bound, 0);
  World W(T);
  SimOptions O;
  O.MaxSteps = 3000;
  W.reset(bestSquareAgent(), C.Placements, O);
  SimResult R = W.run();
  ASSERT_TRUE(R.Success);
  EXPECT_GE(R.TComm, Bound);
}
