//===- tests/analysis/SignificanceTest.cpp - Statistics unit tests --------===//

#include "analysis/Significance.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace ca2a;

TEST(WelchTest, KnownSmallSample) {
  // A = {1,2,3,4,5}: mean 3, var 2.5; B = {2,4,6,8,10}: mean 6, var 10.
  std::vector<double> A = {1, 2, 3, 4, 5};
  std::vector<double> B = {2, 4, 6, 8, 10};
  WelchResult R = welchTTest(A, B);
  EXPECT_DOUBLE_EQ(R.MeanA, 3.0);
  EXPECT_DOUBLE_EQ(R.MeanB, 6.0);
  // t = (3 - 6) / sqrt(2.5/5 + 10/5) = -3 / sqrt(2.5) = -1.8974.
  EXPECT_NEAR(R.TStatistic, -1.8974, 1e-3);
  // df = (0.5 + 2)^2 / (0.5^2/4 + 2^2/4) = 6.25 / 1.0625 = 5.882.
  EXPECT_NEAR(R.DegreesOfFreedom, 5.882, 1e-2);
  EXPECT_FALSE(R.overwhelming());
}

TEST(WelchTest, IdenticalSamplesGiveZeroT) {
  std::vector<double> A = {5, 6, 7, 8};
  WelchResult R = welchTTest(A, A);
  EXPECT_DOUBLE_EQ(R.TStatistic, 0.0);
  EXPECT_FALSE(R.overwhelming());
}

TEST(WelchTest, LargeSeparatedSamplesAreOverwhelming) {
  Rng R(9);
  std::vector<double> A, B;
  for (int I = 0; I != 500; ++I) {
    A.push_back(40.0 + R.uniformReal() * 10.0);
    B.push_back(60.0 + R.uniformReal() * 10.0);
  }
  WelchResult W = welchTTest(A, B);
  EXPECT_LT(W.TStatistic, -3.0);
  EXPECT_GT(W.DegreesOfFreedom, 30.0);
  EXPECT_TRUE(W.overwhelming());
}

TEST(BootstrapTest, PointEstimateAndCoverage) {
  Rng R(5);
  std::vector<double> Num, Den;
  for (int I = 0; I != 400; ++I) {
    Num.push_back(40.0 + R.uniformReal() * 4.0); // mean ~42.
    Den.push_back(63.0 + R.uniformReal() * 4.0); // mean ~65.
  }
  Rng BootRng(1);
  BootstrapInterval CI = bootstrapMeanRatio(Num, Den, 0.95, 2000, BootRng);
  EXPECT_NEAR(CI.Estimate, 42.0 / 65.0, 0.02);
  EXPECT_LT(CI.Low, CI.Estimate);
  EXPECT_GT(CI.High, CI.Estimate);
  EXPECT_GT(CI.Low, 0.55);
  EXPECT_LT(CI.High, 0.75);
  // Tight interval for n = 400.
  EXPECT_LT(CI.High - CI.Low, 0.05);
}

TEST(BootstrapTest, DeterministicPerSeed) {
  std::vector<double> Num = {1, 2, 3, 4, 5, 6};
  std::vector<double> Den = {2, 4, 6, 8, 10, 12};
  Rng R1(7), R2(7);
  BootstrapInterval A = bootstrapMeanRatio(Num, Den, 0.9, 500, R1);
  BootstrapInterval B = bootstrapMeanRatio(Num, Den, 0.9, 500, R2);
  EXPECT_DOUBLE_EQ(A.Low, B.Low);
  EXPECT_DOUBLE_EQ(A.High, B.High);
  EXPECT_DOUBLE_EQ(A.Estimate, 0.5);
}

TEST(BootstrapTest, DegenerateConstantSamples) {
  std::vector<double> Num(10, 3.0), Den(10, 6.0);
  Rng R(3);
  BootstrapInterval CI = bootstrapMeanRatio(Num, Den, 0.95, 100, R);
  EXPECT_DOUBLE_EQ(CI.Estimate, 0.5);
  EXPECT_DOUBLE_EQ(CI.Low, 0.5);
  EXPECT_DOUBLE_EQ(CI.High, 0.5);
}

TEST(WelchTest, ZeroVarianceIdenticalSamplesStayFinite) {
  // Two constant, equal samples: no separation, no variance — the guarded
  // implementation must report t = 0 / df = 0, never NaN.
  std::vector<double> A(5, 7.0), B(4, 7.0);
  WelchResult R = welchTTest(A, B);
  EXPECT_DOUBLE_EQ(R.MeanA, 7.0);
  EXPECT_DOUBLE_EQ(R.MeanB, 7.0);
  EXPECT_DOUBLE_EQ(R.TStatistic, 0.0);
  EXPECT_DOUBLE_EQ(R.DegreesOfFreedom, 0.0);
  EXPECT_FALSE(R.overwhelming());
}

TEST(WelchTest, ZeroVarianceSeparatedSamplesStayFinite) {
  // Constant but different samples have a zero pooled standard error; the
  // statistic is reported as 0 (no evidence claim) rather than infinity.
  std::vector<double> A(3, 1.0), B(3, 2.0);
  WelchResult R = welchTTest(A, B);
  EXPECT_DOUBLE_EQ(R.MeanA, 1.0);
  EXPECT_DOUBLE_EQ(R.MeanB, 2.0);
  EXPECT_DOUBLE_EQ(R.TStatistic, 0.0);
  EXPECT_FALSE(R.overwhelming());
  EXPECT_FALSE(std::isnan(R.TStatistic));
  EXPECT_FALSE(std::isnan(R.DegreesOfFreedom));
}

TEST(WelchTest, MinimumSampleSizeOfTwo) {
  // The smallest legal input: two observations per sample.
  std::vector<double> A = {1.0, 3.0};
  std::vector<double> B = {2.0, 2.0};
  WelchResult R = welchTTest(A, B);
  EXPECT_DOUBLE_EQ(R.MeanA, 2.0);
  EXPECT_DOUBLE_EQ(R.MeanB, 2.0);
  EXPECT_FALSE(std::isnan(R.TStatistic));
  EXPECT_FALSE(std::isnan(R.DegreesOfFreedom));
}

TEST(BootstrapTest, SingleObservationSamplesCollapseToTheEstimate) {
  // One replica per side: every resample is the sample itself, so the
  // interval has zero width at the point estimate.
  std::vector<double> Num = {3.0};
  std::vector<double> Den = {4.0};
  Rng R(11);
  BootstrapInterval CI = bootstrapMeanRatio(Num, Den, 0.95, 200, R);
  EXPECT_DOUBLE_EQ(CI.Estimate, 0.75);
  EXPECT_DOUBLE_EQ(CI.Low, 0.75);
  EXPECT_DOUBLE_EQ(CI.High, 0.75);
}

TEST(BootstrapTest, AllFailureNumeratorGivesAZeroInterval) {
  // An all-failure run contributes a numerator of zeros (e.g. zero solved
  // fields per seed); the ratio and its whole interval must be exactly 0.
  std::vector<double> Num(8, 0.0);
  std::vector<double> Den = {5.0, 6.0, 7.0, 8.0};
  Rng R(13);
  BootstrapInterval CI = bootstrapMeanRatio(Num, Den, 0.9, 200, R);
  EXPECT_DOUBLE_EQ(CI.Estimate, 0.0);
  EXPECT_DOUBLE_EQ(CI.Low, 0.0);
  EXPECT_DOUBLE_EQ(CI.High, 0.0);
}
