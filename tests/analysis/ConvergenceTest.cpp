//===- tests/analysis/ConvergenceTest.cpp - Convergence-curve tests -------===//

#include "analysis/Convergence.h"

#include "agent/BestAgents.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(ConvergenceTest, CurveIsMonotoneAndReachesOneOnSolvedSets) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 20, 9);
  SimOptions O;
  O.MaxSteps = 2000;
  ConvergenceCurve Curve =
      collectConvergence(bestTriangulateAgent(), T, Fields, O, 400);
  ASSERT_EQ(Curve.InformedFraction.size(), 400u);
  EXPECT_EQ(Curve.NumFields, 23);
  EXPECT_EQ(Curve.SolvedFields, 23);
  for (size_t I = 1; I != Curve.InformedFraction.size(); ++I)
    EXPECT_GE(Curve.InformedFraction[I], Curve.InformedFraction[I - 1] - 1e-12)
        << "mean informed fraction regressed at t=" << I;
  EXPECT_NEAR(Curve.InformedFraction.back(), 1.0, 1e-12)
      << "every field solved: the curve must saturate at 1";
}

TEST(ConvergenceTest, TimeToLevel) {
  ConvergenceCurve Curve;
  Curve.InformedFraction = {0.0, 0.2, 0.5, 0.9, 1.0};
  EXPECT_EQ(Curve.timeToLevel(0.0), 0);
  EXPECT_EQ(Curve.timeToLevel(0.5), 2);
  EXPECT_EQ(Curve.timeToLevel(0.95), 4);
  EXPECT_EQ(Curve.timeToLevel(1.1), -1);
}

TEST(ConvergenceTest, UnsolvedFieldsKeepTheirTailFraction) {
  // Stationary agents at distance 2: nobody is ever informed.
  Torus T(GridKind::Square, 16);
  Genome Stay;
  std::vector<InitialConfiguration> Fields = {diagonalConfiguration(T, 4)};
  SimOptions O;
  O.MaxSteps = 30;
  ConvergenceCurve Curve = collectConvergence(Stay, T, Fields, O, 60);
  EXPECT_EQ(Curve.SolvedFields, 0);
  for (double F : Curve.InformedFraction)
    EXPECT_DOUBLE_EQ(F, 0.0);
}

TEST(ConvergenceTest, TriangulateCurveDominatesSquare) {
  // Stronger than "mean t_comm is lower": the T-grid's informed fraction
  // is at least the S-grid's at (almost) every time step.
  SimOptions O;
  O.MaxSteps = 2000;
  constexpr int CurveLength = 250;
  std::vector<double> Curves[2];
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    auto Fields = standardConfigurationSet(T, 16, 40, 13);
    ConvergenceCurve Curve =
        collectConvergence(bestAgent(Kind), T, Fields, O, CurveLength);
    Curves[Kind == GridKind::Triangulate] = Curve.InformedFraction;
  }
  // Compare at a few representative times (allow tiny sampling noise).
  for (int Time : {20, 40, 60, 100, 150, 240})
    EXPECT_GE(Curves[1][static_cast<size_t>(Time)] + 0.02,
              Curves[0][static_cast<size_t>(Time)])
        << "t=" << Time;
  // And strictly better somewhere in the body.
  EXPECT_GT(Curves[1][60], Curves[0][60]);
}

TEST(RenderConvergenceTest, Layout) {
  ConvergenceCurve Curve;
  Curve.InformedFraction = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::string Out = renderConvergence(Curve, 2, 8);
  // Rows for t = 0, 2, 4.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 3);
  EXPECT_NE(Out.find("100.0%"), std::string::npos);
  EXPECT_NE(Out.find("########"), std::string::npos);
}
