//===- tests/analysis/DistributionTest.cpp - Distribution unit tests ------===//

#include "analysis/Distribution.h"

#include "agent/BestAgents.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(CollectCommTimesTest, SampleMatchesFieldSet) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 25, 5);
  SimOptions O;
  O.MaxSteps = 2000;
  CommTimeDistribution D =
      collectCommTimes(bestTriangulateAgent(), T, Fields, O);
  EXPECT_EQ(D.Times.size() + static_cast<size_t>(D.Unsolved), Fields.size());
  EXPECT_EQ(D.Unsolved, 0) << "best T-agent must solve the sampled fields";
  EXPECT_EQ(D.Stats.Count, D.Times.size());
  EXPECT_GT(D.Stats.Mean, 0.0);
  EXPECT_GE(D.Stats.Max, D.Stats.Median);
}

TEST(CollectCommTimesTest, CountsUnsolvedFields) {
  Torus T(GridKind::Square, 16);
  Genome Stay; // Never moves.
  std::vector<InitialConfiguration> Fields = {diagonalConfiguration(T, 4)};
  SimOptions O;
  O.MaxSteps = 50;
  CommTimeDistribution D = collectCommTimes(Stay, T, Fields, O);
  EXPECT_TRUE(D.Times.empty());
  EXPECT_EQ(D.Unsolved, 1);
}

TEST(RenderHistogramTest, BucketsSumToSample) {
  std::vector<double> Times = {1, 2, 2, 3, 3, 3, 10, 10, 20, 30};
  std::string H = renderHistogram(Times, 5, 20);
  // One line per bucket; counts appear; bars proportional.
  EXPECT_EQ(std::count(H.begin(), H.end(), '\n'), 5);
  int TotalHashes = static_cast<int>(std::count(H.begin(), H.end(), '#'));
  EXPECT_GT(TotalHashes, 0);
  EXPECT_NE(H.find("|#"), std::string::npos);
}

TEST(RenderHistogramTest, DegenerateSamples) {
  EXPECT_EQ(renderHistogram({}, 4), "(empty sample)\n");
  // Constant sample: everything lands in one bucket, no crash.
  std::string H = renderHistogram({5, 5, 5}, 3);
  EXPECT_EQ(std::count(H.begin(), H.end(), '\n'), 3);
  EXPECT_NE(H.find("    3 |"), std::string::npos) << H;
}

TEST(FormatDistributionSummaryTest, Layout) {
  CommTimeDistribution D;
  D.Times = {10, 20, 30, 40};
  D.Stats = Summary::of(D.Times);
  std::string S = formatDistributionSummary(D);
  EXPECT_NE(S.find("mean 25.00"), std::string::npos) << S;
  EXPECT_NE(S.find("median 25.0"), std::string::npos) << S;
  EXPECT_NE(S.find("max 40"), std::string::npos) << S;
  EXPECT_NE(S.find("n=4"), std::string::npos) << S;

  D.Unsolved = 2;
  EXPECT_NE(formatDistributionSummary(D).find("2 unsolved"),
            std::string::npos);

  CommTimeDistribution Empty;
  Empty.Unsolved = 3;
  EXPECT_NE(formatDistributionSummary(Empty).find("no solved fields"),
            std::string::npos);
}
