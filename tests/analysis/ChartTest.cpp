//===- tests/analysis/ChartTest.cpp - ASCII chart unit tests --------------===//

#include "analysis/Chart.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace ca2a;

namespace {
std::vector<std::string> lines(const std::string &Text) {
  std::vector<std::string> Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    Out.push_back(Line);
  return Out;
}
} // namespace

TEST(ChartTest, GeometryAndLegend) {
  ChartSeries T{'T', "T-grid", {58.43, 78.30, 58.68, 41.25, 28.06, 9.00}};
  ChartSeries S{'S', "S-grid", {82.78, 116.12, 90.93, 63.39, 42.93, 15.00}};
  std::string Chart = renderCategoryChart({"2", "4", "8", "16", "32", "256"},
                                          {T, S}, 12, 7);
  std::vector<std::string> Rows = lines(Chart);
  // 12 canvas rows + axis + labels + 2 legend rows.
  ASSERT_EQ(Rows.size(), 16u);
  EXPECT_NE(Chart.find("T = T-grid"), std::string::npos);
  EXPECT_NE(Chart.find("S = S-grid"), std::string::npos);
  // Max value (116) appears on the top scale row.
  EXPECT_NE(Rows[0].find("116"), std::string::npos) << Rows[0];
  // Both markers are plotted.
  EXPECT_NE(Chart.find('T'), std::string::npos);
  EXPECT_NE(Chart.find('S'), std::string::npos);
}

TEST(ChartTest, PeakPositionReflectsTheData) {
  // Fig. 5's distinctive shape: the k = 4 column peaks. The S series' max
  // must be plotted on the top canvas row in the second column block.
  ChartSeries S{'s', "series", {82.78, 116.12, 90.93, 63.39, 42.93, 15.00}};
  std::string Chart =
      renderCategoryChart({"2", "4", "8", "16", "32", "256"}, {S}, 10, 7);
  std::vector<std::string> Rows = lines(Chart);
  // Row 0 holds the maximum; its marker must sit in column block 1
  // (characters 8 + [7..14) of the canvas after the "nnnnnn |" prefix).
  std::string TopRow = Rows[0];
  size_t MarkerPos = TopRow.find('s');
  ASSERT_NE(MarkerPos, std::string::npos);
  size_t CanvasStart = TopRow.find('|') + 1;
  size_t Block = (MarkerPos - CanvasStart) / 7;
  EXPECT_EQ(Block, 1u) << "the peak must be over the k=4 slot";
}

TEST(ChartTest, OverlapRendersPlus) {
  ChartSeries A{'a', "A", {10.0}};
  ChartSeries B{'b', "B", {10.0}};
  std::string Chart = renderCategoryChart({"x"}, {A, B}, 5, 5);
  EXPECT_NE(Chart.find('+'), std::string::npos)
      << "coinciding points must merge into '+'\n"
      << Chart;
}

TEST(ChartTest, AllZeroSeriesDoesNotDivideByZero) {
  ChartSeries Z{'z', "zero", {0.0, 0.0}};
  std::string Chart = renderCategoryChart({"a", "b"}, {Z}, 4, 4);
  EXPECT_FALSE(Chart.empty());
  EXPECT_NE(Chart.find('z'), std::string::npos);
}
