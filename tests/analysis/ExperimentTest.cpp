//===- tests/analysis/ExperimentTest.cpp - Experiment driver unit tests ---===//

#include "analysis/Experiment.h"

#include "agent/BestAgents.h"
#include "grid/Distance.h"
#include "gtest/gtest.h"

using namespace ca2a;

namespace {
FitnessParams generousCutoff() {
  FitnessParams P;
  P.Sim.MaxSteps = 2000;
  return P;
}
} // namespace

TEST(MeasureDensityTest, PackedFieldGivesDiameterMinusOne) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    DensityMeasurement M = measureDensity(bestAgent(Kind), T, 256, 10, 1,
                                          generousCutoff());
    EXPECT_EQ(M.NumFields, 1);
    EXPECT_TRUE(M.completelySuccessful());
    EXPECT_DOUBLE_EQ(M.MeanCommTime, diameterByScan(T) - 1);
  }
}

TEST(MeasureDensityTest, ReportsKindAndCounts) {
  Torus T(GridKind::Triangulate, 16);
  DensityMeasurement M =
      measureDensity(bestTriangulateAgent(), T, 8, 15, 3, generousCutoff());
  EXPECT_EQ(M.Kind, GridKind::Triangulate);
  EXPECT_EQ(M.NumAgents, 8);
  EXPECT_EQ(M.NumFields, 18);
  EXPECT_EQ(M.SolvedFields, 18);
  EXPECT_GT(M.MeanCommTime, 0.0);
}

TEST(DensitySweepTest, StructureAndRatio) {
  SweepParams P;
  P.AgentCounts = {2, 8, 256};
  P.NumRandomFields = 15;
  P.Fitness = generousCutoff();
  auto Sweep = runDensitySweep(bestSquareAgent(), bestTriangulateAgent(), P);
  ASSERT_EQ(Sweep.size(), 3u);
  for (const DensityComparison &C : Sweep) {
    EXPECT_EQ(C.Triangulate.Kind, GridKind::Triangulate);
    EXPECT_EQ(C.Square.Kind, GridKind::Square);
    EXPECT_GT(C.Square.MeanCommTime, 0.0);
    EXPECT_NEAR(C.ratio(), C.Triangulate.MeanCommTime / C.Square.MeanCommTime,
                1e-12);
  }
  // The packed column is exact: 9 / 15 = 0.6 (Table 1).
  EXPECT_DOUBLE_EQ(Sweep.back().Triangulate.MeanCommTime, 9.0);
  EXPECT_DOUBLE_EQ(Sweep.back().Square.MeanCommTime, 15.0);
  EXPECT_DOUBLE_EQ(Sweep.back().ratio(), 0.6);
}

TEST(DensitySweepTest, TriangulateBeatsSquareOnSampledFields) {
  // The headline claim at reduced scale: T-agents are faster at every
  // density.
  SweepParams P;
  P.AgentCounts = {2, 4, 8, 16};
  P.NumRandomFields = 25;
  P.Fitness = generousCutoff();
  auto Sweep = runDensitySweep(bestSquareAgent(), bestTriangulateAgent(), P);
  for (const DensityComparison &C : Sweep) {
    EXPECT_LT(C.ratio(), 1.0) << "k=" << C.NumAgents;
    EXPECT_GT(C.ratio(), 0.4) << "k=" << C.NumAgents;
  }
}

TEST(DensityComparisonTest, RatioOfZeroTimesIsZero) {
  DensityComparison C;
  EXPECT_DOUBLE_EQ(C.ratio(), 0.0);
}
