//===- tests/analysis/TableTest.cpp - Table formatting unit tests ---------===//

#include "analysis/Table.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace ca2a;

namespace {

std::vector<DensityComparison> sampleSweep() {
  // Table 1's first and last columns, verbatim.
  DensityComparison A;
  A.NumAgents = 2;
  A.Triangulate.Kind = GridKind::Triangulate;
  A.Triangulate.NumAgents = 2;
  A.Triangulate.MeanCommTime = 58.43;
  A.Triangulate.SolvedFields = A.Triangulate.NumFields = 1003;
  A.Square.Kind = GridKind::Square;
  A.Square.NumAgents = 2;
  A.Square.MeanCommTime = 82.78;
  A.Square.SolvedFields = A.Square.NumFields = 1003;

  DensityComparison B;
  B.NumAgents = 256;
  B.Triangulate.Kind = GridKind::Triangulate;
  B.Triangulate.MeanCommTime = 9.0;
  B.Triangulate.SolvedFields = B.Triangulate.NumFields = 1;
  B.Square.Kind = GridKind::Square;
  B.Square.MeanCommTime = 15.0;
  B.Square.SolvedFields = B.Square.NumFields = 1;
  return {A, B};
}

} // namespace

TEST(FormatDensityTableTest, PaperLayout) {
  std::string Table = formatDensityTable(sampleSweep());
  EXPECT_NE(Table.find("N_agents"), std::string::npos);
  EXPECT_NE(Table.find("T-grid"), std::string::npos);
  EXPECT_NE(Table.find("S-grid"), std::string::npos);
  EXPECT_NE(Table.find("T/S"), std::string::npos);
  // The classic numbers, formatted to the paper's precision.
  EXPECT_NE(Table.find("58.43"), std::string::npos);
  EXPECT_NE(Table.find("82.78"), std::string::npos);
  EXPECT_NE(Table.find("0.706"), std::string::npos);
  EXPECT_NE(Table.find("0.600"), std::string::npos);
  EXPECT_NE(Table.find("15.00"), std::string::npos);
}

TEST(WriteDensityCsvTest, HeaderAndRows) {
  std::ostringstream Out;
  writeDensityCsv(sampleSweep(), Out);
  std::string Csv = Out.str();
  EXPECT_NE(Csv.find("n_agents,t_grid_mean,s_grid_mean,ratio"),
            std::string::npos);
  // Header + 2 data rows.
  EXPECT_EQ(std::count(Csv.begin(), Csv.end(), '\n'), 3);
  EXPECT_NE(Csv.find("256,9.0000,15.0000,0.6000,1,1,1,1"), std::string::npos)
      << Csv;
}

TEST(FormatMeasurementTest, Layout) {
  DensityMeasurement M;
  M.Kind = GridKind::Triangulate;
  M.NumAgents = 16;
  M.MeanCommTime = 41.25;
  M.SolvedFields = 1003;
  M.NumFields = 1003;
  EXPECT_EQ(formatMeasurement(M), "T-grid k=16: 41.25 steps (1003/1003 solved)");
}
