//===- tests/support/RaceStressTest.cpp - TSan-targeted concurrency stress ===//
//
// Stress fixtures for the ThreadSanitizer preset (scripts/sanitize.sh
// tsan): each test hammers one of the repo's concurrent hot paths — the
// ThreadPool task queue, parallelForDynamic's work-stealing counter, the
// BatchEngine replica fan-out with its shared read-only genome-compile
// tables, and EvalScheduler's concurrent cancellation hooks — with enough
// iterations and contention that a missing synchronisation edge becomes a
// TSan report rather than a review-time hope.
//
// Every test also pins a behavioural anchor (bit-identical results across
// worker counts) so the suite earns its keep in non-sanitized builds too:
// a scheduling change that broke determinism would fail here before any
// sanitizer ran.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "ga/EvalScheduler.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace ca2a;

namespace {

Genome randomGenome(uint64_t Seed) {
  Rng R(Seed);
  return Genome::random(R);
}

} // namespace

// parallelForDynamic under churn: repeated fan-outs over a shared relaxed
// counter plus per-worker slots — the exact access pattern BatchEngine's
// instrumentation uses. Any missing happens-before edge between a worker's
// slot writes and the caller's post-join reads is a race TSan will flag.
TEST(RaceStressTest, ParallelForDynamicCounterAndPerWorkerSlots) {
  constexpr size_t Workers = 4;
  constexpr size_t Count = 512;
  for (int Round = 0; Round != 8; ++Round) {
    std::atomic<uint64_t> Shared{0};
    std::vector<uint64_t> PerWorker(Workers, 0);
    std::vector<uint8_t> Visited(Count, 0);
    parallelForDynamic(Count, Workers, [&](size_t Worker, size_t I) {
      // Shared accumulation: relaxed is enough, the value is only read
      // after the join below.
      Shared.fetch_add(I + 1, std::memory_order_relaxed);
      // Per-worker slot: unsynchronised by design, no other thread may
      // touch it until the join.
      PerWorker[Worker] += 1;
      Visited[I] = 1; // Distinct index per call: never racy.
      if (I % 97 == 0)
        std::this_thread::yield(); // Shake up the interleaving.
    });
    uint64_t Expected = Count * (Count + 1) / 2;
    EXPECT_EQ(Shared.load(std::memory_order_relaxed), Expected);
    uint64_t Total = 0;
    for (uint64_t W : PerWorker)
      Total += W;
    EXPECT_EQ(Total, Count);
    for (size_t I = 0; I != Count; ++I)
      EXPECT_EQ(Visited[I], 1) << "index " << I;
  }
}

// Concurrent submitters: several threads feed one pool while workers
// drain. The queue mutex must serialise submit against the worker pops;
// the final wait() (after the submitters joined) must observe every task.
TEST(RaceStressTest, ThreadPoolConcurrentSubmitters) {
  ThreadPool Pool(3);
  std::atomic<int> Ran{0};
  constexpr int PerSubmitter = 200;
  std::vector<std::thread> Submitters;
  Submitters.reserve(4);
  for (int S = 0; S != 4; ++S)
    Submitters.emplace_back([&Pool, &Ran] {
      for (int I = 0; I != PerSubmitter; ++I)
        Pool.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
    });
  for (std::thread &S : Submitters)
    S.join();
  Pool.wait();
  EXPECT_EQ(Ran.load(), 4 * PerSubmitter);
}

// The batch engine's work-stealing replica loop plus the genome-compile
// cache: 48 replicas share 3 genomes, so every worker reads the same flat
// transition tables while pulling indices off the shared atomic cursor.
// The parallel results (and the run stats' per-worker slots) must be
// bit-identical to the serial run — and TSan must see no races in the
// cursor, the shared tables, or the result slots.
TEST(RaceStressTest, BatchEngineWorkStealingSharesCompileCache) {
  Torus T(GridKind::Triangulate, 12);
  std::deque<Genome> Genomes;
  for (uint64_t S = 0; S != 3; ++S)
    Genomes.push_back(randomGenome(0xace0 + S));

  Rng R(99);
  std::deque<std::vector<Placement>> Fields;
  SimOptions Options;
  Options.MaxSteps = 60;
  std::vector<BatchReplica> Replicas;
  for (int I = 0; I != 48; ++I) {
    Fields.push_back(randomConfiguration(T, 8, R).Placements);
    BatchReplica Rep;
    Rep.A = &Genomes[static_cast<size_t>(I) % Genomes.size()];
    Rep.Placements = &Fields.back();
    Rep.Options = &Options;
    Replicas.push_back(Rep);
  }

  BatchEngine Engine(T);
  std::vector<SimResult> Serial = Engine.run(Replicas, {});
  for (size_t Workers : {2u, 4u, 8u}) {
    BatchRunOptions RO;
    RO.NumWorkers = Workers;
    BatchRunStats Stats;
    RO.Stats = &Stats;
    std::vector<SimResult> Parallel = Engine.run(Replicas, RO);
    ASSERT_EQ(Parallel.size(), Serial.size());
    for (size_t I = 0; I != Serial.size(); ++I)
      EXPECT_TRUE(Parallel[I] == Serial[I])
          << "replica " << I << " differs at " << Workers << " workers";
    // One compile per distinct genome, everything else cache hits —
    // regardless of how the workers raced for replicas.
    EXPECT_EQ(Stats.CompileMisses, Genomes.size());
    EXPECT_EQ(Stats.ReplicasSimulated, Replicas.size());
    uint64_t PerWorkerTotal = 0;
    for (uint64_t N : Stats.ReplicasPerWorker)
      PerWorkerTotal += N;
    EXPECT_EQ(PerWorkerTotal, Replicas.size());
  }
}

// Partial-batch cancellation under contention: ShouldSkip and OnResult are
// invoked concurrently from every worker while the test flips the skip
// flag from OnResult itself (the EvalScheduler pattern) — the hooks'
// contract says callers own the synchronisation, so this test keeps its
// state behind a mutex and TSan verifies the engine adds no unsynchronised
// accesses of its own around the hook calls.
TEST(RaceStressTest, BatchEngineConcurrentCancellation) {
  Torus T(GridKind::Square, 12);
  Genome G = randomGenome(0xcafe);
  Rng R(7);
  std::deque<std::vector<Placement>> Fields;
  SimOptions Options;
  Options.MaxSteps = 80;
  std::vector<BatchReplica> Replicas;
  for (int I = 0; I != 64; ++I) {
    Fields.push_back(randomConfiguration(T, 6, R).Placements);
    BatchReplica Rep;
    Rep.A = &G;
    Rep.Placements = &Fields.back();
    Rep.Options = &Options;
    Replicas.push_back(Rep);
  }

  BatchEngine Engine(T);
  std::mutex Mutex;
  int Completed = 0;
  bool SkipTail = false;
  BatchRunOptions RO;
  RO.NumWorkers = 4;
  RO.ShouldSkip = [&](int Replica) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return SkipTail && Replica >= 32;
  };
  RO.OnResult = [&](int, const SimResult &Result) {
    EXPECT_GT(Result.NumAgents, 0) << "skipped replicas must not report";
    std::lock_guard<std::mutex> Lock(Mutex);
    if (++Completed == 16)
      SkipTail = true; // Cancel the batch's tail mid-flight.
  };
  std::vector<SimResult> Results = Engine.run(Replicas, RO);

  // Every replica either carries a real result or the default-constructed
  // skip marker; the head (never skippable) must all be real.
  for (size_t I = 0; I != 32; ++I)
    EXPECT_GT(Results[I].NumAgents, 0) << "head replica " << I;
  int Skipped = 0;
  for (const SimResult &Result : Results)
    Skipped += Result.NumAgents == 0;
  std::lock_guard<std::mutex> Lock(Mutex);
  EXPECT_EQ(Completed + Skipped, static_cast<int>(Results.size()));
}

// The full scheduler stack under contention: a generation evaluated at 8
// workers with pruning enabled exercises the engine fan-out, the hook
// mutex, and the bound heap concurrently. Selection-visible outcomes must
// match the serial exact evaluation bit for bit (the scheduler's core
// claim); TSan watches the whole path.
TEST(RaceStressTest, EvalSchedulerGenerationUnderContention) {
  Torus T(GridKind::Triangulate, 12);
  std::vector<InitialConfiguration> Fields =
      standardConfigurationSet(T, 4, 5, 77);
  FitnessParams FP;
  FP.Sim.MaxSteps = 60;
  FP.Engine = EngineKind::Batch;

  std::deque<Genome> Pool;
  std::vector<const Genome *> Request;
  for (uint64_t S = 0; S != 12; ++S) {
    Pool.push_back(randomGenome(0xbeef00 + S));
    Request.push_back(&Pool.back());
  }

  // Exact serial ground truth.
  FP.NumWorkers = 1;
  SchedulerParams Exact;
  Exact.ExactFitness = true;
  EvalScheduler Serial(T, Fields, FP, Exact);
  std::vector<EvalOutcome> Truth = Serial.evaluateGeneration(Request, {});

  // Incumbents tight enough that the tail of the request gets pruned.
  std::vector<double> Incumbents;
  for (size_t I = 0; I != 4; ++I)
    Incumbents.push_back(Truth[I].Result.Fitness);

  FP.NumWorkers = 8;
  EvalScheduler Parallel(T, Fields, FP, SchedulerParams{});
  std::vector<EvalOutcome> Out = Parallel.evaluateGeneration(Request, Incumbents);
  ASSERT_EQ(Out.size(), Truth.size());
  for (size_t I = 0; I != Out.size(); ++I) {
    if (Out[I].Pruned) {
      // A pruned genome reports its certified *lower* bound (fitness is
      // minimised): it can never beat the exact value.
      EXPECT_LE(Out[I].Result.Fitness, Truth[I].Result.Fitness + 1e-9)
          << "genome " << I;
    } else {
      EXPECT_DOUBLE_EQ(Out[I].Result.Fitness, Truth[I].Result.Fitness)
          << "genome " << I;
    }
  }
}
