//===- tests/support/RngTest.cpp - Rng unit tests -------------------------===//

#include "support/Rng.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <array>
#include <set>
#include <vector>

using namespace ca2a;

TEST(RngTest, SameSeedSameSequence) {
  Rng A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I != 100; ++I)
    Equal += (A.nextU64() == B.nextU64());
  EXPECT_EQ(Equal, 0);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng R(0);
  // The all-zero xoshiro state would emit only zeros; SplitMix seeding must
  // prevent that.
  bool SawNonZero = false;
  for (int I = 0; I != 16; ++I)
    SawNonZero |= (R.nextU64() != 0);
  EXPECT_TRUE(SawNonZero);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation with
  // initial state 0.
  uint64_t State = 0;
  EXPECT_EQ(splitMix64(State), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitMix64(State), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitMix64(State), 0x06c45d188009454fULL);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng A(7);
  Rng Child1 = A.fork();
  Rng B(7);
  Rng Child2 = B.fork();
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Child1.nextU64(), Child2.nextU64());
  // Parent stream continues identically too.
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

class RngBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundTest, UniformIntWithinBound) {
  uint64_t Bound = GetParam();
  Rng R(Bound * 977 + 3);
  for (int I = 0; I != 2000; ++I)
    EXPECT_LT(R.uniformInt(Bound), Bound);
}

TEST_P(RngBoundTest, UniformIntHitsAllSmallValues) {
  uint64_t Bound = GetParam();
  if (Bound > 64)
    GTEST_SKIP() << "coverage check only for small bounds";
  Rng R(Bound + 12345);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 5000; ++I)
    Seen.insert(R.uniformInt(Bound));
  EXPECT_EQ(Seen.size(), Bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(1, 2, 3, 4, 6, 7, 16, 17, 64, 100,
                                           256, 1000000007ULL));

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng R(99);
  constexpr int Bound = 10;
  constexpr int Draws = 100000;
  int Counts[Bound] = {};
  for (int I = 0; I != Draws; ++I)
    ++Counts[R.uniformInt(Bound)];
  // Each bucket expects 10000; allow +-6% (far beyond 5 sigma ~ 1.5%).
  for (int C : Counts) {
    EXPECT_GT(C, Draws / Bound * 94 / 100);
    EXPECT_LT(C, Draws / Bound * 106 / 100);
  }
}

TEST(RngTest, UniformRealInHalfOpenUnitInterval) {
  Rng R(5);
  double Sum = 0.0;
  for (int I = 0; I != 10000; ++I) {
    double V = R.uniformReal();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng R(8);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    int64_t V = R.uniformInRange(-3, 3);
    ASSERT_GE(V, -3);
    ASSERT_LE(V, 3);
    SawLo |= (V == -3);
    SawHi |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng R(11);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.bernoulli(0.0));
    EXPECT_TRUE(R.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng R(13);
  int Hits = 0;
  constexpr int Draws = 100000;
  for (int I = 0; I != Draws; ++I)
    Hits += R.bernoulli(0.18);
  EXPECT_NEAR(static_cast<double>(Hits) / Draws, 0.18, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(21);
  std::vector<int> Values;
  for (int I = 0; I != 100; ++I)
    Values.push_back(I);
  std::vector<int> Shuffled = Values;
  R.shuffle(Shuffled);
  EXPECT_NE(Shuffled, Values) << "100-element shuffle returned identity";
  std::sort(Shuffled.begin(), Shuffled.end());
  EXPECT_EQ(Shuffled, Values);
}

TEST(RngTest, SampleDistinctProperties) {
  Rng R(33);
  for (uint32_t Count : {1u, 5u, 50u, 100u}) {
    std::vector<uint32_t> Sample = R.sampleDistinct(Count, 100);
    EXPECT_EQ(Sample.size(), Count);
    std::set<uint32_t> Unique(Sample.begin(), Sample.end());
    EXPECT_EQ(Unique.size(), Count) << "sample contains duplicates";
    for (uint32_t V : Sample)
      EXPECT_LT(V, 100u);
  }
}

TEST(RngTest, SampleDistinctFullRange) {
  Rng R(34);
  std::vector<uint32_t> Sample = R.sampleDistinct(16, 16);
  std::set<uint32_t> Unique(Sample.begin(), Sample.end());
  EXPECT_EQ(Unique.size(), 16u);
}

TEST(RngTest, StateRoundTripResumesSequence) {
  Rng A(97);
  for (int I = 0; I != 57; ++I)
    A.nextU64();
  std::array<uint64_t, 4> Saved = A.state();
  std::vector<uint64_t> Expected;
  for (int I = 0; I != 100; ++I)
    Expected.push_back(A.nextU64());
  Rng B(1); // Seed is irrelevant once the state is overwritten.
  B.setState(Saved);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(B.nextU64(), Expected[static_cast<size_t>(I)]) << "draw " << I;
}

TEST(RngTest, StateRoundTripCoversAllDrawKinds) {
  // bernoulli / uniformInt / uniformReal consume state in their own ways;
  // a restored clone must agree on all of them.
  Rng A(123);
  A.uniformInt(1000);
  Rng B(1);
  B.setState(A.state());
  for (int I = 0; I != 200; ++I) {
    EXPECT_EQ(A.bernoulli(0.3), B.bernoulli(0.3));
    EXPECT_EQ(A.uniformInt(17), B.uniformInt(17));
    EXPECT_EQ(A.uniformReal(), B.uniformReal());
  }
}
