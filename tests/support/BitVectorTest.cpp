//===- tests/support/BitVectorTest.cpp - BitVector unit tests -------------===//

#include "support/BitVector.h"

#include "gtest/gtest.h"

using namespace ca2a;

TEST(BitVectorTest, StartsCleared) {
  BitVector V(100);
  EXPECT_EQ(V.size(), 100u);
  EXPECT_TRUE(V.none());
  EXPECT_FALSE(V.all());
  EXPECT_EQ(V.count(), 0u);
  for (size_t I = 0; I != 100; ++I)
    EXPECT_FALSE(V.test(I));
}

TEST(BitVectorTest, SetResetTest) {
  BitVector V(70);
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(69);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(69));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 4u);
  V.reset(63);
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
}

class BitVectorSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorSizeTest, SetAllIsAllExactly) {
  size_t Size = GetParam();
  BitVector V(Size);
  EXPECT_FALSE(Size != 0 && V.all());
  V.setAll();
  EXPECT_TRUE(V.all());
  EXPECT_EQ(V.count(), Size);
  if (Size == 0)
    return;
  V.reset(Size - 1);
  EXPECT_FALSE(V.all());
  EXPECT_EQ(V.count(), Size - 1);
}

TEST_P(BitVectorSizeTest, SettingEveryBitIndividuallyReachesAll) {
  size_t Size = GetParam();
  BitVector V(Size);
  for (size_t I = 0; I != Size; ++I) {
    EXPECT_EQ(V.all(), I == Size) << "all() true before every bit was set";
    V.set(I);
  }
  EXPECT_TRUE(V.all());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           256, 1000));

TEST(BitVectorTest, EmptyVectorIsVacuouslyAll) {
  BitVector V;
  EXPECT_TRUE(V.all());
  EXPECT_TRUE(V.none());
  EXPECT_EQ(V.count(), 0u);
}

TEST(BitVectorTest, OrWithMerges) {
  BitVector A(130), B(130);
  A.set(0);
  A.set(100);
  B.set(100);
  B.set(129);
  A.orWith(B);
  EXPECT_TRUE(A.test(0));
  EXPECT_TRUE(A.test(100));
  EXPECT_TRUE(A.test(129));
  EXPECT_EQ(A.count(), 3u);
  // B unchanged.
  EXPECT_EQ(B.count(), 2u);
}

TEST(BitVectorTest, AndWithIntersects) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(65);
  A.set(69);
  B.set(65);
  B.set(2);
  A.andWith(B);
  EXPECT_FALSE(A.test(1));
  EXPECT_TRUE(A.test(65));
  EXPECT_FALSE(A.test(69));
  EXPECT_EQ(A.count(), 1u);
}

TEST(BitVectorTest, MutualExclusiveUnionBecomesAll) {
  // The core communication-vector property: k agents with unit vectors;
  // OR-ing them all yields the solved all-ones state.
  constexpr size_t K = 16;
  std::vector<BitVector> Vectors(K, BitVector(K));
  for (size_t I = 0; I != K; ++I)
    Vectors[I].set(I);
  BitVector Union(K);
  for (const BitVector &V : Vectors) {
    EXPECT_EQ(V.count(), 1u);
    Union.orWith(V);
  }
  EXPECT_TRUE(Union.all());
}

TEST(BitVectorTest, ClearZeroes) {
  BitVector V(90);
  V.setAll();
  V.clear();
  EXPECT_TRUE(V.none());
}

TEST(BitVectorTest, ToStringBitZeroFirst) {
  BitVector V(5);
  V.set(0);
  V.set(3);
  EXPECT_EQ(V.toString(), "10010");
}

TEST(BitVectorTest, Equality) {
  BitVector A(40), B(40), C(41);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C) << "different sizes must not compare equal";
  A.set(7);
  EXPECT_NE(A, B);
  B.set(7);
  EXPECT_EQ(A, B);
}

TEST(BitVectorTest, ContainsIsSubsetTest) {
  BitVector Full(130), Sub(130);
  for (size_t I = 0; I < 130; I += 3)
    Full.set(I);
  for (size_t I = 0; I < 130; I += 6)
    Sub.set(I);
  EXPECT_TRUE(Full.contains(Sub));
  EXPECT_FALSE(Sub.contains(Full));
  // Every vector contains itself and the empty vector.
  EXPECT_TRUE(Full.contains(Full));
  EXPECT_TRUE(Full.contains(BitVector(130)));
  EXPECT_TRUE(BitVector(130).contains(BitVector(130)));
}

TEST(BitVectorTest, ContainsCatchesHighWordBits) {
  // A stray bit past the first 64-bit word must break containment.
  BitVector A(100), B(100);
  A.setAll();
  A.reset(99);
  B.set(99);
  EXPECT_FALSE(A.contains(B));
  A.set(99);
  EXPECT_TRUE(A.contains(B));
}
