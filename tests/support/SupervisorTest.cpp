//===- tests/support/SupervisorTest.cpp - Retry/watchdog unit tests -------===//

#include "support/Supervisor.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace ca2a;

TEST(BackoffTest, DoublesFromBaseAndCaps) {
  RetryPolicy Policy;
  Policy.BaseDelayMicros = 100;
  Policy.MaxDelayMicros = 1000;
  EXPECT_EQ(backoffDelayMicros(Policy, 0), 100);
  EXPECT_EQ(backoffDelayMicros(Policy, 1), 200);
  EXPECT_EQ(backoffDelayMicros(Policy, 2), 400);
  EXPECT_EQ(backoffDelayMicros(Policy, 3), 800);
  EXPECT_EQ(backoffDelayMicros(Policy, 4), 1000); // Capped.
  EXPECT_EQ(backoffDelayMicros(Policy, 40), 1000);
  // A doubling count that would overflow 64 bits still just saturates.
  EXPECT_EQ(backoffDelayMicros(Policy, 200), 1000);
}

TEST(RunWithRetryTest, FirstAttemptSuccessCallsBodyOnce) {
  RetryPolicy Policy;
  int Calls = 0;
  int Result = runWithRetry(Policy, [&] {
    ++Calls;
    return 42;
  });
  EXPECT_EQ(Result, 42);
  EXPECT_EQ(Calls, 1);
}

TEST(RunWithRetryTest, TransientFailureIsRetriedUntilSuccess) {
  RetryPolicy Policy;
  Policy.MaxAttempts = 5;
  Policy.BaseDelayMicros = 1; // Keep the test fast.
  int Calls = 0;
  std::vector<int> RetryIndices;
  int Result = runWithRetry(
      Policy,
      [&] {
        if (++Calls < 3)
          throw std::runtime_error("transient");
        return Calls;
      },
      [&](int Retry) { RetryIndices.push_back(Retry); });
  EXPECT_EQ(Result, 3);
  EXPECT_EQ(Calls, 3);
  ASSERT_EQ(RetryIndices.size(), 2u);
  EXPECT_EQ(RetryIndices[0], 0);
  EXPECT_EQ(RetryIndices[1], 1);
}

TEST(RunWithRetryTest, ExhaustionRethrowsTheFinalException) {
  RetryPolicy Policy;
  Policy.MaxAttempts = 3;
  Policy.BaseDelayMicros = 1;
  int Calls = 0;
  try {
    runWithRetry(Policy, [&]() -> int {
      throw std::runtime_error("attempt " + std::to_string(++Calls));
    });
    FAIL() << "exhaustion must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "attempt 3");
  }
  EXPECT_EQ(Calls, 3);
}

TEST(RunWithRetryTest, SingleAttemptPolicyNeverRetries) {
  RetryPolicy Policy;
  Policy.MaxAttempts = 1;
  int Calls = 0, Retries = 0;
  EXPECT_THROW(runWithRetry(
                   Policy,
                   [&]() -> int {
                     ++Calls;
                     throw std::runtime_error("no second chance");
                   },
                   [&](int) { ++Retries; }),
               std::runtime_error);
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(Retries, 0);
}

TEST(WatchdogTest, ZeroDeadlineIsInert) {
  std::atomic<int> StallCalls{0};
  Watchdog Dog(0.0, [&](double) { ++StallCalls; });
  Dog.heartbeat();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(Dog.stalls(), 0u);
  EXPECT_EQ(StallCalls.load(), 0);
}

TEST(WatchdogTest, SilenceRaisesStallsAndReportsGrowingSilentTime) {
  std::atomic<int> StallCalls{0};
  double LastSilent = 0.0;
  std::mutex SilentMutex;
  {
    Watchdog Dog(0.02, [&](double SilentSeconds) {
      std::lock_guard<std::mutex> Lock(SilentMutex);
      ++StallCalls;
      EXPECT_GE(SilentSeconds, LastSilent);
      LastSilent = SilentSeconds;
    });
    // No heartbeats at all: several deadline intervals elapse in silence.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_GE(Dog.stalls(), 2u);
  }
  EXPECT_GE(StallCalls.load(), 2);
  std::lock_guard<std::mutex> Lock(SilentMutex);
  EXPECT_GT(LastSilent, 0.0);
}

TEST(WatchdogTest, HeartbeatsSuppressStallDetection) {
  Watchdog Dog(0.2, [](double) {});
  // Beat far more often than the 200 ms deadline for ~100 ms: the monitor
  // must never see a fully silent interval.
  for (int I = 0; I != 10; ++I) {
    Dog.heartbeat();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(Dog.stalls(), 0u);
}

TEST(WatchdogTest, DestructionJoinsPromptlyEvenMidInterval) {
  auto Start = std::chrono::steady_clock::now();
  {
    Watchdog Dog(30.0, [](double) {}); // Long deadline, destroyed early.
    Dog.heartbeat();
  }
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  // Destruction must interrupt the 30 s wait, not ride it out.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(Elapsed).count(),
            5);
}
