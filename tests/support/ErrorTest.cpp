//===- tests/support/ErrorTest.cpp - Expected/Error unit tests ------------===//

#include "support/Error.h"

#include "gtest/gtest.h"

#include <memory>

using namespace ca2a;

static Expected<int> parsePositive(int Value) {
  if (Value <= 0)
    return makeError("value must be positive");
  return Value;
}

TEST(ExpectedTest, SuccessPath) {
  Expected<int> E = parsePositive(5);
  ASSERT_TRUE(E);
  EXPECT_EQ(*E, 5);
}

TEST(ExpectedTest, ErrorPath) {
  Expected<int> E = parsePositive(-1);
  ASSERT_FALSE(E);
  EXPECT_EQ(E.error().message(), "value must be positive");
}

TEST(ExpectedTest, ArrowOperator) {
  struct Pair {
    int A, B;
  };
  Expected<Pair> E = Pair{1, 2};
  ASSERT_TRUE(E);
  EXPECT_EQ(E->A, 1);
  EXPECT_EQ(E->B, 2);
}

TEST(ExpectedTest, TakeValueMoves) {
  Expected<std::unique_ptr<int>> E = std::make_unique<int>(9);
  ASSERT_TRUE(E);
  std::unique_ptr<int> P = E.takeValue();
  ASSERT_TRUE(P);
  EXPECT_EQ(*P, 9);
}

TEST(ExpectedTest, ConstAccess) {
  const Expected<int> E = 3;
  ASSERT_TRUE(E);
  EXPECT_EQ(*E, 3);
}
