//===- tests/support/StringUtilsTest.cpp - StringUtils unit tests ---------===//

#include "support/StringUtils.h"

#include "gtest/gtest.h"

using namespace ca2a;

TEST(SplitStringTest, KeepsEmptyPieces) {
  EXPECT_EQ(splitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(splitString(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(splitString("xyz", ','), (std::vector<std::string>{"xyz"}));
}

TEST(SplitWhitespaceTest, DropsEmptyPieces) {
  EXPECT_EQ(splitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(splitWhitespace("   \t\n").empty());
  EXPECT_TRUE(splitWhitespace("").empty());
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("\t\n x \r "), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(JoinStringsTest, Joins) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(ParseIntTest, ValidValues) {
  EXPECT_EQ(*parseInt("42"), 42);
  EXPECT_EQ(*parseInt("-17"), -17);
  EXPECT_EQ(*parseInt("  5  "), 5);
  EXPECT_EQ(*parseInt("0"), 0);
}

TEST(ParseIntTest, Rejections) {
  EXPECT_FALSE(parseInt(""));
  EXPECT_FALSE(parseInt("abc"));
  EXPECT_FALSE(parseInt("12abc"));
  EXPECT_FALSE(parseInt("1.5"));
  EXPECT_FALSE(parseInt("999999999999999999999999"));
}

TEST(ParseUnsignedTest, ValidAndInvalid) {
  EXPECT_EQ(*parseUnsigned("1003"), 1003u);
  EXPECT_FALSE(parseUnsigned("-1"));
  EXPECT_FALSE(parseUnsigned("x"));
  EXPECT_FALSE(parseUnsigned(""));
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*parseDouble("0.18"), 0.18);
  EXPECT_DOUBLE_EQ(*parseDouble("-2.5e3"), -2500.0);
  EXPECT_DOUBLE_EQ(*parseDouble("7"), 7.0);
  EXPECT_FALSE(parseDouble("1.2.3"));
  EXPECT_FALSE(parseDouble(""));
  EXPECT_FALSE(parseDouble("nanx"));
}

TEST(FormatFixedTest, PaperTableStyle) {
  EXPECT_EQ(formatFixed(78.3, 2), "78.30");
  EXPECT_EQ(formatFixed(0.706, 3), "0.706");
  EXPECT_EQ(formatFixed(9.0, 2), "9.00");
  EXPECT_EQ(formatFixed(-1.005, 1), "-1.0");
}

TEST(PadTest, LeftAndRight) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

TEST(FormatStringTest, PrintfStyle) {
  EXPECT_EQ(formatString("k=%d t=%.2f %s", 16, 41.25, "T"), "k=16 t=41.25 T");
  EXPECT_EQ(formatString("empty"), "empty");
  // Long output must not truncate.
  std::string Long = formatString("%0100d", 7);
  EXPECT_EQ(Long.size(), 100u);
}
