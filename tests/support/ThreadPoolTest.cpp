//===- tests/support/ThreadPoolTest.cpp - ThreadPool unit tests -----------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace ca2a;

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1);
  Pool.submit([&Counter] { ++Counter; });
  Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 3);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool Pool(2);
  Pool.wait(); // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorJoinsWithPendingWork) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Counter] { ++Counter; });
    // No wait: destructor must drain or at least join cleanly.
  }
  // All threads joined; no further increments can happen.
  int Snapshot = Counter.load();
  EXPECT_EQ(Snapshot, Counter.load());
}

TEST(ThreadPoolTest, TaskExceptionRethrownFromWait) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, FirstExceptionWinsAndOthersAreDropped) {
  ThreadPool Pool(1); // One worker: deterministic task order.
  Pool.submit([] { throw std::runtime_error("first"); });
  Pool.submit([] { throw std::logic_error("second"); });
  try {
    Pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
  // The second exception was dropped; the pool is clean again.
  Pool.wait();
}

TEST(ThreadPoolTest, PoolIsUsableAfterException) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait(); // Must not rethrow again.
  EXPECT_EQ(Counter.load(), 10);
}

TEST(ThreadPoolTest, ExceptionDoesNotStopOtherTasks) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 20; ++I)
    Pool.submit([&Counter, I] {
      if (I == 3)
        throw std::runtime_error("one bad task");
      ++Counter;
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Counter.load(), 19);
}

TEST(ThreadPoolTest, DestructorSwallowsPendingException) {
  {
    ThreadPool Pool(2);
    Pool.submit([] { throw std::runtime_error("never observed"); });
    // No wait(): the destructor must join cleanly, not terminate.
  }
  SUCCEED();
}

// Satellite stress test: 1000-task churn interleaving waves of good tasks
// with throwing ones. Exercises the wait() contract under load: every
// non-throwing task runs, each wait() rethrows at most one exception (the
// first of its batch), and the pool survives to serve the next wave.
TEST(ThreadPoolTest, ThousandTaskChurnWithExceptions) {
  ThreadPool Pool(4);
  std::atomic<int> Completed{0};
  int Submitted = 0, ThrowersSubmitted = 0, WavesThatThrew = 0;
  for (int Wave = 0; Wave != 10; ++Wave) {
    for (int I = 0; I != 100; ++I) {
      bool Throws = I % 10 == 7; // 10 throwing tasks per wave.
      Pool.submit([&Completed, Throws, Wave, I] {
        if (Throws)
          throw std::runtime_error("wave " + std::to_string(Wave) +
                                   " task " + std::to_string(I));
        ++Completed;
      });
      ++Submitted;
      ThrowersSubmitted += Throws;
    }
    try {
      Pool.wait();
    } catch (const std::runtime_error &) {
      ++WavesThatThrew; // Exactly one rethrow per tainted wave.
    }
  }
  EXPECT_EQ(Submitted, 1000);
  EXPECT_EQ(Completed.load(), Submitted - ThrowersSubmitted);
  EXPECT_EQ(WavesThatThrew, 10);
  // A fully clean wave after the churn: wait() must not re-report old
  // exceptions, and all workers must still be alive.
  std::atomic<int> Clean{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Clean] { ++Clean; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Clean.load(), 100);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  for (size_t Workers : {0u, 1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> Hits(257);
    parallelFor(257, Workers, [&Hits](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I != Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << ", workers " << Workers;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool Called = false;
  parallelFor(0, 4, [&Called](size_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(ParallelForTest, MatchesSequentialSum) {
  std::vector<long long> Values(1000);
  std::iota(Values.begin(), Values.end(), 1);
  std::atomic<long long> Sum{0};
  parallelFor(Values.size(), 4,
              [&](size_t I) { Sum += Values[I] * Values[I]; });
  long long Expected = 0;
  for (long long V : Values)
    Expected += V * V;
  EXPECT_EQ(Sum.load(), Expected);
}

TEST(ParallelForDynamicTest, CoversEveryIndexOnce) {
  for (size_t Workers : {0u, 1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> Hits(257);
    parallelForDynamic(257, Workers,
                       [&Hits](size_t, size_t I) { ++Hits[I]; });
    for (size_t I = 0; I != Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << ", workers " << Workers;
  }
}

TEST(ParallelForDynamicTest, WorkerIdsAreInRange) {
  constexpr size_t Workers = 4;
  std::vector<size_t> WorkerOf(300, ~size_t(0));
  parallelForDynamic(WorkerOf.size(), Workers,
                     [&](size_t Worker, size_t I) { WorkerOf[I] = Worker; });
  for (size_t I = 0; I != WorkerOf.size(); ++I)
    EXPECT_LT(WorkerOf[I], Workers) << "index " << I;
}

TEST(ParallelForDynamicTest, InlineRunsInOrderWithWorkerZero) {
  std::vector<size_t> Order;
  parallelForDynamic(10, 1, [&Order](size_t Worker, size_t I) {
    EXPECT_EQ(Worker, 0u);
    Order.push_back(I);
  });
  for (size_t I = 0; I != Order.size(); ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ParallelForDynamicTest, BalancesSkewedWork) {
  // Index 0 is a straggler that busy-spins until every other index is
  // done. Fixed chunking would strand ~1/4 of the indices behind it in
  // the straggler's chunk; work stealing must let the other workers
  // drain the rest of the range meanwhile, so this terminates.
  constexpr size_t Count = 64;
  std::atomic<size_t> DoneElsewhere{0};
  parallelForDynamic(Count, 4, [&](size_t, size_t I) {
    if (I == 0) {
      while (DoneElsewhere.load() < Count - 1)
        std::this_thread::yield();
      return;
    }
    ++DoneElsewhere;
  });
  EXPECT_EQ(DoneElsewhere.load(), Count - 1);
}

TEST(ParallelForDynamicTest, ZeroCountIsNoop) {
  bool Called = false;
  parallelForDynamic(0, 4, [&Called](size_t, size_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(ParallelForDynamicTest, ExceptionRethrownAndOthersDrain) {
  constexpr size_t Count = 200;
  std::vector<std::atomic<int>> Hits(Count);
  EXPECT_THROW(parallelForDynamic(Count, 4,
                                  [&](size_t, size_t I) {
                                    if (I == 5)
                                      throw std::runtime_error("index 5");
                                    ++Hits[I];
                                  }),
               std::runtime_error);
  // The throwing worker stops, but the other three drain the remainder:
  // no index other than the thrower may be left unvisited.
  for (size_t I = 0; I != Count; ++I)
    if (I != 5)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}
