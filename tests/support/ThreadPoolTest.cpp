//===- tests/support/ThreadPoolTest.cpp - ThreadPool unit tests -----------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace ca2a;

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1);
  Pool.submit([&Counter] { ++Counter; });
  Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 3);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool Pool(2);
  Pool.wait(); // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorJoinsWithPendingWork) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Counter] { ++Counter; });
    // No wait: destructor must drain or at least join cleanly.
  }
  // All threads joined; no further increments can happen.
  int Snapshot = Counter.load();
  EXPECT_EQ(Snapshot, Counter.load());
}

TEST(ThreadPoolTest, TaskExceptionRethrownFromWait) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, FirstExceptionWinsAndOthersAreDropped) {
  ThreadPool Pool(1); // One worker: deterministic task order.
  Pool.submit([] { throw std::runtime_error("first"); });
  Pool.submit([] { throw std::logic_error("second"); });
  try {
    Pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
  // The second exception was dropped; the pool is clean again.
  Pool.wait();
}

TEST(ThreadPoolTest, PoolIsUsableAfterException) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait(); // Must not rethrow again.
  EXPECT_EQ(Counter.load(), 10);
}

TEST(ThreadPoolTest, ExceptionDoesNotStopOtherTasks) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 20; ++I)
    Pool.submit([&Counter, I] {
      if (I == 3)
        throw std::runtime_error("one bad task");
      ++Counter;
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Counter.load(), 19);
}

TEST(ThreadPoolTest, DestructorSwallowsPendingException) {
  {
    ThreadPool Pool(2);
    Pool.submit([] { throw std::runtime_error("never observed"); });
    // No wait(): the destructor must join cleanly, not terminate.
  }
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  for (size_t Workers : {0u, 1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> Hits(257);
    parallelFor(257, Workers, [&Hits](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I != Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << ", workers " << Workers;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool Called = false;
  parallelFor(0, 4, [&Called](size_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(ParallelForTest, MatchesSequentialSum) {
  std::vector<long long> Values(1000);
  std::iota(Values.begin(), Values.end(), 1);
  std::atomic<long long> Sum{0};
  parallelFor(Values.size(), 4,
              [&](size_t I) { Sum += Values[I] * Values[I]; });
  long long Expected = 0;
  for (long long V : Values)
    Expected += V * V;
  EXPECT_EQ(Sum.load(), Expected);
}
