//===- tests/support/ChaosTest.cpp - Chaos injection unit tests -----------===//

#include "support/Chaos.h"

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <string>

using namespace ca2a;

TEST(ChaosSpecTest, EmptySpecIsInert) {
  auto Schedule = parseChaosSpec("");
  ASSERT_TRUE(Schedule);
  EXPECT_FALSE(Schedule->any());
}

TEST(ChaosSpecTest, ParsesSeedAndAllSitesAndEvents) {
  auto Schedule = parseChaosSpec(
      "seed=7,pool.task.fail=0.25,engine.replica.fail=0.5,"
      "sched.batch.fail=1,ckpt.write.corrupt=0.125,"
      "ckpt.read.fail=0.75,pool.task.delay=0.5:2000");
  ASSERT_TRUE(Schedule) << Schedule.error().message();
  EXPECT_EQ(Schedule->Seed, 7u);
  EXPECT_DOUBLE_EQ(Schedule->site(ChaosSite::PoolTask).FailProbability, 0.25);
  EXPECT_DOUBLE_EQ(Schedule->site(ChaosSite::PoolTask).DelayProbability, 0.5);
  EXPECT_EQ(Schedule->site(ChaosSite::PoolTask).DelayMicros, 2000);
  EXPECT_DOUBLE_EQ(
      Schedule->site(ChaosSite::EngineReplica).FailProbability, 0.5);
  EXPECT_DOUBLE_EQ(
      Schedule->site(ChaosSite::SchedulerBatch).FailProbability, 1.0);
  EXPECT_DOUBLE_EQ(
      Schedule->site(ChaosSite::CheckpointWrite).CorruptProbability, 0.125);
  EXPECT_DOUBLE_EQ(
      Schedule->site(ChaosSite::CheckpointRead).FailProbability, 0.75);
  EXPECT_TRUE(Schedule->any());
}

TEST(ChaosSpecTest, SemicolonsWorkAsSeparators) {
  auto Schedule = parseChaosSpec("seed=3;engine.replica.fail=0.1");
  ASSERT_TRUE(Schedule);
  EXPECT_EQ(Schedule->Seed, 3u);
}

TEST(ChaosSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(parseChaosSpec("nonsense"));
  EXPECT_FALSE(parseChaosSpec("bogus.site.fail=0.5"));
  EXPECT_FALSE(parseChaosSpec("pool.task.explode=0.5"));
  EXPECT_FALSE(parseChaosSpec("pool.task.fail=1.5"));  // p > 1
  EXPECT_FALSE(parseChaosSpec("pool.task.fail=-0.1")); // p < 0
  EXPECT_FALSE(parseChaosSpec("pool.task.fail=abc"));
  EXPECT_FALSE(parseChaosSpec("pool.task.delay=0.5")); // missing micros
  EXPECT_FALSE(parseChaosSpec("seed=notanumber"));
}

TEST(ChaosSpecTest, DescribeMentionsActiveSites) {
  auto Schedule = parseChaosSpec("engine.replica.fail=0.5");
  ASSERT_TRUE(Schedule);
  std::string Text = describeChaosSchedule(*Schedule);
  EXPECT_NE(Text.find("engine.replica"), std::string::npos) << Text;
  ChaosSchedule Inert;
  EXPECT_NE(describeChaosSchedule(Inert).find("off"), std::string::npos);
}

TEST(ChaosCorruptTest, FlipsExactlyOneByte) {
  std::string Original = "the quick brown fox jumps over the lazy dog";
  for (uint64_t Draw : {1ull, 42ull, 0xdeadbeefull, ~0ull}) {
    std::string Corrupted = Original;
    chaosCorruptPayload(Corrupted, Draw);
    ASSERT_EQ(Corrupted.size(), Original.size());
    int Differences = 0;
    for (size_t I = 0; I != Original.size(); ++I)
      Differences += Corrupted[I] != Original[I];
    EXPECT_EQ(Differences, 1) << "draw " << Draw;
  }
}

TEST(ChaosCorruptTest, EmptyPayloadIsLeftAlone) {
  std::string Empty;
  chaosCorruptPayload(Empty, 42);
  EXPECT_TRUE(Empty.empty());
}

#ifdef CA2A_CHAOS_ENABLED

TEST(ChaosInjectTest, NoScheduleMeansNoInjection) {
  EXPECT_FALSE(chaosActive());
  EXPECT_NO_THROW(chaosPoint(ChaosSite::PoolTask));
  EXPECT_EQ(chaosCorruptDraw(ChaosSite::CheckpointWrite), 0u);
}

TEST(ChaosInjectTest, CertainFailureThrowsChaosErrorWithSite) {
  ChaosSchedule Schedule;
  Schedule.site(ChaosSite::PoolTask).FailProbability = 1.0;
  ScopedChaos Chaos(Schedule);
  EXPECT_TRUE(chaosActive());
  try {
    chaosPoint(ChaosSite::PoolTask);
    FAIL() << "certain failure did not throw";
  } catch (const ChaosError &E) {
    EXPECT_EQ(E.site(), ChaosSite::PoolTask);
  }
  // Other sites are untouched by this schedule.
  EXPECT_NO_THROW(chaosPoint(ChaosSite::EngineReplica));
  EXPECT_GE(chaosStats().Failures, 1u);
}

TEST(ChaosInjectTest, ScopedChaosUninstallsOnExit) {
  {
    ChaosSchedule Schedule;
    Schedule.site(ChaosSite::PoolTask).FailProbability = 1.0;
    ScopedChaos Chaos(Schedule);
    EXPECT_TRUE(chaosActive());
  }
  EXPECT_FALSE(chaosActive());
  EXPECT_NO_THROW(chaosPoint(ChaosSite::PoolTask));
}

TEST(ChaosInjectTest, DrawSequenceIsDeterministicPerSeed) {
  // Same seed + probability => the same accept/reject sequence of 200
  // single-threaded visits; a different seed gives a different sequence.
  auto FailurePattern = [](uint64_t Seed) {
    ChaosSchedule Schedule;
    Schedule.Seed = Seed;
    Schedule.site(ChaosSite::SchedulerBatch).FailProbability = 0.3;
    ScopedChaos Chaos(Schedule);
    std::string Pattern;
    for (int I = 0; I != 200; ++I) {
      try {
        chaosPoint(ChaosSite::SchedulerBatch);
        Pattern += '.';
      } catch (const ChaosError &) {
        Pattern += 'X';
      }
    }
    return Pattern;
  };
  std::string A = FailurePattern(11), B = FailurePattern(11);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, FailurePattern(12));
  EXPECT_NE(A.find('X'), std::string::npos);
  EXPECT_NE(A.find('.'), std::string::npos);
}

TEST(ChaosInjectTest, CorruptDrawHonoursProbabilityExtremes) {
  ChaosSchedule Schedule;
  Schedule.site(ChaosSite::CheckpointWrite).CorruptProbability = 1.0;
  {
    ScopedChaos Chaos(Schedule);
    EXPECT_NE(chaosCorruptDraw(ChaosSite::CheckpointWrite), 0u);
    EXPECT_EQ(chaosCorruptDraw(ChaosSite::CheckpointRead), 0u);
    EXPECT_GE(chaosStats().Corruptions, 1u);
  }
  Schedule.site(ChaosSite::CheckpointWrite).CorruptProbability = 0.0;
  ScopedChaos Chaos(Schedule);
  EXPECT_EQ(chaosCorruptDraw(ChaosSite::CheckpointWrite), 0u);
}

// The pool.task site must land inside the pool's existing exception
// capture net: injected failures surface through wait() exactly like a
// real throwing task, and the pool stays fully usable afterwards.
TEST(ChaosInjectTest, ThreadPoolSurvivesInjectedTaskFailures) {
  ChaosSchedule Schedule;
  Schedule.site(ChaosSite::PoolTask).FailProbability = 0.5;
  uint64_t Failures = 0;
  {
    ScopedChaos Chaos(Schedule);
    ThreadPool Pool(4);
    std::atomic<int> Completed{0};
    for (int Wave = 0; Wave != 20; ++Wave) {
      for (int I = 0; I != 50; ++I)
        Pool.submit([&Completed] { ++Completed; });
      try {
        Pool.wait();
      } catch (const ChaosError &E) {
        EXPECT_EQ(E.site(), ChaosSite::PoolTask);
      }
    }
    Failures = chaosStats().Failures;
    // Half the task visits fail, so a healthy slice of both outcomes.
    EXPECT_GT(Failures, 100u);
    EXPECT_GT(Completed.load(), 100);
  }
  // Chaos gone: the same pool machinery runs a clean wave.
  ThreadPool Pool(4);
  std::atomic<int> Clean{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Clean] { ++Clean; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Clean.load(), 100);
}

#endif // CA2A_CHAOS_ENABLED
