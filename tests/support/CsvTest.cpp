//===- tests/support/CsvTest.cpp - CSV / TextTable unit tests -------------===//

#include "support/Csv.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace ca2a;

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream Out;
  CsvWriter W(Out);
  W.writeRow({"a", "b", "c"});
  EXPECT_EQ(Out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escapeField("plain"), "plain");
  EXPECT_EQ(CsvWriter::escapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, MultipleRows) {
  std::ostringstream Out;
  CsvWriter W(Out);
  W.writeRow({"n_agents", "mean"});
  W.writeRow({"16", "41.25"});
  W.writeRow({"32", "28.06"});
  EXPECT_EQ(Out.str(), "n_agents,mean\n16,41.25\n32,28.06\n");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"N_agents", "2", "256"});
  T.addRow({"T-grid", "58.43", "9.00"});
  T.addRow({"S-grid", "82.78", "15.00"});
  std::string Rendered = T.render();
  // Header row, separator, two data rows.
  EXPECT_EQ(std::count(Rendered.begin(), Rendered.end(), '\n'), 4);
  // First column left-aligned, numbers right-aligned.
  EXPECT_NE(Rendered.find("T-grid   | 58.43 |  9.00"), std::string::npos)
      << Rendered;
  EXPECT_NE(Rendered.find("S-grid   | 82.78 | 15.00"), std::string::npos)
      << Rendered;
}

TEST(TextTableTest, EmptyRenders) {
  TextTable T;
  EXPECT_EQ(T.render(), "");
}

TEST(TextTableTest, HeaderlessTable) {
  TextTable T;
  T.addRow({"a", "bb"});
  std::string Rendered = T.render();
  EXPECT_EQ(Rendered, "a | bb\n");
}
