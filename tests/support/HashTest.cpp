//===- tests/support/HashTest.cpp - FNV-1a hashing unit tests -------------===//

#include "support/Hash.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace ca2a;

// Published FNV-1a 64-bit test vectors (Fowler/Noll/Vo reference set).
TEST(Fnv1aTest, MatchesPublishedVectors) {
  EXPECT_EQ(fnv1a(std::string("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a(std::string("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a(std::string("foobar")), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, EmptyInputIsOffsetBasis) {
  EXPECT_EQ(fnv1a(nullptr, 0), Fnv1aOffsetBasis);
  Fnv1aHasher H;
  EXPECT_EQ(H.value(), Fnv1aOffsetBasis);
}

TEST(Fnv1aTest, IncrementalMatchesOneShot) {
  std::string Text = "the quick brown fox jumps over the lazy dog";
  uint64_t OneShot = fnv1a(Text);
  // Feed the same bytes in arbitrary-sized pieces.
  for (size_t Split = 1; Split < Text.size(); Split += 7) {
    Fnv1aHasher H;
    H.mixBytes(Text.data(), Split);
    H.mixBytes(Text.data() + Split, Text.size() - Split);
    EXPECT_EQ(H.value(), OneShot) << "split at " << Split;
  }
}

TEST(Fnv1aTest, MixWordEqualsBytewiseOfSingleBytes) {
  // mixWord is one xor-multiply round; for values < 256 that is exactly
  // the byte-wise algorithm's round, so hashing a byte string through
  // mixWord matches fnv1a.
  std::string Text = "ca2a";
  Fnv1aHasher H;
  for (char C : Text)
    H.mixWord(static_cast<unsigned char>(C));
  EXPECT_EQ(H.value(), fnv1a(Text));
}

TEST(Fnv1aTest, WordHashingIsOrderSensitive) {
  Fnv1aHasher A, B;
  A.mixWord(1);
  A.mixWord(2);
  B.mixWord(2);
  B.mixWord(1);
  EXPECT_NE(A.value(), B.value());
}

TEST(Fnv1aTest, DistinctBuffersGetDistinctHashes) {
  // Not a collision-resistance claim — just a smoke check that the
  // implementation actually mixes every position.
  std::vector<std::string> Inputs = {"", "a", "b", "ab", "ba", "aa",
                                     "abc", "acb", "abd", "abcd"};
  for (size_t I = 0; I != Inputs.size(); ++I)
    for (size_t J = I + 1; J != Inputs.size(); ++J)
      EXPECT_NE(fnv1a(Inputs[I]), fnv1a(Inputs[J]))
          << "'" << Inputs[I] << "' vs '" << Inputs[J] << "'";
}
