//===- tests/support/StatisticsTest.cpp - Statistics unit tests -----------===//

#include "support/Statistics.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace ca2a;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats S;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(V);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats S;
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_EQ(S.min(), 3.5);
  EXPECT_EQ(S.max(), 3.5);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats Whole, Left, Right;
  for (int I = 0; I != 100; ++I) {
    double V = std::sin(I) * 10 + I * 0.25;
    Whole.add(V);
    (I < 37 ? Left : Right).add(V);
  }
  Left.merge(Right);
  EXPECT_EQ(Left.count(), Whole.count());
  EXPECT_NEAR(Left.mean(), Whole.mean(), 1e-10);
  EXPECT_NEAR(Left.variance(), Whole.variance(), 1e-10);
  EXPECT_EQ(Left.min(), Whole.min());
  EXPECT_EQ(Left.max(), Whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats A, Empty;
  A.add(1.0);
  A.add(2.0);
  RunningStats B = A;
  B.merge(Empty);
  EXPECT_EQ(B.count(), 2u);
  EXPECT_DOUBLE_EQ(B.mean(), 1.5);
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 2u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 1.5);
}

TEST(QuantileTest, Interpolation) {
  std::vector<double> Sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sortedQuantile(Sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sortedQuantile(Sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(sortedQuantile(Sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(sortedQuantile(Sorted, 0.25), 1.75);
}

TEST(QuantileTest, SingleElement) {
  std::vector<double> Sorted = {7.0};
  EXPECT_DOUBLE_EQ(sortedQuantile(Sorted, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(sortedQuantile(Sorted, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(sortedQuantile(Sorted, 1.0), 7.0);
}

TEST(SummaryTest, OfVector) {
  Summary S = Summary::of({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(S.Count, 5u);
  EXPECT_DOUBLE_EQ(S.Mean, 3.0);
  EXPECT_DOUBLE_EQ(S.Median, 3.0);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 5.0);
  EXPECT_DOUBLE_EQ(S.Q25, 2.0);
  EXPECT_DOUBLE_EQ(S.Q75, 4.0);
  EXPECT_NEAR(S.Stddev, std::sqrt(10.0 / 4.0), 1e-12);
}

TEST(SummaryTest, Empty) {
  Summary S = Summary::of({});
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Mean, 0.0);
}
