//===- tests/support/CommandLineTest.cpp - CommandLine unit tests ---------===//

#include "support/CommandLine.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {
struct Parsed {
  int64_t Size = 16;
  double Prob = 0.18;
  std::string Grid = "T";
  bool Verbose = false;
  bool Colors = true;
};

Expected<bool> parseArgs(Parsed &P, std::vector<const char *> Args) {
  CommandLine CL("test", "test program");
  CL.addInt("size", "field side", &P.Size);
  CL.addDouble("prob", "mutation probability", &P.Prob);
  CL.addString("grid", "S or T", &P.Grid);
  CL.addBool("verbose", "chatty output", &P.Verbose);
  CL.addBool("colors", "enable colours", &P.Colors);
  Args.insert(Args.begin(), "prog");
  return CL.parse(static_cast<int>(Args.size()), Args.data());
}
} // namespace

TEST(CommandLineTest, DefaultsSurvive) {
  Parsed P;
  ASSERT_TRUE(parseArgs(P, {}));
  EXPECT_EQ(P.Size, 16);
  EXPECT_DOUBLE_EQ(P.Prob, 0.18);
  EXPECT_EQ(P.Grid, "T");
  EXPECT_FALSE(P.Verbose);
  EXPECT_TRUE(P.Colors);
}

TEST(CommandLineTest, EqualsSyntax) {
  Parsed P;
  ASSERT_TRUE(parseArgs(P, {"--size=33", "--prob=0.5", "--grid=S"}));
  EXPECT_EQ(P.Size, 33);
  EXPECT_DOUBLE_EQ(P.Prob, 0.5);
  EXPECT_EQ(P.Grid, "S");
}

TEST(CommandLineTest, SpaceSyntax) {
  Parsed P;
  ASSERT_TRUE(parseArgs(P, {"--size", "8", "--grid", "square"}));
  EXPECT_EQ(P.Size, 8);
  EXPECT_EQ(P.Grid, "square");
}

TEST(CommandLineTest, BoolForms) {
  Parsed P;
  ASSERT_TRUE(parseArgs(P, {"--verbose", "--no-colors"}));
  EXPECT_TRUE(P.Verbose);
  EXPECT_FALSE(P.Colors);

  Parsed Q;
  ASSERT_TRUE(parseArgs(Q, {"--verbose=false", "--colors=true"}));
  EXPECT_FALSE(Q.Verbose);
  EXPECT_TRUE(Q.Colors);
}

TEST(CommandLineTest, UnknownFlagFails) {
  Parsed P;
  auto Result = parseArgs(P, {"--bogus=1"});
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.error().message().find("bogus"), std::string::npos);
}

TEST(CommandLineTest, MalformedValueFails) {
  Parsed P;
  EXPECT_FALSE(parseArgs(P, {"--size=abc"}));
  EXPECT_FALSE(parseArgs(P, {"--prob=x"}));
  EXPECT_FALSE(parseArgs(P, {"--verbose=maybe"}));
}

TEST(CommandLineTest, MissingValueFails) {
  Parsed P;
  EXPECT_FALSE(parseArgs(P, {"--size"}));
}

TEST(CommandLineTest, PositionalArguments) {
  CommandLine CL("test", "test");
  const char *Args[] = {"prog", "one", "two"};
  ASSERT_TRUE(CL.parse(3, Args));
  EXPECT_EQ(CL.positionalArgs(), (std::vector<std::string>{"one", "two"}));
}

TEST(CommandLineTest, HelpRequested) {
  Parsed P;
  CommandLine CL("test", "test");
  int64_t Dummy = 0;
  CL.addInt("size", "field side", &Dummy);
  const char *Args[] = {"prog", "--help"};
  ASSERT_TRUE(CL.parse(2, Args));
  EXPECT_TRUE(CL.helpRequested());
  std::string Usage = CL.usage();
  EXPECT_NE(Usage.find("--size"), std::string::npos);
  EXPECT_NE(Usage.find("default: 0"), std::string::npos);
}

namespace {
/// Mirrors the evolve/pipeline --workers contract: at least one thread,
/// bounded above so a typo cannot spawn a million workers.
Expected<bool> parseWorkers(int64_t &Workers,
                            std::vector<const char *> Args) {
  CommandLine CL("test", "test");
  CL.addInt("workers", "worker threads", &Workers, 1, 4096);
  Args.insert(Args.begin(), "prog");
  return CL.parse(static_cast<int>(Args.size()), Args.data());
}
} // namespace

TEST(CommandLineTest, RangeRejectsZeroWorkers) {
  int64_t Workers = 1;
  auto R = parseWorkers(Workers, {"--workers=0"});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(R.error().message().find("--workers"), std::string::npos);
  EXPECT_NE(R.error().message().find("out of range"), std::string::npos);
  EXPECT_EQ(Workers, 1) << "rejected value must not leak into the target";
}

TEST(CommandLineTest, RangeRejectsNegativeValues) {
  int64_t Workers = 1;
  auto R = parseWorkers(Workers, {"--workers=-3"});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::InvalidArgument);
  EXPECT_EQ(Workers, 1);
}

TEST(CommandLineTest, RangeRejectsAboveMax) {
  int64_t Workers = 1;
  auto R = parseWorkers(Workers, {"--workers=5000"});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::InvalidArgument);
}

TEST(CommandLineTest, RangeAcceptsBoundaryValues) {
  int64_t Workers = 1;
  ASSERT_TRUE(parseWorkers(Workers, {"--workers=1"}));
  EXPECT_EQ(Workers, 1);
  ASSERT_TRUE(parseWorkers(Workers, {"--workers=4096"}));
  EXPECT_EQ(Workers, 4096);
}

TEST(CommandLineTest, RangeDoesNotCheckUntouchedDefaults) {
  // bench_batch-style sentinel: 0 means "use hardware concurrency" and
  // is the default, while explicit values must be >= 0. A default
  // outside the explicit range must survive an unrelated parse.
  int64_t Workers = -7; // Deliberately out-of-range default.
  CommandLine CL("test", "test");
  CL.addInt("workers", "worker threads", &Workers, 0, 4096);
  const char *Args[] = {"prog"};
  ASSERT_TRUE(CL.parse(1, Args));
  EXPECT_EQ(Workers, -7);
}
