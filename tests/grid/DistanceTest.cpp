//===- tests/grid/DistanceTest.cpp - Distance metric unit tests -----------===//

#include "grid/Distance.h"

#include "grid/Formulas.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(HexOffsetDistanceTest, KnownValues) {
  EXPECT_EQ(hexOffsetDistance(0, 0), 0);
  EXPECT_EQ(hexOffsetDistance(1, 0), 1);
  EXPECT_EQ(hexOffsetDistance(0, 1), 1);
  EXPECT_EQ(hexOffsetDistance(1, 1), 1);   // One diagonal step.
  EXPECT_EQ(hexOffsetDistance(-1, -1), 1); // The other diagonal.
  EXPECT_EQ(hexOffsetDistance(1, -1), 2);  // Signs differ: no diagonal.
  EXPECT_EQ(hexOffsetDistance(-1, 1), 2);
  EXPECT_EQ(hexOffsetDistance(3, 5), 5);
  EXPECT_EQ(hexOffsetDistance(3, -5), 8);
  EXPECT_EQ(hexOffsetDistance(-4, -2), 4);
}

struct DistanceCase {
  GridKind Kind;
  int SideLength;
};

static std::string caseName(const ::testing::TestParamInfo<DistanceCase> &I) {
  return std::string(gridKindName(I.param.Kind)) +
         std::to_string(I.param.SideLength);
}

class DistanceVsBfsTest : public ::testing::TestWithParam<DistanceCase> {};

TEST_P(DistanceVsBfsTest, ClosedFormMatchesBfsEverywhere) {
  DistanceCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  // Vertex transitivity: checking all targets from a handful of sources
  // exercises every offset class.
  for (int Source : {0, 1, T.numCells() / 2, T.numCells() - 1}) {
    std::vector<int> Reference = bfsDistances(T, Source);
    Coord From = T.coordOf(Source);
    for (int Target = 0; Target != T.numCells(); ++Target)
      EXPECT_EQ(gridDistance(T, From, T.coordOf(Target)),
                Reference[static_cast<size_t>(Target)])
          << gridKindName(C.Kind) << C.SideLength << " " << Source << "->"
          << Target;
  }
}

TEST_P(DistanceVsBfsTest, MetricAxioms) {
  DistanceCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  // Identity and symmetry over all pairs from two sources; triangle
  // inequality over a sampled third point.
  Coord A = T.coordOf(0);
  for (int I = 0; I != T.numCells(); ++I) {
    Coord B = T.coordOf(I);
    int AB = gridDistance(T, A, B);
    EXPECT_EQ(AB == 0, A == B);
    EXPECT_EQ(AB, gridDistance(T, B, A));
    Coord Mid = T.coordOf((I * 7 + 3) % T.numCells());
    EXPECT_LE(AB, gridDistance(T, A, Mid) + gridDistance(T, Mid, B));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DistanceVsBfsTest,
    ::testing::Values(DistanceCase{GridKind::Square, 4},
                      DistanceCase{GridKind::Square, 8},
                      DistanceCase{GridKind::Square, 16},
                      DistanceCase{GridKind::Square, 9},
                      DistanceCase{GridKind::Triangulate, 4},
                      DistanceCase{GridKind::Triangulate, 8},
                      DistanceCase{GridKind::Triangulate, 16},
                      DistanceCase{GridKind::Triangulate, 9}),
    caseName);

class ScanVsFormulaTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanVsFormulaTest, DiameterMatchesEq1) {
  int N = GetParam();
  int M = 1 << N;
  Torus S(GridKind::Square, M), T(GridKind::Triangulate, M);
  EXPECT_EQ(diameterByScan(S), squareDiameter(N));
  EXPECT_EQ(diameterByScan(T), triangulateDiameter(N));
  // And both agree with BFS eccentricity (graph truth).
  EXPECT_EQ(eccentricity(S, 0), squareDiameter(N));
  EXPECT_EQ(eccentricity(T, 0), triangulateDiameter(N));
}

TEST_P(ScanVsFormulaTest, MeanDistanceMatchesEq2) {
  int N = GetParam();
  int M = 1 << N;
  Torus S(GridKind::Square, M), T(GridKind::Triangulate, M);
  EXPECT_DOUBLE_EQ(meanDistanceByScan(S), squareMeanDistance(N));
  // Eq. 2's T-grid form is explicitly approximate ("~"); its error is
  // O(1/sqrt(N)) in absolute terms.
  EXPECT_NEAR(meanDistanceByScan(T), triangulateMeanDistance(N),
              0.25 / (1 << (N / 2)) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanVsFormulaTest,
                         ::testing::Values(2, 3, 4, 5, 6));

TEST(Fig2Test, Size3ValuesFromTheCaption) {
  // Fig. 2: D_3^S = 8, mean 4; D_3^T = 5, mean ~3.09.
  Torus S(GridKind::Square, 8), T(GridKind::Triangulate, 8);
  EXPECT_EQ(diameterByScan(S), 8);
  EXPECT_DOUBLE_EQ(meanDistanceByScan(S), 4.0);
  EXPECT_EQ(diameterByScan(T), 5);
  EXPECT_NEAR(meanDistanceByScan(T), 3.09, 0.05);
}

TEST(Fig2Test, Size4ValuesUsedByTable1) {
  // The 16x16 field of the main experiment: D^S = 16, D^T = 10, whose
  // D - 1 values 15 and 9 appear as Table 1's packed column.
  Torus S(GridKind::Square, 16), T(GridKind::Triangulate, 16);
  EXPECT_EQ(diameterByScan(S), 16);
  EXPECT_EQ(diameterByScan(T), 10);
}
