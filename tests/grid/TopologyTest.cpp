//===- tests/grid/TopologyTest.cpp - Torus unit tests ---------------------===//

#include "grid/Topology.h"

#include "gtest/gtest.h"

#include <set>

using namespace ca2a;

struct TopologyCase {
  GridKind Kind;
  int SideLength;
};

static std::string caseName(const ::testing::TestParamInfo<TopologyCase> &I) {
  return std::string(gridKindName(I.param.Kind)) +
         std::to_string(I.param.SideLength);
}

class TorusTest : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TorusTest, BasicCounts) {
  TopologyCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  int N = C.SideLength * C.SideLength;
  EXPECT_EQ(T.numCells(), N);
  int ExpectedDegree = C.Kind == GridKind::Square ? 4 : 6;
  EXPECT_EQ(T.degree(), ExpectedDegree);
  // Sect. 2: 2N links in S, 3N in T.
  EXPECT_EQ(T.numLinks(), C.Kind == GridKind::Square ? 2 * N : 3 * N);
}

TEST_P(TorusTest, IndexCoordRoundTrip) {
  TopologyCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  for (int I = 0; I != T.numCells(); ++I) {
    Coord P = T.coordOf(I);
    EXPECT_GE(P.X, 0);
    EXPECT_LT(P.X, C.SideLength);
    EXPECT_GE(P.Y, 0);
    EXPECT_LT(P.Y, C.SideLength);
    EXPECT_EQ(T.indexOf(P), I);
  }
}

TEST_P(TorusTest, WrapNormalizes) {
  TopologyCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  int M = C.SideLength;
  EXPECT_EQ(T.wrap(0), 0);
  EXPECT_EQ(T.wrap(M), 0);
  EXPECT_EQ(T.wrap(-1), M - 1);
  EXPECT_EQ(T.wrap(-M), 0);
  EXPECT_EQ(T.wrap(2 * M + 3), 3);
  EXPECT_EQ(T.wrap(-2 * M - 1), M - 1);
}

TEST_P(TorusTest, NeighborTableMatchesCoordinateMath) {
  TopologyCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  for (int I = 0; I != T.numCells(); ++I) {
    Coord P = T.coordOf(I);
    for (int D = 0; D != T.degree(); ++D) {
      int ByTable = T.neighborIndex(I, static_cast<uint8_t>(D));
      int ByCoord = T.indexOf(T.neighbor(P, static_cast<uint8_t>(D)));
      EXPECT_EQ(ByTable, ByCoord);
    }
  }
}

TEST_P(TorusTest, NeighborsAreDistinctAndExcludeSelf) {
  TopologyCase C = GetParam();
  if (C.SideLength < 3)
    GTEST_SKIP() << "wrap aliasing is expected on 2x2 tori";
  Torus T(C.Kind, C.SideLength);
  for (int I = 0; I != T.numCells(); ++I) {
    std::set<int> Seen;
    const int32_t *Neighbors = T.neighbors(I);
    for (int D = 0; D != T.degree(); ++D) {
      EXPECT_NE(Neighbors[D], I) << "self-loop at cell " << I;
      Seen.insert(Neighbors[D]);
    }
    EXPECT_EQ(static_cast<int>(Seen.size()), T.degree())
        << "duplicate neighbours at cell " << I;
  }
}

TEST_P(TorusTest, OppositeDirectionReturns) {
  TopologyCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  int Degree = T.degree();
  int Half = Degree / 2;
  for (int I = 0; I != T.numCells(); ++I)
    for (int D = 0; D != Degree; ++D) {
      int There = T.neighborIndex(I, static_cast<uint8_t>(D));
      int Back = T.neighborIndex(
          There, static_cast<uint8_t>((D + Half) % Degree));
      EXPECT_EQ(Back, I) << "direction " << D << " is not inverted by "
                         << (D + Half) % Degree;
    }
}

TEST_P(TorusTest, AdjacencyIsSymmetric) {
  TopologyCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  for (int I = 0; I != T.numCells(); ++I) {
    const int32_t *Neighbors = T.neighbors(I);
    for (int D = 0; D != T.degree(); ++D) {
      // I must appear in the neighbour list of each of its neighbours.
      const int32_t *Reverse = T.neighbors(Neighbors[D]);
      bool Found = false;
      for (int E = 0; E != T.degree(); ++E)
        Found |= (Reverse[E] == I);
      EXPECT_TRUE(Found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, TorusTest,
    ::testing::Values(TopologyCase{GridKind::Square, 4},
                      TopologyCase{GridKind::Square, 8},
                      TopologyCase{GridKind::Square, 16},
                      TopologyCase{GridKind::Square, 33},
                      TopologyCase{GridKind::Triangulate, 4},
                      TopologyCase{GridKind::Triangulate, 8},
                      TopologyCase{GridKind::Triangulate, 16},
                      TopologyCase{GridKind::Triangulate, 33}),
    caseName);

TEST_P(TorusTest, CrossesBoundaryMatchesCoordinateMath) {
  TopologyCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  int M = C.SideLength;
  int CrossingSteps = 0;
  for (int I = 0; I != T.numCells(); ++I) {
    Coord P = T.coordOf(I);
    for (int D = 0; D != T.degree(); ++D) {
      Coord Offset = T.directionOffset(static_cast<uint8_t>(D));
      bool Expected = P.X + Offset.X < 0 || P.X + Offset.X >= M ||
                      P.Y + Offset.Y < 0 || P.Y + Offset.Y >= M;
      EXPECT_EQ(T.crossesBoundary(I, static_cast<uint8_t>(D)), Expected)
          << "cell " << I << " dir " << D;
      CrossingSteps += Expected;
    }
  }
  // Interior cells never cross; some boundary steps must exist.
  EXPECT_GT(CrossingSteps, 0);
  int Interior = T.indexOf(Coord{M / 2, M / 2});
  for (int D = 0; D != T.degree(); ++D)
    EXPECT_FALSE(T.crossesBoundary(Interior, static_cast<uint8_t>(D)));
}

TEST(TorusOffsetsTest, SquareRingOrder) {
  Torus T(GridKind::Square, 8);
  EXPECT_EQ(T.directionOffset(0), (Coord{1, 0}));  // E
  EXPECT_EQ(T.directionOffset(1), (Coord{0, 1}));  // N
  EXPECT_EQ(T.directionOffset(2), (Coord{-1, 0})); // W
  EXPECT_EQ(T.directionOffset(3), (Coord{0, -1})); // S
}

TEST(TorusOffsetsTest, TriangulateRingOrderAndDiagonals) {
  Torus T(GridKind::Triangulate, 8);
  EXPECT_EQ(T.directionOffset(0), (Coord{1, 0}));
  EXPECT_EQ(T.directionOffset(1), (Coord{1, 1})); // The (x+1, y+1) link.
  EXPECT_EQ(T.directionOffset(2), (Coord{0, 1}));
  EXPECT_EQ(T.directionOffset(3), (Coord{-1, 0}));
  EXPECT_EQ(T.directionOffset(4), (Coord{-1, -1})); // The (x-1, y-1) link.
  EXPECT_EQ(T.directionOffset(5), (Coord{0, -1}));
}

TEST(TorusOffsetsTest, TriangulateContainsSquare) {
  // Fig. 1: the T-grid is the S-grid plus diagonals; every S offset occurs
  // among the T offsets.
  Torus S(GridKind::Square, 8), T(GridKind::Triangulate, 8);
  for (int D = 0; D != 4; ++D) {
    Coord Offset = S.directionOffset(static_cast<uint8_t>(D));
    bool Found = false;
    for (int E = 0; E != 6; ++E)
      Found |= (T.directionOffset(static_cast<uint8_t>(E)) == Offset);
    EXPECT_TRUE(Found);
  }
}
