//===- tests/grid/DirectionTest.cpp - Direction algebra unit tests --------===//

#include "grid/Direction.h"

#include "gtest/gtest.h"

using namespace ca2a;

TEST(GridKindTest, Names) {
  EXPECT_STREQ(gridKindName(GridKind::Square), "S");
  EXPECT_STREQ(gridKindName(GridKind::Triangulate), "T");
}

TEST(GridKindTest, Parse) {
  GridKind K;
  EXPECT_TRUE(parseGridKind("S", K));
  EXPECT_EQ(K, GridKind::Square);
  EXPECT_TRUE(parseGridKind("square", K));
  EXPECT_EQ(K, GridKind::Square);
  EXPECT_TRUE(parseGridKind("t", K));
  EXPECT_EQ(K, GridKind::Triangulate);
  EXPECT_TRUE(parseGridKind("Triangulate", K));
  EXPECT_EQ(K, GridKind::Triangulate);
  EXPECT_FALSE(parseGridKind("hex", K));
  EXPECT_FALSE(parseGridKind("", K));
}

TEST(DirectionTest, Cardinality) {
  EXPECT_EQ(numDirections(GridKind::Square), 4);
  EXPECT_EQ(numDirections(GridKind::Triangulate), 6);
}

TEST(TurnTest, Letters) {
  EXPECT_EQ(turnLetter(Turn::Straight), 'S');
  EXPECT_EQ(turnLetter(Turn::Right), 'R');
  EXPECT_EQ(turnLetter(Turn::Back), 'B');
  EXPECT_EQ(turnLetter(Turn::Left), 'L');
}

TEST(TurnTest, ParseLetters) {
  Turn T;
  for (char C : {'S', 'R', 'B', 'L', 's', 'r', 'b', 'l'}) {
    ASSERT_TRUE(parseTurnLetter(C, T)) << C;
    EXPECT_EQ(turnLetter(T), static_cast<char>(std::toupper(C)));
  }
  EXPECT_FALSE(parseTurnLetter('X', T));
}

TEST(ApplyTurnTest, SquareFullTable) {
  // S-grid: turn code t adds t x 90 degrees = t direction-ring steps.
  for (uint8_t Dir = 0; Dir != 4; ++Dir) {
    EXPECT_EQ(applyTurn(GridKind::Square, Dir, Turn::Straight), Dir);
    EXPECT_EQ(applyTurn(GridKind::Square, Dir, Turn::Right), (Dir + 1) % 4);
    EXPECT_EQ(applyTurn(GridKind::Square, Dir, Turn::Back), (Dir + 2) % 4);
    EXPECT_EQ(applyTurn(GridKind::Square, Dir, Turn::Left), (Dir + 3) % 4);
  }
}

TEST(ApplyTurnTest, TriangulateIncrements) {
  // T-grid: codes map to increments {0, 1, 3, 5} (0, +60, 180, -60 deg).
  for (uint8_t Dir = 0; Dir != 6; ++Dir) {
    EXPECT_EQ(applyTurn(GridKind::Triangulate, Dir, Turn::Straight), Dir);
    EXPECT_EQ(applyTurn(GridKind::Triangulate, Dir, Turn::Right),
              (Dir + 1) % 6);
    EXPECT_EQ(applyTurn(GridKind::Triangulate, Dir, Turn::Back),
              (Dir + 3) % 6);
    EXPECT_EQ(applyTurn(GridKind::Triangulate, Dir, Turn::Left),
              (Dir + 5) % 6);
  }
}

TEST(ApplyTurnTest, TriangulateCannotReach120Degrees) {
  // From any direction, the one-step reachable set misses Dir+2 and Dir+4:
  // the deliberate +-120 degree exclusion (Sect. 3).
  for (uint8_t Dir = 0; Dir != 6; ++Dir) {
    bool Reachable[6] = {};
    for (int Code = 0; Code != NumTurnCodes; ++Code)
      Reachable[applyTurn(GridKind::Triangulate, Dir,
                          static_cast<Turn>(Code))] = true;
    EXPECT_FALSE(Reachable[(Dir + 2) % 6]);
    EXPECT_FALSE(Reachable[(Dir + 4) % 6]);
  }
}

TEST(ApplyTurnTest, BackIsInvolution) {
  // Turning Back twice restores the direction in both topologies.
  for (uint8_t Dir = 0; Dir != 4; ++Dir)
    EXPECT_EQ(applyTurn(GridKind::Square,
                        applyTurn(GridKind::Square, Dir, Turn::Back),
                        Turn::Back),
              Dir);
  for (uint8_t Dir = 0; Dir != 6; ++Dir)
    EXPECT_EQ(applyTurn(GridKind::Triangulate,
                        applyTurn(GridKind::Triangulate, Dir, Turn::Back),
                        Turn::Back),
              Dir);
}

TEST(ApplyTurnTest, LeftUndoesRight) {
  for (uint8_t Dir = 0; Dir != 4; ++Dir)
    EXPECT_EQ(applyTurn(GridKind::Square,
                        applyTurn(GridKind::Square, Dir, Turn::Right),
                        Turn::Left),
              Dir);
  for (uint8_t Dir = 0; Dir != 6; ++Dir)
    EXPECT_EQ(applyTurn(GridKind::Triangulate,
                        applyTurn(GridKind::Triangulate, Dir, Turn::Right),
                        Turn::Left),
              Dir);
}

TEST(DirectionGlyphTest, DistinctGlyphsPerDirection) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    std::string Seen;
    for (int D = 0; D != numDirections(Kind); ++D) {
      char G = directionGlyph(Kind, static_cast<uint8_t>(D));
      EXPECT_EQ(Seen.find(G), std::string::npos)
          << "duplicate glyph " << G << " in " << gridKindName(Kind);
      Seen.push_back(G);
    }
  }
}
