//===- tests/grid/FormulasTest.cpp - Closed-form formula unit tests -------===//

#include "grid/Formulas.h"

#include "gtest/gtest.h"

using namespace ca2a;

TEST(FormulasTest, SquareDiameter) {
  EXPECT_EQ(squareDiameter(1), 2);
  EXPECT_EQ(squareDiameter(2), 4);
  EXPECT_EQ(squareDiameter(3), 8);
  EXPECT_EQ(squareDiameter(4), 16);
  EXPECT_EQ(squareDiameter(5), 32);
}

TEST(FormulasTest, TriangulateDiameterWithParityEpsilon) {
  // D_n^T = (2(2^n - 1) + eps) / 3, eps = n mod 2.
  EXPECT_EQ(triangulateDiameter(1), 1);  // (2*1 + 1)/3 = 1.
  EXPECT_EQ(triangulateDiameter(2), 2);  // (2*3 + 0)/3 = 2.
  EXPECT_EQ(triangulateDiameter(3), 5);  // (2*7 + 1)/3 = 5.
  EXPECT_EQ(triangulateDiameter(4), 10); // (2*15 + 0)/3 = 10.
  EXPECT_EQ(triangulateDiameter(5), 21); // (2*31 + 1)/3 = 21.
}

TEST(FormulasTest, MeanDistances) {
  EXPECT_DOUBLE_EQ(squareMeanDistance(3), 4.0);
  EXPECT_DOUBLE_EQ(squareMeanDistance(4), 8.0);
  // (7*8/3 - 1/8)/6 ~ 3.0903.
  EXPECT_NEAR(triangulateMeanDistance(3), 3.0903, 1e-3);
  // (7*16/3 - 1/16)/6 ~ 6.2118.
  EXPECT_NEAR(triangulateMeanDistance(4), 6.2118, 1e-3);
}

TEST(FormulasTest, KindDispatch) {
  EXPECT_EQ(analyticDiameter(GridKind::Square, 4), 16);
  EXPECT_EQ(analyticDiameter(GridKind::Triangulate, 4), 10);
  EXPECT_DOUBLE_EQ(analyticMeanDistance(GridKind::Square, 4), 8.0);
  EXPECT_NEAR(analyticMeanDistance(GridKind::Triangulate, 4), 6.2118, 1e-3);
}

TEST(FormulasTest, Eq3Ratios) {
  // Eq. 3: D^{T/S} ~ 0.666, mean ratio ~ 0.775; convergence from below /
  // near those values as n grows.
  for (int N : {4, 5, 6, 8}) {
    EXPECT_NEAR(diameterRatio(N), 0.666, 0.05) << "n=" << N;
    EXPECT_NEAR(meanDistanceRatio(N), 0.775, 0.05) << "n=" << N;
  }
  EXPECT_NEAR(diameterRatio(10), 2.0 / 3.0, 0.01);
  EXPECT_NEAR(meanDistanceRatio(10), 7.0 / 9.0, 0.01);
}
