//===- tests/ga/CrossoverTest.cpp - Crossover operator unit tests ---------===//

#include "ga/Crossover.h"

#include "ga/Mutation.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(CrossoverTest, OnePointChildIsPrefixPlusSuffix) {
  Rng R(1);
  Genome A = Genome::random(R);
  Genome B = Genome::random(R);
  for (int Trial = 0; Trial != 50; ++Trial) {
    Genome Child = crossoverOnePoint(A, B, R);
    // Find the cut: the child must match A on a prefix and B on the rest.
    int Cut = -1;
    for (int I = 0; I != GenomeLength; ++I) {
      bool FromA = Child.slot(I) == A.slot(I);
      bool FromB = Child.slot(I) == B.slot(I);
      ASSERT_TRUE(FromA || FromB) << "slot " << I << " from neither parent";
      if (!FromA && Cut < 0)
        Cut = I;
      if (Cut >= 0)
        EXPECT_TRUE(FromB) << "A-slot after the cut at " << I;
    }
    // Cut in [1, 31]: the child always carries at least one A slot; when
    // parents agree on a suffix Cut may stay -1 (child == A), still valid.
    EXPECT_TRUE(Child.slot(0) == A.slot(0));
  }
}

TEST(CrossoverTest, OnePointUsesBothParents) {
  Rng R(2);
  Genome A = Genome::random(R);
  // Make B differ from A in EVERY field so provenance is unambiguous.
  Genome B = mutate(A, MutationParams::uniform(1.0), R);
  int SawMixture = 0;
  for (int Trial = 0; Trial != 30; ++Trial) {
    Genome Child = crossoverOnePoint(A, B, R);
    bool HasA = false, HasB = false;
    for (int I = 0; I != GenomeLength; ++I) {
      HasA |= Child.slot(I) == A.slot(I);
      HasB |= Child.slot(I) == B.slot(I);
    }
    SawMixture += (HasA && HasB);
  }
  EXPECT_EQ(SawMixture, 30) << "every cut in [1,31] mixes distinct parents";
}

TEST(CrossoverTest, UniformMixesRoughlyHalf) {
  Rng R(3);
  Genome A = Genome::random(R);
  Genome B = mutate(A, MutationParams::uniform(1.0), R);
  int FromATotal = 0;
  constexpr int Trials = 200;
  for (int Trial = 0; Trial != Trials; ++Trial) {
    Genome Child = crossoverUniform(A, B, R);
    for (int I = 0; I != GenomeLength; ++I)
      FromATotal += Child.slot(I) == A.slot(I);
  }
  double Rate = static_cast<double>(FromATotal) / (Trials * GenomeLength);
  EXPECT_NEAR(Rate, 0.5, 0.03);
}

TEST(CrossoverTest, IdenticalParentsYieldTheParent) {
  Rng R(4);
  Genome A = Genome::random(R);
  EXPECT_EQ(crossoverOnePoint(A, A, R), A);
  EXPECT_EQ(crossoverUniform(A, A, R), A);
}

TEST(CrossoverTest, Deterministic) {
  Rng R1(5), R2(5);
  Genome A = Genome::random(R1);
  Genome B = Genome::random(R1);
  Genome A2 = Genome::random(R2);
  Genome B2 = Genome::random(R2);
  EXPECT_EQ(crossoverOnePoint(A, B, R1), crossoverOnePoint(A2, B2, R2));
}
