//===- tests/ga/EvalSchedulerTest.cpp - Evaluation-scheduler tests --------===//
//
// Covers the generation-wide evaluation layer: memoization (LRU cache,
// intra-batch dedup), cross-genome batching on both engines, and —
// most importantly — the exactness contract of bound-based early abort:
// pruning must never change which genomes selection keeps.
//
//===----------------------------------------------------------------------===//

#include "ga/EvalScheduler.h"

#include "agent/BestAgents.h"
#include "ga/Evolution.h"
#include "ga/Pipeline.h"
#include "support/Chaos.h"
#include "support/Rng.h"
#include "gtest/gtest.h"

#include <atomic>
#include <vector>

using namespace ca2a;

namespace {

/// Small training context: 16x16 T-grid, 4 agents, a handful of fields.
struct Ctx {
  Torus T{GridKind::Triangulate, 16};
  std::vector<InitialConfiguration> Fields;
  FitnessParams FP;

  explicit Ctx(int NumFields = 8, int Agents = 4) {
    Fields = standardConfigurationSet(T, Agents, NumFields - 3, 321);
    FP.Sim.MaxSteps = 60;
    FP.Engine = EngineKind::Batch;
  }
};

Genome randomGenome(uint64_t Seed) {
  Rng R(Seed);
  return Genome::random(R);
}

/// Exact fitness equality, field by field (results must be bit-identical,
/// not just close).
void expectSameResult(const FitnessResult &A, const FitnessResult &B) {
  EXPECT_DOUBLE_EQ(A.Fitness, B.Fitness);
  EXPECT_DOUBLE_EQ(A.MeanCommTime, B.MeanCommTime);
  EXPECT_EQ(A.SolvedFields, B.SolvedFields);
  EXPECT_EQ(A.NumFields, B.NumFields);
}

} // namespace

TEST(EvalSchedulerTest, SingleEvaluationMatchesEvaluateFitness) {
  Ctx C;
  for (EngineKind Engine : {EngineKind::Batch, EngineKind::Reference}) {
    C.FP.Engine = Engine;
    EvalScheduler S(C.T, C.Fields, C.FP, SchedulerParams{});
    Genome G = randomGenome(17);
    expectSameResult(S.evaluate(G),
                     evaluateFitness(G, C.T, C.Fields, C.FP));
  }
}

TEST(EvalSchedulerTest, RepeatEvaluationIsCacheHit) {
  Ctx C;
  EvalScheduler S(C.T, C.Fields, C.FP, SchedulerParams{});
  Genome G = randomGenome(5);
  FitnessResult First = S.evaluate(G);
  FitnessResult Second = S.evaluate(G);
  expectSameResult(First, Second);
  EXPECT_EQ(S.stats().Requests, 2u);
  EXPECT_EQ(S.stats().CacheHits, 1u);
  EXPECT_EQ(S.stats().GenomesSimulated, 1u);
  EXPECT_EQ(S.stats().Batches, 1u) << "cache hit must not submit a batch";
  EXPECT_DOUBLE_EQ(S.stats().hitRate(), 0.5);
}

TEST(EvalSchedulerTest, IntraBatchDuplicatesAnsweredOnce) {
  Ctx C;
  EvalScheduler S(C.T, C.Fields, C.FP, SchedulerParams{});
  Genome G = randomGenome(5);
  std::vector<const Genome *> Request{&G, &G, &G};
  std::vector<EvalOutcome> Out = S.evaluateGeneration(Request, {});
  ASSERT_EQ(Out.size(), 3u);
  expectSameResult(Out[0].Result, Out[1].Result);
  expectSameResult(Out[0].Result, Out[2].Result);
  EXPECT_EQ(S.stats().GenomesSimulated, 1u);
  EXPECT_EQ(S.stats().CacheHits, 2u);
}

TEST(EvalSchedulerTest, CacheCapacityZeroDisablesMemoization) {
  Ctx C;
  SchedulerParams SP;
  SP.CacheCapacity = 0;
  EvalScheduler S(C.T, C.Fields, C.FP, SP);
  Genome G = randomGenome(5);
  expectSameResult(S.evaluate(G), S.evaluate(G));
  EXPECT_EQ(S.stats().CacheHits, 0u);
  EXPECT_EQ(S.stats().GenomesSimulated, 2u);
}

TEST(EvalSchedulerTest, LruEvictsTheLeastRecentlyUsedEntry) {
  Ctx C(6, 2);
  SchedulerParams SP;
  SP.CacheCapacity = 2;
  EvalScheduler S(C.T, C.Fields, C.FP, SP);
  Genome A = randomGenome(1), B = randomGenome(2), D = randomGenome(3);
  S.evaluate(A);               // cache: A
  S.evaluate(B);               // cache: B, A
  S.evaluate(A);               // hit; cache: A, B
  S.evaluate(D);               // evicts B; cache: D, A
  EXPECT_EQ(S.stats().GenomesSimulated, 3u);
  S.evaluate(A);               // still cached
  EXPECT_EQ(S.stats().GenomesSimulated, 3u);
  S.evaluate(B);               // was evicted: simulated again
  EXPECT_EQ(S.stats().GenomesSimulated, 4u);
  EXPECT_EQ(S.stats().CacheHits, 2u);
}

TEST(EvalSchedulerTest, ContextFingerprintSeparatesContexts) {
  Ctx A, B;
  B.FP.Sim.MaxSteps = 61;
  Ctx Shorter(6, 4);
  EvalScheduler SA(A.T, A.Fields, A.FP, SchedulerParams{});
  EvalScheduler SB(B.T, B.Fields, B.FP, SchedulerParams{});
  EvalScheduler SC(Shorter.T, Shorter.Fields, Shorter.FP, SchedulerParams{});
  EXPECT_NE(SA.contextFingerprint(), SB.contextFingerprint())
      << "MaxSteps must be part of the memo key";
  EXPECT_NE(SA.contextFingerprint(), SC.contextFingerprint())
      << "the field set must be part of the memo key";
  // Engine/worker knobs are bit-identical and deliberately shared.
  Ctx D;
  D.FP.Engine = EngineKind::Reference;
  D.FP.NumWorkers = 3;
  EvalScheduler SD(D.T, D.Fields, D.FP, SchedulerParams{});
  EXPECT_EQ(SA.contextFingerprint(), SD.contextFingerprint());
}

TEST(EvalSchedulerTest, PruningCancelsHopelessGenomes) {
  Ctx C;
  EvalScheduler S(C.T, C.Fields, C.FP, SchedulerParams{});
  // Incumbents: a pool of 20 at the published T-agent's fitness (solves
  // everything quickly). The all-zero genome never moves, fails every
  // field, and must be cancelled long before its last field.
  double Strong = S.evaluate(bestTriangulateAgent()).Fitness;
  std::vector<double> Incumbents(20, Strong);
  Genome Stay;
  std::vector<const Genome *> Request{&Stay};
  std::vector<EvalOutcome> Out = S.evaluateGeneration(Request, Incumbents);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_TRUE(Out[0].Pruned);
  EXPECT_GT(S.stats().FieldsPruned, 0u);
  EXPECT_EQ(S.stats().GenomesPruned, 1u);
  // The reported bound certifies the loss...
  EXPECT_GT(Out[0].Result.Fitness, Strong);
  // ...and never overshoots the true fitness (it is a *lower* bound).
  SchedulerParams Exact;
  Exact.ExactFitness = true;
  EvalScheduler SE(C.T, C.Fields, C.FP, Exact);
  EXPECT_LE(Out[0].Result.Fitness, SE.evaluate(Stay).Fitness);
  EXPECT_GT(S.stats().pruneRate(), 0.0);
}

TEST(EvalSchedulerTest, PrunedResultsAreNeverCached) {
  Ctx C;
  EvalScheduler S(C.T, C.Fields, C.FP, SchedulerParams{});
  double Strong = S.evaluate(bestTriangulateAgent()).Fitness;
  std::vector<double> Incumbents(20, Strong);
  Genome Stay;
  std::vector<const Genome *> Request{&Stay};
  ASSERT_TRUE(S.evaluateGeneration(Request, Incumbents)[0].Pruned);
  // Re-requesting without incumbents must simulate exactly, not replay
  // the pruned bound from the cache.
  std::vector<EvalOutcome> Exact = S.evaluateGeneration(Request, {});
  EXPECT_FALSE(Exact[0].Pruned);
  EXPECT_FALSE(Exact[0].CacheHit);
  expectSameResult(Exact[0].Result,
                   evaluateFitness(Stay, C.T, C.Fields, C.FP));
}

TEST(EvalSchedulerTest, ExactFitnessDisablesPruning) {
  Ctx C;
  SchedulerParams SP;
  SP.ExactFitness = true;
  EvalScheduler S(C.T, C.Fields, C.FP, SP);
  std::vector<double> Incumbents(20, 1.0); // Unbeatable pool.
  Genome Stay;
  std::vector<const Genome *> Request{&Stay};
  std::vector<EvalOutcome> Out = S.evaluateGeneration(Request, Incumbents);
  EXPECT_FALSE(Out[0].Pruned);
  EXPECT_EQ(S.stats().FieldsPruned, 0u);
  expectSameResult(Out[0].Result,
                   evaluateFitness(Stay, C.T, C.Fields, C.FP));
}

TEST(EvalSchedulerTest, EmptyIncumbentsNeverPrune) {
  Ctx C;
  EvalScheduler S(C.T, C.Fields, C.FP, SchedulerParams{});
  Genome Stay; // Hopeless, but nothing to compare against.
  std::vector<const Genome *> Request{&Stay};
  EXPECT_FALSE(S.evaluateGeneration(Request, {})[0].Pruned);
  EXPECT_EQ(S.stats().FieldsPruned, 0u);
}

TEST(EvalSchedulerTest, MixedBatchKeepsSurvivorsBitIdentical) {
  // One strong and one hopeless genome in the same batch, with a pool the
  // strong one beats: the hopeless one is pruned, the strong one's result
  // must still be bit-identical to a standalone evaluateFitness.
  Ctx C;
  EvalScheduler S(C.T, C.Fields, C.FP, SchedulerParams{});
  Genome Strong = bestTriangulateAgent();
  Genome Stay;
  FitnessResult Standalone = evaluateFitness(Strong, C.T, C.Fields, C.FP);
  std::vector<double> Incumbents(20, Standalone.Fitness + 5.0);
  std::vector<const Genome *> Request{&Stay, &Strong};
  std::vector<EvalOutcome> Out = S.evaluateGeneration(Request, Incumbents);
  EXPECT_TRUE(Out[0].Pruned);
  EXPECT_FALSE(Out[1].Pruned);
  expectSameResult(Out[1].Result, Standalone);
}

TEST(EvalSchedulerTest, EnginesAndWorkerCountsAgreeBitwise) {
  Ctx C;
  std::vector<Genome> Genomes;
  for (uint64_t Seed = 40; Seed != 45; ++Seed)
    Genomes.push_back(randomGenome(Seed));
  std::vector<const Genome *> Request;
  for (const Genome &G : Genomes)
    Request.push_back(&G);

  std::vector<std::vector<EvalOutcome>> Runs;
  for (EngineKind Engine : {EngineKind::Batch, EngineKind::Reference})
    for (size_t Workers : {size_t(1), size_t(3)}) {
      Ctx Run;
      Run.FP.Engine = Engine;
      Run.FP.NumWorkers = Workers;
      EvalScheduler S(Run.T, Run.Fields, Run.FP, SchedulerParams{});
      Runs.push_back(S.evaluateGeneration(Request, {}));
    }
  for (size_t R = 1; R != Runs.size(); ++R)
    for (size_t I = 0; I != Request.size(); ++I)
      expectSameResult(Runs[0][I].Result, Runs[R][I].Result);
}

TEST(EvalSchedulerTest, StatsIdentitiesHoldAfterAnEvolutionRun) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 2, 3, 555);
  EvolutionParams Params;
  Params.Seed = 9;
  Params.Fitness.Sim.MaxSteps = 60;
  Params.Fitness.Engine = EngineKind::Batch;
  Evolution E(T, Fields, Params);
  E.run(6);
  const SchedulerStats &S = E.schedulerStats();
  EXPECT_EQ(S.Requests, static_cast<uint64_t>(E.evaluations()));
  EXPECT_GE(S.Batches, 1u);
  EXPECT_LE(S.Batches, 7u) << "one submission per generation at most";
  EXPECT_EQ(S.FieldsSimulated + S.FieldsPruned,
            (S.GenomesSimulated + S.GenomesPruned) * Fields.size());
  EXPECT_EQ(S.Requests, S.CacheHits + S.GenomesSimulated + S.GenomesPruned);
}

// The acceptance differential: pruning + memoization must select the same
// champions as exhaustive evaluation, generation by generation, across
// >= 20 seeded runs. The pools themselves are compared (stronger than the
// champions): pruned candidates may carry bound fitness internally, but
// every *surviving* individual must be bit-identical.
TEST(EvalSchedulerTest, SelectionMatchesExactFitnessAcrossTwentySeeds) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 2, 3, 555);
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    EvolutionParams Pruned;
    Pruned.Seed = Seed;
    Pruned.Fitness.Sim.MaxSteps = 60;
    Pruned.Fitness.Engine = EngineKind::Batch;
    EvolutionParams Exact = Pruned;
    Exact.Scheduler.ExactFitness = true;
    EvolutionParams Legacy = Pruned;
    Legacy.Scheduler.Enabled = false;

    Evolution EP(T, Fields, Pruned);
    Evolution EE(T, Fields, Exact);
    Evolution EL(T, Fields, Legacy);
    for (int Gen = 0; Gen != 5; ++Gen) {
      EP.stepGeneration();
      EE.stepGeneration();
      EL.stepGeneration();
      ASSERT_EQ(EP.bestEver().G.hashValue(), EE.bestEver().G.hashValue())
          << "seed " << Seed << " gen " << Gen;
      ASSERT_EQ(EP.bestEver().G.hashValue(), EL.bestEver().G.hashValue())
          << "seed " << Seed << " gen " << Gen;
      const auto &PoolP = EP.population();
      const auto &PoolE = EE.population();
      const auto &PoolL = EL.population();
      ASSERT_EQ(PoolP.size(), PoolE.size());
      ASSERT_EQ(PoolP.size(), PoolL.size());
      for (size_t I = 0; I != PoolP.size(); ++I) {
        ASSERT_EQ(PoolP[I].G, PoolE[I].G) << "seed " << Seed << " gen "
                                          << Gen << " rank " << I;
        ASSERT_DOUBLE_EQ(PoolP[I].Fitness, PoolE[I].Fitness);
        ASSERT_EQ(PoolP[I].G, PoolL[I].G) << "seed " << Seed << " gen "
                                          << Gen << " rank " << I;
        ASSERT_DOUBLE_EQ(PoolP[I].Fitness, PoolL[I].Fitness);
        EXPECT_FALSE(PoolP[I].Pruned)
            << "a pruned individual survived selection";
      }
    }
    EXPECT_EQ(EP.evaluations(), EE.evaluations());
    EXPECT_EQ(EP.evaluations(), EL.evaluations());
  }
}

TEST(EvalSchedulerTest, PipelineChampionsUnaffectedByPruning) {
  Torus T(GridKind::Triangulate, 16);
  PipelineParams P;
  P.NumRuns = 2;
  P.TopPerRun = 2;
  P.Generations = 12;
  P.TrainingAgents = 2;
  P.TrainingRandomFields = 4;
  P.TrainingFieldSeed = 11;
  P.Evolution.Seed = 7;
  P.Evolution.Fitness.Sim.MaxSteps = 120;
  P.Reliability.AgentCounts = {2};
  P.Reliability.NumRandomFields = 4;
  P.Reliability.Fitness.Sim.MaxSteps = 300;
  P.Engine = EngineKind::Batch;

  PipelineParams PExact = P;
  PExact.Evolution.Scheduler.ExactFitness = true;
  PipelineResult Fast = runSelectionPipeline(T, P);
  PipelineResult Exact = runSelectionPipeline(T, PExact);
  ASSERT_EQ(Fast.Candidates.size(), Exact.Candidates.size());
  for (size_t I = 0; I != Fast.Candidates.size(); ++I) {
    EXPECT_EQ(Fast.Candidates[I].G, Exact.Candidates[I].G);
    EXPECT_DOUBLE_EQ(Fast.Candidates[I].TrainingFitness,
                     Exact.Candidates[I].TrainingFitness);
  }
  EXPECT_EQ(Fast.Sched.Requests, Exact.Sched.Requests);
  EXPECT_EQ(Exact.Sched.FieldsPruned, 0u);
}

#ifdef CA2A_CHAOS_ENABLED

// The supervised-execution contract: transient injected failures are
// absorbed by per-item retries, and the evolved pools stay bit-identical
// to a fault-free run — on both engines. (A retry burst that exhausts all
// attempts would degrade the item, but Evolution's repair pass
// re-evaluates any would-be survivor exactly, so even that cannot change
// selection; with 5 attempts at p = 0.05 exhaustion is ~3e-7 per visit.)
TEST(EvalSchedulerTest, ChampionsSurviveTransientChaosBitIdentical) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 2, 3, 555);
  for (EngineKind Engine : {EngineKind::Batch, EngineKind::Reference}) {
    EvolutionParams Params;
    Params.Seed = 13;
    Params.Fitness.Sim.MaxSteps = 60;
    Params.Fitness.Engine = Engine;
    Params.Scheduler.Retry.MaxAttempts = 5;
    Params.Scheduler.Retry.BaseDelayMicros = 1;
    Params.Scheduler.Retry.MaxDelayMicros = 10;

    Evolution Clean(T, Fields, Params);
    Clean.run(4);

    uint64_t Retries = 0;
    EvolutionSnapshot ChaosSnapshot;
    {
      ChaosSchedule Schedule;
      Schedule.Seed = 99;
      Schedule.site(ChaosSite::EngineReplica).FailProbability = 0.05;
      Schedule.site(ChaosSite::SchedulerBatch).FailProbability = 0.2;
      ScopedChaos Chaos(Schedule);
      Evolution Faulty(T, Fields, Params);
      Faulty.run(4);
      Retries = Faulty.schedulerStats().TaskRetries;
      ChaosSnapshot = Faulty.snapshot();
    }

    EXPECT_GT(Retries, 0u) << "chaos must actually have fired";
    EvolutionSnapshot Reference = Clean.snapshot();
    EXPECT_EQ(ChaosSnapshot.RngState, Reference.RngState)
        << "fault handling leaked into the evolution RNG";
    ASSERT_EQ(ChaosSnapshot.Pool.size(), Reference.Pool.size());
    for (size_t I = 0; I != Reference.Pool.size(); ++I) {
      ASSERT_EQ(ChaosSnapshot.Pool[I].G, Reference.Pool[I].G)
          << "engine " << engineKindName(Engine) << " rank " << I;
      ASSERT_DOUBLE_EQ(ChaosSnapshot.Pool[I].Fitness,
                       Reference.Pool[I].Fitness);
    }
    EXPECT_TRUE(ChaosSnapshot.BestEver.G == Reference.BestEver.G);
  }
}

// Under total failure every item exhausts its retries: the scheduler must
// quarantine, flag the outcomes Degraded, and return — never hang, never
// abort the process.
TEST(EvalSchedulerTest, TotalFailureQuarantinesAndTerminates) {
  Ctx C;
  for (EngineKind Engine : {EngineKind::Batch, EngineKind::Reference}) {
    C.FP.Engine = Engine;
    SchedulerParams SP;
    SP.Retry.MaxAttempts = 2;
    SP.Retry.BaseDelayMicros = 1;
    SP.Retry.MaxDelayMicros = 10;

    ChaosSchedule Schedule;
    Schedule.site(ChaosSite::EngineReplica).FailProbability = 1.0;
    ScopedChaos Chaos(Schedule);

    EvalScheduler S(C.T, C.Fields, C.FP, SP);
    Genome A = randomGenome(21), B = randomGenome(22);
    std::vector<const Genome *> Request{&A, &B};
    std::vector<EvalOutcome> Out = S.evaluateGeneration(Request, {});
    ASSERT_EQ(Out.size(), 2u);
    for (const EvalOutcome &O : Out) {
      EXPECT_TRUE(O.Degraded) << engineKindName(Engine);
      EXPECT_FALSE(O.Pruned);
      EXPECT_FALSE(O.CacheHit);
    }
    EXPECT_EQ(S.stats().GenomesDegraded, 2u);
    EXPECT_EQ(S.stats().ItemsQuarantined, 2 * C.Fields.size());
    EXPECT_GT(S.stats().TaskRetries, 0u);
    // Degraded bounds are never memoized: once chaos lifts, the next
    // request simulates exactly. (Verified below after uninstall.)
  }
}

// A degraded bound must never be served from the cache after the fault
// regime ends.
TEST(EvalSchedulerTest, DegradedResultsAreNeverCached) {
  Ctx C;
  SchedulerParams SP;
  SP.Retry.MaxAttempts = 2;
  SP.Retry.BaseDelayMicros = 1;
  EvalScheduler S(C.T, C.Fields, C.FP, SP);
  Genome G = randomGenome(23);
  std::vector<const Genome *> Request{&G};
  {
    ChaosSchedule Schedule;
    Schedule.site(ChaosSite::EngineReplica).FailProbability = 1.0;
    ScopedChaos Chaos(Schedule);
    ASSERT_TRUE(S.evaluateGeneration(Request, {})[0].Degraded);
  }
  std::vector<EvalOutcome> Exact = S.evaluateGeneration(Request, {});
  EXPECT_FALSE(Exact[0].Degraded);
  EXPECT_FALSE(Exact[0].CacheHit);
  expectSameResult(Exact[0].Result,
                   evaluateFitness(G, C.T, C.Fields, C.FP));
}

// Evolution under sustained 100% failure still terminates: degraded
// members are marked for the repair pass, the repair's re-evaluation
// degrades again, and the pessimistic bound is accepted rather than
// looping forever.
TEST(EvalSchedulerTest, EvolutionTerminatesUnderSustainedTotalFailure) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 2, 2, 555);
  EvolutionParams Params;
  Params.Seed = 31;
  Params.Fitness.Sim.MaxSteps = 60;
  Params.Fitness.Engine = EngineKind::Batch;
  Params.Scheduler.Retry.MaxAttempts = 2;
  Params.Scheduler.Retry.BaseDelayMicros = 1;
  Params.Scheduler.Retry.MaxDelayMicros = 10;

  ChaosSchedule Schedule;
  Schedule.site(ChaosSite::EngineReplica).FailProbability = 1.0;
  ScopedChaos Chaos(Schedule);
  Evolution E(T, Fields, Params);
  E.run(2);
  EXPECT_EQ(E.generation(), 2);
  EXPECT_GT(E.schedulerStats().GenomesDegraded, 0u);
  EXPECT_GT(E.schedulerStats().ItemsQuarantined, 0u);
}

// The generation watchdog: injected per-replica delays starve the
// heartbeat, the monitor reports stalls, and the run still completes.
TEST(EvalSchedulerTest, WatchdogReportsStallsUnderInjectedDelays) {
  Ctx C(5, 2);
  C.FP.Engine = EngineKind::Reference;
  SchedulerParams SP;
  SP.GenerationDeadlineSeconds = 0.01;
  std::atomic<int> StallReports{0};
  SP.OnStall = [&](double SilentSeconds) {
    ++StallReports;
    EXPECT_GT(SilentSeconds, 0.0);
  };

  ChaosSchedule Schedule;
  Schedule.site(ChaosSite::EngineReplica).DelayProbability = 1.0;
  Schedule.site(ChaosSite::EngineReplica).DelayMicros = 80000;
  ScopedChaos Chaos(Schedule);

  EvalScheduler S(C.T, C.Fields, C.FP, SP);
  Genome G = randomGenome(29);
  std::vector<const Genome *> Request{&G};
  std::vector<EvalOutcome> Out = S.evaluateGeneration(Request, {});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FALSE(Out[0].Degraded) << "delays are not failures";
  EXPECT_GE(S.stats().WatchdogStalls, 1u);
  EXPECT_GE(StallReports.load(), 1);
  EXPECT_GT(chaosStats().Delays, 0u);
  expectSameResult(Out[0].Result,
                   evaluateFitness(G, C.T, C.Fields, C.FP));
}

#endif // CA2A_CHAOS_ENABLED
