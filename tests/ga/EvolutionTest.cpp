//===- tests/ga/EvolutionTest.cpp - Genetic procedure unit tests ----------===//

#include "ga/Evolution.h"

#include "ga/Crossover.h"
#include "support/Rng.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <set>

using namespace ca2a;

namespace {

/// A small, fast training setup: 16x16 T-grid, 2 agents, a handful of
/// fields, short cutoff. Enough for the GA mechanics to be exercised in
/// milliseconds.
struct Fixture {
  Torus T{GridKind::Triangulate, 16};
  std::vector<InitialConfiguration> Fields;
  EvolutionParams Params;

  explicit Fixture(uint64_t Seed = 1, int NumFields = 6) {
    Fields = standardConfigurationSet(T, 2, NumFields - 3, 555);
    Params.Seed = Seed;
    Params.Fitness.Sim.MaxSteps = 60;
  }
};

} // namespace

TEST(EvolutionTest, InitialPopulationIsSortedAndSizedN) {
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  const auto &Pool = E.population();
  ASSERT_EQ(Pool.size(), 20u);
  for (size_t I = 1; I != Pool.size(); ++I)
    EXPECT_LE(Pool[I - 1].Fitness, Pool[I].Fitness);
  EXPECT_EQ(E.generation(), 0);
  EXPECT_EQ(E.evaluations(), 20);
}

TEST(EvolutionTest, PopulationSizeInvariantAcrossGenerations) {
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  for (int G = 0; G != 5; ++G) {
    E.stepGeneration();
    EXPECT_EQ(E.population().size(), 20u);
  }
  EXPECT_EQ(E.generation(), 5);
}

TEST(EvolutionTest, EvaluationBudgetPerGeneration) {
  // Each generation evaluates N/2 offspring (plus any dedup refills).
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  int After0 = E.evaluations();
  E.stepGeneration();
  EXPECT_GE(E.evaluations() - After0, 10);
}

TEST(EvolutionTest, NoDuplicateGenomesAfterGeneration) {
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  for (int G = 0; G != 3; ++G)
    E.stepGeneration();
  const auto &Pool = E.population();
  std::set<std::string> Seen;
  for (const Individual &Ind : Pool)
    EXPECT_TRUE(Seen.insert(Ind.G.toCompactString()).second)
        << "duplicate genome survived dedup";
}

TEST(EvolutionTest, BestEverIsMonotoneNonIncreasing) {
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  double Last = E.bestEver().Fitness;
  for (int G = 0; G != 8; ++G) {
    GenerationStats Stats = E.stepGeneration();
    EXPECT_LE(Stats.BestFitness, Last) << "elitist record regressed";
    Last = Stats.BestFitness;
  }
}

TEST(EvolutionTest, DiversityExchangeSwapsRankBlocks) {
  // After a generation the pool is NOT fully sorted: ranks 7..9 hold what
  // sorted to 10..12 and vice versa (N = 20, b = 3).
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  E.stepGeneration();
  const auto &Pool = E.population();
  // Reconstruct the sorted order and compare block placement.
  std::vector<double> Sorted;
  for (const Individual &Ind : Pool)
    Sorted.push_back(Ind.Fitness);
  std::sort(Sorted.begin(), Sorted.end());
  // Pool positions 7,8,9 must carry the sorted values 10,11,12 and vice
  // versa (as multisets, to tolerate fitness ties).
  std::multiset<double> PoolBlockA{Pool[7].Fitness, Pool[8].Fitness,
                                   Pool[9].Fitness};
  std::multiset<double> SortedBlockB{Sorted[10], Sorted[11], Sorted[12]};
  EXPECT_EQ(PoolBlockA, SortedBlockB);
  std::multiset<double> PoolBlockB{Pool[10].Fitness, Pool[11].Fitness,
                                   Pool[12].Fitness};
  std::multiset<double> SortedBlockA{Sorted[7], Sorted[8], Sorted[9]};
  EXPECT_EQ(PoolBlockB, SortedBlockA);
  // Outside the exchanged blocks the pool is sorted.
  for (size_t I = 1; I != 7; ++I)
    EXPECT_LE(Pool[I - 1].Fitness, Pool[I].Fitness);
  for (size_t I = 14; I != 20; ++I)
    EXPECT_LE(Pool[I - 1].Fitness, Pool[I].Fitness);
}

TEST(EvolutionTest, DeterministicPerSeed) {
  Fixture A(77), B(77), C(78);
  Evolution EA(A.T, A.Fields, A.Params);
  Evolution EB(B.T, B.Fields, B.Params);
  Evolution EC(C.T, C.Fields, C.Params);
  Individual IA = EA.run(4);
  Individual IB = EB.run(4);
  Individual IC = EC.run(4);
  EXPECT_EQ(IA.G, IB.G);
  EXPECT_DOUBLE_EQ(IA.Fitness, IB.Fitness);
  // Different seed: almost surely a different best genome.
  EXPECT_NE(IA.G, IC.G);
}

TEST(EvolutionTest, GenerationStatsAreConsistent) {
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  GenerationStats Stats = E.stepGeneration();
  EXPECT_EQ(Stats.Generation, 1);
  EXPECT_GT(Stats.Evaluations, 20);
  EXPECT_GE(Stats.MeanFitness, Stats.BestFitness);
  EXPECT_DOUBLE_EQ(Stats.BestFitness, E.bestEver().Fitness);
}

TEST(EvolutionTest, RunInvokesCallbackPerGeneration) {
  Fixture F;
  Evolution E(F.T, F.Fields, F.Params);
  int Calls = 0;
  E.run(5, [&Calls](const GenerationStats &S) {
    ++Calls;
    EXPECT_EQ(S.Generation, Calls);
  });
  EXPECT_EQ(Calls, 5);
}

TEST(EvolutionTest, CrossoverPathIsDeterministicAndKeepsInvariants) {
  Fixture A(31), B(31);
  A.Params.CrossoverProbability = 1.0;
  B.Params.CrossoverProbability = 1.0;
  Evolution EA(A.T, A.Fields, A.Params);
  Evolution EB(B.T, B.Fields, B.Params);
  for (int G = 0; G != 4; ++G) {
    EA.stepGeneration();
    EB.stepGeneration();
    EXPECT_EQ(EA.population().size(), 20u);
  }
  Individual IA = EA.bestEver();
  Individual IB = EB.bestEver();
  EXPECT_EQ(IA.G, IB.G) << "crossover path broke determinism";
  // Still no duplicates in the pool.
  std::set<std::string> Seen;
  for (const Individual &Ind : EA.population())
    EXPECT_TRUE(Seen.insert(Ind.G.toCompactString()).second);
}

TEST(EvolutionTest, CrossoverProbabilityChangesTheTrajectory) {
  Fixture A(32), B(32);
  B.Params.CrossoverProbability = 1.0;
  Evolution EA(A.T, A.Fields, A.Params);
  Evolution EB(B.T, B.Fields, B.Params);
  // Same seed, different variation operator: after a few generations the
  // pools almost surely differ.
  EA.run(5);
  EB.run(5);
  bool AnyDifferent = false;
  for (size_t I = 0; I != 20; ++I)
    AnyDifferent |= !(EA.population()[I].G == EB.population()[I].G);
  EXPECT_TRUE(AnyDifferent);
}

namespace {

/// Replica of the pre-scheduler generation loop: every child is evaluated
/// exhaustively through evaluateFitness — duplicates included — and
/// deduplication happens only inside selection. Pins that the scheduler's
/// pre-evaluation dedup, batching, and pruning leave the evolutionary
/// trajectory bit-identical to this exhaustive reference.
struct LegacyGa {
  const Torus &T;
  const std::vector<InitialConfiguration> &Fields;
  EvolutionParams Params;
  Rng R;
  std::vector<Individual> Pool;
  Individual BestEver;
  int Evaluations = 0;

  LegacyGa(const Torus &T, const std::vector<InitialConfiguration> &Fields,
           const EvolutionParams &Params)
      : T(T), Fields(Fields), Params(Params), R(Params.Seed) {
    for (int I = 0; I != Params.PopulationSize; ++I)
      Pool.push_back(evaluate(Genome::random(R, Params.Dims)));
    sortPool();
    BestEver = Pool.front();
  }

  Individual evaluate(Genome G) {
    FitnessResult Result = evaluateFitness(G, T, Fields, Params.Fitness);
    ++Evaluations;
    Individual Ind;
    Ind.G = std::move(G);
    Ind.Fitness = Result.Fitness;
    Ind.SolvedFields = Result.SolvedFields;
    Ind.CompletelySuccessful = Result.completelySuccessful();
    return Ind;
  }

  void sortPool() {
    std::stable_sort(Pool.begin(), Pool.end(),
                     [](const Individual &A, const Individual &B) {
                       return A.Fitness < B.Fitness;
                     });
  }

  void step() {
    int NumOffspring = Params.PopulationSize / 2;
    for (int I = 0; I != NumOffspring; ++I) {
      Genome Child = Pool[static_cast<size_t>(I)].G;
      if (Params.CrossoverProbability > 0.0 &&
          R.bernoulli(Params.CrossoverProbability)) {
        int J = static_cast<int>(
            R.uniformInt(static_cast<uint64_t>(NumOffspring - 1)));
        if (J >= I)
          ++J;
        Child = crossoverOnePoint(Child, Pool[static_cast<size_t>(J)].G, R);
      }
      Pool.push_back(evaluate(mutate(Child, Params.Mutation, R)));
    }
    sortPool();
    std::vector<Individual> Unique;
    for (Individual &Ind : Pool) {
      bool Duplicate = false;
      for (const Individual &Kept : Unique)
        Duplicate |= (Kept.G == Ind.G);
      if (!Duplicate)
        Unique.push_back(std::move(Ind));
    }
    Pool = std::move(Unique);
    size_t N = static_cast<size_t>(Params.PopulationSize);
    if (Pool.size() > N)
      Pool.resize(N);
    while (Pool.size() < N)
      Pool.push_back(evaluate(Genome::random(R, Params.Dims)));
    sortPool();
    if (Pool.front().Fitness < BestEver.Fitness)
      BestEver = Pool.front();
    int Half = Params.PopulationSize / 2, B = Params.ExchangeCount;
    for (int I = 0; I != B; ++I)
      std::swap(Pool[static_cast<size_t>(Half - B + I)],
                Pool[static_cast<size_t>(Half + I)]);
  }
};

void expectSamePool(const std::vector<Individual> &Expected,
                    const std::vector<Individual> &Actual, int Gen) {
  ASSERT_EQ(Expected.size(), Actual.size());
  for (size_t I = 0; I != Expected.size(); ++I) {
    ASSERT_EQ(Expected[I].G, Actual[I].G)
        << "gen " << Gen << " rank " << I;
    ASSERT_DOUBLE_EQ(Expected[I].Fitness, Actual[I].Fitness);
    ASSERT_EQ(Expected[I].SolvedFields, Actual[I].SolvedFields);
  }
}

} // namespace

TEST(EvolutionTest, TrajectoryMatchesLegacyExhaustiveLoop) {
  // Low mutation probability: ~72% of children duplicate their parent, so
  // the pre-evaluation dedup path fires constantly — and must still
  // reproduce the exhaustive loop's pools bit for bit.
  Torus T{GridKind::Triangulate, 16};
  auto Fields = standardConfigurationSet(T, 2, 3, 555);
  EvolutionParams Params;
  Params.Seed = 101;
  Params.Fitness.Sim.MaxSteps = 60;
  Params.Mutation = MutationParams::uniform(0.01);

  LegacyGa Ref(T, Fields, Params);
  EvolutionParams Off = Params;
  Off.Scheduler.Enabled = false;
  Evolution ESched(T, Fields, Params); // Scheduler + pruning (defaults).
  Evolution EOff(T, Fields, Off);      // Legacy per-genome path.

  expectSamePool(Ref.Pool, ESched.population(), 0);
  expectSamePool(Ref.Pool, EOff.population(), 0);
  for (int Gen = 1; Gen <= 6; ++Gen) {
    Ref.step();
    ESched.stepGeneration();
    EOff.stepGeneration();
    expectSamePool(Ref.Pool, ESched.population(), Gen);
    expectSamePool(Ref.Pool, EOff.population(), Gen);
    ASSERT_EQ(Ref.BestEver.G, ESched.bestEver().G) << "gen " << Gen;
    ASSERT_EQ(Ref.BestEver.G, EOff.bestEver().G) << "gen " << Gen;
    ASSERT_EQ(Ref.Evaluations, ESched.evaluations())
        << "dropped duplicates must still count as requested evaluations";
    ASSERT_EQ(Ref.Evaluations, EOff.evaluations());
  }
  // Prove the dedup path was actually exercised: dropped duplicates count
  // as evaluations but never reach the scheduler.
  EXPECT_GT(static_cast<uint64_t>(ESched.evaluations()),
            ESched.schedulerStats().Requests);
}

TEST(EvolutionTest, ImprovesOnAnEasyTask) {
  // 2 agents, a few fields, 30 generations: the GA must beat the best
  // random individual it started from. (Deterministic via fixed seed.)
  Fixture F(20130101, 8);
  Evolution E(F.T, F.Fields, F.Params);
  double InitialBest = E.population().front().Fitness;
  Individual Best = E.run(30);
  EXPECT_LT(Best.Fitness, InitialBest);
}
