//===- tests/ga/CheckpointTest.cpp - Checkpoint/resume tests --------------===//
//
// The robustness guarantees of ga/Checkpoint.h: serialization round-trips
// bit-for-bit, corrupt or mismatched files are rejected with an error (not
// a crash or a silently wrong resume), and a run killed between
// generations resumes to exactly the state an uninterrupted run reaches.
//
//===----------------------------------------------------------------------===//

#include "ga/Checkpoint.h"
#include "ga/Pipeline.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

EvolutionParams miniEvolution() {
  EvolutionParams P;
  P.Seed = 7;
  P.Fitness.Sim.MaxSteps = 60;
  return P;
}

std::vector<InitialConfiguration> miniFields(const Torus &T) {
  return standardConfigurationSet(T, /*NumAgents=*/4, /*NumRandomFields=*/5,
                                  /*Seed=*/99);
}

/// Steps \p E a few generations and packages its snapshot as a checkpoint.
CheckpointData makeCheckpoint(const Torus &T, Evolution &E,
                              const EvolutionParams &Params,
                              int Generations) {
  for (int I = 0; I != Generations; ++I)
    E.stepGeneration();
  CheckpointData Data;
  Data.Grid = T.kind();
  Data.SideLength = T.sideLength();
  Data.Seed = Params.Seed;
  Data.Snapshot = E.snapshot();
  return Data;
}

void expectSameIndividual(const Individual &A, const Individual &B) {
  EXPECT_TRUE(A.G == B.G);
  EXPECT_EQ(A.Fitness, B.Fitness);
  EXPECT_EQ(A.SolvedFields, B.SolvedFields);
  EXPECT_EQ(A.CompletelySuccessful, B.CompletelySuccessful);
}

void expectSameSnapshot(const EvolutionSnapshot &A,
                        const EvolutionSnapshot &B) {
  EXPECT_EQ(A.Generation, B.Generation);
  EXPECT_EQ(A.Evaluations, B.Evaluations);
  EXPECT_EQ(A.RngState, B.RngState);
  EXPECT_EQ(A.Dims.States, B.Dims.States);
  EXPECT_EQ(A.Dims.Colors, B.Dims.Colors);
  ASSERT_EQ(A.Pool.size(), B.Pool.size());
  for (size_t I = 0; I != A.Pool.size(); ++I)
    expectSameIndividual(A.Pool[I], B.Pool[I]);
  expectSameIndividual(A.BestEver, B.BestEver);
}

} // namespace

TEST(CheckpointTest, SerializeParseRoundTripsExactly) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, E, Params, 3);

  auto Parsed = parseCheckpoint(serializeCheckpoint(Data));
  ASSERT_TRUE(Parsed) << Parsed.error().message();
  EXPECT_EQ(Parsed->Grid, Data.Grid);
  EXPECT_EQ(Parsed->SideLength, Data.SideLength);
  EXPECT_EQ(Parsed->Seed, Data.Seed);
  expectSameSnapshot(Parsed->Snapshot, Data.Snapshot);
}

TEST(CheckpointTest, SaveLoadRoundTripsThroughDisk) {
  Torus T(GridKind::Square, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, E, Params, 2);

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_roundtrip";
  std::string Path = checkpointRunPath(Dir, 0);
  std::remove(Path.c_str()); // A prior aborted run may have left one behind.
  EXPECT_FALSE(checkpointExists(Path));
  auto Saved = saveCheckpoint(Path, Data);
  ASSERT_TRUE(Saved) << Saved.error().message();
  EXPECT_TRUE(checkpointExists(Path));

  auto Loaded = loadCheckpoint(Path);
  ASSERT_TRUE(Loaded) << Loaded.error().message();
  expectSameSnapshot(Loaded->Snapshot, Data.Snapshot);
  std::remove(Path.c_str());
}

TEST(CheckpointTest, RejectsCorruptFiles) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  std::string Text = serializeCheckpoint(makeCheckpoint(T, E, Params, 1));

  // Bit flip in the middle of the payload: checksum mismatch.
  {
    std::string Bad = Text;
    size_t Mid = Bad.size() / 2;
    Bad[Mid] = Bad[Mid] == 'a' ? 'b' : 'a';
    auto Parsed = parseCheckpoint(Bad);
    EXPECT_FALSE(Parsed);
  }
  // Truncation (the crash-mid-write shape an atomic rename prevents, but
  // also what a full disk produces).
  {
    auto Parsed = parseCheckpoint(Text.substr(0, Text.size() / 2));
    EXPECT_FALSE(Parsed);
  }
  // Wrong version header.
  {
    std::string Bad = Text;
    size_t V = Bad.find("v1");
    ASSERT_NE(V, std::string::npos);
    Bad.replace(V, 2, "v9");
    auto Parsed = parseCheckpoint(Bad);
    EXPECT_FALSE(Parsed);
  }
  // Empty and garbage inputs.
  EXPECT_FALSE(parseCheckpoint(""));
  EXPECT_FALSE(parseCheckpoint("not a checkpoint at all\n"));
}

TEST(CheckpointTest, LoadReportsMissingFile) {
  auto Loaded = loadCheckpoint(::testing::TempDir() +
                               "/ca2a_ckpt_does_not_exist.ckpt");
  EXPECT_FALSE(Loaded);
}

TEST(CheckpointTest, ValidateRejectsMismatchedExperiments) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, E, Params, 1);

  EXPECT_TRUE(validateCheckpoint(Data, T.kind(), T.sideLength(), Params));
  EXPECT_FALSE(
      validateCheckpoint(Data, GridKind::Square, T.sideLength(), Params))
      << "wrong grid kind must be rejected";
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), 33, Params))
      << "wrong side length must be rejected";
  EvolutionParams OtherSeed = Params;
  OtherSeed.Seed = Params.Seed + 1;
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), T.sideLength(), OtherSeed))
      << "wrong seed must be rejected";
  EvolutionParams OtherDims = Params;
  OtherDims.Dims = GenomeDims{6, 3};
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), T.sideLength(), OtherDims))
      << "wrong FSM dimensions must be rejected";
  EvolutionParams OtherPool = Params;
  OtherPool.PopulationSize = Params.PopulationSize + 2;
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), T.sideLength(), OtherPool))
      << "wrong population size must be rejected";
}

TEST(CheckpointTest, ResumedEvolutionMatchesUninterruptedRun) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();

  // Reference: 6 generations in one go.
  Evolution Reference(T, miniFields(T), Params);
  for (int I = 0; I != 6; ++I)
    Reference.stepGeneration();

  // Interrupted: 3 generations, checkpoint through the full text format,
  // then 3 more in a brand-new Evolution.
  Evolution FirstHalf(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, FirstHalf, Params, 3);
  auto Parsed = parseCheckpoint(serializeCheckpoint(Data));
  ASSERT_TRUE(Parsed) << Parsed.error().message();
  Evolution Resumed(T, miniFields(T), Params, Parsed->Snapshot);
  EXPECT_EQ(Resumed.generation(), 3);
  for (int I = 0; I != 3; ++I)
    Resumed.stepGeneration();

  EXPECT_EQ(Resumed.generation(), Reference.generation());
  EXPECT_EQ(Resumed.evaluations(), Reference.evaluations());
  expectSameSnapshot(Resumed.snapshot(), Reference.snapshot());
}

TEST(CheckpointTest, KilledPipelineResumesToSameCandidates) {
  Torus T(GridKind::Triangulate, 16);
  PipelineParams Params;
  Params.NumRuns = 2;
  Params.TopPerRun = 2;
  Params.Generations = 4;
  Params.TrainingAgents = 4;
  Params.TrainingRandomFields = 4;
  Params.Evolution.Seed = 11;
  Params.Evolution.Fitness.Sim.MaxSteps = 60;
  Params.Reliability.NumRandomFields = 3;
  Params.Reliability.AgentCounts = {2, 4};
  Params.Reliability.Fitness.Sim.MaxSteps = 120;

  // Reference: the uninterrupted pipeline.
  PipelineResult Reference = runSelectionPipeline(T, Params);

  // "Killed" pipeline: same experiment stopped after 2 generations per run
  // (each generation checkpoints, so this leaves generation-2 checkpoints
  // behind — exactly what kill -9 during generation 3 would leave).
  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_pipeline";
  PipelineParams Killed = Params;
  Killed.CheckpointDir = Dir;
  Killed.Generations = 2;
  runSelectionPipeline(T, Killed);
  ASSERT_TRUE(checkpointExists(checkpointRunPath(Dir, 0)));
  ASSERT_TRUE(checkpointExists(checkpointRunPath(Dir, 1)));

  // Resume with the full budget; progress must report the restores.
  PipelineParams Resumed = Params;
  Resumed.CheckpointDir = Dir;
  Resumed.Resume = true;
  int Restored = 0, Rejected = 0;
  PipelineResult Result =
      runSelectionPipeline(T, Resumed, [&](const PipelineProgress &P) {
        if (P.S == PipelineProgress::Stage::CheckpointRestored)
          ++Restored;
        if (P.S == PipelineProgress::Stage::CheckpointRejected)
          ++Rejected;
      });
  EXPECT_EQ(Restored, Params.NumRuns);
  EXPECT_EQ(Rejected, 0);

  ASSERT_EQ(Result.Candidates.size(), Reference.Candidates.size());
  for (size_t I = 0; I != Result.Candidates.size(); ++I) {
    EXPECT_TRUE(Result.Candidates[I].G == Reference.Candidates[I].G)
        << "candidate " << I << " differs from the uninterrupted run";
    EXPECT_EQ(Result.Candidates[I].TrainingFitness,
              Reference.Candidates[I].TrainingFitness);
    EXPECT_EQ(Result.Candidates[I].SourceRun,
              Reference.Candidates[I].SourceRun);
  }
  for (int Run = 0; Run != Params.NumRuns; ++Run)
    std::remove(checkpointRunPath(Dir, Run).c_str());
}

TEST(CheckpointTest, MismatchedCheckpointIsRejectedAndRunRestarts) {
  Torus T(GridKind::Triangulate, 16);
  PipelineParams Params;
  Params.NumRuns = 1;
  Params.TopPerRun = 1;
  Params.Generations = 2;
  Params.TrainingAgents = 4;
  Params.TrainingRandomFields = 3;
  Params.Evolution.Seed = 5;
  Params.Evolution.Fitness.Sim.MaxSteps = 60;
  Params.Reliability.NumRandomFields = 2;
  Params.Reliability.AgentCounts = {2};
  Params.Reliability.Fitness.Sim.MaxSteps = 120;

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_mismatch";
  PipelineParams Seeded = Params;
  Seeded.CheckpointDir = Dir;
  runSelectionPipeline(T, Seeded);
  ASSERT_TRUE(checkpointExists(checkpointRunPath(Dir, 0)));

  // Different base seed: the stale checkpoint belongs to another
  // experiment and must be rejected, with the run starting fresh.
  PipelineParams Other = Params;
  Other.CheckpointDir = Dir;
  Other.Resume = true;
  Other.Evolution.Seed = 6;
  int Restored = 0, Rejected = 0;
  runSelectionPipeline(T, Other, [&](const PipelineProgress &P) {
    if (P.S == PipelineProgress::Stage::CheckpointRestored)
      ++Restored;
    if (P.S == PipelineProgress::Stage::CheckpointRejected)
      ++Rejected;
  });
  EXPECT_EQ(Restored, 0);
  EXPECT_EQ(Rejected, 1);
  std::remove(checkpointRunPath(Dir, 0).c_str());
}
