//===- tests/ga/CheckpointTest.cpp - Checkpoint/resume tests --------------===//
//
// The robustness guarantees of ga/Checkpoint.h: serialization round-trips
// bit-for-bit, corrupt or mismatched files are rejected with an error (not
// a crash or a silently wrong resume), and a run killed between
// generations resumes to exactly the state an uninterrupted run reaches.
//
//===----------------------------------------------------------------------===//

#include "ga/Checkpoint.h"
#include "ga/Pipeline.h"
#include "support/Chaos.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

EvolutionParams miniEvolution() {
  EvolutionParams P;
  P.Seed = 7;
  P.Fitness.Sim.MaxSteps = 60;
  return P;
}

std::vector<InitialConfiguration> miniFields(const Torus &T) {
  return standardConfigurationSet(T, /*NumAgents=*/4, /*NumRandomFields=*/5,
                                  /*Seed=*/99);
}

/// Steps \p E a few generations and packages its snapshot as a checkpoint.
CheckpointData makeCheckpoint(const Torus &T, Evolution &E,
                              const EvolutionParams &Params,
                              int Generations) {
  for (int I = 0; I != Generations; ++I)
    E.stepGeneration();
  CheckpointData Data;
  Data.Grid = T.kind();
  Data.SideLength = T.sideLength();
  Data.Seed = Params.Seed;
  Data.Snapshot = E.snapshot();
  return Data;
}

void expectSameIndividual(const Individual &A, const Individual &B) {
  EXPECT_TRUE(A.G == B.G);
  EXPECT_EQ(A.Fitness, B.Fitness);
  EXPECT_EQ(A.SolvedFields, B.SolvedFields);
  EXPECT_EQ(A.CompletelySuccessful, B.CompletelySuccessful);
}

void writeRawFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
}

void expectSameSnapshot(const EvolutionSnapshot &A,
                        const EvolutionSnapshot &B) {
  EXPECT_EQ(A.Generation, B.Generation);
  EXPECT_EQ(A.Evaluations, B.Evaluations);
  EXPECT_EQ(A.RngState, B.RngState);
  EXPECT_EQ(A.Dims.States, B.Dims.States);
  EXPECT_EQ(A.Dims.Colors, B.Dims.Colors);
  ASSERT_EQ(A.Pool.size(), B.Pool.size());
  for (size_t I = 0; I != A.Pool.size(); ++I)
    expectSameIndividual(A.Pool[I], B.Pool[I]);
  expectSameIndividual(A.BestEver, B.BestEver);
}

} // namespace

TEST(CheckpointTest, SerializeParseRoundTripsExactly) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, E, Params, 3);

  auto Parsed = parseCheckpoint(serializeCheckpoint(Data));
  ASSERT_TRUE(Parsed) << Parsed.error().message();
  EXPECT_EQ(Parsed->Grid, Data.Grid);
  EXPECT_EQ(Parsed->SideLength, Data.SideLength);
  EXPECT_EQ(Parsed->Seed, Data.Seed);
  expectSameSnapshot(Parsed->Snapshot, Data.Snapshot);
}

TEST(CheckpointTest, SaveLoadRoundTripsThroughDisk) {
  Torus T(GridKind::Square, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, E, Params, 2);

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_roundtrip";
  std::string Path = checkpointRunPath(Dir, 0);
  std::remove(Path.c_str()); // A prior aborted run may have left one behind.
  EXPECT_FALSE(checkpointExists(Path));
  auto Saved = saveCheckpoint(Path, Data);
  ASSERT_TRUE(Saved) << Saved.error().message();
  EXPECT_TRUE(checkpointExists(Path));

  auto Loaded = loadCheckpoint(Path);
  ASSERT_TRUE(Loaded) << Loaded.error().message();
  expectSameSnapshot(Loaded->Snapshot, Data.Snapshot);
  std::remove(Path.c_str());
}

TEST(CheckpointTest, RejectsCorruptFiles) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  std::string Text = serializeCheckpoint(makeCheckpoint(T, E, Params, 1));

  // Bit flip in the middle of the payload: checksum mismatch.
  {
    std::string Bad = Text;
    size_t Mid = Bad.size() / 2;
    Bad[Mid] = Bad[Mid] == 'a' ? 'b' : 'a';
    auto Parsed = parseCheckpoint(Bad);
    EXPECT_FALSE(Parsed);
  }
  // Truncation (the crash-mid-write shape an atomic rename prevents, but
  // also what a full disk produces).
  {
    auto Parsed = parseCheckpoint(Text.substr(0, Text.size() / 2));
    EXPECT_FALSE(Parsed);
  }
  // Wrong version header.
  {
    std::string Bad = Text;
    size_t V = Bad.find("v1");
    ASSERT_NE(V, std::string::npos);
    Bad.replace(V, 2, "v9");
    auto Parsed = parseCheckpoint(Bad);
    EXPECT_FALSE(Parsed);
  }
  // Empty and garbage inputs.
  EXPECT_FALSE(parseCheckpoint(""));
  EXPECT_FALSE(parseCheckpoint("not a checkpoint at all\n"));
}

TEST(CheckpointTest, LoadReportsMissingFile) {
  auto Loaded = loadCheckpoint(::testing::TempDir() +
                               "/ca2a_ckpt_does_not_exist.ckpt");
  EXPECT_FALSE(Loaded);
}

TEST(CheckpointTest, ValidateRejectsMismatchedExperiments) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, E, Params, 1);

  EXPECT_TRUE(validateCheckpoint(Data, T.kind(), T.sideLength(), Params));
  EXPECT_FALSE(
      validateCheckpoint(Data, GridKind::Square, T.sideLength(), Params))
      << "wrong grid kind must be rejected";
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), 33, Params))
      << "wrong side length must be rejected";
  EvolutionParams OtherSeed = Params;
  OtherSeed.Seed = Params.Seed + 1;
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), T.sideLength(), OtherSeed))
      << "wrong seed must be rejected";
  EvolutionParams OtherDims = Params;
  OtherDims.Dims = GenomeDims{6, 3};
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), T.sideLength(), OtherDims))
      << "wrong FSM dimensions must be rejected";
  EvolutionParams OtherPool = Params;
  OtherPool.PopulationSize = Params.PopulationSize + 2;
  EXPECT_FALSE(validateCheckpoint(Data, T.kind(), T.sideLength(), OtherPool))
      << "wrong population size must be rejected";
}

TEST(CheckpointTest, ResumedEvolutionMatchesUninterruptedRun) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();

  // Reference: 6 generations in one go.
  Evolution Reference(T, miniFields(T), Params);
  for (int I = 0; I != 6; ++I)
    Reference.stepGeneration();

  // Interrupted: 3 generations, checkpoint through the full text format,
  // then 3 more in a brand-new Evolution.
  Evolution FirstHalf(T, miniFields(T), Params);
  CheckpointData Data = makeCheckpoint(T, FirstHalf, Params, 3);
  auto Parsed = parseCheckpoint(serializeCheckpoint(Data));
  ASSERT_TRUE(Parsed) << Parsed.error().message();
  Evolution Resumed(T, miniFields(T), Params, Parsed->Snapshot);
  EXPECT_EQ(Resumed.generation(), 3);
  for (int I = 0; I != 3; ++I)
    Resumed.stepGeneration();

  EXPECT_EQ(Resumed.generation(), Reference.generation());
  EXPECT_EQ(Resumed.evaluations(), Reference.evaluations());
  expectSameSnapshot(Resumed.snapshot(), Reference.snapshot());
}

TEST(CheckpointTest, KilledPipelineResumesToSameCandidates) {
  Torus T(GridKind::Triangulate, 16);
  PipelineParams Params;
  Params.NumRuns = 2;
  Params.TopPerRun = 2;
  Params.Generations = 4;
  Params.TrainingAgents = 4;
  Params.TrainingRandomFields = 4;
  Params.Evolution.Seed = 11;
  Params.Evolution.Fitness.Sim.MaxSteps = 60;
  Params.Reliability.NumRandomFields = 3;
  Params.Reliability.AgentCounts = {2, 4};
  Params.Reliability.Fitness.Sim.MaxSteps = 120;

  // Reference: the uninterrupted pipeline.
  PipelineResult Reference = runSelectionPipeline(T, Params);

  // "Killed" pipeline: same experiment stopped after 2 generations per run
  // (each generation checkpoints, so this leaves generation-2 checkpoints
  // behind — exactly what kill -9 during generation 3 would leave).
  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_pipeline";
  PipelineParams Killed = Params;
  Killed.CheckpointDir = Dir;
  Killed.Generations = 2;
  runSelectionPipeline(T, Killed);
  ASSERT_TRUE(checkpointExists(checkpointRunPath(Dir, 0)));
  ASSERT_TRUE(checkpointExists(checkpointRunPath(Dir, 1)));

  // Resume with the full budget; progress must report the restores.
  PipelineParams Resumed = Params;
  Resumed.CheckpointDir = Dir;
  Resumed.Resume = true;
  int Restored = 0, Rejected = 0;
  PipelineResult Result =
      runSelectionPipeline(T, Resumed, [&](const PipelineProgress &P) {
        if (P.S == PipelineProgress::Stage::CheckpointRestored)
          ++Restored;
        if (P.S == PipelineProgress::Stage::CheckpointRejected)
          ++Rejected;
      });
  EXPECT_EQ(Restored, Params.NumRuns);
  EXPECT_EQ(Rejected, 0);

  ASSERT_EQ(Result.Candidates.size(), Reference.Candidates.size());
  for (size_t I = 0; I != Result.Candidates.size(); ++I) {
    EXPECT_TRUE(Result.Candidates[I].G == Reference.Candidates[I].G)
        << "candidate " << I << " differs from the uninterrupted run";
    EXPECT_EQ(Result.Candidates[I].TrainingFitness,
              Reference.Candidates[I].TrainingFitness);
    EXPECT_EQ(Result.Candidates[I].SourceRun,
              Reference.Candidates[I].SourceRun);
  }
  for (int Run = 0; Run != Params.NumRuns; ++Run)
    std::remove(checkpointRunPath(Dir, Run).c_str());
}

TEST(CheckpointTest, MismatchedCheckpointIsRejectedAndRunRestarts) {
  Torus T(GridKind::Triangulate, 16);
  PipelineParams Params;
  Params.NumRuns = 1;
  Params.TopPerRun = 1;
  Params.Generations = 2;
  Params.TrainingAgents = 4;
  Params.TrainingRandomFields = 3;
  Params.Evolution.Seed = 5;
  Params.Evolution.Fitness.Sim.MaxSteps = 60;
  Params.Reliability.NumRandomFields = 2;
  Params.Reliability.AgentCounts = {2};
  Params.Reliability.Fitness.Sim.MaxSteps = 120;

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_mismatch";
  PipelineParams Seeded = Params;
  Seeded.CheckpointDir = Dir;
  runSelectionPipeline(T, Seeded);
  ASSERT_TRUE(checkpointExists(checkpointRunPath(Dir, 0)));

  // Different base seed: the stale checkpoint belongs to another
  // experiment and must be rejected, with the run starting fresh.
  PipelineParams Other = Params;
  Other.CheckpointDir = Dir;
  Other.Resume = true;
  Other.Evolution.Seed = 6;
  int Restored = 0, Rejected = 0;
  runSelectionPipeline(T, Other, [&](const PipelineProgress &P) {
    if (P.S == PipelineProgress::Stage::CheckpointRestored)
      ++Restored;
    if (P.S == PipelineProgress::Stage::CheckpointRejected)
      ++Rejected;
  });
  EXPECT_EQ(Restored, 0);
  EXPECT_EQ(Rejected, 1);
  std::remove(checkpointRunPath(Dir, 0).c_str());
}

// Satellite: the corruption matrix. Every damage shape a real filesystem
// can produce must map to a *typed* error, because the recovery path
// treats the codes differently (Injected/Io retry, Corrupt/VersionMismatch
// fall through to the backup).
TEST(CheckpointTest, CorruptionMatrixYieldsTypedErrors) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  std::string Text = serializeCheckpoint(makeCheckpoint(T, E, Params, 1));

  // Truncation: a crash mid-write or a full disk.
  {
    auto Parsed = parseCheckpoint(Text.substr(0, Text.size() / 2));
    ASSERT_FALSE(Parsed);
    EXPECT_EQ(Parsed.error().code(), ErrorCode::Corrupt)
        << Parsed.error().message();
  }
  // Single flipped byte mid-payload — exactly what the chaos layer's
  // corruption injector does to a durable write.
  {
    std::string Bad = Text;
    chaosCorruptPayload(Bad, /*Draw=*/Bad.size() / 2);
    ASSERT_NE(Bad, Text);
    auto Parsed = parseCheckpoint(Bad);
    ASSERT_FALSE(Parsed);
    EXPECT_EQ(Parsed.error().code(), ErrorCode::Corrupt)
        << Parsed.error().message();
  }
  // Stale format version: a checkpoint from a future (or ancient) build.
  {
    std::string Bad = Text;
    size_t V = Bad.find("v1");
    ASSERT_NE(V, std::string::npos);
    Bad.replace(V, 2, "v9");
    auto Parsed = parseCheckpoint(Bad);
    ASSERT_FALSE(Parsed);
    EXPECT_EQ(Parsed.error().code(), ErrorCode::VersionMismatch)
        << Parsed.error().message();
  }
  // Empty file: created but never written.
  {
    auto Parsed = parseCheckpoint("");
    ASSERT_FALSE(Parsed);
    EXPECT_EQ(Parsed.error().code(), ErrorCode::Corrupt);
  }
  // loadCheckpoint preserves the parse error's code through its rewrap.
  {
    std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_typed";
    std::filesystem::create_directories(Dir);
    std::string Path = Dir + "/damaged.ckpt";
    writeRawFile(Path, Text.substr(0, Text.size() / 2));
    auto Loaded = loadCheckpoint(Path);
    ASSERT_FALSE(Loaded);
    EXPECT_EQ(Loaded.error().code(), ErrorCode::Corrupt);
    std::remove(Path.c_str());
  }
}

// saveCheckpoint must keep the newest *valid* snapshot in ".bak": a valid
// previous checkpoint is promoted, a corrupt one is not (promoting it
// would evict the last good backup and leave both generations bad).
TEST(CheckpointTest, SavePromotesOnlyValidPreviousToBackup) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData A = makeCheckpoint(T, E, Params, 1);
  CheckpointData B = makeCheckpoint(T, E, Params, 1);
  CheckpointData C = makeCheckpoint(T, E, Params, 1);
  ASSERT_NE(A.Snapshot.Generation, B.Snapshot.Generation);

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_backup";
  std::string Path = Dir + "/run.ckpt";
  std::string Bak = checkpointBackupPath(Path);
  std::remove(Path.c_str());
  std::remove(Bak.c_str());

  // First save: no previous checkpoint, so no backup appears.
  ASSERT_TRUE(saveCheckpoint(Path, A));
  EXPECT_FALSE(checkpointExists(Bak));

  // Second save: the valid A is promoted to .bak.
  ASSERT_TRUE(saveCheckpoint(Path, B));
  ASSERT_TRUE(checkpointExists(Bak));
  auto BakData = loadCheckpoint(Bak);
  ASSERT_TRUE(BakData) << BakData.error().message();
  EXPECT_EQ(BakData->Snapshot.Generation, A.Snapshot.Generation);

  // Damage the main file, then save again: the corrupt file must NOT be
  // promoted — the backup keeps holding A, the main file becomes C.
  writeRawFile(Path, "ca2a-evolution-checkpoint v1\ngarbage\n");
  ASSERT_TRUE(saveCheckpoint(Path, C));
  auto BakData2 = loadCheckpoint(Bak);
  ASSERT_TRUE(BakData2) << BakData2.error().message();
  EXPECT_EQ(BakData2->Snapshot.Generation, A.Snapshot.Generation);
  auto Main = loadCheckpoint(Path);
  ASSERT_TRUE(Main) << Main.error().message();
  EXPECT_EQ(Main->Snapshot.Generation, C.Snapshot.Generation);

  std::remove(Path.c_str());
  std::remove(Bak.c_str());
}

TEST(CheckpointTest, RecoveryFallsBackToBackup) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData A = makeCheckpoint(T, E, Params, 1);
  CheckpointData B = makeCheckpoint(T, E, Params, 1);

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_recover";
  std::string Path = Dir + "/run.ckpt";
  std::string Bak = checkpointBackupPath(Path);
  std::remove(Path.c_str());
  std::remove(Bak.c_str());
  ASSERT_TRUE(saveCheckpoint(Path, A));
  ASSERT_TRUE(saveCheckpoint(Path, B)); // A is now the backup.

  // Bit rot hits the primary after the save: recovery resumes from A and
  // says so.
  {
    auto Text = serializeCheckpoint(B);
    chaosCorruptPayload(Text, Text.size() / 2);
    writeRawFile(Path, Text);
    CheckpointLoadReport Report;
    auto Loaded = loadCheckpointWithRecovery(Path, &Report);
    ASSERT_TRUE(Loaded) << Loaded.error().message();
    EXPECT_TRUE(Report.UsedBackup);
    EXPECT_NE(Report.Note.find("backup"), std::string::npos) << Report.Note;
    expectSameSnapshot(Loaded->Snapshot, A.Snapshot);
  }
  // Both generations corrupt: a combined, typed error — not a crash and
  // not a silent fresh start.
  {
    writeRawFile(Bak, "also ruined\n");
    CheckpointLoadReport Report;
    auto Loaded = loadCheckpointWithRecovery(Path, &Report);
    ASSERT_FALSE(Loaded);
    EXPECT_EQ(Loaded.error().code(), ErrorCode::Corrupt);
    EXPECT_NE(Loaded.error().message().find("primary"), std::string::npos);
    EXPECT_NE(Loaded.error().message().find("backup"), std::string::npos);
    EXPECT_FALSE(Report.UsedBackup);
  }
  std::remove(Path.c_str());
  std::remove(Bak.c_str());
}

#ifdef CA2A_CHAOS_ENABLED

// The full crash-recovery story under injection: a save whose payload the
// chaos layer silently corrupts (torn write / bit rot) still promoted the
// previous good snapshot to .bak, so recovery resumes from there.
TEST(CheckpointTest, ChaosCorruptedSaveIsAbsorbedByBackup) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData A = makeCheckpoint(T, E, Params, 1);
  CheckpointData B = makeCheckpoint(T, E, Params, 1);

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_chaos_save";
  std::string Path = Dir + "/run.ckpt";
  std::string Bak = checkpointBackupPath(Path);
  std::remove(Path.c_str());
  std::remove(Bak.c_str());
  ASSERT_TRUE(saveCheckpoint(Path, A)); // Clean save first.

  {
    ChaosSchedule Schedule;
    Schedule.site(ChaosSite::CheckpointWrite).CorruptProbability = 1.0;
    ScopedChaos Chaos(Schedule);
    // The save itself "succeeds" — corruption is silent, like real bit rot.
    ASSERT_TRUE(saveCheckpoint(Path, B));
  }
  auto Direct = loadCheckpoint(Path);
  ASSERT_FALSE(Direct) << "corrupted save must not load";
  // The flipped byte may land in the payload (Corrupt) or in the header
  // line (VersionMismatch); both are deterministic, non-retryable codes.
  EXPECT_TRUE(Direct.error().code() == ErrorCode::Corrupt ||
              Direct.error().code() == ErrorCode::VersionMismatch)
      << Direct.error().message();

  CheckpointLoadReport Report;
  auto Recovered = loadCheckpointWithRecovery(Path, &Report);
  ASSERT_TRUE(Recovered) << Recovered.error().message();
  EXPECT_TRUE(Report.UsedBackup);
  expectSameSnapshot(Recovered->Snapshot, A.Snapshot);
  std::remove(Path.c_str());
  std::remove(Bak.c_str());
}

// Injected read failures are transient: the recovery loader retries them
// with backoff (unlike corruption, which is deterministic and isn't).
TEST(CheckpointTest, ChaosReadFailuresAreRetriedThenSurfaceTyped) {
  Torus T(GridKind::Triangulate, 16);
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  CheckpointData A = makeCheckpoint(T, E, Params, 1);

  std::string Dir = ::testing::TempDir() + "/ca2a_ckpt_chaos_read";
  std::string Path = Dir + "/run.ckpt";
  std::remove(Path.c_str());
  std::remove(checkpointBackupPath(Path).c_str());
  ASSERT_TRUE(saveCheckpoint(Path, A));

  RetryPolicy Fast;
  Fast.MaxAttempts = 3;
  Fast.BaseDelayMicros = 1;
  Fast.MaxDelayMicros = 10;
  {
    ChaosSchedule Schedule;
    Schedule.site(ChaosSite::CheckpointRead).FailProbability = 1.0;
    ScopedChaos Chaos(Schedule);
    CheckpointLoadReport Report;
    auto Loaded = loadCheckpointWithRecovery(Path, &Report, Fast);
    ASSERT_FALSE(Loaded) << "every read is injected to fail";
    EXPECT_EQ(Loaded.error().code(), ErrorCode::Injected);
    // Primary and backup each burn MaxAttempts-1 retries.
    EXPECT_EQ(Report.Retries, 2u * (Fast.MaxAttempts - 1));
  }
  // Chaos gone: the same file loads cleanly.
  auto Loaded = loadCheckpointWithRecovery(Path);
  ASSERT_TRUE(Loaded) << Loaded.error().message();
  expectSameSnapshot(Loaded->Snapshot, A.Snapshot);
  std::remove(Path.c_str());
}

#endif // CA2A_CHAOS_ENABLED

//===----------------------------------------------------------------------===//
// Migrant blocks (the island-model wire format, dist/Mailbox transport)
//===----------------------------------------------------------------------===//

namespace {

MigrantBlock makeMigrantBlock(const Torus &T) {
  EvolutionParams Params = miniEvolution();
  Evolution E(T, miniFields(T), Params);
  E.stepGeneration();
  MigrantBlock B;
  B.FromIsland = 1;
  B.ToIsland = 2;
  B.Sequence = 3;
  B.ContextFingerprint = 0xabad1dea;
  B.Dims = E.snapshot().Dims;
  B.Migrants = E.selectMigrants(3);
  return B;
}

} // namespace

TEST(CheckpointTest, MigrantBlockRoundTripsExactly) {
  Torus T(GridKind::Triangulate, 16);
  MigrantBlock B = makeMigrantBlock(T);
  std::string Text = serializeMigrantBlock(B);
  auto Parsed = parseMigrantBlock(Text);
  ASSERT_TRUE(Parsed) << Parsed.error().message();
  EXPECT_EQ(Parsed->FromIsland, B.FromIsland);
  EXPECT_EQ(Parsed->ToIsland, B.ToIsland);
  EXPECT_EQ(Parsed->Sequence, B.Sequence);
  EXPECT_EQ(Parsed->ContextFingerprint, B.ContextFingerprint);
  ASSERT_EQ(Parsed->Migrants.size(), B.Migrants.size());
  for (size_t I = 0; I != B.Migrants.size(); ++I)
    expectSameIndividual(Parsed->Migrants[I], B.Migrants[I]);
  // Serialization is canonical: re-serializing reproduces the bytes the
  // mailbox idempotence check compares.
  EXPECT_EQ(serializeMigrantBlock(*Parsed), Text);
}

TEST(CheckpointTest, MigrantCorruptionMatrixYieldsTypedErrors) {
  Torus T(GridKind::Triangulate, 16);
  std::string Text = serializeMigrantBlock(makeMigrantBlock(T));

  // Truncation at every structural boundary: never a crash, never a
  // silently short block — always a typed Corrupt error.
  for (size_t Frac : {1u, 2u, 3u}) {
    auto Parsed = parseMigrantBlock(Text.substr(0, Frac * Text.size() / 4));
    ASSERT_FALSE(Parsed);
    EXPECT_EQ(Parsed.error().code(), ErrorCode::Corrupt);
  }

  // A flipped payload byte breaks the checksum.
  {
    std::string Bad = Text;
    size_t Mid = Bad.size() / 2;
    Bad[Mid] = Bad[Mid] == '0' ? '1' : '0';
    auto Parsed = parseMigrantBlock(Bad);
    ASSERT_FALSE(Parsed);
    EXPECT_EQ(Parsed.error().code(), ErrorCode::Corrupt);
    EXPECT_NE(Parsed.error().message().find("checksum"), std::string::npos);
  }

  // Unknown wire version is a VersionMismatch, not Corrupt: the reader
  // should say "upgrade me", not "your disk is broken".
  {
    std::string Bad = Text;
    size_t V = Bad.find("v1");
    ASSERT_NE(V, std::string::npos);
    Bad.replace(V, 2, "v9");
    auto Parsed = parseMigrantBlock(Bad);
    ASSERT_FALSE(Parsed);
    EXPECT_EQ(Parsed.error().code(), ErrorCode::VersionMismatch);
  }

  EXPECT_FALSE(parseMigrantBlock(""));
  EXPECT_FALSE(parseMigrantBlock("not a migrant block\n"));
}

TEST(CheckpointTest, MigrantValidationRejectsMisrouting) {
  Torus T(GridKind::Triangulate, 16);
  MigrantBlock B = makeMigrantBlock(T);

  ASSERT_TRUE(validateMigrantBlock(B, 1, 2, 3, B.ContextFingerprint));
  // Fingerprint 0 = "don't check" (a fresh island has no context yet).
  ASSERT_TRUE(validateMigrantBlock(B, 1, 2, 3, 0));

  auto WrongRoute = validateMigrantBlock(B, 0, 2, 3, B.ContextFingerprint);
  ASSERT_FALSE(WrongRoute);
  EXPECT_EQ(WrongRoute.error().code(), ErrorCode::Corrupt);

  auto WrongSeq = validateMigrantBlock(B, 1, 2, 4, B.ContextFingerprint);
  ASSERT_FALSE(WrongSeq);
  EXPECT_EQ(WrongSeq.error().code(), ErrorCode::Corrupt);
  EXPECT_NE(WrongSeq.error().message().find("sequence"), std::string::npos);

  auto WrongContext = validateMigrantBlock(B, 1, 2, 3, 0xdeadbeef);
  ASSERT_FALSE(WrongContext);
  EXPECT_EQ(WrongContext.error().code(), ErrorCode::Corrupt);
}
