//===- tests/ga/PipelineSelectionTest.cpp - Selection-pipeline tests ------===//

#include "ga/Pipeline.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

/// Miniature pipeline: 2 runs, few generations, tiny field sets — fast
/// enough for the unit-test run while exercising every stage.
PipelineParams miniParams() {
  PipelineParams P;
  P.NumRuns = 2;
  P.TopPerRun = 2;
  P.Generations = 25;
  P.TrainingAgents = 2;
  P.TrainingRandomFields = 4;
  P.TrainingFieldSeed = 11;
  P.Evolution.Seed = 7;
  P.Evolution.Fitness.Sim.MaxSteps = 120;
  P.Reliability.AgentCounts = {2, 256};
  P.Reliability.NumRandomFields = 4;
  P.Reliability.Fitness.Sim.MaxSteps = 300;
  return P;
}

} // namespace

TEST(PipelineSelectionTest, ProducesRankedCandidates) {
  Torus T(GridKind::Triangulate, 16);
  PipelineResult Result = runSelectionPipeline(T, miniParams());
  // Candidates only exist if some run produced completely successful FSMs;
  // the k=2/tiny-field task is easy enough that 25 generations find some.
  ASSERT_FALSE(Result.Candidates.empty())
      << "mini pipeline found no successful FSM";
  // Ranking: reliable ones first, by total mean time.
  bool SeenUnreliable = false;
  double LastTime = -1.0;
  for (const RankedCandidate &C : Result.Candidates) {
    if (!C.reliable()) {
      SeenUnreliable = true;
      continue;
    }
    EXPECT_FALSE(SeenUnreliable) << "reliable candidate after unreliable one";
    EXPECT_GE(C.Report.totalMeanCommTime(), LastTime);
    LastTime = C.Report.totalMeanCommTime();
  }
  EXPECT_LE(Result.Candidates.size(),
            static_cast<size_t>(miniParams().NumRuns * miniParams().TopPerRun));
}

TEST(PipelineSelectionTest, EmitsProgressForEveryStage) {
  Torus T(GridKind::Triangulate, 16);
  PipelineParams P = miniParams();
  int RunsStarted = 0, Generations = 0, RunsFinished = 0, Tested = 0;
  PipelineResult Result =
      runSelectionPipeline(T, P, [&](const PipelineProgress &Progress) {
        switch (Progress.S) {
        case PipelineProgress::Stage::RunStarted:
          ++RunsStarted;
          break;
        case PipelineProgress::Stage::Generation:
          ++Generations;
          break;
        case PipelineProgress::Stage::RunFinished:
          ++RunsFinished;
          break;
        case PipelineProgress::Stage::CandidateTested:
          ++Tested;
          break;
        case PipelineProgress::Stage::CheckpointRestored:
        case PipelineProgress::Stage::CheckpointRejected:
        case PipelineProgress::Stage::CheckpointFailed:
          ADD_FAILURE() << "checkpoint event without a checkpoint dir";
          break;
        }
      });
  EXPECT_EQ(RunsStarted, P.NumRuns);
  EXPECT_EQ(RunsFinished, P.NumRuns);
  EXPECT_EQ(Generations, P.NumRuns * P.Generations);
  EXPECT_EQ(Tested, static_cast<int>(Result.Candidates.size()));
}

TEST(PipelineSelectionTest, DeterministicPerSeed) {
  Torus T(GridKind::Triangulate, 16);
  PipelineResult A = runSelectionPipeline(T, miniParams());
  PipelineResult B = runSelectionPipeline(T, miniParams());
  ASSERT_EQ(A.Candidates.size(), B.Candidates.size());
  for (size_t I = 0; I != A.Candidates.size(); ++I)
    EXPECT_EQ(A.Candidates[I].G, B.Candidates[I].G);
}

TEST(PipelineSelectionTest, CandidatesAreDistinct) {
  Torus T(GridKind::Triangulate, 16);
  PipelineResult Result = runSelectionPipeline(T, miniParams());
  for (size_t I = 0; I != Result.Candidates.size(); ++I)
    for (size_t J = I + 1; J != Result.Candidates.size(); ++J)
      EXPECT_NE(Result.Candidates[I].G, Result.Candidates[J].G)
          << "duplicate candidate survived cross-run dedup";
}

TEST(PipelineSelectionTest, WinnerIsReliableWhenPresent) {
  Torus T(GridKind::Triangulate, 16);
  PipelineResult Result = runSelectionPipeline(T, miniParams());
  if (Result.hasWinner()) {
    EXPECT_TRUE(Result.winner().reliable());
    EXPECT_EQ(&Result.winner(), &Result.Candidates.front());
  }
  EXPECT_EQ(Result.numReliable() > 0, Result.hasWinner());
}
