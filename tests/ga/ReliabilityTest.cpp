//===- tests/ga/ReliabilityTest.cpp - Reliability filter unit tests -------===//

#include "ga/Reliability.h"

#include "agent/BestAgents.h"
#include "grid/Distance.h"
#include "gtest/gtest.h"

using namespace ca2a;

namespace {
ReliabilityParams smallParams() {
  ReliabilityParams P;
  P.AgentCounts = {2, 8, 256};
  P.NumRandomFields = 20;
  P.Fitness.Sim.MaxSteps = 1000;
  return P;
}
} // namespace

TEST(ReliabilityTest, RowsMatchRequestedDensities) {
  Torus T(GridKind::Triangulate, 16);
  ReliabilityReport R =
      testReliability(bestTriangulateAgent(), T, smallParams());
  ASSERT_EQ(R.Rows.size(), 3u);
  EXPECT_EQ(R.Rows[0].NumAgents, 2);
  EXPECT_EQ(R.Rows[1].NumAgents, 8);
  EXPECT_EQ(R.Rows[2].NumAgents, 256);
  // Non-packed densities use NumRandomFields + 3 manual designs.
  EXPECT_EQ(R.Rows[0].NumFields, 23);
  EXPECT_EQ(R.Rows[1].NumFields, 23);
  // The packed density has exactly one possible field.
  EXPECT_EQ(R.Rows[2].NumFields, 1);
}

TEST(ReliabilityTest, PackedRowEqualsDiameterMinusOne) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    ReliabilityParams P = smallParams();
    P.AgentCounts = {256};
    ReliabilityReport R = testReliability(bestAgent(Kind), T, P);
    ASSERT_EQ(R.Rows.size(), 1u);
    EXPECT_TRUE(R.Rows[0].completelySuccessful());
    EXPECT_DOUBLE_EQ(R.Rows[0].MeanCommTime, diameterByScan(T) - 1);
  }
}

TEST(ReliabilityTest, PublishedAgentsAreReliableOnSampledSets) {
  // With a generous cutoff the published FSMs solve every sampled field at
  // every tested density (the paper's "completely successful" property).
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    ReliabilityReport R = testReliability(bestAgent(Kind), T, smallParams());
    EXPECT_TRUE(R.completelySuccessful()) << gridKindName(Kind);
    EXPECT_GT(R.totalMeanCommTime(), 0.0);
  }
}

TEST(ReliabilityTest, UnreliableGenomeIsFlagged) {
  // The stationary genome cannot solve spread-out fields.
  Torus T(GridKind::Square, 16);
  ReliabilityParams P = smallParams();
  P.AgentCounts = {8};
  P.Fitness.Sim.MaxSteps = 100;
  Genome Stay;
  ReliabilityReport R = testReliability(Stay, T, P);
  EXPECT_FALSE(R.completelySuccessful());
  EXPECT_LT(R.Rows[0].SolvedFields, R.Rows[0].NumFields);
}

TEST(ReliabilityReportTest, EmptyReportIsNotSuccessful) {
  ReliabilityReport R;
  EXPECT_FALSE(R.completelySuccessful());
  EXPECT_DOUBLE_EQ(R.totalMeanCommTime(), 0.0);
}

TEST(ReliabilityTest, AllFailureRowHasZeroMeanTime) {
  // A stationary genome under a 2-step cutoff solves nothing at k = 16
  // (the manual queue alone needs 14 steps): the mean over solved fields
  // must degrade to 0.0, not divide by zero.
  Torus T(GridKind::Square, 16);
  ReliabilityParams P = smallParams();
  P.AgentCounts = {16};
  P.NumRandomFields = 10;
  P.Fitness.Sim.MaxSteps = 2;
  Genome Stay;
  ReliabilityReport R = testReliability(Stay, T, P);
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].SolvedFields, 0);
  EXPECT_FALSE(R.Rows[0].completelySuccessful());
  EXPECT_DOUBLE_EQ(R.Rows[0].MeanCommTime, 0.0);
  EXPECT_DOUBLE_EQ(R.totalMeanCommTime(), 0.0);
  EXPECT_FALSE(R.completelySuccessful());
}

TEST(ReliabilityTest, SingleFieldPackedRowIsAWellFormedSample) {
  // The packed density is a single-replica statistic: one field, and the
  // row's mean is exactly that field's time (zero-variance sample).
  Torus T(GridKind::Triangulate, 16);
  ReliabilityParams P = smallParams();
  P.AgentCounts = {256};
  ReliabilityReport R = testReliability(bestTriangulateAgent(), T, P);
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_EQ(R.Rows[0].NumFields, 1);
  EXPECT_EQ(R.Rows[0].SolvedFields, 1);
  EXPECT_GT(R.Rows[0].MeanCommTime, 0.0);
  EXPECT_DOUBLE_EQ(R.totalMeanCommTime(), R.Rows[0].MeanCommTime);
}

TEST(ReliabilityTest, BatchEngineReportMatchesReference) {
  // The reliability filter must not depend on the backend: the batched
  // engine's report is identical to the reference engine's.
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    ReliabilityParams P = smallParams();
    P.AgentCounts = {2, 8, 256};
    P.NumRandomFields = 10;
    ReliabilityParams BatchP = P;
    BatchP.Fitness.Engine = EngineKind::Batch;
    ReliabilityReport Ref = testReliability(bestAgent(Kind), T, P);
    ReliabilityReport Bat = testReliability(bestAgent(Kind), T, BatchP);
    ASSERT_EQ(Bat.Rows.size(), Ref.Rows.size()) << gridKindName(Kind);
    for (size_t I = 0; I != Ref.Rows.size(); ++I) {
      EXPECT_EQ(Bat.Rows[I].NumAgents, Ref.Rows[I].NumAgents);
      EXPECT_EQ(Bat.Rows[I].NumFields, Ref.Rows[I].NumFields);
      EXPECT_EQ(Bat.Rows[I].SolvedFields, Ref.Rows[I].SolvedFields);
      EXPECT_DOUBLE_EQ(Bat.Rows[I].MeanCommTime, Ref.Rows[I].MeanCommTime);
    }
  }
}
