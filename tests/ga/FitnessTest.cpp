//===- tests/ga/FitnessTest.cpp - Fitness function unit tests -------------===//

#include "ga/Fitness.h"

#include "agent/BestAgents.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(FitnessOfRunTest, MatchesTheFormula) {
  // F_i = W * (N_agents - a_i) + t.
  SimResult R;
  R.NumAgents = 16;
  R.Success = true;
  R.TComm = 41;
  R.InformedAgents = 16;
  EXPECT_DOUBLE_EQ(fitnessOfRun(R, 200, 1e4), 41.0);

  SimResult Fail;
  Fail.NumAgents = 16;
  Fail.Success = false;
  Fail.TComm = -1;
  Fail.InformedAgents = 10;
  EXPECT_DOUBLE_EQ(fitnessOfRun(Fail, 200, 1e4), 6.0e4 + 200.0);
}

TEST(FitnessOfRunTest, ZeroAgentResult) {
  // A default-constructed SimResult (the skipped-replica sentinel) has no
  // agents: nobody is uninformed, the run "failed", so the score is t_max.
  SimResult R;
  EXPECT_EQ(R.NumAgents, 0);
  EXPECT_FALSE(R.Success);
  EXPECT_DOUBLE_EQ(fitnessOfRun(R, 200, 1e4), 200.0);
}

TEST(FitnessOfRunTest, CutoffTerminatedRunChargesMaxSteps) {
  // A run stopped by the step cutoff reports Success = false; whatever
  // TComm carries must be ignored in favour of t_max.
  SimResult R;
  R.NumAgents = 4;
  R.InformedAgents = 3;
  R.Success = false;
  R.TComm = 37; // Stale/garbage — must not leak into the score.
  EXPECT_DOUBLE_EQ(fitnessOfRun(R, 500, 1e4), 1e4 + 500.0);
}

TEST(FitnessOfRunTest, DominanceRelation) {
  // Informing one more agent always beats any time advantage within t_max.
  SimResult MoreInformed;
  MoreInformed.NumAgents = 8;
  MoreInformed.InformedAgents = 5;
  MoreInformed.Success = false;
  SimResult FewerInformed = MoreInformed;
  FewerInformed.InformedAgents = 4;
  EXPECT_LT(fitnessOfRun(MoreInformed, 200, 1e4),
            fitnessOfRun(FewerInformed, 200, 1e4) - 200.0);
}

namespace {
FitnessParams defaultParams() {
  FitnessParams P;
  P.Sim.MaxSteps = 200;
  return P;
}
} // namespace

TEST(EvaluateFitnessTest, EmptyFieldSet) {
  Torus T(GridKind::Square, 16);
  FitnessResult R = evaluateFitness(bestSquareAgent(), T, {}, defaultParams());
  EXPECT_EQ(R.NumFields, 0);
  EXPECT_EQ(R.SolvedFields, 0);
  EXPECT_DOUBLE_EQ(R.Fitness, 0.0);
  EXPECT_DOUBLE_EQ(R.MeanCommTime, 0.0);
  EXPECT_FALSE(R.completelySuccessful())
      << "an empty field set proves nothing";
}

TEST(AccumulateFitnessTest, EmptyResultsMatchEmptyFieldSet) {
  FitnessResult R = accumulateFitness({}, 200, 1e4);
  EXPECT_EQ(R.NumFields, 0);
  EXPECT_FALSE(R.completelySuccessful());
}

TEST(AccumulateFitnessTest, MixedResultsReduceInFieldOrder) {
  SimResult Solved;
  Solved.NumAgents = 2;
  Solved.InformedAgents = 2;
  Solved.Success = true;
  Solved.TComm = 10;
  SimResult Failed;
  Failed.NumAgents = 2;
  Failed.InformedAgents = 1;
  Failed.Success = false;
  FitnessResult R = accumulateFitness({Solved, Failed}, 200, 1e4);
  EXPECT_EQ(R.NumFields, 2);
  EXPECT_EQ(R.SolvedFields, 1);
  EXPECT_DOUBLE_EQ(R.Fitness, (10.0 + 1e4 + 200.0) / 2.0);
  EXPECT_DOUBLE_EQ(R.MeanCommTime, 10.0);
}

TEST(EvaluateFitnessTest, BestAgentSolvesStandardFields) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 30, 99);
  FitnessResult R =
      evaluateFitness(bestTriangulateAgent(), T, Fields, defaultParams());
  EXPECT_EQ(R.NumFields, 33);
  EXPECT_EQ(R.SolvedFields, 33) << "published T-agent must solve k=8 fields";
  EXPECT_TRUE(R.completelySuccessful());
  EXPECT_GT(R.MeanCommTime, 0.0);
  EXPECT_LT(R.MeanCommTime, 200.0);
  // All solved: fitness equals mean time.
  EXPECT_DOUBLE_EQ(R.Fitness, R.MeanCommTime);
}

TEST(EvaluateFitnessTest, HopelessGenomeScoresDominatedFitness) {
  // The all-zero genome never moves; distant agents stay uninformed and
  // every field contributes W * N_agents + t_max.
  Torus T(GridKind::Square, 16);
  Genome Stay;
  std::vector<InitialConfiguration> Fields = {
      diagonalConfiguration(T, 4)};
  FitnessParams P = defaultParams();
  FitnessResult R = evaluateFitness(Stay, T, Fields, P);
  EXPECT_EQ(R.SolvedFields, 0);
  EXPECT_DOUBLE_EQ(R.Fitness, 1e4 * 4 + 200.0);
  EXPECT_EQ(R.MeanCommTime, 0.0) << "no solved fields, no mean time";
}

TEST(EvaluateFitnessTest, ParallelMatchesSequential) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 40, 7);
  FitnessParams Sequential = defaultParams();
  Sequential.NumWorkers = 1;
  FitnessParams Parallel = defaultParams();
  Parallel.NumWorkers = 4;
  FitnessResult A =
      evaluateFitness(bestTriangulateAgent(), T, Fields, Sequential);
  FitnessResult B =
      evaluateFitness(bestTriangulateAgent(), T, Fields, Parallel);
  EXPECT_EQ(A.SolvedFields, B.SolvedFields);
  EXPECT_EQ(A.NumFields, B.NumFields);
  EXPECT_DOUBLE_EQ(A.Fitness, B.Fitness);
  EXPECT_DOUBLE_EQ(A.MeanCommTime, B.MeanCommTime);
}

TEST(EvaluateFitnessTest, EnginesAndWorkerCountsAreBitIdentical) {
  // Regression: NumWorkers used to be silently ignored by the reference
  // engine, and the chunked reduction made the result depend on the worker
  // count in the last ulp. Both engines now fill per-field result slots
  // and reduce sequentially, so every combination is bit-identical.
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 17, 7);
  FitnessParams Base = defaultParams();
  Base.Engine = EngineKind::Reference;
  Base.NumWorkers = 1;
  FitnessResult Golden =
      evaluateFitness(bestTriangulateAgent(), T, Fields, Base);
  for (EngineKind Engine : {EngineKind::Reference, EngineKind::Batch})
    for (size_t Workers : {size_t(1), size_t(3), size_t(8)}) {
      FitnessParams P = defaultParams();
      P.Engine = Engine;
      P.NumWorkers = Workers;
      FitnessResult R =
          evaluateFitness(bestTriangulateAgent(), T, Fields, P);
      EXPECT_DOUBLE_EQ(Golden.Fitness, R.Fitness)
          << "engine " << (Engine == EngineKind::Batch ? "batch" : "ref")
          << ", " << Workers << " workers";
      EXPECT_DOUBLE_EQ(Golden.MeanCommTime, R.MeanCommTime);
      EXPECT_EQ(Golden.SolvedFields, R.SolvedFields);
    }
}

TEST(EvaluateFitnessTest, WeightParameterScales) {
  Torus T(GridKind::Square, 16);
  Genome Stay;
  std::vector<InitialConfiguration> Fields = {diagonalConfiguration(T, 2)};
  FitnessParams P = defaultParams();
  P.Weight = 100.0;
  FitnessResult R = evaluateFitness(Stay, T, Fields, P);
  EXPECT_DOUBLE_EQ(R.Fitness, 100.0 * 2 + 200.0);
}
