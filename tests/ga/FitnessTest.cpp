//===- tests/ga/FitnessTest.cpp - Fitness function unit tests -------------===//

#include "ga/Fitness.h"

#include "agent/BestAgents.h"
#include "gtest/gtest.h"

using namespace ca2a;

TEST(FitnessOfRunTest, MatchesTheFormula) {
  // F_i = W * (N_agents - a_i) + t.
  SimResult R;
  R.NumAgents = 16;
  R.Success = true;
  R.TComm = 41;
  R.InformedAgents = 16;
  EXPECT_DOUBLE_EQ(fitnessOfRun(R, 200, 1e4), 41.0);

  SimResult Fail;
  Fail.NumAgents = 16;
  Fail.Success = false;
  Fail.TComm = -1;
  Fail.InformedAgents = 10;
  EXPECT_DOUBLE_EQ(fitnessOfRun(Fail, 200, 1e4), 6.0e4 + 200.0);
}

TEST(FitnessOfRunTest, DominanceRelation) {
  // Informing one more agent always beats any time advantage within t_max.
  SimResult MoreInformed;
  MoreInformed.NumAgents = 8;
  MoreInformed.InformedAgents = 5;
  MoreInformed.Success = false;
  SimResult FewerInformed = MoreInformed;
  FewerInformed.InformedAgents = 4;
  EXPECT_LT(fitnessOfRun(MoreInformed, 200, 1e4),
            fitnessOfRun(FewerInformed, 200, 1e4) - 200.0);
}

namespace {
FitnessParams defaultParams() {
  FitnessParams P;
  P.Sim.MaxSteps = 200;
  return P;
}
} // namespace

TEST(EvaluateFitnessTest, EmptyFieldSet) {
  Torus T(GridKind::Square, 16);
  FitnessResult R = evaluateFitness(bestSquareAgent(), T, {}, defaultParams());
  EXPECT_EQ(R.NumFields, 0);
  EXPECT_FALSE(R.completelySuccessful());
}

TEST(EvaluateFitnessTest, BestAgentSolvesStandardFields) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 30, 99);
  FitnessResult R =
      evaluateFitness(bestTriangulateAgent(), T, Fields, defaultParams());
  EXPECT_EQ(R.NumFields, 33);
  EXPECT_EQ(R.SolvedFields, 33) << "published T-agent must solve k=8 fields";
  EXPECT_TRUE(R.completelySuccessful());
  EXPECT_GT(R.MeanCommTime, 0.0);
  EXPECT_LT(R.MeanCommTime, 200.0);
  // All solved: fitness equals mean time.
  EXPECT_DOUBLE_EQ(R.Fitness, R.MeanCommTime);
}

TEST(EvaluateFitnessTest, HopelessGenomeScoresDominatedFitness) {
  // The all-zero genome never moves; distant agents stay uninformed and
  // every field contributes W * N_agents + t_max.
  Torus T(GridKind::Square, 16);
  Genome Stay;
  std::vector<InitialConfiguration> Fields = {
      diagonalConfiguration(T, 4)};
  FitnessParams P = defaultParams();
  FitnessResult R = evaluateFitness(Stay, T, Fields, P);
  EXPECT_EQ(R.SolvedFields, 0);
  EXPECT_DOUBLE_EQ(R.Fitness, 1e4 * 4 + 200.0);
  EXPECT_EQ(R.MeanCommTime, 0.0) << "no solved fields, no mean time";
}

TEST(EvaluateFitnessTest, ParallelMatchesSequential) {
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 40, 7);
  FitnessParams Sequential = defaultParams();
  Sequential.NumWorkers = 1;
  FitnessParams Parallel = defaultParams();
  Parallel.NumWorkers = 4;
  FitnessResult A =
      evaluateFitness(bestTriangulateAgent(), T, Fields, Sequential);
  FitnessResult B =
      evaluateFitness(bestTriangulateAgent(), T, Fields, Parallel);
  EXPECT_EQ(A.SolvedFields, B.SolvedFields);
  EXPECT_EQ(A.NumFields, B.NumFields);
  EXPECT_NEAR(A.Fitness, B.Fitness, 1e-9);
  EXPECT_NEAR(A.MeanCommTime, B.MeanCommTime, 1e-9);
}

TEST(EvaluateFitnessTest, WeightParameterScales) {
  Torus T(GridKind::Square, 16);
  Genome Stay;
  std::vector<InitialConfiguration> Fields = {diagonalConfiguration(T, 2)};
  FitnessParams P = defaultParams();
  P.Weight = 100.0;
  FitnessResult R = evaluateFitness(Stay, T, Fields, P);
  EXPECT_DOUBLE_EQ(R.Fitness, 100.0 * 2 + 200.0);
}
