//===- tests/ga/MutationTest.cpp - Mutation operator unit tests -----------===//

#include "ga/Mutation.h"

#include "gtest/gtest.h"

using namespace ca2a;

TEST(MutationTest, ZeroProbabilityIsIdentity) {
  Rng R(1);
  Genome G = Genome::random(R);
  Genome M = mutate(G, MutationParams::uniform(0.0), R);
  EXPECT_EQ(M, G);
}

TEST(MutationTest, FullProbabilityIncrementsEveryField) {
  Rng R(2);
  Genome G = Genome::random(R);
  Genome M = mutate(G, MutationParams::uniform(1.0), R);
  for (int I = 0; I != GenomeLength; ++I) {
    const GenomeEntry &Old = G.slot(I);
    const GenomeEntry &New = M.slot(I);
    EXPECT_EQ(New.NextState, (Old.NextState + 1) % NumControlStates);
    EXPECT_EQ(New.Act.SetColor, !Old.Act.SetColor);
    EXPECT_EQ(New.Act.Move, !Old.Act.Move);
    EXPECT_EQ(static_cast<int>(New.Act.TurnCode),
              (static_cast<int>(Old.Act.TurnCode) + 1) % NumTurnCodes);
  }
}

TEST(MutationTest, FourApplicationsOfPlusOneRestoreTurnAndNextState) {
  // The +1 mod N mutation is cyclic: with p = 1, four rounds restore the
  // 4-valued fields and two rounds restore the binary fields.
  Rng R(3);
  Genome G = Genome::random(R);
  Genome M = G;
  for (int I = 0; I != 4; ++I)
    M = mutate(M, MutationParams::uniform(1.0), R);
  EXPECT_EQ(M, G);
}

TEST(MutationTest, DeterministicGivenRngState) {
  Rng A(9), B(9);
  Genome G = Genome::random(A);
  Genome H = Genome::random(B);
  ASSERT_EQ(G, H);
  Genome MA = mutate(G, MutationParams::uniform(0.18), A);
  Genome MB = mutate(H, MutationParams::uniform(0.18), B);
  EXPECT_EQ(MA, MB);
}

TEST(MutationTest, RateMatchesProbability) {
  Rng R(7);
  Genome G = Genome::random(R);
  // 4 fields x 32 slots x 500 repetitions at p = 0.18.
  int Changed = 0;
  constexpr int Repetitions = 500;
  for (int I = 0; I != Repetitions; ++I)
    Changed += genomeDistance(G, mutate(G, MutationParams::uniform(0.18), R));
  double Rate = static_cast<double>(Changed) /
                (Repetitions * 4.0 * GenomeLength);
  EXPECT_NEAR(Rate, 0.18, 0.01);
}

TEST(MutationTest, PerFieldProbabilitiesAreIndependent) {
  Rng R(8);
  Genome G = Genome::random(R);
  // Only the move field may change.
  MutationParams Params;
  Params.PNextState = Params.PSetColor = Params.PTurn = 0.0;
  Params.PMove = 1.0;
  Genome M = mutate(G, Params, R);
  for (int I = 0; I != GenomeLength; ++I) {
    EXPECT_EQ(M.slot(I).NextState, G.slot(I).NextState);
    EXPECT_EQ(M.slot(I).Act.SetColor, G.slot(I).Act.SetColor);
    EXPECT_EQ(M.slot(I).Act.TurnCode, G.slot(I).Act.TurnCode);
    EXPECT_NE(M.slot(I).Act.Move, G.slot(I).Act.Move);
  }
}

TEST(GenomeDistanceTest, Properties) {
  Rng R(10);
  Genome G = Genome::random(R);
  EXPECT_EQ(genomeDistance(G, G), 0);
  Genome H = G;
  H.slot(0).NextState = static_cast<uint8_t>((H.slot(0).NextState + 1) % 4);
  EXPECT_EQ(genomeDistance(G, H), 1);
  H.slot(31).Act.Move = !H.slot(31).Act.Move;
  EXPECT_EQ(genomeDistance(G, H), 2);
  EXPECT_EQ(genomeDistance(H, G), 2) << "distance is symmetric";
  // Maximum possible distance.
  Genome Inverted = mutate(G, MutationParams::uniform(1.0), R);
  EXPECT_EQ(genomeDistance(G, Inverted), 4 * GenomeLength);
}
