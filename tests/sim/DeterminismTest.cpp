//===- tests/sim/DeterminismTest.cpp - Worker-count determinism sweep -----===//
//
// The repo's central invariant, pinned as a quick behavioural anchor for
// the sanitizer matrix and the determinism lint: every engine produces
// bit-identical SimResults at every worker count. Ten seeded
// configurations (fault-free and faulty, both grids, both arbitration
// modes) run once through the reference World and then through BatchEngine
// at 1, 2, 4 and 8 workers; any divergence — a single bit anywhere in any
// SimResult — fails with the offending seed named.
//
// If a future change makes this fail only at some worker counts, the bug
// is a scheduling-visible side channel (shared scratch, iteration-order
// dependence, an unseeded RNG); if it fails at every count including 1,
// the engines' semantics diverged — see tests/sim/BatchEngineDiffTest.cpp
// for the full differential sweep.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

/// One seeded scenario, owning stable storage for BatchReplica's borrows.
struct Scenario {
  Genome G;
  std::vector<Placement> Placements;
  SimOptions Options;
};

Scenario drawScenario(uint64_t Seed, const Torus &T) {
  Rng R(Seed);
  Scenario S;
  S.G = Genome::random(R);
  S.Options.MaxSteps = 120;
  S.Options.Arbitration = R.uniformInt(2) ? ArbitrationMode::GazePriority
                                          : ArbitrationMode::RequestPriority;
  if (Seed % 2) {
    // Odd seeds inject faults: the fault RNG stream must replay
    // identically no matter which worker runs the replica.
    S.Options.Faults.StallProbability = 0.05;
    S.Options.Faults.DeathProbability = 0.01;
    S.Options.Faults.LinkDropProbability = 0.02;
    S.Options.Faults.Seed = Seed * 131 + 3;
  }
  int NumAgents = 4 + static_cast<int>(R.uniformInt(12));
  S.Placements = randomConfiguration(T, NumAgents, R).Placements;
  return S;
}

} // namespace

TEST(DeterminismTest, SeedSweepIsIdenticalAcrossEnginesAndWorkerCounts) {
  constexpr int NumSeeds = 10;
  for (GridKind Kind : {GridKind::Triangulate, GridKind::Square}) {
    Torus T(Kind, 12);

    std::deque<Scenario> Scenarios;
    std::vector<BatchReplica> Replicas;
    std::vector<SimResult> Reference;
    World W(T);
    for (int I = 0; I != NumSeeds; ++I) {
      uint64_t Seed = 0xde7e0000ull + static_cast<uint64_t>(I);
      Scenarios.push_back(drawScenario(Seed, T));
      const Scenario &S = Scenarios.back();
      BatchReplica Rep;
      Rep.A = &S.G;
      Rep.Placements = &S.Placements;
      Rep.Options = &S.Options;
      Replicas.push_back(Rep);
      W.reset(S.G, S.Placements, S.Options);
      Reference.push_back(W.run());
    }

    BatchEngine Engine(T);
    for (size_t Workers : {1u, 2u, 4u, 8u}) {
      BatchRunOptions RO;
      RO.NumWorkers = Workers;
      std::vector<SimResult> Got = Engine.run(Replicas, RO);
      ASSERT_EQ(Got.size(), Reference.size());
      for (size_t I = 0; I != Got.size(); ++I)
        EXPECT_TRUE(Got[I] == Reference[I])
            << gridKindName(Kind) << " seed index " << I << " at " << Workers
            << " workers: batch {success " << Got[I].Success << ", t "
            << Got[I].TComm << ", informed " << Got[I].InformedAgents
            << "} vs reference {" << Reference[I].Success << ", "
            << Reference[I].TComm << ", " << Reference[I].InformedAgents
            << "}";
    }
  }
}

// The same invariant crossed with the SIMD dispatch axis: every available
// lane kernel, forced the way CI forces it (the CA2A_FORCE_BACKEND
// environment variable), must produce bit-identical results at every
// worker count. A failure at some (backend, workers) cell and not others
// localises the bug immediately: backend-dependent → kernel semantics,
// worker-dependent → scheduling side channel.
TEST(DeterminismTest, BackendSweepIsIdenticalAcrossWorkerCounts) {
  // Restore any ambient forced backend when done so the rest of the test
  // binary runs under the caller's intended configuration.
  std::string SavedForce;
  if (const char *Env = std::getenv(simdBackendForceEnvVar()))
    SavedForce = Env;

  constexpr int NumSeeds = 6;
  for (GridKind Kind : {GridKind::Triangulate, GridKind::Square}) {
    Torus T(Kind, 12);

    std::deque<Scenario> Scenarios;
    std::vector<BatchReplica> Replicas;
    std::vector<SimResult> Reference;
    World W(T);
    for (int I = 0; I != NumSeeds; ++I) {
      uint64_t Seed = 0xba0e0000ull + static_cast<uint64_t>(I);
      Scenarios.push_back(drawScenario(Seed, T));
      const Scenario &S = Scenarios.back();
      BatchReplica Rep;
      Rep.A = &S.G;
      Rep.Placements = &S.Placements;
      Rep.Options = &S.Options;
      Replicas.push_back(Rep);
      W.reset(S.G, S.Placements, S.Options);
      Reference.push_back(W.run());
    }

    BatchEngine Engine(T);
    for (SimdBackend Backend : availableSimdBackends()) {
      ::setenv(simdBackendForceEnvVar(), simdBackendName(Backend), 1);
      for (size_t Workers : {1u, 3u, 8u}) {
        BatchRunStats Stats;
        BatchRunOptions RO;
        RO.NumWorkers = Workers;
        RO.Stats = &Stats;
        std::vector<SimResult> Got = Engine.run(Replicas, RO);
        ASSERT_EQ(Got.size(), Reference.size());
        ASSERT_EQ(Stats.BackendUsed, Backend)
            << "the forced backend was not the one dispatched";
        for (size_t I = 0; I != Got.size(); ++I)
          EXPECT_TRUE(Got[I] == Reference[I])
              << gridKindName(Kind) << " seed index " << I << " backend "
              << simdBackendName(Backend) << " at " << Workers
              << " workers: batch {success " << Got[I].Success << ", t "
              << Got[I].TComm << ", informed " << Got[I].InformedAgents
              << "} vs reference {" << Reference[I].Success << ", "
              << Reference[I].TComm << ", " << Reference[I].InformedAgents
              << "}";
      }
    }
    if (SavedForce.empty())
      ::unsetenv(simdBackendForceEnvVar());
    else
      ::setenv(simdBackendForceEnvVar(), SavedForce.c_str(), 1);
  }
}
