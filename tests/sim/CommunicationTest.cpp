//===- tests/sim/CommunicationTest.cpp - Exchange semantics tests ---------===//
//
// Pins the communication model: one-hop OR exchange per step, success
// timing (the t = 0 exchange is free), and the packed-field flooding
// property that fixes Table 1's N_agents = 256 column at diameter - 1.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "grid/Distance.h"
#include "sim/World.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

Genome stationaryGenome() {
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act = Action{}; // S.0: stay, keep colour clear.
    }
  return G;
}

SimOptions shortRun(int MaxSteps = 50) {
  SimOptions O;
  O.MaxSteps = MaxSteps;
  return O;
}

} // namespace

TEST(CommunicationTest, SingleAgentSolvesAtTimeZero) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 8);
    World W(T);
    Genome G = stationaryGenome();
    W.reset(G, {{Coord{3, 3}, 0}}, shortRun());
    SimResult R = W.run();
    EXPECT_TRUE(R.Success);
    EXPECT_EQ(R.TComm, 0);
    EXPECT_EQ(R.InformedAgents, 1);
  }
}

TEST(CommunicationTest, AdjacentPairSolvesAtTimeZero) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 8);
    World W(T);
    Genome G = stationaryGenome();
    W.reset(G, {{Coord{3, 3}, 0}, {Coord{4, 3}, 0}}, shortRun());
    SimResult R = W.run();
    EXPECT_TRUE(R.Success) << gridKindName(Kind);
    EXPECT_EQ(R.TComm, 0) << "adjacent agents need no movement";
  }
}

TEST(CommunicationTest, DiagonalPairAdjacentOnlyInTriangulate) {
  // (3,3) and (4,4) are linked in T (the (x+1, y+1) diagonal) but two
  // steps apart in S.
  Genome G = stationaryGenome();
  {
    Torus T(GridKind::Triangulate, 8);
    World W(T);
    W.reset(G, {{Coord{3, 3}, 0}, {Coord{4, 4}, 0}}, shortRun());
    SimResult R = W.run();
    EXPECT_TRUE(R.Success);
    EXPECT_EQ(R.TComm, 0);
  }
  {
    Torus T(GridKind::Square, 8);
    World W(T);
    W.reset(G, {{Coord{3, 3}, 0}, {Coord{4, 4}, 0}}, shortRun());
    SimResult R = W.run();
    EXPECT_FALSE(R.Success) << "stationary S-agents two apart never meet";
    EXPECT_EQ(R.InformedAgents, 0);
  }
}

TEST(CommunicationTest, AntiDiagonalPairIsNotAdjacentInTriangulate) {
  // (3,3) and (4,2): the NE-SW "anti-diagonal" is NOT a T-grid link
  // (Fig. 1 adds only the (x+1, y+1) / (x-1, y-1) pair).
  Genome G = stationaryGenome();
  Torus T(GridKind::Triangulate, 8);
  World W(T);
  W.reset(G, {{Coord{3, 3}, 0}, {Coord{4, 2}, 0}}, shortRun());
  SimResult R = W.run();
  EXPECT_FALSE(R.Success);
}

TEST(CommunicationTest, StationaryChainRelaysOneHopPerStep) {
  // Agents at (0,0), (1,0), (2,0): the middle agent is informed after the
  // t=0 exchange; the ends learn the far bit one step later. Information
  // must travel exactly one hop per step (no transitive closure within a
  // step).
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = stationaryGenome();
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{1, 0}, 0}, {Coord{2, 0}, 0}},
          shortRun());

  ASSERT_EQ(W.step(), World::Status::Running) << "ends not informed at t=0";
  EXPECT_EQ(W.informedCount(), 1) << "only the middle agent knows all";
  EXPECT_TRUE(W.agent(1).Informed);
  EXPECT_FALSE(W.agent(0).Informed);
  EXPECT_FALSE(W.agent(0).Comm.test(2)) << "far bit cannot jump two hops";

  EXPECT_EQ(W.step(), World::Status::Solved);
  EXPECT_EQ(W.informedCount(), 3);
  EXPECT_EQ(W.time(), 1);
}

TEST(CommunicationTest, StationaryDistantAgentsNeverSolve) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = stationaryGenome();
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, shortRun(100));
  SimResult R = W.run();
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.TComm, -1);
  EXPECT_EQ(R.InformedAgents, 0);
  EXPECT_EQ(R.NumAgents, 2);
}

struct PackedCase {
  GridKind Kind;
  int SideLength;
};

class PackedFloodingTest : public ::testing::TestWithParam<PackedCase> {};

TEST_P(PackedFloodingTest, TakesExactlyDiameterMinusOneSteps) {
  // Fully packed field: nobody can move; pure flooding. The success check
  // after the t = 0 exchange is free, so t_comm = diameter - 1 ("the
  // communication after the initial placement is not counted", Sect. 5).
  PackedCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  World W(T);
  Genome G = stationaryGenome();
  InitialConfiguration Packed = packedConfiguration(T);
  SimOptions O;
  O.MaxSteps = 4 * C.SideLength;
  W.reset(G, Packed.Placements, O);
  SimResult R = W.run();
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.TComm, diameterByScan(T) - 1);
}

TEST_P(PackedFloodingTest, MovingGenomeChangesNothingWhenPacked) {
  // Even a genome that wants to move cannot: every front cell is occupied.
  PackedCase C = GetParam();
  Torus T(C.Kind, C.SideLength);
  World W(T);
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act.Move = true;
      E.Act.TurnCode = Turn::Right;
    }
  InitialConfiguration Packed = packedConfiguration(T);
  SimOptions O;
  O.MaxSteps = 4 * C.SideLength;
  W.reset(G, Packed.Placements, O);
  SimResult R = W.run();
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.TComm, diameterByScan(T) - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PackedFloodingTest,
    ::testing::Values(PackedCase{GridKind::Square, 4},
                      PackedCase{GridKind::Square, 8},
                      PackedCase{GridKind::Square, 16},
                      PackedCase{GridKind::Triangulate, 4},
                      PackedCase{GridKind::Triangulate, 8},
                      PackedCase{GridKind::Triangulate, 16}),
    [](const ::testing::TestParamInfo<PackedCase> &I) {
      return std::string(gridKindName(I.param.Kind)) +
             std::to_string(I.param.SideLength);
    });

TEST(CommunicationTest, InformedCountIsMonotone) {
  // Information only accumulates: the informed count never decreases over
  // a run, whatever the agents do.
  Torus T(GridKind::Triangulate, 8);
  World W(T);
  Genome G;
  Rng R(12345);
  G = Genome::random(R);
  std::vector<Placement> P;
  Rng FieldRng(99);
  InitialConfiguration C = randomConfiguration(T, 8, FieldRng);
  SimOptions O;
  O.MaxSteps = 150;
  W.reset(G, C.Placements, O);
  int Last = -1;
  W.run([&Last](const World &World, int) {
    EXPECT_GE(World.informedCount(), Last);
    Last = World.informedCount();
  });
}

TEST(CommunicationTest, ExchangeIsSymmetricWithinOneHop) {
  // After the t=0 exchange two adjacent agents hold identical vectors.
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = stationaryGenome();
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{1, 0}, 0}, {Coord{5, 5}, 0}},
          shortRun());
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Comm, W.agent(1).Comm);
  EXPECT_TRUE(W.agent(0).Comm.test(0));
  EXPECT_TRUE(W.agent(0).Comm.test(1));
  EXPECT_FALSE(W.agent(0).Comm.test(2));
}
