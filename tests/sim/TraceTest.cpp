//===- tests/sim/TraceTest.cpp - Snapshot/trajectory unit tests -----------===//

#include "sim/Trace.h"

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

World preparedWorld(const Torus &T, int MaxSteps = 300) {
  World W(T);
  SimOptions O;
  O.MaxSteps = MaxSteps;
  std::vector<Placement> P = {{Coord{2, 2}, 1}, {Coord{13, 3}, 2}};
  W.reset(bestAgent(T.kind()), P, O);
  return W;
}

} // namespace

TEST(TraceTest, CapturesRequestedTimesAndFinal) {
  Torus T(GridKind::Square, 16);
  World W = preparedWorld(T);
  TracedRun Run = runWithSnapshots(W, {0, 10, 20});
  ASSERT_TRUE(Run.Result.Success) << "best S-agent must solve this field";
  ASSERT_GE(Run.Snapshots.size(), 3u);
  EXPECT_EQ(Run.Snapshots[0].Time, 0);
  EXPECT_EQ(Run.Snapshots[1].Time, 10);
  EXPECT_EQ(Run.Snapshots[2].Time, 20);
  EXPECT_EQ(Run.Snapshots.back().Time, Run.Result.TComm)
      << "terminal state must always be captured";
}

TEST(TraceTest, DuplicateAndOutOfRangeTimesAreHandled) {
  Torus T(GridKind::Square, 16);
  World W = preparedWorld(T);
  TracedRun Run = runWithSnapshots(W, {0, 0, 100000});
  ASSERT_TRUE(Run.Result.Success);
  // One capture for t=0 plus the terminal capture.
  ASSERT_EQ(Run.Snapshots.size(), 2u);
  EXPECT_EQ(Run.Snapshots[0].Time, 0);
  EXPECT_EQ(Run.Snapshots.back().Time, Run.Result.TComm);
}

TEST(TraceTest, SnapshotContentsMatchDimensions) {
  Torus T(GridKind::Triangulate, 16);
  World W = preparedWorld(T);
  TracedRun Run = runWithSnapshots(W, {0});
  ASSERT_FALSE(Run.Snapshots.empty());
  const Snapshot &S = Run.Snapshots.front();
  EXPECT_EQ(S.Colors.size(), static_cast<size_t>(T.numCells()));
  EXPECT_EQ(S.VisitCounts.size(), static_cast<size_t>(T.numCells()));
  EXPECT_EQ(S.Agents.size(), 2u);
  // At t=0 the field is still uncoloured and exactly the two start cells
  // are visited.
  int TotalVisits = 0;
  for (int V : S.VisitCounts)
    TotalVisits += V;
  EXPECT_EQ(TotalVisits, 2);
  for (uint8_t C : S.Colors)
    EXPECT_EQ(C, 0);
}

TEST(TraceTest, TrajectoriesStartAtPlacementAndChainAdjacently) {
  Torus T(GridKind::Triangulate, 16);
  World W = preparedWorld(T);
  SimResult Result;
  std::vector<Trajectory> Trajectories = recordTrajectories(W, Result);
  ASSERT_TRUE(Result.Success);
  ASSERT_EQ(Trajectories.size(), 2u);
  EXPECT_EQ(Trajectories[0].front(), T.indexOf(Coord{2, 2}));
  EXPECT_EQ(Trajectories[1].front(), T.indexOf(Coord{13, 3}));
  // Consecutive trajectory cells must be grid neighbours.
  for (const Trajectory &Tr : Trajectories) {
    for (size_t I = 1; I != Tr.size(); ++I) {
      bool Adjacent = false;
      const int32_t *Neighbors = T.neighbors(Tr[I - 1]);
      for (int D = 0; D != T.degree(); ++D)
        Adjacent |= (Neighbors[D] == Tr[I]);
      EXPECT_TRUE(Adjacent) << "trajectory jumped between non-neighbours";
    }
  }
}

TEST(TraceTest, RevisitFractionBounds) {
  Torus T(GridKind::Square, 16);
  World W = preparedWorld(T);
  SimResult Result;
  std::vector<Trajectory> Trajectories = recordTrajectories(W, Result);
  double Fraction = averageRevisitFraction(Trajectories, T.numCells());
  EXPECT_GE(Fraction, 0.0);
  EXPECT_LT(Fraction, 1.0);
}

TEST(TraceTest, UnsolvedRunStillCapturesTheTerminalState) {
  // Stationary agents far apart: the run hits the cutoff; the recorder
  // must still deliver the final snapshot (at t = MaxSteps).
  Torus T(GridKind::Square, 16);
  World W(T);
  Genome Stay;
  SimOptions O;
  O.MaxSteps = 25;
  W.reset(Stay, {{Coord{0, 0}, 0}, {Coord{8, 8}, 0}}, O);
  TracedRun Run = runWithSnapshots(W, {0, 10});
  EXPECT_FALSE(Run.Result.Success);
  ASSERT_EQ(Run.Snapshots.size(), 3u);
  EXPECT_EQ(Run.Snapshots[0].Time, 0);
  EXPECT_EQ(Run.Snapshots[1].Time, 10);
  EXPECT_EQ(Run.Snapshots.back().Time, 25) << "terminal capture at cutoff";
}

TEST(TraceTest, RevisitFractionOfLoopIsHigh) {
  // A synthetic trajectory looping over two cells 10 times.
  Trajectory Loop;
  for (int I = 0; I != 20; ++I)
    Loop.push_back(I % 2);
  double Fraction = averageRevisitFraction({Loop}, 4);
  EXPECT_DOUBLE_EQ(Fraction, 1.0 - 2.0 / 20.0);
  // A straight walk never revisits.
  Trajectory Line = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(averageRevisitFraction({Line}, 4), 0.0);
}
