//===- tests/sim/GoldenTraceTest.cpp - Canonical run traces, pinned -------===//
//
// Five small canonical simulations whose full trajectories are committed
// as text fixtures under tests/data/golden/. Each fixture records, per
// iteration, the informed and survivor counts and an FNV-1a digest of the
// complete agent state (positions, directions, control states, liveness,
// communication vectors), plus the final SimResult and a digest of the
// final field. The reference World must reproduce every line exactly, and
// every available SIMD backend must land on the same final state.
//
// The fixtures pin the micro-semantics of the step function across
// refactors: any change to exchange order, arbitration, fault replay or
// colour bookkeeping shows up as a first-divergent-step diff with the
// step number and both hash lines named — not as a distant downstream
// symptom. After an INTENDED semantic change, regenerate with
//   scripts/regen_golden.sh <build-dir>
// and review the fixture diff like any other code change.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"
#include "support/Hash.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

/// One canonical scenario: a name (the fixture file stem) plus everything
/// needed to run it. Scenarios are fixed for all time — changing one
/// invalidates its fixture, so add new ones instead.
struct GoldenScenario {
  std::string Name;
  GridKind Kind = GridKind::Triangulate;
  int Side = 16;
  Genome A;
  Genome B;
  GenomePolicy Policy = GenomePolicy::Single;
  std::vector<Placement> Placements;
  SimOptions Options;

  bool twoGenomes() const { return Policy != GenomePolicy::Single; }
};

/// The five scenarios: the two best published agents on the paper's
/// field, a policy/arbitration/obstacle mix, a faulty run (the fault
/// RNG stream is part of the pinned semantics), and a faulty triangulate
/// run of the best agent that exercises the rmaj64 slab-retirement path.
std::vector<GoldenScenario> goldenScenarios() {
  std::vector<GoldenScenario> Out;
  {
    GoldenScenario S;
    S.Name = "t16_best_k16";
    S.Kind = GridKind::Triangulate;
    S.Side = 16;
    S.A = bestTriangulateAgent();
    S.Options.MaxSteps = 200;
    Torus T(S.Kind, S.Side);
    Rng R(0x901d01);
    S.Placements = randomConfiguration(T, 16, R).Placements;
    Out.push_back(std::move(S));
  }
  {
    GoldenScenario S;
    S.Name = "s16_best_k16";
    S.Kind = GridKind::Square;
    S.Side = 16;
    S.A = bestSquareAgent();
    S.Options.MaxSteps = 200;
    Torus T(S.Kind, S.Side);
    Rng R(0x901d02);
    S.Placements = randomConfiguration(T, 16, R).Placements;
    Out.push_back(std::move(S));
  }
  {
    GoldenScenario S;
    S.Name = "t12_shuffle_gaze_obstacles";
    S.Kind = GridKind::Triangulate;
    S.Side = 12;
    Rng R(0x901d03);
    S.A = Genome::random(R);
    S.B = Genome::random(R);
    S.Policy = GenomePolicy::TimeShuffle;
    S.Options.MaxSteps = 150;
    S.Options.Arbitration = ArbitrationMode::GazePriority;
    Torus T(S.Kind, S.Side);
    S.Options.Obstacles = randomObstacles(T, 6, R);
    S.Placements =
        randomConfigurationAvoiding(T, 10, R, S.Options.Obstacles)
            .Placements;
    Out.push_back(std::move(S));
  }
  {
    GoldenScenario S;
    S.Name = "s9_faults_k8";
    S.Kind = GridKind::Square;
    S.Side = 9;
    Rng R(0x901d04);
    S.A = Genome::random(R);
    S.Options.MaxSteps = 120;
    S.Options.Faults.StallProbability = 0.05;
    S.Options.Faults.DeathProbability = 0.01;
    S.Options.Faults.LinkDropProbability = 0.02;
    S.Options.Faults.ColorFlipProbability = 0.02;
    S.Options.Faults.Seed = 0x5eedf;
    Torus T(S.Kind, S.Side);
    S.Placements = randomConfiguration(T, 8, R).Placements;
    Out.push_back(std::move(S));
  }
  {
    // Added with the rmaj64 backend: a faulty triangulate run of the
    // paper's best agent. Under rmaj64 this single replica rides a slab
    // master until its fault stream fires, so the golden chain pins the
    // adopt-and-replay retirement path, not just the lockstep one.
    GoldenScenario S;
    S.Name = "t12_best_faults_k24";
    S.Kind = GridKind::Triangulate;
    S.Side = 12;
    S.A = bestTriangulateAgent();
    S.Options.MaxSteps = 150;
    S.Options.Faults.StallProbability = 0.02;
    S.Options.Faults.DeathProbability = 0.002;
    S.Options.Faults.LinkDropProbability = 0.01;
    S.Options.Faults.ColorFlipProbability = 0.005;
    S.Options.Faults.Seed = 0x901dfa;
    Torus T(S.Kind, S.Side);
    Rng R(0x901d05);
    S.Placements = randomConfiguration(T, 24, R).Placements;
    Out.push_back(std::move(S));
  }
  return Out;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Digest of the complete per-agent state at an observation point.
uint64_t hashAgents(const World &W) {
  Fnv1aHasher H;
  for (int Id = 0; Id != W.numAgents(); ++Id) {
    const AgentState &A = W.agent(Id);
    H.mixWord(static_cast<uint64_t>(A.Cell));
    H.mixWord(static_cast<uint64_t>(A.Direction));
    H.mixWord(static_cast<uint64_t>(A.ControlState));
    H.mixWord(A.Informed ? 1 : 0);
    H.mixWord(A.Alive ? 1 : 0);
    uint64_t Word = 0;
    for (int Bit = 0; Bit != W.numAgents(); ++Bit) {
      Word = (Word << 1) | (A.Comm.test(static_cast<size_t>(Bit)) ? 1 : 0);
      if (Bit % 64 == 63) {
        H.mixWord(Word);
        Word = 0;
      }
    }
    H.mixWord(Word);
  }
  return H.value();
}

/// Digest of the final field: colours, occupancy, visit counts, agents.
uint64_t hashFinalField(const World &W) {
  Fnv1aHasher H;
  for (int Cell = 0; Cell != W.torus().numCells(); ++Cell) {
    H.mixWord(static_cast<uint64_t>(W.colorValueAt(Cell)));
    H.mixWord(static_cast<uint64_t>(W.agentAt(Cell)));
    H.mixWord(static_cast<uint64_t>(W.visitCount(Cell)));
  }
  H.mixWord(hashAgents(W));
  return H.value();
}

/// The same final-field digest computed from a batch replica's captured
/// state — field-for-field the same mixing order as hashFinalField.
uint64_t hashFinalField(const ReplicaFinalState &F) {
  Fnv1aHasher H;
  for (size_t Cell = 0; Cell != F.Colors.size(); ++Cell) {
    H.mixWord(static_cast<uint64_t>(F.Colors[Cell]));
    H.mixWord(static_cast<uint64_t>(F.Occupancy[Cell]));
    H.mixWord(static_cast<uint64_t>(F.VisitCounts[Cell]));
  }
  Fnv1aHasher Agents;
  int NumAgents = static_cast<int>(F.Agents.size());
  for (const ReplicaAgentState &A : F.Agents) {
    Agents.mixWord(static_cast<uint64_t>(A.Cell));
    Agents.mixWord(static_cast<uint64_t>(A.Direction));
    Agents.mixWord(static_cast<uint64_t>(A.ControlState));
    Agents.mixWord(A.Informed ? 1 : 0);
    Agents.mixWord(A.Alive ? 1 : 0);
    uint64_t Word = 0;
    for (int Bit = 0; Bit != NumAgents; ++Bit) {
      Word = (Word << 1) | (A.Comm.test(static_cast<size_t>(Bit)) ? 1 : 0);
      if (Bit % 64 == 63) {
        Agents.mixWord(Word);
        Word = 0;
      }
    }
    Agents.mixWord(Word);
  }
  H.mixWord(Agents.value());
  return H.value();
}

/// Runs the scenario through the reference World and renders the trace
/// lines the fixture stores.
std::vector<std::string> renderTrace(const GoldenScenario &S,
                                     SimResult *ResultOut = nullptr,
                                     uint64_t *FinalHashOut = nullptr) {
  Torus T(S.Kind, S.Side);
  World W(T);
  if (S.twoGenomes())
    W.reset(S.A, S.B, S.Policy, S.Placements, S.Options);
  else
    W.reset(S.A, S.Placements, S.Options);

  std::vector<std::string> Lines;
  Lines.push_back("# ca2a golden trace v1");
  {
    std::ostringstream Head;
    Head << "config " << S.Name << " grid " << gridKindName(S.Kind)
         << " side " << S.Side << " agents " << S.Placements.size()
         << " max-steps " << S.Options.MaxSteps;
    Lines.push_back(Head.str());
  }
  SimResult Result = W.run([&](const World &View, int Time) {
    std::ostringstream Line;
    Line << "step " << Time << " informed " << View.informedCount()
         << " survivors " << View.survivorCount() << " agents-hash "
         << hex16(hashAgents(View));
    Lines.push_back(Line.str());
  });
  uint64_t FinalHash = hashFinalField(W);
  {
    std::ostringstream Tail;
    Tail << "final success " << (Result.Success ? 1 : 0) << " t "
         << Result.TComm << " informed " << Result.InformedAgents
         << " surviving " << Result.SurvivingAgents << " field-hash "
         << hex16(FinalHash);
    Lines.push_back(Tail.str());
  }
  if (ResultOut)
    *ResultOut = Result;
  if (FinalHashOut)
    *FinalHashOut = FinalHash;
  return Lines;
}

std::string fixturePath(const std::string &Name) {
  return std::string(CA2A_SOURCE_DIR) + "/tests/data/golden/" + Name +
         ".trace";
}

} // namespace

// Every committed fixture must be reproduced line-for-line by the
// reference World. Set CA2A_REGEN_GOLDEN=1 (or run
// scripts/regen_golden.sh) to rewrite the fixtures after an intended
// semantic change.
TEST(GoldenTraceTest, ReferenceWorldReproducesCommittedTraces) {
  const bool Regen = std::getenv("CA2A_REGEN_GOLDEN") != nullptr;
  for (const GoldenScenario &S : goldenScenarios()) {
    std::vector<std::string> Actual = renderTrace(S);
    std::string Path = fixturePath(S.Name);

    if (Regen) {
      std::ofstream Out(Path);
      ASSERT_TRUE(Out.good()) << "cannot write " << Path;
      for (const std::string &Line : Actual)
        Out << Line << "\n";
      std::printf("regenerated %s (%zu lines)\n", Path.c_str(),
                  Actual.size());
      continue;
    }

    std::ifstream In(Path);
    ASSERT_TRUE(In.good())
        << "missing fixture " << Path
        << " — run scripts/regen_golden.sh and commit the result";
    std::vector<std::string> Expected;
    for (std::string Line; std::getline(In, Line);)
      Expected.push_back(Line);

    // First-divergence diff: the step number is in the line itself, so a
    // failure names exactly where the trajectory left the golden one.
    size_t Common = std::min(Expected.size(), Actual.size());
    for (size_t I = 0; I != Common; ++I)
      ASSERT_EQ(Expected[I], Actual[I])
          << S.Name << ": first divergence at line " << (I + 1) << " of "
          << Path << "\n  golden: " << Expected[I]
          << "\n  actual: " << Actual[I]
          << "\nIf this change is intended, regenerate with "
             "scripts/regen_golden.sh and review the fixture diff.";
    ASSERT_EQ(Expected.size(), Actual.size())
        << S.Name << ": trace length changed (golden " << Expected.size()
        << " lines, actual " << Actual.size() << ")";
  }
}

// The final line of every fixture must also be reached by the batch
// engine under every available SIMD backend: same SimResult, same
// final-field digest. This chains the golden anchor to the whole
// dispatch matrix without storing per-backend fixtures (they are
// bit-identical by contract).
TEST(GoldenTraceTest, EveryBackendReachesTheGoldenFinalState) {
  for (const GoldenScenario &S : goldenScenarios()) {
    SimResult Ref;
    uint64_t FinalHash = 0;
    renderTrace(S, &Ref, &FinalHash);

    Torus T(S.Kind, S.Side);
    BatchEngine Engine(T);
    BatchReplica Rep;
    Rep.A = &S.A;
    Rep.B = S.twoGenomes() ? &S.B : nullptr;
    Rep.Policy = S.Policy;
    Rep.Placements = &S.Placements;
    Rep.Options = &S.Options;
    for (SimdBackend Backend : availableSimdBackends()) {
      std::vector<ReplicaFinalState> Finals;
      BatchRunOptions RunOptions;
      RunOptions.Backend = Backend;
      RunOptions.FinalStates = &Finals;
      std::vector<SimResult> Got = Engine.run({Rep}, RunOptions);
      ASSERT_EQ(Got.size(), 1u);
      EXPECT_TRUE(Got[0] == Ref)
          << S.Name << " [" << simdBackendName(Backend)
          << "]: SimResult diverged from the golden trace";
      ASSERT_EQ(Finals.size(), 1u);
      EXPECT_EQ(hex16(hashFinalField(Finals[0])), hex16(FinalHash))
          << S.Name << " [" << simdBackendName(Backend)
          << "]: final-field digest diverged from the golden trace";
    }
  }
}
