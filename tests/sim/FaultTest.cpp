//===- tests/sim/FaultTest.cpp - Fault-injection unit tests ---------------===//
//
// The semantics of each fault process in sim/Fault.h, pinned at the
// deterministic extremes (rate 0 and rate 1) plus statistical middle
// ground: inertness of the zero-rate model (bit-identical to the
// fault-free engine), stalls freezing actions but not communication,
// deaths freeing cells and switching success to survivor semantics, link
// drops cutting information flow, and colour flips corrupting only the
// colour layer.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "ga/Fitness.h"
#include "sim/World.h"

#include "gtest/gtest.h"

#include <cmath>
#include <vector>

using namespace ca2a;

namespace {

/// A fixed 4-agent field used by the deterministic tests.
std::vector<Placement> cornerPlacements() {
  return {
      {Coord{2, 2}, 0},
      {Coord{13, 2}, 1},
      {Coord{2, 13}, 2},
      {Coord{13, 13}, 3},
  };
}

} // namespace

TEST(FaultTest, ZeroRatesAreBitIdenticalToFaultFreeEngine) {
  // The acceptance criterion of the fault layer: with all rates zero the
  // engine must take the exact fault-free trajectory — same t_comm for
  // the paper's Table 1 genomes, step by step.
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    Rng FieldRng(2013);
    InitialConfiguration Field = randomConfiguration(T, 8, FieldRng);

    SimOptions Plain;
    Plain.MaxSteps = 1000;
    SimOptions Zeroed = Plain;
    Zeroed.Faults.Seed = 0xdeadbeef; // Must be irrelevant at rate 0.

    World A(T), B(T);
    A.reset(bestAgent(Kind), Field.Placements, Plain);
    B.reset(bestAgent(Kind), Field.Placements, Zeroed);
    for (int Step = 0; Step != Plain.MaxSteps; ++Step) {
      World::Status SA = A.step();
      World::Status SB = B.step();
      ASSERT_EQ(SA, SB) << "trajectories diverged at step " << Step;
      for (int Id = 0; Id != A.numAgents(); ++Id) {
        const AgentState &AgA = A.agent(Id), &AgB = B.agent(Id);
        ASSERT_EQ(AgA.Cell, AgB.Cell);
        ASSERT_EQ(AgA.Direction, AgB.Direction);
        ASSERT_EQ(AgA.ControlState, AgB.ControlState);
        ASSERT_TRUE(AgA.Comm == AgB.Comm);
      }
      if (SA == World::Status::Solved)
        break;
    }
    EXPECT_EQ(A.time(), B.time());
    EXPECT_EQ(B.faultStats().total(), 0);
  }
}

TEST(FaultTest, CertainStallFreezesActionsButNotCommunication) {
  Torus T(GridKind::Triangulate, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 50;
  O.Faults.StallProbability = 1.0;
  W.reset(bestTriangulateAgent(), cornerPlacements(), O);

  // Record the post-reset state; under permanent stall it must never move.
  struct Frozen {
    int Cell;
    uint8_t Direction;
    uint8_t ControlState;
  };
  std::vector<Frozen> Initial;
  for (int Id = 0; Id != W.numAgents(); ++Id) {
    const AgentState &A = W.agent(Id);
    Initial.push_back({A.Cell, A.Direction, A.ControlState});
  }
  for (int Step = 0; Step != 20; ++Step) {
    W.step();
    for (int Id = 0; Id != W.numAgents(); ++Id) {
      const AgentState &A = W.agent(Id);
      const Frozen &F = Initial[static_cast<size_t>(Id)];
      EXPECT_EQ(A.Cell, F.Cell) << "a stalled agent moved";
      EXPECT_EQ(A.Direction, F.Direction) << "a stalled agent turned";
      EXPECT_EQ(A.ControlState, F.ControlState)
          << "a stalled agent switched state";
      // Stalled processors stay readable: the own bit never disappears.
      EXPECT_TRUE(A.Comm.test(static_cast<size_t>(Id)));
    }
  }
  EXPECT_EQ(W.faultStats().Stalls, 20 * W.numAgents());
  EXPECT_EQ(W.faultStats().Deaths, 0);
}

TEST(FaultTest, AdjacentStalledAgentsStillExchange) {
  // Two neighbours, both permanently stalled: communication alone must
  // solve the task in the very first exchange (t_comm = 0, the engine's
  // convention for already-adjacent agents).
  Torus T(GridKind::Triangulate, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 10;
  O.Faults.StallProbability = 1.0;
  std::vector<Placement> P = {{Coord{5, 5}, 0}, {Coord{6, 5}, 0}};
  W.reset(bestTriangulateAgent(), P, O);
  SimResult R = W.run();
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.TComm, 0);
}

TEST(FaultTest, CertainDeathGoesExtinctAndFails) {
  Torus T(GridKind::Square, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 500;
  O.Faults.DeathProbability = 1.0;
  W.reset(bestSquareAgent(), cornerPlacements(), O);
  SimResult R = W.run();
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.SurvivingAgents, 0);
  EXPECT_EQ(R.InformedFraction, 0.0);
  EXPECT_EQ(R.Faults.Deaths, 4);
  EXPECT_LT(W.time(), 500) << "extinction must terminate the run early";
  // Corpses free their cells.
  for (const Placement &P : cornerPlacements())
    EXPECT_EQ(W.agentAt(T.indexOf(P.Pos)), -1);
}

TEST(FaultTest, DeathSwitchesSuccessToSurvivorSemantics) {
  // Under death faults the run may still succeed once every *surviving*
  // agent holds the survivors' bits. Sweep fault seeds and check the
  // bookkeeping invariants on every outcome; require that at least one
  // seed produced the interesting case (success with casualties).
  Torus T(GridKind::Triangulate, 16);
  Rng FieldRng(7);
  InitialConfiguration Field = randomConfiguration(T, 8, FieldRng);
  bool SawLossySuccess = false;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    World W(T);
    SimOptions O;
    O.MaxSteps = 1000;
    O.Faults.DeathProbability = 0.01;
    O.Faults.Seed = Seed;
    W.reset(bestTriangulateAgent(), Field.Placements, O);
    SimResult R = W.run();
    EXPECT_EQ(R.SurvivingAgents + static_cast<int>(R.Faults.Deaths),
              R.NumAgents);
    EXPECT_LE(R.InformedAgents, R.SurvivingAgents);
    if (R.Success) {
      EXPECT_GT(R.SurvivingAgents, 0);
      EXPECT_EQ(R.InformedAgents, R.SurvivingAgents);
      EXPECT_EQ(R.InformedFraction, 1.0);
      if (R.SurvivingAgents < R.NumAgents)
        SawLossySuccess = true;
    }
  }
  EXPECT_TRUE(SawLossySuccess)
      << "no seed in 1..40 exercised survivor-based success";
}

TEST(FaultTest, CertainLinkDropCutsAllInformationFlow) {
  Torus T(GridKind::Triangulate, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 60;
  O.Faults.LinkDropProbability = 1.0;
  W.reset(bestTriangulateAgent(), cornerPlacements(), O);
  SimResult R = W.run();
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.InformedAgents, 0);
  for (int Id = 0; Id != W.numAgents(); ++Id)
    EXPECT_EQ(W.agent(Id).Comm.count(), 1u)
        << "information crossed a fully faulty channel";
  // Every directed read of every step dropped.
  EXPECT_EQ(R.Faults.DroppedLinks,
            static_cast<int64_t>(W.numAgents()) * T.degree() * W.time());
}

TEST(FaultTest, LinkFilterRestrictsWhichLinksCanDrop) {
  // Filter that never matches: rate 1.0 still drops nothing.
  Torus T(GridKind::Triangulate, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 200;
  O.Faults.LinkDropProbability = 1.0;
  O.Faults.LinkFilter = [](const Torus &, int, uint8_t) { return false; };
  W.reset(bestTriangulateAgent(), cornerPlacements(), O);
  SimResult R = W.run();
  EXPECT_EQ(R.Faults.DroppedLinks, 0);
  EXPECT_TRUE(R.Success) << "a never-matching filter must not disturb runs";
}

TEST(FaultTest, ColorFlipsCorruptOnlyTheColorLayer) {
  Torus T(GridKind::Square, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 30;
  O.Faults.ColorFlipProbability = 0.3;
  W.reset(bestSquareAgent(), cornerPlacements(), O);
  int NumColors = bestSquareAgent().dims().Colors;
  for (int Step = 0; Step != 30; ++Step) {
    if (W.step() == World::Status::Solved)
      break;
    for (int Cell = 0; Cell != T.numCells(); ++Cell) {
      int Value = W.colorValueAt(Cell);
      EXPECT_GE(Value, 0);
      EXPECT_LT(Value, NumColors) << "flip produced an illegal colour";
    }
  }
  EXPECT_GT(W.faultStats().ColorFlips, 0);
  EXPECT_EQ(W.faultStats().Stalls, 0);
  EXPECT_EQ(W.faultStats().Deaths, 0);
  EXPECT_EQ(W.faultStats().DroppedLinks, 0);
}

TEST(FaultTest, DegradationFieldsArePopulatedWithoutFaults) {
  // Fault-free runs must still fill the degradation fields sensibly.
  Torus T(GridKind::Triangulate, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 1000;
  W.reset(bestTriangulateAgent(), cornerPlacements(), O);
  SimResult R = W.run();
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.SurvivingAgents, R.NumAgents);
  EXPECT_EQ(R.InformedFraction, 1.0);
  EXPECT_EQ(R.Faults.total(), 0);
}

TEST(FaultTest, CertainDeathOnStepZeroLeavesConsistentWorld) {
  // The harshest edge: every agent dies on the very first step, before a
  // single action ever executed. The world must stay internally
  // consistent — cells freed, communication frozen, run terminated — and
  // nothing may assume "at least one step of normal operation happened".
  Torus T(GridKind::Triangulate, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 100;
  O.Faults.DeathProbability = 1.0;
  W.reset(bestTriangulateAgent(), cornerPlacements(), O);
  W.step();
  EXPECT_EQ(W.faultStats().Deaths, 4) << "all deaths must land on step 0";
  for (const Placement &P : cornerPlacements())
    EXPECT_EQ(W.agentAt(T.indexOf(P.Pos)), -1) << "corpse kept its cell";
  // Continuing to step a fully extinct world must be a safe no-op.
  for (int Step = 0; Step != 5; ++Step)
    EXPECT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.faultStats().Deaths, 4);
}

TEST(FaultTest, ExtinctionMetricsAreCleanAndFinite) {
  // Total extinction is the degenerate denominator case: no survivors, no
  // solved runs. Every derived metric must come back as a clean zero (not
  // NaN or infinity from a 0/0), and the fitness layer must price the run
  // at its failure weight without arithmetic surprises.
  Torus T(GridKind::Square, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 200;
  O.Faults.DeathProbability = 1.0;
  W.reset(bestSquareAgent(), cornerPlacements(), O);
  SimResult R = W.run();
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.SurvivingAgents, 0);
  EXPECT_EQ(R.InformedAgents, 0);
  EXPECT_EQ(R.InformedFraction, 0.0);
  EXPECT_TRUE(std::isfinite(R.InformedFraction));
  const double Weight = 385.0;
  double F = fitnessOfRun(R, O.MaxSteps, Weight);
  EXPECT_TRUE(std::isfinite(F));
  EXPECT_GE(F, Weight) << "an extinct run must cost at least one weight";
  FitnessResult Acc = accumulateFitness({R, R}, O.MaxSteps, Weight);
  EXPECT_TRUE(std::isfinite(Acc.Fitness));
  EXPECT_EQ(Acc.SolvedFields, 0);
  EXPECT_EQ(Acc.MeanCommTime, 0.0)
      << "mean over zero solved fields must be 0, not 0/0";
}

TEST(FaultTest, FaultStreamIsIndependentOfAgentPlacement) {
  // The link-drop process draws per (agent, direction) pair regardless of
  // where the agents stand, so two runs with the same fault seed and agent
  // count but completely different placements must fire the identical
  // number of drops per step. This pins the promised independence of the
  // fault stream from the placement RNG: reshuffling fields (a different
  // placement seed) can never perturb which faults fire.
  Torus T(GridKind::Triangulate, 16);
  Rng RngA(101), RngB(909);
  InitialConfiguration FieldA = randomConfiguration(T, 6, RngA);
  InitialConfiguration FieldB = randomConfiguration(T, 6, RngB);
  bool SamePlacements = FieldA.Placements.size() == FieldB.Placements.size();
  for (size_t I = 0; SamePlacements && I != FieldA.Placements.size(); ++I)
    SamePlacements = FieldA.Placements[I].Pos == FieldB.Placements[I].Pos &&
                     FieldA.Placements[I].Direction ==
                         FieldB.Placements[I].Direction;
  ASSERT_FALSE(SamePlacements) << "field seeds 101/909 collided";

  SimOptions O;
  O.MaxSteps = 40;
  O.Faults.LinkDropProbability = 0.37;
  O.Faults.Seed = 555;
  World WA(T), WB(T);
  WA.reset(bestTriangulateAgent(), FieldA.Placements, O);
  WB.reset(bestTriangulateAgent(), FieldB.Placements, O);
  std::vector<int64_t> DropsA, DropsB;
  for (int Step = 0; Step != 25; ++Step) {
    WA.step();
    WB.step();
    DropsA.push_back(WA.faultStats().DroppedLinks);
    DropsB.push_back(WB.faultStats().DroppedLinks);
    ASSERT_EQ(DropsA.back(), DropsB.back())
        << "fault stream diverged at step " << Step
        << " despite identical seed and agent count";
  }
  EXPECT_GT(WA.faultStats().DroppedLinks, 0);

  // And the converse: a different fault seed on the *same* placements
  // yields a different per-step drop trail (the stream really is seeded;
  // the full 25-step trail cannot collide by chance the way a single
  // total could).
  SimOptions O2 = O;
  O2.Faults.Seed = 556;
  World WC(T);
  WC.reset(bestTriangulateAgent(), FieldA.Placements, O2);
  std::vector<int64_t> DropsC;
  for (int Step = 0; Step != 25; ++Step) {
    WC.step();
    DropsC.push_back(WC.faultStats().DroppedLinks);
  }
  EXPECT_NE(DropsC, DropsA);
}

TEST(FaultTest, DescribeFunctionsMentionActiveProcesses) {
  FaultModel F;
  F.StallProbability = 0.25;
  F.LinkDropProbability = 0.5;
  std::string Text = describeFaultModel(F);
  EXPECT_NE(Text.find("stall"), std::string::npos);
  EXPECT_NE(Text.find("drop"), std::string::npos);
  FaultStats S;
  S.Deaths = 3;
  EXPECT_NE(describeFaultStats(S).find("3"), std::string::npos);
}

TEST(ValidatePlacementsTest, AcceptsGoodAndRejectsBadConfigurations) {
  Torus T(GridKind::Triangulate, 16);
  SimOptions O;
  EXPECT_TRUE(World::validatePlacements(T, cornerPlacements(), O));

  EXPECT_FALSE(World::validatePlacements(T, {}, O)) << "empty placement set";

  std::vector<Placement> Duplicate = {{Coord{3, 3}, 0}, {Coord{3, 3}, 1}};
  EXPECT_FALSE(World::validatePlacements(T, Duplicate, O));

  // The torus wraps, so (19, 3) is (3, 3) again: still a duplicate.
  std::vector<Placement> Wrapped = {{Coord{3, 3}, 0}, {Coord{19, 3}, 1}};
  EXPECT_FALSE(World::validatePlacements(T, Wrapped, O));

  std::vector<Placement> BadDirection = {
      {Coord{3, 3}, static_cast<uint8_t>(T.degree())}};
  EXPECT_FALSE(World::validatePlacements(T, BadDirection, O));

  SimOptions Obstructed;
  Obstructed.Obstacles = {Coord{5, 5}};
  std::vector<Placement> OnObstacle = {{Coord{5, 5}, 0}};
  EXPECT_FALSE(World::validatePlacements(T, OnObstacle, Obstructed));
  std::vector<Placement> NextToObstacle = {{Coord{6, 5}, 0}};
  EXPECT_TRUE(World::validatePlacements(T, NextToObstacle, Obstructed));
}
