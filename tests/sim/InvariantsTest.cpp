//===- tests/sim/InvariantsTest.cpp - Engine invariant property sweep -----===//
//
// Property-based testing: random genomes on random configurations, with
// the engine's global invariants checked after every step — one agent per
// cell, occupancy consistency, conserved agent count, monotone knowledge,
// direction/state ranges. TEST_P sweeps seeds, grid kinds and densities.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/World.h"

#include "gtest/gtest.h"

#include <set>

using namespace ca2a;

struct InvariantCase {
  GridKind Kind;
  int NumAgents;
  uint64_t Seed;
};

class EngineInvariantTest : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(EngineInvariantTest, HoldAtEveryStepUnderRandomBehaviour) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed);
  Genome G = Genome::random(R);
  InitialConfiguration Field = randomConfiguration(T, C.NumAgents, R);
  SimOptions O;
  O.MaxSteps = 120;
  W.reset(G, Field.Placements, O);

  std::vector<size_t> LastKnowledge(static_cast<size_t>(C.NumAgents), 0);
  for (int Step = 0; Step != O.MaxSteps; ++Step) {
    if (W.step() == World::Status::Solved)
      break;

    // One agent per cell; occupancy table consistent both ways.
    std::set<int> Cells;
    for (int Id = 0; Id != W.numAgents(); ++Id) {
      const AgentState &A = W.agent(Id);
      EXPECT_TRUE(Cells.insert(A.Cell).second)
          << "two agents share cell " << A.Cell << " at step " << Step;
      EXPECT_EQ(W.agentAt(A.Cell), Id) << "occupancy table inconsistent";
      EXPECT_LT(A.Direction, T.degree());
      EXPECT_LT(A.ControlState, NumControlStates);
      // Knowledge is monotone and always includes the own bit.
      EXPECT_TRUE(A.Comm.test(static_cast<size_t>(Id)));
      size_t Knowledge = A.Comm.count();
      EXPECT_GE(Knowledge, LastKnowledge[static_cast<size_t>(Id)])
          << "agent " << Id << " forgot information at step " << Step;
      LastKnowledge[static_cast<size_t>(Id)] = Knowledge;
    }
    EXPECT_EQ(W.numAgents(), C.NumAgents) << "agent count not conserved";

    // Every occupied cell in the table maps back to an agent there.
    int Occupied = 0;
    for (int Cell = 0; Cell != T.numCells(); ++Cell) {
      int Id = W.agentAt(Cell);
      if (Id < 0)
        continue;
      ++Occupied;
      EXPECT_EQ(W.agent(Id).Cell, Cell);
    }
    EXPECT_EQ(Occupied, C.NumAgents);
  }
}

TEST_P(EngineInvariantTest, InvariantsAlsoHoldWithObstaclesAndBorders) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed ^ 0xabcdef);
  Genome G = Genome::random(R);
  SimOptions O;
  O.MaxSteps = 100;
  O.Bordered = (C.Seed % 2) == 0;
  O.Obstacles = randomObstacles(T, 20, R);
  InitialConfiguration Field =
      randomConfigurationAvoiding(T, C.NumAgents, R, O.Obstacles);
  W.reset(G, Field.Placements, O);

  for (int Step = 0; Step != O.MaxSteps; ++Step) {
    if (W.step() == World::Status::Solved)
      break;
    std::set<int> Cells;
    for (int Id = 0; Id != W.numAgents(); ++Id) {
      const AgentState &A = W.agent(Id);
      EXPECT_TRUE(Cells.insert(A.Cell).second);
      EXPECT_FALSE(W.obstacleAt(A.Cell))
          << "agent entered an obstacle at step " << Step;
    }
  }
}

static std::string invariantCaseName(
    const ::testing::TestParamInfo<InvariantCase> &I) {
  return std::string(gridKindName(I.param.Kind)) + "k" +
         std::to_string(I.param.NumAgents) + "seed" +
         std::to_string(I.param.Seed);
}

INSTANTIATE_TEST_SUITE_P(
    RandomBehaviours, EngineInvariantTest,
    ::testing::Values(InvariantCase{GridKind::Square, 2, 1},
                      InvariantCase{GridKind::Square, 8, 2},
                      InvariantCase{GridKind::Square, 16, 3},
                      InvariantCase{GridKind::Square, 64, 4},
                      InvariantCase{GridKind::Square, 128, 5},
                      InvariantCase{GridKind::Triangulate, 2, 6},
                      InvariantCase{GridKind::Triangulate, 8, 7},
                      InvariantCase{GridKind::Triangulate, 16, 8},
                      InvariantCase{GridKind::Triangulate, 64, 9},
                      InvariantCase{GridKind::Triangulate, 128, 10},
                      InvariantCase{GridKind::Square, 32, 11},
                      InvariantCase{GridKind::Triangulate, 32, 12}),
    invariantCaseName);
