//===- tests/sim/InvariantsTest.cpp - Engine invariant property sweep -----===//
//
// Property-based testing: random genomes on random configurations, with
// the engine's global invariants checked after every step — one agent per
// cell, occupancy consistency, conserved agent count, monotone knowledge,
// direction/state ranges. TEST_P sweeps seeds, grid kinds and densities.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"
#include "sim/World.h"

#include "gtest/gtest.h"

#include <set>

using namespace ca2a;

struct InvariantCase {
  GridKind Kind;
  int NumAgents;
  uint64_t Seed;
};

class EngineInvariantTest : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(EngineInvariantTest, HoldAtEveryStepUnderRandomBehaviour) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed);
  Genome G = Genome::random(R);
  InitialConfiguration Field = randomConfiguration(T, C.NumAgents, R);
  SimOptions O;
  O.MaxSteps = 120;
  W.reset(G, Field.Placements, O);

  std::vector<size_t> LastKnowledge(static_cast<size_t>(C.NumAgents), 0);
  for (int Step = 0; Step != O.MaxSteps; ++Step) {
    if (W.step() == World::Status::Solved)
      break;

    // One agent per cell; occupancy table consistent both ways.
    std::set<int> Cells;
    for (int Id = 0; Id != W.numAgents(); ++Id) {
      const AgentState &A = W.agent(Id);
      EXPECT_TRUE(Cells.insert(A.Cell).second)
          << "two agents share cell " << A.Cell << " at step " << Step;
      EXPECT_EQ(W.agentAt(A.Cell), Id) << "occupancy table inconsistent";
      EXPECT_LT(A.Direction, T.degree());
      EXPECT_LT(A.ControlState, NumControlStates);
      // Knowledge is monotone and always includes the own bit.
      EXPECT_TRUE(A.Comm.test(static_cast<size_t>(Id)));
      size_t Knowledge = A.Comm.count();
      EXPECT_GE(Knowledge, LastKnowledge[static_cast<size_t>(Id)])
          << "agent " << Id << " forgot information at step " << Step;
      LastKnowledge[static_cast<size_t>(Id)] = Knowledge;
    }
    EXPECT_EQ(W.numAgents(), C.NumAgents) << "agent count not conserved";

    // Every occupied cell in the table maps back to an agent there.
    int Occupied = 0;
    for (int Cell = 0; Cell != T.numCells(); ++Cell) {
      int Id = W.agentAt(Cell);
      if (Id < 0)
        continue;
      ++Occupied;
      EXPECT_EQ(W.agent(Id).Cell, Cell);
    }
    EXPECT_EQ(Occupied, C.NumAgents);
  }
}

TEST_P(EngineInvariantTest, InvariantsAlsoHoldWithObstaclesAndBorders) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed ^ 0xabcdef);
  Genome G = Genome::random(R);
  SimOptions O;
  O.MaxSteps = 100;
  O.Bordered = (C.Seed % 2) == 0;
  O.Obstacles = randomObstacles(T, 20, R);
  InitialConfiguration Field =
      randomConfigurationAvoiding(T, C.NumAgents, R, O.Obstacles);
  W.reset(G, Field.Placements, O);

  for (int Step = 0; Step != O.MaxSteps; ++Step) {
    if (W.step() == World::Status::Solved)
      break;
    std::set<int> Cells;
    for (int Id = 0; Id != W.numAgents(); ++Id) {
      const AgentState &A = W.agent(Id);
      EXPECT_TRUE(Cells.insert(A.Cell).second);
      EXPECT_FALSE(W.obstacleAt(A.Cell))
          << "agent entered an obstacle at step " << Step;
    }
  }
}

TEST_P(EngineInvariantTest, InvariantsAlsoHoldUnderFaultInjection) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed ^ 0x5eed);
  Genome G = Genome::random(R);
  InitialConfiguration Field = randomConfiguration(T, C.NumAgents, R);
  SimOptions O;
  O.MaxSteps = 120;
  O.Faults.StallProbability = 0.05;
  O.Faults.DeathProbability = 0.005;
  O.Faults.LinkDropProbability = 0.02;
  O.Faults.ColorFlipProbability = 0.01;
  O.Faults.Seed = C.Seed;
  W.reset(G, Field.Placements, O);

  int LastSurvivors = W.numAgents();
  for (int Step = 0; Step != O.MaxSteps; ++Step) {
    if (W.step() == World::Status::Solved)
      break;
    // Survivor count is monotone and matches the alive flags.
    int Alive = 0;
    std::set<int> Cells;
    for (int Id = 0; Id != W.numAgents(); ++Id) {
      const AgentState &A = W.agent(Id);
      if (!A.Alive)
        continue;
      ++Alive;
      // Live agents: one per cell, consistent occupancy, legal ranges.
      EXPECT_TRUE(Cells.insert(A.Cell).second)
          << "two live agents share cell " << A.Cell << " at step " << Step;
      EXPECT_EQ(W.agentAt(A.Cell), Id) << "occupancy table inconsistent";
      EXPECT_LT(A.Direction, T.degree());
      EXPECT_LT(A.ControlState, NumControlStates);
      EXPECT_TRUE(A.Comm.test(static_cast<size_t>(Id)));
    }
    EXPECT_EQ(Alive, W.survivorCount());
    EXPECT_LE(W.survivorCount(), LastSurvivors) << "an agent resurrected";
    LastSurvivors = W.survivorCount();

    // Occupancy holds exactly the live agents — corpses freed their cells.
    int Occupied = 0;
    for (int Cell = 0; Cell != T.numCells(); ++Cell) {
      int Id = W.agentAt(Cell);
      if (Id < 0)
        continue;
      ++Occupied;
      EXPECT_TRUE(W.agent(Id).Alive) << "a dead agent still occupies a cell";
      EXPECT_EQ(W.agent(Id).Cell, Cell);
    }
    EXPECT_EQ(Occupied, W.survivorCount());
    EXPECT_LE(W.informedCount(), W.survivorCount());
  }
}

TEST_P(EngineInvariantTest, IdenticalFaultSeedsGiveIdenticalResults) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  Rng R(C.Seed ^ 0xfa17);
  Genome G = Genome::random(R);
  InitialConfiguration Field = randomConfiguration(T, C.NumAgents, R);
  SimOptions O;
  O.MaxSteps = 150;
  O.Faults.StallProbability = 0.1;
  O.Faults.DeathProbability = 0.01;
  O.Faults.LinkDropProbability = 0.05;
  O.Faults.ColorFlipProbability = 0.02;
  O.Faults.Seed = C.Seed * 31 + 1;

  auto RunOnce = [&] {
    World W(T);
    W.reset(G, Field.Placements, O);
    return W.run();
  };
  SimResult A = RunOnce();
  SimResult B = RunOnce();
  EXPECT_EQ(A.Success, B.Success);
  EXPECT_EQ(A.TComm, B.TComm);
  EXPECT_EQ(A.InformedAgents, B.InformedAgents);
  EXPECT_EQ(A.SurvivingAgents, B.SurvivingAgents);
  EXPECT_EQ(A.InformedFraction, B.InformedFraction);
  EXPECT_TRUE(A.Faults == B.Faults)
      << "the same fault seed must fire the same events";

  // A different fault stream must be an actually different trajectory
  // somewhere in the sweep (checked in aggregate via the event counts).
  SimOptions Other = O;
  Other.Faults.Seed = O.Faults.Seed + 1;
  World W(T);
  W.reset(G, Field.Placements, Other);
  SimResult D = W.run();
  // Not asserting inequality per case (a short run can coincide), but the
  // counters must at least be populated consistently.
  EXPECT_EQ(D.SurvivingAgents + static_cast<int>(D.Faults.Deaths),
            D.NumAgents);
}

TEST(SeamFaultTest, SeamLinkDropsAreEquivalentToBorderedBlocking) {
  // A permanently faulty seam link is the Bordered semantics in disguise:
  // with every agent stalled (so only the exchange acts), a cyclic world
  // whose seam-crossing links always drop must produce exactly the
  // knowledge trajectory of a bordered world. Rate-1 and rate-0 Bernoulli
  // draws consume no RNG state, so both worlds' fault streams stay empty.
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    Rng R(Kind == GridKind::Square ? 101 : 202);
    Genome G = Genome::random(R);
    // Two full rows on the wrap seam, connected through an interior
    // column: information flows along the rows and through the column,
    // while the direct row-to-row shortcut exists only across the seam.
    std::vector<Placement> P;
    for (int X = 0; X != 16; ++X) {
      P.push_back({Coord{X, 0}, 0});
      P.push_back({Coord{X, 15}, 0});
    }
    for (int Y = 1; Y != 15; ++Y)
      P.push_back({Coord{4, Y}, 0});

    SimOptions BorderedOpts;
    BorderedOpts.MaxSteps = 80;
    BorderedOpts.Bordered = true;
    BorderedOpts.Faults.StallProbability = 1.0;

    SimOptions SeamFaultOpts;
    SeamFaultOpts.MaxSteps = 80;
    SeamFaultOpts.Bordered = false;
    SeamFaultOpts.Faults.StallProbability = 1.0;
    SeamFaultOpts.Faults.LinkDropProbability = 1.0;
    SeamFaultOpts.Faults.LinkFilter = [](const Torus &T, int Cell,
                                         uint8_t Direction) {
      return T.crossesBoundary(Cell, Direction);
    };

    World Bordered(T), SeamFault(T);
    Bordered.reset(G, P, BorderedOpts);
    SeamFault.reset(G, P, SeamFaultOpts);
    for (int Step = 0; Step != BorderedOpts.MaxSteps; ++Step) {
      World::Status SA = Bordered.step();
      World::Status SB = SeamFault.step();
      ASSERT_EQ(SA, SB) << "solved at different times at step " << Step;
      ASSERT_EQ(Bordered.informedCount(), SeamFault.informedCount())
          << "knowledge diverged at step " << Step;
      for (int Id = 0; Id != Bordered.numAgents(); ++Id)
        ASSERT_TRUE(Bordered.agent(Id).Comm == SeamFault.agent(Id).Comm)
            << "agent " << Id << " diverged at step " << Step;
      if (SA == World::Status::Solved)
        break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Cross-engine step-callback harness: the same per-iteration snapshots are
// collected from the reference World (via run(OnStep)) and from the batch
// engine (via BatchRunOptions::OnStep), then one shared checker asserts
// the trajectory invariants — communication vectors monotone
// non-decreasing, exactly one live agent per cell, and colours changing
// only where an agent stood (i.e. only through setcolor) — on both, and
// that the two trajectories are identical.
//===----------------------------------------------------------------------===//

namespace {

/// Everything an invariant needs to see about one observed iteration
/// (observation point: after the exchange/success check, before actions).
struct StepObservation {
  int Time = 0;
  std::vector<int32_t> Cells;     ///< Per agent (stale when dead).
  std::vector<uint8_t> Alive;     ///< Per agent, 0/1.
  std::vector<size_t> Knowledge;  ///< Comm popcount per agent.
  std::vector<uint8_t> OwnBit;    ///< Agent's own comm bit, 0/1.
  std::vector<uint8_t> Colors;    ///< Per cell.
  std::vector<int16_t> Occupancy; ///< Agent id per cell, -1 empty.
};

std::vector<StepObservation>
observeReference(const Torus &T, const Genome &G,
                 const std::vector<Placement> &P, const SimOptions &O) {
  std::vector<StepObservation> Trace;
  World W(T);
  W.reset(G, P, O);
  W.run([&](const World &View, int Time) {
    StepObservation S;
    S.Time = Time;
    for (int Id = 0; Id != View.numAgents(); ++Id) {
      const AgentState &A = View.agent(Id);
      S.Cells.push_back(A.Cell);
      S.Alive.push_back(A.Alive ? 1 : 0);
      S.Knowledge.push_back(A.Comm.count());
      S.OwnBit.push_back(A.Comm.test(static_cast<size_t>(Id)) ? 1 : 0);
    }
    for (int Cell = 0; Cell != T.numCells(); ++Cell) {
      S.Colors.push_back(static_cast<uint8_t>(View.colorValueAt(Cell)));
      S.Occupancy.push_back(static_cast<int16_t>(View.agentAt(Cell)));
    }
    Trace.push_back(std::move(S));
  });
  return Trace;
}

std::vector<StepObservation>
observeBatch(const Torus &T, const Genome &G,
             const std::vector<Placement> &P, const SimOptions &O) {
  std::vector<StepObservation> Trace;
  BatchEngine Engine(T);
  BatchReplica Rep;
  Rep.A = &G;
  Rep.Placements = &P;
  Rep.Options = &O;
  BatchRunOptions RunOptions;
  RunOptions.OnStep = [&](const BatchStepView &View) {
    StepObservation S;
    S.Time = View.Time;
    for (int Id = 0; Id != View.NumAgents; ++Id) {
      S.Cells.push_back(View.Cells[Id]);
      S.Alive.push_back(View.Alive[Id]);
      size_t Bits = 0;
      for (int Bit = 0; Bit != View.NumAgents; ++Bit)
        Bits += View.commBit(Id, Bit) ? 1 : 0;
      S.Knowledge.push_back(Bits);
      S.OwnBit.push_back(View.commBit(Id, Id) ? 1 : 0);
    }
    S.Colors.assign(View.Colors, View.Colors + View.NumCells);
    S.Occupancy.assign(View.Occupancy, View.Occupancy + View.NumCells);
    Trace.push_back(std::move(S));
  };
  Engine.run({Rep}, RunOptions);
  return Trace;
}

/// The shared invariant checker, engine-agnostic by construction.
/// \p ColorProvenance enables the "colours change only on setcolor" check,
/// valid only when no colour-flip faults can fire.
void checkTrajectoryInvariants(const std::vector<StepObservation> &Trace,
                               bool ColorProvenance, const char *Engine) {
  for (size_t Step = 0; Step != Trace.size(); ++Step) {
    const StepObservation &S = Trace[Step];
    size_t NumAgents = S.Cells.size();

    // Exactly one live agent per cell, consistent with occupancy.
    std::set<int32_t> Cells;
    size_t NumAlive = 0;
    for (size_t Id = 0; Id != NumAgents; ++Id) {
      if (!S.Alive[Id])
        continue;
      ++NumAlive;
      ASSERT_TRUE(Cells.insert(S.Cells[Id]).second)
          << Engine << ": two live agents share cell " << S.Cells[Id]
          << " at step " << Step;
      ASSERT_EQ(S.Occupancy[static_cast<size_t>(S.Cells[Id])],
                static_cast<int16_t>(Id))
          << Engine << ": occupancy inconsistent at step " << Step;
      // Knowledge includes the own bit while alive.
      EXPECT_EQ(S.OwnBit[Id], 1)
          << Engine << ": agent " << Id << " lost its own bit at step "
          << Step;
    }
    size_t Occupied = 0;
    for (int16_t Id : S.Occupancy)
      Occupied += Id >= 0 ? 1 : 0;
    EXPECT_EQ(Occupied, NumAlive)
        << Engine << ": occupancy count differs from survivors at step "
        << Step;

    if (Step == 0)
      continue;
    const StepObservation &Prev = Trace[Step - 1];

    // Communication vectors are monotone non-decreasing.
    for (size_t Id = 0; Id != NumAgents; ++Id)
      EXPECT_GE(S.Knowledge[Id], Prev.Knowledge[Id])
          << Engine << ": agent " << Id << " forgot information at step "
          << Step;

    // Colours change only through setcolor: a changed cell must have held
    // an agent at the previous observation (the action phase between the
    // two writes the colour of the occupied cell before moving).
    if (ColorProvenance)
      for (size_t Cell = 0; Cell != S.Colors.size(); ++Cell)
        if (S.Colors[Cell] != Prev.Colors[Cell])
          EXPECT_GE(Prev.Occupancy[Cell], 0)
              << Engine << ": colour of unoccupied cell " << Cell
              << " changed at step " << Step;
  }
}

} // namespace

TEST_P(EngineInvariantTest, CallbackHarnessInvariantsHoldInBothEngines) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  Rng R(C.Seed ^ 0xca11bac);
  Genome G = Genome::random(R);
  InitialConfiguration Field = randomConfiguration(T, C.NumAgents, R);
  SimOptions O;
  O.MaxSteps = 80;
  if (C.Seed % 3 == 0) { // Exercise the harness under faults too (no
    O.Faults.StallProbability = 0.05; // colour flips: provenance stays
    O.Faults.DeathProbability = 0.01; // checkable).
    O.Faults.LinkDropProbability = 0.03;
    O.Faults.Seed = C.Seed;
  }

  std::vector<StepObservation> Ref =
      observeReference(T, G, Field.Placements, O);
  std::vector<StepObservation> Batch =
      observeBatch(T, G, Field.Placements, O);

  checkTrajectoryInvariants(Ref, /*ColorProvenance=*/true, "reference");
  checkTrajectoryInvariants(Batch, /*ColorProvenance=*/true, "batch");

  // The two engines must have produced the identical trajectory.
  ASSERT_EQ(Batch.size(), Ref.size());
  for (size_t Step = 0; Step != Ref.size(); ++Step) {
    ASSERT_EQ(Batch[Step].Time, Ref[Step].Time) << "at step " << Step;
    ASSERT_EQ(Batch[Step].Cells, Ref[Step].Cells) << "at step " << Step;
    ASSERT_EQ(Batch[Step].Alive, Ref[Step].Alive) << "at step " << Step;
    ASSERT_EQ(Batch[Step].Knowledge, Ref[Step].Knowledge)
        << "at step " << Step;
    ASSERT_EQ(Batch[Step].Colors, Ref[Step].Colors) << "at step " << Step;
    ASSERT_EQ(Batch[Step].Occupancy, Ref[Step].Occupancy)
        << "at step " << Step;
  }
}

TEST_P(EngineInvariantTest, ColoursNeverChangeWhenDisabledInBothEngines) {
  InvariantCase C = GetParam();
  Torus T(C.Kind, 16);
  Rng R(C.Seed ^ 0x0c010f);
  Genome G = Genome::random(R);
  InitialConfiguration Field = randomConfiguration(T, C.NumAgents, R);
  SimOptions O;
  O.MaxSteps = 40;
  O.ColorsEnabled = false;

  for (auto Observe : {observeReference, observeBatch}) {
    std::vector<StepObservation> Trace = Observe(T, G, Field.Placements, O);
    for (size_t Step = 0; Step != Trace.size(); ++Step)
      for (uint8_t Color : Trace[Step].Colors)
        ASSERT_EQ(Color, 0)
            << "a colour appeared with setcolor disabled at step " << Step;
  }
}

static std::string invariantCaseName(
    const ::testing::TestParamInfo<InvariantCase> &I) {
  return std::string(gridKindName(I.param.Kind)) + "k" +
         std::to_string(I.param.NumAgents) + "seed" +
         std::to_string(I.param.Seed);
}

INSTANTIATE_TEST_SUITE_P(
    RandomBehaviours, EngineInvariantTest,
    ::testing::Values(InvariantCase{GridKind::Square, 2, 1},
                      InvariantCase{GridKind::Square, 8, 2},
                      InvariantCase{GridKind::Square, 16, 3},
                      InvariantCase{GridKind::Square, 64, 4},
                      InvariantCase{GridKind::Square, 128, 5},
                      InvariantCase{GridKind::Triangulate, 2, 6},
                      InvariantCase{GridKind::Triangulate, 8, 7},
                      InvariantCase{GridKind::Triangulate, 16, 8},
                      InvariantCase{GridKind::Triangulate, 64, 9},
                      InvariantCase{GridKind::Triangulate, 128, 10},
                      InvariantCase{GridKind::Square, 32, 11},
                      InvariantCase{GridKind::Triangulate, 32, 12}),
    invariantCaseName);
