//===- tests/sim/WorldStepTest.cpp - Step-semantics unit tests ------------===//
//
// Each test pins one rule of the Sect. 3 step semantics with a crafted
// genome and placement: movement, wrapping, turning, colour writing,
// blocking, and conflict arbitration.
//
//===----------------------------------------------------------------------===//

#include "sim/World.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

/// Genome where every entry keeps the control state and performs \p A.
Genome constantGenome(Action A) {
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act = A;
    }
  return G;
}

/// Genome whose action depends only on the blocked bit of the input.
Genome blockedSwitchGenome(Action WhenFree, Action WhenBlocked) {
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act = (X & 1) ? WhenBlocked : WhenFree;
    }
  return G;
}

/// Genome whose action depends only on the control state.
Genome stateSwitchGenome(Action State0, Action State1) {
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act = (S == 0) ? State0 : State1;
    }
  return G;
}

Action makeAction(Turn T, bool Move, bool SetColor) {
  Action A;
  A.TurnCode = T;
  A.Move = Move;
  A.SetColor = SetColor;
  return A;
}

SimOptions defaultOptions() {
  SimOptions O;
  O.MaxSteps = 200;
  return O;
}

} // namespace

TEST(WorldResetTest, PlacesAgentsWithUnitVectors) {
  Torus T(GridKind::Square, 16);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, false, false));
  std::vector<Placement> P = {{Coord{2, 3}, 1}, {Coord{9, 9}, 3}};
  W.reset(G, P, defaultOptions());
  EXPECT_EQ(W.numAgents(), 2);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{2, 3}));
  EXPECT_EQ(W.agent(0).Direction, 1);
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{9, 9}));
  EXPECT_TRUE(W.agent(0).Comm.test(0));
  EXPECT_FALSE(W.agent(0).Comm.test(1));
  EXPECT_TRUE(W.agent(1).Comm.test(1));
  EXPECT_EQ(W.agentAt(T.indexOf(Coord{2, 3})), 0);
  EXPECT_EQ(W.agentAt(T.indexOf(Coord{0, 0})), -1);
  // ID-parity start states (the default).
  EXPECT_EQ(W.agent(0).ControlState, 0);
  EXPECT_EQ(W.agent(1).ControlState, 1);
}

TEST(WorldResetTest, UniformStartStates) {
  Torus T(GridKind::Square, 16);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, false, false));
  SimOptions O = defaultOptions();
  O.Start = StartStates::uniform(2);
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{5, 5}, 0}}, O);
  EXPECT_EQ(W.agent(0).ControlState, 2);
  EXPECT_EQ(W.agent(1).ControlState, 2);
}

class MoveStraightTest
    : public ::testing::TestWithParam<std::pair<GridKind, int>> {};

TEST_P(MoveStraightTest, AdvancesAlongEveryDirectionAndWraps) {
  auto [Kind, Direction] = GetParam();
  Torus T(Kind, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  // Two agents on "parallel" tracks that never become adjacent: same
  // direction, starting 4 rows/columns apart. They stay unsolved, so
  // step() keeps acting.
  Coord StartA{1, 1};
  Coord Offset = T.directionOffset(static_cast<uint8_t>(Direction));
  // Displace perpendicular-ish: add (4, 4) minus the direction itself to
  // stay off the first agent's track.
  Coord StartB{T.wrap(StartA.X + 4), T.wrap(StartA.Y + 4)};
  std::vector<Placement> P = {
      {StartA, static_cast<uint8_t>(Direction)},
      {StartB, static_cast<uint8_t>(Direction)},
  };
  W.reset(G, P, defaultOptions());
  for (int Step = 1; Step <= 8; ++Step) {
    ASSERT_EQ(W.step(), World::Status::Running);
    Coord Expected{T.wrap(StartA.X + Offset.X * Step),
                   T.wrap(StartA.Y + Offset.Y * Step)};
    EXPECT_EQ(W.agent(0).Cell, T.indexOf(Expected))
        << "direction " << Direction << " step " << Step;
  }
  // After 8 steps on an 8-torus both agents are back home (wrap test).
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(StartA));
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(StartB));
}

INSTANTIATE_TEST_SUITE_P(
    AllDirections, MoveStraightTest,
    ::testing::Values(std::pair{GridKind::Square, 0},
                      std::pair{GridKind::Square, 1},
                      std::pair{GridKind::Square, 2},
                      std::pair{GridKind::Square, 3},
                      std::pair{GridKind::Triangulate, 0},
                      std::pair{GridKind::Triangulate, 1},
                      std::pair{GridKind::Triangulate, 2},
                      std::pair{GridKind::Triangulate, 3},
                      std::pair{GridKind::Triangulate, 4},
                      std::pair{GridKind::Triangulate, 5}));

TEST(WorldStepTest, TurnWithoutMoveRotatesInPlace) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 8);
    World W(T);
    Genome G = constantGenome(makeAction(Turn::Right, false, false));
    W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, defaultOptions());
    int Degree = T.degree();
    for (int Step = 1; Step <= Degree; ++Step) {
      ASSERT_EQ(W.step(), World::Status::Running);
      EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0}));
      EXPECT_EQ(W.agent(0).Direction, Step % Degree);
    }
  }
}

TEST(WorldStepTest, TurnAppliesEvenWhenMoving) {
  // Rm0: turn right and move. The agent moves in its *pre-turn* direction
  // is NOT the semantics: move uses the current direction, turn updates it
  // for the next step; both outputs of the same FSM entry. The paper's
  // action is applied as (setcolor, turn, move) on the state at step
  // start; we fix move-along-old-direction, turn-for-next-step.
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Right, true, false));
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running);
  // Moved east (old direction 0), now facing north (1).
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0}));
  EXPECT_EQ(W.agent(0).Direction, 1);
  ASSERT_EQ(W.step(), World::Status::Running);
  // Moved north, now facing west.
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 1}));
  EXPECT_EQ(W.agent(0).Direction, 2);
}

TEST(WorldStepTest, SetColorWritesTheDepartedCell) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, true));
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running);
  // The colour went to (0,0), where the agent stood, not to (1,0).
  EXPECT_TRUE(W.colorAt(T.indexOf(Coord{0, 0})));
  EXPECT_FALSE(W.colorAt(T.indexOf(Coord{1, 0})));
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_TRUE(W.colorAt(T.indexOf(Coord{1, 0})));
}

TEST(WorldStepTest, SetColorZeroErases) {
  Torus T(GridKind::Square, 8);
  World W(T);
  // State-independent: always write 0. Start on a field where we manually
  // check the cell stays clear (fields start all-clear anyway), then flip
  // to a writer genome and back via two worlds.
  Genome Writer = constantGenome(makeAction(Turn::Back, true, true));
  W.reset(Writer, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running); // Writes 1 at (0,0), moves E.
  EXPECT_TRUE(W.colorAt(T.indexOf(Coord{0, 0})));
  // Now the agent sits at (1,0) facing W; next step writes 1 at (1,0) and
  // moves back onto (0,0); the third step would rewrite (0,0).
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0}));

  // Eraser genome: a fresh run where agents write 0 over their own cells
  // keeps the field clear.
  Genome Eraser = constantGenome(makeAction(Turn::Straight, true, false));
  World W2(T);
  W2.reset(Eraser, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, defaultOptions());
  for (int I = 0; I != 5; ++I)
    ASSERT_EQ(W2.step(), World::Status::Running);
  for (int Cell = 0; Cell != T.numCells(); ++Cell)
    EXPECT_FALSE(W2.colorAt(Cell));
}

TEST(WorldStepTest, ColorsDisabledOptionSuppressesWrites) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, true));
  SimOptions O = defaultOptions();
  O.ColorsEnabled = false;
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, O);
  for (int I = 0; I != 5; ++I)
    ASSERT_EQ(W.step(), World::Status::Running);
  for (int Cell = 0; Cell != T.numCells(); ++Cell)
    EXPECT_FALSE(W.colorAt(Cell));
}

TEST(WorldStepTest, AgentReadsItsOwnCellColor) {
  // Genome: when own colour is 0, write 1 and stay; when own colour is 1,
  // move. An agent therefore alternates: colour step, move step.
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      bool OwnColor = (X >> 1) & 1;
      E.Act = OwnColor ? makeAction(Turn::Straight, true, true)
                       : makeAction(Turn::Straight, false, true);
    }
  Torus T(GridKind::Square, 8);
  World W(T);
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0})) << "first step waits";
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0})) << "second step moves";
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0})) << "fresh cell: wait";
}

TEST(WorldBlockingTest, FaceToFaceAgentsNeverSwap) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  // Agents 0/1 face each other; agent 2 far away keeps the task unsolved.
  std::vector<Placement> P = {
      {Coord{1, 0}, 0}, // East, toward (2,0).
      {Coord{2, 0}, 2}, // West, toward (1,0).
      {Coord{5, 5}, 1},
  };
  W.reset(G, P, defaultOptions());
  for (int I = 0; I != 4; ++I) {
    ASSERT_EQ(W.step(), World::Status::Running);
    EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0}));
    EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{2, 0}));
  }
}

TEST(WorldBlockingTest, BlockedInputBitIsVisibleToTheFsm) {
  // Free agents turn straight; blocked agents turn right. The two
  // face-to-face agents must rotate, the free runner must not.
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = blockedSwitchGenome(makeAction(Turn::Straight, true, false),
                                 makeAction(Turn::Right, true, false));
  std::vector<Placement> P = {
      {Coord{1, 0}, 0},
      {Coord{2, 0}, 2},
      {Coord{5, 5}, 1},
  };
  W.reset(G, P, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Direction, 1) << "blocked agent must see blocked=1";
  EXPECT_EQ(W.agent(1).Direction, 3);
  EXPECT_EQ(W.agent(2).Direction, 1) << "free agent must see blocked=0";
}

TEST(WorldBlockingTest, CannotFollowAVacatingAgent) {
  // Agent 1 sits in front of agent 0 but moves away this step; agent 0 is
  // still blocked (synchronous pre-step detection).
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  std::vector<Placement> P = {
      {Coord{0, 0}, 0}, // Agent 0 faces agent 1.
      {Coord{1, 0}, 1}, // Agent 1 moves north, vacating (1,0).
      {Coord{5, 5}, 3},
  };
  W.reset(G, P, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{1, 1})) << "front agent left";
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0}))
      << "agent 0 must not enter the vacated cell this step";
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0})) << "free next step";
}

TEST(WorldConflictTest, LowestIdWinsRegardlessOfPlacementOrder) {
  Torus T(GridKind::Square, 8);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  // Both orders: the agent with the lower ID takes the contested cell.
  {
    World W(T);
    std::vector<Placement> P = {
        {Coord{0, 0}, 0}, // Agent 0: east toward (1,0).
        {Coord{2, 0}, 2}, // Agent 1: west toward (1,0).
        {Coord{5, 5}, 1},
    };
    W.reset(G, P, defaultOptions());
    ASSERT_EQ(W.step(), World::Status::Running);
    EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0})) << "agent 0 wins";
    EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{2, 0})) << "agent 1 blocked";
  }
  {
    World W(T);
    std::vector<Placement> P = {
        {Coord{2, 0}, 2}, // Agent 0: west toward (1,0).
        {Coord{0, 0}, 0}, // Agent 1: east toward (1,0).
        {Coord{5, 5}, 1},
    };
    W.reset(G, P, defaultOptions());
    ASSERT_EQ(W.step(), World::Status::Running);
    EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0})) << "agent 0 wins";
    EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{0, 0})) << "agent 1 blocked";
  }
}

TEST(WorldConflictTest, ThreeWayConflictOnTriangulateGrid) {
  Torus T(GridKind::Triangulate, 8);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  World W(T);
  // Three agents all targeting (3,3): from the W (dir 0 = +1,0), from the
  // E (dir 3 = -1,0), and from the SW diagonal (dir 1 = +1,+1).
  std::vector<Placement> P = {
      {Coord{2, 3}, 0},
      {Coord{4, 3}, 3},
      {Coord{2, 2}, 1},
      {Coord{7, 7}, 5},
  };
  W.reset(G, P, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{3, 3}));
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{4, 3}));
  EXPECT_EQ(W.agent(2).Cell, T.indexOf(Coord{2, 2}));
}

TEST(WorldConflictTest, NonRequesterNeitherMovesNorBlocks) {
  // Agent 0 (state 0) does not request; agent 1 (state 1) requests the
  // same cell. The higher-ID requester moves: a standing agent's gaze does
  // not reserve a cell.
  Torus T(GridKind::Square, 8);
  Genome G = stateSwitchGenome(makeAction(Turn::Straight, false, false),
                               makeAction(Turn::Straight, true, false));
  World W(T);
  std::vector<Placement> P = {
      {Coord{0, 0}, 0}, // Agent 0 (state 0) faces (1,0), does not move.
      {Coord{1, 1}, 3}, // Agent 1 (state 1) faces (1,0) from the north.
      {Coord{5, 5}, 1},
  };
  W.reset(G, P, defaultOptions());
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0}));
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{1, 0}))
      << "requester must enter a cell only gazed at by a non-requester";
}

TEST(WorldStepTest, NextStateTransitions) {
  // Entries: state s -> state (s+1) mod 4, no other effects.
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>((S + 1) % NumControlStates);
      E.Act = makeAction(Turn::Straight, false, false);
    }
  Torus T(GridKind::Square, 8);
  World W(T);
  SimOptions O = defaultOptions();
  O.Start = StartStates::uniform(0);
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, O);
  for (int Step = 1; Step <= 6; ++Step) {
    ASSERT_EQ(W.step(), World::Status::Running);
    EXPECT_EQ(W.agent(0).ControlState, Step % NumControlStates);
  }
}

TEST(WorldStepTest, VisitCountsAccumulate) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, defaultOptions());
  EXPECT_EQ(W.visitCount(T.indexOf(Coord{0, 0})), 1) << "placement counts";
  for (int I = 0; I != 8; ++I)
    ASSERT_EQ(W.step(), World::Status::Running);
  // Agent 0 circled its row once: start cell entered twice, others once.
  EXPECT_EQ(W.visitCount(T.indexOf(Coord{0, 0})), 2);
  for (int X = 1; X != 8; ++X)
    EXPECT_EQ(W.visitCount(T.indexOf(Coord{X, 0})), 1);
}

TEST(WorldStepTest, RunIsDeterministic) {
  Torus T(GridKind::Triangulate, 16);
  Genome G = constantGenome(makeAction(Turn::Right, true, true));
  std::vector<Placement> P = {
      {Coord{0, 0}, 0}, {Coord{7, 3}, 2}, {Coord{12, 12}, 4}};
  World W1(T), W2(T);
  W1.reset(G, P, defaultOptions());
  W2.reset(G, P, defaultOptions());
  SimResult R1 = W1.run();
  SimResult R2 = W2.run();
  EXPECT_EQ(R1.Success, R2.Success);
  EXPECT_EQ(R1.TComm, R2.TComm);
  EXPECT_EQ(R1.InformedAgents, R2.InformedAgents);
  for (int Id = 0; Id != 3; ++Id)
    EXPECT_EQ(W1.agent(Id).Cell, W2.agent(Id).Cell);
}

TEST(WorldRunTest, NegativeMaxStepsIsRejectedAndTerminates) {
  Torus T(GridKind::Square, 8);
  std::vector<Placement> P = {{Coord{0, 0}, 0}, {Coord{3, 3}, 0}};
  SimOptions O;
  O.MaxSteps = -5;

  // The release-build validation path reports the bad cutoff...
  auto V = World::validatePlacements(T, P, O);
  ASSERT_FALSE(V);
  EXPECT_NE(V.error().message().find("MaxSteps"), std::string::npos)
      << "the error should name the offending option, got: "
      << V.error().message();

  // ...and run() itself terminates immediately: the historical loop
  // compared `I != MaxSteps`, so a negative cutoff iterated toward
  // overflow instead of running zero steps.
  World W(T);
  W.reset(constantGenome(makeAction(Turn::Straight, true, false)), P, O);
  SimResult R = W.run();
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(W.time(), 0) << "a negative cutoff must execute no iterations";
  EXPECT_EQ(R.NumAgents, 2);

  // Zero remains a legal (degenerate) cutoff that validates cleanly.
  O.MaxSteps = 0;
  EXPECT_TRUE(World::validatePlacements(T, P, O));
}
