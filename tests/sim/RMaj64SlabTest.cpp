//===- tests/sim/RMaj64SlabTest.cpp - Replica-major slab semantics --------===//
//
// The rmaj64 backend's distinguishing machinery, pinned directly: slab
// formation over clone batches (counts below, at and beyond the 64-lane
// capacity), the per-lane fault-stream retirement path (distinct fault
// seeds fire at divergent steps and each retired lane must replay its run
// bit-identically), LinkFilter-gated draws inside a slab, mixed batches
// where only some replicas are slab-eligible, and worker-count
// independence. The differential fuzz suite already proves rmaj64 matches
// the reference on arbitrary configurations; this file additionally pins
// the occupancy/retirement *accounting* in BatchRunStats that those tests
// never inspect.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"
#include "sim/simd/ReplicaSlab.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace ca2a;

namespace {

/// A deterministic mid-size triangulate scenario with enough agents and
/// steps that fault seeds have room to diverge.
struct Scenario {
  Torus T{GridKind::Triangulate, 12};
  Genome A;
  std::vector<Placement> Placements;
  SimOptions Options;

  explicit Scenario(uint64_t Seed, int NumAgents = 24) {
    Rng R(Seed);
    A = Genome::random(R);
    Placements = randomConfiguration(T, NumAgents, R).Placements;
    Options.MaxSteps = 120;
  }

  BatchReplica replica() const {
    BatchReplica Rep;
    Rep.A = &A;
    Rep.Placements = &Placements;
    Rep.Options = &Options;
    return Rep;
  }

  SimResult reference() const {
    World W(T);
    W.reset(A, Placements, Options);
    return W.run();
  }
};

void expectFinalStateMatchesWorld(const World &W, const ReplicaFinalState &F,
                                  const std::string &What) {
  const Torus &T = W.torus();
  ASSERT_EQ(static_cast<int>(F.Colors.size()), T.numCells()) << What;
  for (int Cell = 0; Cell != T.numCells(); ++Cell) {
    ASSERT_EQ(static_cast<int>(F.Colors[static_cast<size_t>(Cell)]),
              W.colorValueAt(Cell))
        << What << ": colour differs at cell " << Cell;
    ASSERT_EQ(static_cast<int>(F.Occupancy[static_cast<size_t>(Cell)]),
              W.agentAt(Cell))
        << What << ": occupancy differs at cell " << Cell;
    ASSERT_EQ(F.VisitCounts[static_cast<size_t>(Cell)], W.visitCount(Cell))
        << What << ": visit count differs at cell " << Cell;
  }
  ASSERT_EQ(static_cast<int>(F.Agents.size()), W.numAgents()) << What;
  for (int Id = 0; Id != W.numAgents(); ++Id) {
    const AgentState &Ref = W.agent(Id);
    const ReplicaAgentState &Got = F.Agents[static_cast<size_t>(Id)];
    ASSERT_EQ(Got.Cell, Ref.Cell) << What << ": agent " << Id;
    ASSERT_EQ(Got.Direction, Ref.Direction) << What << ": agent " << Id;
    ASSERT_EQ(Got.ControlState, Ref.ControlState) << What << ": agent " << Id;
    ASSERT_EQ(Got.Informed, Ref.Informed) << What << ": agent " << Id;
    ASSERT_EQ(Got.Alive, Ref.Alive) << What << ": agent " << Id;
    ASSERT_TRUE(Got.Comm == Ref.Comm)
        << What << ": agent " << Id << " communication vector differs";
  }
}

} // namespace

// Fault-free clone batches across the slab capacity boundary: every count
// must reproduce the single shared reference, form ceil(N / 64) slabs
// (the partial tail rides a partially occupied slab, never the general
// path), and converge every lane on its master.
TEST(RMaj64SlabTest, CloneBatchesMatchSingleReferenceAcrossCapacities) {
  Scenario S(0x51ab0001ull);
  const SimResult Ref = S.reference();
  BatchEngine Engine(S.T);
  for (int N : {1, 63, 64, 65, 127, 200}) {
    std::vector<BatchReplica> Replicas(static_cast<size_t>(N), S.replica());
    BatchRunStats Stats;
    BatchRunOptions Opts;
    Opts.Backend = SimdBackend::RMaj64;
    Opts.NumWorkers = 4;
    Opts.Stats = &Stats;
    std::vector<SimResult> Results = Engine.run(Replicas, Opts);
    const uint64_t ExpectSlabs =
        static_cast<uint64_t>((N + simd::SlabLaneCapacity - 1) /
                              simd::SlabLaneCapacity);
    EXPECT_EQ(Stats.SlabsFormed, ExpectSlabs) << "N=" << N;
    EXPECT_EQ(Stats.SlabLanesEnrolled, static_cast<uint64_t>(N)) << "N=" << N;
    EXPECT_EQ(Stats.LanesConverged, static_cast<uint64_t>(N)) << "N=" << N;
    EXPECT_EQ(Stats.LanesRetiredEarly, 0u) << "N=" << N;
    EXPECT_EQ(Stats.BackendUsed, SimdBackend::RMaj64);
    for (int I = 0; I != N; ++I)
      ASSERT_EQ(Results[static_cast<size_t>(I)], Ref)
          << "N=" << N << " replica " << I
          << ": clone diverged from the shared reference";
  }
}

// The retirement path: clones that differ ONLY in their fault seed share
// one master until their private streams fire at divergent steps. Each
// lane must still match its own World run exactly — result, fault
// counters and full final field — and the stats must show genuine early
// retirements with retired + converged == enrolled.
TEST(RMaj64SlabTest, FaultSeedLanesRetireAtDivergentStepsBitIdentically) {
  Scenario S(0x51ab0002ull);
  const int N = 48;
  // Moderate probabilities: across 48 seeds some lanes fire early, some
  // late, and typically a few never fire — all three endings covered.
  std::vector<SimOptions> PerLane(static_cast<size_t>(N), S.Options);
  for (int I = 0; I != N; ++I) {
    PerLane[static_cast<size_t>(I)].Faults.StallProbability = 0.002;
    PerLane[static_cast<size_t>(I)].Faults.DeathProbability = 0.0005;
    PerLane[static_cast<size_t>(I)].Faults.LinkDropProbability = 0.001;
    PerLane[static_cast<size_t>(I)].Faults.ColorFlipProbability = 0.0002;
    PerLane[static_cast<size_t>(I)].Faults.Seed =
        0xfee15eedull + static_cast<uint64_t>(I) * 7919;
  }
  std::vector<BatchReplica> Replicas;
  for (int I = 0; I != N; ++I) {
    BatchReplica Rep = S.replica();
    Rep.Options = &PerLane[static_cast<size_t>(I)];
    Replicas.push_back(Rep);
  }
  BatchEngine Engine(S.T);
  BatchRunStats Stats;
  std::vector<ReplicaFinalState> Finals;
  BatchRunOptions Opts;
  Opts.Backend = SimdBackend::RMaj64;
  Opts.NumWorkers = 3;
  Opts.Stats = &Stats;
  Opts.FinalStates = &Finals;
  std::vector<SimResult> Results = Engine.run(Replicas, Opts);

  // The fault model is absent from the slab compatibility key, so all 48
  // lanes share one master trajectory.
  EXPECT_EQ(Stats.SlabsFormed, 1u);
  EXPECT_EQ(Stats.SlabLanesEnrolled, static_cast<uint64_t>(N));
  EXPECT_GT(Stats.LanesRetiredEarly, 0u)
      << "no lane fired a fault; raise the probabilities or the seeds are "
         "degenerate";
  EXPECT_EQ(Stats.LanesRetiredEarly + Stats.LanesConverged,
            static_cast<uint64_t>(N));

  World W(S.T);
  for (int I = 0; I != N; ++I) {
    W.reset(S.A, S.Placements, PerLane[static_cast<size_t>(I)]);
    SimResult Ref = W.run();
    std::string What = "fault seed lane " + std::to_string(I);
    ASSERT_EQ(Results[static_cast<size_t>(I)], Ref) << What;
    expectFinalStateMatchesWorld(W, Finals[static_cast<size_t>(I)], What);
  }
}

// A LinkFilter inside a slab: filtered draws change the per-step draw
// count per lane, which is exactly the bookkeeping the lockstep fault
// sweep must reproduce for a retired lane's replay to stay aligned.
TEST(RMaj64SlabTest, LinkFilterGatedDrawsStayAlignedInsideSlabs) {
  Scenario S(0x51ab0003ull);
  const int N = 16;
  std::vector<SimOptions> PerLane(static_cast<size_t>(N), S.Options);
  for (int I = 0; I != N; ++I) {
    SimOptions &O = PerLane[static_cast<size_t>(I)];
    O.Faults.LinkDropProbability = 0.004;
    O.Faults.Seed = 0x11f11ull + static_cast<uint64_t>(I) * 131;
    // Only northward-ish links are droppable: the filter depends on the
    // direction index, so the number of Bernoulli draws per agent per
    // step is smaller than degree and position-dependent bookkeeping in
    // the sweep would misalign immediately if it disagreed with World's.
    O.Faults.LinkFilter = [](const Torus &, int, uint8_t Direction) {
      return Direction < 2;
    };
  }
  std::vector<BatchReplica> Replicas;
  for (int I = 0; I != N; ++I) {
    BatchReplica Rep = S.replica();
    Rep.Options = &PerLane[static_cast<size_t>(I)];
    Replicas.push_back(Rep);
  }
  BatchEngine Engine(S.T);
  BatchRunStats Stats;
  BatchRunOptions Opts;
  Opts.Backend = SimdBackend::RMaj64;
  Opts.Stats = &Stats;
  std::vector<SimResult> Results = Engine.run(Replicas, Opts);
  EXPECT_EQ(Stats.SlabsFormed, 1u);
  World W(S.T);
  for (int I = 0; I != N; ++I) {
    W.reset(S.A, S.Placements, PerLane[static_cast<size_t>(I)]);
    ASSERT_EQ(Results[static_cast<size_t>(I)], W.run())
        << "LinkFilter lane " << I;
  }
}

// Mixed batches: clone lanes, a bordered twin (slab-ineligible), and a
// distinct-placement singleton interleaved. Grouping must route each to
// the right path and reproduce every reference.
TEST(RMaj64SlabTest, MixedEligibilityBatchRoutesEveryReplicaCorrectly) {
  Scenario Clones(0x51ab0004ull);
  Scenario Other(0x51ab0005ull, 33);
  SimOptions Bordered = Clones.Options;
  Bordered.Bordered = true;
  BatchReplica BorderedRep = Clones.replica();
  BorderedRep.Options = &Bordered;

  std::vector<BatchReplica> Replicas;
  // Interleave: clone, bordered, clone, other-singleton, clones...
  Replicas.push_back(Clones.replica());
  Replicas.push_back(BorderedRep);
  Replicas.push_back(Clones.replica());
  Replicas.push_back(Other.replica());
  for (int I = 0; I != 5; ++I)
    Replicas.push_back(Clones.replica());

  BatchEngine Engine(Clones.T);
  BatchRunStats Stats;
  BatchRunOptions Opts;
  Opts.Backend = SimdBackend::RMaj64;
  Opts.NumWorkers = 2;
  Opts.Stats = &Stats;
  std::vector<SimResult> Results = Engine.run(Replicas, Opts);

  const SimResult CloneRef = Clones.reference();
  const SimResult OtherRef = Other.reference();
  World W(Clones.T);
  W.reset(Clones.A, Clones.Placements, Bordered);
  const SimResult BorderedRef = W.run();

  EXPECT_EQ(Results[0], CloneRef);
  EXPECT_EQ(Results[1], BorderedRef);
  EXPECT_EQ(Results[2], CloneRef);
  EXPECT_EQ(Results[3], OtherRef);
  for (size_t I = 4; I != Replicas.size(); ++I)
    EXPECT_EQ(Results[I], CloneRef) << "clone replica " << I;

  // 7 clones form one slab; the other-placement config forms a second
  // (occupancy 1); the bordered twin is slab-ineligible and runs general.
  EXPECT_EQ(Stats.SlabsFormed, 2u);
  EXPECT_EQ(Stats.SlabLanesEnrolled, 8u);
}

// Results and slab accounting must not depend on the worker count: the
// group list is built once up front and every counter is summed over
// per-worker slots.
TEST(RMaj64SlabTest, WorkerSweepIsDeterministicInResultsAndAccounting) {
  Scenario A(0x51ab0006ull);
  Scenario B(0x51ab0007ull, 40);
  std::vector<SimOptions> Faulty(3, A.Options);
  for (int I = 0; I != 3; ++I) {
    Faulty[static_cast<size_t>(I)].Faults.StallProbability = 0.01;
    Faulty[static_cast<size_t>(I)].Faults.Seed =
        0xabcull + static_cast<uint64_t>(I);
  }
  std::vector<BatchReplica> Replicas;
  for (int I = 0; I != 70; ++I)
    Replicas.push_back(A.replica());
  for (int I = 0; I != 3; ++I) {
    BatchReplica Rep = A.replica();
    Rep.Options = &Faulty[static_cast<size_t>(I)];
    Replicas.push_back(Rep);
  }
  for (int I = 0; I != 9; ++I)
    Replicas.push_back(B.replica());

  BatchEngine Engine(A.T);
  std::vector<SimResult> Baseline;
  BatchRunStats BaselineStats;
  for (size_t Workers : {size_t(1), size_t(3), size_t(8)}) {
    BatchRunStats Stats;
    BatchRunOptions Opts;
    Opts.Backend = SimdBackend::RMaj64;
    Opts.NumWorkers = Workers;
    Opts.Stats = &Stats;
    std::vector<SimResult> Results = Engine.run(Replicas, Opts);
    if (Baseline.empty()) {
      Baseline = Results;
      BaselineStats = Stats;
      continue;
    }
    ASSERT_EQ(Results.size(), Baseline.size());
    for (size_t I = 0; I != Results.size(); ++I)
      ASSERT_EQ(Results[I], Baseline[I])
          << "workers=" << Workers << " replica " << I;
    EXPECT_EQ(Stats.SlabsFormed, BaselineStats.SlabsFormed)
        << "workers=" << Workers;
    EXPECT_EQ(Stats.SlabLanesEnrolled, BaselineStats.SlabLanesEnrolled)
        << "workers=" << Workers;
    EXPECT_EQ(Stats.LanesRetiredEarly, BaselineStats.LanesRetiredEarly)
        << "workers=" << Workers;
    EXPECT_EQ(Stats.LanesConverged, BaselineStats.LanesConverged)
        << "workers=" << Workers;
  }
}
