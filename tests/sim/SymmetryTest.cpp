//===- tests/sim/SymmetryTest.cpp - Engine symmetry properties ------------===//
//
// The CA semantics are local and direction-relative, so the engine must
// commute with the torus's symmetries: translating a whole configuration,
// or rotating it by one direction-ring step (90 deg in S, 60 deg in T),
// must produce the exactly transformed run — same t_comm, transformed
// trajectories. These tests catch subtle anisotropy bugs (e.g. an offset
// table error in one direction) that statistical tests would average away.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/World.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

/// Rotates a coordinate by one ring step around the origin.
/// S-grid (+90 deg): (x, y) -> (-y, x).
/// T-grid (+60 deg in the skewed axial basis): (x, y) -> (x, y) mapped so
/// that each basis offset moves to the next ring entry: e_0 = (1,0) ->
/// (1,1) = e_1 and e_2 = (0,1) -> e_3 = (-1,0), giving
/// (x, y) -> (x - y, x).
Coord rotateCoord(GridKind Kind, Coord C) {
  if (Kind == GridKind::Square)
    return Coord{-C.Y, C.X};
  return Coord{C.X - C.Y, C.X};
}

InitialConfiguration transformConfiguration(const Torus &T,
                                            const InitialConfiguration &C,
                                            bool Rotate, Coord Shift) {
  InitialConfiguration Out;
  for (const Placement &P : C.Placements) {
    Placement Q;
    Coord Pos = Rotate ? rotateCoord(T.kind(), P.Pos) : P.Pos;
    Q.Pos = Coord{T.wrap(Pos.X + Shift.X), T.wrap(Pos.Y + Shift.Y)};
    Q.Direction = Rotate ? static_cast<uint8_t>((P.Direction + 1) % T.degree())
                         : P.Direction;
    Out.Placements.push_back(Q);
  }
  return Out;
}

struct SymmetryCase {
  GridKind Kind;
  uint64_t Seed;
};

} // namespace

class SymmetryTest : public ::testing::TestWithParam<SymmetryCase> {};

TEST_P(SymmetryTest, TranslationInvariance) {
  SymmetryCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed);
  Genome G = Genome::random(R);
  InitialConfiguration Base = randomConfiguration(T, 8, R);
  SimOptions O;
  O.MaxSteps = 150;

  W.reset(G, Base.Placements, O);
  SimResult Original = W.run();
  std::vector<int> OriginalCells;
  for (int Id = 0; Id != 8; ++Id)
    OriginalCells.push_back(W.agent(Id).Cell);

  for (Coord Shift : {Coord{5, 0}, Coord{0, 7}, Coord{3, 11}}) {
    InitialConfiguration Moved =
        transformConfiguration(T, Base, /*Rotate=*/false, Shift);
    W.reset(G, Moved.Placements, O);
    SimResult Shifted = W.run();
    EXPECT_EQ(Shifted.Success, Original.Success);
    EXPECT_EQ(Shifted.TComm, Original.TComm)
        << "translation by (" << Shift.X << "," << Shift.Y
        << ") changed the outcome";
    // Final positions are the translated originals.
    for (int Id = 0; Id != 8; ++Id) {
      Coord P = T.coordOf(OriginalCells[static_cast<size_t>(Id)]);
      Coord Expected{T.wrap(P.X + Shift.X), T.wrap(P.Y + Shift.Y)};
      EXPECT_EQ(W.agent(Id).Cell, T.indexOf(Expected));
    }
  }
}

TEST_P(SymmetryTest, RotationInvariance) {
  SymmetryCase C = GetParam();
  Torus T(C.Kind, 16);
  World W(T);
  Rng R(C.Seed ^ 0x5555);
  Genome G = Genome::random(R);
  InitialConfiguration Base = randomConfiguration(T, 8, R);
  SimOptions O;
  O.MaxSteps = 150;

  W.reset(G, Base.Placements, O);
  SimResult Original = W.run();
  std::vector<Coord> OriginalPositions;
  std::vector<uint8_t> OriginalDirections;
  for (int Id = 0; Id != 8; ++Id) {
    OriginalPositions.push_back(T.coordOf(W.agent(Id).Cell));
    OriginalDirections.push_back(W.agent(Id).Direction);
  }

  InitialConfiguration Rotated =
      transformConfiguration(T, Base, /*Rotate=*/true, Coord{0, 0});
  ASSERT_TRUE(isValidConfiguration(T, Rotated));
  W.reset(G, Rotated.Placements, O);
  SimResult AfterRotation = W.run();
  EXPECT_EQ(AfterRotation.Success, Original.Success);
  EXPECT_EQ(AfterRotation.TComm, Original.TComm)
      << "one ring-step rotation changed the outcome";
  for (int Id = 0; Id != 8; ++Id) {
    Coord Expected = rotateCoord(C.Kind, OriginalPositions[
        static_cast<size_t>(Id)]);
    EXPECT_EQ(W.agent(Id).Cell,
              T.indexOf(Coord{T.wrap(Expected.X), T.wrap(Expected.Y)}));
    EXPECT_EQ(W.agent(Id).Direction,
              (OriginalDirections[static_cast<size_t>(Id)] + 1) % T.degree());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, SymmetryTest,
    ::testing::Values(SymmetryCase{GridKind::Square, 101},
                      SymmetryCase{GridKind::Square, 102},
                      SymmetryCase{GridKind::Square, 103},
                      SymmetryCase{GridKind::Triangulate, 104},
                      SymmetryCase{GridKind::Triangulate, 105},
                      SymmetryCase{GridKind::Triangulate, 106}),
    [](const ::testing::TestParamInfo<SymmetryCase> &I) {
      return std::string(gridKindName(I.param.Kind)) +
             std::to_string(I.param.Seed);
    });
