//===- tests/sim/ExtensionsTest.cpp - Borders/obstacles/policies ----------===//
//
// Tests for the engine extensions beyond the paper's core setting:
// bordered (non-cyclic) fields, obstacles, and the two-genome policies
// (time-shuffling, species mixing) — items from the paper's related-work
// devices and future-work list.
//
//===----------------------------------------------------------------------===//

#include "sim/Render.h"
#include "sim/World.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

Genome constantGenome(Action A) {
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act = A;
    }
  return G;
}

Action makeAction(Turn T, bool Move, bool SetColor) {
  Action A;
  A.TurnCode = T;
  A.Move = Move;
  A.SetColor = SetColor;
  return A;
}

SimOptions options(int MaxSteps = 100) {
  SimOptions O;
  O.MaxSteps = MaxSteps;
  return O;
}

} // namespace

TEST(BorderTest, AgentCannotCrossTheSeam) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  SimOptions O = options();
  O.Bordered = true;
  // Agent 0 at the east edge facing east; agent 1 far away going north.
  W.reset(G, {{Coord{7, 0}, 0}, {Coord{0, 4}, 1}}, O);
  for (int I = 0; I != 3; ++I) {
    ASSERT_EQ(W.step(), World::Status::Running);
    EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{7, 0}))
        << "border must block the seam crossing";
  }
  // Without borders the same agent wraps.
  SimOptions Cyclic = options();
  W.reset(G, {{Coord{7, 0}, 0}, {Coord{0, 4}, 1}}, Cyclic);
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0}));
}

TEST(BorderTest, BlockedInputFiresAtTheBorder) {
  Torus T(GridKind::Square, 8);
  World W(T);
  // Free agents go straight; blocked agents turn right. An agent facing
  // the border must turn.
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act = (X & 1) ? makeAction(Turn::Right, true, false)
                      : makeAction(Turn::Straight, true, false);
    }
  SimOptions O = options();
  O.Bordered = true;
  W.reset(G, {{Coord{7, 2}, 0}, {Coord{0, 5}, 1}}, O);
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{7, 2}));
  EXPECT_EQ(W.agent(0).Direction, 1) << "border blocking must reach the FSM";
}

TEST(BorderTest, NoExchangeAcrossTheSeam) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome Stay; // All-zero: never moves.
  // (0,0) and (7,0) are torus-adjacent but NOT border-adjacent.
  SimOptions O = options(30);
  O.Bordered = true;
  W.reset(Stay, {{Coord{0, 0}, 0}, {Coord{7, 0}, 0}}, O);
  SimResult R = W.run();
  EXPECT_FALSE(R.Success) << "seam adjacency must not exist with borders";

  SimOptions Cyclic = options(30);
  W.reset(Stay, {{Coord{0, 0}, 0}, {Coord{7, 0}, 0}}, Cyclic);
  R = W.run();
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.TComm, 0);
}

TEST(BorderTest, SeamFrontColorReadsAsZero) {
  // Genome: move straight when frontcolor = 0, turn right in place when
  // frontcolor = 1 (never blocked cases matter here).
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      bool FrontColor = (X >> 2) & 1;
      E.Act = FrontColor ? makeAction(Turn::Right, false, false)
                         : makeAction(Turn::Straight, false, false);
    }
  Torus T(GridKind::Square, 8);
  // Pre-colour the wrap cell (0,3) by a painter agent placed there...
  // simpler: colour is initially 0 everywhere; paint (0,3) via a first
  // phase with a painter genome, then verify through direct reads that a
  // bordered agent at (7,3) facing east does NOT see the wrapped colour.
  World W(T);
  Genome Painter = constantGenome(makeAction(Turn::Straight, false, true));
  SimOptions O = options();
  O.Bordered = true;
  // Painter at (0,3) colours its own cell; observer at (7,3) faces east
  // into the seam. With wrap the front cell would be (0,3) (coloured after
  // step 1); bordered agents must read 0 and keep turning... the observer
  // uses genome G, but a world has one genome for all agents. Use species
  // parity: painter = odd id runs Painter, observer = even id runs G.
  W.reset(G, Painter, GenomePolicy::SpeciesParity,
          {{Coord{7, 3}, 0}, {Coord{0, 3}, 0}}, O);
  ASSERT_EQ(W.step(), World::Status::Running); // Painter colours (0,3).
  EXPECT_TRUE(W.colorAt(T.indexOf(Coord{0, 3})));
  ASSERT_EQ(W.step(), World::Status::Running);
  // Observer still faces east (no turn): it never saw frontcolor = 1.
  EXPECT_EQ(W.agent(0).Direction, 0)
      << "bordered agent must not read the wrapped cell's colour";
}

TEST(ObstacleTest, BlocksEntryAndInput) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome G = constantGenome(makeAction(Turn::Straight, true, false));
  SimOptions O = options();
  O.Obstacles = {Coord{2, 0}};
  W.reset(G, {{Coord{1, 0}, 0}, {Coord{5, 5}, 1}}, O);
  for (int I = 0; I != 3; ++I) {
    ASSERT_EQ(W.step(), World::Status::Running);
    EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0}))
        << "obstacle must block entry";
  }
  EXPECT_TRUE(W.obstacleAt(T.indexOf(Coord{2, 0})));
  EXPECT_FALSE(W.obstacleAt(T.indexOf(Coord{3, 0})));
}

TEST(ObstacleTest, ClearedOnReset) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome Stay;
  SimOptions WithObstacle = options();
  WithObstacle.Obstacles = {Coord{4, 4}};
  W.reset(Stay, {{Coord{0, 0}, 0}}, WithObstacle);
  EXPECT_TRUE(W.obstacleAt(T.indexOf(Coord{4, 4})));
  W.reset(Stay, {{Coord{0, 0}, 0}}, options());
  EXPECT_FALSE(W.obstacleAt(T.indexOf(Coord{4, 4})));
}

TEST(ObstacleTest, RenderedAsHash) {
  Torus T(GridKind::Square, 4);
  World W(T);
  Genome Stay;
  SimOptions O = options();
  O.Obstacles = {Coord{1, 1}};
  W.reset(Stay, {{Coord{0, 0}, 0}}, O);
  std::string Layer = renderAgentLayer(W);
  EXPECT_NE(Layer.find('#'), std::string::npos) << Layer;
}

TEST(ObstacleTest, DoesNotBlockCommunication) {
  // Obstacles exclude occupancy only: two agents adjacent to each other
  // still exchange even when surrounded by obstacles.
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome Stay;
  SimOptions O = options(10);
  O.Obstacles = {Coord{0, 1}, Coord{1, 1}, Coord{2, 1}};
  W.reset(Stay, {{Coord{0, 0}, 0}, {Coord{1, 0}, 0}}, O);
  SimResult R = W.run();
  EXPECT_TRUE(R.Success);
  EXPECT_EQ(R.TComm, 0);
}

TEST(GenomePolicyTest, TimeShuffleAlternatesByStepParity) {
  Torus T(GridKind::Square, 8);
  World W(T);
  // A: move straight; B: turn right in place. Under time-shuffling the
  // agent moves on even steps and rotates on odd steps.
  Genome A = constantGenome(makeAction(Turn::Straight, true, false));
  Genome B = constantGenome(makeAction(Turn::Right, false, false));
  W.reset(A, B, GenomePolicy::TimeShuffle,
          {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}}, options());
  ASSERT_EQ(W.step(), World::Status::Running); // t=0: A moves east.
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0}));
  EXPECT_EQ(W.agent(0).Direction, 0);
  ASSERT_EQ(W.step(), World::Status::Running); // t=1: B turns right.
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0}));
  EXPECT_EQ(W.agent(0).Direction, 1);
  ASSERT_EQ(W.step(), World::Status::Running); // t=2: A moves north.
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 1}));
}

TEST(GenomePolicyTest, SpeciesParityAssignsByAgentId) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome A = constantGenome(makeAction(Turn::Straight, true, false));
  Genome B = constantGenome(makeAction(Turn::Right, false, false));
  // Agents 0 and 2 run A (move), agent 1 runs B (rotate).
  W.reset(A, B, GenomePolicy::SpeciesParity,
          {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}, {Coord{0, 4}, 0}}, options());
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{1, 0}));
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{4, 4}));
  EXPECT_EQ(W.agent(1).Direction, 1);
  EXPECT_EQ(W.agent(2).Cell, T.indexOf(Coord{1, 4}));
}

TEST(ArbitrationModeTest, GazerBlocksRequesterInGazeMode) {
  // The alternative reading of the paper's conflict rule: a standing
  // lower-ID agent facing a cell reserves it. Mirrors
  // WorldConflictTest.NonRequesterNeitherMovesNorBlocks, which pins the
  // default reading.
  Torus T(GridKind::Square, 8);
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S) {
      GenomeEntry &E = G.entry(X, S);
      E.NextState = static_cast<uint8_t>(S);
      E.Act.Move = (S == 1); // State 0: gaze only; state 1: move.
    }
  World W(T);
  SimOptions O = options();
  O.Arbitration = ArbitrationMode::GazePriority;
  std::vector<Placement> P = {
      {Coord{0, 0}, 0}, // Agent 0 (state 0): gazes at (1,0).
      {Coord{1, 1}, 3}, // Agent 1 (state 1): requests (1,0).
      {Coord{5, 5}, 1},
  };
  W.reset(G, P, O);
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{0, 0}));
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{1, 1}))
      << "in gaze mode the lower-ID gazer must reserve the cell";

  // Same setup under the default reading: the requester moves.
  SimOptions Default = options();
  W.reset(G, P, Default);
  ASSERT_EQ(W.step(), World::Status::Running);
  EXPECT_EQ(W.agent(1).Cell, T.indexOf(Coord{1, 0}));
}

TEST(ArbitrationModeTest, ModesAgreeWhenEveryoneRequests) {
  // With an always-move genome the two readings coincide.
  Torus T(GridKind::Triangulate, 16);
  Genome G = constantGenome(makeAction(Turn::Right, true, true));
  std::vector<Placement> P = {
      {Coord{0, 0}, 0}, {Coord{7, 3}, 2}, {Coord{12, 12}, 4}};
  SimResult Results[2];
  for (ArbitrationMode Mode :
       {ArbitrationMode::RequestPriority, ArbitrationMode::GazePriority}) {
    World W(T);
    SimOptions O = options(300);
    O.Arbitration = Mode;
    W.reset(G, P, O);
    Results[Mode == ArbitrationMode::GazePriority] = W.run();
  }
  EXPECT_EQ(Results[0].Success, Results[1].Success);
  EXPECT_EQ(Results[0].TComm, Results[1].TComm);
}

TEST(GenomePolicyTest, SingleIgnoresSecondGenome) {
  Torus T(GridKind::Square, 8);
  World W(T);
  Genome A = constantGenome(makeAction(Turn::Straight, true, false));
  Genome B = constantGenome(makeAction(Turn::Right, false, false));
  W.reset(A, B, GenomePolicy::Single, {{Coord{0, 0}, 0}, {Coord{4, 4}, 0}},
          options());
  for (int I = 1; I <= 3; ++I) {
    ASSERT_EQ(W.step(), World::Status::Running);
    EXPECT_EQ(W.agent(0).Cell, T.indexOf(Coord{I % 8, 0}));
  }
}
