//===- tests/sim/RenderTest.cpp - ASCII rendering unit tests --------------===//

#include "sim/Render.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace ca2a;

namespace {

Genome stayGenome() {
  Genome G; // All-zero: S.0 everywhere — agents stand still.
  return G;
}

std::vector<std::string> lines(const std::string &Text) {
  std::vector<std::string> Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line))
    Out.push_back(Line);
  return Out;
}

} // namespace

TEST(RenderTest, AgentLayerGeometry) {
  Torus T(GridKind::Square, 4);
  World W(T);
  SimOptions O;
  O.MaxSteps = 10;
  // Agent 0 at (1,2) facing north; agent 1 at (3,0) facing west.
  W.reset(stayGenome(), {{Coord{1, 2}, 1}, {Coord{3, 0}, 2}}, O);
  std::vector<std::string> Rows = lines(renderAgentLayer(W));
  ASSERT_EQ(Rows.size(), 4u);
  // Rows print top-down: row 0 of output is y = 3.
  EXPECT_EQ(Rows[0], " .  .  .  .");
  EXPECT_EQ(Rows[1], " . ^0  .  .");
  EXPECT_EQ(Rows[2], " .  .  .  .");
  EXPECT_EQ(Rows[3], " .  .  . <1");
}

TEST(RenderTest, TriangulateGlyphs) {
  Torus T(GridKind::Triangulate, 4);
  World W(T);
  SimOptions O;
  O.MaxSteps = 10;
  W.reset(stayGenome(), {{Coord{0, 0}, 1}, {Coord{2, 2}, 4}}, O);
  std::string Layer = renderAgentLayer(W);
  EXPECT_NE(Layer.find("/0"), std::string::npos) << Layer;
  EXPECT_NE(Layer.find("\\1"), std::string::npos) << Layer;
}

TEST(RenderTest, ColorLayerShowsWrites) {
  Torus T(GridKind::Square, 4);
  World W(T);
  SimOptions O;
  O.MaxSteps = 10;
  // Writer genome: set colour, stand still.
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S)
      G.entry(X, S).Act.SetColor = true;
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{2, 2}, 0}}, O);
  ASSERT_EQ(W.step(), World::Status::Running);
  std::vector<std::string> Rows = lines(renderColorLayer(W));
  ASSERT_EQ(Rows.size(), 4u);
  EXPECT_EQ(Rows[3], "1 . . .");
  EXPECT_EQ(Rows[1], ". . 1 .");
  EXPECT_EQ(Rows[0], ". . . .");
}

TEST(RenderTest, VisitedLayerCapsAtStar) {
  Torus T(GridKind::Square, 4);
  World W(T);
  SimOptions O;
  O.MaxSteps = 60;
  // Two agents orbiting their own rows: east forever.
  Genome G;
  for (int X = 0; X != NumFsmInputs; ++X)
    for (int S = 0; S != NumControlStates; ++S)
      G.entry(X, S).Act.Move = true;
  W.reset(G, {{Coord{0, 0}, 0}, {Coord{0, 2}, 0}}, O);
  for (int I = 0; I != 41; ++I)
    ASSERT_EQ(W.step(), World::Status::Running);
  std::string Layer = renderVisitedLayer(W);
  EXPECT_NE(Layer.find('*'), std::string::npos)
      << "10+ visits must render as *\n"
      << Layer;
}

TEST(RenderTest, PanelsContainAllLayers) {
  Torus T(GridKind::Square, 4);
  World W(T);
  SimOptions O;
  O.MaxSteps = 10;
  W.reset(stayGenome(), {{Coord{0, 0}, 0}, {Coord{2, 2}, 0}}, O);
  std::string Panels = renderPanels(W, "t=0");
  EXPECT_NE(Panels.find("t=0"), std::string::npos);
  EXPECT_NE(Panels.find("agents:"), std::string::npos);
  EXPECT_NE(Panels.find("colors:"), std::string::npos);
  EXPECT_NE(Panels.find("visited:"), std::string::npos);
}
