//===- tests/sim/BackendFuzzTest.cpp - Per-backend differential fuzzing ---===//
//
// The SIMD dispatch layer's bit-identity contract, fuzzed: seeded random
// configurations (the same option space BatchEngineDiffTest sweeps —
// grids, sides, agent counts across word boundaries, faults, borders,
// obstacles, arbitration modes, colour ablation, genome policies,
// degenerate cutoffs) run through the reference World once and then
// through BatchEngine under EVERY concretely available lane kernel. Each
// backend must reproduce the reference SimResult and the full final field
// exactly — a single differing bit anywhere fails with the drawn
// configuration and the offending backend named.
//
// The sweep size scales with CA2A_FUZZ_CONFIGS so the default ctest run
// stays quick; the slow-labelled variant in tests/CMakeLists.txt covers
// the full 300-configuration contract. The environment-forcing test and
// the chaos-injection test pin the two dispatch side doors: the
// CA2A_FORCE_BACKEND override and the retry path.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"
#include "support/Chaos.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

/// Sweep size: CA2A_FUZZ_CONFIGS when set, else a quick default.
int fuzzConfigCount() {
  if (const char *Env = std::getenv("CA2A_FUZZ_CONFIGS"))
    if (int N = std::atoi(Env); N > 0)
      return N;
  return 30;
}

/// One randomly drawn simulation configuration, owning stable storage for
/// the borrowed pointers of BatchReplica.
struct FuzzConfig {
  GridKind Kind = GridKind::Square;
  int Side = 16;
  Genome A;
  Genome B;
  GenomePolicy Policy = GenomePolicy::Single;
  std::vector<Placement> Placements;
  SimOptions Options;

  bool twoGenomes() const { return Policy != GenomePolicy::Single; }
};

/// Draws a configuration covering every option the batch engine claims to
/// reproduce, deliberately weighted so each backend's special paths come
/// up often: Single/TimeShuffle hit the AVX2 single-table kernel,
/// SpeciesParity its per-agent fallback, k > 64 the multi-word general
/// path, faults/borders/observers the non-fast path.
FuzzConfig drawConfig(uint64_t Seed, const Torus &T, Rng &R) {
  FuzzConfig C;
  C.Kind = T.kind();
  C.Side = T.sideLength();
  C.A = Genome::random(R);
  switch (R.uniformInt(4)) {
  case 0:
    C.Policy = GenomePolicy::TimeShuffle;
    break;
  case 1:
    C.Policy = GenomePolicy::SpeciesParity;
    break;
  default:
    C.Policy = GenomePolicy::Single;
    break;
  }
  if (C.twoGenomes())
    C.B = Genome::random(R);

  SimOptions &O = C.Options;
  static const int StepChoices[] = {0, 1, 13, 80, 200};
  O.MaxSteps = StepChoices[R.uniformInt(5)];
  O.Start = R.uniformInt(2) ? StartStates::idParity()
                            : StartStates::uniform(static_cast<uint8_t>(
                                  R.uniformInt(2)));
  O.ColorsEnabled = R.uniformInt(4) != 0;
  O.Arbitration = R.uniformInt(2) ? ArbitrationMode::GazePriority
                                  : ArbitrationMode::RequestPriority;
  O.Bordered = R.uniformInt(4) == 0;
  if (R.uniformInt(3) == 0)
    O.Obstacles =
        randomObstacles(T, static_cast<int>(R.uniformInt(10)), R);
  if (R.uniformInt(3) == 0) {
    bool Heavy = R.uniformInt(4) == 0;
    O.Faults.StallProbability = Heavy ? 0.3 : 0.05;
    O.Faults.DeathProbability = Heavy ? 0.08 : 0.005;
    O.Faults.LinkDropProbability = Heavy ? 0.2 : 0.02;
    O.Faults.ColorFlipProbability = Heavy ? 0.1 : 0.01;
    O.Faults.Seed = Seed * 131 + 17;
  }

  // Lane occupancy matters to the chunked kernels: exercise counts below,
  // at and beyond the 8-lane chunk width and the 64-bit word boundary.
  static const int AgentChoices[] = {1, 3, 7, 8, 9, 16, 24, 33, 63, 64,
                                     65, 96};
  int NumAgents = AgentChoices[R.uniformInt(12)];
  int Free = T.numCells() - static_cast<int>(O.Obstacles.size());
  if (NumAgents > Free)
    NumAgents = Free;
  C.Placements =
      randomConfigurationAvoiding(T, NumAgents, R, O.Obstacles).Placements;
  return C;
}

SimResult runReference(World &W, const FuzzConfig &C) {
  if (C.twoGenomes())
    W.reset(C.A, C.B, C.Policy, C.Placements, C.Options);
  else
    W.reset(C.A, C.Placements, C.Options);
  return W.run();
}

BatchReplica replicaFor(const FuzzConfig &C) {
  BatchReplica Rep;
  Rep.A = &C.A;
  Rep.B = C.twoGenomes() ? &C.B : nullptr;
  Rep.Policy = C.Policy;
  Rep.Placements = &C.Placements;
  Rep.Options = &C.Options;
  return Rep;
}

void expectFinalStateMatchesWorld(const World &W, const ReplicaFinalState &F,
                                  const std::string &What) {
  const Torus &T = W.torus();
  ASSERT_EQ(static_cast<int>(F.Colors.size()), T.numCells()) << What;
  ASSERT_EQ(static_cast<int>(F.Occupancy.size()), T.numCells()) << What;
  for (int Cell = 0; Cell != T.numCells(); ++Cell) {
    ASSERT_EQ(static_cast<int>(F.Colors[static_cast<size_t>(Cell)]),
              W.colorValueAt(Cell))
        << What << ": colour differs at cell " << Cell;
    ASSERT_EQ(static_cast<int>(F.Occupancy[static_cast<size_t>(Cell)]),
              W.agentAt(Cell))
        << What << ": occupancy differs at cell " << Cell;
    ASSERT_EQ(F.VisitCounts[static_cast<size_t>(Cell)], W.visitCount(Cell))
        << What << ": visit count differs at cell " << Cell;
  }
  ASSERT_EQ(static_cast<int>(F.Agents.size()), W.numAgents()) << What;
  for (int Id = 0; Id != W.numAgents(); ++Id) {
    const AgentState &Ref = W.agent(Id);
    const ReplicaAgentState &Got = F.Agents[static_cast<size_t>(Id)];
    ASSERT_EQ(Got.Cell, Ref.Cell) << What << ": agent " << Id;
    ASSERT_EQ(Got.Direction, Ref.Direction) << What << ": agent " << Id;
    ASSERT_EQ(Got.ControlState, Ref.ControlState) << What << ": agent "
                                                  << Id;
    ASSERT_EQ(Got.Informed, Ref.Informed) << What << ": agent " << Id;
    ASSERT_EQ(Got.Alive, Ref.Alive) << What << ": agent " << Id;
    ASSERT_TRUE(Got.Comm == Ref.Comm)
        << What << ": agent " << Id << " communication vector differs";
  }
}

std::string describeConfig(uint64_t Seed, const FuzzConfig &C) {
  std::string S = "seed " + std::to_string(Seed) + ": ";
  S += gridKindName(C.Kind);
  S += std::to_string(C.Side) + "x" + std::to_string(C.Side) + " k=" +
       std::to_string(C.Placements.size()) + " policy=" +
       std::to_string(static_cast<int>(C.Policy)) + " steps=" +
       std::to_string(C.Options.MaxSteps);
  if (C.Options.Bordered)
    S += " bordered";
  if (!C.Options.Obstacles.empty())
    S += " obstacles=" + std::to_string(C.Options.Obstacles.size());
  if (C.Options.Faults.any())
    S += " faults";
  if (C.Options.Arbitration == ArbitrationMode::GazePriority)
    S += " gaze";
  if (!C.Options.ColorsEnabled)
    S += " nocolors";
  return S;
}

/// Clears CA2A_FORCE_BACKEND for the test's scope and restores any
/// ambient value on exit, so a CI job that forces a backend globally does
/// not fight the tests that set it locally.
class ScopedForceBackend {
public:
  ScopedForceBackend() {
    if (const char *Env = std::getenv(simdBackendForceEnvVar()))
      Saved = Env;
    ::unsetenv(simdBackendForceEnvVar());
  }
  ~ScopedForceBackend() {
    if (Saved.empty())
      ::unsetenv(simdBackendForceEnvVar());
    else
      ::setenv(simdBackendForceEnvVar(), Saved.c_str(), 1);
  }
  void set(const char *Value) {
    ::setenv(simdBackendForceEnvVar(), Value, 1);
  }

private:
  std::string Saved;
};

} // namespace

// The backbone: every drawn configuration must produce a bit-identical
// SimResult and final field from every available lane kernel.
TEST(BackendFuzzTest, RandomConfigSweepIsIdenticalUnderEveryBackend) {
  ScopedForceBackend Env; // The explicit knob must not be overridden.
  const std::vector<SimdBackend> Backends = availableSimdBackends();
  ASSERT_FALSE(Backends.empty());
  const int NumConfigs = fuzzConfigCount();
  for (int I = 0; I != NumConfigs; ++I) {
    uint64_t Seed = 0xf0220000ull + static_cast<uint64_t>(I);
    Rng R(Seed);
    GridKind Kind =
        R.uniformInt(2) ? GridKind::Triangulate : GridKind::Square;
    static const int SideChoices[] = {8, 9, 12, 16};
    Torus T(Kind, SideChoices[R.uniformInt(4)]);
    FuzzConfig C = drawConfig(Seed, T, R);
    std::string What = describeConfig(Seed, C);

    World W(T);
    SimResult Ref = runReference(W, C);

    BatchEngine Engine(T);
    for (SimdBackend Backend : Backends) {
      std::vector<ReplicaFinalState> Finals;
      BatchRunStats Stats;
      BatchRunOptions RunOptions;
      RunOptions.Backend = Backend;
      RunOptions.FinalStates = &Finals;
      RunOptions.Stats = &Stats;
      std::vector<SimResult> Got = Engine.run({replicaFor(C)}, RunOptions);
      std::string Where = What + " [" + simdBackendName(Backend) + "]";
      ASSERT_EQ(Got.size(), 1u) << Where;
      ASSERT_EQ(Stats.BackendUsed, Backend)
          << Where << ": requested kernel was not the one dispatched";
      ASSERT_TRUE(Got[0] == Ref)
          << Where << ": SimResult differs — reference {success "
          << Ref.Success << ", t " << Ref.TComm << ", informed "
          << Ref.InformedAgents << ", surviving " << Ref.SurvivingAgents
          << "} backend {" << Got[0].Success << ", " << Got[0].TComm << ", "
          << Got[0].InformedAgents << ", " << Got[0].SurvivingAgents << "}";
      ASSERT_EQ(Finals.size(), 1u) << Where;
      expectFinalStateMatchesWorld(W, Finals[0], Where);
    }
  }
}

// CA2A_FORCE_BACKEND must beat both Auto and an explicit request — that
// is the CI matrix's whole mechanism — and an unparseable value must warn
// and fall back instead of failing the run.
TEST(BackendFuzzTest, ForceEnvironmentVariableOverridesRequests) {
  ScopedForceBackend Env;
  Torus T(GridKind::Triangulate, 12);
  Rng R(0xf0ace);
  FuzzConfig C = drawConfig(0xf0ace, T, R);
  C.Options.MaxSteps = 60;

  World W(T);
  SimResult Ref = runReference(W, C);

  BatchEngine Engine(T);
  auto RunWith = [&](SimdBackend Requested) {
    BatchRunStats Stats;
    BatchRunOptions RunOptions;
    RunOptions.Backend = Requested;
    RunOptions.Stats = &Stats;
    std::vector<SimResult> Got = Engine.run({replicaFor(C)}, RunOptions);
    EXPECT_EQ(Got.size(), 1u);
    EXPECT_TRUE(Got[0] == Ref) << "forced backend changed the result";
    return Stats.BackendUsed;
  };

  for (SimdBackend Forced : availableSimdBackends()) {
    Env.set(simdBackendName(Forced));
    EXPECT_EQ(RunWith(SimdBackend::Auto), Forced)
        << simdBackendName(Forced) << " did not override Auto";
    EXPECT_EQ(RunWith(SimdBackend::Scalar), Forced)
        << simdBackendName(Forced) << " did not override an explicit "
        << "request";
  }

  // Garbage in the variable: warn-and-fall-back, never abort. The run
  // must still resolve to some real backend and match the reference.
  Env.set("no-such-backend");
  SimdBackend Used = RunWith(SimdBackend::Auto);
  EXPECT_NE(Used, SimdBackend::Auto);
}

// Chaos-injected replica failures route fast-path replicas through the
// retry machinery; a retried replica must replay bit-identically no
// matter which kernel steps it. Passes vacuously on CA2A_CHAOS=OFF
// builds (the injection sites are compiled out).
TEST(BackendFuzzTest, RetriedReplicasStayIdenticalUnderEveryBackend) {
  ScopedForceBackend Env;
  Torus T(GridKind::Triangulate, 12);
  const int NumReplicas = 16;
  std::deque<FuzzConfig> Configs;
  std::vector<BatchReplica> Replicas;
  for (int I = 0; I != NumReplicas; ++I) {
    uint64_t Seed = 0xc4a05000ull + static_cast<uint64_t>(I);
    Rng R(Seed);
    Configs.push_back(drawConfig(Seed, T, R));
    Configs.back().Options.MaxSteps = 80;
    Replicas.push_back(replicaFor(Configs.back()));
  }

  World W(T);
  std::vector<SimResult> Reference;
  for (const FuzzConfig &C : Configs)
    Reference.push_back(runReference(W, C));

  ChaosSchedule Schedule;
  Schedule.Seed = 77;
  Schedule.site(ChaosSite::EngineReplica).FailProbability = 0.2;
  ScopedChaos Chaos(Schedule);

  BatchEngine Engine(T);
  for (SimdBackend Backend : availableSimdBackends()) {
    BatchRunOptions RunOptions;
    RunOptions.Backend = Backend;
    RunOptions.Retry.MaxAttempts = 8;
    RunOptions.Retry.BaseDelayMicros = 1;
    RunOptions.Retry.MaxDelayMicros = 10;
    std::vector<SimResult> Got = Engine.run(Replicas, RunOptions);
    ASSERT_EQ(Got.size(), Reference.size());
    for (size_t I = 0; I != Got.size(); ++I)
      EXPECT_TRUE(Got[I] == Reference[I])
          << simdBackendName(Backend) << " replica " << I
          << ": retry under chaos diverged from the reference";
  }
}
