//===- tests/sim/BackendWordBoundaryTest.cpp - k at 64-bit word edges -----===//
//
// The packing edges every lane kernel must get right, pinned as directed
// cases rather than left to the fuzzer's dice: agent counts straddling
// the 64-bit communication-word boundaries (k = 1, 63, 64, 65, 127, 128)
// on odd field sides (9, 11, 13 — no power-of-two alignment accidents),
// each run under every concretely available backend and compared
// bit-exactly against the reference World. k = 63/64 sit at the edge of
// the one-word fast path; k = 65/127/128 force multi-word vectors onto
// the general path; k = 1 is solved-at-first-check degenerate.
//
// The second test drives the same per-backend comparison through the
// Neighbors16 fallback: a 182x182 torus (33124 cells) cannot narrow its
// neighbour table to int16, so the engine must take the wide-index
// general path regardless of the requested kernel — and still match.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace ca2a;

namespace {

struct BoundaryCase {
  GridKind Kind = GridKind::Square;
  int Side = 9;
  int NumAgents = 1;
  Genome G;
  std::vector<Placement> Placements;
  SimOptions Options;
};

std::string describeCase(const BoundaryCase &C, SimdBackend Backend) {
  return std::string(gridKindName(C.Kind)) + std::to_string(C.Side) + "x" +
         std::to_string(C.Side) + " k=" + std::to_string(C.NumAgents) +
         " [" + simdBackendName(Backend) + "]";
}

void expectBackendMatchesReference(const Torus &T, const BoundaryCase &C) {
  World W(T);
  W.reset(C.G, C.Placements, C.Options);
  SimResult Ref = W.run();

  BatchEngine Engine(T);
  BatchReplica Rep;
  Rep.A = &C.G;
  Rep.Placements = &C.Placements;
  Rep.Options = &C.Options;
  for (SimdBackend Backend : availableSimdBackends()) {
    std::string What = describeCase(C, Backend);
    std::vector<ReplicaFinalState> Finals;
    BatchRunStats Stats;
    BatchRunOptions RunOptions;
    RunOptions.Backend = Backend;
    RunOptions.FinalStates = &Finals;
    RunOptions.Stats = &Stats;
    std::vector<SimResult> Got = Engine.run({Rep}, RunOptions);
    ASSERT_EQ(Got.size(), 1u) << What;
    ASSERT_EQ(Stats.BackendUsed, Backend) << What;
    ASSERT_TRUE(Got[0] == Ref)
        << What << ": SimResult differs — reference {success " << Ref.Success
        << ", t " << Ref.TComm << ", informed " << Ref.InformedAgents
        << "} backend {" << Got[0].Success << ", " << Got[0].TComm << ", "
        << Got[0].InformedAgents << "}";

    // Spot-check the final field; the fuzz suite owns the exhaustive
    // comparison, here the word packing is what is on trial.
    ASSERT_EQ(Finals.size(), 1u) << What;
    const ReplicaFinalState &F = Finals[0];
    ASSERT_EQ(static_cast<int>(F.Agents.size()), W.numAgents()) << What;
    for (int Id = 0; Id != W.numAgents(); ++Id) {
      const AgentState &RefA = W.agent(Id);
      const ReplicaAgentState &GotA = F.Agents[static_cast<size_t>(Id)];
      ASSERT_EQ(GotA.Cell, RefA.Cell) << What << ": agent " << Id;
      ASSERT_EQ(GotA.Informed, RefA.Informed) << What << ": agent " << Id;
      ASSERT_TRUE(GotA.Comm == RefA.Comm)
          << What << ": agent " << Id << " communication vector differs";
    }
  }
}

} // namespace

// k straddling the 64-bit word edges on odd sides, both grids, both
// arbitration modes: the transition from the one-word fast path (k <= 64)
// to multi-word general stepping must be invisible in the results.
TEST(BackendWordBoundaryTest, AgentCountsAcrossWordEdgesMatchReference) {
  static const int AgentCounts[] = {1, 63, 64, 65, 127, 128};
  static const int Sides[] = {9, 11, 13};
  for (GridKind Kind : {GridKind::Triangulate, GridKind::Square}) {
    for (int Side : Sides) {
      Torus T(Kind, Side);
      for (int NumAgents : AgentCounts) {
        if (NumAgents > T.numCells())
          continue; // 9x9 = 81 cells cannot seat 127 agents.
        BoundaryCase C;
        C.Kind = Kind;
        C.Side = Side;
        C.NumAgents = NumAgents;
        Rng R(0xb0a0d000ull + static_cast<uint64_t>(Side * 1000 +
                                                    NumAgents * 2 +
                                                    (Kind == GridKind::Square
                                                         ? 1
                                                         : 0)));
        C.G = Genome::random(R);
        C.Options.MaxSteps = 120;
        C.Options.Arbitration = NumAgents % 2
                                    ? ArbitrationMode::GazePriority
                                    : ArbitrationMode::RequestPriority;
        C.Placements =
            randomConfiguration(T, NumAgents, R).Placements;
        expectBackendMatchesReference(T, C);
      }
    }
  }
}

// Same edges with fault injection: the general path owns faulty replicas,
// and the per-replica RNG stream must draw identically under every
// requested kernel.
TEST(BackendWordBoundaryTest, WordEdgesWithFaultsMatchReference) {
  static const int AgentCounts[] = {63, 64, 65};
  for (GridKind Kind : {GridKind::Triangulate, GridKind::Square}) {
    Torus T(Kind, 11);
    for (int NumAgents : AgentCounts) {
      BoundaryCase C;
      C.Kind = Kind;
      C.Side = 11;
      C.NumAgents = NumAgents;
      Rng R(0xfa0d000ull + static_cast<uint64_t>(NumAgents * 2 +
                                                 (Kind == GridKind::Square
                                                      ? 1
                                                      : 0)));
      C.G = Genome::random(R);
      C.Options.MaxSteps = 100;
      C.Options.Faults.StallProbability = 0.05;
      C.Options.Faults.DeathProbability = 0.01;
      C.Options.Faults.LinkDropProbability = 0.02;
      C.Options.Faults.ColorFlipProbability = 0.02;
      C.Options.Faults.Seed = 0x5eed + static_cast<uint64_t>(NumAgents);
      C.Placements = randomConfiguration(T, NumAgents, R).Placements;
      expectBackendMatchesReference(T, C);
    }
  }
}

// Beyond 32767 cells the int16 neighbour table cannot represent the grid
// and the engine falls back to wide indices; a forced backend must ride
// that fallback silently and still match the reference exactly. k = 65
// makes the communication vectors two words on top.
TEST(BackendWordBoundaryTest, Neighbors16FallbackHonoursForcedBackends) {
  for (GridKind Kind : {GridKind::Triangulate, GridKind::Square}) {
    Torus T(Kind, 182);
    ASSERT_GT(T.numCells(), 32767);
    BoundaryCase C;
    C.Kind = Kind;
    C.Side = 182;
    C.NumAgents = 65;
    Rng R(Kind == GridKind::Square ? 0x169a : 0x169b);
    C.G = Genome::random(R);
    C.Options.MaxSteps = 25;
    C.Placements = randomConfiguration(T, C.NumAgents, R).Placements;
    expectBackendMatchesReference(T, C);
  }
}
