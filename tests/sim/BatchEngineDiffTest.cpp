//===- tests/sim/BatchEngineDiffTest.cpp - Batch vs reference engine ------===//
//
// Differential testing backbone of the batched engine: seeded random
// configurations sweeping grid kind, field side, agent count (including
// multi-word communication vectors), fault injection, both arbitration
// modes, borders, obstacles, colour ablation, start states, all genome
// policies and degenerate cutoffs. Every configuration is run by the
// reference World and by BatchEngine, and the SimResults and the full
// final fields (colours, occupancy, visit counts, per-agent state and
// communication vectors) must match exactly.
//
// The sweep size scales with the CA2A_DIFF_CONFIGS environment variable so
// the default ctest run stays quick while the slow-labelled variant (see
// tests/CMakeLists.txt) covers the full 200-configuration contract.
//
//===----------------------------------------------------------------------===//

#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

/// Sweep size: CA2A_DIFF_CONFIGS when set, else a quick default.
int diffConfigCount() {
  if (const char *Env = std::getenv("CA2A_DIFF_CONFIGS"))
    if (int N = std::atoi(Env); N > 0)
      return N;
  return 40;
}

/// One randomly drawn simulation configuration with everything the two
/// engines need, owning stable storage for the borrowed pointers of
/// BatchReplica.
struct DiffConfig {
  GridKind Kind = GridKind::Square;
  int Side = 16;
  Genome A;
  Genome B;
  GenomePolicy Policy = GenomePolicy::Single;
  std::vector<Placement> Placements;
  SimOptions Options;

  bool twoGenomes() const { return Policy != GenomePolicy::Single; }
};

/// Draws a configuration from \p Seed, exercising every option the batch
/// engine claims to reproduce. \p T must be a torus of the drawn
/// (Kind, Side) — the caller owns it so placements stay valid.
DiffConfig drawConfig(uint64_t Seed, const Torus &T, Rng &R) {
  DiffConfig C;
  C.Kind = T.kind();
  C.Side = T.sideLength();
  C.A = Genome::random(R);
  switch (R.uniformInt(3)) {
  case 0:
    C.Policy = GenomePolicy::Single;
    break;
  case 1:
    C.Policy = GenomePolicy::TimeShuffle;
    break;
  default:
    C.Policy = GenomePolicy::SpeciesParity;
    break;
  }
  if (C.twoGenomes())
    C.B = Genome::random(R);

  SimOptions &O = C.Options;
  static const int StepChoices[] = {0, 1, 7, 60, 200};
  O.MaxSteps = StepChoices[R.uniformInt(5)];
  O.Start = R.uniformInt(2) ? StartStates::idParity()
                            : StartStates::uniform(static_cast<uint8_t>(
                                  R.uniformInt(2)));
  O.ColorsEnabled = R.uniformInt(4) != 0;
  O.Arbitration = R.uniformInt(2) ? ArbitrationMode::GazePriority
                                  : ArbitrationMode::RequestPriority;
  O.Bordered = R.uniformInt(3) == 0;
  if (R.uniformInt(2))
    O.Obstacles =
        randomObstacles(T, static_cast<int>(R.uniformInt(12)), R);
  if (R.uniformInt(2)) {
    // Mostly light fault rates; occasionally heavy enough to extinguish
    // the population so the all-dead paths are differentially covered.
    bool Heavy = R.uniformInt(4) == 0;
    O.Faults.StallProbability = Heavy ? 0.3 : 0.05;
    O.Faults.DeathProbability = Heavy ? 0.08 : 0.005;
    O.Faults.LinkDropProbability = Heavy ? 0.2 : 0.02;
    O.Faults.ColorFlipProbability = Heavy ? 0.1 : 0.01;
    O.Faults.Seed = Seed * 31 + 7;
  }

  // Agent counts cross the one-word boundary (k > 64 packs into two
  // words) and reach full packing on small fields.
  static const int AgentChoices[] = {1, 2, 5, 8, 16, 33, 64, 96};
  int NumAgents = AgentChoices[R.uniformInt(8)];
  int Free = T.numCells() - static_cast<int>(O.Obstacles.size());
  if (NumAgents > Free)
    NumAgents = Free;
  C.Placements =
      randomConfigurationAvoiding(T, NumAgents, R, O.Obstacles).Placements;
  return C;
}

/// Runs \p C through the reference World, leaving \p W at the final state.
SimResult runReference(World &W, const DiffConfig &C) {
  if (C.twoGenomes())
    W.reset(C.A, C.B, C.Policy, C.Placements, C.Options);
  else
    W.reset(C.A, C.Placements, C.Options);
  return W.run();
}

BatchReplica replicaFor(const DiffConfig &C) {
  BatchReplica Rep;
  Rep.A = &C.A;
  Rep.B = C.twoGenomes() ? &C.B : nullptr;
  Rep.Policy = C.Policy;
  Rep.Placements = &C.Placements;
  Rep.Options = &C.Options;
  return Rep;
}

/// Full-field equality: the batch replica's captured final state against
/// the World introspection API.
void expectFinalStateMatchesWorld(const World &W, const ReplicaFinalState &F,
                                  const std::string &What) {
  const Torus &T = W.torus();
  ASSERT_EQ(static_cast<int>(F.Colors.size()), T.numCells()) << What;
  ASSERT_EQ(static_cast<int>(F.Occupancy.size()), T.numCells()) << What;
  ASSERT_EQ(static_cast<int>(F.VisitCounts.size()), T.numCells()) << What;
  for (int Cell = 0; Cell != T.numCells(); ++Cell) {
    EXPECT_EQ(static_cast<int>(F.Colors[static_cast<size_t>(Cell)]),
              W.colorValueAt(Cell))
        << What << ": colour differs at cell " << Cell;
    EXPECT_EQ(static_cast<int>(F.Occupancy[static_cast<size_t>(Cell)]),
              W.agentAt(Cell))
        << What << ": occupancy differs at cell " << Cell;
    EXPECT_EQ(F.VisitCounts[static_cast<size_t>(Cell)], W.visitCount(Cell))
        << What << ": visit count differs at cell " << Cell;
  }
  ASSERT_EQ(static_cast<int>(F.Agents.size()), W.numAgents()) << What;
  for (int Id = 0; Id != W.numAgents(); ++Id) {
    const AgentState &Ref = W.agent(Id);
    const ReplicaAgentState &Got = F.Agents[static_cast<size_t>(Id)];
    EXPECT_EQ(Got.Cell, Ref.Cell) << What << ": agent " << Id;
    EXPECT_EQ(Got.Direction, Ref.Direction) << What << ": agent " << Id;
    EXPECT_EQ(Got.ControlState, Ref.ControlState) << What << ": agent " << Id;
    EXPECT_EQ(Got.Informed, Ref.Informed) << What << ": agent " << Id;
    EXPECT_EQ(Got.Alive, Ref.Alive) << What << ": agent " << Id;
    EXPECT_TRUE(Got.Comm == Ref.Comm)
        << What << ": agent " << Id << " communication vector differs";
  }
}

std::string describeConfig(uint64_t Seed, const DiffConfig &C) {
  std::string S = "seed " + std::to_string(Seed) + ": ";
  S += gridKindName(C.Kind);
  S += std::to_string(C.Side) + "x" + std::to_string(C.Side) + " k=" +
       std::to_string(C.Placements.size()) + " policy=" +
       std::to_string(static_cast<int>(C.Policy)) + " steps=" +
       std::to_string(C.Options.MaxSteps);
  if (C.Options.Bordered)
    S += " bordered";
  if (!C.Options.Obstacles.empty())
    S += " obstacles=" + std::to_string(C.Options.Obstacles.size());
  if (C.Options.Faults.any())
    S += " faults";
  if (C.Options.Arbitration == ArbitrationMode::GazePriority)
    S += " gaze";
  if (!C.Options.ColorsEnabled)
    S += " nocolors";
  return S;
}

} // namespace

// The backbone: every drawn configuration must produce a bit-identical
// SimResult and final field from both engines.
TEST(BatchEngineDiffTest, RandomConfigSweepMatchesReferenceExactly) {
  const int NumConfigs = diffConfigCount();
  for (int I = 0; I != NumConfigs; ++I) {
    uint64_t Seed = 0xd1ff0000ull + static_cast<uint64_t>(I);
    Rng R(Seed);
    GridKind Kind =
        R.uniformInt(2) ? GridKind::Triangulate : GridKind::Square;
    static const int SideChoices[] = {8, 12, 16};
    Torus T(Kind, SideChoices[R.uniformInt(3)]);
    DiffConfig C = drawConfig(Seed, T, R);
    std::string What = describeConfig(Seed, C);

    World W(T);
    SimResult Ref = runReference(W, C);

    BatchEngine Engine(T);
    std::vector<ReplicaFinalState> Finals;
    BatchRunOptions RunOptions;
    RunOptions.FinalStates = &Finals;
    std::vector<SimResult> Got = Engine.run({replicaFor(C)}, RunOptions);
    ASSERT_EQ(Got.size(), 1u) << What;

    ASSERT_TRUE(Got[0] == Ref)
        << What << ": SimResult differs — reference {success " << Ref.Success
        << ", t " << Ref.TComm << ", informed " << Ref.InformedAgents
        << ", surviving " << Ref.SurvivingAgents << "} batch {"
        << Got[0].Success << ", " << Got[0].TComm << ", "
        << Got[0].InformedAgents << ", " << Got[0].SurvivingAgents << "}";
    ASSERT_EQ(Finals.size(), 1u) << What;
    expectFinalStateMatchesWorld(W, Finals[0], What);
  }
}

// Heterogeneous replicas sharing one run() call (and therefore one
// per-chunk runner) must not leak state into each other, and the worker
// count must not change a single bit.
TEST(BatchEngineDiffTest, HeterogeneousBatchIsIdenticalAcrossWorkerCounts) {
  Torus T(GridKind::Triangulate, 16);
  const int NumReplicas = 24;
  std::deque<DiffConfig> Configs; // Stable addresses for BatchReplica.
  std::vector<BatchReplica> Replicas;
  std::vector<std::string> Whats;
  for (int I = 0; I != NumReplicas; ++I) {
    uint64_t Seed = 0xbee70000ull + static_cast<uint64_t>(I);
    Rng R(Seed);
    Configs.push_back(drawConfig(Seed, T, R));
    Replicas.push_back(replicaFor(Configs.back()));
    Whats.push_back(describeConfig(Seed, Configs.back()));
  }

  BatchEngine Engine(T);
  std::vector<ReplicaFinalState> Finals1, Finals3;
  BatchRunOptions Serial, Parallel;
  Serial.NumWorkers = 1;
  Serial.FinalStates = &Finals1;
  Parallel.NumWorkers = 3;
  Parallel.FinalStates = &Finals3;
  std::vector<SimResult> Got1 = Engine.run(Replicas, Serial);
  std::vector<SimResult> Got3 = Engine.run(Replicas, Parallel);
  ASSERT_EQ(Got1.size(), Configs.size());
  ASSERT_EQ(Got3.size(), Configs.size());
  ASSERT_EQ(Finals1.size(), Configs.size());
  ASSERT_EQ(Finals3.size(), Configs.size());

  World W(T);
  for (size_t I = 0; I != Configs.size(); ++I) {
    SimResult Ref = runReference(W, Configs[I]);
    EXPECT_TRUE(Got1[I] == Ref) << Whats[I] << ": serial batch differs";
    EXPECT_TRUE(Got3[I] == Ref) << Whats[I] << ": parallel batch differs";
    expectFinalStateMatchesWorld(W, Finals1[I], Whats[I] + " (serial)");
    expectFinalStateMatchesWorld(W, Finals3[I], Whats[I] + " (parallel)");
  }
}

// The observer must see the same trajectory the reference engine exposes:
// same observation point (after exchange/success check), same informed and
// survivor counts, same communication bits, at every iteration.
TEST(BatchEngineDiffTest, StepObserverSeesTheReferenceTrajectory) {
  struct Snapshot {
    int Time = 0;
    int NumInformed = 0;
    int NumSurvivors = 0;
    std::vector<size_t> Knowledge; // Comm popcount per agent.
  };
  for (uint64_t Seed : {11ull, 22ull, 33ull, 44ull}) {
    Rng R(Seed);
    GridKind Kind =
        R.uniformInt(2) ? GridKind::Triangulate : GridKind::Square;
    Torus T(Kind, 12);
    DiffConfig C = drawConfig(Seed, T, R);
    if (C.Options.MaxSteps < 20)
      C.Options.MaxSteps = 20; // A trajectory worth comparing.

    std::vector<Snapshot> RefTrace;
    World W(T);
    if (C.twoGenomes())
      W.reset(C.A, C.B, C.Policy, C.Placements, C.Options);
    else
      W.reset(C.A, C.Placements, C.Options);
    W.run([&](const World &View, int Time) {
      Snapshot S;
      S.Time = Time;
      S.NumInformed = View.informedCount();
      S.NumSurvivors = View.survivorCount();
      for (int Id = 0; Id != View.numAgents(); ++Id)
        S.Knowledge.push_back(View.agent(Id).Comm.count());
      RefTrace.push_back(std::move(S));
    });

    std::vector<Snapshot> BatchTrace;
    BatchEngine Engine(T);
    BatchRunOptions RunOptions;
    RunOptions.OnStep = [&](const BatchStepView &View) {
      Snapshot S;
      S.Time = View.Time;
      S.NumInformed = View.NumInformed;
      S.NumSurvivors = View.NumSurvivors;
      for (int Id = 0; Id != View.NumAgents; ++Id) {
        size_t Bits = 0;
        for (int Bit = 0; Bit != View.NumAgents; ++Bit)
          Bits += View.commBit(Id, Bit) ? 1 : 0;
        S.Knowledge.push_back(Bits);
      }
      BatchTrace.push_back(std::move(S));
    };
    Engine.run({replicaFor(C)}, RunOptions);

    std::string What = describeConfig(Seed, C);
    ASSERT_EQ(BatchTrace.size(), RefTrace.size()) << What;
    for (size_t Step = 0; Step != RefTrace.size(); ++Step) {
      const Snapshot &A = RefTrace[Step];
      const Snapshot &B = BatchTrace[Step];
      ASSERT_EQ(B.Time, A.Time) << What << " at step " << Step;
      ASSERT_EQ(B.NumInformed, A.NumInformed) << What << " at step " << Step;
      ASSERT_EQ(B.NumSurvivors, A.NumSurvivors)
          << What << " at step " << Step;
      ASSERT_EQ(B.Knowledge, A.Knowledge) << What << " at step " << Step;
    }
  }
}

// Regression test for BatchStepView::commBit index narrowing: with k > 64
// the communication rows span multiple words, and the word index
// Agent * WordsPerAgent + Bit / 64 must be computed in size_t throughout
// (a mixed int product is evaluated in int first and only then widened).
// Compares every (agent, bit) against the reference World's BitVector at
// every observed iteration — exact bits, not just popcounts.
TEST(BatchEngineDiffTest, CommBitMatchesReferenceBitwiseBeyondOneWord) {
  Torus T(GridKind::Triangulate, 12); // 144 cells, k = 96 fits.
  Rng R(0xc0bb17);
  DiffConfig C;
  C.A = Genome::random(R);
  C.Options.MaxSteps = 30;
  C.Placements = randomConfiguration(T, 96, R).Placements;
  ASSERT_EQ(C.Placements.size(), 96u); // Two 64-bit words per agent.

  // Reference bit matrix per iteration, flattened agent-major.
  std::vector<std::vector<bool>> RefBits;
  World W(T);
  W.reset(C.A, C.Placements, C.Options);
  W.run([&](const World &View, int) {
    std::vector<bool> Step;
    for (int Id = 0; Id != View.numAgents(); ++Id)
      for (int Bit = 0; Bit != View.numAgents(); ++Bit)
        Step.push_back(View.agent(Id).Comm.test(static_cast<size_t>(Bit)));
    RefBits.push_back(std::move(Step));
  });
  ASSERT_FALSE(RefBits.empty());

  size_t StepsSeen = 0;
  BatchEngine Engine(T);
  BatchRunOptions RunOptions;
  RunOptions.OnStep = [&](const BatchStepView &View) {
    ASSERT_EQ(View.WordsPerAgent, 2);
    ASSERT_LT(StepsSeen, RefBits.size());
    const std::vector<bool> &Ref = RefBits[StepsSeen];
    for (int Id = 0; Id != View.NumAgents; ++Id)
      for (int Bit = 0; Bit != View.NumAgents; ++Bit)
        ASSERT_EQ(View.commBit(Id, Bit),
                  Ref[static_cast<size_t>(Id * View.NumAgents + Bit)])
            << "step " << StepsSeen << " agent " << Id << " bit " << Bit;
    ++StepsSeen;
  };
  Engine.run({replicaFor(C)}, RunOptions);
  EXPECT_EQ(StepsSeen, RefBits.size());
}

// Grids beyond 32767 cells cannot narrow their neighbour table to int16,
// so BatchEngine must fall back to the general (Neighbors32) path and
// still match the reference exactly. 182x182 = 33124 cells is the first
// square side past the boundary.
TEST(BatchEngineDiffTest, Neighbors16FallbackOnHugeGridMatchesReference) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 182);
    ASSERT_GT(T.numCells(), 32767);
    Rng R(Kind == GridKind::Square ? 0xb16a : 0xb16b);
    DiffConfig C;
    C.A = Genome::random(R);
    C.Options.MaxSteps = 40;
    C.Placements = randomConfiguration(T, 8, R).Placements;
    std::string What = std::string("huge ") + gridKindName(Kind) + "182";

    World W(T);
    SimResult Ref = runReference(W, C);

    BatchEngine Engine(T);
    std::vector<ReplicaFinalState> Finals;
    BatchRunOptions RunOptions;
    RunOptions.FinalStates = &Finals;
    std::vector<SimResult> Got = Engine.run({replicaFor(C)}, RunOptions);
    ASSERT_EQ(Got.size(), 1u) << What;
    ASSERT_TRUE(Got[0] == Ref) << What << ": SimResult differs";
    expectFinalStateMatchesWorld(W, Finals[0], What);
  }
}

// MaxSteps = 0 is a legal degenerate cutoff: no iteration runs, and both
// engines must report the untouched initial field.
TEST(BatchEngineDiffTest, ZeroStepCutoffMatchesReference) {
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    for (int NumAgents : {1, 2, 16}) {
      Torus T(Kind, 8);
      Rng R(900 + NumAgents);
      Genome G = Genome::random(R);
      std::vector<Placement> P =
          randomConfiguration(T, NumAgents, R).Placements;
      SimOptions O;
      O.MaxSteps = 0;

      World W(T);
      W.reset(G, P, O);
      SimResult Ref = W.run();

      DiffConfig C;
      C.A = G;
      C.Placements = P;
      C.Options = O;
      BatchEngine Engine(T);
      std::vector<ReplicaFinalState> Finals;
      BatchRunOptions RunOptions;
      RunOptions.FinalStates = &Finals;
      std::vector<SimResult> Got = Engine.run({replicaFor(C)}, RunOptions);
      ASSERT_TRUE(Got[0] == Ref)
          << gridKindName(Kind) << " k=" << NumAgents;
      expectFinalStateMatchesWorld(W, Finals[0], "zero-cutoff");
      // No iteration means no success check — even a lone agent (informed
      // by construction) cannot be reported solved.
      EXPECT_FALSE(Ref.Success);
      EXPECT_EQ(Ref.InformedAgents, NumAgents == 1 ? 1 : 0);
    }
  }
}
