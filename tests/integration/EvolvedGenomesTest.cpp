//===- tests/integration/EvolvedGenomesTest.cpp - Checked-in artifacts ----===//
//
// Validates the repository's data/evolved_genomes.txt: the FSMs evolved
// by this codebase's own pipeline (examples/pipeline) must load, be
// distinct from the paper's published FSMs, and still solve sampled field
// sets — so the shipped artifact stays trustworthy as the code evolves.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "agent/GenomeFile.h"
#include "ga/Fitness.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {

Expected<std::vector<NamedGenome>> loadShippedLibrary() {
  return loadGenomeLibrary(std::string(CA2A_SOURCE_DIR) +
                           "/data/evolved_genomes.txt");
}

} // namespace

TEST(EvolvedGenomesTest, LibraryLoadsAndNamesResolve) {
  auto Library = loadShippedLibrary();
  ASSERT_TRUE(Library) << Library.error().message();
  EXPECT_GE(Library->size(), 2u);
  const NamedGenome *T = findGenome(*Library, "evolved-t-1");
  const NamedGenome *S = findGenome(*Library, "evolved-s-1");
  ASSERT_NE(T, nullptr);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(T->Kind, GridKind::Triangulate);
  EXPECT_EQ(S->Kind, GridKind::Square);
  // Independently evolved: not byte-identical to the paper's tables.
  EXPECT_NE(T->G, bestTriangulateAgent());
  EXPECT_NE(S->G, bestSquareAgent());
  EXPECT_NE(T->G, S->G);
}

TEST(EvolvedGenomesTest, ShippedAgentsSolveSampledFields) {
  auto Library = loadShippedLibrary();
  ASSERT_TRUE(Library) << Library.error().message();
  for (const char *Name : {"evolved-s-1", "evolved-t-1"}) {
    const NamedGenome *Entry = findGenome(*Library, Name);
    ASSERT_NE(Entry, nullptr) << Name;
    Torus T(Entry->Kind, 16);
    auto Fields = standardConfigurationSet(T, 8, 25, 20260707);
    FitnessParams P;
    P.Sim.MaxSteps = 1000;
    FitnessResult R = evaluateFitness(Entry->G, T, Fields, P);
    EXPECT_TRUE(R.completelySuccessful())
        << Name << " solved only " << R.SolvedFields << "/" << R.NumFields;
    EXPECT_LT(R.MeanCommTime, 250.0) << Name << " is unreasonably slow";
  }
}

TEST(EvolvedGenomesTest, EvolvedTrailsThePublishedBestOnlyModestly) {
  // The shipped FSMs come from a tiny compute budget; they should be in
  // the same league as the paper's (within 2x on mean time), documenting
  // that the GA pipeline genuinely works end to end.
  auto Library = loadShippedLibrary();
  ASSERT_TRUE(Library) << Library.error().message();
  for (const char *Name : {"evolved-s-1", "evolved-t-1"}) {
    const NamedGenome *Entry = findGenome(*Library, Name);
    ASSERT_NE(Entry, nullptr);
    Torus T(Entry->Kind, 16);
    auto Fields = standardConfigurationSet(T, 16, 40, 5);
    FitnessParams P;
    P.Sim.MaxSteps = 2000;
    FitnessResult Evolved = evaluateFitness(Entry->G, T, Fields, P);
    FitnessResult Published = evaluateFitness(bestAgent(Entry->Kind), T,
                                              Fields, P);
    ASSERT_TRUE(Evolved.completelySuccessful());
    ASSERT_TRUE(Published.completelySuccessful());
    EXPECT_LT(Evolved.MeanCommTime, 2.0 * Published.MeanCommTime) << Name;
  }
}
