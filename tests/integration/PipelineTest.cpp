//===- tests/integration/PipelineTest.cpp - Full-pipeline checks ----------===//
//
// Exercises the complete evolve -> select -> reliability-test -> measure
// pipeline of Sect. 4 at miniature scale: everything wired together, fast
// enough for the unit-test run.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "analysis/Table.h"
#include "ga/Evolution.h"
#include "ga/Reliability.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace ca2a;

TEST(PipelineTest, EvolveThenRankThenMeasure) {
  // Miniature version of the paper's procedure: evolve on k=2 fields,
  // pick the best individual, reliability-test it at two densities, and
  // format the outcome. Checks wiring, not optimality.
  Torus T(GridKind::Triangulate, 16);
  auto TrainingFields = standardConfigurationSet(T, 2, 5, 321);
  EvolutionParams EP;
  EP.Seed = 4242;
  EP.Fitness.Sim.MaxSteps = 80;
  Evolution E(T, TrainingFields, EP);
  Individual Best = E.run(15);

  // The evolved FSM round-trips through serialization.
  auto Reparsed = Genome::fromCompactString(Best.G.toCompactString());
  ASSERT_TRUE(Reparsed);
  EXPECT_EQ(*Reparsed, Best.G);

  ReliabilityParams RP;
  RP.AgentCounts = {2, 256};
  RP.NumRandomFields = 5;
  RP.Fitness.Sim.MaxSteps = 300;
  ReliabilityReport Report = testReliability(Best.G, T, RP);
  ASSERT_EQ(Report.Rows.size(), 2u);
  // Whatever the quality of the mini-evolved FSM, the packed field is
  // always solved by flooding.
  EXPECT_TRUE(Report.Rows[1].completelySuccessful());
}

TEST(PipelineTest, PublishedAgentsPassThePaperSelectionFilter) {
  // The filter the authors applied to their evolved candidates, at
  // sampled scale: completely successful across all densities, on both
  // grids. (Cutoff generous: our engine's micro-semantics differ from the
  // authors' unpublished simulator in the tails.)
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    ReliabilityParams RP;
    RP.AgentCounts = {2, 4, 8, 16, 32, 256};
    RP.NumRandomFields = 10;
    RP.Fitness.Sim.MaxSteps = 2000;
    ReliabilityReport Report = testReliability(bestAgent(Kind), T, RP);
    EXPECT_TRUE(Report.completelySuccessful()) << gridKindName(Kind);
  }
}

TEST(PipelineTest, SweepFormatsEndToEnd) {
  SweepParams P;
  P.AgentCounts = {8, 256};
  P.NumRandomFields = 8;
  P.Fitness.Sim.MaxSteps = 2000;
  auto Sweep = runDensitySweep(bestSquareAgent(), bestTriangulateAgent(), P);
  std::string Table = formatDensityTable(Sweep);
  EXPECT_NE(Table.find("T/S"), std::string::npos);
  EXPECT_NE(Table.find("9.00"), std::string::npos) << Table;
  EXPECT_NE(Table.find("15.00"), std::string::npos) << Table;
  std::ostringstream Csv;
  writeDensityCsv(Sweep, Csv);
  std::string CsvText = Csv.str();
  EXPECT_EQ(std::count(CsvText.begin(), CsvText.end(), '\n'), 3);
}

TEST(PipelineTest, EvolutionFindsASuccessfulFsmOnATrivialTask) {
  // Two agents on a handful of fields with colours available: a short run
  // of the paper's GA reliably finds an FSM that solves every training
  // field. This is the mechanism behind "after some generations, some
  // successful FSMs are found" (Sect. 4).
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 2, 3, 777);
  EvolutionParams EP;
  EP.Seed = 99;
  EP.Fitness.Sim.MaxSteps = 150;
  Evolution E(T, Fields, EP);
  Individual Best;
  bool FoundSuccessful = false;
  for (int G = 0; G != 60 && !FoundSuccessful; ++G) {
    E.stepGeneration();
    FoundSuccessful = E.bestEver().CompletelySuccessful;
  }
  EXPECT_TRUE(FoundSuccessful)
      << "60 generations failed to crack 6 two-agent fields";
}
