//===- tests/integration/PaperAgentsTest.cpp - End-to-end paper checks ----===//
//
// Drives the published best FSMs (Fig. 3/4) through full simulations and
// asserts the paper's qualitative results at reduced sample sizes. The
// full-scale numbers live in the bench binaries.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "analysis/Experiment.h"
#include "grid/Distance.h"
#include "sim/Trace.h"

#include "gtest/gtest.h"

using namespace ca2a;

namespace {
SimOptions generous() {
  SimOptions O;
  O.MaxSteps = 2000;
  return O;
}
} // namespace

TEST(PaperAgentsTest, SolveTheThreeManualDesignsAtAllSmallDensities) {
  // The manual designs were built to defeat uniform synchronous agents;
  // the published FSMs with ID-parity start states must crack them.
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    World W(T);
    for (int K : {2, 4, 8, 16}) {
      for (const InitialConfiguration &C :
           {queueForwardConfiguration(T, K), queueBackwardConfiguration(T, K),
            diagonalConfiguration(T, K)}) {
        W.reset(bestAgent(Kind), C.Placements, generous());
        SimResult R = W.run();
        EXPECT_TRUE(R.Success)
            << gridKindName(Kind) << " k=" << K << " manual design failed";
      }
    }
  }
}

TEST(PaperAgentsTest, IdParityStartIsTheReliabilityDevice) {
  // Sect. 4/5: with a uniform start state, two agents placed as exact
  // translates of each other (same direction, offset (8,8)) make identical
  // decisions forever — the whole configuration stays invariant under the
  // translation, their offset never changes, and they can never meet.
  // ID-parity start states break the symmetry. (This is the theorem behind
  // "agents can follow similar routes which are 'parallel' and therefore
  // never intersect", Sect. 4.)
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    World W(T);
    std::vector<Placement> Translates = {{Coord{0, 0}, 0}, {Coord{8, 8}, 0}};

    SimOptions Uniform = generous();
    Uniform.Start = StartStates::uniform(0);
    W.reset(bestAgent(Kind), Translates, Uniform);
    SimResult UniformResult = W.run();
    EXPECT_FALSE(UniformResult.Success)
        << gridKindName(Kind)
        << ": translation symmetry must never break with uniform starts";

    SimOptions Parity = generous();
    Parity.Start = StartStates::idParity();
    W.reset(bestAgent(Kind), Translates, Parity);
    SimResult ParityResult = W.run();
    EXPECT_TRUE(ParityResult.Success)
        << gridKindName(Kind) << ": ID-parity must break the symmetry";
  }
}

TEST(PaperAgentsTest, TriangulateFasterOnAverageAtEveryDensity) {
  SweepParams P;
  P.AgentCounts = {2, 4, 8, 16, 32};
  P.NumRandomFields = 20;
  P.Fitness.Sim.MaxSteps = 2000;
  auto Sweep = runDensitySweep(bestSquareAgent(), bestTriangulateAgent(), P);
  for (const DensityComparison &C : Sweep) {
    EXPECT_TRUE(C.Triangulate.completelySuccessful()) << "k=" << C.NumAgents;
    EXPECT_TRUE(C.Square.completelySuccessful()) << "k=" << C.NumAgents;
    EXPECT_LT(C.Triangulate.MeanCommTime, C.Square.MeanCommTime)
        << "k=" << C.NumAgents;
  }
}

TEST(PaperAgentsTest, FourAgentsAreTheSlowDensity) {
  // Fig. 5: the communication time peaks at N_agents = 4 (slower than both
  // 2 and 8) in both grids.
  SweepParams P;
  P.AgentCounts = {2, 4, 8};
  P.NumRandomFields = 60;
  P.Fitness.Sim.MaxSteps = 2000;
  auto Sweep = runDensitySweep(bestSquareAgent(), bestTriangulateAgent(), P);
  ASSERT_EQ(Sweep.size(), 3u);
  EXPECT_GT(Sweep[1].Triangulate.MeanCommTime,
            Sweep[0].Triangulate.MeanCommTime);
  EXPECT_GT(Sweep[1].Triangulate.MeanCommTime,
            Sweep[2].Triangulate.MeanCommTime);
  EXPECT_GT(Sweep[1].Square.MeanCommTime, Sweep[0].Square.MeanCommTime);
  EXPECT_GT(Sweep[1].Square.MeanCommTime, Sweep[2].Square.MeanCommTime);
}

TEST(PaperAgentsTest, PackedColumnIsExactlyTheDiameterBound) {
  // Table 1, N_agents = 256: t_comm = D - 1 = 15 (S) and 9 (T).
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    World W(T);
    W.reset(bestAgent(Kind), packedConfiguration(T).Placements, generous());
    SimResult R = W.run();
    ASSERT_TRUE(R.Success);
    EXPECT_EQ(R.TComm, Kind == GridKind::Square ? 15 : 9);
    EXPECT_EQ(R.TComm, diameterByScan(T) - 1);
  }
}

TEST(PaperAgentsTest, TwoAgentTraceBuildsStreets) {
  // Fig. 6/7: two agents, one special configuration (one facing north in
  // the upper left, one facing west on the right, as in the figures); the
  // T-agents solve it much faster than the S-agents, and both leave
  // colour trails. (Paper: 114 vs 44 steps on the authors' configuration;
  // ours measures 123 vs 35 on this one.)
  int TimeS = -1, TimeT = -1;
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    World W(T);
    bool Square = Kind == GridKind::Square;
    std::vector<Placement> P = {
        {Coord{2, 11}, static_cast<uint8_t>(Square ? 1 : 2)},  // North.
        {Coord{10, 9}, static_cast<uint8_t>(Square ? 2 : 3)},  // West.
    };
    W.reset(bestAgent(Kind), P, generous());
    TracedRun Run = runWithSnapshots(W, {0});
    ASSERT_TRUE(Run.Result.Success);
    (Kind == GridKind::Square ? TimeS : TimeT) = Run.Result.TComm;
    // Colour trails exist at the end.
    const Snapshot &Final = Run.Snapshots.back();
    int Colored = 0;
    for (uint8_t C : Final.Colors)
      Colored += C;
    EXPECT_GT(Colored, 0) << "agents must leave pheromone trails";
  }
  EXPECT_LT(TimeT, TimeS)
      << "T-agents must beat S-agents on the trace configuration";
  // The engine is deterministic, so these exact values double as a
  // regression guard for the step semantics (see EXPERIMENTS.md E3/E4).
  EXPECT_EQ(TimeS, 123);
  EXPECT_EQ(TimeT, 35);
}

TEST(PaperAgentsTest, Grid33x33ScalingCheck) {
  // Sect. 5: 16 agents on 33x33 (1003 fields in the paper; a sample here).
  // Both agents stay reliable and the T-agent stays faster.
  double MeanS = 0.0, MeanT = 0.0;
  constexpr int NumFields = 10;
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 33);
    World W(T);
    Rng R(20130707);
    double Sum = 0.0;
    for (int I = 0; I != NumFields; ++I) {
      InitialConfiguration C = randomConfiguration(T, 16, R);
      SimOptions O;
      O.MaxSteps = 5000;
      W.reset(bestAgent(Kind), C.Placements, O);
      SimResult Result = W.run();
      ASSERT_TRUE(Result.Success) << gridKindName(Kind) << " field " << I;
      Sum += Result.TComm;
    }
    (Kind == GridKind::Square ? MeanS : MeanT) = Sum / NumFields;
  }
  EXPECT_LT(MeanT, MeanS);
}
