//===- bench/bench_engine.cpp - P1: engine microbenchmarks ----------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// google-benchmark microbenchmarks of the CA engine: steps/second for
// both grids at several densities, full simulation runs, fitness
// evaluations, and the building blocks (exchange-heavy packed fields,
// genome mutation). These are throughput baselines, not paper artefacts.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "ga/Fitness.h"
#include "ga/Mutation.h"

#include "benchmark/benchmark.h"

using namespace ca2a;

namespace {

std::vector<Placement> firstKCells(const Torus &T, int K, uint64_t Seed) {
  Rng R(Seed);
  return randomConfiguration(T, K, R).Placements;
}

void BM_StepLoop(benchmark::State &State, GridKind Kind) {
  int NumAgents = static_cast<int>(State.range(0));
  Torus T(Kind, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 1 << 30; // The loop below controls the step count.
  std::vector<Placement> P = firstKCells(T, NumAgents, 42);
  W.reset(bestAgent(Kind), P, O);
  int64_t Steps = 0;
  for (auto _ : State) {
    if (W.step() == World::Status::Solved)
      W.reset(bestAgent(Kind), P, O); // Re-arm; amortised away.
    ++Steps;
  }
  State.SetItemsProcessed(Steps * NumAgents);
  State.counters["agent_steps/s"] = benchmark::Counter(
      static_cast<double>(Steps * NumAgents), benchmark::Counter::kIsRate);
}

void BM_FullRun(benchmark::State &State, GridKind Kind) {
  int NumAgents = static_cast<int>(State.range(0));
  Torus T(Kind, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 5000;
  std::vector<Placement> P = firstKCells(T, NumAgents, 43);
  int64_t TotalSteps = 0;
  for (auto _ : State) {
    W.reset(bestAgent(Kind), P, O);
    SimResult R = W.run();
    benchmark::DoNotOptimize(R);
    TotalSteps += R.Success ? R.TComm : O.MaxSteps;
  }
  State.counters["steps/run"] = static_cast<double>(TotalSteps) /
                                static_cast<double>(State.iterations());
}

void BM_PackedExchange(benchmark::State &State, GridKind Kind) {
  // Exchange-dominated workload: a fully packed 16x16 field.
  Torus T(Kind, 16);
  World W(T);
  SimOptions O;
  O.MaxSteps = 1 << 30;
  InitialConfiguration Packed = packedConfiguration(T);
  W.reset(bestAgent(Kind), Packed.Placements, O);
  for (auto _ : State) {
    if (W.step() == World::Status::Solved)
      W.reset(bestAgent(Kind), Packed.Placements, O);
  }
  State.SetItemsProcessed(State.iterations() * T.numCells());
}

void BM_BatchFullRun(benchmark::State &State, GridKind Kind) {
  // Batch counterpart of BM_FullRun: same fields through BatchEngine.
  int NumAgents = static_cast<int>(State.range(0));
  Torus T(Kind, 16);
  BatchEngine Engine(T);
  SimOptions O;
  O.MaxSteps = 5000;
  Genome G = bestAgent(Kind);
  std::vector<Placement> P = firstKCells(T, NumAgents, 43);
  std::vector<BatchReplica> Replicas(1);
  Replicas[0].A = &G;
  Replicas[0].Placements = &P;
  Replicas[0].Options = &O;
  int64_t TotalSteps = 0;
  for (auto _ : State) {
    std::vector<SimResult> R = Engine.run(Replicas);
    benchmark::DoNotOptimize(R);
    TotalSteps += R[0].Success ? R[0].TComm : O.MaxSteps;
  }
  State.counters["steps/run"] = static_cast<double>(TotalSteps) /
                                static_cast<double>(State.iterations());
}

void BM_FitnessEvaluation(benchmark::State &State, GridKind Kind,
                          EngineKind Engine) {
  Torus T(Kind, 16);
  auto Fields = standardConfigurationSet(T, 8, 20, 7);
  FitnessParams P;
  P.Sim.MaxSteps = 200;
  P.Engine = Engine;
  for (auto _ : State) {
    FitnessResult R = evaluateFitness(bestAgent(Kind), T, Fields, P);
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Fields.size()));
}

void BM_Mutation(benchmark::State &State) {
  Rng R(5);
  Genome G = Genome::random(R);
  MutationParams Params;
  for (auto _ : State) {
    Genome M = mutate(G, Params, R);
    benchmark::DoNotOptimize(M);
  }
}

} // namespace

BENCHMARK_CAPTURE(BM_StepLoop, Square, GridKind::Square)
    ->Arg(2)->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_StepLoop, Triangulate, GridKind::Triangulate)
    ->Arg(2)->Arg(8)->Arg(32);
BENCHMARK_CAPTURE(BM_FullRun, Square, GridKind::Square)->Arg(8)->Arg(16);
BENCHMARK_CAPTURE(BM_FullRun, Triangulate, GridKind::Triangulate)
    ->Arg(8)->Arg(16);
BENCHMARK_CAPTURE(BM_PackedExchange, Square, GridKind::Square);
BENCHMARK_CAPTURE(BM_PackedExchange, Triangulate, GridKind::Triangulate);
BENCHMARK_CAPTURE(BM_BatchFullRun, Square, GridKind::Square)->Arg(8)->Arg(16);
BENCHMARK_CAPTURE(BM_BatchFullRun, Triangulate, GridKind::Triangulate)
    ->Arg(8)->Arg(16);
BENCHMARK_CAPTURE(BM_FitnessEvaluation, Square, GridKind::Square,
                  EngineKind::Reference);
BENCHMARK_CAPTURE(BM_FitnessEvaluation, Triangulate, GridKind::Triangulate,
                  EngineKind::Reference);
BENCHMARK_CAPTURE(BM_FitnessEvaluation, Square_Batch, GridKind::Square,
                  EngineKind::Batch);
BENCHMARK_CAPTURE(BM_FitnessEvaluation, Triangulate_Batch,
                  GridKind::Triangulate, EngineKind::Batch);
BENCHMARK(BM_Mutation);
