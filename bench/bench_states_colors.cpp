//===- bench/bench_states_colors.cpp - More states / more colors ----------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Sect. 6, future work: "how fast and reliable agents are when using more
// states, more colors". Equal-budget evolution runs at several FSM
// dimensions on the T-grid; reported is the mean best-ever fitness and
// how many runs produced a completely successful FSM.
//
// Expected shape: at short budgets the paper's compact 4-state/2-colour
// table is hard to beat — larger tables enlarge the search space
// (K = (|s||y|)^(|s||x|), Sect. 4) faster than they add useful behaviour,
// which is exactly why the authors "restrict the number of states and
// actions to a certain limit".
//
//===----------------------------------------------------------------------===//

#include "ga/Evolution.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace ca2a;

int main() {
  constexpr int Generations = 40;
  constexpr int NumSeeds = 3;
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 50, 77777);

  std::printf("== Future work: FSM dimensions (T-grid, 8 agents, %zu "
              "fields, %d generations, %d seeds; mean best-ever F, lower "
              "is better) ==\n\n",
              Fields.size(), Generations, NumSeeds);

  TextTable Table;
  Table.setHeader({"dims", "slots", "log10 search space", "mean best F",
                   "successful runs"});
  for (GenomeDims Dims : {GenomeDims{4, 2}, GenomeDims{6, 2}, GenomeDims{8, 2},
                          GenomeDims{4, 3}, GenomeDims{4, 4},
                          GenomeDims{6, 3}}) {
    double MeanBest = 0.0;
    int Successful = 0;
    for (int Seed = 1; Seed <= NumSeeds; ++Seed) {
      EvolutionParams P;
      P.Seed = static_cast<uint64_t>(Seed) * 7919;
      P.Dims = Dims;
      P.Fitness.Sim.MaxSteps = 200;
      Evolution E(T, Fields, P);
      Individual Best = E.run(Generations);
      MeanBest += Best.Fitness;
      Successful += Best.CompletelySuccessful ? 1 : 0;
    }
    MeanBest /= NumSeeds;
    // Search-space size per Sect. 4: K = (|s| * |y|)^(|s| * |x|) with
    // |y| = 16 actions scaled by the colour count.
    double Outputs = Dims.States * 8.0 * Dims.Colors;
    double Log10K = Dims.length() * std::log10(Outputs);
    Table.addRow({formatString("%d states / %d colors", Dims.States,
                               Dims.Colors),
                  std::to_string(Dims.length()), formatFixed(Log10K, 0),
                  formatFixed(MeanBest, 2),
                  formatString("%d/%d", Successful, NumSeeds)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("(the paper's 4/2 table is the smallest; larger tables blow "
              "up the search space — at equal budgets compactness wins, "
              "supporting the authors' restriction)\n");
  return 0;
}
