//===- bench/bench_convergence.cpp - Informed-fraction curves (extra) -----===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// An extension figure the paper does not contain: the mean informed
// fraction over time for the best FSMs on both grids, plus behavioural
// metrics (meetings per step, move fraction) and the behaviour-free lower
// bound. Together they show *why* the T-grid wins: more meetings per step
// at equal density, a uniformly dominating convergence curve — not just a
// smaller mean.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/Bounds.h"
#include "analysis/Convergence.h"
#include "analysis/Metrics.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

int main() {
  constexpr int NumAgents = 16;
  constexpr int NumFields = 300;
  constexpr int CurveLength = 160;

  std::printf("== Extension: convergence curves and meeting rates "
              "(k = %d, %d fields) ==\n\n",
              NumAgents, NumFields);

  ConvergenceCurve Curves[2];
  double MeetingRates[2] = {0, 0};
  double MoveFractions[2] = {0, 0};
  double MeanBound = 0.0;
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, 16);
    auto Fields = standardConfigurationSet(T, NumAgents, NumFields, 33);
    SimOptions O;
    O.MaxSteps = 5000;
    int Index = Kind == GridKind::Triangulate;
    Curves[Index] = collectConvergence(bestAgent(Kind), T, Fields, O,
                                       CurveLength);

    World W(T);
    double Meetings = 0.0, Moves = 0.0, Bound = 0.0;
    for (const InitialConfiguration &Field : Fields) {
      W.reset(bestAgent(Kind), Field.Placements, O);
      RunMetrics M = collectRunMetrics(W);
      Meetings += M.meetingsPerStep();
      Moves += M.moveFraction();
      Bound += communicationLowerBound(T, Field);
    }
    MeetingRates[Index] = Meetings / Fields.size();
    MoveFractions[Index] = Moves / Fields.size();
    if (Kind == GridKind::Triangulate)
      MeanBound = Bound / static_cast<double>(Fields.size());
  }

  for (int Index : {0, 1}) {
    std::printf("---- %s-grid ----\n", Index ? "T" : "S");
    std::printf("%s", renderConvergence(Curves[Index], 10).c_str());
    std::printf("time to 50%%: %d, to 90%%: %d, to 100%%: %d\n",
                Curves[Index].timeToLevel(0.5),
                Curves[Index].timeToLevel(0.9),
                Curves[Index].timeToLevel(1.0 - 1e-9));
    std::printf("meetings/step: %s, move fraction: %s\n\n",
                formatFixed(MeetingRates[Index], 2).c_str(),
                formatFixed(MoveFractions[Index], 3).c_str());
  }

  std::printf("behaviour-free lower bound (T-grid fields, mean): %s steps\n",
              formatFixed(MeanBound, 1).c_str());

  bool Dominates = true;
  for (int Time = 10; Time < CurveLength; Time += 10)
    if (Curves[1].InformedFraction[static_cast<size_t>(Time)] + 0.02 <
        Curves[0].InformedFraction[static_cast<size_t>(Time)])
      Dominates = false;
  std::printf("shape: T curve dominates S curve (2%% tolerance): %s\n",
              Dominates ? "yes" : "NO");
  std::printf("shape: T meets more often per step: %s\n",
              MeetingRates[1] > MeetingRates[0] ? "yes" : "NO");
  return Dominates ? 0 : 1;
}
