//===- bench/bench_table1.cpp - E1: Table 1 and Fig. 5 --------------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Regenerates Table 1 / Fig. 5: mean communication time of the best
// published S- and T-agents for N_agents in {2, 4, 8, 16, 32, 256} on a
// 16 x 16 field, 1003 initial configurations per density (1000 random + 3
// manual), plus the T/S ratio row.
//
// Paper reference values:
//   N_agents |     2 |      4 |     8 |    16 |    32 |   256
//   T-grid   | 58.43 |  78.30 | 58.68 | 41.25 | 28.06 |  9.00
//   S-grid   | 82.78 | 116.12 | 90.93 | 63.39 | 42.93 | 15.00
//   T/S      | 0.706 |  0.674 | 0.645 | 0.651 | 0.690 | 0.600
//
// Deviation note: the paper's GA cutoff is t_max = 200; a small tail of
// our runs at low densities exceeds it (micro-semantics of the authors'
// simulator are unpublished), so this harness uses a generous cutoff and
// reports solve counts so means cover ALL fields.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "analysis/Chart.h"
#include "analysis/Distribution.h"
#include "analysis/Significance.h"
#include "analysis/Table.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <fstream>

using namespace ca2a;

int main(int Argc, char **Argv) {
  int64_t NumRandomFields = 1000;
  int64_t MaxSteps = 5000;
  int64_t Seed = 20130101;
  std::string CsvPath;
  std::string EngineName = "reference";
  std::string BackendName = "auto";
  CommandLine CL("bench_table1",
                 "Reproduces Table 1 / Fig. 5 (t_comm vs N_agents, S vs T)");
  CL.addInt("fields", "random fields per density (paper: 1000)",
            &NumRandomFields);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field-generation seed", &Seed);
  CL.addString("csv", "also write results to this CSV file", &CsvPath);
  CL.addString("engine", "simulation engine: reference | batch", &EngineName);
  CL.addString("backend", "batch-engine SIMD backend: auto | scalar | "
               "sliced64 | avx2 | rmaj64", &BackendName);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  EngineKind Engine = EngineKind::Reference;
  if (!parseEngineKind(EngineName, Engine)) {
    std::fprintf(stderr, "error: unknown engine '%s' (reference | batch)\n",
                 EngineName.c_str());
    return 1;
  }
  SimdBackend Backend = SimdBackend::Auto;
  if (!parseSimdBackend(BackendName, Backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (auto | scalar | "
                 "sliced64 | avx2 | rmaj64)\n", BackendName.c_str());
    return 1;
  }

  SweepParams Params;
  Params.SideLength = 16;
  Params.AgentCounts = {2, 4, 8, 16, 32, 256};
  Params.NumRandomFields = static_cast<int>(NumRandomFields);
  Params.FieldSeed = static_cast<uint64_t>(Seed);
  Params.Fitness.Sim.MaxSteps = static_cast<int>(MaxSteps);
  Params.Fitness.Engine = Engine;
  Params.Fitness.Backend = Backend;

  std::printf("== E1: Table 1 / Fig. 5 — mean t_comm on 16x16, %lld random "
              "fields + manual designs per density ==\n\n",
              static_cast<long long>(NumRandomFields));
  auto Sweep = runDensitySweep(bestSquareAgent(), bestTriangulateAgent(),
                               Params);
  std::printf("%s\n", formatDensityTable(Sweep).c_str());
  std::printf("paper     Table 1:\n"
              "T-grid   | 58.43 |  78.30 | 58.68 | 41.25 | 28.06 |  9.00\n"
              "S-grid   | 82.78 | 116.12 | 90.93 | 63.39 | 42.93 | 15.00\n"
              "T/S      | 0.706 |  0.674 | 0.645 | 0.651 | 0.690 | 0.600\n\n");

  for (const DensityComparison &C : Sweep)
    std::printf("k=%-3d solved: T %d/%d, S %d/%d\n", C.NumAgents,
                C.Triangulate.SolvedFields, C.Triangulate.NumFields,
                C.Square.SolvedFields, C.Square.NumFields);

  // Fig. 5 as an ASCII chart.
  {
    std::vector<std::string> Categories;
    ChartSeries TSeries{'T', "T-grid", {}};
    ChartSeries SSeries{'S', "S-grid", {}};
    for (const DensityComparison &C : Sweep) {
      Categories.push_back(std::to_string(C.NumAgents));
      TSeries.Values.push_back(C.Triangulate.MeanCommTime);
      SSeries.Values.push_back(C.Square.MeanCommTime);
    }
    std::printf("\nFig. 5 (mean t_comm vs N_agents):\n%s",
                renderCategoryChart(Categories, {TSeries, SSeries}).c_str());
  }

  // Statistical backing at the paper's reference density k = 16: Welch's
  // t for the mean difference and a bootstrap CI for the T/S ratio.
  {
    SimOptions O = Params.Fitness.Sim;
    Torus TriTorus(GridKind::Triangulate, Params.SideLength);
    Torus SqTorus(GridKind::Square, Params.SideLength);
    auto TriFields = standardConfigurationSet(TriTorus, 16,
                                              Params.NumRandomFields,
                                              Params.FieldSeed + 16);
    auto SqFields = standardConfigurationSet(SqTorus, 16,
                                             Params.NumRandomFields,
                                             Params.FieldSeed + 16);
    CommTimeDistribution TriDist =
        collectCommTimes(bestTriangulateAgent(), TriTorus, TriFields, O);
    CommTimeDistribution SqDist =
        collectCommTimes(bestSquareAgent(), SqTorus, SqFields, O);
    WelchResult Welch = welchTTest(TriDist.Times, SqDist.Times);
    Rng BootRng(4711);
    BootstrapInterval CI =
        bootstrapMeanRatio(TriDist.Times, SqDist.Times, 0.95, 2000, BootRng);
    std::printf("\nk=16 statistics: Welch t = %s (df ~ %s)%s; "
                "T/S ratio %s, 95%% CI [%s, %s]\n",
                formatFixed(Welch.TStatistic, 1).c_str(),
                formatFixed(Welch.DegreesOfFreedom, 0).c_str(),
                Welch.overwhelming() ? " — overwhelming" : "",
                formatFixed(CI.Estimate, 3).c_str(),
                formatFixed(CI.Low, 3).c_str(),
                formatFixed(CI.High, 3).c_str());
  }

  // Shape checks the reproduction stands on.
  bool RatioBandHolds = true, MaxAtFour = true;
  for (const DensityComparison &C : Sweep)
    if (C.ratio() < 0.55 || C.ratio() > 0.80)
      RatioBandHolds = false;
  if (Sweep.size() >= 3) {
    MaxAtFour = Sweep[1].Triangulate.MeanCommTime >
                    Sweep[0].Triangulate.MeanCommTime &&
                Sweep[1].Triangulate.MeanCommTime >
                    Sweep[2].Triangulate.MeanCommTime &&
                Sweep[1].Square.MeanCommTime > Sweep[0].Square.MeanCommTime &&
                Sweep[1].Square.MeanCommTime > Sweep[2].Square.MeanCommTime;
  }
  std::printf("\nshape: T/S ratio within [0.55, 0.80] at every density: %s\n",
              RatioBandHolds ? "yes" : "NO");
  std::printf("shape: maximum at N_agents = 4 in both grids: %s\n",
              MaxAtFour ? "yes" : "NO");

  if (!CsvPath.empty()) {
    std::ofstream Out(CsvPath);
    writeDensityCsv(Sweep, Out);
    std::printf("csv written to %s\n", CsvPath.c_str());
  }
  return RatioBandHolds && MaxAtFour ? 0 : 1;
}
