//===- bench/bench_topology.cpp - E2: Figs. 1-2, Eqs. 1-3 -----------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Regenerates the topology facts of Sect. 2: link counts (2N vs 3N,
// Fig. 1), diameters and mean distances (Eqs. 1-2) checked against exact
// scans of the actual graphs, the T/S ratios (Eq. 3), and the Fig. 2
// distance map of the size-3 tori.
//
//===----------------------------------------------------------------------===//

#include "grid/Distance.h"
#include "grid/Formulas.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

static void printDistanceMap(GridKind Kind) {
  // Fig. 2: distances from a centre cell on the size-3 (8x8) torus.
  Torus T(Kind, 8);
  Coord Center{4, 4};
  std::printf("%s-grid (n=3) distances from the centre cell:\n",
              gridKindName(Kind));
  for (int Y = 7; Y >= 0; --Y) {
    for (int X = 0; X != 8; ++X)
      std::printf(" %d", gridDistance(T, Center, Coord{X, Y}));
    std::printf("\n");
  }
  std::printf("\n");
}

int main() {
  std::printf("== E2: network parameters (Sect. 2, Figs. 1-2, Eqs. 1-3) ==\n\n");

  TextTable Table;
  Table.setHeader({"n", "N", "links S", "links T", "D_S scan", "D_S eq1",
                   "D_T scan", "D_T eq1", "mean_S scan", "mean_S eq2",
                   "mean_T scan", "mean_T eq2", "D T/S", "mean T/S"});
  bool AllMatch = true;
  for (int N = 2; N <= 6; ++N) {
    int M = 1 << N;
    Torus S(GridKind::Square, M), T(GridKind::Triangulate, M);
    int DsScan = diameterByScan(S), DtScan = diameterByScan(T);
    double MsScan = meanDistanceByScan(S), MtScan = meanDistanceByScan(T);
    AllMatch &= (DsScan == squareDiameter(N));
    AllMatch &= (DtScan == triangulateDiameter(N));
    Table.addRow({std::to_string(N), std::to_string(M * M),
                  std::to_string(S.numLinks()), std::to_string(T.numLinks()),
                  std::to_string(DsScan), std::to_string(squareDiameter(N)),
                  std::to_string(DtScan),
                  std::to_string(triangulateDiameter(N)),
                  formatFixed(MsScan, 3), formatFixed(squareMeanDistance(N), 3),
                  formatFixed(MtScan, 3),
                  formatFixed(triangulateMeanDistance(N), 3),
                  formatFixed(static_cast<double>(DtScan) / DsScan, 3),
                  formatFixed(MtScan / MsScan, 3)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("Eq. 3 asymptotics: D^{T/S} ~ 0.666, mean^{T/S} ~ 0.775\n\n");

  std::printf("Fig. 2 caption: D_3^S = 8, mean 4;  D_3^T = 5, mean ~3.09\n\n");
  printDistanceMap(GridKind::Square);
  printDistanceMap(GridKind::Triangulate);

  std::printf("closed forms match graph scans for n = 2..6: %s\n",
              AllMatch ? "yes" : "NO");
  return AllMatch ? 0 : 1;
}
