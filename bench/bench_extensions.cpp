//===- bench/bench_extensions.cpp - Future-work environment studies -------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Exploratory studies of the paper's future-work list ("how fast and
// reliable agents are when using ... obstacles, or borders") and the
// prior-work devices, using the published best FSMs:
//
//   X1 — borders: the same field sets with the wrap seam removed. The
//        authors' earlier studies found bordered environments easier;
//        note our FSMs were evolved for cyclic fields, so this measures
//        transfer, not a retrained optimum.
//   X2 — obstacles: random obstacle densities 0 / 8 / 16 / 32 cells on
//        16x16; agents must route around them.
//   X3 — species mixing: half the agents run the best S-FSM, half the
//        best T-FSM... (meaningful only per grid: we mix each grid's best
//        FSM with a mutated variant of itself).
//
// All numbers are means over the standard random field sets.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "ga/Mutation.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

namespace {

struct Measured {
  int Solved = 0;
  int Fields = 0;
  double Mean = 0.0;
};

Measured measure(GridKind Kind, int NumAgents, const SimOptions &Base,
                 int NumFields, uint64_t Seed, GenomePolicy Policy,
                 const Genome *SecondGenome) {
  Torus T(Kind, 16);
  World W(T);
  Rng R(Seed);
  Measured Out;
  const Genome &Primary = bestAgent(Kind);
  for (int I = 0; I != NumFields; ++I) {
    InitialConfiguration C =
        Base.Obstacles.empty()
            ? randomConfiguration(T, NumAgents, R)
            : randomConfigurationAvoiding(T, NumAgents, R, Base.Obstacles);
    W.reset(Primary, SecondGenome ? *SecondGenome : Primary, Policy,
            C.Placements, Base);
    SimResult Result = W.run();
    ++Out.Fields;
    if (Result.Success) {
      ++Out.Solved;
      Out.Mean += Result.TComm;
    }
  }
  if (Out.Solved)
    Out.Mean /= Out.Solved;
  return Out;
}

} // namespace

int main() {
  constexpr int NumFields = 300;
  constexpr int MaxSteps = 5000;

  std::printf("== X1: cyclic vs bordered fields (best FSMs, k agents, %d "
              "random fields) ==\n\n",
              NumFields);
  {
    TextTable Table;
    Table.setHeader({"grid/k", "cyclic t", "bordered t", "cyclic solved",
                     "bordered solved"});
    for (GridKind Kind : {GridKind::Square, GridKind::Triangulate})
      for (int K : {8, 16}) {
        SimOptions Cyclic;
        Cyclic.MaxSteps = MaxSteps;
        SimOptions Bordered = Cyclic;
        Bordered.Bordered = true;
        Measured C = measure(Kind, K, Cyclic, NumFields, 901,
                             GenomePolicy::Single, nullptr);
        Measured B = measure(Kind, K, Bordered, NumFields, 901,
                             GenomePolicy::Single, nullptr);
        Table.addRow({formatString("%s/k=%d", gridKindName(Kind), K),
                      formatFixed(C.Mean, 2), formatFixed(B.Mean, 2),
                      formatString("%d/%d", C.Solved, C.Fields),
                      formatString("%d/%d", B.Solved, B.Fields)});
      }
    std::printf("%s\n", Table.render().c_str());
    std::printf("(prior work: borders make the task easier; these FSMs were "
                "evolved for cyclic fields, so transfer may go either way)\n\n");
  }

  std::printf("== X2: obstacle densities (best FSMs, k = 16) ==\n\n");
  {
    TextTable Table;
    Table.setHeader({"grid", "0 obst", "8 obst", "16 obst", "32 obst",
                     "solved @32"});
    for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
      std::vector<std::string> Row = {gridKindName(Kind)};
      Measured Last;
      for (int NumObstacles : {0, 8, 16, 32}) {
        Torus T(Kind, 16);
        Rng ObstacleRng(555 + static_cast<uint64_t>(NumObstacles));
        SimOptions O;
        O.MaxSteps = MaxSteps;
        O.Obstacles = randomObstacles(T, NumObstacles, ObstacleRng);
        Last = measure(Kind, 16, O, NumFields, 902, GenomePolicy::Single,
                       nullptr);
        Row.push_back(formatFixed(Last.Mean, 2));
      }
      Row.push_back(formatString("%d/%d", Last.Solved, Last.Fields));
      Table.addRow(Row);
    }
    std::printf("%s\n", Table.render().c_str());
  }

  std::printf("== X3: species mixing (best FSM + its 18%%-mutant, "
              "SpeciesParity, k = 16) ==\n\n");
  {
    TextTable Table;
    Table.setHeader({"grid", "uniform species t", "mixed species t",
                     "uniform solved", "mixed solved"});
    for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
      Rng MutRng(31337);
      Genome Variant = mutate(bestAgent(Kind), MutationParams::uniform(0.18),
                              MutRng);
      SimOptions O;
      O.MaxSteps = MaxSteps;
      Measured Uniform = measure(Kind, 16, O, NumFields, 903,
                                 GenomePolicy::Single, nullptr);
      Measured Mixed = measure(Kind, 16, O, NumFields, 903,
                               GenomePolicy::SpeciesParity, &Variant);
      Table.addRow({gridKindName(Kind), formatFixed(Uniform.Mean, 2),
                    formatFixed(Mixed.Mean, 2),
                    formatString("%d/%d", Uniform.Solved, Uniform.Fields),
                    formatString("%d/%d", Mixed.Solved, Mixed.Fields)});
    }
    std::printf("%s\n", Table.render().c_str());
    std::printf("(a random mutant usually degrades the tuned FSM — the "
                "point is that the engine supports heterogeneous species, "
                "the paper's reliability option 3)\n");
  }
  return 0;
}
