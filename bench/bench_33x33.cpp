//===- bench/bench_33x33.cpp - E5: Sect. 5 scaling check ------------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Regenerates the Sect. 5 scaling experiment: the best FSMs (evolved for
// 16x16 with 8 agents) run 16 agents on a 33x33 field over 1003 random
// initial configurations. Paper: best S-agent 229 steps, best T-agent 181
// steps, both reliable — the T-agent stays ahead away from its training
// size (though with a weaker margin than on 16x16, as the paper also
// observes against [9]).
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "analysis/Experiment.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

int main(int Argc, char **Argv) {
  int64_t NumFields = 1003;
  int64_t NumAgents = 16;
  int64_t SideLength = 33;
  int64_t MaxSteps = 20000;
  int64_t Seed = 20130533;
  CommandLine CL("bench_33x33", "Sect. 5 scaling check: 16 agents on 33x33");
  CL.addInt("fields", "number of random fields", &NumFields);
  CL.addInt("agents", "agents per field", &NumAgents);
  CL.addInt("side", "field side length", &SideLength);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field-generation seed", &Seed);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }

  std::printf("== E5: %lld agents on %lldx%lld, %lld random fields ==\n",
              static_cast<long long>(NumAgents),
              static_cast<long long>(SideLength),
              static_cast<long long>(SideLength),
              static_cast<long long>(NumFields));
  std::printf("(paper: S 229 steps, T 181 steps on 1003 fields)\n\n");

  double MeanS = 0.0, MeanT = 0.0;
  bool AllSolved = true;
  for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
    Torus T(Kind, static_cast<int>(SideLength));
    World W(T);
    Rng FieldRng(static_cast<uint64_t>(Seed));
    double Sum = 0.0;
    int Solved = 0;
    for (int I = 0; I != NumFields; ++I) {
      InitialConfiguration C =
          randomConfiguration(T, static_cast<int>(NumAgents), FieldRng);
      SimOptions O;
      O.MaxSteps = static_cast<int>(MaxSteps);
      W.reset(bestAgent(Kind), C.Placements, O);
      SimResult R = W.run();
      if (R.Success) {
        ++Solved;
        Sum += R.TComm;
      }
    }
    double Mean = Solved ? Sum / Solved : 0.0;
    (Kind == GridKind::Square ? MeanS : MeanT) = Mean;
    AllSolved &= (Solved == NumFields);
    std::printf("%s-grid: mean t_comm = %s over %d/%lld solved fields\n",
                gridKindName(Kind), formatFixed(Mean, 2).c_str(), Solved,
                static_cast<long long>(NumFields));
  }
  std::printf("\nT/S ratio: %s (paper: 181/229 = 0.790)\n",
              formatFixed(MeanT / MeanS, 3).c_str());
  std::printf("all fields solved: %s\n", AllSolved ? "yes" : "NO");
  return (MeanT < MeanS && AllSolved) ? 0 : 1;
}
