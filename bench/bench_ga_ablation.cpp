//===- bench/bench_ga_ablation.cpp - GA design-choice ablations -----------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Ablates the genetic procedure's design choices under equal evaluation
// budgets (same generations, population, field set):
//
//   G1 — variation: mutation-only (the paper's choice) vs mutation +
//        one-point crossover ("we experimented with the classical
//        crossover/mutation method... mutation only gave us similar good
//        results").
//   G2 — mutation rate: the paper's 18% against 5% / 40%.
//   G3 — diversity exchange: b = 3 (the paper) vs b = 0 (plain elitism).
//
// Each setting runs over several seeds; reported is the mean best-ever
// fitness (lower is better) on the training set.
//
//===----------------------------------------------------------------------===//

#include "ga/Evolution.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

namespace {

struct AblationOutcome {
  double MeanBestFitness = 0.0;
  int SuccessfulRuns = 0; ///< Runs whose best FSM was completely successful.
  int Runs = 0;
};

AblationOutcome runSetting(const Torus &T,
                           const std::vector<InitialConfiguration> &Fields,
                           EvolutionParams Params, int Generations,
                           int NumSeeds) {
  AblationOutcome Out;
  for (int Seed = 1; Seed <= NumSeeds; ++Seed) {
    Params.Seed = static_cast<uint64_t>(Seed) * 1299709;
    Evolution E(T, Fields, Params);
    Individual Best = E.run(Generations);
    Out.MeanBestFitness += Best.Fitness;
    Out.SuccessfulRuns += Best.CompletelySuccessful ? 1 : 0;
    ++Out.Runs;
  }
  Out.MeanBestFitness /= Out.Runs;
  return Out;
}

} // namespace

int main() {
  constexpr int Generations = 40;
  constexpr int NumSeeds = 3;
  Torus T(GridKind::Triangulate, 16);
  auto Fields = standardConfigurationSet(T, 8, 50, 424242);
  EvolutionParams Base;
  Base.Fitness.Sim.MaxSteps = 200;

  std::printf("== GA ablations: T-grid, 8 agents, %zu fields, %d "
              "generations, %d seeds each (mean best-ever F, lower is "
              "better) ==\n\n",
              Fields.size(), Generations, NumSeeds);

  TextTable Table;
  Table.setHeader({"setting", "mean best F", "successful runs"});
  auto Report = [&](const char *Name, const AblationOutcome &O) {
    Table.addRow({Name, formatFixed(O.MeanBestFitness, 2),
                  formatString("%d/%d", O.SuccessfulRuns, O.Runs)});
  };

  // G1: variation operator.
  Report("mutation-only 18% (paper)",
         runSetting(T, Fields, Base, Generations, NumSeeds));
  {
    EvolutionParams Crossover = Base;
    Crossover.CrossoverProbability = 0.5;
    Report("crossover 50% + mutation 18%",
           runSetting(T, Fields, Crossover, Generations, NumSeeds));
  }

  // G2: mutation rate.
  for (double Rate : {0.05, 0.40}) {
    EvolutionParams P = Base;
    P.Mutation = MutationParams::uniform(Rate);
    Report(Rate < 0.1 ? "mutation-only 5%" : "mutation-only 40%",
           runSetting(T, Fields, P, Generations, NumSeeds));
  }

  // G3: diversity exchange.
  {
    EvolutionParams NoExchange = Base;
    NoExchange.ExchangeCount = 0;
    Report("no diversity exchange (b=0)",
           runSetting(T, Fields, NoExchange, Generations, NumSeeds));
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("expected shape: the paper's setting is competitive; "
              "crossover neither helps nor hurts much; extreme mutation "
              "rates degrade convergence\n");
  return 0;
}
