//===- bench/bench_faults.cpp - R2: fault-tolerance sweeps ----------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Beyond-the-paper robustness study: how do the paper's best published S-
// and T-agents degrade when the perfectly synchronous, lossless torus
// assumption is relaxed? Each fault process of sim/Fault.h is swept
// independently over per-step rates, measuring success rate, mean t_comm
// over solved fields, mean informed fraction, and (for deaths) mean
// survivors, on the same field set for every rate so rows are paired.
//
// Shape checks (exit nonzero on violation):
//   * rate 0 of every fault process is bit-identical to the fault-free
//     engine — same solve count and mean t_comm (the inertness guarantee),
//   * the swept process actually fires at the highest rate (its FaultStats
//     counter is nonzero on both grids),
//   * the death sweep loses agents at the highest rate.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <fstream>
#include <vector>

using namespace ca2a;

namespace {

/// Aggregates of one (grid, fault process, rate) cell of the sweep.
struct FaultRow {
  double Rate = 0.0;
  int SolvedFields = 0;
  int NumFields = 0;
  double MeanCommTime = 0.0;        ///< Over solved fields (0 if none).
  double MeanInformedFraction = 0.0;
  double MeanSurvivors = 0.0;
  FaultStats Events;                ///< Summed over all fields.
};

/// The four independent fault processes, as sweep axes.
struct FaultAxis {
  const char *Name;
  double FaultModel::*Rate;
  int64_t FaultStats::*Counter;
};

const FaultAxis Axes[] = {
    {"stall", &FaultModel::StallProbability, &FaultStats::Stalls},
    {"death", &FaultModel::DeathProbability, &FaultStats::Deaths},
    {"drop", &FaultModel::LinkDropProbability, &FaultStats::DroppedLinks},
    {"flip", &FaultModel::ColorFlipProbability, &FaultStats::ColorFlips},
};

FaultRow runFaultRow(const Genome &G, const Torus &T,
                     const std::vector<InitialConfiguration> &Fields,
                     const SimOptions &Base, const FaultModel &Faults) {
  FaultRow Row;
  Row.NumFields = static_cast<int>(Fields.size());
  World W(T);
  double CommTimeSum = 0.0;
  for (size_t I = 0; I != Fields.size(); ++I) {
    SimOptions O = Base;
    O.Faults = Faults;
    // Every field gets its own fault stream; the offset keeps rate-equal
    // rows comparable across fault processes.
    O.Faults.Seed = Faults.Seed + 0x9e3779b97f4a7c15ULL * (I + 1);
    W.reset(G, Fields[I].Placements, O);
    SimResult R = W.run();
    if (R.Success) {
      ++Row.SolvedFields;
      CommTimeSum += R.TComm;
    }
    Row.MeanInformedFraction += R.InformedFraction;
    Row.MeanSurvivors += R.SurvivingAgents;
    Row.Events.Stalls += R.Faults.Stalls;
    Row.Events.Deaths += R.Faults.Deaths;
    Row.Events.DroppedLinks += R.Faults.DroppedLinks;
    Row.Events.ColorFlips += R.Faults.ColorFlips;
  }
  if (Row.SolvedFields > 0)
    Row.MeanCommTime = CommTimeSum / Row.SolvedFields;
  if (Row.NumFields > 0) {
    Row.MeanInformedFraction /= Row.NumFields;
    Row.MeanSurvivors /= Row.NumFields;
  }
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  int64_t NumRandomFields = 200;
  int64_t NumAgents = 8;
  int64_t MaxSteps = 1000;
  int64_t Seed = 20130101;
  std::string CsvPath;
  CommandLine CL("bench_faults",
                 "R2: degradation of the best S/T-agents under faults");
  CL.addInt("fields", "random fields per cell (plus 3 manual)",
            &NumRandomFields);
  CL.addInt("agents", "agents per field (paper training density: 8)",
            &NumAgents);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field-generation seed", &Seed);
  CL.addString("csv", "also write results to this CSV file", &CsvPath);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  if (NumRandomFields < 0 || NumAgents < 1 || NumAgents > 16 * 16 ||
      MaxSteps < 1) {
    std::fprintf(stderr, "error: want --fields >= 0, --agents in [1, 256], "
                         "--max-steps >= 1\n");
    return 1;
  }

  const double Rates[] = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05};
  const GridKind Kinds[] = {GridKind::Triangulate, GridKind::Square};

  std::printf("== R2: fault sweeps — best published agents, 16x16, k = %lld, "
              "%lld random fields + manual designs per cell ==\n",
              static_cast<long long>(NumAgents),
              static_cast<long long>(NumRandomFields));

  std::ofstream Csv;
  if (!CsvPath.empty()) {
    Csv.open(CsvPath);
    Csv << "grid,fault,rate,fields,solved,mean_t_comm,informed_fraction,"
           "mean_survivors,events\n";
  }

  bool ZeroRateIdentity = true;
  bool ProcessesFire = true;
  bool DeathsReduceSurvivors = true;

  for (GridKind Kind : Kinds) {
    Torus T(Kind, 16);
    const Genome &G = bestAgent(Kind);
    auto Fields = standardConfigurationSet(
        T, static_cast<int>(NumAgents), static_cast<int>(NumRandomFields),
        static_cast<uint64_t>(Seed));
    SimOptions Base;
    Base.MaxSteps = static_cast<int>(MaxSteps);

    // The fault-free reference row every zero-rate row must reproduce
    // bit-for-bit.
    FaultRow Reference = runFaultRow(G, T, Fields, Base, FaultModel());

    std::printf("\n%s-grid (fault-free: %d/%d solved, mean t = %s)\n",
                gridKindName(Kind), Reference.SolvedFields,
                Reference.NumFields,
                formatFixed(Reference.MeanCommTime, 2).c_str());
    std::printf("  %-6s | %8s | %9s | %8s | %8s | %9s | %9s\n", "fault",
                "rate", "solved", "mean t", "informed", "survivors",
                "events");

    for (const FaultAxis &Axis : Axes) {
      FaultRow Top;
      for (double Rate : Rates) {
        FaultModel F;
        F.*(Axis.Rate) = Rate;
        FaultRow Row = runFaultRow(G, T, Fields, Base, F);
        Row.Rate = Rate;
        Top = Row;
        std::printf("  %-6s | %8s | %4d/%-4d | %8s | %8s | %9s | %9lld\n",
                    Axis.Name, formatFixed(Rate, 3).c_str(),
                    Row.SolvedFields, Row.NumFields,
                    formatFixed(Row.MeanCommTime, 2).c_str(),
                    formatFixed(Row.MeanInformedFraction, 3).c_str(),
                    formatFixed(Row.MeanSurvivors, 2).c_str(),
                    static_cast<long long>(Row.Events.total()));
        if (Csv.is_open())
          Csv << gridKindName(Kind) << ',' << Axis.Name << ','
              << formatFixed(Rate, 3) << ',' << Row.NumFields << ','
              << Row.SolvedFields << ',' << formatFixed(Row.MeanCommTime, 4)
              << ',' << formatFixed(Row.MeanInformedFraction, 4) << ','
              << formatFixed(Row.MeanSurvivors, 4) << ','
              << Row.Events.total() << '\n';
        if (Rate == 0.0 && (Row.SolvedFields != Reference.SolvedFields ||
                            Row.MeanCommTime != Reference.MeanCommTime ||
                            Row.Events.total() != 0))
          ZeroRateIdentity = false;
      }
      if (Top.Events.*(Axis.Counter) <= 0)
        ProcessesFire = false;
      if (Axis.Counter == &FaultStats::Deaths &&
          Top.MeanSurvivors >= static_cast<double>(NumAgents))
        DeathsReduceSurvivors = false;
    }
  }

  std::printf("\nshape: zero-rate rows identical to the fault-free engine: "
              "%s\n", ZeroRateIdentity ? "yes" : "NO");
  std::printf("shape: every fault process fires at its highest rate: %s\n",
              ProcessesFire ? "yes" : "NO");
  std::printf("shape: deaths reduce mean survivors below k: %s\n",
              DeathsReduceSurvivors ? "yes" : "NO");
  if (Csv.is_open())
    std::printf("csv written to %s\n", CsvPath.c_str());
  return ZeroRateIdentity && ProcessesFire && DeathsReduceSurvivors ? 0 : 1;
}
