//===- bench/bench_ga.cpp - E6: the Sect. 4 genetic procedure -------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Runs the paper's genetic procedure (N = 20, b = 3, mutation-only at
// 18%) on both grids: 16x16 field, 8 agents, a training set of random +
// manual configurations, and reports the generation trajectory — in
// particular the paper's qualitative milestones: the random initial
// population contains no successful FSM; successful FSMs appear after
// some generations; the best-ever fitness falls monotonically.
//
// The paper's four full-scale optimisation runs used 1003 training fields
// and an unspecified (large) generation budget; the defaults here are
// sized for minutes on one core and are configurable up to paper scale
// (--fields 1000 --generations <large>).
//
//===----------------------------------------------------------------------===//

#include "ga/Evolution.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

static int runEvolution(GridKind Kind, int NumFields, int Generations,
                        int NumAgents, uint64_t Seed) {
  Torus T(Kind, 16);
  auto Fields = standardConfigurationSet(T, NumAgents, NumFields - 3,
                                         Seed * 7919 + 13);
  EvolutionParams Params;
  Params.Seed = Seed;
  Params.Fitness.Sim.MaxSteps = 200; // The paper's t_max.

  Evolution E(T, Fields, Params);
  std::printf("---- %s-grid: %d agents, %zu training fields, seed %llu ----\n",
              gridKindName(Kind), NumAgents, Fields.size(),
              static_cast<unsigned long long>(Seed));

  int InitialSuccessful = 0;
  for (const Individual &Ind : E.population())
    InitialSuccessful += Ind.CompletelySuccessful ? 1 : 0;
  std::printf("gen %4d: best F = %9s, completely-successful FSMs in pool: "
              "%d/20\n",
              0, formatFixed(E.population().front().Fitness, 2).c_str(),
              InitialSuccessful);

  int FirstSuccessGen = -1;
  E.run(Generations, [&](const GenerationStats &S) {
    if (FirstSuccessGen < 0 && S.NumCompletelySuccessful > 0)
      FirstSuccessGen = S.Generation;
    if (S.Generation % 10 == 0 || S.Generation == Generations)
      std::printf("gen %4d: best F = %9s, mean F = %11s, successful in "
                  "pool: %d/20, evals: %d\n",
                  S.Generation, formatFixed(S.BestFitness, 2).c_str(),
                  formatFixed(S.MeanFitness, 2).c_str(),
                  S.NumCompletelySuccessful, S.Evaluations);
  });

  const Individual &Best = E.bestEver();
  std::printf("best-ever: F = %s, solved %d/%zu fields%s\n",
              formatFixed(Best.Fitness, 2).c_str(), Best.SolvedFields,
              Fields.size(),
              Best.CompletelySuccessful ? " (completely successful)" : "");
  if (FirstSuccessGen >= 0)
    std::printf("first completely successful FSM appeared in generation %d\n",
                FirstSuccessGen);
  std::printf("initial random population had %d successful FSMs "
              "(paper: 'usually there is no FSM in the initial population "
              "that is successful')\n\n",
              InitialSuccessful);
  return InitialSuccessful;
}

int main(int Argc, char **Argv) {
  int64_t NumFields = 103;
  int64_t Generations = 60;
  int64_t NumAgents = 8;
  int64_t Seed = 1;
  CommandLine CL("bench_ga",
                 "Runs the paper's genetic procedure on both grids");
  CL.addInt("fields", "training fields incl. 3 manual (paper: 1003)",
            &NumFields);
  CL.addInt("generations", "generations per run", &Generations);
  CL.addInt("agents", "agents per field (paper: 8)", &NumAgents);
  CL.addInt("seed", "evolution seed", &Seed);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }

  std::printf("== E6: genetic procedure (Sect. 4): N=20, b=3, mutation 18%%, "
              "W=1e4, t_max=200 ==\n\n");
  int SuccessfulAtStart = 0;
  SuccessfulAtStart += runEvolution(GridKind::Triangulate,
                                    static_cast<int>(NumFields),
                                    static_cast<int>(Generations),
                                    static_cast<int>(NumAgents),
                                    static_cast<uint64_t>(Seed));
  SuccessfulAtStart += runEvolution(GridKind::Square,
                                    static_cast<int>(NumFields),
                                    static_cast<int>(Generations),
                                    static_cast<int>(NumAgents),
                                    static_cast<uint64_t>(Seed));
  return 0;
}
