//===- bench/bench_islands.cpp - R10: island-model GA scaling -------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Measures what sharding the Sect. 4 genetic procedure across islands
// buys at an EQUAL evaluation budget. Two variants train on the same
// field set with the same base seed:
//
//   islands    N islands x population P (ring, migration every G gens),
//              run by the in-process island runner — the distributed
//              configuration;
//   monolith   one Evolution with population N*P — the same number of
//              fitness evaluations per generation, in one pool.
//
// Selection on a population-P pool costs O(P^2) of the dedup/sort work a
// population-N*P pool pays, and each island's generation is 1/N of the
// monolith's, so the aggregate generations/second is expected to scale
// ~N-fold even on one core; the JSON also records champion quality at
// the shared budget, where the monolith's bigger pool is the favourite —
// that tension is the experiment (EXPERIMENTS.md R10).
//
// Before timing anything, the harness re-runs the island configuration
// across worker counts and both transports and exits nonzero unless the
// champion genome is bit-identical each time — the determinism gate that
// makes the timing numbers trustworthy.
//
// Exit status: 0 when the determinism gate holds, 1 otherwise. Speed is
// not gated (machine-dependent); BENCH_islands.json carries the ratios.
//
//===----------------------------------------------------------------------===//

#include "dist/IslandRunner.h"
#include "support/CommandLine.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

struct VariantResult {
  std::string Name;
  double Seconds = 0.0;
  int GenerationsTotal = 0; ///< Summed across islands.
  int Evaluations = 0;      ///< Summed across islands.
  double ChampionFitness = 0.0;
  uint64_t ChampionHash = 0;
  int ChampionSolved = 0;

  double gensPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(GenerationsTotal) / Seconds
                         : 0.0;
  }
};

Expected<VariantResult>
runIslandVariant(std::string Name, const Torus &T,
                 const std::vector<InitialConfiguration> &Fields,
                 const IslandRunParams &Params, int Generations) {
  VariantResult R;
  R.Name = std::move(Name);
  auto Start = std::chrono::steady_clock::now();
  auto Result = runIslands(T, Fields, Params, Generations);
  R.Seconds = secondsSince(Start);
  if (!Result)
    return Result.error();
  for (const IslandOutcome &Out : Result->Islands) {
    R.GenerationsTotal += Out.Generations;
    R.Evaluations += Out.Evaluations;
  }
  R.ChampionFitness = Result->Champion.Fitness;
  R.ChampionHash = Result->Champion.G.hashValue();
  R.ChampionSolved = Result->Champion.SolvedFields;
  return R;
}

VariantResult runMonolith(const Torus &T,
                          const std::vector<InitialConfiguration> &Fields,
                          EvolutionParams Params, int Generations) {
  VariantResult R;
  R.Name = "monolith";
  auto Start = std::chrono::steady_clock::now();
  Evolution E(T, Fields, Params);
  for (int G = 0; G != Generations; ++G)
    E.stepGeneration();
  R.Seconds = secondsSince(Start);
  R.GenerationsTotal = E.generation();
  R.Evaluations = E.evaluations();
  R.ChampionFitness = E.bestEver().Fitness;
  R.ChampionHash = E.bestEver().G.hashValue();
  R.ChampionSolved = E.bestEver().SolvedFields;
  return R;
}

void printJsonVariant(std::FILE *Out, const char *Key,
                      const VariantResult &V, int Islands, int Population) {
  std::fprintf(Out,
               "  \"%s\": {\"islands\": %d, \"population\": %d, "
               "\"seconds\": %.6f, \"generations_total\": %d, "
               "\"gens_per_sec\": %.3f, \"evaluations\": %d, "
               "\"champion_fitness\": %.6f, \"champion_solved\": %d}",
               Key, Islands, Population, V.Seconds, V.GenerationsTotal,
               V.gensPerSec(), V.Evaluations, V.ChampionFitness,
               V.ChampionSolved);
}

} // namespace

int main(int Argc, char **Argv) {
  int64_t NumFields = 23;
  int64_t Generations = 30;
  int64_t Seed = 7;
  int64_t NumIslands = 4;
  int64_t Interval = 5;
  bool Quick = false;
  std::string JsonPath = "BENCH_islands.json";
  CommandLine CL("bench_islands",
                 "R10: island-model scaling vs one big population at "
                 "equal evaluation budget");
  CL.addInt("fields", "training fields incl. 3 manual", &NumFields, 3,
            1000000);
  CL.addInt("generations", "generations per island (= monolith "
            "generations; budgets match by construction)", &Generations, 1,
            1000000000);
  CL.addInt("seed", "base seed", &Seed);
  CL.addInt("islands", "island count N (monolith population = N x 20)",
            &NumIslands, 1, 64);
  CL.addInt("interval", "migration interval G", &Interval, 0, 1000000000);
  CL.addBool("quick", "small CI smoke run (13 fields, 10 generations)",
             &Quick);
  CL.addString("json", "write the machine-readable report here",
               &JsonPath);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  if (Quick) {
    NumFields = 13;
    Generations = 10;
  }

  Torus T(GridKind::Triangulate, 16);
  auto Fields =
      standardConfigurationSet(T, 8, static_cast<int>(NumFields) - 3,
                               static_cast<uint64_t>(Seed) * 104729 + 7);

  EvolutionParams Evo;
  Evo.Seed = static_cast<uint64_t>(Seed);
  Evo.Fitness.Sim.MaxSteps = 200;
  Evo.Fitness.Engine = EngineKind::Batch;

  IslandRunParams RP;
  RP.NumIslands = static_cast<int>(NumIslands);
  RP.Topology = TopologyKind::Ring;
  RP.MigrationInterval = static_cast<int>(Interval);
  RP.MigrantCount = 3;
  RP.Transport = TransportKind::Socket;
  RP.Evo = Evo;
  RP.Grid = GridKind::Triangulate;
  RP.SideLength = T.sideLength();

  std::printf("bench_islands: %lld islands x pop 20 vs 1 x pop %lld, "
              "%zu fields, %lld generations, seed %lld\n",
              static_cast<long long>(NumIslands),
              static_cast<long long>(NumIslands * 20), Fields.size(),
              static_cast<long long>(Generations),
              static_cast<long long>(Seed));

  // Determinism gate: same champion across worker counts and transports.
  std::printf("-- determinism gate (workers x transport)\n");
  uint64_t GateHash = 0;
  bool GateHolds = true;
  struct GateRun {
    const char *Label;
    TransportKind Transport;
    int Workers;
  };
  std::string GateDir = "bench_islands_mailbox.tmp";
  for (const GateRun &Run :
       {GateRun{"socket w1", TransportKind::Socket, 1},
        GateRun{"socket w2", TransportKind::Socket, 2},
        GateRun{"file   w1", TransportKind::File, 1}}) {
    IslandRunParams GateParams = RP;
    GateParams.Transport = Run.Transport;
    GateParams.Evo.Fitness.NumWorkers = Run.Workers;
    if (Run.Transport == TransportKind::File) {
      std::filesystem::remove_all(GateDir);
      GateParams.MailboxDir = GateDir;
    }
    auto R = runIslandVariant(Run.Label, T, Fields, GateParams,
                              static_cast<int>(Generations));
    if (!R) {
      std::fprintf(stderr, "error: %s: %s\n", Run.Label,
                   R.error().message().c_str());
      return 1;
    }
    if (GateHash == 0)
      GateHash = R->ChampionHash;
    bool Same = R->ChampionHash == GateHash;
    GateHolds = GateHolds && Same;
    std::printf("   %s: champion F = %.2f  %s\n", Run.Label,
                R->ChampionFitness, Same ? "identical" : "DIVERGED");
  }
  std::filesystem::remove_all(GateDir);

  // Timed runs (gate runs above double as warm-up).
  auto Islands = runIslandVariant("islands", T, Fields, RP,
                                  static_cast<int>(Generations));
  if (!Islands) {
    std::fprintf(stderr, "error: %s\n", Islands.error().message().c_str());
    return 1;
  }
  EvolutionParams Mono = Evo;
  Mono.PopulationSize = static_cast<int>(NumIslands) * 20;
  VariantResult Monolith =
      runMonolith(T, Fields, Mono, static_cast<int>(Generations));

  double Speedup = Monolith.gensPerSec() > 0.0
                       ? Islands->gensPerSec() / Monolith.gensPerSec()
                       : 0.0;
  std::printf("-- islands : %7.3f s, %4d gens, %8.2f gens/s, %d evals, "
              "champion F = %.2f\n",
              Islands->Seconds, Islands->GenerationsTotal,
              Islands->gensPerSec(), Islands->Evaluations,
              Islands->ChampionFitness);
  std::printf("-- monolith: %7.3f s, %4d gens, %8.2f gens/s, %d evals, "
              "champion F = %.2f\n",
              Monolith.Seconds, Monolith.GenerationsTotal,
              Monolith.gensPerSec(), Monolith.Evaluations,
              Monolith.ChampionFitness);
  std::printf("-- aggregate throughput: %.2fx; champion delta: %+.2f "
              "(negative = islands fitter)\n",
              Speedup, Islands->ChampionFitness - Monolith.ChampionFitness);

  if (std::FILE *Out = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(Out, "{\n  \"bench\": \"bench_islands\",\n");
    std::fprintf(Out,
                 "  \"grid\": \"T\",\n  \"agents\": 8,\n  \"fields\": "
                 "%zu,\n  \"generations\": %lld,\n  \"seed\": %lld,\n"
                 "  \"topology\": \"ring\",\n  \"interval\": %lld,\n"
                 "  \"migrants\": 3,\n",
                 Fields.size(), static_cast<long long>(Generations),
                 static_cast<long long>(Seed),
                 static_cast<long long>(Interval));
    printJsonVariant(Out, "islands", *Islands,
                     static_cast<int>(NumIslands), 20);
    std::fprintf(Out, ",\n");
    printJsonVariant(Out, "monolith", Monolith, 1,
                     static_cast<int>(NumIslands) * 20);
    std::fprintf(Out, ",\n");
    std::fprintf(Out, "  \"aggregate_speedup\": %.3f,\n", Speedup);
    std::fprintf(Out, "  \"champion_delta\": %.6f,\n",
                 Islands->ChampionFitness - Monolith.ChampionFitness);
    std::fprintf(Out, "  \"determinism_gate\": %s\n",
                 GateHolds ? "true" : "false");
    std::fprintf(Out, "}\n");
    std::fclose(Out);
    std::printf("report written to %s\n", JsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }

  if (!GateHolds) {
    std::fprintf(stderr, "FAILED: champion diverged across workers/"
                 "transports\n");
    return 1;
  }
  std::printf("determinism gate holds: champions bit-identical\n");
  return 0;
}
