//===- bench/bench_semantics.cpp - Robustness to ambiguous semantics ------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// The one step-semantics point the paper leaves genuinely ambiguous is
// which agents participate in a move conflict (DESIGN.md §5): only agents
// whose FSM wants to move ("request priority", our default reading), or
// every agent facing the cell ("gaze priority"). This bench reruns the
// Table 1 sweep under both readings and reports how much the headline
// quantities move — demonstrating that the reproduction's conclusions do
// not depend on the choice.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "analysis/Table.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace ca2a;

int main() {
  constexpr int NumFields = 300;
  SweepParams Base;
  Base.AgentCounts = {2, 4, 8, 16, 32, 256};
  Base.NumRandomFields = NumFields;
  Base.Fitness.Sim.MaxSteps = 5000;

  std::printf("== Semantics robustness: conflict arbitration readings "
              "(%d fields per density) ==\n\n",
              NumFields);

  std::vector<DensityComparison> Sweeps[2];
  for (ArbitrationMode Mode :
       {ArbitrationMode::RequestPriority, ArbitrationMode::GazePriority}) {
    SweepParams Params = Base;
    Params.Fitness.Sim.Arbitration = Mode;
    int Index = Mode == ArbitrationMode::GazePriority;
    Sweeps[Index] =
        runDensitySweep(bestSquareAgent(), bestTriangulateAgent(), Params);
    std::printf("---- %s ----\n%s\n",
                Index ? "gaze priority (alternative reading)"
                      : "request priority (default reading)",
                formatDensityTable(Sweeps[Index]).c_str());
  }

  // How far apart are the two readings?
  double MaxRatioDelta = 0.0, MaxRelativeTimeDelta = 0.0;
  bool ShapeHoldsInBoth = true;
  for (size_t I = 0; I != Sweeps[0].size(); ++I) {
    const DensityComparison &A = Sweeps[0][I];
    const DensityComparison &B = Sweeps[1][I];
    MaxRatioDelta = std::max(MaxRatioDelta, std::abs(A.ratio() - B.ratio()));
    for (auto [Ta, Tb] :
         {std::pair{A.Triangulate.MeanCommTime, B.Triangulate.MeanCommTime},
          std::pair{A.Square.MeanCommTime, B.Square.MeanCommTime}})
      if (Ta > 0)
        MaxRelativeTimeDelta =
            std::max(MaxRelativeTimeDelta, std::abs(Ta - Tb) / Ta);
    ShapeHoldsInBoth &= (A.ratio() < 0.85) && (B.ratio() < 0.85);
  }
  std::printf("max |ratio difference| across densities: %s\n",
              formatFixed(MaxRatioDelta, 3).c_str());
  std::printf("max relative mean-time difference: %s%%\n",
              formatFixed(100.0 * MaxRelativeTimeDelta, 1).c_str());
  std::printf("T faster than S under BOTH readings at every density: %s\n",
              ShapeHoldsInBoth ? "yes" : "NO");
  return ShapeHoldsInBoth ? 0 : 1;
}
