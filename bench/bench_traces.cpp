//===- bench/bench_traces.cpp - E3/E4: Fig. 6 and Fig. 7 ------------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Regenerates the Fig. 6 / Fig. 7 trace panels: two agents on a 16x16
// field — one facing north in the upper left, one facing west on the
// right — driven by the published best FSMs. Prints the agent, colour and
// visited layers at t = 0, an intermediate time, and the final time, then
// reports t_comm for both grids plus street/honeycomb statistics.
//
// Paper values on the authors' configuration: S 114 steps, T 44 steps
// (panels at t = 0/56/114 and t = 0/13/44). The exact placement of the
// figures is not recoverable from the paper's text, so this harness uses
// a fixed analogous configuration (deterministic result: S 123, T 35);
// the claim under reproduction is the large S/T gap and the street (S) /
// honeycomb (T) colour structures. --out <file> additionally writes the
// panels to a file (data/fig6_fig7_panels.txt ships a pre-generated copy).
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "sim/Render.h"
#include "sim/Trace.h"
#include "support/CommandLine.h"
#include "support/File.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

namespace {

/// Renders a Snapshot's three panels.
std::string renderSnapshotPanels(const Torus &T, const Snapshot &S) {
  int M = T.sideLength();
  std::string Out = formatString("t = %d\nagents:\n", S.Time);
  for (int Y = M - 1; Y >= 0; --Y) {
    for (int X = 0; X != M; ++X) {
      int Cell = T.indexOf(Coord{X, Y});
      int Found = -1;
      for (size_t Id = 0; Id != S.Agents.size(); ++Id)
        if (S.Agents[Id].Cell == Cell)
          Found = static_cast<int>(Id);
      if (X)
        Out += ' ';
      if (Found < 0)
        Out += " .";
      else
        Out += formatString(
            "%c%d",
            directionGlyph(T.kind(),
                           S.Agents[static_cast<size_t>(Found)].Direction),
            Found % 10);
    }
    Out += '\n';
  }
  Out += "colors:\n";
  for (int Y = M - 1; Y >= 0; --Y) {
    for (int X = 0; X != M; ++X) {
      uint8_t Value = S.Colors[static_cast<size_t>(T.indexOf(Coord{X, Y}))];
      Out += formatString("%s%c", X ? " " : "",
                          Value ? static_cast<char>('0' + Value) : '.');
    }
    Out += '\n';
  }
  Out += "visited:\n";
  for (int Y = M - 1; Y >= 0; --Y) {
    for (int X = 0; X != M; ++X) {
      int Count = S.VisitCounts[static_cast<size_t>(T.indexOf(Coord{X, Y}))];
      char C = Count == 0 ? '.'
                          : (Count <= 9 ? static_cast<char>('0' + Count)
                                        : '*');
      Out += formatString("%s%c", X ? " " : "", C);
    }
    Out += '\n';
  }
  Out += '\n';
  return Out;
}

/// Runs one grid's trace; returns t_comm (or -1) and appends the report
/// to \p Report.
int traceGrid(GridKind Kind, std::string &Report) {
  Torus T(Kind, 16);
  World W(T);
  bool Square = Kind == GridKind::Square;
  std::vector<Placement> P = {
      {Coord{2, 11}, static_cast<uint8_t>(Square ? 1 : 2)}, // North.
      {Coord{10, 9}, static_cast<uint8_t>(Square ? 2 : 3)}, // West.
  };
  SimOptions O;
  O.MaxSteps = 3000;

  // First pass to learn t_comm, then re-run capturing 0, t/2, t.
  World Probe(T);
  Probe.reset(bestAgent(Kind), P, O);
  SimResult ProbeResult = Probe.run();
  if (!ProbeResult.Success) {
    Report += formatString("%s-grid: configuration not solved within %d "
                           "steps\n",
                           gridKindName(Kind), O.MaxSteps);
    return -1;
  }
  W.reset(bestAgent(Kind), P, O);
  TracedRun Run = runWithSnapshots(W, {0, ProbeResult.TComm / 2});

  Report += formatString("---- %s-grid, 2 agents, best published FSM ----\n",
                         gridKindName(Kind));
  for (const Snapshot &S : Run.Snapshots)
    Report += renderSnapshotPanels(T, S);

  // The "streets" statistic: how much of its trajectory an agent spends on
  // already-visited cells.
  World W2(T);
  W2.reset(bestAgent(Kind), P, O);
  SimResult R2;
  auto Trajectories = recordTrajectories(W2, R2);
  double Revisit = averageRevisitFraction(Trajectories, T.numCells());
  Report += formatString("%s-grid: t_comm = %d, revisit fraction = %s\n\n",
                         gridKindName(Kind), Run.Result.TComm,
                         formatFixed(Revisit, 3).c_str());
  return Run.Result.TComm;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath;
  CommandLine CL("bench_traces", "Reproduces the Fig. 6/7 trace panels");
  CL.addString("out", "also write the panels to this file", &OutPath);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }

  std::string Report;
  Report += "== E3/E4: Fig. 6 / Fig. 7 trace panels ==\n";
  Report += "(paper, authors' configuration: S-grid 114 steps, T-grid 44; "
            "agents build streets in S, honeycombs in T)\n\n";
  int TimeS = traceGrid(GridKind::Square, Report);
  int TimeT = traceGrid(GridKind::Triangulate, Report);
  if (TimeS < 0 || TimeT < 0) {
    std::fputs(Report.c_str(), stdout);
    return 1;
  }
  Report += formatString("summary: S-grid %d steps, T-grid %d steps, "
                         "T/S = %s (paper: 114 / 44 = 0.386)\n",
                         TimeS, TimeT,
                         formatFixed(static_cast<double>(TimeT) / TimeS, 3)
                             .c_str());
  std::fputs(Report.c_str(), stdout);
  if (!OutPath.empty()) {
    if (auto Written = writeFile(OutPath, Report); !Written) {
      std::fprintf(stderr, "error: %s\n", Written.error().message().c_str());
      return 1;
    }
    std::printf("panels written to %s\n", OutPath.c_str());
  }
  return TimeT < TimeS ? 0 : 1;
}
