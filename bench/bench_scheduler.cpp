//===- bench/bench_scheduler.cpp - P3: GA evaluation-scheduler speedup ----===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Measures what the generation-wide evaluation scheduler buys the genetic
// procedure on the paper's 16x16 / k=16 workload. Three variants run the
// SAME evolution (same seed, same fields, batch engine):
//
//   baseline          scheduler off — the per-genome evaluation loop the
//                     GA used before the scheduler existed
//   scheduler_exact   scheduler on, pruning disabled (--exact-fitness):
//                     isolates memoization + offspring dedup + batching
//   scheduler_pruned  scheduler on, bound-based early abort enabled —
//                     the default configuration
//
// The harness verifies all three select the same best genome in every
// generation (pruning is exact by construction; a divergence here is a
// bug) before trusting any timing, then writes BENCH_scheduler.json so
// the GA throughput trajectory is tracked across commits.
//
// Exit status: 0 when the trajectories agree, 1 otherwise. Speed itself
// is not gated (machine-dependent); the JSON carries the speedups.
//
//===----------------------------------------------------------------------===//

#include "ga/Evolution.h"
#include "support/CommandLine.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ca2a;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

struct VariantResult {
  std::string Name;
  double Seconds = 0.0;
  int Generations = 0;
  int Evaluations = 0;
  double FinalBest = 0.0;
  std::vector<uint64_t> BestHashPerGen;
  SchedulerStats Stats; // All-zero for the baseline variant.

  double gensPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Generations) / Seconds : 0.0;
  }
};

VariantResult runVariant(std::string Name, const Torus &T,
                         const std::vector<InitialConfiguration> &Fields,
                         EvolutionParams Params, int Generations) {
  VariantResult R;
  R.Name = std::move(Name);
  R.Generations = Generations;
  auto Start = std::chrono::steady_clock::now();
  Evolution E(T, Fields, Params);
  for (int G = 0; G != Generations; ++G) {
    E.stepGeneration();
    R.BestHashPerGen.push_back(E.bestEver().G.hashValue());
  }
  R.Seconds = secondsSince(Start);
  R.Evaluations = E.evaluations();
  R.FinalBest = E.bestEver().Fitness;
  R.Stats = E.schedulerStats();
  return R;
}

void printJsonVariant(std::FILE *Out, const VariantResult &V) {
  std::fprintf(Out,
               "  \"%s\": {\"seconds\": %.6f, \"generations\": %d, "
               "\"gens_per_sec\": %.3f, \"evaluations\": %d, "
               "\"final_best\": %.6f, \"cache_hit_rate\": %.4f, "
               "\"fields_pruned_rate\": %.4f, \"batches\": %llu, "
               "\"batch_occupancy\": %.1f, "
               "\"engine_compile_hit_rate\": %.4f, "
               "\"engine_steady_allocations\": %llu}",
               V.Name.c_str(), V.Seconds, V.Generations, V.gensPerSec(),
               V.Evaluations, V.FinalBest, V.Stats.hitRate(),
               V.Stats.pruneRate(),
               static_cast<unsigned long long>(V.Stats.Batches),
               V.Stats.batchOccupancy(), V.Stats.engineCompileHitRate(),
               static_cast<unsigned long long>(
                   V.Stats.EngineSteadyAllocations));
}

} // namespace

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t NumAgents = 16;
  int64_t NumFields = 33;
  int64_t Generations = 30;
  int64_t MaxSteps = 200;
  int64_t Seed = 7;
  bool Quick = false;
  std::string JsonPath = "BENCH_scheduler.json";
  CommandLine CL("bench_scheduler",
                 "P3: GA throughput with the generation-wide evaluation "
                 "scheduler vs the per-genome loop");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("agents", "agents per training field", &NumAgents);
  CL.addInt("fields", "training fields incl. 3 manual", &NumFields);
  CL.addInt("generations", "generations per variant", &Generations);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "evolution + field seed", &Seed);
  CL.addBool("quick", "CI-sized run (few fields, few generations)", &Quick);
  CL.addString("json", "machine-readable output file", &JsonPath);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }
  if (Quick) {
    NumFields = 13;
    Generations = 6;
  }
  if (NumFields < 3 || Generations <= 0 || MaxSteps <= 0 || NumAgents <= 0) {
    std::fprintf(stderr, "error: need fields >= 3, generations > 0, "
                 "max-steps > 0, agents > 0\n");
    return 1;
  }

  Torus T(Kind, 16);
  auto Fields = standardConfigurationSet(T, static_cast<int>(NumAgents),
                                         static_cast<int>(NumFields) - 3,
                                         static_cast<uint64_t>(Seed));
  EvolutionParams Base;
  Base.Seed = static_cast<uint64_t>(Seed);
  Base.Fitness.Sim.MaxSteps = static_cast<int>(MaxSteps);
  Base.Fitness.Engine = EngineKind::Batch;

  std::printf("== P3: GA evaluation scheduler — %s-grid 16x16, k=%lld, "
              "%zu fields, %lld generations, cutoff %lld ==\n\n",
              gridKindName(Kind), static_cast<long long>(NumAgents),
              Fields.size(), static_cast<long long>(Generations),
              static_cast<long long>(MaxSteps));

  EvolutionParams Legacy = Base;
  Legacy.Scheduler.Enabled = false;
  EvolutionParams Exact = Base;
  Exact.Scheduler.ExactFitness = true;
  int Gens = static_cast<int>(Generations);
  VariantResult Baseline = runVariant("baseline", T, Fields, Legacy, Gens);
  VariantResult SchedExact =
      runVariant("scheduler_exact", T, Fields, Exact, Gens);
  VariantResult SchedPruned =
      runVariant("scheduler_pruned", T, Fields, Base, Gens);

  // Exactness gate: all three variants must track the same champion in
  // every generation — otherwise the timing compares different searches.
  size_t Divergences = 0;
  for (int G = 0; G != Gens; ++G) {
    bool Same =
        Baseline.BestHashPerGen[static_cast<size_t>(G)] ==
            SchedExact.BestHashPerGen[static_cast<size_t>(G)] &&
        Baseline.BestHashPerGen[static_cast<size_t>(G)] ==
            SchedPruned.BestHashPerGen[static_cast<size_t>(G)];
    if (!Same && ++Divergences <= 5)
      std::fprintf(stderr, "DIVERGENCE gen %d: best-genome hashes differ "
                   "across variants\n", G + 1);
  }
  bool SameEvals = Baseline.Evaluations == SchedExact.Evaluations &&
                   Baseline.Evaluations == SchedPruned.Evaluations;
  if (!SameEvals)
    std::fprintf(stderr, "DIVERGENCE: requested-evaluation counters differ "
                 "(%d / %d / %d)\n", Baseline.Evaluations,
                 SchedExact.Evaluations, SchedPruned.Evaluations);

  double SpeedupExact = SchedExact.Seconds > 0.0
                            ? Baseline.Seconds / SchedExact.Seconds
                            : 0.0;
  double SpeedupPruned = SchedPruned.Seconds > 0.0
                             ? Baseline.Seconds / SchedPruned.Seconds
                             : 0.0;

  auto PrintRow = [](const VariantResult &V, double Speedup) {
    std::printf("%-16s %7.3fs  %6.2f gens/s  %5d evals", V.Name.c_str(),
                V.Seconds, V.gensPerSec(), V.Evaluations);
    if (Speedup > 0.0)
      std::printf("  %.2fx", Speedup);
    std::printf("\n");
  };
  PrintRow(Baseline, 0.0);
  PrintRow(SchedExact, SpeedupExact);
  PrintRow(SchedPruned, SpeedupPruned);
  std::printf("pruned variant: %.1f%% cache hits, %.1f%% fields pruned, "
              "%llu batches (occupancy %.1f)\n",
              100.0 * SchedPruned.Stats.hitRate(),
              100.0 * SchedPruned.Stats.pruneRate(),
              static_cast<unsigned long long>(SchedPruned.Stats.Batches),
              SchedPruned.Stats.batchOccupancy());
  std::printf("engine hot path: %.2f%% compile-cache hits, "
              "%llu arena allocations (%llu steady-state)\n",
              100.0 * SchedPruned.Stats.engineCompileHitRate(),
              static_cast<unsigned long long>(
                  SchedPruned.Stats.EngineAllocations),
              static_cast<unsigned long long>(
                  SchedPruned.Stats.EngineSteadyAllocations));
  std::printf("identical champions per generation: %s\n",
              Divergences == 0 && SameEvals ? "yes" : "NO");

  if (std::FILE *Out = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(Out, "{\n");
    std::fprintf(Out,
                 "  \"bench\": \"bench_scheduler\",\n  \"grid\": \"%s\",\n"
                 "  \"agents\": %lld,\n  \"fields\": %zu,\n"
                 "  \"generations\": %lld,\n  \"max_steps\": %lld,\n"
                 "  \"seed\": %lld,\n",
                 gridKindName(Kind), static_cast<long long>(NumAgents),
                 Fields.size(), static_cast<long long>(Generations),
                 static_cast<long long>(MaxSteps),
                 static_cast<long long>(Seed));
    printJsonVariant(Out, Baseline);
    std::fprintf(Out, ",\n");
    printJsonVariant(Out, SchedExact);
    std::fprintf(Out, ",\n");
    printJsonVariant(Out, SchedPruned);
    std::fprintf(Out, ",\n");
    std::fprintf(Out, "  \"speedup_exact\": %.3f,\n", SpeedupExact);
    std::fprintf(Out, "  \"speedup_pruned\": %.3f,\n", SpeedupPruned);
    std::fprintf(Out, "  \"champions_identical\": %s\n",
                 Divergences == 0 && SameEvals ? "true" : "false");
    std::fprintf(Out, "}\n");
    std::fclose(Out);
    std::printf("json written to %s\n", JsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  return Divergences == 0 && SameEvals ? 0 : 1;
}
