//===- bench/bench_ablation.cpp - A1/A2: design-choice ablations ----------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Two ablations of devices the paper singles out:
//
//   A1 — colours. Prior work (Sect. 1: "colors speed up the task by a
//        factor of around 2") motivates the colour flag. We run the best
//        FSMs with colour writing disabled: agents keep moving but lose
//        their pheromone trails.
//
//   A2 — initial control states. Sect. 4: uniform state-0 (or state-3)
//        agents are not reliable; ID-parity starts are the paper's
//        symmetry-breaking device. We measure success rates under both.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "analysis/Experiment.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace ca2a;

namespace {

DensityMeasurement measureWith(GridKind Kind, int NumAgents, bool Colors,
                               StartStates Start, int MaxSteps) {
  Torus T(Kind, 16);
  FitnessParams P;
  P.Sim.MaxSteps = MaxSteps;
  P.Sim.ColorsEnabled = Colors;
  P.Sim.Start = Start;
  return measureDensity(bestAgent(Kind), T, NumAgents, 200, 20130101, P);
}

} // namespace

int main() {
  std::printf("== A1: colour ablation (best FSMs, colour writes disabled; "
              "203 fields per cell) ==\n");
  std::printf("(prior work reports colours speed A2A up by a factor of "
              "around 2)\n\n");
  {
    TextTable Table;
    Table.setHeader({"grid/k", "t with colors", "t w/o colors", "slowdown",
                     "solved with", "solved w/o"});
    for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
      for (int K : {8, 16}) {
        DensityMeasurement With =
            measureWith(Kind, K, true, StartStates::idParity(), 5000);
        DensityMeasurement Without =
            measureWith(Kind, K, false, StartStates::idParity(), 5000);
        double Slowdown = With.MeanCommTime > 0
                              ? Without.MeanCommTime / With.MeanCommTime
                              : 0.0;
        Table.addRow({formatString("%s/k=%d", gridKindName(Kind), K),
                      formatFixed(With.MeanCommTime, 2),
                      formatFixed(Without.MeanCommTime, 2),
                      formatFixed(Slowdown, 2),
                      formatString("%d/%d", With.SolvedFields, With.NumFields),
                      formatString("%d/%d", Without.SolvedFields,
                                   Without.NumFields)});
      }
    }
    std::printf("%s\n", Table.render().c_str());
    std::printf("(w/o-colour means are over solved fields only; unsolved "
                "fields additionally show up as reduced solve counts)\n\n");
  }

  std::printf("== A2: initial-control-state ablation (success within "
              "t_max = 200, incl. the 3 manual designs) ==\n\n");
  {
    TextTable Table;
    Table.setHeader({"grid/k", "solved parity", "solved uniform-0",
                     "t parity", "t uniform-0"});
    for (GridKind Kind : {GridKind::Square, GridKind::Triangulate}) {
      for (int K : {4, 8, 16}) {
        DensityMeasurement Parity =
            measureWith(Kind, K, true, StartStates::idParity(), 200);
        DensityMeasurement Uniform =
            measureWith(Kind, K, true, StartStates::uniform(0), 200);
        Table.addRow(
            {formatString("%s/k=%d", gridKindName(Kind), K),
             formatString("%d/%d", Parity.SolvedFields, Parity.NumFields),
             formatString("%d/%d", Uniform.SolvedFields, Uniform.NumFields),
             formatFixed(Parity.MeanCommTime, 2),
             formatFixed(Uniform.MeanCommTime, 2)});
      }
    }
    std::printf("%s\n", Table.render().c_str());
    std::printf("(the manual designs are translation-symmetric; uniform "
                "starts cannot break that symmetry — Sect. 4)\n");
  }
  return 0;
}
