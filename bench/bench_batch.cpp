//===- bench/bench_batch.cpp - P2: batched-engine throughput --------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Replica-throughput comparison of the reference World engine and the
// batched SoA engine on the paper's 16x16 field: many random initial
// configurations of the best published agent, each simulated to
// completion by both engines. The harness verifies the batch results are
// bit-identical to the reference before trusting any timing, then writes
// the numbers to a machine-readable JSON file (BENCH_engine.json) so the
// perf trajectory of the engine is tracked across commits.
//
// Measurement discipline: every timed row gets one untimed warm-up pass,
// then --reps timed repetitions visited in round-robin order across ALL
// rows, reporting the minimum. A straight "each row back to back" loop
// hands the first row cold caches and the last row a thermally throttled
// clock — the committed baseline once showed the same backend 30% apart
// depending on nothing but row order. Interleaving spreads drift evenly;
// min-of-N reports the run the machine did not interfere with.
//
// Two workloads are measured: DISTINCT random fields (the GA shape — no
// clone structure, rmaj64 runs at occupancy 1) and a 64-aligned CLONE
// batch plus its per-replica-fault-seed variant (the replica-averaging
// shape rmaj64's slab sharing exists for; see sim/simd/ReplicaSlab.h).
//
// Exit status: 0 when every batch result matches the reference exactly,
// 1 otherwise. Speed itself is not gated here (machine-dependent); the
// JSON carries the measured speedup.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"
#include "support/CommandLine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace ca2a;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Iterations a finished run executed: the solving iteration counts, an
/// unsolved (fault-free) run hits the cutoff.
int64_t stepsOf(const SimResult &R, int MaxSteps) {
  return R.Success ? static_cast<int64_t>(R.TComm) + 1
                   : static_cast<int64_t>(MaxSteps);
}

struct Measurement {
  double Seconds = 0.0;
  int64_t Steps = 0;
  size_t Replicas = 0;
  /// Engine instrumentation (meaningful for the batch rows only).
  BatchRunStats Stats;

  double replicasPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Replicas) / Seconds : 0.0;
  }
  double stepsPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Steps) / Seconds : 0.0;
  }
  double allocationsPerReplica() const {
    return Stats.ReplicasSimulated
               ? static_cast<double>(Stats.Allocations) /
                     static_cast<double>(Stats.ReplicasSimulated)
               : 0.0;
  }
};

/// One timed batch configuration: which replicas, how many workers, which
/// lane kernel. Rows are measured interleaved (see RunRows in main), so a
/// row owns its best-of measurement and its warm-up results.
struct TimedRow {
  std::string Key;                            ///< JSON key / print label.
  const std::vector<BatchReplica> *Replicas = nullptr;
  size_t Workers = 1;
  SimdBackend Kernel = SimdBackend::Auto;
  std::vector<SimResult> Out;                 ///< Warm-up pass results.
  Measurement M;                              ///< Min over timed reps.
};

/// \p Workers is the count the engine actually used (BatchRunStats), not
/// the requested knob — the committed JSON must describe the run that
/// happened.
void printJsonMeasurement(std::FILE *Out, const char *Key,
                          const Measurement &M, size_t Workers) {
  std::fprintf(Out,
               "  \"%s\": {\"workers\": %zu, \"seconds\": %.6f, "
               "\"replicas_per_sec\": %.1f, \"steps_per_sec\": %.1f}",
               Key, Workers, M.Seconds, M.replicasPerSec(), M.stepsPerSec());
}

/// The hot-path row: throughput plus the allocation/compile-cache/load
/// instrumentation the zero-allocation contract is judged by, and the
/// slab occupancy/retirement accounting the rmaj64 rows are judged by
/// (zero on every other backend).
void printJsonHotpath(std::FILE *Out, const char *Key, const Measurement &M) {
  std::fprintf(
      Out,
      "  \"%s\": {\"workers\": %zu, \"backend\": \"%s\", "
      "\"seconds\": %.6f, "
      "\"replicas_per_sec\": %.1f, \"steps_per_sec\": %.1f, "
      "\"replicas_simulated\": %llu, \"allocations\": %llu, "
      "\"allocations_per_replica\": %.4f, \"steady_allocations\": %llu, "
      "\"compile_hits\": %llu, \"compile_misses\": %llu, "
      "\"compile_hit_rate\": %.6f, \"worker_utilization\": %.4f, "
      "\"slabs_formed\": %llu, \"slab_lanes\": %llu, "
      "\"slab_occupancy\": %.2f, \"lanes_retired_early\": %llu, "
      "\"lanes_converged\": %llu}",
      Key, M.Stats.WorkersUsed, simdBackendName(M.Stats.BackendUsed),
      M.Seconds, M.replicasPerSec(), M.stepsPerSec(),
      static_cast<unsigned long long>(M.Stats.ReplicasSimulated),
      static_cast<unsigned long long>(M.Stats.Allocations),
      M.allocationsPerReplica(),
      static_cast<unsigned long long>(M.Stats.SteadyAllocations),
      static_cast<unsigned long long>(M.Stats.CompileHits),
      static_cast<unsigned long long>(M.Stats.CompileMisses),
      M.Stats.compileHitRate(), M.Stats.workerUtilization(),
      static_cast<unsigned long long>(M.Stats.SlabsFormed),
      static_cast<unsigned long long>(M.Stats.SlabLanesEnrolled),
      M.Stats.slabOccupancy(),
      static_cast<unsigned long long>(M.Stats.LanesRetiredEarly),
      static_cast<unsigned long long>(M.Stats.LanesConverged));
}

void printRow(const char *Label, const Measurement &M, double RefSeconds) {
  std::printf("%-24s %9.1f replicas/s  %11.0f steps/s  (%.3fs)  %.2fx\n",
              Label, M.replicasPerSec(), M.stepsPerSec(), M.Seconds,
              RefSeconds > 0.0 && M.Seconds > 0.0 ? RefSeconds / M.Seconds
                                                  : 0.0);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t Side = 16;
  int64_t NumAgents = 16;
  int64_t NumReplicas = 2000;
  int64_t MaxSteps = 200;
  int64_t Seed = 20130101;
  int64_t Workers = 0; // 0: hardware concurrency.
  int64_t Reps = 3;
  bool Quick = false;
  std::string BackendName = "auto";
  std::string JsonPath = "BENCH_engine.json";
  std::string HotpathJsonPath = "BENCH_hotpath.json";
  CommandLine CL("bench_batch",
                 "P2: replica throughput, batch engine vs reference World");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("side", "field side length", &Side);
  CL.addInt("agents", "agents per replica", &NumAgents);
  CL.addInt("replicas", "random initial configurations", &NumReplicas);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field-generation seed", &Seed);
  CL.addInt("workers", "batch worker threads (0: hardware)", &Workers, 0,
            4096);
  CL.addInt("reps", "timed repetitions per row (interleaved, min-of-N)",
            &Reps);
  CL.addBool("quick", "small CI smoke run (600 replicas, 1 rep)", &Quick);
  CL.addString("backend", "SIMD backend for the headline batch rows: auto | "
               "scalar | sliced64 | avx2 | rmaj64 (every available backend "
               "is also measured separately)", &BackendName);
  CL.addString("json", "machine-readable output file", &JsonPath);
  CL.addString("hotpath-json", "hot-path instrumentation output file",
               &HotpathJsonPath);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }
  SimdBackend Backend = SimdBackend::Auto;
  if (!parseSimdBackend(BackendName, Backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (auto | scalar | "
                 "sliced64 | avx2 | rmaj64)\n", BackendName.c_str());
    return 1;
  }
  if (Side < 2 || Side > 1024 || NumReplicas <= 0 || MaxSteps < 0 ||
      NumAgents <= 0 || NumAgents > Side * Side || Reps < 1) {
    std::fprintf(stderr,
                 "error: need side in [2, 1024], replicas > 0, "
                 "max-steps >= 0, reps >= 1 and 0 < agents <= side^2\n");
    return 1;
  }
  unsigned HardwareConcurrency = std::thread::hardware_concurrency();
  if (Workers <= 0)
    Workers = HardwareConcurrency ? static_cast<int64_t>(HardwareConcurrency)
                                  : 1;
  if (Quick) {
    NumReplicas = std::min<int64_t>(NumReplicas, 600);
    Reps = 1;
  }

  Torus T(Kind, static_cast<int>(Side));
  Genome G = bestAgent(Kind);
  SimOptions O;
  O.MaxSteps = static_cast<int>(MaxSteps);

  // Independent random fields, one per replica.
  Rng FieldRng(static_cast<uint64_t>(Seed));
  std::vector<std::vector<Placement>> Fields(
      static_cast<size_t>(NumReplicas));
  for (auto &F : Fields)
    F = randomConfiguration(T, static_cast<int>(NumAgents), FieldRng)
            .Placements;

  std::printf("== P2: batch engine throughput — %s-grid %lldx%lld, k=%lld, "
              "%lld replicas, cutoff %lld, min of %lld interleaved reps ==\n",
              gridKindName(Kind), static_cast<long long>(Side),
              static_cast<long long>(Side),
              static_cast<long long>(NumAgents),
              static_cast<long long>(NumReplicas),
              static_cast<long long>(MaxSteps),
              static_cast<long long>(Reps));
  std::printf("backends: %s; headline rows use '%s' (resolved: %s)\n\n",
              simdBackendSummary().c_str(), BackendName.c_str(),
              simdBackendName(resolveSimdBackend(Backend)));

  // Reference engine: one World, sequential reset+run per replica (the
  // pattern every current caller uses). Warm-up pass, then min-of-N like
  // every batch row.
  std::vector<SimResult> Reference(Fields.size());
  Measurement RefM;
  {
    World W(T);
    auto MeasureRef = [&]() {
      auto Start = std::chrono::steady_clock::now();
      for (size_t I = 0; I != Fields.size(); ++I) {
        W.reset(G, Fields[I], O);
        Reference[I] = W.run();
      }
      return secondsSince(Start);
    };
    MeasureRef(); // Warm-up (results identical; reference is deterministic).
    RefM.Seconds = MeasureRef();
    for (int64_t R = 1; R < Reps; ++R)
      RefM.Seconds = std::min(RefM.Seconds, MeasureRef());
  }
  RefM.Replicas = Fields.size();
  for (const SimResult &R : Reference)
    RefM.Steps += stepsOf(R, O.MaxSteps);

  BatchEngine Engine(T);
  auto MeasureOnce = [&](const std::vector<BatchReplica> &Reps_,
                         size_t NumWorkers, SimdBackend Kernel,
                         std::vector<SimResult> &Out) {
    Measurement M;
    BatchRunOptions RunOptions;
    RunOptions.NumWorkers = NumWorkers;
    RunOptions.Backend = Kernel;
    RunOptions.Stats = &M.Stats;
    auto Start = std::chrono::steady_clock::now();
    Out = Engine.run(Reps_, RunOptions);
    M.Seconds = secondsSince(Start);
    M.Replicas = Out.size();
    for (const SimResult &R : Out)
      M.Steps += stepsOf(R, O.MaxSteps);
    return M;
  };
  // Warm-up pass in row order (fills each row's Out and a first
  // measurement), then Reps timed passes visited round-robin ACROSS rows,
  // keeping the per-row minimum. Every run of a row is bit-identical, so
  // only the clock differs between repetitions.
  auto RunRows = [&](std::vector<TimedRow> &Rows) {
    for (TimedRow &Row : Rows)
      Row.M = MeasureOnce(*Row.Replicas, Row.Workers, Row.Kernel, Row.Out);
    std::vector<SimResult> Scratch;
    for (int64_t R = 0; R != Reps; ++R)
      for (TimedRow &Row : Rows) {
        Measurement M =
            MeasureOnce(*Row.Replicas, Row.Workers, Row.Kernel, Scratch);
        if (M.Seconds < Row.M.Seconds)
          Row.M = M;
      }
  };

  // --- Workload 1: distinct random fields (no clone structure). ---
  std::vector<BatchReplica> Replicas(Fields.size());
  for (size_t I = 0; I != Fields.size(); ++I) {
    Replicas[I].A = &G;
    Replicas[I].Placements = &Fields[I];
    Replicas[I].Options = &O;
  }
  const std::vector<SimdBackend> PerBackend = availableSimdBackends();
  std::vector<TimedRow> Rows;
  Rows.push_back({"batch_serial", &Replicas, 1, Backend, {}, {}});
  Rows.push_back({"batch_parallel", &Replicas, static_cast<size_t>(Workers),
                  Backend, {}, {}});
  for (SimdBackend B : PerBackend)
    Rows.push_back({std::string("batch_serial_") + simdBackendName(B),
                    &Replicas, 1, B, {}, {}});
  RunRows(Rows);
  TimedRow &Batch1 = Rows[0];
  TimedRow &BatchN = Rows[1];

  // --- Workload 2: a 64-aligned clone batch (one field, N copies) and
  // its faulty variant (same field, per-replica fault seeds). This is the
  // replica-averaging shape: scalar/sliced64/avx2 simulate every copy,
  // rmaj64 shares one master per slab of 64 (faulty lanes ride it until
  // their private stream fires). ---
  const int64_t CloneN = std::max<int64_t>(64, (NumReplicas / 64) * 64);
  std::vector<BatchReplica> Clones(static_cast<size_t>(CloneN));
  for (auto &Rep : Clones) {
    Rep.A = &G;
    Rep.Placements = &Fields[0];
    Rep.Options = &O;
  }
  std::vector<SimOptions> FaultyOpts(static_cast<size_t>(CloneN), O);
  for (size_t I = 0; I != FaultyOpts.size(); ++I) {
    FaultyOpts[I].Faults.StallProbability = 0.001;
    FaultyOpts[I].Faults.LinkDropProbability = 0.0005;
    FaultyOpts[I].Faults.Seed =
        static_cast<uint64_t>(Seed) * 2654435761u + I;
  }
  std::vector<BatchReplica> FaultyClones(static_cast<size_t>(CloneN));
  for (size_t I = 0; I != FaultyClones.size(); ++I) {
    FaultyClones[I].A = &G;
    FaultyClones[I].Placements = &Fields[0];
    FaultyClones[I].Options = &FaultyOpts[I];
  }
  std::vector<TimedRow> CloneRows, FaultyRows;
  for (SimdBackend B : PerBackend) {
    CloneRows.push_back({std::string("clone_serial_") + simdBackendName(B),
                         &Clones, 1, B, {}, {}});
    FaultyRows.push_back(
        {std::string("clonefault_serial_") + simdBackendName(B),
         &FaultyClones, 1, B, {}, {}});
  }
  RunRows(CloneRows);
  RunRows(FaultyRows);

  // Clone references: the clone batch has ONE distinct trajectory; the
  // faulty batch has one per fault seed.
  std::vector<SimResult> CloneRef(Clones.size());
  std::vector<SimResult> FaultyRef(FaultyClones.size());
  {
    World W(T);
    W.reset(G, Fields[0], O);
    SimResult One = W.run();
    for (SimResult &R : CloneRef)
      R = One;
    for (size_t I = 0; I != FaultyClones.size(); ++I) {
      W.reset(G, Fields[0], FaultyOpts[I]);
      FaultyRef[I] = W.run();
    }
  }

  // Bit-identity gate: timing of a wrong engine is worthless.
  size_t Mismatches = 0;
  auto CheckAgainst = [&](const std::vector<SimResult> &Ref,
                          const std::vector<SimResult> &Out,
                          const std::string &Label) {
    for (size_t I = 0; I != Ref.size(); ++I) {
      if (Out[I] != Ref[I]) {
        if (++Mismatches <= 5)
          std::fprintf(stderr,
                       "MISMATCH replica %zu (%s): reference {success %d, "
                       "t %d, informed %d} batch {%d, %d, %d}\n",
                       I, Label.c_str(), Ref[I].Success, Ref[I].TComm,
                       Ref[I].InformedAgents, Out[I].Success, Out[I].TComm,
                       Out[I].InformedAgents);
      }
    }
  };
  for (TimedRow &Row : Rows)
    CheckAgainst(Reference, Row.Out, Row.Key);
  for (TimedRow &Row : CloneRows)
    CheckAgainst(CloneRef, Row.Out, Row.Key);
  for (TimedRow &Row : FaultyRows)
    CheckAgainst(FaultyRef, Row.Out, Row.Key);

  double Speedup1 = RefM.Seconds > 0.0 && Batch1.M.Seconds > 0.0
                        ? RefM.Seconds / Batch1.M.Seconds
                        : 0.0;
  double SpeedupN = RefM.Seconds > 0.0 && BatchN.M.Seconds > 0.0
                        ? RefM.Seconds / BatchN.M.Seconds
                        : 0.0;

  std::printf("-- distinct fields --\n");
  printRow("reference", RefM, RefM.Seconds);
  for (TimedRow &Row : Rows)
    printRow(Row.Key.c_str(), Row.M, RefM.Seconds);
  std::printf("-- clone batch (%lld copies of one field) --\n",
              static_cast<long long>(CloneN));
  for (TimedRow &Row : CloneRows)
    printRow(Row.Key.c_str(), Row.M, 0.0);
  std::printf("-- faulty clone batch (per-replica fault seeds) --\n");
  for (TimedRow &Row : FaultyRows) {
    printRow(Row.Key.c_str(), Row.M, 0.0);
    if (Row.M.Stats.SlabsFormed)
      std::printf("    slabs %llu, occupancy %.1f, retired early %llu, "
                  "converged %llu\n",
                  static_cast<unsigned long long>(Row.M.Stats.SlabsFormed),
                  Row.M.Stats.slabOccupancy(),
                  static_cast<unsigned long long>(
                      Row.M.Stats.LanesRetiredEarly),
                  static_cast<unsigned long long>(
                      Row.M.Stats.LanesConverged));
  }
  std::printf("bit-identical to reference: %s\n",
              Mismatches == 0 ? "yes" : "NO");
  std::printf("hot path: %.4f allocs/replica (%llu steady), compile hit "
              "rate %.2f%%, worker utilization %.1f%%\n",
              Batch1.M.allocationsPerReplica(),
              static_cast<unsigned long long>(
                  Batch1.M.Stats.SteadyAllocations +
                  BatchN.M.Stats.SteadyAllocations),
              100.0 * Batch1.M.Stats.compileHitRate(),
              100.0 * BatchN.M.Stats.workerUtilization());

  if (std::FILE *Out = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(Out, "{\n");
    std::fprintf(Out,
                 "  \"bench\": \"bench_batch\",\n  \"grid\": \"%s\",\n"
                 "  \"side\": %lld,\n  \"agents\": %lld,\n"
                 "  \"replicas\": %lld,\n  \"max_steps\": %lld,\n"
                 "  \"seed\": %lld,\n  \"reps\": %lld,\n",
                 gridKindName(Kind), static_cast<long long>(Side),
                 static_cast<long long>(NumAgents),
                 static_cast<long long>(NumReplicas),
                 static_cast<long long>(MaxSteps),
                 static_cast<long long>(Seed),
                 static_cast<long long>(Reps));
    std::fprintf(Out, "  \"hardware_concurrency\": %u,\n",
                 HardwareConcurrency);
    std::fprintf(Out, "  \"backend\": \"%s\",\n  \"backend_used\": \"%s\",\n",
                 BackendName.c_str(),
                 simdBackendName(Batch1.M.Stats.BackendUsed));
    printJsonMeasurement(Out, "reference", RefM, 1);
    std::fprintf(Out, ",\n");
    printJsonMeasurement(Out, "batch_serial", Batch1.M,
                         Batch1.M.Stats.WorkersUsed);
    std::fprintf(Out, ",\n");
    printJsonMeasurement(Out, "batch_parallel", BatchN.M,
                         BatchN.M.Stats.WorkersUsed);
    std::fprintf(Out, ",\n");
    for (size_t B = 2; B != Rows.size(); ++B) {
      printJsonMeasurement(Out, Rows[B].Key.c_str(), Rows[B].M, 1);
      std::fprintf(Out, ",\n");
    }
    for (TimedRow &Row : CloneRows) {
      printJsonMeasurement(Out, Row.Key.c_str(), Row.M, 1);
      std::fprintf(Out, ",\n");
    }
    for (TimedRow &Row : FaultyRows) {
      printJsonMeasurement(Out, Row.Key.c_str(), Row.M, 1);
      std::fprintf(Out, ",\n");
    }
    std::fprintf(Out, "  \"requested_workers\": %lld,\n",
                 static_cast<long long>(Workers));
    std::fprintf(Out, "  \"speedup_serial\": %.3f,\n", Speedup1);
    std::fprintf(Out, "  \"speedup_parallel\": %.3f,\n", SpeedupN);
    std::fprintf(Out, "  \"bit_identical\": %s\n",
                 Mismatches == 0 ? "true" : "false");
    std::fprintf(Out, "}\n");
    std::fclose(Out);
    std::printf("json written to %s\n", JsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }

  if (std::FILE *Out = std::fopen(HotpathJsonPath.c_str(), "w")) {
    std::fprintf(Out, "{\n");
    std::fprintf(Out,
                 "  \"bench\": \"bench_batch_hotpath\",\n"
                 "  \"grid\": \"%s\",\n  \"side\": %lld,\n"
                 "  \"agents\": %lld,\n  \"replicas\": %lld,\n"
                 "  \"max_steps\": %lld,\n  \"seed\": %lld,\n"
                 "  \"reps\": %lld,\n  \"clone_replicas\": %lld,\n",
                 gridKindName(Kind), static_cast<long long>(Side),
                 static_cast<long long>(NumAgents),
                 static_cast<long long>(NumReplicas),
                 static_cast<long long>(MaxSteps),
                 static_cast<long long>(Seed),
                 static_cast<long long>(Reps),
                 static_cast<long long>(CloneN));
    std::fprintf(Out, "  \"hardware_concurrency\": %u,\n",
                 HardwareConcurrency);
    std::fprintf(Out, "  \"backend\": \"%s\",\n  \"backend_used\": \"%s\",\n",
                 BackendName.c_str(),
                 simdBackendName(Batch1.M.Stats.BackendUsed));
    std::fprintf(Out, "  \"reference_replicas_per_sec\": %.1f,\n",
                 RefM.replicasPerSec());
    printJsonHotpath(Out, "batch_serial", Batch1.M);
    std::fprintf(Out, ",\n");
    printJsonHotpath(Out, "batch_parallel", BatchN.M);
    std::fprintf(Out, ",\n");
    for (size_t B = 2; B != Rows.size(); ++B) {
      printJsonHotpath(Out, Rows[B].Key.c_str(), Rows[B].M);
      std::fprintf(Out, ",\n");
    }
    for (TimedRow &Row : CloneRows) {
      printJsonHotpath(Out, Row.Key.c_str(), Row.M);
      std::fprintf(Out, ",\n");
    }
    for (TimedRow &Row : FaultyRows) {
      printJsonHotpath(Out, Row.Key.c_str(), Row.M);
      std::fprintf(Out, ",\n");
    }
    std::fprintf(Out, "  \"speedup_serial\": %.3f,\n", Speedup1);
    std::fprintf(Out, "  \"speedup_parallel\": %.3f,\n", SpeedupN);
    std::fprintf(Out, "  \"bit_identical\": %s\n",
                 Mismatches == 0 ? "true" : "false");
    std::fprintf(Out, "}\n");
    std::fclose(Out);
    std::printf("hotpath json written to %s\n", HotpathJsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", HotpathJsonPath.c_str());
    return 1;
  }
  return Mismatches == 0 ? 0 : 1;
}
