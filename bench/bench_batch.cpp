//===- bench/bench_batch.cpp - P2: batched-engine throughput --------------===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
// Replica-throughput comparison of the reference World engine and the
// batched SoA engine on the paper's 16x16 field: many random initial
// configurations of the best published agent, each simulated to
// completion by both engines. The harness verifies the batch results are
// bit-identical to the reference before trusting any timing, then writes
// the numbers to a machine-readable JSON file (BENCH_engine.json) so the
// perf trajectory of the engine is tracked across commits.
//
// Exit status: 0 when every batch result matches the reference exactly,
// 1 otherwise. Speed itself is not gated here (machine-dependent); the
// JSON carries the measured speedup.
//
//===----------------------------------------------------------------------===//

#include "agent/BestAgents.h"
#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"
#include "support/CommandLine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace ca2a;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Iterations a finished run executed: the solving iteration counts, an
/// unsolved (fault-free) run hits the cutoff.
int64_t stepsOf(const SimResult &R, int MaxSteps) {
  return R.Success ? static_cast<int64_t>(R.TComm) + 1
                   : static_cast<int64_t>(MaxSteps);
}

struct Measurement {
  double Seconds = 0.0;
  int64_t Steps = 0;
  size_t Replicas = 0;
  /// Engine instrumentation (meaningful for the batch rows only).
  BatchRunStats Stats;

  double replicasPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Replicas) / Seconds : 0.0;
  }
  double stepsPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Steps) / Seconds : 0.0;
  }
  double allocationsPerReplica() const {
    return Stats.ReplicasSimulated
               ? static_cast<double>(Stats.Allocations) /
                     static_cast<double>(Stats.ReplicasSimulated)
               : 0.0;
  }
};

/// \p Workers is the count the engine actually used (BatchRunStats), not
/// the requested knob — the committed JSON must describe the run that
/// happened.
void printJsonMeasurement(std::FILE *Out, const char *Key,
                          const Measurement &M, size_t Workers) {
  std::fprintf(Out,
               "  \"%s\": {\"workers\": %zu, \"seconds\": %.6f, "
               "\"replicas_per_sec\": %.1f, \"steps_per_sec\": %.1f}",
               Key, Workers, M.Seconds, M.replicasPerSec(), M.stepsPerSec());
}

/// The hot-path row: throughput plus the allocation/compile-cache/load
/// instrumentation the zero-allocation contract is judged by.
void printJsonHotpath(std::FILE *Out, const char *Key, const Measurement &M) {
  std::fprintf(
      Out,
      "  \"%s\": {\"workers\": %zu, \"backend\": \"%s\", "
      "\"seconds\": %.6f, "
      "\"replicas_per_sec\": %.1f, \"steps_per_sec\": %.1f, "
      "\"replicas_simulated\": %llu, \"allocations\": %llu, "
      "\"allocations_per_replica\": %.4f, \"steady_allocations\": %llu, "
      "\"compile_hits\": %llu, \"compile_misses\": %llu, "
      "\"compile_hit_rate\": %.6f, \"worker_utilization\": %.4f}",
      Key, M.Stats.WorkersUsed, simdBackendName(M.Stats.BackendUsed),
      M.Seconds, M.replicasPerSec(), M.stepsPerSec(),
      static_cast<unsigned long long>(M.Stats.ReplicasSimulated),
      static_cast<unsigned long long>(M.Stats.Allocations),
      M.allocationsPerReplica(),
      static_cast<unsigned long long>(M.Stats.SteadyAllocations),
      static_cast<unsigned long long>(M.Stats.CompileHits),
      static_cast<unsigned long long>(M.Stats.CompileMisses),
      M.Stats.compileHitRate(), M.Stats.workerUtilization());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string GridName = "T";
  int64_t Side = 16;
  int64_t NumAgents = 16;
  int64_t NumReplicas = 2000;
  int64_t MaxSteps = 200;
  int64_t Seed = 20130101;
  int64_t Workers = 0; // 0: hardware concurrency.
  bool Quick = false;
  std::string BackendName = "auto";
  std::string JsonPath = "BENCH_engine.json";
  std::string HotpathJsonPath = "BENCH_hotpath.json";
  CommandLine CL("bench_batch",
                 "P2: replica throughput, batch engine vs reference World");
  CL.addString("grid", "S or T", &GridName);
  CL.addInt("side", "field side length", &Side);
  CL.addInt("agents", "agents per replica", &NumAgents);
  CL.addInt("replicas", "random initial configurations", &NumReplicas);
  CL.addInt("max-steps", "simulation cutoff", &MaxSteps);
  CL.addInt("seed", "field-generation seed", &Seed);
  CL.addInt("workers", "batch worker threads (0: hardware)", &Workers);
  CL.addBool("quick", "small CI smoke run (600 replicas)", &Quick);
  CL.addString("backend", "SIMD backend for the headline batch rows: auto | "
               "scalar | sliced64 | avx2 (every available backend is also "
               "measured separately)", &BackendName);
  CL.addString("json", "machine-readable output file", &JsonPath);
  CL.addString("hotpath-json", "hot-path instrumentation output file",
               &HotpathJsonPath);
  if (auto Err = CL.parse(Argc, Argv); !Err) {
    std::fprintf(stderr, "error: %s\n%s", Err.error().message().c_str(),
                 CL.usage().c_str());
    return 1;
  }
  if (CL.helpRequested()) {
    std::printf("%s", CL.usage().c_str());
    return 0;
  }
  GridKind Kind;
  if (!parseGridKind(GridName, Kind)) {
    std::fprintf(stderr, "error: unknown grid '%s' (use S or T)\n",
                 GridName.c_str());
    return 1;
  }
  SimdBackend Backend = SimdBackend::Auto;
  if (!parseSimdBackend(BackendName, Backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (auto | scalar | "
                 "sliced64 | avx2)\n", BackendName.c_str());
    return 1;
  }
  if (Side < 2 || Side > 1024 || NumReplicas <= 0 || MaxSteps < 0 ||
      NumAgents <= 0 || NumAgents > Side * Side) {
    std::fprintf(stderr,
                 "error: need side in [2, 1024], replicas > 0, "
                 "max-steps >= 0 and 0 < agents <= side^2\n");
    return 1;
  }
  unsigned HardwareConcurrency = std::thread::hardware_concurrency();
  if (Workers <= 0)
    Workers = HardwareConcurrency ? static_cast<int64_t>(HardwareConcurrency)
                                  : 1;
  if (Quick)
    NumReplicas = std::min<int64_t>(NumReplicas, 600);

  Torus T(Kind, static_cast<int>(Side));
  Genome G = bestAgent(Kind);
  SimOptions O;
  O.MaxSteps = static_cast<int>(MaxSteps);

  // Independent random fields, one per replica.
  Rng FieldRng(static_cast<uint64_t>(Seed));
  std::vector<std::vector<Placement>> Fields(
      static_cast<size_t>(NumReplicas));
  for (auto &F : Fields)
    F = randomConfiguration(T, static_cast<int>(NumAgents), FieldRng)
            .Placements;

  std::printf("== P2: batch engine throughput — %s-grid %lldx%lld, k=%lld, "
              "%lld replicas, cutoff %lld ==\n",
              gridKindName(Kind), static_cast<long long>(Side),
              static_cast<long long>(Side),
              static_cast<long long>(NumAgents),
              static_cast<long long>(NumReplicas),
              static_cast<long long>(MaxSteps));
  std::printf("backends: %s; headline rows use '%s' (resolved: %s)\n\n",
              simdBackendSummary().c_str(), BackendName.c_str(),
              simdBackendName(resolveSimdBackend(Backend)));

  // Reference engine: one World, sequential reset+run per replica (the
  // pattern every current caller uses).
  std::vector<SimResult> Reference(Fields.size());
  Measurement RefM;
  {
    World W(T);
    auto Start = std::chrono::steady_clock::now();
    for (size_t I = 0; I != Fields.size(); ++I) {
      W.reset(G, Fields[I], O);
      Reference[I] = W.run();
    }
    RefM.Seconds = secondsSince(Start);
  }
  RefM.Replicas = Fields.size();
  for (const SimResult &R : Reference)
    RefM.Steps += stepsOf(R, O.MaxSteps);

  // Batch engine, single worker and full fan-out.
  BatchEngine Engine(T);
  std::vector<BatchReplica> Replicas(Fields.size());
  for (size_t I = 0; I != Fields.size(); ++I) {
    Replicas[I].A = &G;
    Replicas[I].Placements = &Fields[I];
    Replicas[I].Options = &O;
  }
  auto MeasureBatch = [&](size_t NumWorkers, SimdBackend Kernel,
                          std::vector<SimResult> &Out) {
    Measurement M;
    BatchRunOptions RunOptions;
    RunOptions.NumWorkers = NumWorkers;
    RunOptions.Backend = Kernel;
    RunOptions.Stats = &M.Stats;
    auto Start = std::chrono::steady_clock::now();
    Out = Engine.run(Replicas, RunOptions);
    M.Seconds = secondsSince(Start);
    M.Replicas = Out.size();
    for (const SimResult &R : Out)
      M.Steps += stepsOf(R, O.MaxSteps);
    return M;
  };
  std::vector<SimResult> Batch1, BatchN;
  Measurement Batch1M = MeasureBatch(1, Backend, Batch1);
  Measurement BatchNM =
      MeasureBatch(static_cast<size_t>(Workers), Backend, BatchN);

  // One serial row per concretely available backend: the dispatch layer
  // promises bit-identical results, so the only thing that may differ
  // between these rows is throughput — and that difference is exactly
  // what the committed baseline tracks.
  std::vector<SimdBackend> PerBackend = availableSimdBackends();
  std::vector<Measurement> PerBackendM(PerBackend.size());
  std::vector<std::vector<SimResult>> PerBackendOut(PerBackend.size());
  for (size_t B = 0; B != PerBackend.size(); ++B)
    PerBackendM[B] = MeasureBatch(1, PerBackend[B], PerBackendOut[B]);

  // Bit-identity gate: timing of a wrong engine is worthless.
  size_t Mismatches = 0;
  auto CheckAgainstReference = [&](const std::vector<SimResult> &Out,
                                   const char *Label) {
    for (size_t I = 0; I != Fields.size(); ++I) {
      if (Out[I] != Reference[I]) {
        if (++Mismatches <= 5)
          std::fprintf(stderr,
                       "MISMATCH replica %zu (%s): reference {success %d, "
                       "t %d, informed %d} batch {%d, %d, %d}\n",
                       I, Label, Reference[I].Success, Reference[I].TComm,
                       Reference[I].InformedAgents, Out[I].Success,
                       Out[I].TComm, Out[I].InformedAgents);
      }
    }
  };
  CheckAgainstReference(Batch1, "serial");
  CheckAgainstReference(BatchN, "parallel");
  for (size_t B = 0; B != PerBackend.size(); ++B)
    CheckAgainstReference(PerBackendOut[B], simdBackendName(PerBackend[B]));

  double Speedup1 = RefM.Seconds > 0.0 && Batch1M.Seconds > 0.0
                        ? RefM.Seconds / Batch1M.Seconds
                        : 0.0;
  double SpeedupN = RefM.Seconds > 0.0 && BatchNM.Seconds > 0.0
                        ? RefM.Seconds / BatchNM.Seconds
                        : 0.0;

  std::printf("reference:        %8.1f replicas/s  %10.0f steps/s  (%.3fs)\n",
              RefM.replicasPerSec(), RefM.stepsPerSec(), RefM.Seconds);
  std::printf("batch (1 worker): %8.1f replicas/s  %10.0f steps/s  (%.3fs)  "
              "%.2fx\n",
              Batch1M.replicasPerSec(), Batch1M.stepsPerSec(),
              Batch1M.Seconds, Speedup1);
  std::printf("batch (%zu workers): %6.1f replicas/s  %10.0f steps/s  "
              "(%.3fs)  %.2fx\n",
              BatchNM.Stats.WorkersUsed, BatchNM.replicasPerSec(),
              BatchNM.stepsPerSec(), BatchNM.Seconds, SpeedupN);
  for (size_t B = 0; B != PerBackend.size(); ++B) {
    const Measurement &M = PerBackendM[B];
    std::printf("backend %-8s: %8.1f replicas/s  %10.0f steps/s  (%.3fs)  "
                "%.2fx\n",
                simdBackendName(PerBackend[B]), M.replicasPerSec(),
                M.stepsPerSec(), M.Seconds,
                RefM.Seconds > 0.0 && M.Seconds > 0.0
                    ? RefM.Seconds / M.Seconds
                    : 0.0);
  }
  std::printf("bit-identical to reference: %s\n",
              Mismatches == 0 ? "yes" : "NO");
  std::printf("hot path: %.4f allocs/replica (%llu steady), compile hit "
              "rate %.2f%%, worker utilization %.1f%%\n",
              Batch1M.allocationsPerReplica(),
              static_cast<unsigned long long>(
                  Batch1M.Stats.SteadyAllocations +
                  BatchNM.Stats.SteadyAllocations),
              100.0 * Batch1M.Stats.compileHitRate(),
              100.0 * BatchNM.Stats.workerUtilization());

  if (std::FILE *Out = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(Out, "{\n");
    std::fprintf(Out,
                 "  \"bench\": \"bench_batch\",\n  \"grid\": \"%s\",\n"
                 "  \"side\": %lld,\n  \"agents\": %lld,\n"
                 "  \"replicas\": %lld,\n  \"max_steps\": %lld,\n"
                 "  \"seed\": %lld,\n",
                 gridKindName(Kind), static_cast<long long>(Side),
                 static_cast<long long>(NumAgents),
                 static_cast<long long>(NumReplicas),
                 static_cast<long long>(MaxSteps),
                 static_cast<long long>(Seed));
    std::fprintf(Out, "  \"hardware_concurrency\": %u,\n",
                 HardwareConcurrency);
    std::fprintf(Out, "  \"backend\": \"%s\",\n  \"backend_used\": \"%s\",\n",
                 BackendName.c_str(),
                 simdBackendName(Batch1M.Stats.BackendUsed));
    printJsonMeasurement(Out, "reference", RefM, 1);
    std::fprintf(Out, ",\n");
    printJsonMeasurement(Out, "batch_serial", Batch1M,
                         Batch1M.Stats.WorkersUsed);
    std::fprintf(Out, ",\n");
    printJsonMeasurement(Out, "batch_parallel", BatchNM,
                         BatchNM.Stats.WorkersUsed);
    std::fprintf(Out, ",\n");
    std::fprintf(Out, "  \"requested_workers\": %lld,\n",
                 static_cast<long long>(Workers));
    std::fprintf(Out, "  \"speedup_serial\": %.3f,\n", Speedup1);
    std::fprintf(Out, "  \"speedup_parallel\": %.3f,\n", SpeedupN);
    std::fprintf(Out, "  \"bit_identical\": %s\n",
                 Mismatches == 0 ? "true" : "false");
    std::fprintf(Out, "}\n");
    std::fclose(Out);
    std::printf("json written to %s\n", JsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }

  if (std::FILE *Out = std::fopen(HotpathJsonPath.c_str(), "w")) {
    std::fprintf(Out, "{\n");
    std::fprintf(Out,
                 "  \"bench\": \"bench_batch_hotpath\",\n"
                 "  \"grid\": \"%s\",\n  \"side\": %lld,\n"
                 "  \"agents\": %lld,\n  \"replicas\": %lld,\n"
                 "  \"max_steps\": %lld,\n  \"seed\": %lld,\n",
                 gridKindName(Kind), static_cast<long long>(Side),
                 static_cast<long long>(NumAgents),
                 static_cast<long long>(NumReplicas),
                 static_cast<long long>(MaxSteps),
                 static_cast<long long>(Seed));
    std::fprintf(Out, "  \"hardware_concurrency\": %u,\n",
                 HardwareConcurrency);
    std::fprintf(Out, "  \"backend\": \"%s\",\n  \"backend_used\": \"%s\",\n",
                 BackendName.c_str(),
                 simdBackendName(Batch1M.Stats.BackendUsed));
    std::fprintf(Out, "  \"reference_replicas_per_sec\": %.1f,\n",
                 RefM.replicasPerSec());
    printJsonHotpath(Out, "batch_serial", Batch1M);
    std::fprintf(Out, ",\n");
    printJsonHotpath(Out, "batch_parallel", BatchNM);
    std::fprintf(Out, ",\n");
    for (size_t B = 0; B != PerBackend.size(); ++B) {
      std::string Key =
          std::string("batch_serial_") + simdBackendName(PerBackend[B]);
      printJsonHotpath(Out, Key.c_str(), PerBackendM[B]);
      std::fprintf(Out, ",\n");
    }
    std::fprintf(Out, "  \"speedup_serial\": %.3f,\n", Speedup1);
    std::fprintf(Out, "  \"speedup_parallel\": %.3f,\n", SpeedupN);
    std::fprintf(Out, "  \"bit_identical\": %s\n",
                 Mismatches == 0 ? "true" : "false");
    std::fprintf(Out, "}\n");
    std::fclose(Out);
    std::printf("hotpath json written to %s\n", HotpathJsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", HotpathJsonPath.c_str());
    return 1;
  }
  return Mismatches == 0 ? 0 : 1;
}
