//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool plus a chunked parallelFor, used to evaluate
/// GA fitness over many initial configurations in parallel. On single-core
/// hosts the pool degrades gracefully to one worker; parallelFor with zero
/// or one worker runs inline for determinism-friendly debugging.
///
/// Project library code does not throw, but submitted tasks may run user
/// or test callbacks that do. A throwing task no longer std::terminate()s
/// the process: the first exception is captured and rethrown from the
/// next wait() on the submitting thread (later exceptions from the same
/// batch are dropped). The pool stays usable afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_THREADPOOL_H
#define CA2A_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ca2a {

/// Fixed-size FIFO worker pool. Tasks are fire-and-forget; use wait() to
/// drain. The first exception a task throws is rethrown from wait().
class ThreadPool {
public:
  /// Spawns \p NumWorkers threads; 0 means hardware_concurrency().
  explicit ThreadPool(size_t NumWorkers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last wait(), rethrows the first captured exception after
  /// the drain (the pool remains usable). Exceptions pending at
  /// destruction are swallowed — call wait() to observe them.
  void wait();

  size_t numWorkers() const { return Workers.size(); }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  size_t ActiveTasks = 0;
  bool ShuttingDown = false;
  std::exception_ptr FirstException; ///< Guarded by Mutex.
};

/// Runs Body(I) for I in [0, Count), split into contiguous chunks across
/// \p NumWorkers threads. With NumWorkers <= 1 the loop runs inline on the
/// calling thread. \p Body must be safe to call concurrently on distinct
/// indices.
void parallelFor(size_t Count, size_t NumWorkers,
                 const std::function<void(size_t)> &Body);

/// Work-stealing variant of parallelFor: workers pull indices one at a
/// time from a shared atomic counter, so uneven per-index cost no longer
/// leaves workers idle behind a slow chunk. Body(Worker, I) runs for every
/// I in [0, Count) exactly once; Worker in [0, NumWorkers) identifies the
/// calling worker so callers can keep per-worker state (a scratch arena, a
/// reused simulation engine) without locking. With NumWorkers <= 1 the
/// loop runs inline, in index order, with Worker == 0.
///
/// Exceptions: a throwing Body ends its worker's participation (the other
/// workers drain the remaining indices); the first exception is rethrown
/// on the calling thread after the drain. Inline (<= 1 worker) the
/// exception propagates immediately and the remaining indices never run.
void parallelForDynamic(size_t Count, size_t NumWorkers,
                        const std::function<void(size_t, size_t)> &Body);

} // namespace ca2a

#endif // CA2A_SUPPORT_THREADPOOL_H
