//===- support/StringUtils.cpp - String helpers ---------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace ca2a;

std::vector<std::string> ca2a::splitString(std::string_view Text,
                                           char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string_view::npos) {
      Pieces.emplace_back(Text.substr(Start));
      return Pieces;
    }
    Pieces.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::vector<std::string> ca2a::splitWhitespace(std::string_view Text) {
  std::vector<std::string> Pieces;
  size_t I = 0, E = Text.size();
  while (I != E) {
    while (I != E && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    size_t Start = I;
    while (I != E && !std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I != Start)
      Pieces.emplace_back(Text.substr(Start, I - Start));
  }
  return Pieces;
}

std::string_view ca2a::trim(std::string_view Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin != End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End != Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string ca2a::joinStrings(const std::vector<std::string> &Pieces,
                              std::string_view Separator) {
  std::string Out;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Out += Separator;
    Out += Pieces[I];
  }
  return Out;
}

Expected<int64_t> ca2a::parseInt(std::string_view Text) {
  std::string Buffer(trim(Text));
  if (Buffer.empty())
    return makeError("empty string is not an integer");
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Buffer.c_str(), &End, 10);
  if (errno == ERANGE)
    return makeError("integer out of range: '" + Buffer + "'");
  if (End != Buffer.c_str() + Buffer.size())
    return makeError("trailing characters in integer: '" + Buffer + "'");
  return static_cast<int64_t>(Value);
}

Expected<uint64_t> ca2a::parseUnsigned(std::string_view Text) {
  std::string Buffer(trim(Text));
  if (Buffer.empty())
    return makeError("empty string is not an unsigned integer");
  if (Buffer.front() == '-')
    return makeError("negative value for unsigned: '" + Buffer + "'");
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Buffer.c_str(), &End, 10);
  if (errno == ERANGE)
    return makeError("unsigned out of range: '" + Buffer + "'");
  if (End != Buffer.c_str() + Buffer.size())
    return makeError("trailing characters in unsigned: '" + Buffer + "'");
  return static_cast<uint64_t>(Value);
}

Expected<double> ca2a::parseDouble(std::string_view Text) {
  std::string Buffer(trim(Text));
  if (Buffer.empty())
    return makeError("empty string is not a number");
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Buffer.c_str(), &End);
  if (errno == ERANGE)
    return makeError("number out of range: '" + Buffer + "'");
  if (End != Buffer.c_str() + Buffer.size())
    return makeError("trailing characters in number: '" + Buffer + "'");
  return Value;
}

std::string ca2a::formatFixed(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string ca2a::padLeft(std::string Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

std::string ca2a::padRight(std::string Text, size_t Width) {
  if (Text.size() < Width)
    Text.append(Width - Text.size(), ' ');
  return Text;
}

std::string ca2a::formatString(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Format, Args);
  va_end(Args);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Out.data(), Out.size(), Format, ArgsCopy);
    Out.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Out;
}
