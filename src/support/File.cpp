//===- support/File.cpp - Whole-file read/write helpers -------------------===//

#include "support/File.h"

#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <cerrno>
#include <fcntl.h>
#include <filesystem>
#include <unistd.h>
#endif

using namespace ca2a;

Expected<std::string> ca2a::readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeError("cannot open '" + Path + "' for reading");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return makeError("read error on '" + Path + "'");
  return Buffer.str();
}

Expected<bool> ca2a::writeFile(const std::string &Path,
                               const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return makeError("cannot open '" + Path + "' for writing");
  Out.write(Contents.data(),
            static_cast<std::streamsize>(Contents.size()));
  Out.flush();
  if (!Out)
    return makeError("write error on '" + Path + "'");
  return true;
}

// verify-lint: chaos-site(ckpt.write) callers (checkpoint/mailbox publish
// paths) draw the fault before invoking this durable-write primitive.
Expected<bool> ca2a::writeFileDurable(const std::string &Path,
                                      const std::string &Contents) {
#ifndef _WIN32
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return makeError(ErrorCode::Io, "cannot open '" + Path +
                                        "' for writing: " +
                                        std::strerror(errno));
  const char *Data = Contents.data();
  size_t Remaining = Contents.size();
  while (Remaining > 0) {
    ssize_t Written = ::write(Fd, Data, Remaining);
    if (Written < 0) {
      if (errno == EINTR)
        continue;
      int Saved = errno;
      ::close(Fd);
      return makeError(ErrorCode::Io, "write error on '" + Path +
                                          "': " + std::strerror(Saved));
    }
    Data += Written;
    Remaining -= static_cast<size_t>(Written);
  }
  if (::fsync(Fd) != 0) {
    int Saved = errno;
    ::close(Fd);
    return makeError(ErrorCode::Io, "fsync failed on '" + Path +
                                        "': " + std::strerror(Saved));
  }
  if (::close(Fd) != 0)
    return makeError(ErrorCode::Io, "close failed on '" + Path +
                                        "': " + std::strerror(errno));
  return true;
#else
  return writeFile(Path, Contents);
#endif
}

// verify-lint: chaos-site(ckpt.write) runs inside the same publish
// operation as writeFileDurable; callers draw the fault at that boundary.
Expected<bool> ca2a::syncParentDirectory(const std::string &Path) {
#ifndef _WIN32
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  std::string Dir = Parent.empty() ? std::string(".") : Parent.string();
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return makeError(ErrorCode::Io, "cannot open directory '" + Dir +
                                        "': " + std::strerror(errno));
  int Rc = ::fsync(Fd);
  int Saved = errno;
  ::close(Fd);
  if (Rc != 0)
    return makeError(ErrorCode::Io, "fsync failed on directory '" + Dir +
                                        "': " + std::strerror(Saved));
  return true;
#else
  (void)Path;
  return true;
#endif
}
