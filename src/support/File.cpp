//===- support/File.cpp - Whole-file read/write helpers -------------------===//

#include "support/File.h"

#include <fstream>
#include <sstream>

using namespace ca2a;

Expected<std::string> ca2a::readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeError("cannot open '" + Path + "' for reading");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return makeError("read error on '" + Path + "'");
  return Buffer.str();
}

Expected<bool> ca2a::writeFile(const std::string &Path,
                               const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return makeError("cannot open '" + Path + "' for writing");
  Out.write(Contents.data(),
            static_cast<std::streamsize>(Contents.size()));
  Out.flush();
  if (!Out)
    return makeError("write error on '" + Path + "'");
  return true;
}
