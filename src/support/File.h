//===- support/File.h - Whole-file read/write helpers -----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal whole-file I/O with Expected-based error reporting, used by the
/// genome library and configuration-set serialization.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_FILE_H
#define CA2A_SUPPORT_FILE_H

#include "support/Error.h"

#include <string>

namespace ca2a {

/// Reads the entire file into a string.
[[nodiscard]] Expected<std::string> readFile(const std::string &Path);

/// Writes \p Contents, replacing the file.
[[nodiscard]] Expected<bool> writeFile(const std::string &Path, const std::string &Contents);

/// Writes \p Contents and forces them to stable storage (fsync) before
/// returning. On POSIX this is write + fsync on the descriptor; elsewhere
/// it degrades to writeFile. Errors classify as ErrorCode::Io.
[[nodiscard]] Expected<bool> writeFileDurable(const std::string &Path,
                                const std::string &Contents);

/// Fsyncs the directory containing \p Path, making a just-completed
/// rename within it durable (a rename is only crash-safe once its
/// directory entry is flushed). No-op (success) on non-POSIX hosts.
[[nodiscard]] Expected<bool> syncParentDirectory(const std::string &Path);

} // namespace ca2a

#endif // CA2A_SUPPORT_FILE_H
