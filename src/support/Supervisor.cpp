//===- support/Supervisor.cpp - Retry, backoff and watchdogs --------------===//

#include "support/Supervisor.h"

#include <cassert>
#include <chrono>

using namespace ca2a;

int ca2a::backoffDelayMicros(const RetryPolicy &Policy, int Retry) {
  assert(Retry >= 0 && "retry index is 0-based");
  if (Policy.BaseDelayMicros <= 0)
    return 0;
  int Cap = Policy.MaxDelayMicros;
  // Doubling in 64-bit makes the cap comparison overflow-proof even for
  // absurd retry counts.
  int64_t Delay = Policy.BaseDelayMicros;
  for (int I = 0; I != Retry && Delay < Cap; ++I)
    Delay *= 2;
  return static_cast<int>(Delay < Cap ? Delay : Cap);
}

double ca2a::monotonicSeconds() {
  return std::chrono::duration<double>(
             // det-lint: allow(wall-clock) timeout/watchdog clock only — deadlines and backoff never feed a simulation or evolution result
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ca2a::backoffSleep(const RetryPolicy &Policy, int Retry) {
  int Micros = backoffDelayMicros(Policy, Retry);
  if (Micros > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(Micros));
}

Watchdog::Watchdog(double DeadlineSeconds, std::function<void(double)> OnStall)
    : DeadlineSeconds(DeadlineSeconds), OnStall(std::move(OnStall)) {
  if (DeadlineSeconds > 0.0)
    Monitor = std::thread([this] { monitorLoop(); });
}

Watchdog::~Watchdog() {
  if (!Monitor.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  StopRequested.notify_all();
  Monitor.join();
}

void Watchdog::monitorLoop() {
  auto Deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(DeadlineSeconds));
  uint64_t LastSeen = Beats.load(std::memory_order_relaxed);
  double Silent = 0.0;
  std::unique_lock<std::mutex> Lock(Mutex);
  while (!Stopping) {
    if (StopRequested.wait_for(Lock, Deadline, [this] { return Stopping; }))
      return;
    uint64_t Now = Beats.load(std::memory_order_relaxed);
    if (Now != LastSeen) {
      LastSeen = Now;
      Silent = 0.0;
      continue;
    }
    Silent += DeadlineSeconds;
    Stalls.fetch_add(1, std::memory_order_relaxed);
    if (OnStall) {
      // Drop the lock: the callback may log, lock its own state, or (in
      // tests) call back into the watchdog's accessors.
      Lock.unlock();
      OnStall(Silent);
      Lock.lock();
    }
  }
}
