//===- support/CommandLine.h - Minimal flag parser --------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative command-line flag parser for the examples and bench
/// drivers. Flags take the forms `--name=value`, `--name value`, and for
/// booleans bare `--name` / `--no-name`.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_COMMANDLINE_H
#define CA2A_SUPPORT_COMMANDLINE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ca2a {

/// Declarative flag registry + parser.
///
/// Typical use:
/// \code
///   CommandLine CL("trace", "Renders Fig. 6/7 style simulation panels");
///   int64_t Size = 16;
///   CL.addInt("size", "field side length", &Size);
///   if (auto Err = CL.parse(Argc, Argv)) { ... }
/// \endcode
class CommandLine {
public:
  CommandLine(std::string ProgramName, std::string Description)
      : ProgramName(std::move(ProgramName)),
        Description(std::move(Description)) {}

  /// Registers an integer flag backed by \p Target (holds the default).
  void addInt(std::string Name, std::string Help, int64_t *Target);
  /// Registers an integer flag whose explicitly assigned values must lie in
  /// [\p Min, \p Max]. Out-of-range values are rejected at parse time with
  /// an ErrorCode::InvalidArgument diagnostic naming the flag and the
  /// accepted range; the default in \p Target is not range-checked, so a
  /// sentinel default (e.g. 0 = auto) outside the explicit range stays
  /// expressible.
  void addInt(std::string Name, std::string Help, int64_t *Target,
              int64_t Min, int64_t Max);
  /// Registers a floating-point flag backed by \p Target.
  void addDouble(std::string Name, std::string Help, double *Target);
  /// Registers a string flag backed by \p Target.
  void addString(std::string Name, std::string Help, std::string *Target);
  /// Registers a boolean flag backed by \p Target (`--name`, `--no-name`,
  /// `--name=true|false`).
  void addBool(std::string Name, std::string Help, bool *Target);

  /// Parses argv. Returns an error message for unknown flags or malformed
  /// values. `--help` sets helpRequested() and returns success without
  /// consuming further arguments.
  [[nodiscard]] Expected<bool> parse(int Argc, const char *const *Argv);

  /// True once `--help` was seen; the caller should print usage() and exit.
  bool helpRequested() const { return HelpSeen; }

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string> &positionalArgs() const { return Positional; }

  /// Renders the usage/help text.
  std::string usage() const;

private:
  enum class FlagKind { Int, Double, String, Bool };

  struct Flag {
    std::string Name;
    std::string Help;
    FlagKind Kind;
    void *Target;
    std::string DefaultText;
    /// Inclusive bounds for Int flags (full int64 range = unconstrained).
    int64_t Min = INT64_MIN;
    int64_t Max = INT64_MAX;
  };

  Flag *findFlag(std::string_view Name);
  [[nodiscard]] static Expected<bool> assignValue(Flag &F, std::string_view Value);

  std::string ProgramName;
  std::string Description;
  std::vector<Flag> Flags;
  std::vector<std::string> Positional;
  bool HelpSeen = false;
};

} // namespace ca2a

#endif // CA2A_SUPPORT_COMMANDLINE_H
