//===- support/Csv.cpp - CSV and console-table writers --------------------===//

#include "support/Csv.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace ca2a;

std::string CsvWriter::escapeField(const std::string &Field) {
  bool NeedsQuoting = Field.find_first_of(",\"\n\r") != std::string::npos;
  if (!NeedsQuoting)
    return Field;
  std::string Out = "\"";
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

void CsvWriter::writeRow(const std::vector<std::string> &Fields) {
  for (size_t I = 0, E = Fields.size(); I != E; ++I) {
    if (I != 0)
      Out << ',';
    Out << escapeField(Fields[I]);
  }
  Out << '\n';
}

void TextTable::setHeader(std::vector<std::string> NewHeader) {
  assert(Rows.empty() && "set the header before adding rows");
  Header = std::move(NewHeader);
}

void TextTable::addRow(std::vector<std::string> Row) {
  assert((Header.empty() || Row.size() == Header.size()) &&
         "row width must match header width");
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  size_t NumColumns = Header.size();
  for (const auto &Row : Rows)
    NumColumns = std::max(NumColumns, Row.size());
  if (NumColumns == 0)
    return "";

  std::vector<size_t> Widths(NumColumns, 0);
  auto Absorb = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  if (!Header.empty())
    Absorb(Header);
  for (const auto &Row : Rows)
    Absorb(Row);

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I != NumColumns; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : "";
      if (I != 0)
        Line += " | ";
      Line += I == 0 ? padRight(Cell, Widths[I]) : padLeft(Cell, Widths[I]);
    }
    Line += '\n';
    return Line;
  };

  std::string Out;
  if (!Header.empty()) {
    Out += RenderRow(Header);
    for (size_t I = 0; I != NumColumns; ++I) {
      if (I != 0)
        Out += "-+-";
      Out += std::string(Widths[I], '-');
    }
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
