//===- support/Error.h - Lightweight recoverable errors ---------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free recoverable error handling for parsers and file I/O.
///
/// Library code in this project does not throw. Fallible operations (genome
/// parsing, configuration-file loading, CLI parsing) return Expected<T>,
/// a minimal analogue of llvm::Expected: either a value or a string error
/// message. Programmatic errors are asserts, not Expected.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_ERROR_H
#define CA2A_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ca2a {

/// A failure description. Deliberately just a message: the project's
/// recoverable failures are all "report to the user" class.
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Either a T or an Error. Test with the bool conversion, then use *, ->,
/// or takeError().
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Error Err) : Storage(std::move(Err)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(*this && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Returns the contained error. Only valid when in the error state.
  const Error &error() const {
    assert(!*this && "no error to take");
    return std::get<Error>(Storage);
  }

  /// Moves the value out. Only valid when in the success state.
  T takeValue() {
    assert(*this && "no value to take");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Builds an Error from message fragments.
inline Error makeError(std::string Message) {
  return Error(std::move(Message));
}

} // namespace ca2a

#endif // CA2A_SUPPORT_ERROR_H
