//===- support/Error.h - Lightweight recoverable errors ---------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free recoverable error handling for parsers and file I/O.
///
/// Library code in this project does not throw. Fallible operations (genome
/// parsing, configuration-file loading, CLI parsing) return Expected<T>,
/// a minimal analogue of llvm::Expected: either a value or an Error.
/// Programmatic errors are asserts, not Expected.
///
/// Errors carry a small structured taxonomy (ErrorCode) on top of the
/// human-readable message, so supervised execution can route on the
/// *class* of a failure: an Io error is worth retrying, Corrupt data is
/// worth falling back to the previous snapshot, a VersionMismatch is
/// terminal. Code-agnostic call sites keep using makeError(message),
/// which classifies as Generic.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_ERROR_H
#define CA2A_SUPPORT_ERROR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace ca2a {

/// Failure classes the recovery machinery routes on. Keep this list short:
/// a code earns its place only when some caller genuinely branches on it.
enum class ErrorCode : uint8_t {
  Generic,         ///< Unclassified "report to the user" failure.
  Io,              ///< File/stream operation failed (often transient).
  Corrupt,         ///< Data failed an integrity check (checksum, truncation).
  VersionMismatch, ///< Persistent data written by an incompatible format.
  Timeout,         ///< A deadline elapsed before the operation finished.
  Cancelled,       ///< The operation was cancelled by a supervisor.
  Exhausted,       ///< Retries exhausted; the wrapped failure persisted.
  Injected,        ///< Synthetic failure from the chaos layer (tests only).
  InvalidArgument, ///< A caller-supplied value failed validation (CLI
                   ///< flags, island/topology configuration).
};

/// Stable lowercase name for an ErrorCode ("io", "corrupt", ...).
const char *errorCodeName(ErrorCode Code);

/// A failure description: a routing code plus a human-readable message.
class Error {
public:
  explicit Error(std::string Message)
      : Message(std::move(Message)) {}
  Error(ErrorCode Code, std::string Message)
      : Message(std::move(Message)), Code(Code) {}

  const std::string &message() const { return Message; }
  [[nodiscard]] ErrorCode code() const { return Code; }

private:
  std::string Message;
  ErrorCode Code = ErrorCode::Generic;
};

/// Either a T or an Error. Test with the bool conversion, then use *, ->,
/// or takeError().
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Error Err) : Storage(std::move(Err)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(*this && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Returns the contained error. Only valid when in the error state.
  const Error &error() const {
    assert(!*this && "no error to take");
    return std::get<Error>(Storage);
  }

  /// Moves the value out. Only valid when in the success state.
  T takeValue() {
    assert(*this && "no value to take");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Builds an unclassified (Generic) Error.
[[nodiscard]] inline Error makeError(std::string Message) {
  return Error(std::move(Message));
}

/// Builds a classified Error.
[[nodiscard]] inline Error makeError(ErrorCode Code, std::string Message) {
  return Error(Code, std::move(Message));
}

} // namespace ca2a

#endif // CA2A_SUPPORT_ERROR_H
