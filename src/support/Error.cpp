//===- support/Error.cpp - Lightweight recoverable errors -----------------===//
//
// Error and Expected are header-only; this file exists to give the library
// a translation unit and to anchor any future out-of-line error utilities.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
