//===- support/Error.cpp - Lightweight recoverable errors -----------------===//

#include "support/Error.h"

using namespace ca2a;

const char *ca2a::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Generic:
    return "generic";
  case ErrorCode::Io:
    return "io";
  case ErrorCode::Corrupt:
    return "corrupt";
  case ErrorCode::VersionMismatch:
    return "version-mismatch";
  case ErrorCode::Timeout:
    return "timeout";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::Exhausted:
    return "exhausted";
  case ErrorCode::Injected:
    return "injected";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  }
  return "unknown";
}
