//===- support/Supervisor.h - Retry, backoff and watchdogs ------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Supervised-execution primitives the infrastructure wraps around
/// fallible work: capped-exponential-backoff retry for transient failures
/// (the kind support/Chaos injects and real I/O produces), and a watchdog
/// that detects a hung or pathologically slow worker by the silence of its
/// progress heartbeat.
///
/// The division of labour with the rest of the stack:
///
///   * retry       — per *task*: a throwing replica simulation or a failed
///     checkpoint write is re-attempted MaxAttempts times with delays
///     Base, 2*Base, 4*Base, ... capped at MaxDelay.
///   * quarantine  — per *work item*, owned by the caller (EvalScheduler):
///     an item that fails every attempt is excluded and reported, not
///     retried forever and not allowed to abort the run.
///   * watchdog    — per *generation/deadline*: progress is heartbeated;
///     a silent interval longer than the deadline raises a stall
///     notification (detection and surfacing — a hung thread cannot be
///     safely killed, but it can be loudly diagnosed).
///
/// Sleeping and clock reads live in this translation unit only, so the
/// deterministic simulation core (src/sim, src/ga) can consume retry and
/// watchdog services without touching <chrono> (see
/// scripts/lint_determinism.py). Nothing here feeds simulation results:
/// retries recompute identical values, and the watchdog only observes.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_SUPERVISOR_H
#define CA2A_SUPPORT_SUPERVISOR_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace ca2a {

/// Capped exponential backoff policy for transient-failure retry.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry; must be >= 1).
  int MaxAttempts = 3;
  /// Delay before the first retry, in microseconds.
  int BaseDelayMicros = 200;
  /// Ceiling on any single delay, in microseconds.
  int MaxDelayMicros = 20000;
};

/// The delay before retry number \p Retry (0-based): Base * 2^Retry,
/// capped at MaxDelayMicros (overflow-safe).
int backoffDelayMicros(const RetryPolicy &Policy, int Retry);

/// Monotonic clock reading in seconds (arbitrary epoch). The supervised
/// layers use it for deadlines and timeouts only — elapsed time gates
/// *when* an error is reported, never what a simulation computes — so the
/// deterministic core can consume it without touching <chrono> directly
/// (see scripts/lint_determinism.py).
double monotonicSeconds();

/// Sleeps for backoffDelayMicros(Policy, Retry). The only sleep the
/// simulation core is allowed to reach, and only between attempts —
/// never on the success path.
void backoffSleep(const RetryPolicy &Policy, int Retry);

/// Runs \p Body up to Policy.MaxAttempts times. Returns Body's result on
/// the first success; rethrows Body's final exception when every attempt
/// failed. \p OnRetry (may be null) observes each failed attempt before
/// its backoff sleep: OnRetry(RetryIndex) with RetryIndex 0-based.
template <typename BodyFn>
auto runWithRetry(const RetryPolicy &Policy, BodyFn &&Body,
                  const std::function<void(int)> &OnRetry = {})
    -> decltype(Body()) {
  for (int Retry = 0;; ++Retry) {
    try {
      return Body();
    } catch (...) {
      if (Retry + 1 >= Policy.MaxAttempts)
        throw;
      if (OnRetry)
        OnRetry(Retry);
      backoffSleep(Policy, Retry);
    }
  }
}

/// Deadline watchdog: a monitor thread samples a heartbeat counter every
/// \p DeadlineSeconds; an interval with no heartbeat() call raises
/// OnStall(SilentSeconds) and re-arms (one notification per silent
/// interval, so a wedged generation produces a heartbeat-shaped trail of
/// evidence, not a single lost line).
///
/// heartbeat() is wait-free (one relaxed fetch_add) and safe from any
/// thread; OnStall runs on the monitor thread and must synchronise its own
/// state. Destruction joins the monitor. A DeadlineSeconds <= 0 watchdog
/// is inert (no thread, no overhead) so callers can pass their config
/// through unconditionally.
class Watchdog {
public:
  Watchdog(double DeadlineSeconds, std::function<void(double)> OnStall);
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Records progress. Call from worker/result paths.
  void heartbeat() { Beats.fetch_add(1, std::memory_order_relaxed); }

  /// Stall intervals detected so far.
  uint64_t stalls() const { return Stalls.load(std::memory_order_relaxed); }

private:
  void monitorLoop();

  double DeadlineSeconds;
  std::function<void(double)> OnStall;
  std::atomic<uint64_t> Beats{0};
  std::atomic<uint64_t> Stalls{0};
  std::mutex Mutex;
  std::condition_variable StopRequested;
  bool Stopping = false;
  std::thread Monitor;
};

} // namespace ca2a

#endif // CA2A_SUPPORT_SUPERVISOR_H
