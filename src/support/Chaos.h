//===- support/Chaos.h - Seeded infrastructure fault injection --*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos injection for the *execution infrastructure* — the counterpart of
/// sim/Fault, which injects faults into the simulated world. Where Fault
/// asks "do evolved agents survive stalls and dropped links?", Chaos asks
/// "does the machinery that runs them survive a throwing task, a hung
/// worker, or a torn checkpoint write?".
///
/// A ChaosSchedule names a set of injection sites (ChaosSite) and gives
/// each one independent probabilities of three synthetic events:
///
///   * fail    — the site throws ChaosError (a simulated infrastructure
///     exception: an I/O error, an OOM, a flaky dependency);
///   * delay   — the site sleeps a configured number of microseconds (a
///     simulated hung or slow worker, used to trip watchdog deadlines);
///   * corrupt — the site flips one payload byte (a simulated torn write;
///     only checkpoint-write honours it, other sites ignore it).
///
/// Draws are seeded and deterministic per (seed, site, draw index): the
/// same schedule injects the same event sequence at each site on every
/// run. Under a multi-threaded fan-out the *assignment* of draw indices to
/// tasks follows the thread schedule, so chaos fixes the failure density,
/// not which task fails — the supervised execution layer must (and does)
/// deliver bit-identical results regardless, which is exactly the property
/// the chaos-labelled tests and scripts/chaos_resume.sh pin.
///
/// Sites are compiled into the infrastructure as chaosPoint(Site) calls.
/// With no schedule installed the call is a single relaxed atomic load of
/// a null pointer, far off every inner loop (per task / per replica / per
/// file operation, never per simulation step). Configuring CMake with
/// -DCA2A_CHAOS=OFF compiles the sites out entirely; the scheduled-build
/// bench gate (scripts/bench_smoke.sh vs BENCH_hotpath.json) holds for the
/// default chaos-ready build, so OFF is belt-and-braces, not a
/// performance requirement.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_CHAOS_H
#define CA2A_SUPPORT_CHAOS_H

#include "support/Error.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ca2a {

/// Named injection sites in the execution stack.
enum class ChaosSite : uint8_t {
  PoolTask,        ///< ThreadPool: before a dequeued task body runs.
  EngineReplica,   ///< BatchEngine fan-out: before a replica simulates.
  SchedulerBatch,  ///< EvalScheduler: a generation-wide submission attempt.
  CheckpointWrite, ///< Checkpoint save: the durable-write path.
  CheckpointRead,  ///< Checkpoint load: the file-read path.
};
constexpr size_t NumChaosSites = 5;

/// Stable spec/reporting name ("pool.task", "engine.replica", ...).
const char *chaosSiteName(ChaosSite Site);

/// The exception a `fail` injection throws. Supervised code treats it like
/// any other infrastructure exception; it exists as a distinct type only
/// so tests can assert the failure was synthetic.
class ChaosError : public std::runtime_error {
public:
  explicit ChaosError(ChaosSite Site)
      : std::runtime_error(std::string("chaos: injected failure at ") +
                           chaosSiteName(Site)),
        Site(Site) {}
  ChaosSite site() const { return Site; }

private:
  ChaosSite Site;
};

/// Per-site event probabilities.
struct ChaosSiteSpec {
  double FailProbability = 0.0;    ///< P(throw ChaosError) per visit.
  double DelayProbability = 0.0;   ///< P(sleep DelayMicros) per visit.
  double CorruptProbability = 0.0; ///< P(flip one payload byte) per visit.
  int DelayMicros = 0;             ///< Sleep length of one delay event.

  bool any() const {
    return FailProbability > 0.0 || DelayProbability > 0.0 ||
           CorruptProbability > 0.0;
  }
};

/// A full chaos configuration: one spec per site plus the seed of the
/// dedicated draw stream. Value type; install a copy with ScopedChaos or
/// installChaos().
struct ChaosSchedule {
  uint64_t Seed = 0xc4a05c4a05ULL;
  std::array<ChaosSiteSpec, NumChaosSites> Sites{};

  ChaosSiteSpec &site(ChaosSite S) {
    return Sites[static_cast<size_t>(S)];
  }
  const ChaosSiteSpec &site(ChaosSite S) const {
    return Sites[static_cast<size_t>(S)];
  }
  bool any() const {
    for (const ChaosSiteSpec &S : Sites)
      if (S.any())
        return true;
    return false;
  }
};

/// Parses a compact chaos spec string:
///
///   "seed=7,engine.replica.fail=0.02,ckpt.write.corrupt=0.2,
///    pool.task.delay=0.5:20000"
///
/// Comma- or semicolon-separated `key=value` entries; keys are `seed` or
/// `<site>.<event>` with site in {pool.task, engine.replica, sched.batch,
/// ckpt.write, ckpt.read} and event in {fail, delay, corrupt}. A delay
/// value takes the form `<probability>:<micros>`. Probabilities must lie
/// in [0, 1]. The empty string yields an inert schedule.
[[nodiscard]] Expected<ChaosSchedule> parseChaosSpec(const std::string &Spec);

/// One-line human-readable summary of the active processes ("chaos off"
/// when nothing can fire).
std::string describeChaosSchedule(const ChaosSchedule &Schedule);

/// Counts of injected events since the schedule was installed (atomic;
/// summed across all sites or per site).
struct ChaosStats {
  uint64_t Failures = 0;
  uint64_t Delays = 0;
  uint64_t Corruptions = 0;
  uint64_t total() const { return Failures + Delays + Corruptions; }
};

#ifdef CA2A_CHAOS_ENABLED

namespace chaos_detail {
/// The installed schedule, or null when chaos is off. Mutated only by
/// installChaos/uninstallChaos; sites read it with one relaxed load.
extern std::atomic<const void *> ActiveRuntime;

void injectSlow(ChaosSite Site);
uint64_t corruptDrawSlow(ChaosSite Site);
} // namespace chaos_detail

/// Installs \p Schedule process-wide (replacing any previous one) and
/// resets the event counters. Not thread-safe against concurrent
/// chaosPoint traffic — install before the supervised region starts, as
/// the CLI tools and tests do.
void installChaos(const ChaosSchedule &Schedule);

/// Removes the active schedule; chaosPoint reverts to a no-op.
void uninstallChaos();

/// True when a schedule with at least one live process is installed.
bool chaosActive();

/// Event counters of the active (or last) schedule.
ChaosStats chaosStats();

/// The injection site hook: may sleep, may throw ChaosError. The disabled
/// fast path is one relaxed null check.
inline void chaosPoint(ChaosSite Site) {
  if (chaos_detail::ActiveRuntime.load(std::memory_order_relaxed))
    chaos_detail::injectSlow(Site);
}

/// Corruption draw for sites that own a payload (checkpoint write):
/// nonzero when the caller should corrupt — pass the returned draw to
/// chaosCorruptPayload to pick the byte and mask. Zero means publish
/// untouched.
inline uint64_t chaosCorruptDraw(ChaosSite Site) {
  if (chaos_detail::ActiveRuntime.load(std::memory_order_relaxed))
    return chaos_detail::corruptDrawSlow(Site);
  return 0;
}

/// RAII install/uninstall for tests and CLI mains.
class ScopedChaos {
public:
  explicit ScopedChaos(const ChaosSchedule &Schedule) {
    installChaos(Schedule);
  }
  ~ScopedChaos() { uninstallChaos(); }
  ScopedChaos(const ScopedChaos &) = delete;
  ScopedChaos &operator=(const ScopedChaos &) = delete;
};

#else // !CA2A_CHAOS_ENABLED

// Chaos compiled out: every hook is an empty inline the optimiser erases.
inline void installChaos(const ChaosSchedule &) {}
inline void uninstallChaos() {}
inline bool chaosActive() { return false; }
inline ChaosStats chaosStats() { return {}; }
inline void chaosPoint(ChaosSite) {}
inline uint64_t chaosCorruptDraw(ChaosSite) { return 0; }

class ScopedChaos {
public:
  explicit ScopedChaos(const ChaosSchedule &) {}
};

#endif // CA2A_CHAOS_ENABLED

/// Flips one byte of \p Payload, position and xor mask drawn from \p Draw
/// (any nonzero 64-bit value; the flip is guaranteed to change the byte).
/// Exposed for the corruption tests; no-op on an empty payload.
void chaosCorruptPayload(std::string &Payload, uint64_t Draw);

} // namespace ca2a

#endif // CA2A_SUPPORT_CHAOS_H
