//===- support/Statistics.cpp - Streaming and batch statistics ------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ca2a;

void RunningStats::add(double Value) {
  ++Count;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Value - Mean);
  Min = std::min(Min, Value);
  Max = std::max(Max, Value);
}

void RunningStats::merge(const RunningStats &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  // Chan et al. parallel combination of Welford accumulators.
  double Delta = Other.Mean - Mean;
  size_t Total = Count + Other.Count;
  Mean += Delta * static_cast<double>(Other.Count) / static_cast<double>(Total);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(Count) *
                       static_cast<double>(Other.Count) /
                       static_cast<double>(Total);
  Count = Total;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

double RunningStats::variance() const {
  if (Count < 2)
    return 0.0;
  return M2 / static_cast<double>(Count - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double ca2a::sortedQuantile(const std::vector<double> &Sorted, double Q) {
  assert(!Sorted.empty() && "quantile of empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile must be in [0, 1]");
  if (Sorted.size() == 1)
    return Sorted.front();
  double Position = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lower = static_cast<size_t>(Position);
  if (Lower + 1 == Sorted.size())
    return Sorted.back();
  double Frac = Position - static_cast<double>(Lower);
  return Sorted[Lower] * (1.0 - Frac) + Sorted[Lower + 1] * Frac;
}

Summary Summary::of(std::vector<double> Values) {
  Summary S;
  S.Count = Values.size();
  if (Values.empty())
    return S;
  RunningStats Stats;
  for (double V : Values)
    Stats.add(V);
  S.Mean = Stats.mean();
  S.Stddev = Stats.stddev();
  S.Min = Stats.min();
  S.Max = Stats.max();
  std::sort(Values.begin(), Values.end());
  S.Median = sortedQuantile(Values, 0.5);
  S.Q25 = sortedQuantile(Values, 0.25);
  S.Q75 = sortedQuantile(Values, 0.75);
  return S;
}
