//===- support/Chaos.cpp - Seeded infrastructure fault injection ----------===//

#include "support/Chaos.h"

#include "support/Rng.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cinttypes>
#include <thread>

using namespace ca2a;

const char *ca2a::chaosSiteName(ChaosSite Site) {
  switch (Site) {
  case ChaosSite::PoolTask:
    return "pool.task";
  case ChaosSite::EngineReplica:
    return "engine.replica";
  case ChaosSite::SchedulerBatch:
    return "sched.batch";
  case ChaosSite::CheckpointWrite:
    return "ckpt.write";
  case ChaosSite::CheckpointRead:
    return "ckpt.read";
  }
  return "unknown";
}

namespace {

/// Event kinds, used as sub-stream tags so fail/delay/corrupt draws at the
/// same site never reuse one random value.
enum class ChaosEvent : uint64_t { Fail = 1, Delay = 2, Corrupt = 3 };

/// One deterministic draw in [0, 1): SplitMix64 over (seed, site, event,
/// index). The mixing matches the repo's seeding idiom (Rng seeds through
/// SplitMix64 too), so draws are reproducible across platforms.
double chaosDraw(uint64_t Seed, ChaosSite Site, ChaosEvent Event,
                 uint64_t Index, uint64_t *RawOut = nullptr) {
  uint64_t State = Seed ^
                   (static_cast<uint64_t>(Site) + 1) * 0x9e3779b97f4a7c15ULL ^
                   static_cast<uint64_t>(Event) * 0xbf58476d1ce4e5b9ULL;
  State += Index * 0x94d049bb133111ebULL;
  uint64_t Raw = splitMix64(State);
  if (RawOut)
    *RawOut = Raw;
  return static_cast<double>(Raw >> 11) * 0x1.0p-53;
}

} // namespace

Expected<ChaosSchedule> ca2a::parseChaosSpec(const std::string &Spec) {
  ChaosSchedule Schedule;
  std::string Normalized = Spec;
  for (char &C : Normalized)
    if (C == ';')
      C = ',';
  for (const std::string &RawEntry : splitString(Normalized, ',')) {
    std::string Entry(trim(RawEntry));
    if (Entry.empty())
      continue;
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos)
      return makeError("chaos spec: entry '" + Entry + "' is not key=value");
    std::string Key(trim(Entry.substr(0, Eq)));
    std::string Value(trim(Entry.substr(Eq + 1)));
    if (Key == "seed") {
      auto Seed = parseUnsigned(Value);
      if (!Seed)
        return makeError("chaos spec: bad seed '" + Value + "'");
      Schedule.Seed = *Seed;
      continue;
    }
    size_t Dot = Key.rfind('.');
    if (Dot == std::string::npos)
      return makeError("chaos spec: unknown key '" + Key + "'");
    std::string SiteName = Key.substr(0, Dot);
    std::string EventName = Key.substr(Dot + 1);
    ChaosSiteSpec *Site = nullptr;
    for (size_t I = 0; I != NumChaosSites; ++I)
      if (SiteName == chaosSiteName(static_cast<ChaosSite>(I)))
        Site = &Schedule.Sites[I];
    if (!Site)
      return makeError("chaos spec: unknown site '" + SiteName + "'");
    std::string ProbText = Value;
    if (EventName == "delay") {
      size_t Colon = Value.find(':');
      if (Colon == std::string::npos)
        return makeError("chaos spec: delay value '" + Value +
                         "' needs the form probability:micros");
      ProbText = Value.substr(0, Colon);
      auto Micros = parseInt(Value.substr(Colon + 1));
      if (!Micros || *Micros < 0)
        return makeError("chaos spec: bad delay micros in '" + Value + "'");
      Site->DelayMicros = static_cast<int>(*Micros);
    }
    auto Prob = parseDouble(ProbText);
    if (!Prob || *Prob < 0.0 || *Prob > 1.0)
      return makeError("chaos spec: probability '" + ProbText +
                       "' must lie in [0, 1]");
    if (EventName == "fail")
      Site->FailProbability = *Prob;
    else if (EventName == "delay")
      Site->DelayProbability = *Prob;
    else if (EventName == "corrupt")
      Site->CorruptProbability = *Prob;
    else
      return makeError("chaos spec: unknown event '" + EventName +
                       "' (expected fail, delay or corrupt)");
  }
  return Schedule;
}

std::string ca2a::describeChaosSchedule(const ChaosSchedule &Schedule) {
  if (!Schedule.any())
    return "chaos off";
  std::string Out = formatString("chaos seed=%" PRIu64, Schedule.Seed);
  for (size_t I = 0; I != NumChaosSites; ++I) {
    const ChaosSiteSpec &S = Schedule.Sites[I];
    if (!S.any())
      continue;
    const char *Name = chaosSiteName(static_cast<ChaosSite>(I));
    if (S.FailProbability > 0.0)
      Out += formatString(" %s.fail=%g", Name, S.FailProbability);
    if (S.DelayProbability > 0.0)
      Out += formatString(" %s.delay=%g:%d", Name, S.DelayProbability,
                          S.DelayMicros);
    if (S.CorruptProbability > 0.0)
      Out += formatString(" %s.corrupt=%g", Name, S.CorruptProbability);
  }
  return Out;
}

void ca2a::chaosCorruptPayload(std::string &Payload, uint64_t Draw) {
  if (Payload.empty() || Draw == 0)
    return;
  size_t Pos = static_cast<size_t>(Draw % Payload.size());
  // The xor mask is never zero, so the byte always changes.
  uint8_t Mask = static_cast<uint8_t>((Draw >> 32) % 255) + 1;
  Payload[Pos] = static_cast<char>(
      static_cast<uint8_t>(Payload[Pos]) ^ Mask);
}

#ifdef CA2A_CHAOS_ENABLED

namespace {

/// Installed-schedule state: the schedule itself plus per-site draw
/// cursors and the global event tally. One static instance; ActiveRuntime
/// points at it while a schedule is live.
struct ChaosRuntime {
  ChaosSchedule Schedule;
  std::atomic<uint64_t> FailCursor[NumChaosSites];
  std::atomic<uint64_t> DelayCursor[NumChaosSites];
  std::atomic<uint64_t> CorruptCursor[NumChaosSites];
  std::atomic<uint64_t> Failures{0};
  std::atomic<uint64_t> Delays{0};
  std::atomic<uint64_t> Corruptions{0};

  void reset(const ChaosSchedule &NewSchedule) {
    Schedule = NewSchedule;
    for (size_t I = 0; I != NumChaosSites; ++I) {
      FailCursor[I].store(0, std::memory_order_relaxed);
      DelayCursor[I].store(0, std::memory_order_relaxed);
      CorruptCursor[I].store(0, std::memory_order_relaxed);
    }
    Failures.store(0, std::memory_order_relaxed);
    Delays.store(0, std::memory_order_relaxed);
    Corruptions.store(0, std::memory_order_relaxed);
  }
};

ChaosRuntime &chaosRuntime() {
  static ChaosRuntime Runtime;
  return Runtime;
}

} // namespace

std::atomic<const void *> ca2a::chaos_detail::ActiveRuntime{nullptr};

void ca2a::installChaos(const ChaosSchedule &Schedule) {
  ChaosRuntime &Runtime = chaosRuntime();
  // Quiesce first so a racing site never observes a half-reset runtime.
  chaos_detail::ActiveRuntime.store(nullptr, std::memory_order_release);
  Runtime.reset(Schedule);
  chaos_detail::ActiveRuntime.store(&Runtime, std::memory_order_release);
}

void ca2a::uninstallChaos() {
  chaos_detail::ActiveRuntime.store(nullptr, std::memory_order_release);
}

bool ca2a::chaosActive() {
  return chaos_detail::ActiveRuntime.load(std::memory_order_relaxed) &&
         chaosRuntime().Schedule.any();
}

ChaosStats ca2a::chaosStats() {
  ChaosRuntime &Runtime = chaosRuntime();
  ChaosStats Stats;
  Stats.Failures = Runtime.Failures.load(std::memory_order_relaxed);
  Stats.Delays = Runtime.Delays.load(std::memory_order_relaxed);
  Stats.Corruptions = Runtime.Corruptions.load(std::memory_order_relaxed);
  return Stats;
}

void ca2a::chaos_detail::injectSlow(ChaosSite Site) {
  ChaosRuntime &Runtime = chaosRuntime();
  const ChaosSiteSpec &Spec = Runtime.Schedule.site(Site);
  size_t I = static_cast<size_t>(Site);
  if (Spec.DelayProbability > 0.0) {
    uint64_t Index =
        Runtime.DelayCursor[I].fetch_add(1, std::memory_order_relaxed);
    if (chaosDraw(Runtime.Schedule.Seed, Site, ChaosEvent::Delay, Index) <
        Spec.DelayProbability) {
      Runtime.Delays.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(Spec.DelayMicros));
    }
  }
  if (Spec.FailProbability > 0.0) {
    uint64_t Index =
        Runtime.FailCursor[I].fetch_add(1, std::memory_order_relaxed);
    if (chaosDraw(Runtime.Schedule.Seed, Site, ChaosEvent::Fail, Index) <
        Spec.FailProbability) {
      Runtime.Failures.fetch_add(1, std::memory_order_relaxed);
      throw ChaosError(Site);
    }
  }
}

uint64_t ca2a::chaos_detail::corruptDrawSlow(ChaosSite Site) {
  ChaosRuntime &Runtime = chaosRuntime();
  const ChaosSiteSpec &Spec = Runtime.Schedule.site(Site);
  if (Spec.CorruptProbability <= 0.0)
    return 0;
  size_t I = static_cast<size_t>(Site);
  uint64_t Index =
      Runtime.CorruptCursor[I].fetch_add(1, std::memory_order_relaxed);
  uint64_t Raw = 0;
  if (chaosDraw(Runtime.Schedule.Seed, Site, ChaosEvent::Corrupt, Index,
                &Raw) >= Spec.CorruptProbability)
    return 0;
  Runtime.Corruptions.fetch_add(1, std::memory_order_relaxed);
  return Raw | 1; // Guarantee nonzero: zero means "no corruption".
}

#endif // CA2A_CHAOS_ENABLED
