//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities shared by the parsers, table formatters and CLI.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_STRINGUTILS_H
#define CA2A_SUPPORT_STRINGUTILS_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ca2a {

/// Splits \p Text on \p Separator; empty pieces are kept so that
/// "a,,b" -> {"a", "", "b"}.
std::vector<std::string> splitString(std::string_view Text, char Separator);

/// Splits \p Text on runs of whitespace; empty pieces are dropped.
std::vector<std::string> splitWhitespace(std::string_view Text);

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view Text);

/// Joins \p Pieces with \p Separator.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Separator);

/// Parses a decimal (optionally signed) integer; the whole string must be
/// consumed.
[[nodiscard]] Expected<int64_t> parseInt(std::string_view Text);

/// Parses an unsigned decimal integer; the whole string must be consumed.
[[nodiscard]] Expected<uint64_t> parseUnsigned(std::string_view Text);

/// Parses a floating-point number; the whole string must be consumed.
[[nodiscard]] Expected<double> parseDouble(std::string_view Text);

/// Formats \p Value with \p Decimals digits after the point ("78.30" style,
/// matching the paper's tables).
std::string formatFixed(double Value, int Decimals);

/// Left-pads \p Text with spaces to \p Width (no-op if already wider).
std::string padLeft(std::string Text, size_t Width);

/// Right-pads \p Text with spaces to \p Width (no-op if already wider).
std::string padRight(std::string Text, size_t Width);

/// printf-style formatting into a std::string.
std::string formatString(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ca2a

#endif // CA2A_SUPPORT_STRINGUTILS_H
