//===- support/Csv.h - CSV and console-table writers ------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result serialization: RFC-4180-style CSV output plus a fixed-width
/// console table formatter used to print the paper-style tables (Table 1,
/// the topology table, the ablation tables).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_CSV_H
#define CA2A_SUPPORT_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace ca2a {

/// Streams CSV rows with minimal quoting (fields containing a comma, quote
/// or newline are quoted; embedded quotes are doubled).
class CsvWriter {
public:
  explicit CsvWriter(std::ostream &Out) : Out(Out) {}

  /// Writes one row; fields are escaped as needed.
  void writeRow(const std::vector<std::string> &Fields);

  /// Escapes one field per RFC 4180.
  static std::string escapeField(const std::string &Field);

private:
  std::ostream &Out;
};

/// Accumulates rows and renders them as an aligned monospace table:
///
///   N_agents |     2 |     4 | ...
///   ---------+-------+-------+----
///   T-grid   | 58.43 | 78.30 | ...
class TextTable {
public:
  /// Sets the header row (also fixes the column count).
  void setHeader(std::vector<std::string> Header);

  /// Appends a data row; must match the header width (asserted).
  void addRow(std::vector<std::string> Row);

  /// Renders the aligned table. The first column is left-aligned, the rest
  /// right-aligned (numeric convention).
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ca2a

#endif // CA2A_SUPPORT_CSV_H
