//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//

#include "support/ThreadPool.h"

#include "support/Chaos.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

using namespace ca2a;

ThreadPool::ThreadPool(size_t NumWorkers) {
  if (NumWorkers == 0) {
    NumWorkers = std::thread::hardware_concurrency();
    if (NumWorkers == 0)
      NumWorkers = 1;
  }
  Workers.reserve(NumWorkers);
  for (size_t I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "cannot submit an empty task");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "submit after shutdown");
    Tasks.push(std::move(Task));
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Tasks.empty() && ActiveTasks == 0; });
  if (FirstException) {
    // Hand the exception to the waiting thread exactly once; the pool
    // keeps accepting work afterwards.
    std::exception_ptr Pending = std::exchange(FirstException, nullptr);
    Lock.unlock();
    std::rethrow_exception(Pending);
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty()) {
        // ShuttingDown and drained: exit.
        return;
      }
      Task = std::move(Tasks.front());
      Tasks.pop();
      ++ActiveTasks;
    }
    std::exception_ptr Thrown;
    try {
      // Chaos site: a synthetic delay (hung worker) or throw (failing
      // task) lands here, inside the same capture net a real throwing
      // task uses — the pool must survive both identically.
      chaosPoint(ChaosSite::PoolTask);
      Task();
    } catch (...) {
      // Escaping the loop would std::terminate(); capture instead and let
      // wait() rethrow the first one on the submitting thread.
      Thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Thrown && !FirstException)
        FirstException = Thrown;
      --ActiveTasks;
      if (Tasks.empty() && ActiveTasks == 0)
        AllDone.notify_all();
    }
  }
}

void ca2a::parallelFor(size_t Count, size_t NumWorkers,
                       const std::function<void(size_t)> &Body) {
  if (Count == 0)
    return;
  if (NumWorkers <= 1) {
    for (size_t I = 0; I != Count; ++I)
      Body(I);
    return;
  }
  NumWorkers = std::min(NumWorkers, Count);
  ThreadPool Pool(NumWorkers);
  size_t ChunkSize = (Count + NumWorkers - 1) / NumWorkers;
  for (size_t Begin = 0; Begin < Count; Begin += ChunkSize) {
    size_t End = std::min(Begin + ChunkSize, Count);
    Pool.submit([Begin, End, &Body] {
      for (size_t I = Begin; I != End; ++I)
        Body(I);
    });
  }
  Pool.wait();
}

void ca2a::parallelForDynamic(
    size_t Count, size_t NumWorkers,
    const std::function<void(size_t, size_t)> &Body) {
  if (Count == 0)
    return;
  if (NumWorkers <= 1) {
    for (size_t I = 0; I != Count; ++I)
      Body(0, I);
    return;
  }
  NumWorkers = std::min(NumWorkers, Count);
  ThreadPool Pool(NumWorkers);
  // Relaxed suffices for the cursor: it only needs to hand out each index
  // exactly once (atomicity), never to publish data. Whatever Body writes
  // is made visible to the caller by wait()'s mutex handshake, not by
  // this counter.
  std::atomic<size_t> Next{0};
  for (size_t Worker = 0; Worker != NumWorkers; ++Worker)
    Pool.submit([Worker, Count, &Next, &Body] {
      for (size_t I;
           (I = Next.fetch_add(1, std::memory_order_relaxed)) < Count;)
        Body(Worker, I);
    });
  Pool.wait();
}
