//===- support/Rng.cpp - Deterministic pseudo-random numbers --------------===//

#include "support/Rng.h"

using namespace ca2a;

uint64_t ca2a::splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

Rng::Rng(uint64_t Seed) {
  // xoshiro state must not be all-zero; SplitMix64 guarantees that the four
  // seeded words are never simultaneously zero.
  for (uint64_t &Word : State)
    Word = splitMix64(Seed);
}

static inline uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

uint64_t Rng::nextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::uniformInt(uint64_t Bound) {
  assert(Bound != 0 && "uniformInt bound must be nonzero");
  // Lemire's multiply-shift with rejection of the biased low region.
  __uint128_t Product = static_cast<__uint128_t>(nextU64()) * Bound;
  uint64_t Low = static_cast<uint64_t>(Product);
  if (Low < Bound) {
    uint64_t Threshold = -Bound % Bound;
    while (Low < Threshold) {
      Product = static_cast<__uint128_t>(nextU64()) * Bound;
      Low = static_cast<uint64_t>(Product);
    }
  }
  return static_cast<uint64_t>(Product >> 64);
}

int64_t Rng::uniformInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  return Lo + static_cast<int64_t>(uniformInt(Span));
}

double Rng::uniformReal() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniformReal() < P;
}

std::vector<uint32_t> Rng::sampleDistinct(uint32_t Count, uint32_t Bound) {
  assert(Count <= Bound && "cannot sample more distinct values than exist");
  // Partial Fisher-Yates over the identity permutation. For the sizes used
  // here (fields of at most a few thousand cells) materialising the
  // permutation is cheap and keeps the draw exactly uniform.
  std::vector<uint32_t> Pool(Bound);
  for (uint32_t I = 0; I != Bound; ++I)
    Pool[I] = I;
  for (uint32_t I = 0; I != Count; ++I) {
    uint32_t J = I + static_cast<uint32_t>(uniformInt(Bound - I));
    std::swap(Pool[I], Pool[J]);
  }
  Pool.resize(Count);
  return Pool;
}
