//===- support/BitVector.h - Dynamic bit vector -----------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact dynamic bit vector used for the agents' communication vectors.
///
/// The paper stores a k-bit vector in every agent (bit i set iff the agent
/// has gathered agent i's information) and merges vectors by OR when agents
/// meet. The hot operation mix is therefore: word-wise OR, all-ones test,
/// and popcount, which this class implements directly over uint64_t words.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_BITVECTOR_H
#define CA2A_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ca2a {

/// Fixed-size (after construction) sequence of bits over 64-bit words.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all cleared.
  explicit BitVector(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  /// Number of bits the vector holds.
  size_t size() const { return NumBits; }

  bool empty() const { return NumBits == 0; }

  /// Sets bit \p Index.
  void set(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    Words[Index / 64] |= uint64_t(1) << (Index % 64);
  }

  /// Clears bit \p Index.
  void reset(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    Words[Index / 64] &= ~(uint64_t(1) << (Index % 64));
  }

  /// Clears every bit.
  void clear();

  /// Sets every bit.
  void setAll();

  /// Returns bit \p Index.
  bool test(size_t Index) const {
    assert(Index < NumBits && "bit index out of range");
    return (Words[Index / 64] >> (Index % 64)) & 1;
  }

  /// ORs \p Other into this vector. Both vectors must have the same size.
  void orWith(const BitVector &Other);

  /// ANDs \p Other into this vector. Both vectors must have the same size.
  void andWith(const BitVector &Other);

  /// Returns true iff every bit set in \p Other is also set here (Other is
  /// a subset). Both vectors must have the same size. Used for the
  /// survivor-aware informedness test under agent-death faults.
  bool contains(const BitVector &Other) const;

  /// Returns true iff every bit is set. An empty vector counts as full.
  bool all() const;

  /// Returns true iff no bit is set.
  bool none() const;

  /// Number of set bits.
  size_t count() const;

  /// Renders the bits as a '0'/'1' string, bit 0 first (the paper's
  /// "(11...1)" notation for the solved state).
  std::string toString() const;

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitVector &Other) const { return !(*this == Other); }

private:
  /// Zeroes any bits in the final word beyond NumBits so that all()/count()
  /// stay exact after setAll().
  void clearUnusedBits();

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace ca2a

#endif // CA2A_SUPPORT_BITVECTOR_H
