//===- support/BitVector.cpp - Dynamic bit vector -------------------------===//

#include "support/BitVector.h"

#include <algorithm>
#include <bit>

using namespace ca2a;

void BitVector::clear() { std::fill(Words.begin(), Words.end(), 0); }

void BitVector::setAll() {
  std::fill(Words.begin(), Words.end(), ~uint64_t(0));
  clearUnusedBits();
}

void BitVector::clearUnusedBits() {
  if (NumBits % 64 == 0 || Words.empty())
    return;
  Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
}

void BitVector::orWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch in orWith");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] |= Other.Words[I];
}

void BitVector::andWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch in andWith");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= Other.Words[I];
}

bool BitVector::contains(const BitVector &Other) const {
  assert(NumBits == Other.NumBits && "size mismatch in contains");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    if (Other.Words[I] & ~Words[I])
      return false;
  return true;
}

bool BitVector::all() const {
  if (Words.empty())
    return true;
  for (size_t I = 0, E = Words.size() - 1; I != E; ++I)
    if (Words[I] != ~uint64_t(0))
      return false;
  uint64_t LastMask = (NumBits % 64 == 0) ? ~uint64_t(0)
                                          : (uint64_t(1) << (NumBits % 64)) - 1;
  return (Words.back() & LastMask) == LastMask;
}

bool BitVector::none() const {
  for (uint64_t Word : Words)
    if (Word != 0)
      return false;
  return true;
}

size_t BitVector::count() const {
  size_t Total = 0;
  for (uint64_t Word : Words)
    Total += static_cast<size_t>(std::popcount(Word));
  return Total;
}

std::string BitVector::toString() const {
  std::string Out;
  Out.reserve(NumBits);
  for (size_t I = 0; I != NumBits; ++I)
    Out.push_back(test(I) ? '1' : '0');
  return Out;
}
