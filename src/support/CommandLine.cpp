//===- support/CommandLine.cpp - Minimal flag parser ----------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdint>

using namespace ca2a;

void CommandLine::addInt(std::string Name, std::string Help, int64_t *Target) {
  addInt(std::move(Name), std::move(Help), Target, INT64_MIN, INT64_MAX);
}

void CommandLine::addInt(std::string Name, std::string Help, int64_t *Target,
                         int64_t Min, int64_t Max) {
  assert(Target && "flag target must be non-null");
  assert(Min <= Max && "empty flag range");
  Flags.push_back({std::move(Name), std::move(Help), FlagKind::Int, Target,
                   std::to_string(*Target), Min, Max});
}

void CommandLine::addDouble(std::string Name, std::string Help,
                            double *Target) {
  assert(Target && "flag target must be non-null");
  Flags.push_back({std::move(Name), std::move(Help), FlagKind::Double, Target,
                   formatFixed(*Target, 4)});
}

void CommandLine::addString(std::string Name, std::string Help,
                            std::string *Target) {
  assert(Target && "flag target must be non-null");
  Flags.push_back(
      {std::move(Name), std::move(Help), FlagKind::String, Target, *Target});
}

void CommandLine::addBool(std::string Name, std::string Help, bool *Target) {
  assert(Target && "flag target must be non-null");
  Flags.push_back({std::move(Name), std::move(Help), FlagKind::Bool, Target,
                   *Target ? "true" : "false"});
}

CommandLine::Flag *CommandLine::findFlag(std::string_view Name) {
  for (Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

Expected<bool> CommandLine::assignValue(Flag &F, std::string_view Value) {
  switch (F.Kind) {
  case FlagKind::Int: {
    auto Parsed = parseInt(Value);
    if (!Parsed)
      return makeError("flag --" + F.Name + ": " + Parsed.error().message());
    if (*Parsed < F.Min || *Parsed > F.Max) {
      std::string Range =
          F.Min == INT64_MIN ? "<= " + std::to_string(F.Max)
          : F.Max == INT64_MAX
              ? ">= " + std::to_string(F.Min)
              : "in [" + std::to_string(F.Min) + ", " +
                    std::to_string(F.Max) + "]";
      return makeError(ErrorCode::InvalidArgument,
                       "flag --" + F.Name + ": value " +
                           std::to_string(*Parsed) + " out of range (must be " +
                           Range + ")");
    }
    *static_cast<int64_t *>(F.Target) = *Parsed;
    return true;
  }
  case FlagKind::Double: {
    auto Parsed = parseDouble(Value);
    if (!Parsed)
      return makeError("flag --" + F.Name + ": " + Parsed.error().message());
    *static_cast<double *>(F.Target) = *Parsed;
    return true;
  }
  case FlagKind::String:
    *static_cast<std::string *>(F.Target) = std::string(Value);
    return true;
  case FlagKind::Bool: {
    if (Value == "true" || Value == "1") {
      *static_cast<bool *>(F.Target) = true;
      return true;
    }
    if (Value == "false" || Value == "0") {
      *static_cast<bool *>(F.Target) = false;
      return true;
    }
    return makeError("flag --" + F.Name + ": expected true/false, got '" +
                     std::string(Value) + "'");
  }
  }
  assert(false && "unhandled flag kind");
  return makeError("internal: unhandled flag kind");
}

Expected<bool> CommandLine::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      HelpSeen = true;
      return true;
    }
    if (!Arg.starts_with("--")) {
      Positional.emplace_back(Arg);
      continue;
    }
    std::string_view Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq != std::string_view::npos) {
      Flag *F = findFlag(Body.substr(0, Eq));
      if (!F)
        return makeError("unknown flag: " + std::string(Arg));
      if (auto Err = assignValue(*F, Body.substr(Eq + 1)); !Err)
        return Err;
      continue;
    }
    // `--no-name` for booleans.
    if (Body.starts_with("no-")) {
      if (Flag *F = findFlag(Body.substr(3)); F && F->Kind == FlagKind::Bool) {
        *static_cast<bool *>(F->Target) = false;
        continue;
      }
    }
    Flag *F = findFlag(Body);
    if (!F)
      return makeError("unknown flag: " + std::string(Arg));
    if (F->Kind == FlagKind::Bool) {
      *static_cast<bool *>(F->Target) = true;
      continue;
    }
    if (I + 1 >= Argc)
      return makeError("flag --" + F->Name + " expects a value");
    if (auto Err = assignValue(*F, Argv[++I]); !Err)
      return Err;
  }
  return true;
}

std::string CommandLine::usage() const {
  std::string Out = ProgramName + " - " + Description + "\n\nFlags:\n";
  size_t Width = 0;
  for (const Flag &F : Flags)
    Width = std::max(Width, F.Name.size());
  for (const Flag &F : Flags) {
    Out += "  --" + padRight(F.Name, Width) + "  " + F.Help +
           " (default: " + F.DefaultText + ")\n";
  }
  Out += "  --" + padRight("help", Width) + "  print this message\n";
  return Out;
}
