//===- support/Statistics.h - Streaming and batch statistics ----*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numerically stable summary statistics for experiment results.
///
/// Every number the paper reports (Table 1, Fig. 5, the 33x33 check) is an
/// average of communication times over a configuration set; RunningStats
/// accumulates those averages with Welford's algorithm, and Summary adds
/// order statistics (median, quantiles) for the extended reporting in
/// EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_STATISTICS_H
#define CA2A_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ca2a {

/// Streaming mean/variance/min/max accumulator (Welford update).
class RunningStats {
public:
  /// Adds one observation.
  void add(double Value);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats &Other);

  size_t count() const { return Count; }
  double mean() const { return Count ? Mean : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

  double min() const { return Count ? Min : 0.0; }
  double max() const { return Count ? Max : 0.0; }
  double sum() const { return Mean * static_cast<double>(Count); }

private:
  size_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
};

/// Batch summary with order statistics, computed from a sample vector.
struct Summary {
  size_t Count = 0;
  double Mean = 0.0;
  double Stddev = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Median = 0.0;
  double Q25 = 0.0;
  double Q75 = 0.0;

  /// Builds the summary; \p Values is copied so the caller's order is kept.
  static Summary of(std::vector<double> Values);
};

/// Linear-interpolation quantile of a *sorted* sample, Q in [0, 1].
double sortedQuantile(const std::vector<double> &Sorted, double Q);

} // namespace ca2a

#endif // CA2A_SUPPORT_STATISTICS_H
