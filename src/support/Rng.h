//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable pseudo-random number generation.
///
/// Every stochastic component of the reproduction (initial-configuration
/// generation, mutation, population seeding) draws from an explicitly
/// seeded Rng so that experiments are replayable bit-for-bit. The engine is
/// xoshiro256** seeded through SplitMix64, which is both fast and of far
/// higher quality than std::minstd / rand().
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_RNG_H
#define CA2A_SUPPORT_RNG_H

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ca2a {

/// SplitMix64 step; used for seeding and as a cheap stand-alone mixer.
uint64_t splitMix64(uint64_t &State);

/// Deterministic xoshiro256** generator.
///
/// The generator is a value type: copying it forks the stream, and two Rng
/// objects constructed from the same seed produce identical sequences on
/// every platform.
class Rng {
public:
  /// Seeds the four 64-bit words of state from \p Seed via SplitMix64.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t nextU64();

  /// Returns the next 32-bit value (upper half of nextU64, the better bits).
  uint32_t nextU32() { return static_cast<uint32_t>(nextU64() >> 32); }

  /// Returns a uniform integer in [0, Bound) using Lemire's unbiased
  /// multiply-shift rejection method. \p Bound must be nonzero.
  uint64_t uniformInt(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t uniformInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double uniformReal();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool bernoulli(double P);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[uniformInt(I)]);
  }

  /// Draws \p Count distinct integers from [0, Bound) in random order.
  /// Requires Count <= Bound.
  std::vector<uint32_t> sampleDistinct(uint32_t Count, uint32_t Bound);

  /// Forks an independent child stream. The child is seeded from this
  /// stream's output, so forking is itself deterministic.
  Rng fork() { return Rng(nextU64()); }

  /// The four xoshiro256** state words, for checkpointing. setState()
  /// restores an earlier state() exactly: the generator continues the
  /// identical sequence. The state must never be all-zero (asserted).
  std::array<uint64_t, 4> state() const {
    return {State[0], State[1], State[2], State[3]};
  }
  void setState(const std::array<uint64_t, 4> &Words) {
    assert((Words[0] | Words[1] | Words[2] | Words[3]) != 0 &&
           "xoshiro state must not be all-zero");
    for (size_t I = 0; I != 4; ++I)
      State[I] = Words[I];
  }

private:
  uint64_t State[4];
};

} // namespace ca2a

#endif // CA2A_SUPPORT_RNG_H
