//===- support/Hash.h - FNV-1a content hashing ------------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's one content-hash primitive: 64-bit FNV-1a, shared by the
/// checkpoint checksum (ga/Checkpoint), the genome content hash
/// (agent/Genome) and the evaluation-scheduler memo keys (ga/EvalScheduler).
/// Two mixing granularities are exposed:
///
///   - mixBytes / fnv1a: the classic byte-wise FNV-1a (matches the
///     published test vectors), used for serialized payloads;
///   - mixWord: one xor-multiply round per 64-bit word, used for packed
///     structured data where byte-wise feeding would cost 8x the rounds.
///
/// Both are deterministic across platforms and runs — hashes are stored in
/// checkpoint files and compared between processes.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SUPPORT_HASH_H
#define CA2A_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ca2a {

constexpr uint64_t Fnv1aOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t Fnv1aPrime = 0x100000001b3ULL;

/// Incremental FNV-1a hasher.
class Fnv1aHasher {
public:
  /// One xor-multiply round over a full 64-bit word.
  void mixWord(uint64_t Value) {
    Hash ^= Value;
    Hash *= Fnv1aPrime;
  }

  /// Classic byte-wise FNV-1a over a buffer.
  void mixBytes(const void *Data, size_t Size) {
    const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Size; ++I)
      mixWord(Bytes[I]);
  }

  uint64_t value() const { return Hash; }

private:
  uint64_t Hash = Fnv1aOffsetBasis;
};

/// One-shot byte-wise FNV-1a of a buffer.
inline uint64_t fnv1a(const void *Data, size_t Size) {
  Fnv1aHasher H;
  H.mixBytes(Data, Size);
  return H.value();
}

/// One-shot byte-wise FNV-1a of a string's contents.
inline uint64_t fnv1a(const std::string &Bytes) {
  return fnv1a(Bytes.data(), Bytes.size());
}

} // namespace ca2a

#endif // CA2A_SUPPORT_HASH_H
