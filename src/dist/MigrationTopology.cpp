//===- dist/MigrationTopology.cpp - Island exchange graphs ----------------===//

#include "dist/MigrationTopology.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace ca2a;

const char *ca2a::topologyKindName(TopologyKind Kind) {
  switch (Kind) {
  case TopologyKind::None:
    return "none";
  case TopologyKind::Ring:
    return "ring";
  case TopologyKind::Hypercube:
    return "hypercube";
  }
  return "unknown";
}

bool ca2a::parseTopologyKind(const std::string &Text, TopologyKind &Out) {
  if (Text == "none") {
    Out = TopologyKind::None;
    return true;
  }
  if (Text == "ring") {
    Out = TopologyKind::Ring;
    return true;
  }
  if (Text == "hypercube") {
    Out = TopologyKind::Hypercube;
    return true;
  }
  return false;
}

Expected<MigrationTopology> MigrationTopology::create(TopologyKind Kind,
                                                      int NumIslands) {
  if (NumIslands < 1)
    return makeError(ErrorCode::InvalidArgument,
                     formatString("island count %d must be >= 1",
                                  NumIslands));
  if (Kind == TopologyKind::Hypercube &&
      (NumIslands & (NumIslands - 1)) != 0)
    return makeError(
        ErrorCode::InvalidArgument,
        formatString("hypercube topology needs a power-of-two island "
                     "count, got %d",
                     NumIslands));

  MigrationTopology T;
  T.Kind = Kind;
  T.Out.resize(static_cast<size_t>(NumIslands));
  T.In.resize(static_cast<size_t>(NumIslands));
  switch (Kind) {
  case TopologyKind::None:
    break;
  case TopologyKind::Ring:
    // A 1-island ring has no edges (a self-loop would inject an island's
    // own migrants, a pointless no-op that still costs transport I/O).
    if (NumIslands >= 2) {
      for (int I = 0; I != NumIslands; ++I) {
        int Next = (I + 1) % NumIslands;
        T.Out[static_cast<size_t>(I)].push_back(Next);
        T.In[static_cast<size_t>(Next)].push_back(I);
      }
    }
    break;
  case TopologyKind::Hypercube:
    for (int I = 0; I != NumIslands; ++I)
      for (int Bit = 1; Bit < NumIslands; Bit <<= 1) {
        int Peer = I ^ Bit;
        T.Out[static_cast<size_t>(I)].push_back(Peer);
        T.In[static_cast<size_t>(I)].push_back(Peer);
      }
    break;
  }
  for (auto &Edges : T.Out)
    std::sort(Edges.begin(), Edges.end());
  for (auto &Edges : T.In)
    std::sort(Edges.begin(), Edges.end());
  return T;
}

size_t MigrationTopology::numEdges() const {
  size_t Count = 0;
  for (const auto &Edges : Out)
    Count += Edges.size();
  return Count;
}
