//===- dist/Island.h - One island of the distributed GA ---------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One island of the island-model GA: an independent Evolution (own
/// derived seed, own EvalScheduler) that pauses at every migration
/// boundary to exchange its best individuals with its topology
/// neighbours through a Mailbox, and optionally checkpoints after every
/// generation so a SIGKILL costs at most one generation.
///
/// The loop ordering is the determinism linchpin:
///
///   while (generation < total):
///     if generation > 0 and generation % interval == 0:
///       migrate(seq = generation / interval)   # post all, then collect
///     stepGeneration()
///     saveCheckpoint()                         # post-step state
///
/// A checkpoint therefore always captures *pre-migration* state for the
/// next boundary. A killed island resumes at the top of the loop and —
/// because its pool, RNG and counters are restored bit-for-bit — replays
/// the migration round with byte-identical posts (the mailbox accepts
/// idempotent re-posts) and identical collects, so the resumed trajectory
/// is indistinguishable from an uninterrupted one. Every island posts to
/// all out-neighbours *before* collecting from any in-neighbour, so no
/// exchange graph can deadlock; collects iterate in-neighbours in
/// ascending island order, making the injection order (which shapes the
/// pool) a function of the topology, never of arrival timing.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_DIST_ISLAND_H
#define CA2A_DIST_ISLAND_H

#include "dist/Mailbox.h"
#include "dist/MigrationTopology.h"
#include "ga/Checkpoint.h"

#include <memory>

namespace ca2a {

/// Per-island configuration beyond the EvolutionParams.
struct IslandOptions {
  int Index = 0;                ///< This island's id in [0, NumIslands).
  int MigrationInterval = 10;   ///< Generations between exchanges (0 = off).
  int MigrantCount = 3;         ///< Individuals emigrated per edge.
  double MigrationDeadlineSeconds = 120.0; ///< collect() patience.
  /// Empty = no checkpointing. Otherwise saved after every generation and
  /// auto-resumed (with .bak recovery) when the file already exists.
  std::string CheckpointPath;
  GridKind Grid = GridKind::Triangulate; ///< Checkpoint identity.
  int SideLength = 0;                    ///< Checkpoint identity.
  RetryPolicy Retry;
};

/// Migration instrumentation for reporting and tests.
struct IslandStats {
  uint64_t MigrationRounds = 0;  ///< Boundaries actually exchanged at.
  uint64_t BlocksPosted = 0;     ///< Out-edges published.
  uint64_t MigrantsReceived = 0; ///< Individuals offered by neighbours.
  uint64_t MigrantsAccepted = 0; ///< Individuals that entered the pool.
};

/// Deterministic per-island evolution seed: islands must draw distinct
/// RNG streams from one base seed, identically on every host and in
/// every process layout. Island 0 keeps the base seed itself, so a
/// 1-island "distributed" run is bit-identical to a plain evolve run.
uint64_t deriveIslandSeed(uint64_t BaseSeed, int Island);

/// One island: owns its Evolution and runs the migrate/step/checkpoint
/// loop. Not thread-safe; the runner gives each island its own thread.
class Island {
public:
  /// Builds the island, resuming from Opts.CheckpointPath when that file
  /// exists (validated against grid/side/seed/params; the backup is
  /// consulted when the primary is damaged). \p Evo.Seed must already be
  /// the island's derived seed. \p Box may be null only when the
  /// topology gives this island no edges.
  [[nodiscard]] static Expected<std::unique_ptr<Island>>
  create(const Torus &T, std::vector<InitialConfiguration> TrainingFields,
         const EvolutionParams &Evo, const MigrationTopology &Topo,
         const IslandOptions &Opts, Mailbox *Box);

  /// Runs until the evolution reaches \p Generations (absolute, so a
  /// resumed island continues where it left off). \p OnGeneration (may be
  /// empty) observes each generation. Returns the island's best-ever
  /// individual; a transport or checkpoint failure aborts with its error.
  [[nodiscard]] Expected<Individual>
  run(int Generations,
      const std::function<void(const GenerationStats &)> &OnGeneration = {});

  const Evolution &evolution() const { return *Evo; }
  const IslandStats &stats() const { return Stats; }
  /// True when create() restored a checkpoint instead of starting fresh.
  bool resumed() const { return Resumed; }
  /// How the checkpoint load went (meaningful when resumed()).
  const CheckpointLoadReport &loadReport() const { return LoadReport; }

private:
  Island(const Torus &T, std::vector<InitialConfiguration> TrainingFields,
         const EvolutionParams &EvoParams, const MigrationTopology &Topo,
         const IslandOptions &Opts);

  /// One exchange: post this island's block to every out-neighbour, then
  /// collect and inject from every in-neighbour in ascending order.
  [[nodiscard]] Expected<bool> migrate(uint64_t Seq, Mailbox &Box);

  std::vector<InitialConfiguration> TrainingFields;
  EvolutionParams EvoParams;
  MigrationTopology Topo;
  IslandOptions Opts;
  Mailbox *Box = nullptr;
  std::unique_ptr<Evolution> Evo;
  IslandStats Stats;
  bool Resumed = false;
  CheckpointLoadReport LoadReport;
  const Torus &T;
};

} // namespace ca2a

#endif // CA2A_DIST_ISLAND_H
