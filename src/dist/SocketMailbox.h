//===- dist/SocketMailbox.h - TCP migrant transport -------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket transport for migrant blocks: a thin length-prefixed TCP
/// protocol over the same checksummed wire format the file transport
/// writes to disk. One process hosts a SocketMailboxServer (a content-
/// addressed in-memory exchange); every island owns a SocketMailbox
/// client connection to it. Because blocks are keyed (from, to, seq) and
/// re-posts of a key must carry identical bytes, delivery timing and
/// connection interleaving cannot change what an island collects — the
/// determinism argument is the same as the file transport's, minus the
/// fsync (the server's memory is the medium; crash durability across the
/// *server* is what the file transport is for).
///
/// Framing: every message is a 4-byte big-endian payload length followed
/// by the payload. Client requests:
///
///   "post\n<serialized migrant block>"      publish under the block's key
///   "get <from> <to> <seq> <deadline-ms>\n" wait for a key
///
/// Server replies: "ok\n[<block>]", "timeout\n", or "err <message>\n".
/// Malformed or oversized frames close the connection.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_DIST_SOCKETMAILBOX_H
#define CA2A_DIST_SOCKETMAILBOX_H

#include "dist/Mailbox.h"

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

namespace ca2a {

/// The hosting side: listens on loopback, stores every valid posted
/// block under its key, answers get requests (waiting up to the client's
/// deadline for keys that have not arrived yet). Blocks are retained for
/// the server's lifetime so a resumed island can re-collect its round.
class SocketMailboxServer {
public:
  /// Binds 127.0.0.1:\p Port (0 = kernel-assigned ephemeral port, the
  /// default for in-process runs) and starts the accept loop.
  [[nodiscard]] static Expected<std::unique_ptr<SocketMailboxServer>> listen(int Port = 0);

  /// Stops accepting, closes every connection, joins all threads.
  ~SocketMailboxServer();

  SocketMailboxServer(const SocketMailboxServer &) = delete;
  SocketMailboxServer &operator=(const SocketMailboxServer &) = delete;

  /// The bound TCP port (useful after an ephemeral bind).
  int port() const { return BoundPort; }

private:
  SocketMailboxServer() = default;

  void acceptLoop();
  void serveConnection(int Fd);
  std::string handleRequest(const std::string &Request);

  int ListenFd = -1;
  int BoundPort = 0;
  std::thread Acceptor;
  std::mutex Mutex; ///< Guards Blocks and Connections.
  std::map<std::tuple<int, int, uint64_t>, std::string> Blocks;
  std::vector<std::thread> Handlers;
  std::vector<int> Connections;
  bool ShuttingDown = false;
};

/// The island side: one TCP connection to a SocketMailboxServer.
/// Implements the Mailbox contract; validation (parse, route, sequence,
/// context fingerprint) happens client-side on collect, so a server that
/// returned damaged bytes is caught exactly like a damaged file.
class SocketMailbox : public Mailbox {
public:
  /// Connects to \p Host:\p Port. \p Retry paces reconnect-free request
  /// retries (the connection itself is not re-established; a broken
  /// socket is a hard Io error — supervise at the island level).
  [[nodiscard]] static Expected<std::unique_ptr<SocketMailbox>>
  connect(const std::string &Host, int Port,
          RetryPolicy Retry = RetryPolicy());

  ~SocketMailbox() override;

  SocketMailbox(const SocketMailbox &) = delete;
  SocketMailbox &operator=(const SocketMailbox &) = delete;

  [[nodiscard]] Expected<bool> post(const MigrantBlock &Block) override;
  [[nodiscard]] Expected<MigrantBlock> collect(int From, int To, uint64_t Seq,
                                 uint64_t ContextFingerprint,
                                 double DeadlineSeconds) override;

private:
  SocketMailbox() = default;

  /// Sends one framed request and reads one framed reply.
  [[nodiscard]] Expected<std::string> roundTrip(const std::string &Request);

  int Fd = -1;
  RetryPolicy Retry;
  std::mutex Mutex; ///< One in-flight request per connection.
};

} // namespace ca2a

#endif // CA2A_DIST_SOCKETMAILBOX_H
