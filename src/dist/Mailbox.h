//===- dist/Mailbox.h - Migrant-block transport -----------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How migrant blocks travel between islands. A Mailbox is a content-
/// addressed exchange: a block is *posted* under its (from, to, sequence)
/// key and *collected* by that exact key, so arrival timing, worker
/// counts and delivery interleavings cannot change what an island
/// receives — the key names one deterministic payload. This is the
/// property the island-model determinism guarantee rests on; transports
/// may differ in latency and failure modes but never in content.
///
/// Both operations are idempotent. Re-posting the key writes the same
/// bytes (island state is deterministic, so a resumed island regenerates
/// the identical block); re-collecting re-reads them. A killed island can
/// therefore replay its migration round after resume without coordination.
///
/// FileMailbox is the shared-directory transport: one durable file per
/// key, written through the same temp-fsync-rename-validate discipline as
/// ga/Checkpoint (including the chaos ckpt.write/ckpt.read injection
/// sites and a ".bak" sibling), collected by polling with capped backoff.
/// It works across processes and survives the death of any of them. The
/// socket transport lives in dist/SocketMailbox.h.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_DIST_MAILBOX_H
#define CA2A_DIST_MAILBOX_H

#include "ga/Checkpoint.h"
#include "support/Supervisor.h"

#include <string>

namespace ca2a {

/// Transport instrumentation (per mailbox instance).
struct MailboxStats {
  uint64_t Posts = 0;            ///< Successful post() calls.
  uint64_t Collects = 0;         ///< Successful collect() calls.
  uint64_t WriteRetries = 0;     ///< Post attempts re-run (failure/corrupt).
  uint64_t ReadRetries = 0;      ///< Transient collect read failures.
  uint64_t BackupRecoveries = 0; ///< Collects answered by the ".bak" file.
};

/// Abstract migrant transport. One instance per island; implementations
/// need not be thread-safe across islands (each island owns its own).
class Mailbox {
public:
  virtual ~Mailbox() = default;

  /// Publishes \p Block under key (FromIsland, ToIsland, Sequence).
  /// Durable and idempotent: when post() returns success, a collect() of
  /// the key — from any process, before or after a crash — yields a block
  /// that parses and validates. Errors classify as Io (the medium
  /// failed), Exhausted (retries did not produce a valid copy) or
  /// Injected (chaos, out of retries).
  [[nodiscard]] virtual Expected<bool> post(const MigrantBlock &Block) = 0;

  /// Waits for the block keyed (From, To, Seq), validates it against the
  /// route, the sequence and \p ContextFingerprint (see
  /// validateMigrantBlock) and returns it. \p DeadlineSeconds bounds the
  /// wait for a block that has not *arrived*; a block that arrived but is
  /// damaged beyond the transport's own recovery fails immediately with
  /// ErrorCode::Corrupt — a typed error, never a silent skip. A lapsed
  /// deadline classifies as ErrorCode::Timeout.
  [[nodiscard]] virtual Expected<MigrantBlock> collect(int From, int To, uint64_t Seq,
                                         uint64_t ContextFingerprint,
                                         double DeadlineSeconds) = 0;

  /// Transport instrumentation so far.
  const MailboxStats &stats() const { return Stats; }

protected:
  MailboxStats Stats;
};

/// Shared-directory transport: one file per (from, to, seq) key.
///
/// post() serialises the block, applies the chaos ckpt.write site (both
/// injected failures and payload corruption), writes durably to a temp
/// sibling, *reads it back* and re-attempts until the on-disk bytes parse
/// — so a success return means a valid copy is on stable storage even
/// under corruption injection — then renames into place, fsyncs the
/// directory and writes an identical ".bak" sibling. collect() polls with
/// capped backoff until the file appears, falling back to the ".bak" when
/// the primary is damaged (the checkpoint recovery discipline, applied to
/// transport).
class FileMailbox : public Mailbox {
public:
  /// \p Dir is created on first post if missing. \p Retry bounds
  /// transient-failure retries and paces the collect() poll.
  explicit FileMailbox(std::string Dir, RetryPolicy Retry = RetryPolicy());

  /// The primary file for a key: "<dir>/mig_f<from>_t<to>_s<seq>.blk".
  static std::string blockPath(const std::string &Dir, int From, int To,
                               uint64_t Seq);

  [[nodiscard]] Expected<bool> post(const MigrantBlock &Block) override;
  [[nodiscard]] Expected<MigrantBlock> collect(int From, int To, uint64_t Seq,
                                 uint64_t ContextFingerprint,
                                 double DeadlineSeconds) override;

private:
  std::string Dir;
  RetryPolicy Retry;
};

} // namespace ca2a

#endif // CA2A_DIST_MAILBOX_H
