//===- dist/IslandRunner.cpp - In-process island orchestration ------------===//

#include "dist/IslandRunner.h"

#include "dist/SocketMailbox.h"
#include "support/StringUtils.h"

#include <filesystem>
#include <mutex>
#include <thread>

using namespace ca2a;

const char *ca2a::transportKindName(TransportKind Kind) {
  switch (Kind) {
  case TransportKind::File:
    return "file";
  case TransportKind::Socket:
    return "socket";
  }
  return "unknown";
}

bool ca2a::parseTransportKind(const std::string &Text, TransportKind &Out) {
  if (Text == "file") {
    Out = TransportKind::File;
    return true;
  }
  if (Text == "socket") {
    Out = TransportKind::Socket;
    return true;
  }
  return false;
}

std::string ca2a::islandCheckpointPath(const std::string &Dir, int Island) {
  return (std::filesystem::path(Dir) / formatString("island%d.ckpt", Island))
      .string();
}

int ca2a::selectChampionIndex(const std::vector<IslandOutcome> &Islands) {
  assert(!Islands.empty() && "no islands to select a champion from");
  size_t Winner = 0;
  for (size_t I = 1; I != Islands.size(); ++I)
    if (Islands[I].Best.Fitness < Islands[Winner].Best.Fitness)
      Winner = I;
  return static_cast<int>(Winner);
}

Expected<bool> ca2a::postIslandResult(const std::string &MailboxDir,
                                      int Index, const Individual &Best,
                                      const GenomeDims &Dims,
                                      uint64_t ContextFingerprint,
                                      const RetryPolicy &Retry) {
  MigrantBlock Block;
  Block.FromIsland = Index;
  Block.ToIsland = Index;
  Block.Sequence = 0; // Real migration rounds are 1-based; 0 = final result.
  Block.ContextFingerprint = ContextFingerprint;
  Block.Dims = Dims;
  Block.Migrants.push_back(Best);
  FileMailbox Box(MailboxDir, Retry);
  return Box.post(Block);
}

Expected<Individual> ca2a::collectIslandResult(const std::string &MailboxDir,
                                               int Index,
                                               uint64_t ContextFingerprint,
                                               double DeadlineSeconds,
                                               const RetryPolicy &Retry) {
  FileMailbox Box(MailboxDir, Retry);
  auto Block =
      Box.collect(Index, Index, 0, ContextFingerprint, DeadlineSeconds);
  if (!Block)
    return Block.error();
  if (Block->Migrants.size() != 1)
    return makeError(ErrorCode::Corrupt,
                     formatString("island %d result block holds %zu "
                                  "individuals, expected exactly 1",
                                  Index, Block->Migrants.size()));
  return Block->Migrants.front();
}

Expected<IslandRunResult>
ca2a::runIslands(const Torus &T,
                 const std::vector<InitialConfiguration> &TrainingFields,
                 const IslandRunParams &Params, int Generations,
                 const IslandProgressFn &OnGeneration) {
  auto Topo = MigrationTopology::create(Params.Topology, Params.NumIslands);
  if (!Topo)
    return Topo.error();
  bool NeedsTransport =
      Topo->numEdges() != 0 && Params.MigrationInterval > 0;

  // Build the transport before any island starts: every mailbox must be
  // ready when the first island reaches a migration boundary.
  std::unique_ptr<SocketMailboxServer> Server;
  std::vector<std::unique_ptr<Mailbox>> Boxes(
      static_cast<size_t>(Params.NumIslands));
  if (NeedsTransport) {
    switch (Params.Transport) {
    case TransportKind::File:
      if (Params.MailboxDir.empty())
        return makeError(ErrorCode::InvalidArgument,
                         "file transport needs a mailbox directory");
      for (auto &Box : Boxes)
        Box = std::make_unique<FileMailbox>(Params.MailboxDir, Params.Retry);
      break;
    case TransportKind::Socket: {
      auto Listening = SocketMailboxServer::listen(0);
      if (!Listening)
        return Listening.error();
      Server = Listening.takeValue();
      for (auto &Box : Boxes) {
        auto Client =
            SocketMailbox::connect("127.0.0.1", Server->port(), Params.Retry);
        if (!Client)
          return Client.error();
        Box = Client.takeValue();
      }
      break;
    }
    }
  }

  // One thread per island. Each island owns a full Evolution +
  // EvalScheduler (with Params.Evo.Fitness.NumWorkers workers of its
  // own), its derived seed and its mailbox; results land in
  // island-indexed slots so thread completion order is irrelevant.
  struct Slot {
    std::unique_ptr<Island> Isl;
    Expected<Individual> Best = Error("island did not run");
  };
  std::vector<Slot> Slots(static_cast<size_t>(Params.NumIslands));
  std::mutex ProgressMutex;
  std::vector<std::thread> Threads;
  Threads.reserve(Slots.size());
  for (int I = 0; I != Params.NumIslands; ++I) {
    EvolutionParams Evo = Params.Evo;
    Evo.Seed = deriveIslandSeed(Params.Evo.Seed, I);
    IslandOptions Opts;
    Opts.Index = I;
    Opts.MigrationInterval = Params.MigrationInterval;
    Opts.MigrantCount = Params.MigrantCount;
    Opts.MigrationDeadlineSeconds = Params.MigrationDeadlineSeconds;
    if (!Params.CheckpointDir.empty())
      Opts.CheckpointPath = islandCheckpointPath(Params.CheckpointDir, I);
    Opts.Grid = Params.Grid;
    Opts.SideLength = Params.SideLength;
    Opts.Retry = Params.Retry;
    auto Created = Island::create(T, TrainingFields, Evo, *Topo, Opts,
                                  Boxes[static_cast<size_t>(I)].get());
    if (!Created) {
      // Abort islands already launched cleanly: join them before
      // reporting (their mailboxes outlive them either way).
      for (std::thread &Th : Threads)
        Th.join();
      return makeError(Created.error().code(),
                       formatString("island %d: %s", I,
                                    Created.error().message().c_str()));
    }
    Slots[static_cast<size_t>(I)].Isl = Created.takeValue();
    Threads.emplace_back([&, I] {
      Slot &S = Slots[static_cast<size_t>(I)];
      S.Best = S.Isl->run(
          Generations, [&](const GenerationStats &Stats) {
            if (!OnGeneration)
              return;
            std::lock_guard<std::mutex> Lock(ProgressMutex);
            OnGeneration(I, Stats);
          });
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  IslandRunResult Result;
  Result.Islands.reserve(Slots.size());
  for (int I = 0; I != Params.NumIslands; ++I) {
    Slot &S = Slots[static_cast<size_t>(I)];
    if (!S.Best)
      return makeError(S.Best.error().code(),
                       formatString("island %d: %s", I,
                                    S.Best.error().message().c_str()));
    IslandOutcome Out;
    Out.Index = I;
    Out.Best = *S.Best;
    Out.Generations = S.Isl->evolution().generation();
    Out.Evaluations = S.Isl->evolution().evaluations();
    Out.Migration = S.Isl->stats();
    Out.Resumed = S.Isl->resumed();
    Result.Islands.push_back(std::move(Out));
  }
  Result.ChampionIsland = selectChampionIndex(Result.Islands);
  Result.Champion =
      Result.Islands[static_cast<size_t>(Result.ChampionIsland)].Best;
  return Result;
}
