//===- dist/Island.cpp - One island of the distributed GA -----------------===//

#include "dist/Island.h"

#include "support/Hash.h"
#include "support/StringUtils.h"

#include <cinttypes>

using namespace ca2a;

uint64_t ca2a::deriveIslandSeed(uint64_t BaseSeed, int Island) {
  // Island 0 keeps the base seed so a 1-island run replays a plain
  // evolve run bit-for-bit; the others hash (base, index) into far-apart
  // streams deterministically on every host.
  if (Island == 0)
    return BaseSeed;
  Fnv1aHasher H;
  H.mixWord(BaseSeed);
  H.mixWord(static_cast<uint64_t>(Island));
  return H.value();
}

Island::Island(const Torus &T,
               std::vector<InitialConfiguration> TrainingFields,
               const EvolutionParams &EvoParams,
               const MigrationTopology &Topo, const IslandOptions &Opts)
    : TrainingFields(std::move(TrainingFields)), EvoParams(EvoParams),
      Topo(Topo), Opts(Opts), T(T) {}

Expected<std::unique_ptr<Island>>
Island::create(const Torus &T,
               std::vector<InitialConfiguration> TrainingFields,
               const EvolutionParams &Evo, const MigrationTopology &Topo,
               const IslandOptions &Opts, Mailbox *Box) {
  if (Opts.Index < 0 || Opts.Index >= Topo.numIslands())
    return makeError(ErrorCode::InvalidArgument,
                     formatString("island index %d outside the %d-island "
                                  "topology",
                                  Opts.Index, Topo.numIslands()));
  if (Opts.MigrantCount < 0)
    return makeError(ErrorCode::InvalidArgument,
                     "negative migrant count");
  if (Opts.MigrationInterval < 0)
    return makeError(ErrorCode::InvalidArgument,
                     "negative migration interval");
  bool HasEdges = !Topo.outNeighbors(Opts.Index).empty() ||
                  !Topo.inNeighbors(Opts.Index).empty();
  if (HasEdges && Opts.MigrationInterval > 0 && !Box)
    return makeError(ErrorCode::InvalidArgument,
                     "island has migration edges but no mailbox");

  std::unique_ptr<Island> I(
      new Island(T, std::move(TrainingFields), Evo, Topo, Opts));
  I->Box = Box;
  if (!Opts.CheckpointPath.empty() &&
      checkpointExists(Opts.CheckpointPath)) {
    auto Loaded = loadCheckpointWithRecovery(Opts.CheckpointPath,
                                             &I->LoadReport, Opts.Retry);
    if (!Loaded)
      return Loaded.error();
    if (auto Valid = validateCheckpoint(*Loaded, Opts.Grid,
                                        Opts.SideLength, Evo);
        !Valid)
      return makeError(
          ErrorCode::VersionMismatch,
          formatString("island %d: checkpoint '%s' belongs to a different "
                       "experiment: %s",
                       Opts.Index, Opts.CheckpointPath.c_str(),
                       Valid.error().message().c_str()));
    I->Evo = std::make_unique<Evolution>(T, std::move(I->TrainingFields),
                                         Evo, Loaded->Snapshot);
    I->Resumed = true;
  } else {
    I->Evo =
        std::make_unique<Evolution>(T, std::move(I->TrainingFields), Evo);
  }
  return Expected<std::unique_ptr<Island>>(std::move(I));
}

Expected<bool> Island::migrate(uint64_t Seq, Mailbox &Box) {
  MigrantBlock Out;
  Out.FromIsland = Opts.Index;
  Out.Sequence = Seq;
  Out.ContextFingerprint = Evo->evalContextFingerprint();
  Out.Dims = EvoParams.Dims;
  // One selection for every out-edge: all neighbours see the same block
  // content, and a post-resume replay regenerates it byte-identically.
  Out.Migrants = Evo->selectMigrants(Opts.MigrantCount);
  for (int To : Topo.outNeighbors(Opts.Index)) {
    Out.ToIsland = To;
    if (auto Posted = Box.post(Out); !Posted)
      return makeError(Posted.error().code(),
                       formatString("island %d -> %d seq %" PRIu64 ": %s",
                                    Opts.Index, To, Seq,
                                    Posted.error().message().c_str()));
    ++Stats.BlocksPosted;
  }
  // Collect in ascending neighbour order so the injection order — which
  // shapes the pool — depends on the topology alone, never on timing.
  for (int From : Topo.inNeighbors(Opts.Index)) {
    auto In = Box.collect(From, Opts.Index, Seq, Out.ContextFingerprint,
                          Opts.MigrationDeadlineSeconds);
    if (!In)
      return makeError(In.error().code(),
                       formatString("island %d <- %d seq %" PRIu64 ": %s",
                                    Opts.Index, From, Seq,
                                    In.error().message().c_str()));
    Stats.MigrantsReceived += In->Migrants.size();
    Stats.MigrantsAccepted +=
        static_cast<uint64_t>(Evo->injectMigrants(In->Migrants));
  }
  ++Stats.MigrationRounds;
  return true;
}

Expected<Individual> Island::run(
    int Generations,
    const std::function<void(const GenerationStats &)> &OnGeneration) {
  int Interval = Opts.MigrationInterval;
  bool HasEdges = !Topo.outNeighbors(Opts.Index).empty() ||
                  !Topo.inNeighbors(Opts.Index).empty();
  while (Evo->generation() < Generations) {
    int Gen = Evo->generation();
    if (HasEdges && Interval > 0 && Gen > 0 && Gen % Interval == 0) {
      if (auto Done = migrate(static_cast<uint64_t>(Gen / Interval), *Box);
          !Done)
        return Done.error();
    }
    GenerationStats Stats = Evo->stepGeneration();
    if (!Opts.CheckpointPath.empty()) {
      CheckpointData Data;
      Data.Grid = Opts.Grid;
      Data.SideLength = Opts.SideLength;
      Data.Seed = EvoParams.Seed;
      Data.Snapshot = Evo->snapshot();
      if (auto Saved = saveCheckpoint(Opts.CheckpointPath, Data, Opts.Retry);
          !Saved)
        return makeError(Saved.error().code(),
                         formatString("island %d checkpoint: %s", Opts.Index,
                                      Saved.error().message().c_str()));
    }
    if (OnGeneration)
      OnGeneration(Stats);
  }
  return Evo->bestEver();
}
