//===- dist/IslandRunner.h - In-process island orchestration ----*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives N islands to completion inside one process (one thread per
/// island) over either transport, and aggregates the champion. The
/// determinism contract: for a fixed (island count, topology, base seed,
/// migration interval, migrant count) the per-island best individuals and
/// the aggregate champion are bit-identical across worker counts per
/// island, across the file and socket transports, across thread
/// scheduling, and across kill/resume of any island — because each
/// island's trajectory is a pure function of its derived seed and the
/// content-addressed blocks it exchanges, and those blocks are pure
/// functions of island trajectories.
///
/// The same seeds and the same exchange happen when islands run as
/// separate *processes* sharing a FileMailbox directory (see
/// examples/islands.cpp --island), which is what makes the in-process
/// runner the reference implementation the multi-process deployment is
/// checked against.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_DIST_ISLANDRUNNER_H
#define CA2A_DIST_ISLANDRUNNER_H

#include "dist/Island.h"

namespace ca2a {

/// Which medium carries migrant blocks.
enum class TransportKind {
  File,   ///< Shared-directory FileMailbox (works across processes).
  Socket, ///< In-process SocketMailboxServer + per-island TCP clients.
};

const char *transportKindName(TransportKind Kind);
bool parseTransportKind(const std::string &Text, TransportKind &Out);

/// Everything runIslands needs beyond the torus and training fields.
struct IslandRunParams {
  int NumIslands = 4;
  TopologyKind Topology = TopologyKind::Ring;
  int MigrationInterval = 10;
  int MigrantCount = 3;
  double MigrationDeadlineSeconds = 120.0;
  TransportKind Transport = TransportKind::File;
  /// FileMailbox directory; required when the file transport has edges
  /// to carry. Ignored by the socket transport.
  std::string MailboxDir;
  /// Empty = no checkpointing; otherwise island i saves to
  /// islandCheckpointPath(CheckpointDir, i) after every generation.
  std::string CheckpointDir;
  /// Base evolution settings; Seed is the *base* seed — island i runs
  /// with deriveIslandSeed(Seed, i).
  EvolutionParams Evo;
  GridKind Grid = GridKind::Triangulate;
  int SideLength = 0;
  RetryPolicy Retry;
};

/// One island's final report.
struct IslandOutcome {
  int Index = 0;
  Individual Best;
  int Generations = 0;
  int Evaluations = 0;
  IslandStats Migration;
  bool Resumed = false;
};

/// The aggregate of a full island run.
struct IslandRunResult {
  std::vector<IslandOutcome> Islands; ///< In island order.
  Individual Champion;                ///< Fittest Best across islands.
  int ChampionIsland = 0;
};

/// Canonical per-island checkpoint file ("<dir>/island<i>.ckpt").
std::string islandCheckpointPath(const std::string &Dir, int Island);

/// The deterministic champion rule: lowest fitness wins, ties resolved
/// to the lowest island index (never to timing). \p Islands must be
/// non-empty and in island order.
int selectChampionIndex(const std::vector<IslandOutcome> &Islands);

/// Publishes island \p Index's final best individual into \p MailboxDir
/// as a self-addressed migrant block (route i -> i, sequence 0) — the
/// chaos-hardened durable-write path — so a multi-process deployment can
/// aggregate champions with collectIslandResult. Idempotent on re-runs.
[[nodiscard]] Expected<bool> postIslandResult(const std::string &MailboxDir, int Index,
                                const Individual &Best,
                                const GenomeDims &Dims,
                                uint64_t ContextFingerprint,
                                const RetryPolicy &Retry = RetryPolicy());

/// Reads back a postIslandResult block (with ".bak" recovery), waiting
/// up to \p DeadlineSeconds for a straggler island process to publish.
[[nodiscard]] Expected<Individual> collectIslandResult(const std::string &MailboxDir,
                                         int Index,
                                         uint64_t ContextFingerprint,
                                         double DeadlineSeconds,
                                         const RetryPolicy &Retry =
                                             RetryPolicy());

/// Observes per-generation progress; called from island threads under an
/// internal mutex, so the callback itself need not synchronise.
using IslandProgressFn =
    std::function<void(int Island, const GenerationStats &)>;

/// Runs all islands to \p Generations and aggregates. Fails with the
/// lowest-indexed island's error when any island aborts (transport,
/// checkpoint or configuration failure).
[[nodiscard]] Expected<IslandRunResult>
runIslands(const Torus &T,
           const std::vector<InitialConfiguration> &TrainingFields,
           const IslandRunParams &Params, int Generations,
           const IslandProgressFn &OnGeneration = {});

} // namespace ca2a

#endif // CA2A_DIST_ISLANDRUNNER_H
