//===- dist/Mailbox.cpp - Shared-directory migrant transport --------------===//

#include "dist/Mailbox.h"

#include "support/Chaos.h"
#include "support/File.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>

using namespace ca2a;

FileMailbox::FileMailbox(std::string Dir, RetryPolicy Retry)
    : Dir(std::move(Dir)), Retry(Retry) {}

std::string FileMailbox::blockPath(const std::string &Dir, int From, int To,
                                   uint64_t Seq) {
  return (std::filesystem::path(Dir) /
          formatString("mig_f%d_t%d_s%" PRIu64 ".blk", From, To, Seq))
      .string();
}

Expected<bool> FileMailbox::post(const MigrantBlock &Block) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return makeError(ErrorCode::Io, "cannot create mailbox directory '" +
                                        Dir + "': " + Ec.message());

  std::string Text = serializeMigrantBlock(Block);
  std::string Path =
      blockPath(Dir, Block.FromIsland, Block.ToIsland, Block.Sequence);
  std::string TmpPath = Path + ".tmp";

  // Idempotent re-post (a resumed island replays its migration round):
  // when the key already holds these exact bytes, publishing again is a
  // no-op. A *different* valid payload under the same key would mean the
  // determinism contract is broken, so that is reported loudly.
  if (auto Existing = readFile(Path); Existing && parseMigrantBlock(*Existing)) {
    if (*Existing == Text) {
      ++Stats.Posts;
      return true;
    }
    return makeError(
        ErrorCode::Corrupt,
        "mailbox key '" + Path +
            "' already holds a different valid block — two islands (or two "
            "incarnations of one) disagree about this migration round");
  }

  // Write until the bytes on disk parse. The chaos ckpt.write site may
  // corrupt the payload or fail the write on any attempt; each retry
  // starts from the pristine serialisation and draws fresh, so a success
  // return certifies a valid durable copy under any injection rate < 1.
  // MaxAttempts covers transient failures; corruption gets a wider budget
  // because a collect() cannot out-wait a sender that gave up.
  int MaxAttempts = std::max(Retry.MaxAttempts, 10);
  Error LastError = makeError("");
  for (int Attempt = 0;; ++Attempt) {
    if (Attempt >= MaxAttempts)
      return makeError(ErrorCode::Exhausted,
                       "mailbox post '" + Path + "' failed after " +
                           std::to_string(MaxAttempts) +
                           " attempts: " + LastError.message());
    if (Attempt > 0) {
      ++Stats.WriteRetries;
      backoffSleep(Retry, Attempt - 1);
    }
    std::string Attempted = Text;
    if (uint64_t Draw = chaosCorruptDraw(ChaosSite::CheckpointWrite))
      chaosCorruptPayload(Attempted, Draw);
    try {
      chaosPoint(ChaosSite::CheckpointWrite);
    } catch (const std::exception &Ex) {
      LastError = makeError(ErrorCode::Injected, Ex.what());
      continue;
    }
    if (auto Written = writeFileDurable(TmpPath, Attempted); !Written) {
      LastError = Written.error();
      continue;
    }
    // Read-back validation: only bytes that parse may be published.
    auto OnDisk = readFile(TmpPath);
    if (!OnDisk) {
      LastError = OnDisk.error();
      continue;
    }
    if (auto Parsed = parseMigrantBlock(*OnDisk); !Parsed) {
      LastError = Parsed.error();
      continue;
    }
    break;
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return makeError(ErrorCode::Io,
                     "cannot rename '" + TmpPath + "' to '" + Path + "'");
  }
  if (auto Synced = syncParentDirectory(Path); !Synced)
    return Synced.error();
  // The ".bak" sibling is the receiver's recovery path when the primary
  // rots *after* publication (bit flips, hostile tests). Written from the
  // pristine serialisation, durably, without chaos — the injection sites
  // model the primary publish path, and an unlucky backup must not be
  // able to veto an already-durable post.
  if (auto Backup = writeFileDurable(checkpointBackupPath(Path), Text);
      !Backup)
    return Backup.error();
  ++Stats.Posts;
  return true;
}

Expected<MigrantBlock> FileMailbox::collect(int From, int To, uint64_t Seq,
                                            uint64_t ContextFingerprint,
                                            double DeadlineSeconds) {
  std::string Path = blockPath(Dir, From, To, Seq);
  std::string BakPath = checkpointBackupPath(Path);
  double Start = monotonicSeconds();

  // Waiting for a neighbour is not an error path: cap the poll backoff
  // well below the write-retry ceiling so a blocked island re-checks
  // promptly and, on an oversubscribed host, yields the core to the
  // island it is waiting for instead of napping through its turn.
  RetryPolicy Poll = Retry;
  Poll.MaxDelayMicros = std::min(Poll.MaxDelayMicros, 2000);

  // One read+parse+validate pass over a candidate file. Outcomes:
  // value (done), Io/Injected (transient — poll again), Corrupt /
  // VersionMismatch (this copy is damaged; the caller tries the next).
  auto TryFile = [&](const std::string &P) -> Expected<MigrantBlock> {
    auto Text = [&]() -> Expected<std::string> {
      try {
        chaosPoint(ChaosSite::CheckpointRead);
      } catch (const std::exception &Ex) {
        return makeError(ErrorCode::Injected, Ex.what());
      }
      return readFile(P);
    }();
    if (!Text)
      return Text.error();
    auto Block = parseMigrantBlock(*Text);
    if (!Block)
      return makeError(Block.error().code(),
                       P + ": " + Block.error().message());
    if (auto Valid =
            validateMigrantBlock(*Block, From, To, Seq, ContextFingerprint);
        !Valid)
      return makeError(Valid.error().code(),
                       P + ": " + Valid.error().message());
    return Block;
  };

  for (int Attempt = 0;; ++Attempt) {
    std::error_code Ec;
    if (std::filesystem::exists(Path, Ec)) {
      auto Primary = TryFile(Path);
      if (Primary) {
        ++Stats.Collects;
        return Primary;
      }
      ErrorCode Code = Primary.error().code();
      if (Code == ErrorCode::Io || Code == ErrorCode::Injected) {
        // Transient (or a rename racing this poll): re-poll below.
        ++Stats.ReadRetries;
      } else {
        // The published block is damaged; the sender will not rewrite it
        // (post is one-shot durable), so waiting longer cannot help —
        // fall back to the ".bak" sibling now, and if that is damaged
        // too, surface the typed error rather than skipping the round.
        auto Backup = TryFile(BakPath);
        if (Backup) {
          ++Stats.Collects;
          ++Stats.BackupRecoveries;
          return Backup;
        }
        return makeError(Code, "mailbox collect failed: primary: " +
                                   Primary.error().message() +
                                   "; backup: " + Backup.error().message());
      }
    }
    if (monotonicSeconds() - Start > DeadlineSeconds)
      return makeError(
          ErrorCode::Timeout,
          formatString("mailbox collect '%s' timed out after %.1fs "
                       "(sending island dead or stalled?)",
                       Path.c_str(), DeadlineSeconds));
    backoffSleep(Poll, Attempt);
  }
}
