//===- dist/MigrationTopology.h - Island exchange graphs --------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static exchange graphs of the island-model GA (src/dist): which
/// islands send migrants to which. A topology is pure data computed once
/// from (kind, island count) — no RNG, no clock — so every island derives
/// the identical edge set independently, which is what makes migration
/// sequence numbers meaningful: edge (from, to) at round s names exactly
/// one migrant block on every host.
///
/// Kinds:
///   * none      — islands never communicate (independent-restarts mode,
///                 the baseline the ring is benchmarked against).
///   * ring      — island i sends to (i+1) mod N; diameter N-1, one
///                 in-edge and one out-edge per island. The classic
///                 island-model default: slow champion spread preserves
///                 diversity.
///   * hypercube — islands are corners of a log2(N)-cube; i exchanges
///                 with i XOR 2^b for every bit b. Requires N a power of
///                 two; diameter log2(N), so improvements spread fast.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_DIST_MIGRATIONTOPOLOGY_H
#define CA2A_DIST_MIGRATIONTOPOLOGY_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace ca2a {

/// The exchange-graph shapes runIslands understands.
enum class TopologyKind {
  None,      ///< No edges: independent islands.
  Ring,      ///< Directed cycle 0 -> 1 -> ... -> N-1 -> 0.
  Hypercube, ///< Bidirectional log2(N)-cube; N must be a power of two.
};

/// Stable lowercase name ("none", "ring", "hypercube").
const char *topologyKindName(TopologyKind Kind);

/// Parses a topologyKindName spelling; returns false on anything else.
bool parseTopologyKind(const std::string &Text, TopologyKind &Out);

/// An immutable, validated exchange graph over \p NumIslands islands.
///
/// Out-edges say where an island *sends*; in-edges where it *receives
/// from*. Both lists are sorted ascending, and every island iterates them
/// in that order, so the collect/inject order — which affects the pool —
/// is a function of the topology alone, never of delivery timing.
class MigrationTopology {
public:
  /// Builds the graph. Fails with ErrorCode::InvalidArgument when
  /// \p NumIslands < 1 or a hypercube is requested for a non-power-of-two
  /// island count.
  [[nodiscard]] static Expected<MigrationTopology> create(TopologyKind Kind,
                                            int NumIslands);

  TopologyKind kind() const { return Kind; }
  int numIslands() const { return static_cast<int>(Out.size()); }

  /// Islands that \p Island sends migrants to (sorted ascending).
  const std::vector<int> &outNeighbors(int Island) const {
    return Out[static_cast<size_t>(Island)];
  }

  /// Islands that \p Island receives migrants from (sorted ascending).
  const std::vector<int> &inNeighbors(int Island) const {
    return In[static_cast<size_t>(Island)];
  }

  /// Total directed edge count (0 means migration rounds are no-ops).
  size_t numEdges() const;

private:
  MigrationTopology() = default;

  TopologyKind Kind = TopologyKind::None;
  std::vector<std::vector<int>> Out;
  std::vector<std::vector<int>> In;
};

} // namespace ca2a

#endif // CA2A_DIST_MIGRATIONTOPOLOGY_H
