//===- dist/SocketMailbox.cpp - TCP migrant transport ---------------------===//

#include "dist/SocketMailbox.h"

#include "support/Chaos.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ca2a;

namespace {

/// Frames larger than this close the connection: the biggest legitimate
/// block (a full pool of the largest supported genomes) is far below it.
constexpr uint32_t MaxFrameBytes = 16u << 20;

// verify-lint: chaos-site(ckpt.write) faults are drawn in post(); this is
// the transport primitive running under that site's injection boundary.
bool sendAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len != 0) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

// verify-lint: chaos-site(ckpt.read) faults are drawn in collect(); this
// is the transport primitive running under that site's injection boundary.
bool recvAll(int Fd, void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  while (Len != 0) {
    ssize_t N = ::recv(Fd, P, Len, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0) // Orderly close.
      return false;
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool sendFrame(int Fd, const std::string &Payload) {
  // One send() per frame: a separate header write would form the
  // write-write-read pattern that Nagle + delayed ACK stretch into
  // ~40ms stalls per request (TCP_NODELAY below is the second guard).
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  std::string Frame;
  Frame.reserve(Payload.size() + 4);
  Frame.push_back(static_cast<char>(Len >> 24));
  Frame.push_back(static_cast<char>(Len >> 16));
  Frame.push_back(static_cast<char>(Len >> 8));
  Frame.push_back(static_cast<char>(Len));
  Frame.append(Payload);
  return sendAll(Fd, Frame.data(), Frame.size());
}

/// Request/reply framing latency matters more than loopback throughput:
/// disable Nagle coalescing on every mailbox socket.
void setNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

bool recvFrame(int Fd, std::string &Payload) {
  unsigned char Header[4];
  if (!recvAll(Fd, Header, 4))
    return false;
  uint32_t Len = (static_cast<uint32_t>(Header[0]) << 24) |
                 (static_cast<uint32_t>(Header[1]) << 16) |
                 (static_cast<uint32_t>(Header[2]) << 8) |
                 static_cast<uint32_t>(Header[3]);
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || recvAll(Fd, Payload.data(), Len);
}

} // namespace

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Expected<std::unique_ptr<SocketMailboxServer>>
SocketMailboxServer::listen(int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeError(ErrorCode::Io,
                     std::string("socket(): ") + std::strerror(errno));
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    std::string Msg = std::strerror(errno);
    ::close(Fd);
    return makeError(ErrorCode::Io, "bind(127.0.0.1:" +
                                        std::to_string(Port) + "): " + Msg);
  }
  socklen_t AddrLen = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen) != 0) {
    std::string Msg = std::strerror(errno);
    ::close(Fd);
    return makeError(ErrorCode::Io, "getsockname(): " + Msg);
  }
  if (::listen(Fd, 64) != 0) {
    std::string Msg = std::strerror(errno);
    ::close(Fd);
    return makeError(ErrorCode::Io, "listen(): " + Msg);
  }
  auto Server = std::unique_ptr<SocketMailboxServer>(new SocketMailboxServer);
  Server->ListenFd = Fd;
  Server->BoundPort = static_cast<int>(ntohs(Addr.sin_port));
  Server->Acceptor = std::thread([S = Server.get()] { S->acceptLoop(); });
  return Server;
}

SocketMailboxServer::~SocketMailboxServer() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  // Unblock accept(); connection handlers see recv() fail after the
  // per-connection shutdown below.
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (int Fd : Connections)
      ::shutdown(Fd, SHUT_RDWR);
  }
  if (Acceptor.joinable())
    Acceptor.join();
  for (std::thread &Handler : Handlers)
    if (Handler.joinable())
      Handler.join();
  for (int Fd : Connections)
    ::close(Fd);
}

void SocketMailboxServer::acceptLoop() {
  while (true) {
    // verify-lint: allow(chaos-coverage) connection plumbing, not the migrant data path — faults are modelled at the ckpt.* client sites
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      return; // Closed by the destructor (or a hard accept failure).
    }
    setNoDelay(Conn);
    std::lock_guard<std::mutex> Lock(Mutex);
    if (ShuttingDown) {
      ::close(Conn);
      return;
    }
    Connections.push_back(Conn);
    Handlers.emplace_back([this, Conn] { serveConnection(Conn); });
  }
}

void SocketMailboxServer::serveConnection(int Fd) {
  std::string Request;
  while (recvFrame(Fd, Request)) {
    if (!sendFrame(Fd, handleRequest(Request)))
      break;
  }
  // The fd is closed by the destructor (which owns the Connections list);
  // shutting down here just stops further traffic on a broken peer.
  ::shutdown(Fd, SHUT_RDWR);
}

std::string SocketMailboxServer::handleRequest(const std::string &Request) {
  if (Request.rfind("post\n", 0) == 0) {
    std::string Text = Request.substr(5);
    auto Block = parseMigrantBlock(Text);
    if (!Block)
      return "err " + Block.error().message() + "\n";
    auto Key = std::make_tuple(Block->FromIsland, Block->ToIsland,
                               Block->Sequence);
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Blocks.find(Key);
    if (It == Blocks.end()) {
      Blocks.emplace(Key, std::move(Text));
      return "ok\n";
    }
    // Idempotent re-post (an island replaying its round after resume)
    // is fine; a *different* valid payload under the same key means the
    // determinism contract is broken somewhere.
    if (It->second == Text)
      return "ok\n";
    return "err mailbox key already holds a different valid block — two "
           "islands (or two incarnations of one) disagree about this "
           "migration round\n";
  }
  if (Request.rfind("get ", 0) == 0) {
    std::vector<std::string> T = splitWhitespace(Request);
    if (T.size() != 5)
      return "err malformed get request\n";
    auto From = parseInt(T[1]);
    auto To = parseInt(T[2]);
    auto Seq = parseUnsigned(T[3]);
    auto DeadlineMillis = parseInt(T[4]);
    if (!From || !To || !Seq || !DeadlineMillis)
      return "err malformed get request numbers\n";
    auto Key = std::make_tuple(static_cast<int>(*From),
                               static_cast<int>(*To), *Seq);
    double Start = monotonicSeconds();
    double DeadlineSeconds =
        static_cast<double>(*DeadlineMillis) / 1000.0;
    // Poll rather than block on a condvar: each connection has its own
    // handler thread, and the capped backoff keeps the worst-case added
    // latency at 2ms — kept small so a waiting island yields the core
    // to the island it is waiting for on an oversubscribed host.
    RetryPolicy Poll;
    Poll.MaxDelayMicros = 2000;
    for (int Attempt = 0;; ++Attempt) {
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (ShuttingDown)
          return "err server shutting down\n";
        auto It = Blocks.find(Key);
        if (It != Blocks.end())
          return "ok\n" + It->second;
      }
      if (monotonicSeconds() - Start > DeadlineSeconds)
        return "timeout\n";
      backoffSleep(Poll, Attempt);
    }
  }
  return "err unknown request\n";
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

Expected<std::unique_ptr<SocketMailbox>>
SocketMailbox::connect(const std::string &Host, int Port, RetryPolicy Retry) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return makeError(ErrorCode::InvalidArgument,
                     "not an IPv4 address: '" + Host + "'");
  for (int Attempt = 0;; ++Attempt) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return makeError(ErrorCode::Io,
                       std::string("socket(): ") + std::strerror(errno));
    // verify-lint: allow(chaos-coverage) connection setup has its own ECONNREFUSED retry budget; data-path faults live at the ckpt.* sites
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      setNoDelay(Fd);
      auto Client = std::unique_ptr<SocketMailbox>(new SocketMailbox);
      Client->Fd = Fd;
      Client->Retry = Retry;
      return Client;
    }
    int Err = errno;
    ::close(Fd);
    // A refused connection usually means the server has not finished
    // binding yet (islands race the runner's startup); back off and
    // retry within the policy's budget.
    if (Err != ECONNREFUSED || Attempt + 1 >= Retry.MaxAttempts)
      return makeError(ErrorCode::Io, "connect(" + Host + ":" +
                                          std::to_string(Port) +
                                          "): " + std::strerror(Err));
    backoffSleep(Retry, Attempt);
  }
}

SocketMailbox::~SocketMailbox() {
  if (Fd >= 0)
    ::close(Fd);
}

Expected<std::string> SocketMailbox::roundTrip(const std::string &Request) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!sendFrame(Fd, Request))
    return makeError(ErrorCode::Io,
                     std::string("mailbox send failed: ") +
                         std::strerror(errno));
  std::string Reply;
  if (!recvFrame(Fd, Reply))
    return makeError(ErrorCode::Io,
                     "mailbox reply lost (server died or closed the "
                     "connection)");
  return Reply;
}

Expected<bool> SocketMailbox::post(const MigrantBlock &Block) {
  std::string Text = serializeMigrantBlock(Block);
  // Same publish discipline as FileMailbox::post: the chaos ckpt.write
  // site may corrupt the payload or fail the attempt, every retry starts
  // from the pristine serialisation, and the server's parse+checksum
  // validation stands in for the file transport's read-back — only bytes
  // that validate are published under the key. Without an installed
  // chaos runtime the first attempt succeeds and this is one roundTrip.
  int MaxAttempts = std::max(Retry.MaxAttempts, 10);
  Error LastError = makeError("");
  for (int Attempt = 0;; ++Attempt) {
    if (Attempt >= MaxAttempts)
      return makeError(ErrorCode::Exhausted,
                       "mailbox post failed after " +
                           std::to_string(MaxAttempts) +
                           " attempts: " + LastError.message());
    if (Attempt > 0) {
      ++Stats.WriteRetries;
      backoffSleep(Retry, Attempt - 1);
    }
    std::string Attempted = Text;
    uint64_t Draw = chaosCorruptDraw(ChaosSite::CheckpointWrite);
    if (Draw)
      chaosCorruptPayload(Attempted, Draw);
    try {
      chaosPoint(ChaosSite::CheckpointWrite);
    } catch (const std::exception &Ex) {
      LastError = makeError(ErrorCode::Injected, Ex.what());
      continue;
    }
    auto Reply = roundTrip("post\n" + Attempted);
    if (!Reply)
      return Reply.error(); // Transport down: retries cannot help.
    if (Reply->rfind("ok", 0) == 0) {
      ++Stats.Posts;
      return true;
    }
    std::string Msg =
        Reply->rfind("err ", 0) == 0
            ? std::string(trim(Reply->substr(4)))
            : std::string("unintelligible reply");
    if (Draw) {
      // The server refusing a deliberately-damaged attempt is its
      // validator doing its job; go around with the pristine bytes.
      LastError = makeError(ErrorCode::Corrupt, Msg);
      continue;
    }
    return makeError(ErrorCode::Io, "mailbox post rejected: " + Msg);
  }
}

Expected<MigrantBlock> SocketMailbox::collect(int From, int To, uint64_t Seq,
                                              uint64_t ContextFingerprint,
                                              double DeadlineSeconds) {
  double Start = monotonicSeconds();
  // A chaos ckpt.read fault is transient here exactly as it is for the
  // file transport: poll again within the caller's deadline budget. The
  // capped backoff matches FileMailbox::collect's polling policy.
  RetryPolicy Poll = Retry;
  Poll.MaxDelayMicros = std::min(Poll.MaxDelayMicros, 2000);
  auto TimedOut = [&]() {
    return makeError(
        ErrorCode::Timeout,
        formatString("mailbox collect (%d -> %d seq %" PRIu64
                     ") timed out after %.1fs "
                     "(sending island dead or stalled?)",
                     From, To, Seq, DeadlineSeconds));
  };
  Expected<std::string> Reply = std::string();
  for (int Attempt = 0;; ++Attempt) {
    double Remaining = DeadlineSeconds - (monotonicSeconds() - Start);
    if (Remaining <= 0.0)
      return TimedOut();
    try {
      chaosPoint(ChaosSite::CheckpointRead);
    } catch (const std::exception &) {
      backoffSleep(Poll, Attempt);
      continue;
    }
    std::string Request =
        formatString("get %d %d %" PRIu64 " %d\n", From, To, Seq,
                     static_cast<int>(Remaining * 1000.0));
    Reply = roundTrip(Request);
    break;
  }
  if (!Reply)
    return Reply.error();
  if (Reply->rfind("timeout", 0) == 0)
    return TimedOut();
  if (Reply->rfind("err ", 0) == 0)
    return makeError(ErrorCode::Io,
                     "mailbox collect rejected: " +
                         std::string(trim(Reply->substr(4))));
  if (Reply->rfind("ok\n", 0) != 0)
    return makeError(ErrorCode::Io, "mailbox collect: unintelligible reply");
  // Validation happens here, client-side: a server that returned damaged
  // bytes is caught exactly like a damaged file would be.
  auto Block = parseMigrantBlock(Reply->substr(3));
  if (!Block)
    return makeError(Block.error().code(),
                     "mailbox collect: " + Block.error().message());
  if (auto Valid =
          validateMigrantBlock(*Block, From, To, Seq, ContextFingerprint);
      !Valid)
    return makeError(Valid.error().code(),
                     "mailbox collect: " + Valid.error().message());
  ++Stats.Collects;
  return Block;
}
