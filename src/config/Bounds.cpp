//===- config/Bounds.cpp   - Communication-time lower bounds --------------===//

#include "config/Bounds.h"

#include "grid/Distance.h"

#include <algorithm>

using namespace ca2a;

int ca2a::maxPairwiseDistance(const Torus &T, const InitialConfiguration &C) {
  int Max = 0;
  for (size_t I = 0; I != C.Placements.size(); ++I)
    for (size_t J = I + 1; J != C.Placements.size(); ++J)
      Max = std::max(Max, gridDistance(T, C.Placements[I].Pos,
                                       C.Placements[J].Pos));
  return Max;
}

int ca2a::communicationLowerBound(const Torus &T,
                                  const InitialConfiguration &C) {
  int D = maxPairwiseDistance(T, C);
  if (D <= 1)
    return 0;
  return (D - 1 + 2) / 3; // ceil((D - 1) / 3).
}

int ca2a::stationaryLowerBound(const Torus &T,
                               const InitialConfiguration &C) {
  int D = maxPairwiseDistance(T, C);
  return D > 0 ? D - 1 : 0;
}
