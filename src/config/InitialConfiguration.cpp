//===- config/InitialConfiguration.cpp - Field generation -----------------===//

#include "config/InitialConfiguration.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace ca2a;

std::string InitialConfiguration::serialize() const {
  std::string Out;
  for (const Placement &P : Placements)
    Out += formatString("%d %d %d\n", P.Pos.X, P.Pos.Y,
                        static_cast<int>(P.Direction));
  return Out;
}

Expected<InitialConfiguration>
InitialConfiguration::deserialize(const std::string &Text) {
  InitialConfiguration C;
  for (const std::string &Line : splitString(Text, '\n')) {
    if (trim(Line).empty())
      continue;
    std::vector<std::string> Fields = splitWhitespace(Line);
    if (Fields.size() != 3)
      return makeError("configuration line needs 3 fields: '" + Line + "'");
    auto X = parseInt(Fields[0]);
    auto Y = parseInt(Fields[1]);
    auto Dir = parseUnsigned(Fields[2]);
    if (!X)
      return X.error();
    if (!Y)
      return Y.error();
    if (!Dir)
      return Dir.error();
    if (*Dir > 5)
      return makeError("direction out of range in line: '" + Line + "'");
    Placement P;
    P.Pos = Coord{static_cast<int>(*X), static_cast<int>(*Y)};
    P.Direction = static_cast<uint8_t>(*Dir);
    C.Placements.push_back(P);
  }
  if (C.Placements.empty())
    return makeError("configuration has no agents");
  return C;
}

InitialConfiguration ca2a::randomConfiguration(const Torus &T, int NumAgents,
                                               Rng &R) {
  assert(NumAgents >= 1 && NumAgents <= T.numCells() &&
         "agent count out of range");
  InitialConfiguration C;
  std::vector<uint32_t> Cells =
      R.sampleDistinct(static_cast<uint32_t>(NumAgents),
                       static_cast<uint32_t>(T.numCells()));
  C.Placements.reserve(static_cast<size_t>(NumAgents));
  for (uint32_t Cell : Cells) {
    Placement P;
    P.Pos = T.coordOf(static_cast<int>(Cell));
    P.Direction = static_cast<uint8_t>(R.uniformInt(
        static_cast<uint64_t>(T.degree())));
    C.Placements.push_back(P);
  }
  return C;
}

InitialConfiguration
ca2a::randomConfigurationAvoiding(const Torus &T, int NumAgents, Rng &R,
                                  const std::vector<Coord> &ForbiddenCells) {
  std::vector<uint8_t> Forbidden(static_cast<size_t>(T.numCells()), 0);
  for (Coord C : ForbiddenCells)
    Forbidden[static_cast<size_t>(T.indexOf(C))] = 1;
  std::vector<int> Allowed;
  Allowed.reserve(static_cast<size_t>(T.numCells()));
  for (int Cell = 0; Cell != T.numCells(); ++Cell)
    if (!Forbidden[static_cast<size_t>(Cell)])
      Allowed.push_back(Cell);
  assert(NumAgents >= 1 &&
         NumAgents <= static_cast<int>(Allowed.size()) &&
         "not enough free cells for the agents");
  std::vector<uint32_t> Picks = R.sampleDistinct(
      static_cast<uint32_t>(NumAgents), static_cast<uint32_t>(Allowed.size()));
  InitialConfiguration C;
  C.Placements.reserve(static_cast<size_t>(NumAgents));
  for (uint32_t Pick : Picks) {
    Placement P;
    P.Pos = T.coordOf(Allowed[Pick]);
    P.Direction =
        static_cast<uint8_t>(R.uniformInt(static_cast<uint64_t>(T.degree())));
    C.Placements.push_back(P);
  }
  return C;
}

std::vector<Coord> ca2a::randomObstacles(const Torus &T, int Count, Rng &R) {
  assert(Count >= 0 && Count < T.numCells() && "obstacle count out of range");
  std::vector<uint32_t> Cells = R.sampleDistinct(
      static_cast<uint32_t>(Count), static_cast<uint32_t>(T.numCells()));
  std::vector<Coord> Out;
  Out.reserve(static_cast<size_t>(Count));
  for (uint32_t Cell : Cells)
    Out.push_back(T.coordOf(static_cast<int>(Cell)));
  return Out;
}

/// West is the direction whose offset is (-1, 0): index 2 in S, 3 in T.
static uint8_t westDirection(const Torus &T) {
  return T.kind() == GridKind::Square ? 2 : 3;
}

static InitialConfiguration queueConfiguration(const Torus &T, int NumAgents,
                                               uint8_t Direction) {
  assert(NumAgents >= 1 && NumAgents <= T.sideLength() &&
         "queue cannot be longer than the field side");
  InitialConfiguration C;
  int Row = T.sideLength() / 2;
  for (int I = 0; I != NumAgents; ++I) {
    Placement P;
    P.Pos = Coord{I, Row};
    P.Direction = Direction;
    C.Placements.push_back(P);
  }
  return C;
}

InitialConfiguration ca2a::queueForwardConfiguration(const Torus &T,
                                                     int NumAgents) {
  return queueConfiguration(T, NumAgents, /*Direction=*/0); // East.
}

InitialConfiguration ca2a::queueBackwardConfiguration(const Torus &T,
                                                      int NumAgents) {
  return queueConfiguration(T, NumAgents, westDirection(T));
}

InitialConfiguration ca2a::diagonalConfiguration(const Torus &T,
                                                 int NumAgents) {
  assert(NumAgents >= 1 && NumAgents <= T.sideLength() &&
         "diagonal holds at most sideLength agents");
  InitialConfiguration C;
  // Maximal spacing along the main diagonal.
  for (int I = 0; I != NumAgents; ++I) {
    int Offset = static_cast<int>(
        (static_cast<long long>(I) * T.sideLength()) / NumAgents);
    Placement P;
    P.Pos = Coord{Offset, Offset};
    P.Direction = westDirection(T);
    C.Placements.push_back(P);
  }
  return C;
}

std::vector<InitialConfiguration>
ca2a::standardConfigurationSet(const Torus &T, int NumAgents, int NumRandom,
                               uint64_t Seed) {
  std::vector<InitialConfiguration> Set;
  NumRandom = std::max(NumRandom, 0);
  Set.reserve(static_cast<size_t>(NumRandom) + 3);
  Rng R(Seed);
  for (int I = 0; I < NumRandom; ++I)
    Set.push_back(randomConfiguration(T, NumAgents, R));
  if (NumAgents <= T.sideLength()) {
    Set.push_back(queueForwardConfiguration(T, NumAgents));
    Set.push_back(queueBackwardConfiguration(T, NumAgents));
    Set.push_back(diagonalConfiguration(T, NumAgents));
  }
  return Set;
}

InitialConfiguration ca2a::packedConfiguration(const Torus &T) {
  InitialConfiguration C;
  C.Placements.reserve(static_cast<size_t>(T.numCells()));
  for (int Cell = 0; Cell != T.numCells(); ++Cell) {
    Placement P;
    P.Pos = T.coordOf(Cell);
    P.Direction = 0;
    C.Placements.push_back(P);
  }
  return C;
}

bool ca2a::isValidConfiguration(const Torus &T,
                                const InitialConfiguration &C) {
  if (C.Placements.empty() ||
      C.Placements.size() > static_cast<size_t>(T.numCells()))
    return false;
  std::vector<uint8_t> Seen(static_cast<size_t>(T.numCells()), 0);
  for (const Placement &P : C.Placements) {
    if (P.Pos.X < 0 || P.Pos.X >= T.sideLength() || P.Pos.Y < 0 ||
        P.Pos.Y >= T.sideLength())
      return false;
    if (P.Direction >= T.degree())
      return false;
    size_t Index = static_cast<size_t>(T.indexOf(P.Pos));
    if (Seen[Index])
      return false;
    Seen[Index] = 1;
  }
  return true;
}
