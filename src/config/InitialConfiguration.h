//===- config/InitialConfiguration.h - Field generation ---------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Initial configurations (agent positions + directions) for training and
/// evaluation, Sect. 4: per agent count the paper uses N_fields = 1003
/// configurations — 1000 randomly generated plus 3 manually designed hard
/// cases that uniform synchronous agents tend not to solve:
///
///   1. a queue of agents all facing "right" (direction 0),
///   2. the same queue all facing "left" (direction opposite 0),
///   3. agents on the diagonal with maximal spacing, all facing "left".
///
/// Random configurations draw distinct cells uniformly and directions
/// uniformly from the topology's direction set, from an explicit seed so
/// that experiment sets are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_CONFIG_INITIALCONFIGURATION_H
#define CA2A_CONFIG_INITIALCONFIGURATION_H

#include "sim/World.h"
#include "support/Error.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace ca2a {

/// One initial configuration: where the k agents start.
struct InitialConfiguration {
  std::vector<Placement> Placements;

  int numAgents() const { return static_cast<int>(Placements.size()); }

  /// One line per agent: "x y direction".
  std::string serialize() const;

  /// Parses serialize() output (lines split on '\n'; blank lines ignored).
  [[nodiscard]] static Expected<InitialConfiguration> deserialize(const std::string &Text);
};

/// Uniformly random configuration: \p NumAgents distinct cells, uniform
/// directions.
InitialConfiguration randomConfiguration(const Torus &T, int NumAgents,
                                         Rng &R);

/// Random configuration avoiding \p ForbiddenCells (obstacle support):
/// agents land uniformly on the remaining cells.
InitialConfiguration
randomConfigurationAvoiding(const Torus &T, int NumAgents, Rng &R,
                            const std::vector<Coord> &ForbiddenCells);

/// \p Count random obstacle cells, reproducible via \p R; use together
/// with randomConfigurationAvoiding.
std::vector<Coord> randomObstacles(const Torus &T, int Count, Rng &R);

/// Manual design 1: a horizontal queue, all agents facing direction 0
/// (east, along the queue).
InitialConfiguration queueForwardConfiguration(const Torus &T, int NumAgents);

/// Manual design 2: the same queue, all agents facing "back" (west).
InitialConfiguration queueBackwardConfiguration(const Torus &T, int NumAgents);

/// Manual design 3: agents on the main diagonal with maximal spacing, all
/// facing west.
InitialConfiguration diagonalConfiguration(const Torus &T, int NumAgents);

/// The paper's evaluation set: \p NumRandom seeded-random configurations
/// followed by the three manual designs (so size NumRandom + 3).
/// Manual designs are skipped when NumAgents exceeds what they can place
/// (more agents than a row/diagonal holds).
std::vector<InitialConfiguration> standardConfigurationSet(const Torus &T,
                                                           int NumAgents,
                                                           int NumRandom,
                                                           uint64_t Seed);

/// Fully packed field: one agent per cell in row-major ID order, uniform
/// direction 0 — the N_agents = 256 column of Table 1.
InitialConfiguration packedConfiguration(const Torus &T);

/// True when every agent sits on a distinct in-range cell with a valid
/// direction.
bool isValidConfiguration(const Torus &T, const InitialConfiguration &C);

} // namespace ca2a

#endif // CA2A_CONFIG_INITIALCONFIGURATION_H
