//===- config/Bounds.h   - Communication-time lower bounds ------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A provable per-configuration lower bound on the communication time,
/// independent of the agents' behaviour.
///
/// Argument: track bit i on its way to agent j. After the (free) exchange
/// at t = 0 the closest holder of bit i is at grid distance at least
/// d(i, j) - 1 from agent j. Per subsequent step the holder set's distance
/// to j shrinks by at most 3: the closest holder moves one cell (-1),
/// agent j moves one cell (-1), and the exchange extends the holder set by
/// one hop (-1). Success at time t needs that distance to reach 0, so
///
///     t_comm >= ceil((max_{i != j} d(i, j) - 1) / 3).
///
/// The bound is behaviour-free: it holds for every FSM, every colour
/// strategy and every conflict outcome, which makes it an oracle for
/// property tests and a context line for the experiment reports (the
/// diameter-derived packed-field time is the special case where nobody
/// can move and the factor 3 collapses to 1).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_CONFIG_BOUNDS_H
#define CA2A_CONFIG_BOUNDS_H

#include "config/InitialConfiguration.h"

namespace ca2a {

/// Largest pairwise grid distance among the agents of \p C.
int maxPairwiseDistance(const Torus &T, const InitialConfiguration &C);

/// The behaviour-free lower bound ceil((maxPairDistance - 1) / 3);
/// 0 for a single agent.
int communicationLowerBound(const Torus &T, const InitialConfiguration &C);

/// Lower bound for *immobile* agents (e.g. the packed field): information
/// travels one hop per step with no carrier movement, so
/// t_comm >= maxPairDistance - 1.
int stationaryLowerBound(const Torus &T, const InitialConfiguration &C);

} // namespace ca2a

#endif // CA2A_CONFIG_BOUNDS_H
