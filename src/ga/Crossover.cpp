//===- ga/Crossover.cpp - Classical crossover operators -------------------===//

#include "ga/Crossover.h"

using namespace ca2a;

Genome ca2a::crossoverOnePoint(const Genome &A, const Genome &B, Rng &R) {
  assert(A.dims() == B.dims() && "crossover needs equal dimensions");
  int Length = A.length();
  int Cut = 1 + static_cast<int>(R.uniformInt(
                    static_cast<uint64_t>(Length - 1)));
  Genome Child(A.dims());
  for (int I = 0; I != Length; ++I)
    Child.slot(I) = I < Cut ? A.slot(I) : B.slot(I);
  return Child;
}

Genome ca2a::crossoverUniform(const Genome &A, const Genome &B, Rng &R) {
  assert(A.dims() == B.dims() && "crossover needs equal dimensions");
  Genome Child(A.dims());
  for (int I = 0, E = A.length(); I != E; ++I)
    Child.slot(I) = R.bernoulli(0.5) ? A.slot(I) : B.slot(I);
  return Child;
}
