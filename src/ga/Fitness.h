//===- ga/Fitness.h - Fitness evaluation over field sets --------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's fitness function (Sect. 4):
///
///   F_i = W * (N_agents - a_i) + t_comm,i      with W = 10^4,
///
/// where a_i is the number of informed agents at termination of initial
/// configuration i and t_comm,i the communication time (for an
/// unsuccessful run, t_comm,i is the cutoff t_max). The dominance weight W
/// makes any FSM that informs more agents strictly better than one that
/// informs fewer, regardless of time. The reported fitness is the average
/// of F_i over the configuration set; lower is better.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_FITNESS_H
#define CA2A_GA_FITNESS_H

#include "config/InitialConfiguration.h"
#include "sim/BatchEngine.h"

#include <vector>

namespace ca2a {

/// Knobs of one fitness evaluation.
struct FitnessParams {
  SimOptions Sim;            ///< MaxSteps / start states / colour switch.
  double Weight = 1e4;       ///< The dominance weight W.
  /// Threads for the per-field loop. Honoured by both engines; results are
  /// bit-identical for every value (per-field result slots are reduced
  /// sequentially in field order).
  size_t NumWorkers = 1;
  /// Which engine simulates the fields. Batch is bit-identical to the
  /// reference (the differential suite enforces it) but several times
  /// faster, so fitness numbers do not depend on this switch.
  EngineKind Engine = EngineKind::Reference;
  /// SIMD lane kernel for the batch engine's fast path (ignored by the
  /// reference engine). Every backend is bit-identical, so fitness numbers
  /// do not depend on this switch either.
  SimdBackend Backend = SimdBackend::Auto;
};

/// Aggregate outcome of evaluating one genome on a field set.
struct FitnessResult {
  double Fitness = 0.0;          ///< Mean F_i (lower is better).
  double MeanCommTime = 0.0;     ///< Mean t_comm over *successful* fields.
  int SolvedFields = 0;          ///< Fields where all agents got informed.
  int NumFields = 0;

  /// The paper's "completely successful": solved every field in the set.
  bool completelySuccessful() const {
    return NumFields > 0 && SolvedFields == NumFields;
  }
};

/// Evaluates \p G by simulating every configuration of \p Fields on \p T.
FitnessResult evaluateFitness(const Genome &G, const Torus &T,
                              const std::vector<InitialConfiguration> &Fields,
                              const FitnessParams &Params);

/// The fitness contribution of a single finished run.
double fitnessOfRun(const SimResult &Result, int MaxSteps, double Weight);

/// Reduces per-field results (in field order, one slot per field) to a
/// FitnessResult. The sequential field-order summation is the canonical
/// floating-point grouping every evaluation path must reproduce.
FitnessResult accumulateFitness(const std::vector<SimResult> &Results,
                                int MaxSteps, double Weight);

} // namespace ca2a

#endif // CA2A_GA_FITNESS_H
