//===- ga/EvalScheduler.cpp - Generation-wide fitness scheduler -----------===//

#include "ga/EvalScheduler.h"

#include "config/Bounds.h"
#include "support/Chaos.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>

using namespace ca2a;

namespace {

/// Hashes a double by bit pattern (deterministic; fitness parameters are
/// set, not computed, so -0.0/NaN aliasing is not a concern here).
void mixDouble(Fnv1aHasher &H, double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "double is not 64-bit");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  H.mixWord(Bits);
}

/// Memo key: the scheduler context folded with the genome content hash.
uint64_t memoKey(uint64_t ContextHash, const Genome &G) {
  return (ContextHash ^ G.hashValue()) * Fnv1aPrime;
}

} // namespace

EvalScheduler::EvalScheduler(const Torus &T,
                             const std::vector<InitialConfiguration> &Fields,
                             const FitnessParams &Fitness,
                             const SchedulerParams &Params)
    : T(T), Fields(Fields), Fitness(Fitness), Params(Params) {
  // Fingerprint everything besides the genome that decides a
  // FitnessResult. NumWorkers, Engine and Backend are deliberately
  // excluded: all three are bit-identical execution knobs (enforced by the
  // differential suite and FitnessTest), so results may be shared across
  // them.
  Fnv1aHasher H;
  H.mixWord(static_cast<uint64_t>(T.kind()));
  H.mixWord(static_cast<uint64_t>(T.sideLength()));
  const SimOptions &Sim = Fitness.Sim;
  H.mixWord(static_cast<uint64_t>(Sim.MaxSteps));
  H.mixWord(static_cast<uint64_t>(Sim.Start.M));
  H.mixWord(Sim.Start.UniformValue);
  H.mixWord(Sim.ColorsEnabled ? 1 : 0);
  H.mixWord(static_cast<uint64_t>(Sim.Arbitration));
  H.mixWord(Sim.Bordered ? 1 : 0);
  H.mixWord(Sim.Obstacles.size());
  for (const Coord &C : Sim.Obstacles) {
    H.mixWord(static_cast<uint64_t>(C.X));
    H.mixWord(static_cast<uint64_t>(C.Y));
  }
  mixDouble(H, Sim.Faults.StallProbability);
  mixDouble(H, Sim.Faults.DeathProbability);
  mixDouble(H, Sim.Faults.LinkDropProbability);
  mixDouble(H, Sim.Faults.ColorFlipProbability);
  H.mixWord(Sim.Faults.Seed);
  // A LinkFilter's behaviour cannot be fingerprinted; mixing its presence
  // at least separates filtered contexts from unfiltered ones.
  H.mixWord(Sim.Faults.LinkFilter ? 1 : 0);
  mixDouble(H, Fitness.Weight);
  H.mixWord(Fields.size());
  for (const InitialConfiguration &Field : Fields) {
    H.mixWord(Field.Placements.size());
    for (const Placement &P : Field.Placements) {
      H.mixWord(static_cast<uint64_t>(P.Pos.X));
      H.mixWord(static_cast<uint64_t>(P.Pos.Y));
      H.mixWord(P.Direction);
    }
  }
  ContextHash = H.value();

  // Per-field certified lower bound on F_i. A success needs t_comm >= the
  // behaviour-free communication bound; any failure (or any agent death,
  // under faults) leaves at least one agent uninformed and costs >= W.
  FieldBounds.reserve(Fields.size());
  for (const InitialConfiguration &Field : Fields) {
    double Bound = std::min(
        static_cast<double>(communicationLowerBound(T, Field)),
        Fitness.Weight);
    FieldBounds.push_back(std::max(Bound, 0.0));
    TotalFieldBound += FieldBounds.back();
  }
}

const FitnessResult *EvalScheduler::cacheLookup(uint64_t Key,
                                                const Genome &G) {
  if (Params.CacheCapacity == 0)
    return nullptr;
  auto Range = CacheIndex.equal_range(Key);
  for (auto It = Range.first; It != Range.second; ++It) {
    if (It->second->G != G)
      continue; // 64-bit hash collision; keep looking.
    CacheList.splice(CacheList.begin(), CacheList, It->second);
    return &CacheList.front().Result;
  }
  return nullptr;
}

void EvalScheduler::cacheInsert(uint64_t Key, const Genome &G,
                                const FitnessResult &Result) {
  if (Params.CacheCapacity == 0)
    return;
  CacheList.push_front(CacheEntry{Key, G, Result});
  CacheIndex.emplace(Key, CacheList.begin());
  if (CacheList.size() <= Params.CacheCapacity)
    return;
  auto Last = std::prev(CacheList.end());
  auto Range = CacheIndex.equal_range(Last->Key);
  for (auto It = Range.first; It != Range.second; ++It) {
    if (It->second == Last) {
      CacheIndex.erase(It);
      break;
    }
  }
  CacheList.pop_back();
}

FitnessResult EvalScheduler::evaluate(const Genome &G) {
  std::vector<const Genome *> One{&G};
  return evaluateGeneration(One, {})[0].Result;
}

std::vector<EvalOutcome>
EvalScheduler::evaluateGeneration(const std::vector<const Genome *> &Genomes,
                                  const std::vector<double> &Incumbents) {
  const size_t NumGenomes = Genomes.size();
  const size_t NumFields = Fields.size();
  std::vector<EvalOutcome> Out(NumGenomes);
  Stats.Requests += NumGenomes;
  if (NumFields == 0 || NumGenomes == 0)
    return Out; // Default FitnessResult matches evaluateFitness's.

  // Resolve the memo cache and intra-request duplicates: one work slot
  // per distinct uncached genome, remembering every request it answers.
  struct WorkItem {
    const Genome *G = nullptr;
    uint64_t Key = 0;
    std::vector<size_t> Requests;
  };
  std::vector<WorkItem> Work;
  std::unordered_map<uint64_t, size_t> WorkByKey;
  for (size_t I = 0; I != NumGenomes; ++I) {
    const Genome &G = *Genomes[I];
    uint64_t Key = memoKey(ContextHash, G);
    if (const FitnessResult *Hit = cacheLookup(Key, G)) {
      Out[I] = EvalOutcome{*Hit, false, true};
      ++Stats.CacheHits;
      continue;
    }
    auto It = WorkByKey.find(Key);
    if (It != WorkByKey.end() && *Work[It->second].G == G) {
      Work[It->second].Requests.push_back(I);
      ++Stats.CacheHits; // Duplicate within the request: answered once.
      continue;
    }
    Work.push_back(WorkItem{&G, Key, {I}});
    if (It == WorkByKey.end())
      WorkByKey.emplace(Key, Work.size() - 1);
  }
  if (Work.empty())
    return Out;
  const size_t NumWork = Work.size();
  ++Stats.Batches;

  // Chaos site: the generation-wide submission itself. A transient
  // failure here (a scheduler that cannot reach its backend) is retried;
  // exhaustion degrades to proceeding anyway — the per-item supervision
  // below owns the real work, and an evaluation layer that aborts a whole
  // generation over an infrastructure hiccup would be worse than one that
  // limps through it.
  try {
    runWithRetry(
        Params.Retry, [] { chaosPoint(ChaosSite::SchedulerBatch); },
        [&](int) { ++Stats.TaskRetries; });
  } catch (...) {
    ++Stats.TaskRetries;
  }

  // Survival threshold: a bounded max-heap of the N best exactly-known
  // fitness *sums* (N = incumbent count, the pool's capacity). Its top is
  // the N-th best candidate so far; a genome whose certified bound
  // exceeds it is beaten by >= N distinct candidates and cannot survive
  // sort/dedup/truncate. Comparisons happen in sum units with 0.5 slack
  // (see the header) so mean-to-sum rounding can never prune unsoundly.
  const bool AllowPrune = !Params.ExactFitness && !Incumbents.empty();
  std::priority_queue<double> Heap;
  if (AllowPrune)
    for (double MeanFitness : Incumbents)
      Heap.push(MeanFitness * static_cast<double>(NumFields));

  struct GenomeProgress {
    double PartialSum = 0.0;  ///< Exact F_i sum of completed fields.
    double RemainingLB = 0.0; ///< Bound sum of not-yet-completed fields.
    double SolvedTimeSum = 0.0;
    size_t FieldsDone = 0;
    size_t Failed = 0; ///< Fields quarantined after exhausting retries.
    int Solved = 0;
    bool Cancelled = false;
  };
  std::vector<GenomeProgress> Progress(NumWork);
  for (GenomeProgress &P : Progress)
    P.RemainingLB = TotalFieldBound;

  // Work items interleave field-major (item = field * NumWork + work) so
  // early fields of every genome complete first and the partial-sum
  // signal builds before later fields are scheduled.
  const size_t NumItems = NumWork * NumFields;
  size_t NumWorkers = std::max<size_t>(1, Fitness.NumWorkers);
  NumWorkers = std::min(NumWorkers, NumItems);

  // Generation watchdog: every completed item heartbeats; a full deadline
  // interval with none is a stall (hung worker, livelocked backend). The
  // monitor thread and all clock reads live inside Watchdog — this
  // translation unit stays chrono-free (scripts/lint_determinism.py).
  Watchdog Dog(Params.GenerationDeadlineSeconds, Params.OnStall);

  // Both hooks run under one mutex; they may be called from engine worker
  // threads. Contention is negligible against a full field simulation.
  std::mutex Mutex;
  auto OnItemResult = [&](size_t W, size_t F, const SimResult &R) {
    Dog.heartbeat();
    std::lock_guard<std::mutex> Lock(Mutex);
    GenomeProgress &P = Progress[W];
    P.PartialSum += fitnessOfRun(R, Fitness.Sim.MaxSteps, Fitness.Weight);
    P.RemainingLB -= FieldBounds[F];
    ++P.FieldsDone;
    if (R.Success) {
      ++P.Solved;
      P.SolvedTimeSum += static_cast<double>(R.TComm);
    }
    if (!AllowPrune)
      return;
    // A completed genome is a new exact candidate: tighten the threshold.
    if (P.FieldsDone == NumFields && !P.Cancelled &&
        P.PartialSum < Heap.top()) {
      Heap.pop();
      Heap.push(P.PartialSum);
    }
    double ThresholdSum = Heap.top();
    for (GenomeProgress &Other : Progress)
      if (!Other.Cancelled && Other.FieldsDone < NumFields &&
          Other.PartialSum + Other.RemainingLB > ThresholdSum + 0.5)
        Other.Cancelled = true;
  };
  auto ShouldSkipItem = [&](size_t W) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Progress[W].Cancelled;
  };
  // Quarantine: the item failed every retry attempt. Its field keeps its
  // behaviour-free bound inside RemainingLB (we measured nothing, so the
  // bound is all we certifiably know), the genome is marked degraded, and
  // the run continues — a persistent per-item fault must never abort a
  // generation. The bound also keeps the pruning arithmetic sound: the
  // genome's PartialSum + RemainingLB is still a true lower bound.
  auto OnItemFailure = [&](size_t W) {
    Dog.heartbeat(); // Quarantine is progress too, not silence.
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Progress[W].Failed;
  };

  std::vector<SimResult> ItemResults;
  if (Fitness.Engine == EngineKind::Batch) {
    // Submission stays field-major (replica F*NumWork+W = work item W on
    // field F): the bound-based pruning below needs every genome's early
    // fields finished before its late ones, and the memo cache has
    // already deduplicated (genome, field) pairs — so these batches
    // carry no clone structure for rmaj64's slab grouping to exploit
    // (EngineSlabsFormed == EngineSlabLanes when that backend runs).
    // Replica-averaging callers that DO want slab sharing submit their
    // clone batches to BatchEngine directly (the shape of the fault-trial
    // sweeps in bench/bench_faults.cpp: one field, many fault seeds).
    std::vector<BatchReplica> Replicas(NumItems);
    for (size_t F = 0; F != NumFields; ++F)
      for (size_t W = 0; W != NumWork; ++W) {
        BatchReplica &Replica = Replicas[F * NumWork + W];
        Replica.A = Work[W].G;
        Replica.Placements = &Fields[F].Placements;
        Replica.Options = &Fitness.Sim;
      }
    BatchEngine Engine(T);
    BatchRunOptions RunOptions;
    RunOptions.NumWorkers = NumWorkers;
    RunOptions.Backend = Fitness.Backend;
    if (AllowPrune) {
      RunOptions.ShouldSkip = [&](int Replica) {
        return ShouldSkipItem(static_cast<size_t>(Replica) % NumWork);
      };
    }
    RunOptions.OnResult = [&](int Replica, const SimResult &R) {
      size_t I = static_cast<size_t>(Replica);
      OnItemResult(I % NumWork, I / NumWork, R);
    };
    RunOptions.Retry = Params.Retry;
    RunOptions.OnFailure = [&](int Replica) {
      OnItemFailure(static_cast<size_t>(Replica) % NumWork);
    };
    BatchRunStats RunStats;
    RunOptions.Stats = &RunStats;
    ItemResults = Engine.run(Replicas, RunOptions);
    Stats.EngineCompileHits += RunStats.CompileHits;
    Stats.EngineCompileMisses += RunStats.CompileMisses;
    Stats.EngineAllocations += RunStats.Allocations;
    Stats.EngineSteadyAllocations += RunStats.SteadyAllocations;
    Stats.EngineSlabsFormed += RunStats.SlabsFormed;
    Stats.EngineSlabLanes += RunStats.SlabLanesEnrolled;
    Stats.EngineLanesRetiredEarly += RunStats.LanesRetiredEarly;
    Stats.TaskRetries += RunStats.TaskRetries;
  } else {
    // Reference engine: the same interleaved item list swept by
    // work-stealing workers, each reusing one lazily-built World. Per-item
    // result slots keep the reduction order (and thus the fitness sums)
    // identical for every worker count.
    ItemResults.resize(NumItems);
    std::vector<std::unique_ptr<World>> Worlds(NumWorkers);
    std::atomic<uint64_t> RefRetries{0};
    parallelForDynamic(NumItems, NumWorkers, [&](size_t Worker, size_t I) {
      size_t W = I % NumWork, F = I / NumWork;
      if (AllowPrune && ShouldSkipItem(W))
        return; // Slot keeps the default (skipped) SimResult.
      // Supervised region: only the injection site can throw (the World
      // simulation itself is no-throw by construction), so a retry never
      // observes partially-written state. An item that exhausts every
      // attempt is quarantined; its slot keeps the default SimResult.
      for (int Retry = 0;; ++Retry) {
        try {
          chaosPoint(ChaosSite::EngineReplica);
          break;
        } catch (...) {
          if (Retry + 1 >= Params.Retry.MaxAttempts) {
            OnItemFailure(W);
            return;
          }
          RefRetries.fetch_add(1, std::memory_order_relaxed);
          backoffSleep(Params.Retry, Retry);
        }
      }
      if (!Worlds[Worker])
        Worlds[Worker] = std::make_unique<World>(T);
      World &Wld = *Worlds[Worker];
      Wld.reset(*Work[W].G, Fields[F].Placements, Fitness.Sim);
      ItemResults[I] = Wld.run();
      OnItemResult(W, F, ItemResults[I]);
    });
    Stats.TaskRetries += RefRetries.load(std::memory_order_relaxed);
  }

  Stats.WatchdogStalls += Dog.stalls();

  // Reduce. Completed genomes get the canonical field-order accumulation
  // (bit-identical to evaluateFitness) and enter the cache; pruned ones
  // report their certified bound and never do; degraded ones (quarantined
  // fields, no cancellation) also report the bound — exact where measured,
  // behaviour-free where not — and are flagged so the caller knows the
  // value is pessimistic and must be confirmed before the genome is kept.
  std::vector<SimResult> FieldResults(NumFields);
  for (size_t W = 0; W != NumWork; ++W) {
    const GenomeProgress &P = Progress[W];
    EvalOutcome Outcome;
    if (P.FieldsDone == NumFields) {
      for (size_t F = 0; F != NumFields; ++F)
        FieldResults[F] = ItemResults[F * NumWork + W];
      Outcome.Result = accumulateFitness(FieldResults, Fitness.Sim.MaxSteps,
                                         Fitness.Weight);
      cacheInsert(Work[W].Key, *Work[W].G, Outcome.Result);
      ++Stats.GenomesSimulated;
      Stats.FieldsSimulated += NumFields;
    } else {
      assert((P.Cancelled || P.Failed != 0) &&
             "incomplete genome that was neither cancelled nor degraded");
      if (P.Cancelled)
        ++Stats.GenomesPruned;
      else
        ++Stats.GenomesDegraded;
      Outcome.Pruned = P.Cancelled;
      Outcome.Degraded = !P.Cancelled;
      Outcome.Result.NumFields = static_cast<int>(NumFields);
      Outcome.Result.SolvedFields = P.Solved;
      Outcome.Result.MeanCommTime =
          P.Solved ? P.SolvedTimeSum / static_cast<double>(P.Solved) : 0.0;
      Outcome.Result.Fitness =
          (P.PartialSum + P.RemainingLB) / static_cast<double>(NumFields);
      Stats.FieldsSimulated += P.FieldsDone;
      Stats.FieldsPruned += NumFields - P.FieldsDone - P.Failed;
      Stats.ItemsQuarantined += P.Failed;
    }
    for (size_t Request : Work[W].Requests)
      Out[Request] = Outcome;
  }
  return Out;
}
