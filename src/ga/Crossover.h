//===- ga/Crossover.h - Classical crossover operators -----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "classical crossover" the authors experimented with before settling
/// on mutation-only variation (Sect. 4: "Then we found that mutation only
/// gave us similar good results"). Provided so the design choice can be
/// ablated: Evolution can mix crossover into offspring production, and
/// bench_ga_ablation compares the two settings under equal budgets.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_CROSSOVER_H
#define CA2A_GA_CROSSOVER_H

#include "agent/Genome.h"
#include "support/Rng.h"

namespace ca2a {

/// One-point crossover over the 32 genome slots: the child takes slots
/// [0, Cut) from \p A and [Cut, 32) from \p B, Cut uniform in [1, 31].
Genome crossoverOnePoint(const Genome &A, const Genome &B, Rng &R);

/// Uniform crossover: each slot comes from \p A or \p B by a fair coin.
Genome crossoverUniform(const Genome &A, const Genome &B, Rng &R);

} // namespace ca2a

#endif // CA2A_GA_CROSSOVER_H
