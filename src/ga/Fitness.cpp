//===- ga/Fitness.cpp - Fitness evaluation over field sets ----------------===//

#include "ga/Fitness.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace ca2a;

double ca2a::fitnessOfRun(const SimResult &Result, int MaxSteps,
                          double Weight) {
  int Uninformed = Result.NumAgents - Result.InformedAgents;
  int Time = Result.Success ? Result.TComm : MaxSteps;
  return Weight * static_cast<double>(Uninformed) + static_cast<double>(Time);
}

FitnessResult
ca2a::accumulateFitness(const std::vector<SimResult> &Results, int MaxSteps,
                        double Weight) {
  FitnessResult Out;
  Out.NumFields = static_cast<int>(Results.size());
  if (Results.empty())
    return Out;
  double FitnessSum = 0.0, SolvedTimeSum = 0.0;
  for (const SimResult &Result : Results) {
    FitnessSum += fitnessOfRun(Result, MaxSteps, Weight);
    if (Result.Success) {
      ++Out.SolvedFields;
      SolvedTimeSum += static_cast<double>(Result.TComm);
    }
  }
  Out.Fitness = FitnessSum / static_cast<double>(Results.size());
  Out.MeanCommTime =
      Out.SolvedFields ? SolvedTimeSum / static_cast<double>(Out.SolvedFields)
                       : 0.0;
  return Out;
}

FitnessResult
ca2a::evaluateFitness(const Genome &G, const Torus &T,
                      const std::vector<InitialConfiguration> &Fields,
                      const FitnessParams &Params) {
  FitnessResult Out;
  Out.NumFields = static_cast<int>(Fields.size());
  if (Fields.empty())
    return Out;

  size_t NumWorkers = std::max<size_t>(1, Params.NumWorkers);
  NumWorkers = std::min(NumWorkers, Fields.size());

  // Both engines fill one result slot per field and reduce sequentially in
  // field order below, so the fitness is bit-identical for every worker
  // count and engine choice (the chunk geometry used to regroup the
  // floating-point sums, which made the reference path's result depend on
  // NumWorkers in the last ulp).
  std::vector<SimResult> Results;
  if (Params.Engine == EngineKind::Batch) {
    // One replica per field; the engine owns the fan-out.
    std::vector<BatchReplica> Replicas(Fields.size());
    for (size_t I = 0; I != Fields.size(); ++I) {
      Replicas[I].A = &G;
      Replicas[I].Placements = &Fields[I].Placements;
      Replicas[I].Options = &Params.Sim;
    }
    BatchEngine Engine(T);
    BatchRunOptions RunOptions;
    RunOptions.NumWorkers = NumWorkers;
    RunOptions.Backend = Params.Backend;
    Results = Engine.run(Replicas, RunOptions);
  } else {
    // Work-stealing sweep: each worker reuses one World (engines are not
    // shareable across workers) and pulls fields from a shared counter,
    // so one slow field no longer idles the rest of its fixed chunk.
    Results.resize(Fields.size());
    std::vector<std::unique_ptr<World>> Worlds(NumWorkers);
    parallelForDynamic(Fields.size(), NumWorkers,
                       [&](size_t Worker, size_t I) {
                         if (!Worlds[Worker])
                           Worlds[Worker] = std::make_unique<World>(T);
                         World &W = *Worlds[Worker];
                         W.reset(G, Fields[I].Placements, Params.Sim);
                         Results[I] = W.run();
                       });
  }
  return accumulateFitness(Results, Params.Sim.MaxSteps, Params.Weight);
}
