//===- ga/Fitness.cpp - Fitness evaluation over field sets ----------------===//

#include "ga/Fitness.h"

#include "support/ThreadPool.h"

#include <algorithm>

using namespace ca2a;

double ca2a::fitnessOfRun(const SimResult &Result, int MaxSteps,
                          double Weight) {
  int Uninformed = Result.NumAgents - Result.InformedAgents;
  int Time = Result.Success ? Result.TComm : MaxSteps;
  return Weight * static_cast<double>(Uninformed) + static_cast<double>(Time);
}

namespace {
/// Per-worker accumulator: own World (engines are not shareable) plus sums.
struct ChunkAccumulator {
  double FitnessSum = 0.0;
  double SolvedTimeSum = 0.0;
  int Solved = 0;
};
} // namespace

FitnessResult
ca2a::evaluateFitness(const Genome &G, const Torus &T,
                      const std::vector<InitialConfiguration> &Fields,
                      const FitnessParams &Params) {
  FitnessResult Out;
  Out.NumFields = static_cast<int>(Fields.size());
  if (Fields.empty())
    return Out;

  size_t NumWorkers = std::max<size_t>(1, Params.NumWorkers);
  NumWorkers = std::min(NumWorkers, Fields.size());

  if (Params.Engine == EngineKind::Batch) {
    // One replica per field; the engine owns the fan-out. Results come
    // back in field order, so the accumulation below is deterministic
    // (and identical to the reference path's NumWorkers=1 order).
    std::vector<BatchReplica> Replicas(Fields.size());
    for (size_t I = 0; I != Fields.size(); ++I) {
      Replicas[I].A = &G;
      Replicas[I].Placements = &Fields[I].Placements;
      Replicas[I].Options = &Params.Sim;
    }
    BatchEngine Engine(T);
    BatchRunOptions RunOptions;
    RunOptions.NumWorkers = NumWorkers;
    std::vector<SimResult> Results = Engine.run(Replicas, RunOptions);
    double FitnessSum = 0.0, SolvedTimeSum = 0.0;
    for (const SimResult &Result : Results) {
      FitnessSum += fitnessOfRun(Result, Params.Sim.MaxSteps, Params.Weight);
      if (Result.Success) {
        ++Out.SolvedFields;
        SolvedTimeSum += static_cast<double>(Result.TComm);
      }
    }
    Out.Fitness = FitnessSum / static_cast<double>(Fields.size());
    Out.MeanCommTime =
        Out.SolvedFields
            ? SolvedTimeSum / static_cast<double>(Out.SolvedFields)
            : 0.0;
    return Out;
  }

  size_t ChunkSize = (Fields.size() + NumWorkers - 1) / NumWorkers;
  size_t NumChunks = (Fields.size() + ChunkSize - 1) / ChunkSize;

  std::vector<ChunkAccumulator> Accumulators(NumChunks);
  parallelFor(NumChunks, NumWorkers, [&](size_t Chunk) {
    World W(T);
    ChunkAccumulator &Acc = Accumulators[Chunk];
    size_t Begin = Chunk * ChunkSize;
    size_t End = std::min(Begin + ChunkSize, Fields.size());
    for (size_t I = Begin; I != End; ++I) {
      W.reset(G, Fields[I].Placements, Params.Sim);
      SimResult Result = W.run();
      Acc.FitnessSum +=
          fitnessOfRun(Result, Params.Sim.MaxSteps, Params.Weight);
      if (Result.Success) {
        ++Acc.Solved;
        Acc.SolvedTimeSum += static_cast<double>(Result.TComm);
      }
    }
  });

  double FitnessSum = 0.0, SolvedTimeSum = 0.0;
  for (const ChunkAccumulator &Acc : Accumulators) {
    FitnessSum += Acc.FitnessSum;
    SolvedTimeSum += Acc.SolvedTimeSum;
    Out.SolvedFields += Acc.Solved;
  }
  Out.Fitness = FitnessSum / static_cast<double>(Fields.size());
  Out.MeanCommTime =
      Out.SolvedFields ? SolvedTimeSum / static_cast<double>(Out.SolvedFields)
                       : 0.0;
  return Out;
}
