//===- ga/Pipeline.cpp - The paper's full selection pipeline --------------===//

#include "ga/Pipeline.h"

#include "ga/Checkpoint.h"

#include <algorithm>
#include <optional>

using namespace ca2a;

int PipelineResult::numReliable() const {
  int Count = 0;
  for (const RankedCandidate &C : Candidates)
    Count += C.reliable() ? 1 : 0;
  return Count;
}

PipelineResult ca2a::runSelectionPipeline(
    const Torus &T, const PipelineParams &Params,
    const std::function<void(const PipelineProgress &)> &OnProgress) {
  assert(Params.NumRuns >= 1 && "need at least one optimisation run");
  assert(Params.TopPerRun >= 1 && "need at least one candidate per run");

  auto Emit = [&](PipelineProgress P) {
    if (OnProgress)
      OnProgress(P);
  };

  std::vector<InitialConfiguration> TrainingFields = standardConfigurationSet(
      T, Params.TrainingAgents, Params.TrainingRandomFields,
      Params.TrainingFieldSeed);

  // Stage 1+2: independent runs, candidate extraction.
  std::vector<RankedCandidate> Candidates;
  SchedulerStats SchedTotals;
  for (int Run = 0; Run != Params.NumRuns; ++Run) {
    PipelineProgress Start;
    Start.S = PipelineProgress::Stage::RunStarted;
    Start.Run = Run;
    Emit(Start);

    EvolutionParams RunParams = Params.Evolution;
    RunParams.Fitness.Engine = Params.Engine;
    RunParams.Fitness.Backend = Params.Backend;
    RunParams.Seed = Params.Evolution.Seed * 6364136223846793005ULL +
                     static_cast<uint64_t>(Run) + 1;

    auto EmitCheckpointEvent = [&](PipelineProgress::Stage S,
                                   std::string Message) {
      PipelineProgress P;
      P.S = S;
      P.Run = Run;
      P.Message = std::move(Message);
      Emit(P);
    };

    // Resume from this run's checkpoint when one is present and belongs
    // to this exact experiment; otherwise start fresh.
    std::string CkptPath = Params.CheckpointDir.empty()
                               ? std::string()
                               : checkpointRunPath(Params.CheckpointDir, Run);
    std::optional<Evolution> E;
    if (Params.Resume && !CkptPath.empty() && checkpointExists(CkptPath)) {
      CheckpointLoadReport Report;
      auto Loaded = loadCheckpointWithRecovery(CkptPath, &Report);
      if (!Loaded) {
        EmitCheckpointEvent(PipelineProgress::Stage::CheckpointRejected,
                            Loaded.error().message());
      } else if (auto Valid = validateCheckpoint(*Loaded, T.kind(),
                                                 T.sideLength(), RunParams);
                 !Valid) {
        EmitCheckpointEvent(PipelineProgress::Stage::CheckpointRejected,
                            CkptPath + ": " + Valid.error().message());
      } else {
        E.emplace(T, TrainingFields, RunParams, Loaded->Snapshot);
        EmitCheckpointEvent(
            PipelineProgress::Stage::CheckpointRestored,
            Report.UsedBackup
                ? Report.Note + ": resuming at generation " +
                      std::to_string(Loaded->Snapshot.Generation)
                : CkptPath + ": resuming at generation " +
                      std::to_string(Loaded->Snapshot.Generation));
      }
    }
    if (!E)
      E.emplace(T, TrainingFields, RunParams);

    int CheckpointEvery = std::max(1, Params.CheckpointEvery);
    while (E->generation() < Params.Generations) {
      GenerationStats Stats = E->stepGeneration();
      PipelineProgress P;
      P.S = PipelineProgress::Stage::Generation;
      P.Run = Run;
      P.Generation = Stats;
      Emit(P);
      if (!CkptPath.empty() &&
          (E->generation() % CheckpointEvery == 0 ||
           E->generation() == Params.Generations)) {
        CheckpointData Data;
        Data.Grid = T.kind();
        Data.SideLength = T.sideLength();
        Data.Seed = RunParams.Seed;
        Data.Snapshot = E->snapshot();
        if (auto Saved = saveCheckpoint(CkptPath, Data); !Saved)
          EmitCheckpointEvent(PipelineProgress::Stage::CheckpointFailed,
                              Saved.error().message());
      }
    }

    // Extract the top completely successful individuals in *sorted* order
    // (the pool order carries the diversity exchange, which is a breeding
    // device, not a ranking).
    std::vector<Individual> Sorted(E->population().begin(),
                                   E->population().end());
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const Individual &A, const Individual &B) {
                       return A.Fitness < B.Fitness;
                     });
    int Taken = 0;
    for (const Individual &Ind : Sorted) {
      if (Taken == Params.TopPerRun)
        break;
      if (!Ind.CompletelySuccessful)
        continue;
      // Deduplicate across runs: identical genomes get one candidacy.
      bool Duplicate = false;
      for (const RankedCandidate &C : Candidates)
        Duplicate |= (C.G == Ind.G);
      if (Duplicate)
        continue;
      RankedCandidate C;
      C.G = Ind.G;
      C.SourceRun = Run;
      C.TrainingFitness = Ind.Fitness;
      Candidates.push_back(std::move(C));
      ++Taken;
    }
    SchedTotals += E->schedulerStats();
    PipelineProgress Done;
    Done.S = PipelineProgress::Stage::RunFinished;
    Done.Run = Run;
    Emit(Done);
  }

  // Stage 3: reliability filter.
  ReliabilityParams ReliabilityRun = Params.Reliability;
  ReliabilityRun.Fitness.Engine = Params.Engine;
  ReliabilityRun.Fitness.Backend = Params.Backend;
  for (size_t I = 0; I != Candidates.size(); ++I) {
    Candidates[I].Report = testReliability(Candidates[I].G, T,
                                           ReliabilityRun);
    PipelineProgress P;
    P.S = PipelineProgress::Stage::CandidateTested;
    P.CandidateIndex = static_cast<int>(I);
    P.CandidateReliable = Candidates[I].reliable();
    Emit(P);
  }

  // Stage 4: ranking — reliable candidates by total mean time, then the
  // rest by training fitness.
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const RankedCandidate &A, const RankedCandidate &B) {
                     if (A.reliable() != B.reliable())
                       return A.reliable();
                     if (A.reliable())
                       return A.Report.totalMeanCommTime() <
                              B.Report.totalMeanCommTime();
                     return A.TrainingFitness < B.TrainingFitness;
                   });

  PipelineResult Result;
  Result.Candidates = std::move(Candidates);
  Result.Sched = SchedTotals;
  return Result;
}
