//===- ga/Checkpoint.cpp - Crash-safe GA state persistence ----------------===//

#include "ga/Checkpoint.h"

#include "support/Chaos.h"
#include "support/File.h"
#include "support/Hash.h"
#include "support/StringUtils.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

using namespace ca2a;

namespace {

constexpr const char *FormatHeader = "ca2a-evolution-checkpoint v1";
constexpr const char *MigrantHeader = "ca2a-migrant-block v1";

/// Doubles are stored as %.17g, which round-trips IEEE binary64 exactly.
std::string formatExactDouble(double Value) {
  return formatString("%.17g", Value);
}

std::string formatIndividual(const char *Tag, const Individual &Ind) {
  return formatString("%s fitness %s solved %d successful %d genome %s\n",
                      Tag, formatExactDouble(Ind.Fitness).c_str(),
                      Ind.SolvedFields, Ind.CompletelySuccessful ? 1 : 0,
                      Ind.G.toCompactString().c_str());
}

/// Parses one "<tag> fitness <f> solved <n> successful <0|1> genome <g>"
/// line into \p Out. The genome itself is whitespace-separated 4-digit
/// groups, so everything from token 8 on belongs to it.
[[nodiscard]] Expected<bool> parseIndividual(const std::vector<std::string> &Tokens,
                               const char *Tag, int Line, Individual &Out) {
  if (Tokens.size() < 9 || Tokens[0] != Tag || Tokens[1] != "fitness" ||
      Tokens[3] != "solved" || Tokens[5] != "successful" ||
      Tokens[7] != "genome")
    return makeError(formatString("checkpoint line %d: malformed %s record",
                                  Line, Tag));
  auto Fitness = parseDouble(Tokens[2]);
  auto Solved = parseInt(Tokens[4]);
  auto Successful = parseInt(Tokens[6]);
  if (!Fitness || !Solved || !Successful)
    return makeError(formatString("checkpoint line %d: bad %s numbers",
                                  Line, Tag));
  std::string GenomeText = Tokens[8];
  for (size_t I = 9; I != Tokens.size(); ++I) {
    GenomeText += ' ';
    GenomeText += Tokens[I];
  }
  auto G = Genome::fromCompactString(GenomeText);
  if (!G)
    return makeError(formatString("checkpoint line %d: %s", Line,
                                  G.error().message().c_str()));
  Out.Fitness = *Fitness;
  Out.SolvedFields = static_cast<int>(*Solved);
  Out.CompletelySuccessful = *Successful != 0;
  Out.G = G.takeValue();
  return true;
}

} // namespace

std::string ca2a::serializeCheckpoint(const CheckpointData &Data) {
  const EvolutionSnapshot &S = Data.Snapshot;
  std::string Payload;
  Payload += FormatHeader;
  Payload += '\n';
  Payload += formatString("grid %s side %d seed %" PRIu64 "\n",
                          gridKindName(Data.Grid), Data.SideLength,
                          Data.Seed);
  Payload += formatString("dims states %d colors %d\n", S.Dims.States,
                          S.Dims.Colors);
  Payload += formatString("progress generation %d evaluations %d\n",
                          S.Generation, S.Evaluations);
  Payload += formatString("rng %016" PRIx64 " %016" PRIx64 " %016" PRIx64
                          " %016" PRIx64 "\n",
                          S.RngState[0], S.RngState[1], S.RngState[2],
                          S.RngState[3]);
  Payload += formatIndividual("best", S.BestEver);
  Payload += formatString("pool %zu\n", S.Pool.size());
  for (const Individual &Ind : S.Pool)
    Payload += formatIndividual("member", Ind);
  return Payload +
         formatString("checksum %016" PRIx64 "\n", fnv1a(Payload));
}

Expected<CheckpointData> ca2a::parseCheckpoint(const std::string &Text) {
  // Split into lines; the checksum line covers everything before it.
  size_t ChecksumPos = Text.rfind("checksum ");
  if (ChecksumPos == std::string::npos ||
      (ChecksumPos != 0 && Text[ChecksumPos - 1] != '\n'))
    return makeError(ErrorCode::Corrupt,
                     "checkpoint: missing checksum line (truncated file?)");
  std::string Payload = Text.substr(0, ChecksumPos);

  std::vector<std::string> Lines = splitString(Text, '\n');
  // Drop a trailing empty piece from the final newline.
  while (!Lines.empty() && trim(Lines.back()).empty())
    Lines.pop_back();
  if (Lines.size() < 8)
    return makeError(ErrorCode::Corrupt, "checkpoint: too short to be valid");
  if (trim(Lines[0]) != FormatHeader)
    return makeError(ErrorCode::VersionMismatch,
                     "checkpoint: unrecognised header '" +
                         std::string(trim(Lines[0])) + "'");

  // Checksum first: everything else is meaningless on a corrupt file.
  {
    std::vector<std::string> T = splitWhitespace(Lines.back());
    uint64_t Stored = 0;
    if (T.size() != 2 || T[0] != "checksum" ||
        std::sscanf(T[1].c_str(), "%" SCNx64, &Stored) != 1)
      return makeError(ErrorCode::Corrupt,
                       "checkpoint: malformed checksum line");
    if (Stored != fnv1a(Payload))
      return makeError(ErrorCode::Corrupt,
                       "checkpoint: checksum mismatch (corrupt file)");
  }

  CheckpointData Data;
  EvolutionSnapshot &S = Data.Snapshot;

  {
    std::vector<std::string> T = splitWhitespace(Lines[1]);
    if (T.size() != 6 || T[0] != "grid" || T[2] != "side" || T[4] != "seed")
      return makeError("checkpoint line 2: malformed grid record");
    if (!parseGridKind(T[1], Data.Grid))
      return makeError("checkpoint line 2: unknown grid '" + T[1] + "'");
    auto Side = parseInt(T[3]);
    auto Seed = parseUnsigned(T[5]);
    if (!Side || !Seed)
      return makeError("checkpoint line 2: bad numbers");
    Data.SideLength = static_cast<int>(*Side);
    Data.Seed = *Seed;
  }
  {
    std::vector<std::string> T = splitWhitespace(Lines[2]);
    if (T.size() != 5 || T[0] != "dims" || T[1] != "states" ||
        T[3] != "colors")
      return makeError("checkpoint line 3: malformed dims record");
    auto States = parseInt(T[2]);
    auto Colors = parseInt(T[4]);
    if (!States || !Colors)
      return makeError("checkpoint line 3: bad numbers");
    S.Dims.States = static_cast<int>(*States);
    S.Dims.Colors = static_cast<int>(*Colors);
    if (!S.Dims.valid())
      return makeError("checkpoint line 3: dimensions out of range");
  }
  {
    std::vector<std::string> T = splitWhitespace(Lines[3]);
    if (T.size() != 5 || T[0] != "progress" || T[1] != "generation" ||
        T[3] != "evaluations")
      return makeError("checkpoint line 4: malformed progress record");
    auto Gen = parseInt(T[2]);
    auto Evals = parseInt(T[4]);
    if (!Gen || !Evals || *Gen < 0 || *Evals < 0)
      return makeError("checkpoint line 4: bad numbers");
    S.Generation = static_cast<int>(*Gen);
    S.Evaluations = static_cast<int>(*Evals);
  }
  {
    std::vector<std::string> T = splitWhitespace(Lines[4]);
    if (T.size() != 5 || T[0] != "rng")
      return makeError("checkpoint line 5: malformed rng record");
    for (size_t I = 0; I != 4; ++I)
      if (std::sscanf(T[I + 1].c_str(), "%" SCNx64, &S.RngState[I]) != 1)
        return makeError("checkpoint line 5: bad rng word");
    if ((S.RngState[0] | S.RngState[1] | S.RngState[2] | S.RngState[3]) == 0)
      return makeError("checkpoint line 5: all-zero rng state");
  }
  if (auto Parsed = parseIndividual(splitWhitespace(Lines[5]), "best", 6,
                                    S.BestEver);
      !Parsed)
    return Parsed.error();

  size_t PoolSize = 0;
  {
    std::vector<std::string> T = splitWhitespace(Lines[6]);
    auto Count = T.size() == 2 && T[0] == "pool" ? parseInt(T[1])
                                                 : Expected<int64_t>(makeError(""));
    if (!Count || *Count < 2)
      return makeError("checkpoint line 7: malformed pool record");
    PoolSize = static_cast<size_t>(*Count);
  }
  // Lines[7 .. 7+PoolSize) are members; the checksum line follows.
  if (Lines.size() != 7 + PoolSize + 1)
    return makeError(formatString(
        "checkpoint: expected %zu pool members, found %zu (truncated?)",
        PoolSize, Lines.size() - 8));
  S.Pool.resize(PoolSize);
  for (size_t I = 0; I != PoolSize; ++I) {
    if (auto Parsed = parseIndividual(splitWhitespace(Lines[7 + I]), "member",
                                      static_cast<int>(8 + I), S.Pool[I]);
        !Parsed)
      return Parsed.error();
    if (S.Pool[I].G.dims() != S.Dims)
      return makeError(formatString(
          "checkpoint line %zu: member dimensions disagree with header",
          8 + I));
  }
  if (S.BestEver.G.dims() != S.Dims)
    return makeError("checkpoint line 6: best dimensions disagree with "
                     "header");
  return Data;
}

Expected<bool> ca2a::saveCheckpoint(const std::string &Path,
                                    const CheckpointData &Data,
                                    const RetryPolicy &Retry) {
  // Atomic, durable publish: write the full contents to a sibling temp
  // file, fsync it, rename over the destination, fsync the directory. A
  // crash mid-save leaves the previous checkpoint untouched; rename
  // within one directory is atomic on POSIX, and the two fsyncs make the
  // publish survive a power cut, not just a process kill.
  std::filesystem::path Target(Path);
  if (Target.has_parent_path()) {
    std::error_code Ec;
    std::filesystem::create_directories(Target.parent_path(), Ec);
    if (Ec)
      return makeError(ErrorCode::Io,
                       "cannot create checkpoint directory '" +
                           Target.parent_path().string() +
                           "': " + Ec.message());
  }
  std::string Text = serializeCheckpoint(Data);
  // Chaos: a corruption draw silently damages the payload (a torn write /
  // bit rot stand-in) — deliberately NOT retried; the load-time checksum
  // and backup fallback exist to absorb exactly this. A failure draw
  // models a transient I/O error and goes through the retry loop.
  if (uint64_t Draw = chaosCorruptDraw(ChaosSite::CheckpointWrite))
    chaosCorruptPayload(Text, Draw);
  std::string TmpPath = Path + ".tmp";
  for (int Attempt = 0;; ++Attempt) {
    Expected<bool> Written = [&]() -> Expected<bool> {
      try {
        chaosPoint(ChaosSite::CheckpointWrite);
      } catch (const std::exception &Ex) {
        return makeError(ErrorCode::Injected, Ex.what());
      }
      return writeFileDurable(TmpPath, Text);
    }();
    if (Written)
      break;
    if (Attempt + 1 >= Retry.MaxAttempts)
      return Written.error();
    backoffSleep(Retry, Attempt);
  }
  // Promote the current checkpoint to ".bak" — but only if it parses, so
  // the backup always holds the newest *valid* snapshot. Promoting an
  // unvalidated file could leave both generations corrupt after two bad
  // saves in a row.
  if (checkpointExists(Path)) {
    bool PreviousValid = false;
    if (auto Text2 = readFile(Path); Text2 && parseCheckpoint(*Text2))
      PreviousValid = true;
    if (PreviousValid)
      std::rename(Path.c_str(), checkpointBackupPath(Path).c_str());
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return makeError(ErrorCode::Io,
                     "cannot rename '" + TmpPath + "' to '" + Path + "'");
  }
  // The rename is only durable once the directory entry is on disk.
  if (auto Synced = syncParentDirectory(Path); !Synced)
    return Synced.error();
  return true;
}

Expected<CheckpointData> ca2a::loadCheckpoint(const std::string &Path) {
  auto Text = [&]() -> Expected<std::string> {
    try {
      chaosPoint(ChaosSite::CheckpointRead);
    } catch (const std::exception &Ex) {
      return makeError(ErrorCode::Injected, Ex.what());
    }
    return readFile(Path);
  }();
  if (!Text)
    return Text.error();
  auto Parsed = parseCheckpoint(*Text);
  if (!Parsed)
    return makeError(Parsed.error().code(),
                     Path + ": " + Parsed.error().message());
  return Parsed;
}

std::string ca2a::serializeMigrantBlock(const MigrantBlock &Block) {
  std::string Payload;
  Payload += MigrantHeader;
  Payload += '\n';
  Payload += formatString("route from %d to %d seq %" PRIu64 "\n",
                          Block.FromIsland, Block.ToIsland, Block.Sequence);
  Payload += formatString("context fingerprint %016" PRIx64 "\n",
                          Block.ContextFingerprint);
  Payload += formatString("dims states %d colors %d\n", Block.Dims.States,
                          Block.Dims.Colors);
  Payload += formatString("migrants %zu\n", Block.Migrants.size());
  for (const Individual &Ind : Block.Migrants)
    Payload += formatIndividual("member", Ind);
  return Payload +
         formatString("checksum %016" PRIx64 "\n", fnv1a(Payload));
}

Expected<MigrantBlock> ca2a::parseMigrantBlock(const std::string &Text) {
  size_t ChecksumPos = Text.rfind("checksum ");
  if (ChecksumPos == std::string::npos ||
      (ChecksumPos != 0 && Text[ChecksumPos - 1] != '\n'))
    return makeError(ErrorCode::Corrupt,
                     "migrant block: missing checksum line (truncated?)");
  std::string Payload = Text.substr(0, ChecksumPos);

  std::vector<std::string> Lines = splitString(Text, '\n');
  while (!Lines.empty() && trim(Lines.back()).empty())
    Lines.pop_back();
  if (Lines.size() < 6)
    return makeError(ErrorCode::Corrupt,
                     "migrant block: too short to be valid");
  if (trim(Lines[0]) != MigrantHeader)
    return makeError(ErrorCode::VersionMismatch,
                     "migrant block: unrecognised header '" +
                         std::string(trim(Lines[0])) + "'");

  // Checksum before structure: a corrupt file may scramble anything.
  {
    std::vector<std::string> T = splitWhitespace(Lines.back());
    uint64_t Stored = 0;
    if (T.size() != 2 || T[0] != "checksum" ||
        std::sscanf(T[1].c_str(), "%" SCNx64, &Stored) != 1)
      return makeError(ErrorCode::Corrupt,
                       "migrant block: malformed checksum line");
    if (Stored != fnv1a(Payload))
      return makeError(ErrorCode::Corrupt,
                       "migrant block: checksum mismatch (corrupt payload)");
  }

  MigrantBlock Block;
  {
    std::vector<std::string> T = splitWhitespace(Lines[1]);
    if (T.size() != 7 || T[0] != "route" || T[1] != "from" || T[3] != "to" ||
        T[5] != "seq")
      return makeError(ErrorCode::Corrupt,
                       "migrant block line 2: malformed route record");
    auto From = parseInt(T[2]);
    auto To = parseInt(T[4]);
    auto Seq = parseUnsigned(T[6]);
    if (!From || !To || !Seq || *From < 0 || *To < 0)
      return makeError(ErrorCode::Corrupt,
                       "migrant block line 2: bad route numbers");
    Block.FromIsland = static_cast<int>(*From);
    Block.ToIsland = static_cast<int>(*To);
    Block.Sequence = *Seq;
  }
  {
    std::vector<std::string> T = splitWhitespace(Lines[2]);
    if (T.size() != 3 || T[0] != "context" || T[1] != "fingerprint" ||
        std::sscanf(T[2].c_str(), "%" SCNx64, &Block.ContextFingerprint) != 1)
      return makeError(ErrorCode::Corrupt,
                       "migrant block line 3: malformed context record");
  }
  {
    std::vector<std::string> T = splitWhitespace(Lines[3]);
    if (T.size() != 5 || T[0] != "dims" || T[1] != "states" ||
        T[3] != "colors")
      return makeError(ErrorCode::Corrupt,
                       "migrant block line 4: malformed dims record");
    auto States = parseInt(T[2]);
    auto Colors = parseInt(T[4]);
    if (!States || !Colors)
      return makeError(ErrorCode::Corrupt,
                       "migrant block line 4: bad numbers");
    Block.Dims.States = static_cast<int>(*States);
    Block.Dims.Colors = static_cast<int>(*Colors);
    if (!Block.Dims.valid())
      return makeError(ErrorCode::Corrupt,
                       "migrant block line 4: dimensions out of range");
  }
  size_t Count = 0;
  {
    std::vector<std::string> T = splitWhitespace(Lines[4]);
    auto Parsed = T.size() == 2 && T[0] == "migrants"
                      ? parseInt(T[1])
                      : Expected<int64_t>(makeError(""));
    if (!Parsed || *Parsed < 0)
      return makeError(ErrorCode::Corrupt,
                       "migrant block line 5: malformed migrants record");
    Count = static_cast<size_t>(*Parsed);
  }
  if (Lines.size() != 5 + Count + 1)
    return makeError(
        ErrorCode::Corrupt,
        formatString("migrant block: expected %zu members, found %zu "
                     "(truncated?)",
                     Count, Lines.size() - 6));
  Block.Migrants.resize(Count);
  for (size_t I = 0; I != Count; ++I) {
    if (auto Parsed =
            parseIndividual(splitWhitespace(Lines[5 + I]), "member",
                            static_cast<int>(6 + I), Block.Migrants[I]);
        !Parsed)
      return makeError(ErrorCode::Corrupt, Parsed.error().message());
    if (Block.Migrants[I].G.dims() != Block.Dims)
      return makeError(
          ErrorCode::Corrupt,
          formatString("migrant block line %zu: member dimensions disagree "
                       "with header",
                       6 + I));
  }
  return Block;
}

Expected<bool> ca2a::validateMigrantBlock(const MigrantBlock &Block, int From,
                                          int To, uint64_t Seq,
                                          uint64_t ContextFingerprint) {
  if (Block.FromIsland != From || Block.ToIsland != To)
    return makeError(
        ErrorCode::Corrupt,
        formatString("migrant block routed %d -> %d, expected %d -> %d",
                     Block.FromIsland, Block.ToIsland, From, To));
  if (Block.Sequence != Seq)
    return makeError(
        ErrorCode::Corrupt,
        formatString("migrant block carries sequence %" PRIu64
                     ", expected %" PRIu64 " (stale or replayed delivery)",
                     Block.Sequence, Seq));
  if (ContextFingerprint != 0 &&
      Block.ContextFingerprint != ContextFingerprint)
    return makeError(
        ErrorCode::Corrupt,
        formatString("migrant block context fingerprint %016" PRIx64
                     " does not match this island's %016" PRIx64
                     " (islands must share grid, options and fields)",
                     Block.ContextFingerprint, ContextFingerprint));
  return true;
}

std::string ca2a::checkpointBackupPath(const std::string &Path) {
  return Path + ".bak";
}

Expected<CheckpointData>
ca2a::loadCheckpointWithRecovery(const std::string &Path,
                                 CheckpointLoadReport *Report,
                                 const RetryPolicy &Retry) {
  CheckpointLoadReport Local;
  CheckpointLoadReport &R = Report ? *Report : Local;
  R = CheckpointLoadReport();

  // One file, retried: transient failures (injected reads, EINTR-class
  // I/O) are worth re-attempting; corruption and version mismatches are
  // deterministic and are not.
  auto LoadRetrying = [&](const std::string &P) -> Expected<CheckpointData> {
    for (int Attempt = 0;; ++Attempt) {
      auto Loaded = loadCheckpoint(P);
      if (Loaded)
        return Loaded;
      ErrorCode Code = Loaded.error().code();
      bool Transient = Code == ErrorCode::Injected || Code == ErrorCode::Io;
      if (!Transient || Attempt + 1 >= Retry.MaxAttempts)
        return Loaded;
      ++R.Retries;
      backoffSleep(Retry, Attempt);
    }
  };

  auto Primary = LoadRetrying(Path);
  if (Primary)
    return Primary;
  auto Backup = LoadRetrying(checkpointBackupPath(Path));
  if (Backup) {
    R.UsedBackup = true;
    R.Note = "primary checkpoint unusable (" + Primary.error().message() +
             "); resumed from backup '" + checkpointBackupPath(Path) + "'";
    return Backup;
  }
  return makeError(Primary.error().code(),
                   "checkpoint recovery failed: primary: " +
                       Primary.error().message() +
                       "; backup: " + Backup.error().message());
}

bool ca2a::checkpointExists(const std::string &Path) {
  std::error_code Ec;
  return std::filesystem::exists(Path, Ec);
}

std::string ca2a::checkpointRunPath(const std::string &Dir, int Run) {
  return (std::filesystem::path(Dir) /
          formatString("run%d.ckpt", Run)).string();
}

Expected<bool> ca2a::validateCheckpoint(const CheckpointData &Data,
                                        GridKind Kind, int SideLength,
                                        const EvolutionParams &Params) {
  if (Data.Grid != Kind)
    return makeError(formatString(
        "checkpoint is for the %s-grid, this run uses the %s-grid",
        gridKindName(Data.Grid), gridKindName(Kind)));
  if (Data.SideLength != SideLength)
    return makeError(formatString(
        "checkpoint is for a %dx%d field, this run uses %dx%d",
        Data.SideLength, Data.SideLength, SideLength, SideLength));
  if (Data.Seed != Params.Seed)
    return makeError(formatString(
        "checkpoint seed %" PRIu64 " does not match run seed %" PRIu64,
        Data.Seed, Params.Seed));
  if (Data.Snapshot.Dims != Params.Dims)
    return makeError(formatString(
        "checkpoint dimensions s%dc%d do not match run dimensions s%dc%d",
        Data.Snapshot.Dims.States, Data.Snapshot.Dims.Colors,
        Params.Dims.States, Params.Dims.Colors));
  if (Data.Snapshot.Pool.size() !=
      static_cast<size_t>(Params.PopulationSize))
    return makeError(formatString(
        "checkpoint pool has %zu members, run population is %d",
        Data.Snapshot.Pool.size(), Params.PopulationSize));
  return true;
}
