//===- ga/Evolution.h - The paper's genetic procedure -----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimisation loop of Sect. 4. One population of N individuals
/// (FSM genomes) is updated per generation:
///
///   1. the top N/2 individuals each produce one offspring by mutation,
///   2. the union of the N parents and N/2 offspring is sorted by fitness
///      (ascending; lower is better), duplicates are deleted, and the pool
///      is truncated back to N,
///   3. to preserve diversity, the first b individuals of the second half
///      are exchanged with the last b of the first half (paper: N = 20,
///      b = 3, so ranks 7,8,9 swap with 10,11,12).
///
/// When duplicate deletion leaves fewer than N individuals the pool is
/// topped up with fresh random genomes (the paper does not specify this
/// corner; random refill only adds diversity and cannot hurt elitism).
///
/// Evaluation is delegated to ga/EvalScheduler: every generation's
/// offspring are deduplicated against the pool up front (a duplicate
/// would be deleted by step 2 anyway) and the remainder is evaluated in
/// one batched, memoized, bound-pruned submission. The trajectory —
/// pools, champions, RNG stream, evaluation counts — is bit-identical to
/// the legacy evaluate-one-genome-at-a-time loop, which
/// EvolutionParams::Scheduler.Enabled = false restores.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_EVOLUTION_H
#define CA2A_GA_EVOLUTION_H

#include "ga/EvalScheduler.h"
#include "ga/Mutation.h"

#include <array>
#include <functional>
#include <vector>

namespace ca2a {

/// One pool member: genome plus cached evaluation.
struct Individual {
  Genome G;
  double Fitness = 0.0;
  int SolvedFields = 0;
  bool CompletelySuccessful = false;
  /// Transient marker: Fitness is the scheduler's certified lower bound,
  /// not an exact measurement (see EvalOutcome::Pruned). Selection
  /// guarantees pruned individuals never survive into the next pool
  /// (stepGeneration re-evaluates any would-be survivor exactly first),
  /// so snapshots and checkpoints never carry a true flag.
  bool Pruned = false;
};

/// Evolution knobs (defaults are the paper's settings: mutation-only).
struct EvolutionParams {
  int PopulationSize = 20; ///< N.
  int ExchangeCount = 3;   ///< b.
  MutationParams Mutation;
  FitnessParams Fitness;
  uint64_t Seed = 1;
  /// Probability that an offspring is first produced by one-point
  /// crossover with a second random top-half parent, before mutation.
  /// 0 (the paper's final choice) = mutation-only; used by the crossover
  /// ablation.
  double CrossoverProbability = 0.0;
  /// FSM dimensions to evolve (the future-work "more states, more
  /// colors"); the default is the paper's 4 states / 2 colours.
  GenomeDims Dims;
  /// The generation-wide evaluation layer (memoization, cross-genome
  /// batching, bound-based early abort). Selection outcomes are identical
  /// with the scheduler on or off; Scheduler.Enabled = false restores the
  /// legacy one-evaluateFitness-per-genome loop.
  SchedulerParams Scheduler;
};

/// A complete, restorable snapshot of an Evolution's mutable state.
///
/// Captured after a whole generation (pool in post-exchange order, RNG
/// state, counters); restoring it into a fresh Evolution with the same
/// torus, training fields and parameters continues the run bit-for-bit —
/// the basis of the crash-safe checkpointing in ga/Checkpoint.h.
struct EvolutionSnapshot {
  int Generation = 0;
  int Evaluations = 0;
  std::array<uint64_t, 4> RngState{};
  GenomeDims Dims;
  std::vector<Individual> Pool; ///< In pool order (carries the exchange).
  Individual BestEver;
};

/// Per-generation progress record.
struct GenerationStats {
  int Generation = 0;
  double BestFitness = 0.0;
  double MeanFitness = 0.0;
  int BestSolvedFields = 0;
  int NumCompletelySuccessful = 0; ///< Within the pool.
  /// Cumulative *requested* evaluations (duplicates answered by dedup or
  /// the memo cache count too, so the number is identical with the
  /// scheduler on or off).
  int Evaluations = 0;
  /// Cumulative scheduler instrumentation (all-zero when the scheduler is
  /// disabled).
  SchedulerStats Sched;
};

/// Drives the genetic procedure on one grid/field set.
class Evolution {
public:
  /// \p TrainingFields is the configuration set the fitness averages over
  /// (the paper trains on 1003 fields with 8 agents on 16x16).
  Evolution(const Torus &T, std::vector<InitialConfiguration> TrainingFields,
            const EvolutionParams &Params);

  /// Resume constructor: restores \p Resume instead of evaluating a fresh
  /// random pool (no fitness evaluations are spent). The snapshot must
  /// match \p Params (pool size, dimensions — asserted; CLI frontends
  /// should run validateCheckpoint from ga/Checkpoint.h first).
  Evolution(const Torus &T, std::vector<InitialConfiguration> TrainingFields,
            const EvolutionParams &Params, const EvolutionSnapshot &Resume);

  /// Captures the full mutable state for checkpointing. Call between
  /// generations (snapshot granularity is one generation).
  EvolutionSnapshot snapshot() const;

  /// Runs \p Generations generations; \p OnGeneration (may be empty) is
  /// called after each one. Returns the final best individual.
  Individual
  run(int Generations,
      const std::function<void(const GenerationStats &)> &OnGeneration = {});

  /// Executes a single generation (exposed for tests / incremental runs).
  GenerationStats stepGeneration();

  /// Pool in current rank order (position 0 = current best).
  const std::vector<Individual> &population() const { return Pool; }

  /// Best individual found so far across all generations (elitist record,
  /// unaffected by the diversity exchange).
  const Individual &bestEver() const { return BestEver; }

  int generation() const { return Generation; }
  int evaluations() const { return Evaluations; }

  /// The best \p K pool members (in rank order, copies) for island-model
  /// emigration. Pool members are always exact post-selection (the pruned
  /// repair pass guarantees it), so the copies carry trustworthy fitness.
  /// Deterministic: depends only on the pool, never on timing or RNG.
  std::vector<Individual> selectMigrants(int K) const;

  /// Immigration for the island model: each migrant whose genome is not
  /// already in the pool replaces the current worst member (highest
  /// fitness; ties resolved to the later pool position) if strictly
  /// fitter than it. Replacement happens in place so the rest of the pool
  /// keeps its diversity-exchange ordering; BestEver is updated, so an
  /// injected champion is elitist-preserved like a home-grown one.
  /// Consumes no RNG and no evaluations (migrant fitness is trusted — the
  /// caller must have validated the evaluation-context fingerprint).
  /// Returns how many migrants were accepted.
  int injectMigrants(const std::vector<Individual> &Migrants);

  /// The evaluation-context fingerprint (grid, simulation options, full
  /// training-field set; deliberately excluding worker count and engine
  /// choice). Two islands may exchange migrants only when these match —
  /// see MigrantBlock in ga/Checkpoint.h.
  uint64_t evalContextFingerprint() const {
    return Sched.contextFingerprint();
  }

  /// Cumulative evaluation-layer instrumentation (cache hits, pruning,
  /// batch occupancy); all-zero when the scheduler is disabled.
  const SchedulerStats &schedulerStats() const { return Sched.stats(); }

private:
  Individual evaluate(Genome G);
  void appendEvaluated(std::vector<Genome> Genomes, bool AllowPruning);
  void sortDedupTruncate();
  void diversityExchange();

  const Torus &T;
  std::vector<InitialConfiguration> TrainingFields;
  EvolutionParams Params;
  Rng R;
  EvalScheduler Sched;
  std::vector<Individual> Pool;
  Individual BestEver;
  int Generation = 0;
  int Evaluations = 0;
};

} // namespace ca2a

#endif // CA2A_GA_EVOLUTION_H
