//===- ga/Pipeline.h - The paper's full selection pipeline ------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete FSM-selection procedure of Sect. 4:
///
///   1. run \p NumRuns independent optimisation runs (different seeds) on
///      the training set (paper: four runs, 1003 fields, 8 agents, 16x16),
///   2. extract the top \p TopPerRun *completely successful* FSMs from
///      each run's final pool (paper: 3 each, 12 candidates total),
///   3. reliability-test every candidate across all agent counts
///      (paper: {2, 4, 8, 16, 32, 256}, 1003 fields each),
///   4. keep candidates completely successful everywhere and rank them by
///      total communication time; the best becomes "the best found FSM".
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_PIPELINE_H
#define CA2A_GA_PIPELINE_H

#include "ga/Evolution.h"
#include "ga/Reliability.h"

#include <functional>
#include <string>
#include <vector>

namespace ca2a {

/// Knobs of the full pipeline.
struct PipelineParams {
  int NumRuns = 4;     ///< Independent optimisation runs.
  int TopPerRun = 3;   ///< Completely successful FSMs taken per run.
  int Generations = 100;
  int TrainingAgents = 8;
  int TrainingRandomFields = 1000; ///< Plus the 3 manual designs.
  uint64_t TrainingFieldSeed = 20130101;
  EvolutionParams Evolution;    ///< Seed is re-derived per run.
  ReliabilityParams Reliability;
  /// Engine for every simulation in the pipeline (training fitness and
  /// reliability filter). Overrides the engine fields nested inside
  /// Evolution/Reliability so one CLI flag switches the whole pipeline;
  /// results are bit-identical either way.
  EngineKind Engine = EngineKind::Reference;
  /// SIMD lane kernel for the batch engine, propagated the same way as
  /// Engine; results are bit-identical for every value (including rmaj64,
  /// whose slab sharing changes only throughput — note the GA's evaluation
  /// batches carry no clone structure after (genome, field) dedup, so
  /// rmaj64 runs them at occupancy 1, i.e. sliced64 parity; see
  /// sim/simd/ReplicaSlab.h).
  SimdBackend Backend = SimdBackend::Auto;

  // Crash safety (ga/Checkpoint.h). With a non-empty CheckpointDir every
  // run saves its state to "<dir>/run<i>.ckpt" every CheckpointEvery
  // generations (atomically), and with Resume a matching checkpoint is
  // restored so the pipeline continues where it was killed — reaching the
  // same candidates as an uninterrupted run with the same seeds. Stale or
  // mismatched checkpoints are rejected (reported via OnProgress) and the
  // run restarts from scratch.
  std::string CheckpointDir; ///< Empty: no checkpointing.
  bool Resume = false;       ///< Restore per-run checkpoints when present.
  int CheckpointEvery = 1;   ///< Generations between saves (>= 1).
};

/// One candidate after the reliability stage.
struct RankedCandidate {
  Genome G;
  int SourceRun = 0;            ///< Which optimisation run produced it.
  double TrainingFitness = 0.0; ///< Fitness on the training set.
  ReliabilityReport Report;     ///< Cross-density results.

  bool reliable() const { return Report.completelySuccessful(); }
};

/// Pipeline outcome: candidates ranked best-first.
struct PipelineResult {
  /// Reliable candidates first (by total mean communication time), then
  /// the unreliable ones (by training fitness).
  std::vector<RankedCandidate> Candidates;

  /// Evaluation-scheduler instrumentation summed over every optimisation
  /// run (all-zero when Evolution.Scheduler.Enabled is false). The
  /// reliability stage evaluates each candidate once per density and is
  /// not scheduled.
  SchedulerStats Sched;

  bool hasWinner() const {
    return !Candidates.empty() && Candidates.front().reliable();
  }
  const RankedCandidate &winner() const {
    assert(hasWinner() && "no reliable candidate survived the filter");
    return Candidates.front();
  }
  int numReliable() const;
};

/// Progress events emitted by runSelectionPipeline.
struct PipelineProgress {
  enum class Stage {
    RunStarted,
    Generation,
    RunFinished,
    CandidateTested,
    CheckpointRestored, ///< Resume picked up a checkpoint (see Message).
    CheckpointRejected, ///< A checkpoint was unusable (see Message).
    CheckpointFailed,   ///< A checkpoint save failed (see Message).
  };
  Stage S = Stage::RunStarted;
  int Run = 0;
  GenerationStats Generation;      ///< Valid for Stage::Generation.
  int CandidateIndex = 0;          ///< Valid for Stage::CandidateTested.
  bool CandidateReliable = false;  ///< Valid for Stage::CandidateTested.
  std::string Message;             ///< Valid for the checkpoint stages.
};

/// Runs the whole pipeline on \p T. \p OnProgress may be empty.
PipelineResult
runSelectionPipeline(const Torus &T, const PipelineParams &Params,
                     const std::function<void(const PipelineProgress &)>
                         &OnProgress = {});

} // namespace ca2a

#endif // CA2A_GA_PIPELINE_H
