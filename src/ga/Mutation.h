//===- ga/Mutation.h - Field-wise genome mutation ---------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's mutation-only variation operator (Sect. 4). For every table
/// slot (input combination) each of the four fields mutates independently:
///
///   nextstate <- nextstate + 1 mod N_states   with prob. p1,
///   setcolor  <- setcolor  + 1 mod 2          with prob. p2,
///   move      <- move      + 1 mod 2          with prob. p3,
///   turn      <- turn      + 1 mod N_turn     with prob. p4,
///
/// otherwise unchanged; the paper found p1 = p2 = p3 = p4 = 18% good.
/// (Crossover gave no improvement in the authors' experiments and is not
/// used.)
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_MUTATION_H
#define CA2A_GA_MUTATION_H

#include "agent/Genome.h"
#include "support/Rng.h"

namespace ca2a {

/// Per-field mutation probabilities.
struct MutationParams {
  double PNextState = 0.18;
  double PSetColor = 0.18;
  double PMove = 0.18;
  double PTurn = 0.18;

  static MutationParams uniform(double P) { return {P, P, P, P}; }
};

/// Returns a mutated copy of \p G.
Genome mutate(const Genome &G, const MutationParams &Params, Rng &R);

/// Number of fields in which two genomes differ (0..4 per slot); a cheap
/// genotype distance used in tests and diversity reporting.
int genomeDistance(const Genome &A, const Genome &B);

} // namespace ca2a

#endif // CA2A_GA_MUTATION_H
