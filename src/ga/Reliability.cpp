//===- ga/Reliability.cpp - Cross-density reliability testing -------------===//

#include "ga/Reliability.h"

using namespace ca2a;

bool ReliabilityReport::completelySuccessful() const {
  if (Rows.empty())
    return false;
  for (const ReliabilityRow &Row : Rows)
    if (!Row.completelySuccessful())
      return false;
  return true;
}

double ReliabilityReport::totalMeanCommTime() const {
  double Total = 0.0;
  for (const ReliabilityRow &Row : Rows)
    Total += Row.MeanCommTime;
  return Total;
}

ReliabilityReport ca2a::testReliability(const Genome &G, const Torus &T,
                                        const ReliabilityParams &Params) {
  ReliabilityReport Report;
  for (int NumAgents : Params.AgentCounts) {
    assert(NumAgents >= 1 && NumAgents <= T.numCells() &&
           "agent count exceeds field capacity");
    std::vector<InitialConfiguration> Fields;
    if (NumAgents == T.numCells()) {
      // Fully packed: positions are forced; the only degree of freedom is
      // direction, which cannot matter (nobody can move). One field.
      Fields.push_back(packedConfiguration(T));
    } else {
      // Derive a per-density seed so densities get independent fields but
      // the whole sweep stays reproducible.
      uint64_t Seed = Params.FieldSeed + static_cast<uint64_t>(NumAgents);
      Fields = standardConfigurationSet(T, NumAgents, Params.NumRandomFields,
                                        Seed);
    }
    FitnessResult Result = evaluateFitness(G, T, Fields, Params.Fitness);
    ReliabilityRow Row;
    Row.NumAgents = NumAgents;
    Row.NumFields = Result.NumFields;
    Row.SolvedFields = Result.SolvedFields;
    Row.MeanCommTime = Result.MeanCommTime;
    Report.Rows.push_back(Row);
  }
  return Report;
}
