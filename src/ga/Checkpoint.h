//===- ga/Checkpoint.h - Crash-safe GA state persistence --------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/restore for long-running evolution, so a killed pipeline
/// resumes from its last completed generation instead of losing hours.
///
/// A checkpoint is a plain-text file holding one EvolutionSnapshot plus
/// the run's identifying context (grid, side length, seed) so that a
/// resume against the wrong experiment is rejected, not silently merged.
/// The format is versioned ("ca2a-evolution-checkpoint v1") and ends in
/// an FNV-1a checksum over the payload: truncated or bit-flipped files
/// fail parsing with a message instead of corrupting the GA state.
///
/// Saves are atomic and durable: the file is written to "<path>.tmp",
/// fsynced, renamed over the destination, and the directory entry is
/// fsynced too, so a crash (or power cut) mid-save leaves the previous
/// checkpoint intact on disk, not merely in the page cache. Before the
/// rename, the current checkpoint — if it parses — is promoted to
/// "<path>.bak"; the backup therefore always holds the newest *valid*
/// snapshot, and loadCheckpointWithRecovery falls back to it when the
/// primary is corrupt or unreadable. Because an EvolutionSnapshot
/// restores the GA bit-for-bit, a resumed run reaches exactly the final
/// population an uninterrupted run with the same seeds would have
/// reached — at worst one generation earlier when the backup was needed.
///
/// Failures carry ErrorCode taxonomy: Corrupt (truncation, checksum or
/// structural damage), VersionMismatch (unknown format header), Io (the
/// operating system said no). Chaos builds inject write failures and
/// payload corruption at the ckpt.write site and read failures at
/// ckpt.read, which is how the recovery path is tested.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_CHECKPOINT_H
#define CA2A_GA_CHECKPOINT_H

#include "ga/Evolution.h"
#include "support/Supervisor.h"

#include <string>

namespace ca2a {

/// One on-disk checkpoint: the snapshot plus run identity.
struct CheckpointData {
  GridKind Grid = GridKind::Square;
  int SideLength = 0;
  uint64_t Seed = 0; ///< The EvolutionParams seed of the run.
  EvolutionSnapshot Snapshot;
};

/// Renders \p Data in the versioned, checksummed text format.
std::string serializeCheckpoint(const CheckpointData &Data);

/// Parses serializeCheckpoint output. Rejects unknown versions
/// (ErrorCode::VersionMismatch), truncation, checksum mismatches and
/// structural damage (ErrorCode::Corrupt) with a descriptive error.
[[nodiscard]] Expected<CheckpointData> parseCheckpoint(const std::string &Text);

/// Writes \p Data to \p Path atomically and durably: fsynced temp file,
/// valid-previous-checkpoint promotion to "<path>.bak", rename, directory
/// fsync. Transient write failures are retried per \p Retry before the
/// error is reported.
[[nodiscard]] Expected<bool> saveCheckpoint(const std::string &Path,
                              const CheckpointData &Data,
                              const RetryPolicy &Retry = RetryPolicy());

/// Reads and parses the checkpoint at \p Path (no retry, no fallback —
/// the strict primitive underneath loadCheckpointWithRecovery).
[[nodiscard]] Expected<CheckpointData> loadCheckpoint(const std::string &Path);

/// What loadCheckpointWithRecovery had to do to produce its result.
struct CheckpointLoadReport {
  bool UsedBackup = false; ///< The primary was unusable; ".bak" answered.
  uint64_t Retries = 0;    ///< Transient read failures absorbed.
  std::string Note;        ///< Human-readable recovery explanation.
};

/// Reads the checkpoint at \p Path, retrying transient read failures and
/// falling back to "<path>.bak" (the newest previously-valid snapshot)
/// when the primary is missing, unreadable or corrupt. On success \p
/// Report (may be null) says whether recovery was needed; on failure the
/// returned error describes both files.
[[nodiscard]] Expected<CheckpointData>
loadCheckpointWithRecovery(const std::string &Path,
                           CheckpointLoadReport *Report = nullptr,
                           const RetryPolicy &Retry = RetryPolicy());

/// Backup sibling of a checkpoint path ("<path>.bak").
std::string checkpointBackupPath(const std::string &Path);

/// True when a file exists at \p Path (checkpoint discovery on resume).
bool checkpointExists(const std::string &Path);

/// Canonical per-run checkpoint file below \p Dir ("run<Run>.ckpt").
std::string checkpointRunPath(const std::string &Dir, int Run);

/// One island-to-island migrant exchange, persisted (or framed over a
/// socket) in the same versioned, checksummed plain-text family as the
/// evolution checkpoint. The route (from, to) and the 1-based migration
/// sequence number are part of the signed payload, so a mailbox file that
/// was renamed, replayed or delivered out of order fails validation with a
/// typed error instead of silently injecting the wrong generation's
/// migrants. ContextFingerprint is the sender's EvalScheduler context hash
/// (grid, simulation options, the full training-field set): two islands
/// can only exchange individuals whose fitness numbers are comparable,
/// and a mismatch means the run was misconfigured, not that data rotted.
struct MigrantBlock {
  int FromIsland = 0;
  int ToIsland = 0;
  uint64_t Sequence = 0; ///< Migration round, 1-based (generation / G).
  uint64_t ContextFingerprint = 0;
  GenomeDims Dims;
  std::vector<Individual> Migrants;
};

/// Renders \p Block in the versioned, checksummed text format.
std::string serializeMigrantBlock(const MigrantBlock &Block);

/// Parses serializeMigrantBlock output. Rejects unknown versions
/// (ErrorCode::VersionMismatch) and truncation, checksum mismatches or
/// structural damage (ErrorCode::Corrupt) with a descriptive error.
[[nodiscard]] Expected<MigrantBlock> parseMigrantBlock(const std::string &Text);

/// Verifies that \p Block is the expected edge: route (\p From -> \p To),
/// sequence \p Seq, and — when \p ContextFingerprint is nonzero — the
/// receiver's evaluation context. Mismatches classify as
/// ErrorCode::Corrupt (wrong-route/wrong-sequence delivery) so transport
/// recovery treats them like any other damaged payload.
[[nodiscard]] Expected<bool> validateMigrantBlock(const MigrantBlock &Block, int From,
                                    int To, uint64_t Seq,
                                    uint64_t ContextFingerprint);

/// Verifies that \p Data belongs to the experiment described by \p Kind,
/// \p SideLength and \p Params (grid, side, seed, dimensions, population
/// size). Returns an explanatory error on any mismatch.
[[nodiscard]] Expected<bool> validateCheckpoint(const CheckpointData &Data, GridKind Kind,
                                  int SideLength,
                                  const EvolutionParams &Params);

} // namespace ca2a

#endif // CA2A_GA_CHECKPOINT_H
