//===- ga/Checkpoint.h - Crash-safe GA state persistence --------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/restore for long-running evolution, so a killed pipeline
/// resumes from its last completed generation instead of losing hours.
///
/// A checkpoint is a plain-text file holding one EvolutionSnapshot plus
/// the run's identifying context (grid, side length, seed) so that a
/// resume against the wrong experiment is rejected, not silently merged.
/// The format is versioned ("ca2a-evolution-checkpoint v1") and ends in
/// an FNV-1a checksum over the payload: truncated or bit-flipped files
/// fail parsing with a message instead of corrupting the GA state.
///
/// Saves are atomic: the file is written to "<path>.tmp" and renamed over
/// the destination, so a crash mid-save leaves the previous checkpoint
/// intact. Because an EvolutionSnapshot restores the GA bit-for-bit, a
/// resumed run reaches exactly the final population an uninterrupted run
/// with the same seeds would have reached.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_CHECKPOINT_H
#define CA2A_GA_CHECKPOINT_H

#include "ga/Evolution.h"

#include <string>

namespace ca2a {

/// One on-disk checkpoint: the snapshot plus run identity.
struct CheckpointData {
  GridKind Grid = GridKind::Square;
  int SideLength = 0;
  uint64_t Seed = 0; ///< The EvolutionParams seed of the run.
  EvolutionSnapshot Snapshot;
};

/// Renders \p Data in the versioned, checksummed text format.
std::string serializeCheckpoint(const CheckpointData &Data);

/// Parses serializeCheckpoint output. Rejects unknown versions, missing
/// or malformed fields, and checksum mismatches with a descriptive error.
Expected<CheckpointData> parseCheckpoint(const std::string &Text);

/// Writes \p Data to \p Path atomically (write to "<path>.tmp", rename).
Expected<bool> saveCheckpoint(const std::string &Path,
                              const CheckpointData &Data);

/// Reads and parses the checkpoint at \p Path.
Expected<CheckpointData> loadCheckpoint(const std::string &Path);

/// True when a file exists at \p Path (checkpoint discovery on resume).
bool checkpointExists(const std::string &Path);

/// Canonical per-run checkpoint file below \p Dir ("run<Run>.ckpt").
std::string checkpointRunPath(const std::string &Dir, int Run);

/// Verifies that \p Data belongs to the experiment described by \p Kind,
/// \p SideLength and \p Params (grid, side, seed, dimensions, population
/// size). Returns an explanatory error on any mismatch.
Expected<bool> validateCheckpoint(const CheckpointData &Data, GridKind Kind,
                                  int SideLength,
                                  const EvolutionParams &Params);

} // namespace ca2a

#endif // CA2A_GA_CHECKPOINT_H
