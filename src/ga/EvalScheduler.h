//===- ga/EvalScheduler.h - Generation-wide fitness scheduler ---*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GA's evaluation layer. The legacy loop calls evaluateFitness once
/// per genome, so every generation pays (a) re-simulating genomes it has
/// already measured and (b) simulating every field of offspring that are
/// provably too bad to survive selection. EvalScheduler replaces those
/// per-genome calls with one generation-wide submission that
///
///   1. memoizes FitnessResults in an LRU cache keyed by the canonical
///      genome hash mixed with a fingerprint of the field set and
///      simulation parameters (only *exact* full evaluations are cached,
///      never pruned partials);
///   2. flattens all uncached (genome, field) pairs into a single
///      BatchEngine run (or one chunked reference-World sweep), instead of
///      one engine submission per genome;
///   3. aborts a genome's remaining fields early once a certified lower
///      bound on its mean fitness exceeds the generation's survival
///      threshold — the N-th best exact fitness known so far.
///
/// The pruning is *exact* with respect to selection: the paper's
/// sort/dedup/truncate keeps the best N of the N parents plus offspring,
/// and a genome is cancelled only when strictly more than N - 1 other
/// candidates are already known (exactly) to be strictly better, so it
/// would be truncated no matter what its remaining fields return. The
/// per-field bound is behaviour-free:
///
///     F_i >= min(communicationLowerBound(field), Weight)
///
/// — a successful run needs t_comm >= the communication lower bound, any
/// failure or agent death costs at least one dominance weight W. Partial
/// sums use only *measured* per-field fitness values, so the bound
/// certificate is sound under fault injection, k = 1 fields, and
/// MaxSteps below the bound. Comparisons carry a 0.5 slack in fitness-sum
/// units: with the paper's integer-valued W every per-field fitness is an
/// exact integer in double precision, so the slack costs nothing and
/// absorbs the one-ulp rounding of mean-to-sum conversions.
///
/// Pruned outcomes report the certified bound as their fitness, which by
/// construction ranks them strictly below every survivor; selection (and
/// therefore the whole evolution trajectory, champions included) is
/// bit-identical to exhaustive evaluation. SchedulerParams::ExactFitness
/// disables the pruning (memoization and batching stay on) so the claim
/// can be checked, not just believed — tests/ga/EvalSchedulerTest.cpp
/// diffs champions across seeds, and bench/bench_scheduler.cpp reports
/// the speedup it buys.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_EVALSCHEDULER_H
#define CA2A_GA_EVALSCHEDULER_H

#include "ga/Fitness.h"
#include "support/Supervisor.h"

#include <list>
#include <unordered_map>
#include <vector>

namespace ca2a {

/// Scheduler knobs (all defaults are the production setting).
struct SchedulerParams {
  /// Master switch. False restores the legacy one-evaluateFitness-per-
  /// genome loop (the PR-2 baseline the benchmark measures against).
  bool Enabled = true;
  /// True disables bound-based early abort: every requested genome is
  /// evaluated on every field (memoization and batching stay active).
  /// Selection outcomes are identical either way; this switch exists to
  /// prove it.
  bool ExactFitness = false;
  /// Capacity of the fitness memo cache, in genomes (LRU eviction).
  /// A GA run touches ~N * 1.5 live genomes per generation, so a few
  /// thousand entries hold many generations of history. 0 disables
  /// memoization.
  size_t CacheCapacity = 4096;
  /// Supervised execution: transient per-item failures (injected chaos,
  /// real infrastructure faults) are retried with capped exponential
  /// backoff before the item is quarantined. Retried work recomputes the
  /// identical deterministic result, so the policy affects latency and
  /// robustness only, never selection.
  RetryPolicy Retry;
  /// Generation watchdog deadline, in seconds. While a generation
  /// evaluates, an interval of this length with no completed item raises
  /// a stall notification (counted in SchedulerStats::WatchdogStalls and
  /// forwarded to OnStall). <= 0 disables the watchdog entirely.
  double GenerationDeadlineSeconds = 0.0;
  /// Stall observer, called on the watchdog's monitor thread with the
  /// cumulative silent time in seconds. May be null. Must synchronise its
  /// own state; must not block.
  std::function<void(double)> OnStall;
};

/// Scheduler instrumentation. Counters are cumulative over the scheduler's
/// lifetime; with NumWorkers > 1 the pruning counters may vary between
/// runs (completion order decides *which* provably-doomed genome gets
/// cancelled first), but selection outcomes never do.
struct SchedulerStats {
  uint64_t Requests = 0;         ///< Genome evaluations asked for.
  uint64_t CacheHits = 0;        ///< Requests answered from the memo cache.
  uint64_t GenomesSimulated = 0; ///< Genomes fully simulated (all fields).
  uint64_t GenomesPruned = 0;    ///< Genomes cancelled by the bound.
  uint64_t FieldsSimulated = 0;  ///< (genome, field) pairs simulated.
  uint64_t FieldsPruned = 0;     ///< (genome, field) pairs skipped.
  uint64_t Batches = 0;          ///< Engine submissions issued.

  // Supervised-execution instrumentation. All zero in a healthy run; any
  // nonzero value is the robustness layer reporting that it absorbed an
  // infrastructure fault (injected or real) without corrupting results.
  uint64_t TaskRetries = 0;      ///< Transient failures absorbed by retry.
  uint64_t ItemsQuarantined = 0; ///< (genome, field) pairs that exhausted
                                 ///< every attempt and were excluded.
  uint64_t GenomesDegraded = 0;  ///< Genomes whose fitness fell back to a
                                 ///< certified bound due to quarantine.
  uint64_t WatchdogStalls = 0;   ///< Silent deadline intervals detected.

  // Engine-level hot-path instrumentation, accumulated over every batch
  // submission (zero when the reference engine runs — World carries no
  // such counters).
  uint64_t EngineCompileHits = 0;   ///< Compile-cache hits across batches.
  uint64_t EngineCompileMisses = 0; ///< Distinct genome compilations.
  uint64_t EngineAllocations = 0;   ///< Workspace-arena buffer growths.
  uint64_t EngineSteadyAllocations = 0; ///< Growths after slot warm-up.

  // Replica-major slab accounting, accumulated over every batch
  // submission; nonzero only under the rmaj64 backend. The scheduler
  // submits in field-major order after memoizing duplicate (genome,
  // field) requests away, so its batches typically carry NO clone
  // structure and rmaj64 forms occupancy-1 slabs (sliced64 parity).
  // These counters make that honest trade-off observable instead of a
  // folklore claim: a replica-averaging workload routed through the
  // scheduler would show EngineSlabLanes >> EngineSlabsFormed here.
  uint64_t EngineSlabsFormed = 0;
  uint64_t EngineSlabLanes = 0;
  uint64_t EngineLanesRetiredEarly = 0;

  /// Fraction of requests served from the cache.
  double hitRate() const {
    return Requests ? static_cast<double>(CacheHits) /
                          static_cast<double>(Requests)
                    : 0.0;
  }
  /// Fraction of per-replica table resolutions served by the engine's
  /// per-run genome-compile cache.
  double engineCompileHitRate() const {
    uint64_t Total = EngineCompileHits + EngineCompileMisses;
    return Total ? static_cast<double>(EngineCompileHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
  /// Fraction of scheduled fields skipped by early abort.
  double pruneRate() const {
    uint64_t Scheduled = FieldsSimulated + FieldsPruned;
    return Scheduled ? static_cast<double>(FieldsPruned) /
                           static_cast<double>(Scheduled)
                     : 0.0;
  }
  /// Mean (genome, field) pairs per engine submission — how much work
  /// each batch amortises its fan-out over.
  double batchOccupancy() const {
    uint64_t Scheduled = FieldsSimulated + FieldsPruned;
    return Batches ? static_cast<double>(Scheduled) /
                         static_cast<double>(Batches)
                   : 0.0;
  }

  SchedulerStats &operator+=(const SchedulerStats &Other) {
    Requests += Other.Requests;
    CacheHits += Other.CacheHits;
    GenomesSimulated += Other.GenomesSimulated;
    GenomesPruned += Other.GenomesPruned;
    FieldsSimulated += Other.FieldsSimulated;
    FieldsPruned += Other.FieldsPruned;
    Batches += Other.Batches;
    TaskRetries += Other.TaskRetries;
    ItemsQuarantined += Other.ItemsQuarantined;
    GenomesDegraded += Other.GenomesDegraded;
    WatchdogStalls += Other.WatchdogStalls;
    EngineCompileHits += Other.EngineCompileHits;
    EngineCompileMisses += Other.EngineCompileMisses;
    EngineAllocations += Other.EngineAllocations;
    EngineSteadyAllocations += Other.EngineSteadyAllocations;
    EngineSlabsFormed += Other.EngineSlabsFormed;
    EngineSlabLanes += Other.EngineSlabLanes;
    EngineLanesRetiredEarly += Other.EngineLanesRetiredEarly;
    return *this;
  }
};

/// Outcome of one requested genome evaluation.
struct EvalOutcome {
  FitnessResult Result;
  /// True when the evaluation was aborted early. Result.Fitness is then a
  /// certified *lower bound* that provably exceeds the generation's
  /// survival threshold (so the genome sorts below every survivor);
  /// Result.SolvedFields counts only the fields that did run. Pruned
  /// results are never cached.
  bool Pruned = false;
  /// True when one or more of the genome's fields exhausted every retry
  /// attempt and were quarantined. Result.Fitness is then the certified
  /// lower bound (measured fields exactly, quarantined fields at their
  /// behaviour-free bound) — pessimistic, so a degraded genome can rank
  /// too *well*, never too poorly. Callers that keep a degraded genome
  /// must re-evaluate it exactly (Evolution's repair pass does). Degraded
  /// results are never cached.
  bool Degraded = false;
  /// True when the result came from the memo cache (always exact).
  bool CacheHit = false;
};

/// Generation-wide fitness evaluator for one (torus, field set, params)
/// training context. Both borrows must outlive the scheduler; the field
/// set must not be modified while it is alive (the memo cache keys
/// against a fingerprint taken at construction).
class EvalScheduler {
public:
  EvalScheduler(const Torus &T,
                const std::vector<InitialConfiguration> &Fields,
                const FitnessParams &Fitness, const SchedulerParams &Params);

  /// Evaluates a whole generation's worth of genomes in one batched
  /// submission.
  ///
  /// \p Incumbents are the exact fitnesses of the current pool (the
  /// candidates the genomes compete against); their count N is the
  /// selection's survival capacity. Early abort triggers for a genome as
  /// soon as N other candidates — incumbents or already-completed members
  /// of this very batch — are exactly known to beat its certified bound.
  /// Pass an empty vector (e.g. for the initial population) to disable
  /// pruning: every genome is then evaluated exactly.
  ///
  /// Outcomes are returned in request order. Genomes may repeat; later
  /// duplicates are answered from the first occurrence (counted as cache
  /// hits). Results are bit-identical to evaluateFitness for every
  /// NumWorkers / engine combination.
  std::vector<EvalOutcome>
  evaluateGeneration(const std::vector<const Genome *> &Genomes,
                     const std::vector<double> &Incumbents);

  /// Single-genome convenience wrapper: always exact (never pruned),
  /// served from / inserted into the memo cache like any other request.
  FitnessResult evaluate(const Genome &G);

  const SchedulerStats &stats() const { return Stats; }
  const FitnessParams &fitnessParams() const { return Fitness; }

  /// The memo key context: FNV-1a over grid kind/size, simulation options
  /// and field placements (exposed for tests).
  uint64_t contextFingerprint() const { return ContextHash; }

private:
  struct CacheEntry {
    uint64_t Key = 0;
    Genome G;
    FitnessResult Result;
  };

  /// Cache lookup; moves a hit to the front of the LRU list.
  const FitnessResult *cacheLookup(uint64_t Key, const Genome &G);
  /// Inserts an exact result, evicting the least-recently-used entry.
  void cacheInsert(uint64_t Key, const Genome &G,
                   const FitnessResult &Result);

  const Torus &T;
  const std::vector<InitialConfiguration> &Fields;
  FitnessParams Fitness;
  SchedulerParams Params;
  SchedulerStats Stats;

  uint64_t ContextHash = 0;
  /// Per-field certified fitness lower bound, min(commBound, Weight).
  std::vector<double> FieldBounds;
  double TotalFieldBound = 0.0; ///< Sum of FieldBounds.

  /// LRU memo cache: most-recently-used at the front. Keys collide only
  /// on 64-bit hash collisions; entries store the genome and verify real
  /// equality on lookup.
  std::list<CacheEntry> CacheList;
  std::unordered_multimap<uint64_t, std::list<CacheEntry>::iterator>
      CacheIndex;
};

} // namespace ca2a

#endif // CA2A_GA_EVALSCHEDULER_H
