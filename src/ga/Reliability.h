//===- ga/Reliability.h - Cross-density reliability testing -----*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's FSM selection filter (Sect. 4): candidate FSMs evolved at
/// one density (8 agents) are re-tested at N_agents in {2, 4, 8, 16, 32,
/// 256}, each on the standard 1000-random-plus-manual configuration set;
/// only FSMs *completely successful* on every set are kept and ranked by
/// total communication time.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GA_RELIABILITY_H
#define CA2A_GA_RELIABILITY_H

#include "ga/Fitness.h"

#include <vector>

namespace ca2a {

/// Result for one agent count.
struct ReliabilityRow {
  int NumAgents = 0;
  int NumFields = 0;
  int SolvedFields = 0;
  double MeanCommTime = 0.0; ///< Over solved fields.

  bool completelySuccessful() const {
    return NumFields > 0 && SolvedFields == NumFields;
  }
};

/// Aggregate over all tested densities.
struct ReliabilityReport {
  std::vector<ReliabilityRow> Rows;

  bool completelySuccessful() const;
  /// Sum of the per-density mean times: the paper's ranking criterion.
  double totalMeanCommTime() const;
};

/// Agent-count sweep parameters.
struct ReliabilityParams {
  std::vector<int> AgentCounts = {2, 4, 8, 16, 32, 256};
  int NumRandomFields = 1000; ///< Plus manual designs where placeable.
  uint64_t FieldSeed = 20130101;
  FitnessParams Fitness;
};

/// Tests \p G at every density in \p Params on fresh standard sets. The
/// packed density (NumAgents == number of cells) replaces the random set
/// with the single fully packed configuration (there is only one).
ReliabilityReport testReliability(const Genome &G, const Torus &T,
                                  const ReliabilityParams &Params);

} // namespace ca2a

#endif // CA2A_GA_RELIABILITY_H
