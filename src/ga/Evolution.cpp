//===- ga/Evolution.cpp - The paper's genetic procedure -------------------===//

#include "ga/Evolution.h"

#include "ga/Crossover.h"

#include <algorithm>
#include <limits>

using namespace ca2a;

Evolution::Evolution(const Torus &T,
                     std::vector<InitialConfiguration> TrainingFields,
                     const EvolutionParams &Params)
    : T(T), TrainingFields(std::move(TrainingFields)), Params(Params),
      R(Params.Seed),
      Sched(T, this->TrainingFields, Params.Fitness, Params.Scheduler) {
  assert(Params.PopulationSize >= 2 && "population too small");
  assert(Params.ExchangeCount >= 0 &&
         Params.ExchangeCount <= Params.PopulationSize / 4 &&
         "exchange block must fit inside each pool half");
  assert(!this->TrainingFields.empty() && "no training fields");
  assert(Params.Dims.valid() && "bad genome dimensions");
  Pool.reserve(static_cast<size_t>(Params.PopulationSize) * 3 / 2);
  // The initial pool is evaluated exactly (no pruning: all N members are
  // kept, so there is no survival threshold to prune against).
  std::vector<Genome> Randoms;
  Randoms.reserve(static_cast<size_t>(Params.PopulationSize));
  for (int I = 0; I != Params.PopulationSize; ++I)
    Randoms.push_back(Genome::random(R, Params.Dims));
  appendEvaluated(std::move(Randoms), /*AllowPruning=*/false);
  std::stable_sort(Pool.begin(), Pool.end(),
                   [](const Individual &A, const Individual &B) {
                     return A.Fitness < B.Fitness;
                   });
  BestEver = Pool.front();
}

Evolution::Evolution(const Torus &T,
                     std::vector<InitialConfiguration> TrainingFields,
                     const EvolutionParams &Params,
                     const EvolutionSnapshot &Resume)
    : T(T), TrainingFields(std::move(TrainingFields)), Params(Params),
      R(Params.Seed),
      Sched(T, this->TrainingFields, Params.Fitness, Params.Scheduler) {
  assert(Params.PopulationSize >= 2 && "population too small");
  assert(Params.ExchangeCount >= 0 &&
         Params.ExchangeCount <= Params.PopulationSize / 4 &&
         "exchange block must fit inside each pool half");
  assert(!this->TrainingFields.empty() && "no training fields");
  assert(Params.Dims.valid() && "bad genome dimensions");
  assert(Resume.Pool.size() ==
             static_cast<size_t>(Params.PopulationSize) &&
         "snapshot pool size does not match the population size");
  assert(Resume.Dims == Params.Dims &&
         "snapshot genome dimensions do not match");
  Pool.reserve(static_cast<size_t>(Params.PopulationSize) * 3 / 2);
  Pool = Resume.Pool;
  BestEver = Resume.BestEver;
  Generation = Resume.Generation;
  Evaluations = Resume.Evaluations;
  R.setState(Resume.RngState);
}

EvolutionSnapshot Evolution::snapshot() const {
  EvolutionSnapshot S;
  S.Generation = Generation;
  S.Evaluations = Evaluations;
  S.RngState = R.state();
  S.Dims = Params.Dims;
  S.Pool = Pool;
  S.BestEver = BestEver;
  return S;
}

std::vector<Individual> Evolution::selectMigrants(int K) const {
  assert(K >= 0 && "negative migrant count");
  // The pool carries the diversity-exchange order, not rank order, so
  // select by fitness explicitly (stable on pool position for ties).
  std::vector<size_t> Order(Pool.size());
  for (size_t I = 0; I != Pool.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Pool[A].Fitness < Pool[B].Fitness;
  });
  std::vector<Individual> Out;
  size_t Count = std::min(static_cast<size_t>(K), Pool.size());
  Out.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Out.push_back(Pool[Order[I]]);
  return Out;
}

int Evolution::injectMigrants(const std::vector<Individual> &Migrants) {
  int Accepted = 0;
  for (const Individual &Migrant : Migrants) {
    assert(Migrant.G.dims() == Params.Dims &&
           "migrant genome dimensions do not match this island");
    bool Duplicate =
        std::any_of(Pool.begin(), Pool.end(), [&](const Individual &Ind) {
          return Ind.G == Migrant.G;
        });
    if (Duplicate)
      continue;
    // Current worst: highest fitness, later pool position on ties (the
    // member the next truncation would discard anyway).
    size_t Worst = 0;
    for (size_t I = 1; I != Pool.size(); ++I)
      if (Pool[I].Fitness >= Pool[Worst].Fitness)
        Worst = I;
    if (Migrant.Fitness >= Pool[Worst].Fitness)
      continue;
    Pool[Worst] = Migrant;
    Pool[Worst].Pruned = false;
    ++Accepted;
    if (Migrant.Fitness < BestEver.Fitness)
      BestEver = Pool[Worst];
  }
  return Accepted;
}

Individual Evolution::evaluate(Genome G) {
  FitnessResult Result =
      Params.Scheduler.Enabled
          ? Sched.evaluate(G)
          : evaluateFitness(G, T, TrainingFields, Params.Fitness);
  ++Evaluations;
  Individual Ind;
  Ind.G = std::move(G);
  Ind.Fitness = Result.Fitness;
  Ind.SolvedFields = Result.SolvedFields;
  Ind.CompletelySuccessful = Result.completelySuccessful();
  return Ind;
}

void Evolution::appendEvaluated(std::vector<Genome> Genomes,
                                bool AllowPruning) {
  if (!Params.Scheduler.Enabled) {
    for (Genome &G : Genomes)
      Pool.push_back(evaluate(std::move(G)));
    return;
  }
  std::vector<const Genome *> Requests;
  Requests.reserve(Genomes.size());
  for (const Genome &G : Genomes)
    Requests.push_back(&G);
  std::vector<double> Incumbents;
  if (AllowPruning) {
    Incumbents.reserve(Pool.size());
    for (const Individual &Ind : Pool)
      Incumbents.push_back(Ind.Fitness);
  }
  std::vector<EvalOutcome> Outcomes =
      Sched.evaluateGeneration(Requests, Incumbents);
  Evaluations += static_cast<int>(Genomes.size());
  for (size_t I = 0; I != Genomes.size(); ++I) {
    Individual Ind;
    Ind.G = std::move(Genomes[I]);
    Ind.Fitness = Outcomes[I].Result.Fitness;
    Ind.SolvedFields = Outcomes[I].Result.SolvedFields;
    Ind.CompletelySuccessful = Outcomes[I].Result.completelySuccessful();
    // Degraded outcomes (quarantined fields under infrastructure faults)
    // are bound-valued exactly like pruned ones; the same repair pass
    // re-evaluates either before it can survive selection.
    Ind.Pruned = Outcomes[I].Pruned || Outcomes[I].Degraded;
    Pool.push_back(std::move(Ind));
  }
}

void Evolution::sortDedupTruncate() {
  std::stable_sort(Pool.begin(), Pool.end(),
                   [](const Individual &A, const Individual &B) {
                     return A.Fitness < B.Fitness;
                   });
  // Delete genotype duplicates, keeping the first (best-ranked) copy.
  // Equal fitness with distinct genomes is allowed.
  std::vector<Individual> Unique;
  Unique.reserve(Pool.size());
  for (Individual &Ind : Pool) {
    bool Duplicate = false;
    for (const Individual &Kept : Unique) {
      if (Kept.G == Ind.G) {
        Duplicate = true;
        break;
      }
    }
    if (!Duplicate)
      Unique.push_back(std::move(Ind));
  }
  Pool = std::move(Unique);
  size_t N = static_cast<size_t>(Params.PopulationSize);
  // Repair pass: a pruned member's fitness is a certified lower bound
  // proven (against N distinct better candidates) to lose selection, so
  // normally every pruned member sits strictly beyond the truncation
  // boundary. The only exception is a pool that contained genotype
  // duplicates (possible in generation 1 when two random genomes
  // collide), which weakens the scheduler's distinctness premise. Any
  // pruned member at or inside the boundary is therefore re-evaluated
  // exactly before truncating, which restores exact selection even then.
  // Degraded members (quarantined fields under infrastructure faults)
  // carry the same marker and get the same treatment; the re-evaluation
  // result is accepted either way, so a fault regime persistent enough to
  // degrade the retry too yields a pessimistic bound, never a hang.
  while (true) {
    double Boundary = Pool.size() >= N
                          ? Pool[N - 1].Fitness
                          : std::numeric_limits<double>::infinity();
    auto Doomed = [&](const Individual &Ind) {
      return Ind.Pruned && Ind.Fitness <= Boundary;
    };
    auto It = std::find_if(Pool.begin(), Pool.end(), Doomed);
    if (It == Pool.end())
      break;
    *It = evaluate(std::move(It->G));
    std::stable_sort(Pool.begin(), Pool.end(),
                     [](const Individual &A, const Individual &B) {
                       return A.Fitness < B.Fitness;
                     });
  }
  if (Pool.size() > N)
    Pool.resize(N);
  // Deduplication can shrink the pool below N; refill with fresh random
  // genomes (kept sorted by a final insertion pass).
  while (Pool.size() < N)
    Pool.push_back(evaluate(Genome::random(R, Params.Dims)));
  std::stable_sort(Pool.begin(), Pool.end(),
                   [](const Individual &A, const Individual &B) {
                     return A.Fitness < B.Fitness;
                   });
}

void Evolution::diversityExchange() {
  // Swap the last b of the first half with the first b of the second half:
  // with N = 20, b = 3 that is ranks 7,8,9 <-> 10,11,12, exactly the
  // paper's "individuals 7, 8, 9 are exchanged with 10, 11, 12".
  int Half = Params.PopulationSize / 2;
  int B = Params.ExchangeCount;
  for (int I = 0; I != B; ++I)
    std::swap(Pool[static_cast<size_t>(Half - B + I)],
              Pool[static_cast<size_t>(Half + I)]);
}

GenerationStats Evolution::stepGeneration() {
  int NumOffspring = Params.PopulationSize / 2;
  // Parents are the current top half *in pool order*, which reflects the
  // previous generation's diversity exchange. All offspring genomes are
  // produced before any is evaluated: evaluation consumes nothing from
  // the evolution RNG, so this replays the legacy generate-evaluate
  // interleaving bit-for-bit while enabling one batched submission.
  std::vector<Genome> Children;
  Children.reserve(static_cast<size_t>(NumOffspring));
  for (int I = 0; I != NumOffspring; ++I) {
    Genome Child = Pool[static_cast<size_t>(I)].G;
    if (Params.CrossoverProbability > 0.0 &&
        R.bernoulli(Params.CrossoverProbability)) {
      // Pick a distinct second parent from the top half.
      int J = static_cast<int>(R.uniformInt(
          static_cast<uint64_t>(NumOffspring - 1)));
      if (J >= I)
        ++J;
      Child = crossoverOnePoint(Child, Pool[static_cast<size_t>(J)].G, R);
    }
    Children.push_back(mutate(Child, Params.Mutation, R));
  }

  // Pre-selection dedup: a child identical to a pool member (or to an
  // earlier child) would evaluate to the same fitness as its twin and be
  // deleted by sortDedupTruncate's keep-the-first-copy rule, so dropping
  // it before evaluation cannot change the trajectory (EvolutionTest pins
  // this) and saves its simulations. Dropped children still count as
  // requested evaluations, keeping the counter identical to the
  // exhaustive loop.
  std::vector<Genome> Fresh;
  Fresh.reserve(Children.size());
  for (Genome &Child : Children) {
    bool Duplicate =
        std::any_of(Pool.begin(), Pool.end(),
                    [&](const Individual &Ind) { return Ind.G == Child; }) ||
        std::any_of(Fresh.begin(), Fresh.end(),
                    [&](const Genome &Kept) { return Kept == Child; });
    if (Duplicate)
      ++Evaluations;
    else
      Fresh.push_back(std::move(Child));
  }

  appendEvaluated(std::move(Fresh), /*AllowPruning=*/true);

  sortDedupTruncate();
  if (Pool.front().Fitness < BestEver.Fitness)
    BestEver = Pool.front();
  diversityExchange();
  ++Generation;

  GenerationStats Stats;
  Stats.Generation = Generation;
  Stats.BestFitness = BestEver.Fitness;
  double Sum = 0.0;
  for (const Individual &Ind : Pool) {
    Sum += Ind.Fitness;
    Stats.NumCompletelySuccessful += Ind.CompletelySuccessful ? 1 : 0;
    Stats.BestSolvedFields = std::max(Stats.BestSolvedFields, Ind.SolvedFields);
  }
  Stats.MeanFitness = Sum / static_cast<double>(Pool.size());
  Stats.Evaluations = Evaluations;
  Stats.Sched = Sched.stats();
  return Stats;
}

Individual Evolution::run(
    int Generations,
    const std::function<void(const GenerationStats &)> &OnGeneration) {
  for (int I = 0; I != Generations; ++I) {
    GenerationStats Stats = stepGeneration();
    if (OnGeneration)
      OnGeneration(Stats);
  }
  return BestEver;
}
