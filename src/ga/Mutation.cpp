//===- ga/Mutation.cpp - Field-wise genome mutation -----------------------===//

#include "ga/Mutation.h"

using namespace ca2a;

Genome ca2a::mutate(const Genome &G, const MutationParams &Params, Rng &R) {
  Genome Out = G;
  const GenomeDims &Dims = G.dims();
  for (int I = 0, E2 = Out.length(); I != E2; ++I) {
    GenomeEntry &E = Out.slot(I);
    if (R.bernoulli(Params.PNextState))
      E.NextState = static_cast<uint8_t>((E.NextState + 1) % Dims.States);
    if (R.bernoulli(Params.PSetColor))
      E.Act.SetColor =
          static_cast<uint8_t>((E.Act.SetColor + 1) % Dims.Colors);
    if (R.bernoulli(Params.PMove))
      E.Act.Move = !E.Act.Move;
    if (R.bernoulli(Params.PTurn))
      E.Act.TurnCode = static_cast<Turn>(
          (static_cast<int>(E.Act.TurnCode) + 1) % NumTurnCodes);
  }
  return Out;
}

int ca2a::genomeDistance(const Genome &A, const Genome &B) {
  assert(A.dims() == B.dims() && "distance needs equal dimensions");
  int Distance = 0;
  for (int I = 0, E2 = A.length(); I != E2; ++I) {
    const GenomeEntry &Ea = A.slot(I);
    const GenomeEntry &Eb = B.slot(I);
    Distance += (Ea.NextState != Eb.NextState);
    Distance += (Ea.Act.SetColor != Eb.Act.SetColor);
    Distance += (Ea.Act.Move != Eb.Act.Move);
    Distance += (Ea.Act.TurnCode != Eb.Act.TurnCode);
  }
  return Distance;
}
