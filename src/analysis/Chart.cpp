//===- analysis/Chart.cpp - ASCII line charts -----------------------------===//

#include "analysis/Chart.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ca2a;

std::string
ca2a::renderCategoryChart(const std::vector<std::string> &CategoryLabels,
                          const std::vector<ChartSeries> &Series, int Height,
                          int ColumnWidth) {
  assert(Height >= 2 && ColumnWidth >= 2 && "degenerate chart geometry");
  size_t NumCategories = CategoryLabels.size();
  double MaxValue = 0.0;
  for (const ChartSeries &S : Series) {
    assert(S.Values.size() == NumCategories &&
           "series length must match the category count");
    for (double V : S.Values)
      MaxValue = std::max(MaxValue, V);
  }
  if (MaxValue <= 0.0)
    MaxValue = 1.0;

  // Canvas: Height rows, one column block per category.
  size_t Width = NumCategories * static_cast<size_t>(ColumnWidth);
  std::vector<std::string> Canvas(static_cast<size_t>(Height),
                                  std::string(Width, ' '));
  auto Plot = [&](size_t Category, double Value, char Marker) {
    int Row = static_cast<int>(std::lround(
        (1.0 - Value / MaxValue) * (Height - 1)));
    Row = std::clamp(Row, 0, Height - 1);
    size_t Column = Category * static_cast<size_t>(ColumnWidth) +
                    static_cast<size_t>(ColumnWidth) / 2;
    char &Cell = Canvas[static_cast<size_t>(Row)][Column];
    // Overlapping series show as '+'.
    Cell = (Cell == ' ') ? Marker : '+';
  };
  for (const ChartSeries &S : Series)
    for (size_t I = 0; I != NumCategories; ++I)
      Plot(I, S.Values[I], S.Marker);

  // Assemble with a y-axis scale on the left.
  std::string Out;
  for (int Row = 0; Row != Height; ++Row) {
    double RowValue = MaxValue * (1.0 - static_cast<double>(Row) /
                                            (Height - 1));
    Out += padLeft(formatFixed(RowValue, 0), 6) + " |" +
           Canvas[static_cast<size_t>(Row)] + "\n";
  }
  Out += "       +" + std::string(Width, '-') + "\n        ";
  for (const std::string &Label : CategoryLabels)
    Out += padRight(Label, static_cast<size_t>(ColumnWidth));
  Out += "\n";
  for (const ChartSeries &S : Series)
    Out += formatString("        %c = %s\n", S.Marker, S.Label.c_str());
  return Out;
}
