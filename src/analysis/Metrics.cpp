//===- analysis/Metrics.cpp - Behavioural run metrics ---------------------===//

#include "analysis/Metrics.h"

#include "support/StringUtils.h"

using namespace ca2a;

RunMetrics ca2a::collectRunMetrics(World &W) {
  RunMetrics M;
  std::vector<int32_t> LastCells;
  M.Result = W.run([&](const World &World, int) {
    const Torus &T = World.torus();
    int K = World.numAgents();
    // Movement accounting: compare with the previous observation. The
    // observer fires after the exchange of step t, i.e. after the moves of
    // step t-1.
    if (!LastCells.empty()) {
      for (int Id = 0; Id != K; ++Id) {
        if (World.agent(Id).Cell == LastCells[static_cast<size_t>(Id)])
          ++M.WaitSteps;
        else
          ++M.MoveSteps;
      }
    }
    LastCells.resize(static_cast<size_t>(K));
    for (int Id = 0; Id != K; ++Id)
      LastCells[static_cast<size_t>(Id)] = World.agent(Id).Cell;

    // Meetings: adjacent agent pairs right now. Count each pair once by
    // only looking at neighbours with a larger agent id.
    for (int Id = 0; Id != K; ++Id) {
      const int32_t *Neighbors = T.neighbors(World.agent(Id).Cell);
      for (int D = 0; D != T.degree(); ++D) {
        int Other = World.agentAt(Neighbors[D]);
        if (Other > Id)
          ++M.MeetingEvents;
      }
    }
    ++M.StepsObserved;
  });
  for (int Cell = 0; Cell != W.torus().numCells(); ++Cell)
    M.FinalColoredCells += W.colorAt(Cell) ? 1 : 0;
  return M;
}

std::string ca2a::formatRunMetrics(const RunMetrics &M) {
  return formatString(
      "t=%d move%%=%s meetings/step=%s colored=%d",
      M.Result.Success ? M.Result.TComm : -1,
      formatFixed(100.0 * M.moveFraction(), 1).c_str(),
      formatFixed(M.meetingsPerStep(), 2).c_str(), M.FinalColoredCells);
}
