//===- analysis/Significance.h - Statistical comparison ---------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistical backing for the headline comparison. The paper reports
/// plain means; for EXPERIMENTS.md we add (a) Welch's unequal-variance
/// t-statistic for the S-vs-T mean difference and (b) seeded bootstrap
/// percentile confidence intervals for the T/S mean ratio, so "T is ~1.5x
/// faster" comes with an uncertainty band.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_ANALYSIS_SIGNIFICANCE_H
#define CA2A_ANALYSIS_SIGNIFICANCE_H

#include "support/Rng.h"

#include <vector>

namespace ca2a {

/// Welch's t-test summary for mean(A) - mean(B).
struct WelchResult {
  double MeanA = 0.0;
  double MeanB = 0.0;
  double TStatistic = 0.0;      ///< (meanA - meanB) / pooled SE.
  double DegreesOfFreedom = 0.0; ///< Welch-Satterthwaite approximation.

  /// |t| > 3 with df > 30: overwhelming evidence by any convention; the
  /// simulation samples here have n ~ 1000, so we report the statistic
  /// itself instead of interpolating p-value tables.
  bool overwhelming() const {
    return (TStatistic > 3.0 || TStatistic < -3.0) && DegreesOfFreedom > 30;
  }
};

/// Welch's t for two independent samples. Requires two observations per
/// sample (asserted).
WelchResult welchTTest(const std::vector<double> &A,
                       const std::vector<double> &B);

/// Percentile bootstrap confidence interval for a ratio of means
/// mean(Numerator) / mean(Denominator), from independent resamples.
struct BootstrapInterval {
  double Estimate = 0.0; ///< Point estimate from the full samples.
  double Low = 0.0;      ///< Lower percentile bound.
  double High = 0.0;     ///< Upper percentile bound.
};

/// \p Level e.g. 0.95; \p Resamples e.g. 2000. Deterministic given \p R.
BootstrapInterval bootstrapMeanRatio(const std::vector<double> &Numerator,
                                     const std::vector<double> &Denominator,
                                     double Level, int Resamples, Rng &R);

} // namespace ca2a

#endif // CA2A_ANALYSIS_SIGNIFICANCE_H
