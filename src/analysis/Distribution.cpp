//===- analysis/Distribution.cpp - t_comm distributions -------------------===//

#include "analysis/Distribution.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace ca2a;

CommTimeDistribution
ca2a::collectCommTimes(const Genome &G, const Torus &T,
                       const std::vector<InitialConfiguration> &Fields,
                       const SimOptions &Options) {
  CommTimeDistribution D;
  World W(T);
  for (const InitialConfiguration &Field : Fields) {
    W.reset(G, Field.Placements, Options);
    SimResult R = W.run();
    if (R.Success)
      D.Times.push_back(static_cast<double>(R.TComm));
    else
      ++D.Unsolved;
  }
  D.Stats = Summary::of(D.Times);
  return D;
}

std::string ca2a::renderHistogram(const std::vector<double> &Times,
                                  int NumBuckets, int BarWidth) {
  assert(NumBuckets >= 1 && "need at least one bucket");
  if (Times.empty())
    return "(empty sample)\n";
  double Min = *std::min_element(Times.begin(), Times.end());
  double Max = *std::max_element(Times.begin(), Times.end());
  double Width = (Max - Min) / NumBuckets;
  if (Width <= 0.0)
    Width = 1.0;
  std::vector<int> Counts(static_cast<size_t>(NumBuckets), 0);
  for (double V : Times) {
    int Bucket = static_cast<int>((V - Min) / Width);
    Bucket = std::min(Bucket, NumBuckets - 1);
    ++Counts[static_cast<size_t>(Bucket)];
  }
  int Peak = *std::max_element(Counts.begin(), Counts.end());
  std::string Out;
  for (int B = 0; B != NumBuckets; ++B) {
    double Lo = Min + B * Width;
    double Hi = Lo + Width;
    int Count = Counts[static_cast<size_t>(B)];
    int Bar = Peak ? static_cast<int>(std::lround(
                         static_cast<double>(Count) * BarWidth / Peak))
                   : 0;
    Out += formatString("[%7.1f, %7.1f) %5d |%s\n", Lo, Hi, Count,
                        std::string(static_cast<size_t>(Bar), '#').c_str());
  }
  return Out;
}

std::string
ca2a::formatDistributionSummary(const CommTimeDistribution &D) {
  if (D.Times.empty())
    return formatString("no solved fields (%d unsolved)", D.Unsolved);
  std::vector<double> Sorted = D.Times;
  std::sort(Sorted.begin(), Sorted.end());
  double P90 = sortedQuantile(Sorted, 0.9);
  std::string Out = formatString(
      "mean %s, median %s, p90 %s, max %s (n=%zu",
      formatFixed(D.Stats.Mean, 2).c_str(),
      formatFixed(D.Stats.Median, 1).c_str(), formatFixed(P90, 1).c_str(),
      formatFixed(D.Stats.Max, 0).c_str(), D.Times.size());
  if (D.Unsolved)
    Out += formatString(", %d unsolved", D.Unsolved);
  Out += ")";
  return Out;
}
