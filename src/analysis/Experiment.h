//===- analysis/Experiment.h - Experiment drivers ---------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// High-level experiment drivers shared by the benches and examples:
/// the Table 1 / Fig. 5 density sweep (mean communication time of the best
/// S-agent vs. best T-agent per N_agents) and its single-density building
/// block.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_ANALYSIS_EXPERIMENT_H
#define CA2A_ANALYSIS_EXPERIMENT_H

#include "ga/Fitness.h"

#include <vector>

namespace ca2a {

/// Mean communication time of one genome at one density on one grid.
struct DensityMeasurement {
  GridKind Kind = GridKind::Square;
  int NumAgents = 0;
  int NumFields = 0;
  int SolvedFields = 0;
  double MeanCommTime = 0.0;

  bool completelySuccessful() const {
    return NumFields > 0 && SolvedFields == NumFields;
  }
};

/// Parameters of the density sweep.
struct SweepParams {
  int SideLength = 16;
  std::vector<int> AgentCounts = {2, 4, 8, 16, 32, 256};
  int NumRandomFields = 1000; ///< Plus the 3 manual designs where placeable.
  uint64_t FieldSeed = 20130101;
  FitnessParams Fitness;
};

/// Evaluates \p G on \p T at a single density over the standard field set
/// (or the packed field when NumAgents fills the torus).
DensityMeasurement measureDensity(const Genome &G, const Torus &T,
                                  int NumAgents, int NumRandomFields,
                                  uint64_t FieldSeed,
                                  const FitnessParams &Fitness);

/// One Table 1 column: both grids at one density.
struct DensityComparison {
  int NumAgents = 0;
  DensityMeasurement Triangulate;
  DensityMeasurement Square;

  /// t_comm^T / t_comm^S; the paper's T/S row.
  double ratio() const {
    return Square.MeanCommTime > 0.0
               ? Triangulate.MeanCommTime / Square.MeanCommTime
               : 0.0;
  }
};

/// The full Table 1 / Fig. 5 sweep: \p SquareAgent runs on the S-grid,
/// \p TriangulateAgent on the T-grid, both over all densities in
/// \p Params.AgentCounts. "256" (and any count equal to the cell count) is
/// the packed field.
std::vector<DensityComparison> runDensitySweep(const Genome &SquareAgent,
                                               const Genome &TriangulateAgent,
                                               const SweepParams &Params);

} // namespace ca2a

#endif // CA2A_ANALYSIS_EXPERIMENT_H
