//===- analysis/Convergence.h - Informed-fraction curves --------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convergence curves: the mean fraction of informed agents as a function
/// of time, averaged over a field set. A finer lens than the paper's
/// scalar t_comm — it shows *when* the T-grid advantage accrues (early
/// meetings vs. final stragglers).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_ANALYSIS_CONVERGENCE_H
#define CA2A_ANALYSIS_CONVERGENCE_H

#include "ga/Fitness.h"

#include <string>
#include <vector>

namespace ca2a {

/// Mean informed fraction per time step over a field set.
struct ConvergenceCurve {
  /// Curve[t] = mean over fields of (informed agents at step t) / k.
  /// Solved fields contribute 1.0 from their t_comm onward.
  std::vector<double> InformedFraction;
  int NumFields = 0;
  int SolvedFields = 0;

  /// First step where the mean fraction reaches \p Level (or -1).
  int timeToLevel(double Level) const;
};

/// Simulates \p G over \p Fields recording the informed fraction for the
/// first \p CurveLength steps (fields are run to Options.MaxSteps).
ConvergenceCurve
collectConvergence(const Genome &G, const Torus &T,
                   const std::vector<InitialConfiguration> &Fields,
                   const SimOptions &Options, int CurveLength);

/// Renders the curve as rows "t  fraction  bar" every \p Stride steps.
std::string renderConvergence(const ConvergenceCurve &Curve, int Stride,
                              int BarWidth = 50);

} // namespace ca2a

#endif // CA2A_ANALYSIS_CONVERGENCE_H
