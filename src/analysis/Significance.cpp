//===- analysis/Significance.cpp - Statistical comparison -----------------===//

#include "analysis/Significance.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ca2a;

WelchResult ca2a::welchTTest(const std::vector<double> &A,
                             const std::vector<double> &B) {
  assert(A.size() >= 2 && B.size() >= 2 && "Welch needs n >= 2 per sample");
  RunningStats SA, SB;
  for (double V : A)
    SA.add(V);
  for (double V : B)
    SB.add(V);
  double Na = static_cast<double>(SA.count());
  double Nb = static_cast<double>(SB.count());
  double Va = SA.variance() / Na;
  double Vb = SB.variance() / Nb;
  WelchResult Out;
  Out.MeanA = SA.mean();
  Out.MeanB = SB.mean();
  double SE = std::sqrt(Va + Vb);
  Out.TStatistic = SE > 0.0 ? (SA.mean() - SB.mean()) / SE : 0.0;
  double Denominator =
      Va * Va / (Na - 1.0) + Vb * Vb / (Nb - 1.0);
  Out.DegreesOfFreedom =
      Denominator > 0.0 ? (Va + Vb) * (Va + Vb) / Denominator : 0.0;
  return Out;
}

static double resampledMean(const std::vector<double> &Sample, Rng &R) {
  double Sum = 0.0;
  for (size_t I = 0, E = Sample.size(); I != E; ++I)
    Sum += Sample[R.uniformInt(Sample.size())];
  return Sum / static_cast<double>(Sample.size());
}

BootstrapInterval
ca2a::bootstrapMeanRatio(const std::vector<double> &Numerator,
                         const std::vector<double> &Denominator, double Level,
                         int Resamples, Rng &R) {
  assert(!Numerator.empty() && !Denominator.empty() && "empty sample");
  assert(Level > 0.0 && Level < 1.0 && "confidence level in (0, 1)");
  assert(Resamples >= 10 && "too few resamples");

  auto MeanOf = [](const std::vector<double> &Sample) {
    double Sum = 0.0;
    for (double V : Sample)
      Sum += V;
    return Sum / static_cast<double>(Sample.size());
  };

  BootstrapInterval Out;
  double DenMean = MeanOf(Denominator);
  assert(DenMean != 0.0 && "denominator mean must be nonzero");
  Out.Estimate = MeanOf(Numerator) / DenMean;

  std::vector<double> Ratios;
  Ratios.reserve(static_cast<size_t>(Resamples));
  for (int I = 0; I != Resamples; ++I) {
    double Den = resampledMean(Denominator, R);
    if (Den == 0.0)
      continue; // Degenerate resample; drop it.
    Ratios.push_back(resampledMean(Numerator, R) / Den);
  }
  std::sort(Ratios.begin(), Ratios.end());
  double Alpha = (1.0 - Level) / 2.0;
  Out.Low = sortedQuantile(Ratios, Alpha);
  Out.High = sortedQuantile(Ratios, 1.0 - Alpha);
  return Out;
}
