//===- analysis/Metrics.h - Behavioural run metrics -------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observer-based behavioural metrics of one simulation run: movement vs.
/// waiting, meeting events (pairs of adjacent agents per step), colour
/// coverage, and per-agent distance travelled. These quantify *why* the
/// T-agents win: more frequent meetings per step on the 6-valent torus.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_ANALYSIS_METRICS_H
#define CA2A_ANALYSIS_METRICS_H

#include "sim/World.h"

#include <string>

namespace ca2a {

/// Aggregated over one run.
struct RunMetrics {
  SimResult Result;
  int64_t MoveSteps = 0;     ///< Agent-steps that changed cell.
  int64_t WaitSteps = 0;     ///< Agent-steps that stayed put.
  int64_t MeetingEvents = 0; ///< Adjacent agent pairs, summed over steps.
  int StepsObserved = 0;
  int FinalColoredCells = 0; ///< Colour-1 cells at termination.

  /// Fraction of agent-steps that moved.
  double moveFraction() const {
    int64_t Total = MoveSteps + WaitSteps;
    return Total ? static_cast<double>(MoveSteps) /
                       static_cast<double>(Total)
                 : 0.0;
  }
  /// Mean adjacent pairs per observed step.
  double meetingsPerStep() const {
    return StepsObserved ? static_cast<double>(MeetingEvents) /
                               static_cast<double>(StepsObserved)
                         : 0.0;
  }
};

/// Runs \p W (already reset) to completion, collecting metrics.
RunMetrics collectRunMetrics(World &W);

/// One-line rendering for logs.
std::string formatRunMetrics(const RunMetrics &M);

} // namespace ca2a

#endif // CA2A_ANALYSIS_METRICS_H
