//===- analysis/Chart.h - ASCII line charts ---------------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small terminal line chart used to render Fig. 5 (communication time
/// vs. N_agents, one series per grid) directly from the bench binaries.
/// Multiple series share the canvas; x positions are category slots, not
/// scaled values (Fig. 5's x axis is the discrete density set).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_ANALYSIS_CHART_H
#define CA2A_ANALYSIS_CHART_H

#include <string>
#include <vector>

namespace ca2a {

/// One chart series: a marker character plus one y value per category.
struct ChartSeries {
  char Marker = '*';
  std::string Label;
  std::vector<double> Values;
};

/// Renders category-x line chart: \p CategoryLabels define the x slots,
/// every series must have one value per category (asserted). The y axis
/// is scaled to [0, max]; \p Height rows tall.
std::string renderCategoryChart(const std::vector<std::string> &CategoryLabels,
                                const std::vector<ChartSeries> &Series,
                                int Height = 16, int ColumnWidth = 7);

} // namespace ca2a

#endif // CA2A_ANALYSIS_CHART_H
