//===- analysis/Experiment.cpp - Experiment drivers -----------------------===//

#include "analysis/Experiment.h"

using namespace ca2a;

DensityMeasurement ca2a::measureDensity(const Genome &G, const Torus &T,
                                        int NumAgents, int NumRandomFields,
                                        uint64_t FieldSeed,
                                        const FitnessParams &Fitness) {
  assert(NumAgents >= 1 && NumAgents <= T.numCells() &&
         "agent count exceeds field capacity");
  std::vector<InitialConfiguration> Fields;
  if (NumAgents == T.numCells())
    Fields.push_back(packedConfiguration(T));
  else
    Fields = standardConfigurationSet(
        T, NumAgents, NumRandomFields,
        FieldSeed + static_cast<uint64_t>(NumAgents));

  FitnessResult Result = evaluateFitness(G, T, Fields, Fitness);
  DensityMeasurement M;
  M.Kind = T.kind();
  M.NumAgents = NumAgents;
  M.NumFields = Result.NumFields;
  M.SolvedFields = Result.SolvedFields;
  M.MeanCommTime = Result.MeanCommTime;
  return M;
}

std::vector<DensityComparison>
ca2a::runDensitySweep(const Genome &SquareAgent, const Genome &TriangulateAgent,
                      const SweepParams &Params) {
  Torus SquareTorus(GridKind::Square, Params.SideLength);
  Torus TriangulateTorus(GridKind::Triangulate, Params.SideLength);
  std::vector<DensityComparison> Out;
  Out.reserve(Params.AgentCounts.size());
  for (int NumAgents : Params.AgentCounts) {
    DensityComparison C;
    C.NumAgents = NumAgents;
    C.Triangulate =
        measureDensity(TriangulateAgent, TriangulateTorus, NumAgents,
                       Params.NumRandomFields, Params.FieldSeed,
                       Params.Fitness);
    C.Square = measureDensity(SquareAgent, SquareTorus, NumAgents,
                              Params.NumRandomFields, Params.FieldSeed,
                              Params.Fitness);
    Out.push_back(C);
  }
  return Out;
}
