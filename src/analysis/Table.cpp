//===- analysis/Table.cpp - Paper-style result tables ---------------------===//

#include "analysis/Table.h"

#include "support/Csv.h"
#include "support/StringUtils.h"

using namespace ca2a;

std::string
ca2a::formatDensityTable(const std::vector<DensityComparison> &Sweep) {
  TextTable Table;
  std::vector<std::string> Header = {"N_agents"};
  std::vector<std::string> TRow = {"T-grid"};
  std::vector<std::string> SRow = {"S-grid"};
  std::vector<std::string> RatioRow = {"T/S"};
  for (const DensityComparison &C : Sweep) {
    Header.push_back(std::to_string(C.NumAgents));
    TRow.push_back(formatFixed(C.Triangulate.MeanCommTime, 2));
    SRow.push_back(formatFixed(C.Square.MeanCommTime, 2));
    RatioRow.push_back(formatFixed(C.ratio(), 3));
  }
  Table.setHeader(Header);
  Table.addRow(TRow);
  Table.addRow(SRow);
  Table.addRow(RatioRow);
  return Table.render();
}

void ca2a::writeDensityCsv(const std::vector<DensityComparison> &Sweep,
                           std::ostream &Out) {
  CsvWriter Writer(Out);
  Writer.writeRow({"n_agents", "t_grid_mean", "s_grid_mean", "ratio",
                   "t_solved", "s_solved", "t_fields", "s_fields"});
  for (const DensityComparison &C : Sweep) {
    Writer.writeRow({std::to_string(C.NumAgents),
                     formatFixed(C.Triangulate.MeanCommTime, 4),
                     formatFixed(C.Square.MeanCommTime, 4),
                     formatFixed(C.ratio(), 4),
                     std::to_string(C.Triangulate.SolvedFields),
                     std::to_string(C.Square.SolvedFields),
                     std::to_string(C.Triangulate.NumFields),
                     std::to_string(C.Square.NumFields)});
  }
}

std::string ca2a::formatMeasurement(const DensityMeasurement &M) {
  return formatString("%s-grid k=%d: %s steps (%d/%d solved)",
                      gridKindName(M.Kind), M.NumAgents,
                      formatFixed(M.MeanCommTime, 2).c_str(), M.SolvedFields,
                      M.NumFields);
}
