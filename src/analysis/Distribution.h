//===- analysis/Distribution.h - t_comm distributions -----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Beyond the paper's mean values: full communication-time distributions
/// over a configuration set (order statistics + ASCII histogram). Used by
/// the extended reporting in EXPERIMENTS.md to show where the S/T gap
/// lives (body vs. tail).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_ANALYSIS_DISTRIBUTION_H
#define CA2A_ANALYSIS_DISTRIBUTION_H

#include "ga/Fitness.h"
#include "support/Statistics.h"

#include <string>
#include <vector>

namespace ca2a {

/// Communication-time sample over a field set.
struct CommTimeDistribution {
  std::vector<double> Times; ///< t_comm of each *solved* field, field order.
  int Unsolved = 0;          ///< Fields not solved within the cutoff.
  Summary Stats;             ///< Order statistics of Times.
};

/// Runs \p G over \p Fields and collects the t_comm sample.
CommTimeDistribution
collectCommTimes(const Genome &G, const Torus &T,
                 const std::vector<InitialConfiguration> &Fields,
                 const SimOptions &Options);

/// Renders a fixed-width ASCII histogram of \p Times with \p NumBuckets
/// equal-width buckets over [min, max]; each row shows the bucket range,
/// count, and a proportional bar.
std::string renderHistogram(const std::vector<double> &Times, int NumBuckets,
                            int BarWidth = 50);

/// One-line summary: "mean 58.4, median 52, p90 101, max 322 (n=1003)".
std::string formatDistributionSummary(const CommTimeDistribution &D);

} // namespace ca2a

#endif // CA2A_ANALYSIS_DISTRIBUTION_H
