//===- analysis/Table.h - Paper-style result tables -------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders density-sweep results in the layout of the paper's Table 1
/// (and the series of Fig. 5), plus CSV export for downstream plotting.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_ANALYSIS_TABLE_H
#define CA2A_ANALYSIS_TABLE_H

#include "analysis/Experiment.h"

#include <ostream>
#include <string>
#include <vector>

namespace ca2a {

/// Formats the sweep as the paper's Table 1:
///
///   N_agents |     2 |      4 | ... | 256
///   T-grid   | 58.43 |  78.30 | ... | 9.00
///   S-grid   | 82.78 | 116.12 | ... | 15.00
///   T/S      | 0.706 |  0.674 | ... | 0.600
std::string formatDensityTable(const std::vector<DensityComparison> &Sweep);

/// Writes the sweep as CSV rows
/// (n_agents, t_grid_mean, s_grid_mean, ratio, t_solved, s_solved, fields).
void writeDensityCsv(const std::vector<DensityComparison> &Sweep,
                     std::ostream &Out);

/// Formats one measurement line, e.g. for progress logs:
/// "T-grid k=16: 41.25 steps (1003/1003 solved)".
std::string formatMeasurement(const DensityMeasurement &M);

} // namespace ca2a

#endif // CA2A_ANALYSIS_TABLE_H
