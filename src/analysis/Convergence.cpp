//===- analysis/Convergence.cpp - Informed-fraction curves ----------------===//

#include "analysis/Convergence.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace ca2a;

int ConvergenceCurve::timeToLevel(double Level) const {
  for (size_t T = 0; T != InformedFraction.size(); ++T)
    if (InformedFraction[T] >= Level)
      return static_cast<int>(T);
  return -1;
}

ConvergenceCurve
ca2a::collectConvergence(const Genome &G, const Torus &T,
                         const std::vector<InitialConfiguration> &Fields,
                         const SimOptions &Options, int CurveLength) {
  assert(CurveLength >= 1 && "curve needs at least one step");
  ConvergenceCurve Curve;
  Curve.InformedFraction.assign(static_cast<size_t>(CurveLength), 0.0);
  Curve.NumFields = static_cast<int>(Fields.size());
  if (Fields.empty())
    return Curve;

  World W(T);
  for (const InitialConfiguration &Field : Fields) {
    W.reset(G, Field.Placements, Options);
    double K = static_cast<double>(Field.numAgents());
    int LastObserved = -1;
    SimResult R = W.run([&](const World &World, int Time) {
      if (Time < CurveLength)
        Curve.InformedFraction[static_cast<size_t>(Time)] +=
            static_cast<double>(World.informedCount()) / K;
      LastObserved = Time;
    });
    if (R.Success)
      ++Curve.SolvedFields;
    // Extend beyond the run's end: solved fields stay at 1.0, unsolved
    // fields keep their final fraction.
    double Tail = R.Success
                      ? 1.0
                      : static_cast<double>(R.InformedAgents) / K;
    for (int Time = LastObserved + 1; Time < CurveLength; ++Time)
      Curve.InformedFraction[static_cast<size_t>(Time)] += Tail;
  }
  for (double &V : Curve.InformedFraction)
    V /= static_cast<double>(Fields.size());
  return Curve;
}

std::string ca2a::renderConvergence(const ConvergenceCurve &Curve, int Stride,
                                    int BarWidth) {
  assert(Stride >= 1 && "stride must be positive");
  std::string Out;
  for (size_t T = 0; T < Curve.InformedFraction.size();
       T += static_cast<size_t>(Stride)) {
    double F = Curve.InformedFraction[T];
    int Bar = static_cast<int>(std::lround(F * BarWidth));
    Out += formatString("t=%4zu  %5.1f%% |%s\n", T, 100.0 * F,
                        std::string(static_cast<size_t>(Bar), '#').c_str());
  }
  return Out;
}
