//===- agent/Action.cpp - The 16-action alphabet --------------------------===//

#include "agent/Action.h"

#include <cassert>

using namespace ca2a;

int ca2a::encodeAction(const Action &A) {
  assert(A.SetColor < 2 && "encodeAction covers the binary-colour alphabet");
  return static_cast<int>(A.TurnCode) * 4 + (A.Move ? 2 : 0) +
         (A.SetColor ? 1 : 0);
}

Action ca2a::decodeAction(int Index) {
  assert(Index >= 0 && Index < NumActions && "action index out of range");
  Action A;
  A.TurnCode = static_cast<Turn>(Index / 4);
  A.Move = (Index & 2) != 0;
  A.SetColor = (Index & 1) != 0 ? 1 : 0;
  return A;
}

std::string ca2a::actionMnemonic(const Action &A) {
  assert(A.SetColor <= 9 && "colour digit must be single-digit");
  std::string Out;
  Out.push_back(turnLetter(A.TurnCode));
  Out.push_back(A.Move ? 'm' : '.');
  Out.push_back(static_cast<char>('0' + A.SetColor));
  return Out;
}

Expected<Action> ca2a::parseActionMnemonic(const std::string &Text) {
  if (Text.size() != 3)
    return makeError("action mnemonic must have 3 characters: '" + Text + "'");
  Action A;
  if (!parseTurnLetter(Text[0], A.TurnCode))
    return makeError("bad turn letter in action: '" + Text + "'");
  if (Text[1] == 'm')
    A.Move = true;
  else if (Text[1] == '.')
    A.Move = false;
  else
    return makeError("bad move flag in action: '" + Text + "'");
  if (Text[2] >= '0' && Text[2] <= '9')
    A.SetColor = static_cast<uint8_t>(Text[2] - '0');
  else
    return makeError("bad colour digit in action: '" + Text + "'");
  return A;
}
