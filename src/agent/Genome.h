//===- agent/Genome.h - Mealy FSM state table / GA genome -------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The agent-controlling Mealy FSM, stored as its full state table.
///
/// The paper fixes 4 control states and binary colours, giving 8 input
/// values x = blocked + 2*color + 4*frontcolor and 32 table slots (the
/// genome of Fig. 3, index i = x * 4 + s). Its future-work list asks for
/// "more states, more colors": this class therefore carries runtime
/// dimensions (GenomeDims) with the paper's values as the default —
/// states s in [2, 9], colours c in [2, 9], inputs 2 * c^2, slots
/// 2 * c^2 * s. All paper experiments run at the default dimensions.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_AGENT_GENOME_H
#define CA2A_AGENT_GENOME_H

#include "agent/Action.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ca2a {

class Rng;

/// Number of FSM control states in the paper's setting.
constexpr int NumControlStates = 4;
/// Number of FSM input values in the paper's setting.
constexpr int NumFsmInputs = 8;
/// Paper genome length: one entry per (input, state) pair.
constexpr int GenomeLength = NumFsmInputs * NumControlStates;

/// Builds the FSM input value from its three observation bits (paper
/// dimensions: binary colours).
constexpr int makeFsmInput(bool Blocked, bool Color, bool FrontColor) {
  return (Blocked ? 1 : 0) + (Color ? 2 : 0) + (FrontColor ? 4 : 0);
}

/// Runtime FSM dimensions (the future-work "more states, more colors").
struct GenomeDims {
  int States = NumControlStates; ///< Control states, in [2, 9].
  int Colors = 2;                ///< Colour values per cell, in [2, 9].

  /// Input values: blocked x own colour x front colour.
  constexpr int numInputs() const { return 2 * Colors * Colors; }
  /// Table slots.
  constexpr int length() const { return numInputs() * States; }

  /// Input encoding; generalises makeFsmInput (and coincides with it for
  /// binary colours): x = blocked + 2 * (color + Colors * frontColor).
  constexpr int makeInput(bool Blocked, int Color, int FrontColor) const {
    return (Blocked ? 1 : 0) + 2 * (Color + Colors * FrontColor);
  }

  /// Decomposition of an input value (for table printing).
  constexpr bool blockedOf(int Input) const { return Input & 1; }
  constexpr int colorOf(int Input) const { return (Input >> 1) % Colors; }
  constexpr int frontColorOf(int Input) const { return (Input >> 1) / Colors; }

  bool valid() const {
    return States >= 2 && States <= 9 && Colors >= 2 && Colors <= 9;
  }
  bool operator==(const GenomeDims &Other) const {
    return States == Other.States && Colors == Other.Colors;
  }
  bool operator!=(const GenomeDims &Other) const { return !(*this == Other); }
};

/// One genome slot: successor state plus output action.
struct GenomeEntry {
  uint8_t NextState = 0;
  Action Act;

  bool operator==(const GenomeEntry &Other) const {
    return NextState == Other.NextState && Act == Other.Act;
  }
  bool operator!=(const GenomeEntry &Other) const {
    return !(*this == Other);
  }
};

/// A complete FSM state table; the unit of evolution.
class Genome {
public:
  /// All-zero table at the paper's dimensions (state 0, action S.0
  /// everywhere) — a deterministic placeholder, not a meaningful agent.
  Genome() : Genome(GenomeDims()) {}

  /// All-zero table at explicit dimensions.
  explicit Genome(GenomeDims Dims)
      : Dims(Dims), Entries(static_cast<size_t>(Dims.length())) {
    assert(Dims.valid() && "genome dimensions out of range");
  }

  const GenomeDims &dims() const { return Dims; }

  /// Flat index of the (input, state) pair at the paper's dimensions,
  /// matching Fig. 3's "index i" row. For other dimensions use slotOf.
  static constexpr int slotIndex(int Input, int State) {
    return Input * NumControlStates + State;
  }

  /// Flat index under this genome's dimensions.
  int slotOf(int Input, int State) const {
    assert(Input >= 0 && Input < Dims.numInputs() && "input out of range");
    assert(State >= 0 && State < Dims.States && "state out of range");
    return Input * Dims.States + State;
  }

  const GenomeEntry &entry(int Input, int State) const {
    return Entries[static_cast<size_t>(slotOf(Input, State))];
  }
  GenomeEntry &entry(int Input, int State) {
    return Entries[static_cast<size_t>(slotOf(Input, State))];
  }

  /// Number of slots (dims().length()).
  int length() const { return Dims.length(); }

  const GenomeEntry &slot(int Index) const {
    assert(Index >= 0 && Index < length() && "slot index out of range");
    return Entries[static_cast<size_t>(Index)];
  }
  GenomeEntry &slot(int Index) {
    assert(Index >= 0 && Index < length() && "slot index out of range");
    return Entries[static_cast<size_t>(Index)];
  }

  /// Uniformly random table at the paper's dimensions.
  static Genome random(Rng &R) { return random(R, GenomeDims()); }

  /// Uniformly random table at explicit dimensions.
  static Genome random(Rng &R, GenomeDims Dims);

  /// Serialises to one line of 4-digit groups "nsmt" (nextstate,
  /// setcolor, move, turn, the paper's row order). Non-default dimensions
  /// are prefixed with a token such as "s6c2".
  std::string toCompactString() const;

  /// Parses toCompactString() output (with or without a dims prefix).
  [[nodiscard]] static Expected<Genome> fromCompactString(const std::string &Text);

  /// Pretty-prints the state table in the layout of the paper's Fig. 3/4
  /// (rows: blocked / color / frontcolor / state / nextstate / setcolor /
  /// move / turn, one column block per input). \p Kind selects the
  /// caption explaining the turn geometry.
  std::string toTableString(GridKind Kind) const;

  /// 64-bit content hash (FNV-1a over dims + packed entries) for
  /// duplicate detection in the GA pool.
  uint64_t hashValue() const;

  bool operator==(const Genome &Other) const {
    return Dims == Other.Dims && Entries == Other.Entries;
  }
  bool operator!=(const Genome &Other) const { return !(*this == Other); }

private:
  GenomeDims Dims;
  std::vector<GenomeEntry> Entries;
};

} // namespace ca2a

#endif // CA2A_AGENT_GENOME_H
