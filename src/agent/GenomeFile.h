//===- agent/GenomeFile.h - Named genome library files ----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain-text library format for evolved FSMs, so the evolve example can
/// persist winners and the sweep/trace tools can load them back:
///
///   # comment
///   <name> <S|T> <32 genome groups...>
///
/// One genome per line; names must be unique within one library.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_AGENT_GENOMEFILE_H
#define CA2A_AGENT_GENOMEFILE_H

#include "agent/Genome.h"

#include <string>
#include <vector>

namespace ca2a {

/// One library entry.
struct NamedGenome {
  std::string Name; ///< No whitespace (asserted when formatting).
  GridKind Kind = GridKind::Square;
  Genome G;
};

/// Parses a library from text. Lines starting with '#' and blank lines
/// are skipped; any malformed line fails the whole parse with a
/// line-numbered message.
[[nodiscard]] Expected<std::vector<NamedGenome>> parseGenomeLibrary(const std::string &Text);

/// Formats a library; round-trips through parseGenomeLibrary.
std::string formatGenomeLibrary(const std::vector<NamedGenome> &Library);

/// Finds an entry by name; nullptr if absent.
const NamedGenome *findGenome(const std::vector<NamedGenome> &Library,
                              const std::string &Name);

/// Loads a library from \p Path (readFile + parseGenomeLibrary).
[[nodiscard]] Expected<std::vector<NamedGenome>> loadGenomeLibrary(const std::string &Path);

/// Saves \p Library to \p Path.
[[nodiscard]] Expected<bool> saveGenomeLibrary(const std::string &Path,
                                 const std::vector<NamedGenome> &Library);

} // namespace ca2a

#endif // CA2A_AGENT_GENOMEFILE_H
