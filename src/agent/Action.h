//===- agent/Action.h - The 16-action alphabet ------------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One FSM output y = (move, turn, setcolor).
///
/// The paper's action alphabet (Sect. 3) is the 16-element product
/// turn in {S,R,B,L} x move in {m,.} x setcolor in {0,1}, written in
/// mnemonics such as "Sm0" (straight, move, clear colour) or "L.1"
/// (left, wait, set colour). All three components are applied
/// independently every step.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_AGENT_ACTION_H
#define CA2A_AGENT_ACTION_H

#include "grid/Direction.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace ca2a {

/// One agent action: the Mealy FSM output.
///
/// SetColor is the colour *value* written to the current cell; the paper
/// uses binary colours ({0, 1}), the more-colours extension allows values
/// up to 9 (bounded by the genome's dimensions).
struct Action {
  Turn TurnCode = Turn::Straight; ///< Direction change (always applied).
  bool Move = false;              ///< Advance if possible; wait otherwise.
  uint8_t SetColor = 0;           ///< Colour written to the current cell.

  bool operator==(const Action &Other) const {
    return TurnCode == Other.TurnCode && Move == Other.Move &&
           SetColor == Other.SetColor;
  }
  bool operator!=(const Action &Other) const { return !(*this == Other); }
};

/// Number of distinct actions in the paper's binary-colour alphabet:
/// 4 turns x 2 move x 2 setcolor.
constexpr int NumActions = 16;

/// Packs a binary-colour action into its index in [0, 16):
/// index = turn * 4 + move * 2 + setcolor. Asserts SetColor < 2.
int encodeAction(const Action &A);

/// Inverse of encodeAction.
Action decodeAction(int Index);

/// Mnemonic such as "Sm0", "R.1" (turn letter, 'm' or '.', colour digit);
/// colour digits above 1 appear in the more-colours extension.
std::string actionMnemonic(const Action &A);

/// Parses an actionMnemonic back into an Action.
[[nodiscard]] Expected<Action> parseActionMnemonic(const std::string &Text);

} // namespace ca2a

#endif // CA2A_AGENT_ACTION_H
