//===- agent/Genome.cpp - Mealy FSM state table / GA genome ---------------===//

#include "agent/Genome.h"

#include "support/Hash.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

using namespace ca2a;

Genome Genome::random(Rng &R, GenomeDims Dims) {
  Genome G(Dims);
  for (int I = 0, E = G.length(); I != E; ++I) {
    GenomeEntry &Entry = G.slot(I);
    Entry.NextState = static_cast<uint8_t>(R.uniformInt(
        static_cast<uint64_t>(Dims.States)));
    Entry.Act.TurnCode = static_cast<Turn>(R.uniformInt(NumTurnCodes));
    Entry.Act.Move = R.uniformInt(2) != 0;
    Entry.Act.SetColor = static_cast<uint8_t>(R.uniformInt(
        static_cast<uint64_t>(Dims.Colors)));
  }
  return G;
}

std::string Genome::toCompactString() const {
  std::string Out;
  Out.reserve(static_cast<size_t>(length()) * 5 + 8);
  if (Dims != GenomeDims()) {
    Out += formatString("s%dc%d ", Dims.States, Dims.Colors);
  }
  for (int I = 0, E = length(); I != E; ++I) {
    const GenomeEntry &Entry = slot(I);
    if (I != 0)
      Out.push_back(' ');
    Out.push_back(static_cast<char>('0' + Entry.NextState));
    Out.push_back(static_cast<char>('0' + Entry.Act.SetColor));
    Out.push_back(Entry.Act.Move ? '1' : '0');
    Out.push_back(
        static_cast<char>('0' + static_cast<int>(Entry.Act.TurnCode)));
  }
  return Out;
}

Expected<Genome> Genome::fromCompactString(const std::string &Text) {
  std::vector<std::string> Groups = splitWhitespace(Text);
  GenomeDims Dims;
  size_t First = 0;
  // Optional dimensions prefix "s<digit>c<digit>".
  if (!Groups.empty() && Groups[0].size() == 4 && Groups[0][0] == 's' &&
      Groups[0][2] == 'c') {
    int States = Groups[0][1] - '0';
    int Colors = Groups[0][3] - '0';
    Dims = GenomeDims{States, Colors};
    if (!Dims.valid())
      return makeError("bad genome dimensions prefix: '" + Groups[0] + "'");
    First = 1;
  }
  if (Groups.size() - First != static_cast<size_t>(Dims.length()))
    return makeError(formatString("genome needs %d groups, got %zu",
                                  Dims.length(), Groups.size() - First));
  Genome G(Dims);
  for (int I = 0, E = Dims.length(); I != E; ++I) {
    const std::string &Group = Groups[First + static_cast<size_t>(I)];
    if (Group.size() != 4)
      return makeError("genome group " + std::to_string(I) +
                       " must have 4 digits: '" + Group + "'");
    auto Digit = [&](size_t Pos, int Bound, int &Value) {
      char C = Group[Pos];
      if (C < '0' || C >= '0' + Bound)
        return false;
      Value = C - '0';
      return true;
    };
    int NextState, SetColor, Move, TurnCode;
    if (!Digit(0, Dims.States, NextState) ||
        !Digit(1, Dims.Colors, SetColor) || !Digit(2, 2, Move) ||
        !Digit(3, NumTurnCodes, TurnCode))
      return makeError("bad digit in genome group " + std::to_string(I) +
                       ": '" + Group + "'");
    GenomeEntry &Entry = G.slot(I);
    Entry.NextState = static_cast<uint8_t>(NextState);
    Entry.Act.SetColor = static_cast<uint8_t>(SetColor);
    Entry.Act.Move = Move != 0;
    Entry.Act.TurnCode = static_cast<Turn>(TurnCode);
  }
  return G;
}

std::string Genome::toTableString(GridKind Kind) const {
  // Reproduce the Fig. 3/4 layout: a row of x-column headers, the three
  // input components, then per-state nextstate/setcolor/move/turn rows.
  std::string Out = formatString(
      "%s-agent FSM (%d states, %d colours, %d inputs)\n", gridKindName(Kind),
      Dims.States, Dims.Colors, Dims.numInputs());
  size_t LabelWidth = 10;
  int NumInputs = Dims.numInputs();
  int States = Dims.States;
  auto Row = [&](const char *Name, auto CellFn) {
    Out += padRight(Name, LabelWidth);
    for (int X = 0; X != NumInputs; ++X) {
      Out += " |";
      for (int S = 0; S != States; ++S)
        Out += formatString(" %c", CellFn(X, S));
    }
    Out += '\n';
  };
  Out += padRight("", LabelWidth);
  for (int X = 0; X != NumInputs; ++X) {
    std::string Header = formatString(" | x = %d", X);
    Out += padRight(Header, 4 + 2 * static_cast<size_t>(States));
  }
  Out += '\n';
  Row("blocked", [this](int X, int) {
    return static_cast<char>('0' + (Dims.blockedOf(X) ? 1 : 0));
  });
  Row("color", [this](int X, int) {
    return static_cast<char>('0' + Dims.colorOf(X));
  });
  Row("frontcolor", [this](int X, int) {
    return static_cast<char>('0' + Dims.frontColorOf(X));
  });
  Row("state", [](int, int S) { return static_cast<char>('0' + S); });
  Row("nextstate", [this](int X, int S) {
    return static_cast<char>('0' + entry(X, S).NextState);
  });
  Row("setcolor", [this](int X, int S) {
    return static_cast<char>('0' + entry(X, S).Act.SetColor);
  });
  Row("move",
      [this](int X, int S) { return entry(X, S).Act.Move ? '1' : '0'; });
  Row("turn", [this](int X, int S) {
    return static_cast<char>('0' + static_cast<int>(entry(X, S).Act.TurnCode));
  });
  if (Kind == GridKind::Square)
    Out += "turn codes: 0/1/2/3 = 0deg/+90deg/180deg/-90deg\n";
  else
    Out += "turn codes: 0/1/2/3 = 0deg/+60deg/180deg/-60deg\n";
  return Out;
}

uint64_t Genome::hashValue() const {
  Fnv1aHasher H;
  H.mixWord(static_cast<uint64_t>(Dims.States));
  H.mixWord(static_cast<uint64_t>(Dims.Colors));
  for (int I = 0, E = length(); I != E; ++I) {
    const GenomeEntry &Entry = slot(I);
    H.mixWord(static_cast<uint64_t>(Entry.NextState) |
              (static_cast<uint64_t>(Entry.Act.SetColor) << 8) |
              (static_cast<uint64_t>(Entry.Act.Move) << 16) |
              (static_cast<uint64_t>(Entry.Act.TurnCode) << 24));
  }
  return H.value();
}
