//===- agent/BestAgents.h - The paper's published FSMs ----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two best evolved FSMs published in the paper, transcribed verbatim:
/// Fig. 3 (S-agent) and Fig. 4 (T-agent). These are the algorithms behind
/// Table 1 / Fig. 5 and the Fig. 6/7 trace panels.
///
/// Agents running these FSMs start in control state (ID mod 2), the
/// paper's reliability device (Sect. 4, option 4).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_AGENT_BESTAGENTS_H
#define CA2A_AGENT_BESTAGENTS_H

#include "agent/Genome.h"

namespace ca2a {

/// The best found S-agent (paper Fig. 3).
const Genome &bestSquareAgent();

/// The best evolved T-agent (paper Fig. 4).
const Genome &bestTriangulateAgent();

/// The published best agent for \p Kind.
const Genome &bestAgent(GridKind Kind);

/// Builds a genome from the paper's four table rows, each a string of 32
/// digits in paper index order (i = x * 4 + state). Asserts on malformed
/// rows: this is for compile-time-known tables, not user input.
Genome genomeFromRows(const char *NextStateRow, const char *SetColorRow,
                      const char *MoveRow, const char *TurnRow);

} // namespace ca2a

#endif // CA2A_AGENT_BESTAGENTS_H
