//===- agent/BestAgents.cpp - The paper's published FSMs ------------------===//

#include "agent/BestAgents.h"

#include <cassert>
#include <cstring>

using namespace ca2a;

Genome ca2a::genomeFromRows(const char *NextStateRow, const char *SetColorRow,
                            const char *MoveRow, const char *TurnRow) {
  assert(std::strlen(NextStateRow) == GenomeLength && "bad nextstate row");
  assert(std::strlen(SetColorRow) == GenomeLength && "bad setcolor row");
  assert(std::strlen(MoveRow) == GenomeLength && "bad move row");
  assert(std::strlen(TurnRow) == GenomeLength && "bad turn row");
  Genome G;
  for (int I = 0; I != GenomeLength; ++I) {
    GenomeEntry &E = G.slot(I);
    int NextState = NextStateRow[I] - '0';
    int SetColor = SetColorRow[I] - '0';
    int Move = MoveRow[I] - '0';
    int TurnCode = TurnRow[I] - '0';
    assert(NextState >= 0 && NextState < NumControlStates && "bad nextstate");
    assert((SetColor == 0 || SetColor == 1) && "bad setcolor");
    assert((Move == 0 || Move == 1) && "bad move");
    assert(TurnCode >= 0 && TurnCode < NumTurnCodes && "bad turn");
    E.NextState = static_cast<uint8_t>(NextState);
    E.Act.SetColor = SetColor != 0;
    E.Act.Move = Move != 0;
    E.Act.TurnCode = static_cast<Turn>(TurnCode);
  }
  return G;
}

const Genome &ca2a::bestSquareAgent() {
  // Paper Fig. 3, columns x = 0..7, states 0..3 within each column.
  // Rows transcribed left to right exactly as printed.
  static const Genome G = genomeFromRows(
      /*nextstate=*/"23110332130200211220232022303102",
      /*setcolor =*/"11000101000110110000000100011000",
      /*move     =*/"11010111111111101111000000010100",
      /*turn     =*/"30101112300321230121301323333223");
  return G;
}

const Genome &ca2a::bestTriangulateAgent() {
  // Paper Fig. 4, same layout.
  static const Genome G = genomeFromRows(
      /*nextstate=*/"12121030210312131202013022112211",
      /*setcolor =*/"11110111001101000000111100101110",
      /*move     =*/"11101000111101111110100011101011",
      /*turn     =*/"00103222300100331012330130132023");
  return G;
}

const Genome &ca2a::bestAgent(GridKind Kind) {
  return Kind == GridKind::Square ? bestSquareAgent() : bestTriangulateAgent();
}
