//===- agent/GenomeFile.cpp - Named genome library files ------------------===//

#include "agent/GenomeFile.h"

#include "support/File.h"
#include "support/StringUtils.h"

using namespace ca2a;

Expected<std::vector<NamedGenome>>
ca2a::parseGenomeLibrary(const std::string &Text) {
  std::vector<NamedGenome> Library;
  int LineNumber = 0;
  for (const std::string &RawLine : splitString(Text, '\n')) {
    ++LineNumber;
    std::string Line(trim(RawLine));
    if (Line.empty() || Line.front() == '#')
      continue;
    std::vector<std::string> Fields = splitWhitespace(Line);
    if (Fields.size() < 3)
      return makeError(formatString(
          "line %d: expected name, grid kind and genome groups, got %zu "
          "fields",
          LineNumber, Fields.size()));
    NamedGenome Entry;
    Entry.Name = Fields[0];
    if (!parseGridKind(Fields[1], Entry.Kind))
      return makeError(formatString("line %d: unknown grid kind '%s'",
                                    LineNumber, Fields[1].c_str()));
    // Everything after the kind is the compact genome (possibly with a
    // dimensions prefix for the more-states / more-colours extension).
    std::vector<std::string> Groups(Fields.begin() + 2, Fields.end());
    auto Parsed = Genome::fromCompactString(joinStrings(Groups, " "));
    if (!Parsed)
      return makeError(formatString("line %d: %s", LineNumber,
                                    Parsed.error().message().c_str()));
    Entry.G = Parsed.takeValue();
    for (const NamedGenome &Existing : Library)
      if (Existing.Name == Entry.Name)
        return makeError(formatString("line %d: duplicate genome name '%s'",
                                      LineNumber, Entry.Name.c_str()));
    Library.push_back(std::move(Entry));
  }
  return Library;
}

std::string
ca2a::formatGenomeLibrary(const std::vector<NamedGenome> &Library) {
  std::string Out =
      "# ca2a genome library: <name> <S|T> <32 nextstate/setcolor/move/turn "
      "groups>\n";
  for (const NamedGenome &Entry : Library) {
    assert(Entry.Name.find_first_of(" \t\n") == std::string::npos &&
           "genome names must not contain whitespace");
    assert(!Entry.Name.empty() && Entry.Name.front() != '#' &&
           "genome name would parse as a comment");
    Out += Entry.Name;
    Out += ' ';
    Out += gridKindName(Entry.Kind);
    Out += ' ';
    Out += Entry.G.toCompactString();
    Out += '\n';
  }
  return Out;
}

const NamedGenome *ca2a::findGenome(const std::vector<NamedGenome> &Library,
                                    const std::string &Name) {
  for (const NamedGenome &Entry : Library)
    if (Entry.Name == Name)
      return &Entry;
  return nullptr;
}

Expected<std::vector<NamedGenome>>
ca2a::loadGenomeLibrary(const std::string &Path) {
  auto Text = readFile(Path);
  if (!Text)
    return Text.error();
  return parseGenomeLibrary(*Text);
}

Expected<bool>
ca2a::saveGenomeLibrary(const std::string &Path,
                        const std::vector<NamedGenome> &Library) {
  return writeFile(Path, formatGenomeLibrary(Library));
}
