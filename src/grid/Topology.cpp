//===- grid/Topology.cpp - Cyclic S- and T-grid tori ----------------------===//

#include "grid/Topology.h"

using namespace ca2a;

// Ring order is fixed by Direction.h: the offset at index d is the offset at
// index d-1 rotated by one step (90° in S, 60° in T). In the T-grid's skewed
// axial coordinates the six unit steps are E, NE, N, W, SW, S; the NE/SW
// pair is the paper's additional NW-SE *link* diagonal drawn in the XY
// labelling of Fig. 1 ((x+1, y+1) and (x-1, y-1)).
static constexpr Coord SquareOffsets[4] = {
    {+1, 0}, {0, +1}, {-1, 0}, {0, -1}};
static constexpr Coord TriangulateOffsets[6] = {
    {+1, 0}, {+1, +1}, {0, +1}, {-1, 0}, {-1, -1}, {0, -1}};

Torus::Torus(GridKind Kind, int SideLength)
    : Kind(Kind), SideLength(SideLength) {
  assert(SideLength >= 2 && "torus needs at least two cells per side");
  int Degree = degree();
  NeighborTable.resize(static_cast<size_t>(numCells()) * Degree);
  for (int Index = 0; Index != numCells(); ++Index) {
    Coord C = coordOf(Index);
    for (int D = 0; D != Degree; ++D)
      NeighborTable[static_cast<size_t>(Index) * Degree + D] =
          indexOf(neighbor(C, static_cast<uint8_t>(D)));
  }
}

Coord Torus::directionOffset(uint8_t Direction) const {
  assert(Direction < degree() && "direction out of range");
  return Kind == GridKind::Square ? SquareOffsets[Direction]
                                  : TriangulateOffsets[Direction];
}
