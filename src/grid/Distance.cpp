//===- grid/Distance.cpp - Torus distances and graph metrics --------------===//

#include "grid/Distance.h"

#include <algorithm>
#include <cstdlib>
#include <deque>

using namespace ca2a;

int ca2a::hexOffsetDistance(int Dx, int Dy) {
  // One NE/SW diagonal step changes both coordinates by the same sign, so
  // offsets whose components agree in sign cost max(|dx|, |dy|); otherwise
  // every step fixes only one coordinate and the cost is |dx| + |dy|.
  if ((Dx >= 0) == (Dy >= 0))
    return std::max(std::abs(Dx), std::abs(Dy));
  return std::abs(Dx) + std::abs(Dy);
}

int ca2a::squareDistance(const Torus &T, Coord A, Coord B) {
  int M = T.sideLength();
  int Dx = T.wrap(B.X - A.X);
  int Dy = T.wrap(B.Y - A.Y);
  return std::min(Dx, M - Dx) + std::min(Dy, M - Dy);
}

int ca2a::triangulateDistance(const Torus &T, Coord A, Coord B) {
  int M = T.sideLength();
  int Dx = T.wrap(B.X - A.X);
  int Dy = T.wrap(B.Y - A.Y);
  // Minimise the hexagonal offset distance over the wrapped representatives
  // of each component. Unlike the per-axis Manhattan case the two axes
  // interact through the shared-sign rule, so all nine combinations are
  // tried (this is a verification path, not the simulation hot path).
  int Best = Dx + Dy + 2 * M; // Upper bound.
  for (int Wx = -1; Wx <= 1; ++Wx)
    for (int Wy = -1; Wy <= 1; ++Wy)
      Best = std::min(Best, hexOffsetDistance(Dx + Wx * M, Dy + Wy * M));
  return Best;
}

int ca2a::gridDistance(const Torus &T, Coord A, Coord B) {
  return T.kind() == GridKind::Square ? squareDistance(T, A, B)
                                      : triangulateDistance(T, A, B);
}

std::vector<int> ca2a::bfsDistances(const Torus &T, int Source) {
  std::vector<int> Distance(static_cast<size_t>(T.numCells()), -1);
  std::deque<int> Queue;
  Distance[static_cast<size_t>(Source)] = 0;
  Queue.push_back(Source);
  int Degree = T.degree();
  while (!Queue.empty()) {
    int Cell = Queue.front();
    Queue.pop_front();
    const int32_t *Neighbors = T.neighbors(Cell);
    for (int D = 0; D != Degree; ++D) {
      int Next = Neighbors[D];
      if (Distance[static_cast<size_t>(Next)] < 0) {
        Distance[static_cast<size_t>(Next)] =
            Distance[static_cast<size_t>(Cell)] + 1;
        Queue.push_back(Next);
      }
    }
  }
  return Distance;
}

int ca2a::eccentricity(const Torus &T, int Source) {
  std::vector<int> Distance = bfsDistances(T, Source);
  return *std::max_element(Distance.begin(), Distance.end());
}

int ca2a::diameterByScan(const Torus &T) {
  // Both tori are vertex-transitive, so one source suffices.
  Coord Origin{0, 0};
  int Best = 0;
  for (int Index = 0; Index != T.numCells(); ++Index)
    Best = std::max(Best, gridDistance(T, Origin, T.coordOf(Index)));
  return Best;
}

double ca2a::meanDistanceByScan(const Torus &T) {
  Coord Origin{0, 0};
  long long Sum = 0;
  for (int Index = 0; Index != T.numCells(); ++Index)
    Sum += gridDistance(T, Origin, T.coordOf(Index));
  return static_cast<double>(Sum) / static_cast<double>(T.numCells());
}
