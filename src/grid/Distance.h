//===- grid/Distance.h - Torus distances and graph metrics ------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shortest-path distances on the cyclic S- and T-grids.
///
/// The S-grid uses the torus Manhattan distance; the T-grid the "hexagonal"
/// distance of Désérable's hexavalent tori: for an offset (dx, dy) in the
/// skewed axial system, one diagonal step advances both coordinates at
/// once, so the step count is max(|dx|, |dy|) when dx and dy share a sign
/// and |dx| + |dy| otherwise. On the torus both metrics minimise over the
/// wrapped representatives of the offset.
///
/// A plain BFS over the neighbour table is provided as the reference
/// implementation: the closed forms are tested against it, and it also
/// serves the flooding-time properties of the simulation tests.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GRID_DISTANCE_H
#define CA2A_GRID_DISTANCE_H

#include "grid/Topology.h"

#include <vector>

namespace ca2a {

/// Hop distance between wrapped offset components on a cycle of length M:
/// min(|d|, M - |d|) with the sign of the shorter representative retained
/// is handled by the callers; this helper returns the *set* of candidate
/// representatives {d, d - M, d + M} reduced to the two shortest.
///
/// Torus Manhattan (S-grid) distance between two cells.
int squareDistance(const Torus &T, Coord A, Coord B);

/// Torus hexagonal (T-grid) distance between two cells.
int triangulateDistance(const Torus &T, Coord A, Coord B);

/// Dispatches on T.kind().
int gridDistance(const Torus &T, Coord A, Coord B);

/// Hexagonal distance of a plain (non-torus) offset in axial coordinates.
int hexOffsetDistance(int Dx, int Dy);

/// BFS distances from \p Source (flat index) to every cell; reference
/// implementation for the closed forms above.
std::vector<int> bfsDistances(const Torus &T, int Source);

/// Maximum distance from \p Source (graph eccentricity). By vertex
/// transitivity this equals the diameter for any source.
int eccentricity(const Torus &T, int Source);

/// Graph diameter via the closed-form distance from cell 0.
int diameterByScan(const Torus &T);

/// Mean distance from a cell to all N cells (including itself, which
/// contributes 0) — the normalisation used by the paper's Eq. (2).
double meanDistanceByScan(const Torus &T);

} // namespace ca2a

#endif // CA2A_GRID_DISTANCE_H
