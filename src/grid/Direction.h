//===- grid/Direction.h - Direction and turn algebra ------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Moving directions and the paper's turn action for both grids.
///
/// S-grid agents have four directions (90° apart), T-grid agents six (60°
/// apart). The FSM's turn action is a 2-bit code in both topologies:
///
///   * S-grid: turn code t in {0,1,2,3} adds t * 90° -> direction += t mod 4.
///   * T-grid: turn code t maps to direction increments {0, 1, 3, 5} mod 6
///     (0°, +60°, 180°, -60°); the ±120° turns are deliberately excluded so
///     the S- and T-agents have the same action-set cardinality (Sect. 3).
///
/// Directions are plain uint8_t indices into the topology's neighbour
/// offset ring; this header fixes the ring order and provides arrow glyphs
/// for the Fig. 6/7 style ASCII renderings.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GRID_DIRECTION_H
#define CA2A_GRID_DIRECTION_H

#include <cstdint>
#include <string>

namespace ca2a {

/// Grid topology selector; the paper's "S" and "T".
enum class GridKind : uint8_t {
  Square,      ///< 4-valent torus, von Neumann links.
  Triangulate, ///< 6-valent torus, von Neumann links + NW-SE diagonals.
};

/// Human-readable "S" / "T" label.
const char *gridKindName(GridKind Kind);

/// Parses "S"/"square" or "T"/"triangulate" (case-insensitive).
bool parseGridKind(const std::string &Text, GridKind &Kind);

/// Number of moving directions (= node degree): 4 in S, 6 in T.
constexpr int numDirections(GridKind Kind) {
  return Kind == GridKind::Square ? 4 : 6;
}

/// Number of distinct turn codes in the FSM action alphabet (both grids).
constexpr int NumTurnCodes = 4;

/// The paper's mnemonic turn alphabet: Straight, Right, Back, Left.
/// (The letters name code values; the S-grid geometric mapping is
/// 0°, +90°, 180°, -90°, the T-grid mapping 0°, +60°, 180°, -60°.)
enum class Turn : uint8_t { Straight = 0, Right = 1, Back = 2, Left = 3 };

/// One-letter name used in action mnemonics such as "Rm1".
char turnLetter(Turn T);

/// Parses 'S'/'R'/'B'/'L' into a Turn.
bool parseTurnLetter(char C, Turn &T);

/// Applies turn code \p T to \p Direction in topology \p Kind and returns
/// the new direction index.
uint8_t applyTurn(GridKind Kind, uint8_t Direction, Turn T);

/// Arrow glyph for rendering: S uses > ^ < v; T uses its six-ring glyphs.
char directionGlyph(GridKind Kind, uint8_t Direction);

} // namespace ca2a

#endif // CA2A_GRID_DIRECTION_H
