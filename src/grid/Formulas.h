//===- grid/Formulas.h - Closed-form network parameters ---------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Eqs. (1)-(3): diameter and mean distance of the size-n tori
/// (M = 2^n, N = M^2) and the T/S ratios. These are the analytic baselines
/// that bench_topology compares against scans of the actual graphs (Fig. 2
/// reproduction), and that the 256-agent column of Table 1 is checked
/// against (t_comm = D - 1 on a fully packed field).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GRID_FORMULAS_H
#define CA2A_GRID_FORMULAS_H

#include "grid/Direction.h"

namespace ca2a {

/// Diameter of the size-n S-grid: D_n^S = sqrt(N) = 2^n. (Eq. 1)
int squareDiameter(int SizeExponent);

/// Diameter of the size-n T-grid: D_n^T = (2(sqrt(N) - 1) + eps_n) / 3 with
/// eps_n = 1 for odd n, 0 for even n. (Eq. 1)
int triangulateDiameter(int SizeExponent);

/// Mean distance of the size-n S-grid: sqrt(N) / 2. (Eq. 2)
double squareMeanDistance(int SizeExponent);

/// Mean distance of the size-n T-grid:
/// approx (1/6) * (7 sqrt(N) / 3 - 1 / sqrt(N)). (Eq. 2)
double triangulateMeanDistance(int SizeExponent);

/// Diameter by kind.
int analyticDiameter(GridKind Kind, int SizeExponent);

/// Mean distance by kind.
double analyticMeanDistance(GridKind Kind, int SizeExponent);

/// Asymptotic diameter ratio D^{T/S} ~ 2/3 ~ 0.666. (Eq. 3)
double diameterRatio(int SizeExponent);

/// Asymptotic mean-distance ratio ~ 7/9 ~ 0.775. (Eq. 3)
double meanDistanceRatio(int SizeExponent);

} // namespace ca2a

#endif // CA2A_GRID_FORMULAS_H
