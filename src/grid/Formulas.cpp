//===- grid/Formulas.cpp - Closed-form network parameters -----------------===//

#include "grid/Formulas.h"

#include <cassert>

using namespace ca2a;

static int sideLengthOf(int SizeExponent) {
  assert(SizeExponent >= 1 && SizeExponent < 16 && "unreasonable grid size");
  return 1 << SizeExponent;
}

int ca2a::squareDiameter(int SizeExponent) {
  return sideLengthOf(SizeExponent);
}

int ca2a::triangulateDiameter(int SizeExponent) {
  int SqrtN = sideLengthOf(SizeExponent);
  int Eps = SizeExponent % 2; // 1 for odd n, 0 for even n.
  return (2 * (SqrtN - 1) + Eps) / 3;
}

double ca2a::squareMeanDistance(int SizeExponent) {
  return sideLengthOf(SizeExponent) / 2.0;
}

double ca2a::triangulateMeanDistance(int SizeExponent) {
  double SqrtN = sideLengthOf(SizeExponent);
  return (7.0 * SqrtN / 3.0 - 1.0 / SqrtN) / 6.0;
}

int ca2a::analyticDiameter(GridKind Kind, int SizeExponent) {
  return Kind == GridKind::Square ? squareDiameter(SizeExponent)
                                  : triangulateDiameter(SizeExponent);
}

double ca2a::analyticMeanDistance(GridKind Kind, int SizeExponent) {
  return Kind == GridKind::Square ? squareMeanDistance(SizeExponent)
                                  : triangulateMeanDistance(SizeExponent);
}

double ca2a::diameterRatio(int SizeExponent) {
  return static_cast<double>(triangulateDiameter(SizeExponent)) /
         static_cast<double>(squareDiameter(SizeExponent));
}

double ca2a::meanDistanceRatio(int SizeExponent) {
  return triangulateMeanDistance(SizeExponent) /
         squareMeanDistance(SizeExponent);
}
