//===- grid/Topology.h - Cyclic S- and T-grid tori --------------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two cyclic grid networks of Sect. 2:
///
///   * S-grid: nodes (x, y), x, y in Z_M, linked to (x±1, y), (x, y±1)
///     (4-valent torus, 2N links).
///   * T-grid: the S-grid links plus the NW-SE diagonals (x-1, y-1) and
///     (x+1, y+1) (6-valent torus, 3N links).
///
/// The paper uses M = 2^n for the closed-form diameter/mean-distance
/// formulas, but the CA itself only needs a cyclic M x M field; this class
/// supports arbitrary M >= 2 (the Sect. 5 scaling check uses M = 33).
///
/// Cells are addressed either as (x, y) coordinates or as a flat index
/// y * M + x; the flat index is what the simulation engine uses.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_GRID_TOPOLOGY_H
#define CA2A_GRID_TOPOLOGY_H

#include "grid/Direction.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace ca2a {

/// A cell position in XY coordinates (origin at the lower-left, y up).
struct Coord {
  int X = 0;
  int Y = 0;

  bool operator==(const Coord &Other) const {
    return X == Other.X && Y == Other.Y;
  }
  bool operator!=(const Coord &Other) const { return !(*this == Other); }
};

/// An M x M cyclic grid of the given kind, with direction-indexed
/// neighbour access.
class Torus {
public:
  /// Creates an \p SideLength x \p SideLength torus. \p SideLength >= 2.
  Torus(GridKind Kind, int SideLength);

  GridKind kind() const { return Kind; }
  int sideLength() const { return SideLength; }
  /// Number of nodes N = M^2.
  int numCells() const { return SideLength * SideLength; }
  /// Node degree: 4 in S, 6 in T.
  int degree() const { return numDirections(Kind); }
  /// Number of undirected links: 2N in S, 3N in T (Sect. 2).
  int numLinks() const { return numCells() * degree() / 2; }

  /// Wraps any integer coordinate into [0, M).
  int wrap(int Value) const {
    int M = SideLength;
    int R = Value % M;
    return R < 0 ? R + M : R;
  }

  /// Flat index of a (wrapped) coordinate.
  int indexOf(Coord C) const { return wrap(C.Y) * SideLength + wrap(C.X); }

  /// Coordinate of a flat index.
  Coord coordOf(int Index) const {
    assert(Index >= 0 && Index < numCells() && "cell index out of range");
    return Coord{Index % SideLength, Index / SideLength};
  }

  /// (dx, dy) offset of moving one step in \p Direction.
  Coord directionOffset(uint8_t Direction) const;

  /// Neighbour of \p C in \p Direction (wrapped).
  Coord neighbor(Coord C, uint8_t Direction) const {
    Coord D = directionOffset(Direction);
    return Coord{wrap(C.X + D.X), wrap(C.Y + D.Y)};
  }

  /// Neighbour of flat index \p Index in \p Direction, as a flat index.
  /// Precomputed; O(1) table lookup.
  int neighborIndex(int Index, uint8_t Direction) const {
    assert(Index >= 0 && Index < numCells() && "cell index out of range");
    assert(Direction < degree() && "direction out of range");
    return NeighborTable[static_cast<size_t>(Index) * degree() + Direction];
  }

  /// All neighbours of \p Index in ring order (degree() entries).
  /// The returned pointer is into the precomputed table.
  const int32_t *neighbors(int Index) const {
    assert(Index >= 0 && Index < numCells() && "cell index out of range");
    return &NeighborTable[static_cast<size_t>(Index) * degree()];
  }

  /// True when stepping from \p Index in \p Direction wraps around the
  /// torus seam. In a *bordered* interpretation of the same field (the
  /// easier environments of the authors' earlier studies, and this
  /// paper's future-work list) such a step is impossible: the simulation
  /// engine treats seam-crossing moves and exchanges as blocked when
  /// borders are enabled.
  bool crossesBoundary(int Index, uint8_t Direction) const {
    assert(Index >= 0 && Index < numCells() && "cell index out of range");
    assert(Direction < degree() && "direction out of range");
    Coord C = coordOf(Index);
    Coord D = directionOffset(Direction);
    int X = C.X + D.X, Y = C.Y + D.Y;
    return X < 0 || X >= SideLength || Y < 0 || Y >= SideLength;
  }

private:
  GridKind Kind;
  int SideLength;
  std::vector<int32_t> NeighborTable;
};

} // namespace ca2a

#endif // CA2A_GRID_TOPOLOGY_H
