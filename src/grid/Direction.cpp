//===- grid/Direction.cpp - Direction and turn algebra --------------------===//

#include "grid/Direction.h"

#include <cassert>
#include <cctype>

using namespace ca2a;

const char *ca2a::gridKindName(GridKind Kind) {
  return Kind == GridKind::Square ? "S" : "T";
}

bool ca2a::parseGridKind(const std::string &Text, GridKind &Kind) {
  std::string Lower;
  Lower.reserve(Text.size());
  for (char C : Text)
    Lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
  if (Lower == "s" || Lower == "square") {
    Kind = GridKind::Square;
    return true;
  }
  if (Lower == "t" || Lower == "triangulate" || Lower == "triangular") {
    Kind = GridKind::Triangulate;
    return true;
  }
  return false;
}

char ca2a::turnLetter(Turn T) {
  switch (T) {
  case Turn::Straight:
    return 'S';
  case Turn::Right:
    return 'R';
  case Turn::Back:
    return 'B';
  case Turn::Left:
    return 'L';
  }
  assert(false && "invalid turn code");
  return '?';
}

bool ca2a::parseTurnLetter(char C, Turn &T) {
  switch (std::toupper(static_cast<unsigned char>(C))) {
  case 'S':
    T = Turn::Straight;
    return true;
  case 'R':
    T = Turn::Right;
    return true;
  case 'B':
    T = Turn::Back;
    return true;
  case 'L':
    T = Turn::Left;
    return true;
  default:
    return false;
  }
}

uint8_t ca2a::applyTurn(GridKind Kind, uint8_t Direction, Turn T) {
  int Dirs = numDirections(Kind);
  assert(Direction < Dirs && "direction index out of range");
  int Code = static_cast<int>(T);
  if (Kind == GridKind::Square)
    return static_cast<uint8_t>((Direction + Code) % 4);
  // T-grid: codes {0,1,2,3} map to direction increments {0,1,3,5}
  // (0°, +60°, 180°, -60°); ±120° is not reachable by design.
  static constexpr int TriangulateIncrement[NumTurnCodes] = {0, 1, 3, 5};
  return static_cast<uint8_t>((Direction + TriangulateIncrement[Code]) % Dirs);
}

char ca2a::directionGlyph(GridKind Kind, uint8_t Direction) {
  assert(Direction < numDirections(Kind) && "direction index out of range");
  if (Kind == GridKind::Square) {
    // Ring order E, N, W, S.
    static constexpr char Glyphs[4] = {'>', '^', '<', 'v'};
    return Glyphs[Direction];
  }
  // Ring order E, NE, N, W, SW, S (skewed axial coordinates).
  static constexpr char Glyphs[6] = {'>', '/', '^', '<', '\\', 'v'};
  return Glyphs[Direction];
}
