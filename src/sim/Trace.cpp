//===- sim/Trace.cpp - Simulation snapshots and trajectories --------------===//

#include "sim/Trace.h"

#include <algorithm>

using namespace ca2a;

static Snapshot captureSnapshot(const World &W, int Time) {
  Snapshot S;
  S.Time = Time;
  int NumCells = W.torus().numCells();
  S.Colors.resize(static_cast<size_t>(NumCells));
  S.VisitCounts.resize(static_cast<size_t>(NumCells));
  for (int Cell = 0; Cell != NumCells; ++Cell) {
    S.Colors[static_cast<size_t>(Cell)] = W.colorAt(Cell) ? 1 : 0;
    S.VisitCounts[static_cast<size_t>(Cell)] = W.visitCount(Cell);
  }
  S.Agents.reserve(static_cast<size_t>(W.numAgents()));
  for (int Id = 0; Id != W.numAgents(); ++Id)
    S.Agents.push_back(W.agent(Id));
  return S;
}

TracedRun ca2a::runWithSnapshots(World &W, std::vector<int> Times) {
  std::sort(Times.begin(), Times.end());
  Times.erase(std::unique(Times.begin(), Times.end()), Times.end());

  TracedRun Out;
  int LastCaptured = -1;
  Out.Result = W.run([&](const World &World, int Time) {
    if (std::binary_search(Times.begin(), Times.end(), Time)) {
      Out.Snapshots.push_back(captureSnapshot(World, Time));
      LastCaptured = Time;
    }
  });
  // Always capture the terminal state (the figures show the final panel).
  if (LastCaptured != W.time())
    Out.Snapshots.push_back(captureSnapshot(W, W.time()));
  return Out;
}

std::vector<Trajectory>
ca2a::recordTrajectories(World &W, SimResult &ResultOut) {
  std::vector<Trajectory> Trajectories(
      static_cast<size_t>(W.numAgents()));
  ResultOut = W.run([&](const World &World, int) {
    for (int Id = 0; Id != World.numAgents(); ++Id) {
      Trajectory &Tr = Trajectories[static_cast<size_t>(Id)];
      int32_t Cell = World.agent(Id).Cell;
      if (Tr.empty() || Tr.back() != Cell)
        Tr.push_back(Cell);
    }
  });
  return Trajectories;
}

double
ca2a::averageRevisitFraction(const std::vector<Trajectory> &Trajectories,
                             int NumCells) {
  if (Trajectories.empty())
    return 0.0;
  double Total = 0.0;
  std::vector<uint8_t> Seen(static_cast<size_t>(NumCells));
  for (const Trajectory &Tr : Trajectories) {
    if (Tr.empty())
      continue;
    std::fill(Seen.begin(), Seen.end(), 0);
    size_t Distinct = 0;
    for (int32_t Cell : Tr) {
      if (!Seen[static_cast<size_t>(Cell)]) {
        Seen[static_cast<size_t>(Cell)] = 1;
        ++Distinct;
      }
    }
    Total += 1.0 - static_cast<double>(Distinct) /
                       static_cast<double>(Tr.size());
  }
  return Total / static_cast<double>(Trajectories.size());
}
