//===- sim/Render.h - ASCII rendering of the CA field -----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text renderings of a World in the style of the paper's Fig. 6 and 7:
/// an agent layer (direction glyph + agent id), a colour layer, and a
/// visited-count layer. Rows are printed top-down (highest y first), so
/// the panels read like the figures.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_RENDER_H
#define CA2A_SIM_RENDER_H

#include "sim/World.h"

#include <string>

namespace ca2a {

/// Agents as `<glyph><id>` pairs ("^0", ">12" truncates to last digit for
/// ids > 9 to keep columns aligned); empty cells as " .".
std::string renderAgentLayer(const World &W);

/// Cell colours: '1' where set, '.' where clear.
std::string renderColorLayer(const World &W);

/// Visit counts: '.', digits 1-9, '*' for 10+.
std::string renderVisitedLayer(const World &W);

/// The three layers with captions, like one column of Fig. 6/7.
std::string renderPanels(const World &W, const std::string &Title);

} // namespace ca2a

#endif // CA2A_SIM_RENDER_H
